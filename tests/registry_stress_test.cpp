// Concurrency and lifecycle tests for the shared registry: parallel
// push/pull from many threads (the rebuild service's access pattern),
// list/remove, and unreferenced-blob garbage collection.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "registry/registry.hpp"

namespace comt::registry {
namespace {

oci::ImageConfig config() {
  oci::ImageConfig c;
  c.config.entrypoint = {"/app"};
  return c;
}

vfs::Filesystem tree(std::string_view marker) {
  vfs::Filesystem fs;
  EXPECT_TRUE(fs.write_file("/data", std::string(marker)).ok());
  return fs;
}

TEST(RegistryStressTest, ConcurrentPushPullKeepsEveryImageIntact) {
  constexpr int kThreads = 8;
  constexpr int kImagesPerThread = 6;
  Registry hub;

  // A shared base layer every thread pushes — the dedup path under contention.
  vfs::Filesystem base_layer = tree("shared-base");

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hub, &base_layer, &failures, t] {
      for (int i = 0; i < kImagesPerThread; ++i) {
        std::string name = "org/app" + std::to_string(t);
        std::string tag = "v" + std::to_string(i);
        std::string marker = name + ":" + tag;
        oci::Layout local;
        if (!local.create_image(config(), {base_layer, tree(marker)}, "work").ok() ||
            !hub.push(local, "work", name, tag).ok()) {
          ++failures;
          continue;
        }
        // Immediately pull back what we pushed, racing other pushers.
        oci::Layout pulled;
        if (!hub.pull(name, tag, pulled, "check").ok()) {
          ++failures;
          continue;
        }
        auto image = pulled.find_image("check");
        auto rootfs = pulled.flatten(image.value());
        if (!rootfs.ok() || rootfs.value().read_file("/data").value_or("") != marker) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  Stats stats = hub.stats();
  EXPECT_EQ(stats.repositories, static_cast<std::size_t>(kThreads * kImagesPerThread));
  EXPECT_EQ(hub.list().size(), static_cast<std::size_t>(kThreads * kImagesPerThread));
  // Every image must still flatten to its own marker after the storm.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kImagesPerThread; ++i) {
      std::string name = "org/app" + std::to_string(t);
      std::string tag = "v" + std::to_string(i);
      oci::Layout out;
      ASSERT_TRUE(hub.pull(name, tag, out, "x").ok()) << name << ":" << tag;
      auto rootfs = out.flatten(out.find_image("x").value());
      ASSERT_TRUE(rootfs.ok());
      EXPECT_EQ(rootfs.value().read_file("/data").value(), name + ":" + tag);
    }
  }
}

TEST(RegistryStressTest, ListIsSortedAndResolveMatchesPush) {
  Registry hub;
  oci::Layout local;
  auto image = local.create_image(config(), {tree("z")}, "work");
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(hub.push(local, "work", "org/b", "1").ok());
  ASSERT_TRUE(hub.push(local, "work", "org/a", "2").ok());
  ASSERT_TRUE(hub.push(local, "work", "org/a", "1").ok());

  EXPECT_EQ(hub.list(), (std::vector<std::string>{"org/a:1", "org/a:2", "org/b:1"}));
  auto digest = hub.resolve("org/a", "1");
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(digest.value(), image.value().manifest_digest);
  EXPECT_EQ(hub.resolve("org/a", "9").error().code, Errc::not_found);
}

TEST(RegistryStressTest, RemoveCollectsOnlyUnreferencedBlobs) {
  Registry hub;
  oci::Layout local;
  vfs::Filesystem shared = tree("shared-base");
  ASSERT_TRUE(local.create_image(config(), {shared, tree("only-a")}, "a").ok());
  ASSERT_TRUE(local.create_image(config(), {shared, tree("only-b")}, "b").ok());
  ASSERT_TRUE(hub.push(local, "a", "org/a", "1").ok());
  ASSERT_TRUE(hub.push(local, "b", "org/b", "1").ok());

  Stats before = hub.stats();
  ASSERT_TRUE(hub.remove("org/a", "1").ok());
  Stats after = hub.stats();

  // a's manifest/config/unique layer went away; the shared layer survived.
  EXPECT_FALSE(hub.has("org/a", "1"));
  EXPECT_GT(after.reclaimed_bytes, 0u);
  EXPECT_GT(after.removed_blobs, 0u);
  EXPECT_LT(after.stored_bytes, before.stored_bytes);
  EXPECT_EQ(after.stored_bytes + after.reclaimed_bytes, before.stored_bytes);

  // b is untouched and still serves its shared base layer.
  oci::Layout out;
  ASSERT_TRUE(hub.pull("org/b", "1", out, "b").ok());
  auto rootfs = out.flatten(out.find_image("b").value());
  ASSERT_TRUE(rootfs.ok());
  EXPECT_EQ(rootfs.value().read_file("/data").value(), "only-b");

  // Removing the last reference empties the store entirely.
  ASSERT_TRUE(hub.remove("org/b", "1").ok());
  Stats empty = hub.stats();
  EXPECT_EQ(empty.repositories, 0u);
  EXPECT_EQ(empty.blobs, 0u);
  EXPECT_EQ(empty.stored_bytes, 0u);
  EXPECT_EQ(empty.reclaimed_bytes, before.stored_bytes);
}

TEST(RegistryStressTest, RemoveUnknownReferenceFails) {
  Registry hub;
  auto status = hub.remove("no/such", "tag");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::not_found);
}

TEST(RegistryStressTest, RemoveKeepsBlobsSharedAcrossTagsOfSameImage) {
  Registry hub;
  oci::Layout local;
  ASSERT_TRUE(local.create_image(config(), {tree("v")}, "work").ok());
  ASSERT_TRUE(hub.push(local, "work", "org/app", "1").ok());
  ASSERT_TRUE(hub.push(local, "work", "org/app", "latest").ok());

  ASSERT_TRUE(hub.remove("org/app", "1").ok());
  // "latest" references the exact same manifest: nothing may be collected.
  EXPECT_EQ(hub.stats().reclaimed_bytes, 0u);
  oci::Layout out;
  EXPECT_TRUE(hub.pull("org/app", "latest", out, "x").ok());
}

TEST(RegistryStressTest, InjectedFaultsSurfaceAsTransientErrors) {
  support::FaultInjector faults;
  Registry hub;
  hub.set_fault_injector(&faults);
  oci::Layout local;
  ASSERT_TRUE(local.create_image(config(), {tree("v")}, "work").ok());
  ASSERT_TRUE(hub.push(local, "work", "org/app", "1").ok());

  faults.fail_next(kPullFaultSite, 1);
  oci::Layout out;
  auto failed = hub.pull("org/app", "1", out, "x");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, Errc::failed);
  // The failed pull transferred nothing and the next one succeeds.
  EXPECT_EQ(hub.stats().pulled_bytes, 0u);
  EXPECT_TRUE(hub.pull("org/app", "1", out, "x").ok());

  faults.fail_next(kPushFaultSite, 1);
  EXPECT_FALSE(hub.push(local, "work", "org/app", "2").ok());
  EXPECT_FALSE(hub.has("org/app", "2"));
}

TEST(RegistryStressTest, ConcurrentRemoveAndPushStaysConsistent) {
  Registry hub;
  // Seed images "org/gc:0..15", then concurrently remove them while pushing
  // fresh ones — exercising remove's mark/sweep against racing mutations.
  {
    oci::Layout local;
    for (int i = 0; i < 16; ++i) {
      std::string tag = "seed" + std::to_string(i);
      ASSERT_TRUE(local.create_image(config(), {tree("gc" + std::to_string(i))}, tag).ok());
      ASSERT_TRUE(hub.push(local, tag, "org/gc", std::to_string(i)).ok());
    }
  }
  std::thread remover([&hub] {
    for (int i = 0; i < 16; ++i) EXPECT_TRUE(hub.remove("org/gc", std::to_string(i)).ok());
  });
  std::thread pusher([&hub] {
    oci::Layout local;
    for (int i = 0; i < 16; ++i) {
      std::string tag = "new" + std::to_string(i);
      EXPECT_TRUE(local.create_image(config(), {tree("new" + std::to_string(i))}, tag).ok());
      EXPECT_TRUE(hub.push(local, tag, "org/new", std::to_string(i)).ok());
    }
  });
  remover.join();
  pusher.join();

  // All new images survived GC of the old ones.
  for (int i = 0; i < 16; ++i) {
    oci::Layout out;
    ASSERT_TRUE(hub.pull("org/new", std::to_string(i), out, "x").ok()) << i;
  }
  EXPECT_EQ(hub.stats().repositories, 16u);
}

}  // namespace
}  // namespace comt::registry
