// Deterministic fault injection for exercising retry/recovery paths.
//
// Production code calls `check(site)` at each operation that can fail
// transiently in a real deployment (a registry pull over a flaky network, a
// compile job on a wobbly node). Tests and benchmarks arm per-site schedules —
// "fail the next 2 calls", "fail every 3rd call" — and the instrumented code
// observes an ordinary Status error, indistinguishable from a genuine fault.
// With no schedule armed a site always succeeds, so leaving the hooks wired in
// release builds costs one pointer test.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "support/error.hpp"

namespace comt::support {

/// Thread-safe named-site fault injector. Sites come into existence on first
/// use; call counters are kept per site so schedules are deterministic under
/// any interleaving of *other* sites (calls to one site never advance
/// another's schedule).
class FaultInjector {
 public:
  /// Arms `site` to fail its next `count` calls with `code`.
  void fail_next(std::string_view site, int count, Errc code = Errc::failed,
                 std::string message = "");

  /// Arms `site` to fail every `period`-th call from now on (1-based: with
  /// period 3, calls 3, 6, 9, ... fail). `period <= 0` disarms.
  void fail_every(std::string_view site, int period, Errc code = Errc::failed,
                  std::string message = "");

  /// Disarms every schedule at `site`; counters keep their values.
  void clear(std::string_view site);

  /// Disarms all sites.
  void clear_all();

  /// The instrumented operation's hook: counts the call and returns the
  /// injected error when a schedule fires, success otherwise.
  Status check(std::string_view site);

  /// Calls made to `site` so far (including successful ones).
  std::uint64_t calls(std::string_view site) const;

  /// Faults fired at `site` so far.
  std::uint64_t injected(std::string_view site) const;

  /// Faults fired across all sites.
  std::uint64_t total_injected() const;

 private:
  struct Site {
    std::uint64_t calls = 0;
    std::uint64_t injected = 0;
    int fail_next = 0;       ///< remaining forced failures
    int fail_every = 0;      ///< 0 = off
    std::uint64_t every_base = 0;  ///< call count when fail_every was armed
    Errc code = Errc::failed;
    std::string message;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Site, std::less<>> sites_;
};

}  // namespace comt::support
