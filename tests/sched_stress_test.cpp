// Concurrency stress tests for the scheduler hot path. These are the tests
// the TSAN stage of scripts/check.sh leans on: lock-free compile-cache hits
// racing inserts, Chase–Lev deque stealing under deliberate imbalance, and
// the epoch/wave protocol's barrier discipline. Each test is deterministic
// in its assertions (exactly-once execution, exact counts) while leaving the
// interleavings to the scheduler, which is what gives the sanitizer
// something to chew on.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/compile_cache.hpp"
#include "sched/dag.hpp"
#include "sched/thread_pool.hpp"

namespace comt {
namespace {

// ---- CompileCache: lock-free hits racing inserts ------------------------------

TEST(SchedStressTest, CacheHitsStayCorrectUnderConcurrentInsert) {
  constexpr int kSeeded = 16;
  constexpr int kReaders = 4;
  constexpr int kIterations = 400;

  sched::CompileCache cache;
  for (int i = 0; i < kSeeded; ++i) {
    sched::CacheEntry entry;
    entry.input_digests["/in/" + std::to_string(i)] = "digest-" + std::to_string(i);
    entry.outputs.push_back({"/out/" + std::to_string(i), "content-" + std::to_string(i),
                             0644});
    cache.store("key-" + std::to_string(i), std::move(entry));
  }
  auto digest_of = [](const std::string& path) -> std::string {
    // "/in/N" always digests to "digest-N": every seeded manifest verifies.
    return "digest-" + path.substr(4);
  };

  std::atomic<bool> writing{true};
  std::thread writer([&] {
    // Replace seeded entries with identical content and add fresh ones —
    // every publish races the readers' snapshot loads.
    for (int round = 0; round < 200; ++round) {
      const int i = round % kSeeded;
      sched::CacheEntry entry;
      entry.input_digests["/in/" + std::to_string(i)] = "digest-" + std::to_string(i);
      entry.outputs.push_back(
          {"/out/" + std::to_string(i), "content-" + std::to_string(i), 0644});
      cache.store("key-" + std::to_string(i), std::move(entry));
      sched::CacheEntry fresh;
      fresh.input_digests["/in/" + std::to_string(kSeeded + round)] =
          "digest-" + std::to_string(kSeeded + round);
      cache.store("fresh-" + std::to_string(round), std::move(fresh));
    }
    writing.store(false);
  });

  std::vector<std::thread> readers;
  std::atomic<int> wrong{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      for (int iter = 0; iter < kIterations; ++iter) {
        const int i = iter % kSeeded;
        auto hit = cache.lookup("key-" + std::to_string(i), digest_of);
        // Old or new snapshot, the entry must be present and byte-identical.
        if (hit == nullptr || hit->outputs.size() != 1 ||
            hit->outputs[0].content != "content-" + std::to_string(i)) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  writer.join();

  EXPECT_EQ(wrong.load(), 0);
  const sched::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kReaders * kIterations));
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.stores, static_cast<std::uint64_t>(kSeeded + 2 * 200));
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kSeeded + 200));
}

// ---- StealDeque: exactly-once under concurrent thieves ------------------------

TEST(SchedStressTest, StealDequeDeliversEveryTaskExactlyOnce) {
  constexpr int kTasks = 2000;
  constexpr int kThieves = 3;

  sched::detail::StealDeque deque;
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);

  std::atomic<bool> done_pushing{false};
  std::atomic<int> executed{0};
  auto run_task = [&](sched::detail::StealDeque::Task task) {
    if (task) {
      task();
      executed.fetch_add(1);
      return true;
    }
    return false;
  };

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (executed.load() < kTasks) {
        if (!run_task(deque.steal()) && done_pushing.load()) {
          if (executed.load() >= kTasks) break;
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner: push everything, popping a few along the way (bottom contention).
  for (int i = 0; i < kTasks; ++i) {
    deque.push([&runs, i] { runs[i].fetch_add(1); });
    if (i % 7 == 0) run_task(deque.pop());
  }
  done_pushing.store(true);
  while (executed.load() < kTasks) {
    if (!run_task(deque.pop())) std::this_thread::yield();
  }
  for (std::thread& thief : thieves) thief.join();

  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i << " ran " << runs[i].load()
                                 << " times";
  }
}

// ---- ThreadPool: imbalance resolved by stealing -------------------------------

TEST(SchedStressTest, FloodedWorkerIsDrainedBySiblings) {
  constexpr int kFlood = 256;
  obs::MetricsRegistry metrics;
  sched::ThreadPool pool(4);
  pool.set_metrics(&metrics, "stress.pool");

  // One task fans out the whole load from inside the pool: submit() from a
  // worker pushes to that worker's own deque, so all kFlood tasks start on
  // one queue and the other three workers only make progress by stealing.
  std::atomic<int> count{0};
  pool.submit([&pool, &count] {
    for (int i = 0; i < kFlood; ++i) {
      pool.submit([&count] {
        count.fetch_add(1);
        std::this_thread::yield();
      });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), kFlood);
  EXPECT_EQ(pool.executed(), static_cast<std::uint64_t>(kFlood + 1));
  EXPECT_EQ(metrics.counter_value("stress.pool.tasks"),
            static_cast<std::uint64_t>(kFlood + 1));
}

// ---- ThreadPool: dynamic resize under active steals ---------------------------

TEST(SchedStressTest, ResizeStormNeverLosesATask) {
  // Grow/shrink the pool continuously while two submitter threads flood it
  // and the in-pool fan-out keeps the steal path hot. Every submitted task
  // must run exactly once regardless of how many workers retire mid-steal.
  constexpr int kPerSubmitter = 400;
  sched::ThreadPool pool(2, 8);
  std::atomic<int> count{0};

  std::atomic<bool> stop_resizing{false};
  std::thread resizer([&pool, &stop_resizing] {
    std::size_t sizes[] = {1, 8, 3, 6, 2, 7, 4, 5};
    std::size_t i = 0;
    while (!stop_resizing.load()) {
      pool.resize(sizes[i++ % 8]);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> submitters;
  for (int s = 0; s < 2; ++s) {
    submitters.emplace_back([&pool, &count] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        // Half the load fans out from inside the pool so retiring workers
        // leave freshly pushed subtasks behind for survivors to steal.
        if (i % 2 == 0) {
          pool.submit([&pool, &count] {
            count.fetch_add(1);
            pool.submit([&count] { count.fetch_add(1); });
          });
        } else {
          pool.submit([&count] {
            count.fetch_add(1);
            std::this_thread::yield();
          });
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  pool.wait_idle();
  stop_resizing.store(true);
  resizer.join();
  // 2 submitters x 400 tasks, plus one spawned child per even task (200 each).
  EXPECT_EQ(count.load(), 2 * kPerSubmitter + kPerSubmitter);
  pool.wait_idle();
}

TEST(SchedStressTest, ShrinkToOneUnderFanOutDrainsEverything) {
  constexpr int kFlood = 300;
  sched::ThreadPool pool(6, 6);
  std::atomic<int> count{0};
  pool.submit([&pool, &count] {
    for (int i = 0; i < kFlood; ++i) {
      pool.submit([&count] {
        count.fetch_add(1);
        std::this_thread::yield();
      });
    }
  });
  pool.resize(1);  // five workers retire while the flood is mid-drain
  pool.wait_idle();
  EXPECT_EQ(count.load(), kFlood);
  pool.resize(6);  // regrowing reuses the retired slots
  std::atomic<int> again{0};
  for (int i = 0; i < 64; ++i) pool.submit([&again] { again.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(again.load(), 64);
}

// ---- DagScheduler: epoch/wave protocol ----------------------------------------

TEST(SchedStressTest, EpochModeRunsWavesWithBarrierDiscipline) {
  for (std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    sched::DagScheduler dag;
    std::atomic<int> a_done{0};
    std::atomic<int> b_done{0};
    std::atomic<bool> deps_seen_by_c{false};
    ASSERT_TRUE(dag.add_job("a", {}, [&] {
                     a_done.store(1);
                     return Status::success();
                   }).ok());
    ASSERT_TRUE(dag.add_job("b", {}, [&] {
                     b_done.store(1);
                     return Status::success();
                   }).ok());
    ASSERT_TRUE(dag.add_job("c", {"a", "b"}, [&] {
                     deps_seen_by_c.store(a_done.load() == 1 && b_done.load() == 1);
                     return Status::success();
                   }).ok());
    ASSERT_TRUE(dag.add_job("d", {"c"}, [] { return Status::success(); }).ok());
    ASSERT_TRUE(dag.add_job("e", {"c"}, [] { return Status::success(); }).ok());

    // begin/commit run on this thread, between waves: plain vectors are fine.
    std::vector<std::vector<std::size_t>> began;
    std::vector<std::vector<std::size_t>> committed;
    sched::EpochHooks hooks;
    hooks.begin = [&](std::size_t epoch, const std::vector<std::size_t>& jobs) {
      EXPECT_EQ(epoch, began.size());
      began.push_back(jobs);
    };
    hooks.commit = [&](std::size_t epoch,
                       const std::vector<std::size_t>& succeeded) -> Status {
      EXPECT_EQ(epoch, committed.size());
      committed.push_back(succeeded);
      return Status::success();
    };

    std::unique_ptr<sched::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<sched::ThreadPool>(threads);
    auto report = dag.run(pool.get(), {}, &hooks);
    ASSERT_TRUE(report.ok()) << report.error().to_string();

    EXPECT_TRUE(deps_seen_by_c.load());
    EXPECT_EQ(report.value().epochs, 3u);
    EXPECT_EQ(report.value().executed, 5u);
    EXPECT_EQ(report.value().failed, 0u);
    ASSERT_EQ(began.size(), 3u);
    EXPECT_EQ(began[0], (std::vector<std::size_t>{0, 1}));  // a, b
    EXPECT_EQ(began[1], (std::vector<std::size_t>{2}));     // c
    EXPECT_EQ(began[2], (std::vector<std::size_t>{3, 4}));  // d, e
    EXPECT_EQ(committed, began);  // everything succeeded
  }
}

TEST(SchedStressTest, EpochCommitFailureFailsTheWaveAndSkipsDependents) {
  sched::DagScheduler dag;
  std::atomic<bool> b_ran{false};
  std::atomic<bool> c_ran{false};
  ASSERT_TRUE(dag.add_job("a", {}, [] { return Status::success(); }).ok());
  ASSERT_TRUE(dag.add_job("b", {"a"}, [&] {
                   b_ran.store(true);
                   return Status::success();
                 }).ok());
  // Independent of the failing wave: must still run (make -k).
  ASSERT_TRUE(dag.add_job("c", {}, [&] {
                   c_ran.store(true);
                   return Status::success();
                 }).ok());

  sched::EpochHooks hooks;
  hooks.commit = [](std::size_t epoch, const std::vector<std::size_t>&) -> Status {
    if (epoch == 0) {
      return make_error(Errc::failed, "commit refused");
    }
    return Status::success();
  };

  sched::ThreadPool pool(2);
  auto report = dag.run(&pool, {}, &hooks);
  ASSERT_TRUE(report.ok()) << report.error().to_string();

  // Wave 0 (a, c) committed with an error: both bodies ran but count as
  // failed, and a's dependent b is skipped without running.
  EXPECT_TRUE(c_ran.load());
  EXPECT_FALSE(b_ran.load());
  EXPECT_EQ(report.value().executed, 2u);
  EXPECT_EQ(report.value().failed, 2u);
  EXPECT_EQ(report.value().skipped, 1u);
  EXPECT_FALSE(report.value().jobs[0].status.ok());
  EXPECT_TRUE(report.value().jobs[1].skipped);
  Status first = report.value().first_error();
  ASSERT_FALSE(first.ok());
  EXPECT_NE(first.error().message.find("commit refused"), std::string::npos);
}

TEST(SchedStressTest, EpochModeUnderRepeatedConcurrentRuns) {
  // A wider randomized-shape hammer for TSAN: layered DAGs dispatched through
  // a shared pool, all counters checked exactly.
  sched::ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    sched::DagScheduler dag;
    const int width = 4 + round % 3;
    const int depth = 3;
    std::atomic<int> bodies{0};
    for (int level = 0; level < depth; ++level) {
      for (int lane = 0; lane < width; ++lane) {
        std::vector<std::string> deps;
        if (level > 0) {
          deps.push_back(std::to_string(level - 1) + ":" + std::to_string(lane));
          deps.push_back(std::to_string(level - 1) + ":" +
                         std::to_string((lane + 1) % width));
        }
        ASSERT_TRUE(dag.add_job(std::to_string(level) + ":" + std::to_string(lane),
                                std::move(deps),
                                [&bodies] {
                                  bodies.fetch_add(1);
                                  return Status::success();
                                })
                        .ok());
      }
    }
    sched::EpochHooks hooks;  // empty hooks still select wave mode
    auto report = dag.run(&pool, {}, &hooks);
    ASSERT_TRUE(report.ok()) << report.error().to_string();
    EXPECT_EQ(bodies.load(), width * depth);
    EXPECT_EQ(report.value().executed, static_cast<std::size_t>(width * depth));
    EXPECT_EQ(report.value().epochs, static_cast<std::size_t>(depth));
  }
}

}  // namespace
}  // namespace comt
