// Write-ahead journal for crash-safe, resumable rebuilds.
//
// A rebuild that may die mid-way (node failure, preemption) records its
// progress in a Journal: one begin record naming the inputs (extended-image
// digest, target system, compile DAG) and one commit record per completed
// compile job carrying the job's produced outputs. Records are
// length-prefixed and checksummed, so a crash in the middle of an append — a
// torn write — leaves a tail the next replay detects and truncates instead of
// misparsing. Re-running the rebuild with the same journal replays committed
// jobs from their recorded outputs and only executes what never committed;
// the resumed run produces a bit-identical image to an uninterrupted one.
//
// Each journal's backing is an in-memory append-only byte buffer, mirroring
// the journal file a production deployment would fsync next to its OCI
// layout. Torn-write and crash injection (support::FaultInjector) exercise
// exactly the failure modes a real file would exhibit. A JournalStore
// constructed over a store::KvStore additionally writes every journal
// through to the store under "journal/<key>" and hydrates surviving
// journals back on construction — hand a DiskStore-backed JournalStore to
// the next process incarnation and its recover() resumes real crashes, not
// just same-process restarts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "store/store.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace comt::durable {

/// Torn-write injection site checked on every journal append.
inline constexpr std::string_view kJournalAppendSite = "journal.append";

/// Key prefix a backed JournalStore persists journals under.
inline constexpr std::string_view kJournalKeyPrefix = "journal/";

/// One output blob a committed job produced (path inside the rebuild rootfs).
struct JournalOutput {
  std::string path;
  std::string content;
  std::uint32_t mode = 0644;

  bool operator==(const JournalOutput&) const = default;
};

/// The journal's first record: what rebuild this journal belongs to. A replay
/// whose caller computes a different inputs digest must not reuse the
/// journal — the plan changed under it.
struct BeginRecord {
  std::string inputs_digest;  ///< sha256 over image digest + system + DAG
  std::string system;         ///< target-system fingerprint (diagnostic)
  std::string metadata;       ///< caller-owned context (the service stores the request)
  std::uint64_t planned_jobs = 0;  ///< compile jobs the DAG schedules
};

/// One committed compile job: its scheduler key and the outputs it wrote,
/// digested so replay can verify integrity end-to-end.
struct CommitRecord {
  std::string job_id;         ///< scheduler job key ("<pass>:<node id>")
  std::string output_digest;  ///< sha256 over all outputs (path, content, mode)
  std::vector<JournalOutput> outputs;
};

/// Digest a commit record's outputs the way replay re-verifies them.
std::string digest_outputs(const std::vector<JournalOutput>& outputs);

/// State recovered from a journal's bytes.
struct ReplayState {
  std::optional<BeginRecord> begin;
  std::map<std::string, CommitRecord> commits;  ///< job id → committed record
  std::size_t records = 0;           ///< intact records parsed (incl. begin)
  std::uint64_t truncated_bytes = 0; ///< torn tail dropped from the buffer
};

/// What a compaction pass did to the journal.
struct CompactionReport {
  std::size_t records_before = 0;
  std::size_t records_after = 0;
  std::size_t bytes_before = 0;
  std::size_t bytes_after = 0;
  std::size_t dropped_commits = 0;  ///< commits the keep predicate rejected
};

/// Append-only, checksummed record log. Thread-safe: concurrent compile jobs
/// of one rebuild commit through the same journal.
class Journal {
 public:
  /// Attaches torn-write injection to every append. Pass nullptr to detach.
  void set_fault_injector(support::FaultInjector* faults) { faults_ = faults; }

  /// Attaches counters ("journal.appends", "journal.appended_bytes",
  /// "journal.replayed_records", "journal.truncated_bytes",
  /// "journal.compactions", "journal.compacted_commits") to every operation.
  /// Pass nullptr to detach. Wire up before sharing the journal.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Attaches a persistence hook fired with the full buffer, under the
  /// journal lock, after every mutation — append (including the torn prefix
  /// an injected torn write leaves behind), replay truncation, compaction,
  /// clear and set_bytes. A backed JournalStore uses it to mirror the journal
  /// into its KvStore so the bytes survive the process. Wire up before
  /// sharing the journal; pass an empty function to detach.
  void set_write_through(std::function<void(const std::string&)> hook);

  Status append_begin(const BeginRecord& record);
  Status append_commit(const CommitRecord& record);

  /// Parses the buffer into ReplayState. A torn or checksum-corrupt record
  /// ends the valid prefix: it and everything after it are truncated from
  /// the buffer (append-only logs cannot have intact records after a torn
  /// one) and counted in ReplayState::truncated_bytes. A begin record
  /// anywhere but first, or a commit before begin, is Errc::corrupt.
  Result<ReplayState> replay();

  /// Folds the log into one canonical snapshot: the begin record followed by
  /// the surviving commits in job-id order. `keep` selects which commits
  /// survive (empty keeps all) — the rebuild engine drops records of earlier
  /// PGO passes once the final pass has fully committed, so a journal that
  /// lived through instrument→optimize cycles shrinks back to one pass.
  /// Replaying a compacted journal recovers exactly the kept state; torn
  /// tails are truncated first, same as replay(). A rewrite is atomic from
  /// the reader's view (one buffer swap under the journal lock — the file
  /// analogue is write-temp-then-rename), so no fault injection applies.
  /// No-op on a journal with no begin record.
  Result<CompactionReport> compact(
      const std::function<bool(const CommitRecord&)>& keep = {});

  bool empty() const;
  std::size_t size_bytes() const;

  /// Raw backing bytes (tests corrupt them to exercise replay).
  std::string bytes() const;
  void set_bytes(std::string bytes);

  void clear();

 private:
  Status append(std::string payload);
  Result<ReplayState> replay_locked();
  void persist_locked();

  mutable std::mutex mutex_;
  std::string data_;
  std::function<void(const std::string&)> write_through_;
  support::FaultInjector* faults_ = nullptr;
  obs::Counter* appends_ = nullptr;
  obs::Counter* appended_bytes_ = nullptr;
  obs::Counter* replayed_records_ = nullptr;
  obs::Counter* truncated_bytes_ = nullptr;
  obs::Counter* compactions_ = nullptr;
  obs::Counter* compacted_commits_ = nullptr;
};

/// Keyed collection of journals, shared between a rebuild service and its
/// restart: journals survive the service object's death the way files
/// survive a process, so recover() on the next incarnation finds them.
/// Thread-safe.
///
/// Constructed over a store::KvStore, the collection is also durable:
/// every journal writes through to "journal/<key>" on each mutation, and
/// construction hydrates the journals the backing still holds, so a
/// JournalStore over the same DiskStore directory survives the process
/// itself. A corrupt persisted entry (torn metadata header) is erased and
/// counted rather than hydrated — the rebuild it guarded simply reruns.
class JournalStore {
 public:
  struct Entry {
    std::string key;
    std::string metadata;  ///< as passed to the creating open()
    std::shared_ptr<Journal> journal;
  };

  /// In-memory only (nullptr) or backed by `backing`. A backed store
  /// hydrates every intact "journal/<key>" value on construction.
  explicit JournalStore(std::shared_ptr<store::KvStore> backing = nullptr);

  /// Returns the journal for `key`, creating it (with `metadata`) on first
  /// open. Reopening an existing journal with the same (or empty) metadata
  /// returns it unchanged; non-empty metadata that disagrees with the
  /// original is Errc::already_exists — the caller is about to journal a
  /// different request under a key another rebuild still owns.
  Result<std::shared_ptr<Journal>> open(const std::string& key,
                                        std::string_view metadata = "");

  /// Drops `key`'s journal — called once the work it guards is fully
  /// committed downstream (the rebuilt image is pushed). Erases the
  /// persisted copy too.
  void remove(const std::string& key);

  bool contains(const std::string& key) const;
  std::size_t size() const;

  /// Snapshot of every live journal, sorted by key.
  std::vector<Entry> list() const;

  /// Attaches `faults` to every current and future journal in the store.
  void set_fault_injector(support::FaultInjector* faults);

  /// Attaches `metrics` to every current and future journal in the store.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Journals recovered from the backing store at construction.
  std::size_t hydrated() const { return hydrated_; }

  /// Persisted entries dropped at construction because their metadata
  /// header was unreadable.
  std::size_t hydration_dropped() const { return hydration_dropped_; }

 private:
  std::string backing_key(const std::string& key) const;
  void hydrate();
  void persist(const std::string& key, std::string_view metadata,
               const std::string& bytes);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::shared_ptr<store::KvStore> backing_;
  std::size_t hydrated_ = 0;
  std::size_t hydration_dropped_ = 0;
  support::FaultInjector* faults_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace comt::durable
