// The rebuild fleet: N service replicas over one shared store behaving like
// one logical service. Covers the lease record codec, claim/steal/release
// arbitration, waiter reuse of a holder's published result, global dedup of
// identical submissions across replicas (exactly one compiles), the
// cross-replica warm compile cache through the shared store, coordinator
// degradation on timeout, and the flagship failure path: lease holder
// crashes mid-rebuild, the lease expires, and another replica takes over via
// journal replay, finishing bit-identically.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "fleet/fleet.hpp"
#include "fleet/lease.hpp"
#include "registry/registry.hpp"
#include "service/service.hpp"
#include "store/store.hpp"
#include "support/fault.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

namespace comt::fleet {
namespace {

using service::JobState;
using service::SubmitRequest;
using service::TargetSystem;

constexpr const char* kSys = "x86";
constexpr const char* kOutTag = "1.0+coMre.x86";

/// Builds `app_name` on the user side and pushes its extended image to the
/// hub under "name:tag" — the state the fleet finds in production.
Status publish(registry::Registry& hub, const char* app_name, std::string_view name,
               std::string_view tag) {
  const workloads::AppSpec* app = workloads::find_app(app_name);
  if (app == nullptr) return make_error(Errc::not_found, "no such app in the corpus");
  workloads::Evaluation world(sysmodel::SystemProfile::x86_cluster());
  COMT_TRY(workloads::PreparedApp prepared, world.prepare(*app));
  return hub.push(world.layout(), prepared.extended_tag, name, tag);
}

TargetSystem make_target() {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  TargetSystem target;
  target.profile = &system;
  target.repo = &workloads::system_repo(system);
  EXPECT_TRUE(workloads::install_system_images(target.base_layout, system).ok());
  target.sysenv_tag = workloads::sysenv_tag(system);
  return target;
}

/// Reference digest of an uninterrupted single-service rebuild on a private
/// hub — the bit-identity yardstick for every fleet path.
std::string reference_digest() {
  registry::Registry hub;
  EXPECT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  service::RebuildService svc(hub);
  EXPECT_TRUE(svc.add_system(kSys, make_target()).ok());
  auto ticket = svc.submit({"hub/minimd", "1.0", kSys});
  EXPECT_TRUE(ticket.ok());
  auto done = svc.wait(ticket.value());
  EXPECT_TRUE(done.ok());
  EXPECT_EQ(done.value().state, JobState::succeeded);
  auto digest = hub.resolve("hub/minimd", kOutTag);
  EXPECT_TRUE(digest.ok());
  return digest.value().value;
}

/// The fleet coalescing key of a published image: manifest digest + system.
std::string job_key(registry::Registry& hub, const std::string& name,
                    const std::string& tag) {
  auto digest = hub.resolve(name, tag);
  EXPECT_TRUE(digest.ok());
  return digest.value().value + "|" + kSys;
}

// ---------------------------------------------------------------------------
// Lease record codec.

TEST(FleetLeaseTest, RecordRoundTripsAndRejectsDamage) {
  LeaseRecord record{"replica7", 42, 123456789};
  const std::string encoded = encode_lease(record);
  auto decoded = decode_lease(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, record);

  // A flipped bit anywhere fails the checksum.
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    std::string damaged = encoded;
    damaged[i] ^= 0x01;
    EXPECT_FALSE(decode_lease(damaged).has_value()) << "byte " << i;
  }
  // Truncation (a torn write's surviving prefix) is invalid, not misparsed.
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_FALSE(decode_lease(encoded.substr(0, cut)).has_value()) << "cut " << cut;
  }
  EXPECT_FALSE(decode_lease(encoded + "x").has_value());
}

// ---------------------------------------------------------------------------
// Claim / steal / release arbitration (no services involved).

TEST(FleetLeaseTest, ClaimStealAndRelease) {
  auto store = std::make_shared<store::MemStore>();
  LeaseCoordinator::Options a_opts;
  a_opts.replica_id = "a";
  a_opts.ttl = std::chrono::milliseconds(40);
  LeaseCoordinator a(store, nullptr, a_opts);
  LeaseCoordinator::Options b_opts = a_opts;
  b_opts.replica_id = "b";
  LeaseCoordinator b(store, nullptr, b_opts);

  auto grant = a.acquire("k");
  ASSERT_TRUE(grant.ok());
  EXPECT_FALSE(grant.value().reuse);
  EXPECT_FALSE(grant.value().stolen);
  EXPECT_EQ(grant.value().epoch, 1u);
  auto record = b.read_lease("k");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->owner, "a");

  // "a" dies without releasing; once the TTL lapses, "b" steals at epoch 2.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto steal = b.acquire("k");
  ASSERT_TRUE(steal.ok());
  EXPECT_FALSE(steal.value().reuse);
  EXPECT_TRUE(steal.value().stolen);
  EXPECT_EQ(steal.value().epoch, 2u);
  EXPECT_EQ(b.read_lease("k")->owner, "b");

  // A late release by the dead reign must not clobber the new one.
  a.release("k", LeaseCoordinator::Outcome::failed, "", /*epoch=*/1);
  EXPECT_EQ(b.read_lease("k")->owner, "b");

  // The live reign finishes: marker published, lease retired.
  b.release("k", LeaseCoordinator::Outcome::succeeded, "img:tag", /*epoch=*/2);
  EXPECT_FALSE(b.read_lease("k").has_value());
  EXPECT_EQ(b.read_done("k").value_or(""), "img:tag");

  // Every later acquire is a reuse of the published result.
  auto reuse = a.acquire("k");
  ASSERT_TRUE(reuse.ok());
  EXPECT_TRUE(reuse.value().reuse);
  EXPECT_EQ(reuse.value().output, "img:tag");
}

TEST(FleetLeaseTest, WaiterPollsUntilHolderPublishes) {
  auto store = std::make_shared<store::MemStore>();
  obs::MetricsRegistry metrics;
  LeaseCoordinator::Options opts;
  opts.replica_id = "holder";
  opts.ttl = std::chrono::milliseconds(5000);  // holder stays alive throughout
  LeaseCoordinator holder(store, nullptr, opts);
  LeaseCoordinator::Options w_opts = opts;
  w_opts.replica_id = "waiter";
  LeaseCoordinator waiter(store, nullptr, w_opts);
  waiter.set_metrics(&metrics);

  auto held = holder.acquire("k");
  ASSERT_TRUE(held.ok());

  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    holder.release("k", LeaseCoordinator::Outcome::succeeded, "img:tag",
                   held.value().epoch);
  });
  auto got = waiter.acquire("k");
  publisher.join();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().reuse);
  EXPECT_EQ(got.value().output, "img:tag");
  EXPECT_GT(got.value().wait_ms, 0.0);
  EXPECT_EQ(metrics.counter_value("fleet.lease.waits"), 1u);
  EXPECT_EQ(metrics.counter_value("fleet.lease.reused"), 1u);
}

TEST(FleetLeaseTest, TornLeaseRecordIsClaimableNotWedged) {
  auto store = std::make_shared<store::MemStore>();
  // A torn write left garbage under the lease key.
  ASSERT_TRUE(store->put("fleet/lease/k", "not a lease record").ok());
  LeaseCoordinator::Options opts;
  opts.replica_id = "a";
  LeaseCoordinator a(store, nullptr, opts);
  auto grant = a.acquire("k");
  ASSERT_TRUE(grant.ok());
  EXPECT_FALSE(grant.value().reuse);
  EXPECT_EQ(a.read_lease("k")->owner, "a");
}

// ---------------------------------------------------------------------------
// Fleet over a shared store.

TEST(FleetTest, IdenticalSubmissionsAcrossReplicasBuildExactlyOnce) {
  const std::string want = reference_digest();

  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  FleetOptions options;
  options.replicas = 3;
  options.lease_ttl = std::chrono::seconds(30);  // far above any build here
  Fleet fleet(hub, options);
  ASSERT_TRUE(fleet.add_system(kSys, make_target()).ok());

  // The same request lands on every replica at once — the N-clients-hit-N-
  // replicas worst case a load balancer produces.
  std::vector<FleetTicket> tickets;
  for (std::size_t i = 0; i < 3; ++i) {
    auto ticket = fleet.submit_to(i, {"hub/minimd", "1.0", kSys});
    ASSERT_TRUE(ticket.ok()) << ticket.error().to_string();
    tickets.push_back(ticket.value());
  }

  int built = 0, reused = 0;
  for (const FleetTicket& ticket : tickets) {
    auto done = fleet.wait(ticket);
    ASSERT_TRUE(done.ok());
    ASSERT_EQ(done.value().state, JobState::succeeded)
        << done.value().result.error().to_string();
    EXPECT_EQ(done.value().output, std::string("hub/minimd:") + kOutTag);
    if (done.value().trace.fleet_reuse) {
      ++reused;
      EXPECT_EQ(done.value().trace.compile_jobs, 0u);  // never touched the toolchain
    } else {
      ++built;
      EXPECT_GT(done.value().trace.compile_jobs, 0u);
    }
  }
  // Exactly one replica compiled; the other two adopted its published image.
  EXPECT_EQ(built, 1);
  EXPECT_EQ(reused, 2);

  FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.succeeded, 3u);
  EXPECT_EQ(stats.leases_acquired, 1u);
  EXPECT_EQ(stats.fleet_reused, 2u);
  EXPECT_EQ(stats.lease_steals, 0u);
  EXPECT_EQ(stats.coordinator_errors, 0u);

  // And the one build is bit-identical to the uncoordinated reference.
  EXPECT_EQ(hub.resolve("hub/minimd", kOutTag).value().value, want);
}

TEST(FleetTest, CrossReplicaWarmCacheThroughSharedStore) {
  const std::string want = reference_digest();

  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  FleetOptions options;
  options.replicas = 2;
  Fleet fleet(hub, options);
  ASSERT_TRUE(fleet.add_system(kSys, make_target()).ok());

  // Replica 0 builds cold, writing every compile through to the shared store.
  auto first = fleet.submit_to(0, {"hub/minimd", "1.0", kSys});
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(fleet.wait(first.value()).value().state, JobState::succeeded);

  // Expire the global memo (a production deployment ages done markers out),
  // forcing replica 1 to run the rebuild itself rather than adopt the image.
  const std::string key = job_key(hub, "hub/minimd", "1.0");
  ASSERT_TRUE(fleet.store()->erase(std::string(kDonePrefix) + key).ok());

  auto second = fleet.submit_to(1, {"hub/minimd", "1.0", kSys});
  ASSERT_TRUE(second.ok());
  auto done = fleet.wait(second.value());
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done.value().state, JobState::succeeded)
      << done.value().result.error().to_string();
  // Replica 1 never compiled these jobs before, yet every one of them hit:
  // its local misses fell back to the entries replica 0 pushed to the store.
  EXPECT_FALSE(done.value().trace.fleet_reuse);
  EXPECT_GT(done.value().trace.cache_hits, 0u);
  EXPECT_EQ(done.value().trace.cache_misses, 0u);
  EXPECT_GT(fleet.stats().cache_remote_hits, 0u);
  EXPECT_EQ(hub.resolve("hub/minimd", kOutTag).value().value, want);
}

TEST(FleetTest, CoordinatorTimeoutDegradesToUncoordinatedBuild) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  FleetOptions options;
  options.replicas = 2;
  options.lease_ttl = std::chrono::seconds(60);      // holder never expires...
  options.lease_max_wait = std::chrono::milliseconds(30);  // ...waiters give up
  Fleet fleet(hub, options);
  ASSERT_TRUE(fleet.add_system(kSys, make_target()).ok());

  // Wedge the lease from outside: a holder that never finishes.
  const std::string key = job_key(hub, "hub/minimd", "1.0");
  auto wedge = fleet.coordinator(0).acquire(key);
  ASSERT_TRUE(wedge.ok());

  auto ticket = fleet.submit_to(1, {"hub/minimd", "1.0", kSys});
  ASSERT_TRUE(ticket.ok());
  auto done = fleet.wait(ticket.value());
  ASSERT_TRUE(done.ok());
  // Coordination timed out, the build went ahead anyway and succeeded.
  ASSERT_EQ(done.value().state, JobState::succeeded)
      << done.value().result.error().to_string();
  EXPECT_FALSE(done.value().trace.fleet_reuse);
  EXPECT_EQ(fleet.stats().coordinator_errors, 1u);
}

TEST(FleetTest, RoundRobinSpreadsSubmissionsAcrossReplicas) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  FleetOptions options;
  options.replicas = 2;
  Fleet fleet(hub, options);
  ASSERT_TRUE(fleet.add_system(kSys, make_target()).ok());

  auto first = fleet.submit({"hub/minimd", "1.0", kSys});
  auto second = fleet.submit({"hub/minimd", "1.0", kSys});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first.value().replica, second.value().replica);
  EXPECT_EQ(fleet.wait(first.value()).value().state, JobState::succeeded);
  EXPECT_EQ(fleet.wait(second.value()).value().state, JobState::succeeded);
  // Two replicas, one key: one built, one reused or coalesced globally.
  EXPECT_EQ(fleet.stats().leases_acquired, 1u);
}

// ---------------------------------------------------------------------------
// Flagship failure path: holder crashes mid-rebuild → lease expires →
// another replica takes over via journal replay → bit-identical image.

TEST(FleetTest, CrashedHolderLeaseExpiresAndAnotherReplicaResumesFromJournal) {
  const std::string want = reference_digest();

  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  support::FaultInjector faults;
  FleetOptions options;
  options.replicas = 2;
  options.rebuild_threads = 1;  // a crash must unwind the submitting worker
  options.faults = &faults;
  options.lease_ttl = std::chrono::milliseconds(60);
  Fleet fleet(hub, options);
  ASSERT_TRUE(fleet.add_system(kSys, make_target()).ok());

  // Replica 0 dies inside compile job 2, after job 1's commit landed in the
  // shared journal. It still holds the lease — dead processes release nothing.
  faults.crash_at(core::kCrashJobCommitted, 2);
  auto doomed = fleet.submit_to(0, {"hub/minimd", "1.0", kSys});
  ASSERT_TRUE(doomed.ok());
  auto crashed = fleet.wait(doomed.value());
  ASSERT_TRUE(crashed.ok());
  ASSERT_EQ(crashed.value().state, JobState::failed);
  EXPECT_TRUE(crashed.value().trace.crashed);
  EXPECT_EQ(fleet.journals().size(), 1u);
  const std::string key = job_key(hub, "hub/minimd", "1.0");
  auto stale = fleet.coordinator(1).read_lease(key);
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->owner, "replica0");
  faults.clear_all();

  // Replica 1 recovers the shared journal store: it resubmits the interrupted
  // request, waits out the dead holder's TTL, steals the lease, and finishes
  // from the journal instead of recompiling committed work.
  auto recovery = fleet.recover(1);
  ASSERT_TRUE(recovery.ok()) << recovery.error().to_string();
  EXPECT_EQ(recovery.value().journals_found, 1u);
  ASSERT_EQ(recovery.value().resubmitted.size(), 1u);

  auto done = fleet.wait(FleetTicket{1, recovery.value().resubmitted[0]});
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done.value().state, JobState::succeeded)
      << done.value().result.error().to_string();
  EXPECT_TRUE(done.value().trace.lease_stolen);
  EXPECT_GT(done.value().trace.journal_replayed, 0u);

  FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.lease_steals, 1u);
  EXPECT_EQ(stats.crashed, 1u);

  // The takeover build is bit-identical to the uninterrupted reference, and
  // the retired journal leaves nothing to recover.
  EXPECT_EQ(hub.resolve("hub/minimd", kOutTag).value().value, want);
  EXPECT_EQ(fleet.journals().size(), 0u);
  EXPECT_EQ(fleet.recover(0).value().journals_found, 0u);
}

}  // namespace
}  // namespace comt::fleet
