// Adapter ablation (beyond the paper's figures): isolates each system
// adapter's contribution on three representative workloads, including two
// extensions the paper leaves as future work — the BOLT-style post-link
// layout adapter (§5.3's "binary-level layout optimization") and rebuilding
// with the freely redistributable LLVM toolchain instead of the vendor
// compiler (the artifact's fallback, AD §B.2/B.3: improvements "can be
// greatly diminished" with LLVM).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/adapters.hpp"
#include "support/strings.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

/// A cxxo variant that retargets the graph at the LLVM toolchain instead of
/// the vendor compiler — exactly what the public artifact ships.
class LlvmToolchainAdapter final : public core::SystemAdapter {
 public:
  std::string_view name() const override { return "cxxo-llvm"; }
  Status adapt_graph(core::BuildGraph& graph,
                     const core::AdapterContext& context) const override {
    (void)context;
    for (core::GraphNode& node : graph.nodes()) {
      if (!node.compile.has_value()) continue;
      // The distro archive ships clang at /usr/bin; Sysenv images inherit it.
      std::string base = path_basename(node.compile->program);
      node.compile->program = base == "mpicc" || base == "mpicxx"
                                  ? "/usr/bin/mpicc"  // wrapper stays generic
                                  : "/usr/bin/clang";
      node.compile->march = "native";
      node.compile->opt_level = std::max(node.compile->opt_level, 3);
      node.toolchain_id = "llvm";
    }
    return Status::success();
  }
};

struct Step {
  const char* label;
  std::vector<const core::SystemAdapter*> adapters;
};

int run_app(const char* app_name, workloads::Evaluation& world) {
  const workloads::AppSpec* app = workloads::find_app(app_name);
  COMT_ASSERT(app != nullptr, "app missing from corpus");
  auto prepared = world.prepare(*app);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare(%s): %s\n", app_name,
                 prepared.error().to_string().c_str());
    return 1;
  }
  const workloads::WorkloadInput& input = app->inputs.front();
  const int nodes = world.system().nodes;

  core::LibraryAdapter libo;
  core::ToolchainAdapter cxxo;
  core::LtoAdapter lto;
  core::PgoAdapter pgo;
  core::LayoutAdapter layout;
  LlvmToolchainAdapter llvm;

  const std::vector<Step> steps = {
      {"libo only", {&libo}},
      {"cxxo only", {&cxxo}},
      {"libo+cxxo (adapted)", {&libo, &cxxo}},
      {"+lto", {&libo, &cxxo, &lto}},
      {"+lto+pgo (optimized)", {&libo, &cxxo, &lto, &pgo}},
      {"+lto+pgo+layout", {&libo, &cxxo, &lto, &pgo, &layout}},
      {"libo+cxxo via LLVM", {&libo, &llvm}},
  };

  auto original = world.run_image(prepared.value().dist_tag, input, nodes);
  if (!original.ok()) return 1;
  std::printf("%s (%s, %d nodes)\n", input.display_name(app->name).c_str(),
              world.system().name.c_str(), nodes);
  std::printf("  %-22s %8.2f s\n", "original", original.value());
  for (const Step& step : steps) {
    auto tag = world.transform(prepared.value(), step.adapters, input, nodes);
    if (!tag.ok()) {
      std::fprintf(stderr, "  %-22s FAILED: %s\n", step.label,
                   tag.error().to_string().c_str());
      return 1;
    }
    auto seconds = world.run_image(tag.value(), input, nodes);
    if (!seconds.ok()) return 1;
    std::printf("  %-22s %8.2f s   (-%.1f%% vs original)\n", step.label,
                seconds.value(), (1.0 - seconds.value() / original.value()) * 100.0);
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main() {
  std::printf("Adapter ablation — per-adapter contribution and extensions\n\n");
  workloads::Evaluation world(sysmodel::SystemProfile::x86_cluster());
  for (const char* app : {"lulesh", "openmx", "miniamr"}) {
    if (run_app(app, world) != 0) return 1;
  }
  std::printf("notes: the layout adapter rides on the PGO profile (no profile, no\n"
              "reordering); the LLVM rung lands between generic and vendor, matching\n"
              "the artifact's caveat that free-toolchain gains are diminished.\n");
  return 0;
}
