#include "toolchain/options.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace comt::toolchain {
namespace {

using enum OptionKind;
using enum OptionCategory;

// The option table. Names are real GCC options; kinds follow the GCC driver's
// handling. Negatable rows accept the -fno-/-mno-/-Wno- form. This table is
// the reproduction of the paper's manually derived GCC command-line model.
constexpr OptionSpec kSpecs[] = {
    // --- output / pipeline control -----------------------------------------
    {"-o", separate, output},
    {"-c", flag, output},
    {"-S", flag, output},
    {"-E", flag, output},
    {"-pipe", flag, output},
    {"-v", flag, output},
    {"--version", flag, output},
    {"-###", flag, output},
    {"--help", flag, output},
    {"-x", joined_or_separate, language},
    {"-pass-exit-codes", flag, output},
    {"--verbose", flag, output},
    {"-save-temps", flag, output},
    {"-time", flag, output},
    {"-dumpbase", separate, output},
    {"-dumpdir", separate, output},
    {"-dumpmachine", flag, output},
    {"-dumpversion", flag, output},
    {"-dumpspecs", flag, output},

    // --- language ----------------------------------------------------------
    {"-std", joined_eq, language},
    {"-ansi", flag, language},
    {"-fpermissive", flag, language},
    {"-ffreestanding", negatable, language},
    {"-fhosted", negatable, language},
    {"-fexceptions", negatable, language},
    {"-frtti", negatable, language},
    {"-fno-threadsafe-statics", flag, language},
    {"-fopenmp", negatable, language},
    {"-fopenmp-simd", negatable, language},
    {"-fopenacc", negatable, language},
    {"-fcoroutines", negatable, language},
    {"-fmodules-ts", negatable, language},
    {"-fchar8_t", negatable, language},
    {"-fsigned-char", negatable, language},
    {"-funsigned-char", negatable, language},
    {"-fwide-exec-charset", joined_eq, language},
    {"-fexec-charset", joined_eq, language},
    {"-finput-charset", joined_eq, language},
    {"-fvisibility", joined_eq, language},
    {"-fvisibility-inlines-hidden", negatable, language},
    {"-fshort-enums", negatable, language},
    {"-fshort-wchar", negatable, language},
    {"-fgnu89-inline", negatable, language},
    {"-fms-extensions", negatable, language},
    {"-fplan9-extensions", negatable, language},
    {"-fcond-mismatch", negatable, language},
    {"-flax-vector-conversions", negatable, language},
    {"-fnew-inheriting-ctors", negatable, language},
    {"-fsized-deallocation", negatable, language},
    {"-faligned-new", negatable, language},
    {"-fconcepts", negatable, language},
    {"-ftemplate-depth", joined_eq, language},
    {"-fconstexpr-depth", joined_eq, language},
    {"-fconstexpr-loop-limit", joined_eq, language},
    {"-fconstexpr-ops-limit", joined_eq, language},
    {"-fimplicit-templates", negatable, language},
    {"-fenforce-eh-specs", negatable, language},
    {"-fstrong-eval-order", negatable, language},

    // --- preprocessor --------------------------------------------------------
    {"-D", joined_or_separate, preprocessor},
    {"-U", joined_or_separate, preprocessor},
    {"-I", joined_or_separate, preprocessor},
    {"-include", separate, preprocessor},
    {"-imacros", separate, preprocessor},
    {"-iquote", joined_or_separate, preprocessor},
    {"-isystem", joined_or_separate, preprocessor},
    {"-idirafter", joined_or_separate, preprocessor},
    {"-iprefix", separate, preprocessor},
    {"-iwithprefix", separate, preprocessor},
    {"-isysroot", separate, preprocessor},
    {"-nostdinc", flag, preprocessor},
    {"-nostdinc++", flag, preprocessor},
    {"-M", flag, preprocessor},
    {"-MM", flag, preprocessor},
    {"-MD", flag, preprocessor},
    {"-MMD", flag, preprocessor},
    {"-MG", flag, preprocessor},
    {"-MP", flag, preprocessor},
    {"-MF", separate, preprocessor},
    {"-MT", separate, preprocessor},
    {"-MQ", separate, preprocessor},
    {"-C", flag, preprocessor},
    {"-CC", flag, preprocessor},
    {"-P", flag, preprocessor},
    {"-H", flag, preprocessor},
    {"-traditional", flag, preprocessor},
    {"-traditional-cpp", flag, preprocessor},
    {"-trigraphs", flag, preprocessor},
    {"-Xpreprocessor", separate, preprocessor},
    {"-Wp", joined, preprocessor},
    {"-A", joined_or_separate, preprocessor},
    {"-d", joined, preprocessor},
    {"-fdirectives-only", negatable, preprocessor},
    {"-fdollars-in-identifiers", negatable, preprocessor},
    {"-fextended-identifiers", negatable, preprocessor},
    {"-fmax-include-depth", joined_eq, preprocessor},
    {"-ftabstop", joined_eq, preprocessor},
    {"-ftrack-macro-expansion", joined_eq, preprocessor},
    {"-fworking-directory", negatable, preprocessor},
    {"-fpch-deps", negatable, preprocessor},
    {"-fpch-preprocess", negatable, preprocessor},

    // --- optimization (the -O family is parsed specially; these are -f) -----
    {"-faggressive-loop-optimizations", negatable, optimization},
    {"-falign-functions", negatable, optimization},
    {"-falign-jumps", negatable, optimization},
    {"-falign-labels", negatable, optimization},
    {"-falign-loops", negatable, optimization},
    {"-fassociative-math", negatable, optimization},
    {"-fauto-inc-dec", negatable, optimization},
    {"-fbranch-count-reg", negatable, optimization},
    {"-fbranch-probabilities", negatable, optimization},
    {"-fcaller-saves", negatable, optimization},
    {"-fcode-hoisting", negatable, optimization},
    {"-fcombine-stack-adjustments", negatable, optimization},
    {"-fcompare-elim", negatable, optimization},
    {"-fcprop-registers", negatable, optimization},
    {"-fcrossjumping", negatable, optimization},
    {"-fcse-follow-jumps", negatable, optimization},
    {"-fcse-skip-blocks", negatable, optimization},
    {"-fcx-fortran-rules", negatable, optimization},
    {"-fcx-limited-range", negatable, optimization},
    {"-fdce", negatable, optimization},
    {"-fdefer-pop", negatable, optimization},
    {"-fdelayed-branch", negatable, optimization},
    {"-fdelete-null-pointer-checks", negatable, optimization},
    {"-fdevirtualize", negatable, optimization},
    {"-fdevirtualize-speculatively", negatable, optimization},
    {"-fdse", negatable, optimization},
    {"-fearly-inlining", negatable, optimization},
    {"-fexpensive-optimizations", negatable, optimization},
    {"-ffast-math", negatable, optimization},
    {"-ffinite-loops", negatable, optimization},
    {"-ffinite-math-only", negatable, optimization},
    {"-ffloat-store", negatable, optimization},
    {"-fforward-propagate", negatable, optimization},
    {"-ffp-contract", joined_eq, optimization},
    {"-ffunction-cse", negatable, optimization},
    {"-ffunction-sections", negatable, optimization},
    {"-fdata-sections", negatable, optimization},
    {"-fgcse", negatable, optimization},
    {"-fgcse-after-reload", negatable, optimization},
    {"-fgcse-las", negatable, optimization},
    {"-fgcse-lm", negatable, optimization},
    {"-fgcse-sm", negatable, optimization},
    {"-fguess-branch-probability", negatable, optimization},
    {"-fhoist-adjacent-loads", negatable, optimization},
    {"-fif-conversion", negatable, optimization},
    {"-fif-conversion2", negatable, optimization},
    {"-findirect-inlining", negatable, optimization},
    {"-finline", negatable, optimization},
    {"-finline-functions", negatable, optimization},
    {"-finline-functions-called-once", negatable, optimization},
    {"-finline-limit", joined_eq, optimization},
    {"-finline-small-functions", negatable, optimization},
    {"-fipa-bit-cp", negatable, optimization},
    {"-fipa-cp", negatable, optimization},
    {"-fipa-cp-clone", negatable, optimization},
    {"-fipa-icf", negatable, optimization},
    {"-fipa-modref", negatable, optimization},
    {"-fipa-profile", negatable, optimization},
    {"-fipa-pta", negatable, optimization},
    {"-fipa-pure-const", negatable, optimization},
    {"-fipa-ra", negatable, optimization},
    {"-fipa-reference", negatable, optimization},
    {"-fipa-sra", negatable, optimization},
    {"-fipa-vrp", negatable, optimization},
    {"-fira-algorithm", joined_eq, optimization},
    {"-fira-region", joined_eq, optimization},
    {"-fira-hoist-pressure", negatable, optimization},
    {"-fisolate-erroneous-paths-dereference", negatable, optimization},
    {"-fivopts", negatable, optimization},
    {"-fkeep-inline-functions", negatable, optimization},
    {"-fkeep-static-consts", negatable, optimization},
    {"-flive-range-shrinkage", negatable, optimization},
    {"-floop-block", negatable, optimization},
    {"-floop-interchange", negatable, optimization},
    {"-floop-nest-optimize", negatable, optimization},
    {"-floop-parallelize-all", negatable, optimization},
    {"-floop-strip-mine", negatable, optimization},
    {"-floop-unroll-and-jam", negatable, optimization},
    {"-fmath-errno", negatable, optimization},
    {"-fmerge-all-constants", negatable, optimization},
    {"-fmerge-constants", negatable, optimization},
    {"-fmodulo-sched", negatable, optimization},
    {"-fmove-loop-invariants", negatable, optimization},
    {"-fomit-frame-pointer", negatable, optimization},
    {"-foptimize-sibling-calls", negatable, optimization},
    {"-foptimize-strlen", negatable, optimization},
    {"-fpartial-inlining", negatable, optimization},
    {"-fpeel-loops", negatable, optimization},
    {"-fpeephole", negatable, optimization},
    {"-fpeephole2", negatable, optimization},
    {"-fplt", negatable, optimization},
    {"-fpredictive-commoning", negatable, optimization},
    {"-fprefetch-loop-arrays", negatable, optimization},
    {"-free", negatable, optimization},
    {"-freciprocal-math", negatable, optimization},
    {"-freg-struct-return", negatable, optimization},
    {"-frename-registers", negatable, optimization},
    {"-freorder-blocks", negatable, optimization},
    {"-freorder-blocks-algorithm", joined_eq, optimization},
    {"-freorder-blocks-and-partition", negatable, optimization},
    {"-freorder-functions", negatable, optimization},
    {"-frerun-cse-after-loop", negatable, optimization},
    {"-freschedule-modulo-scheduled-loops", negatable, optimization},
    {"-frounding-math", negatable, optimization},
    {"-fsched-interblock", negatable, optimization},
    {"-fsched-pressure", negatable, optimization},
    {"-fsched-spec", negatable, optimization},
    {"-fschedule-insns", negatable, optimization},
    {"-fschedule-insns2", negatable, optimization},
    {"-fsection-anchors", negatable, optimization},
    {"-fsel-sched-pipelining", negatable, optimization},
    {"-fselective-scheduling", negatable, optimization},
    {"-fshrink-wrap", negatable, optimization},
    {"-fsignaling-nans", negatable, optimization},
    {"-fsigned-zeros", negatable, optimization},
    {"-fsingle-precision-constant", negatable, optimization},
    {"-fsplit-ivs-in-unroller", negatable, optimization},
    {"-fsplit-loops", negatable, optimization},
    {"-fsplit-paths", negatable, optimization},
    {"-fsplit-wide-types", negatable, optimization},
    {"-fssa-backprop", negatable, optimization},
    {"-fssa-phiopt", negatable, optimization},
    {"-fstack-protector", negatable, optimization},
    {"-fstack-protector-all", flag, optimization},
    {"-fstack-protector-strong", flag, optimization},
    {"-fstdarg-opt", negatable, optimization},
    {"-fstore-merging", negatable, optimization},
    {"-fstrict-aliasing", negatable, optimization},
    {"-fstrict-overflow", negatable, optimization},
    {"-fthread-jumps", negatable, optimization},
    {"-ftree-bit-ccp", negatable, optimization},
    {"-ftree-builtin-call-dce", negatable, optimization},
    {"-ftree-ccp", negatable, optimization},
    {"-ftree-ch", negatable, optimization},
    {"-ftree-coalesce-vars", negatable, optimization},
    {"-ftree-copy-prop", negatable, optimization},
    {"-ftree-dce", negatable, optimization},
    {"-ftree-dominator-opts", negatable, optimization},
    {"-ftree-dse", negatable, optimization},
    {"-ftree-forwprop", negatable, optimization},
    {"-ftree-fre", negatable, optimization},
    {"-ftree-loop-distribute-patterns", negatable, optimization},
    {"-ftree-loop-distribution", negatable, optimization},
    {"-ftree-loop-if-convert", negatable, optimization},
    {"-ftree-loop-im", negatable, optimization},
    {"-ftree-loop-ivcanon", negatable, optimization},
    {"-ftree-loop-linear", negatable, optimization},
    {"-ftree-loop-optimize", negatable, optimization},
    {"-ftree-loop-vectorize", negatable, optimization},
    {"-ftree-parallelize-loops", joined_eq, optimization},
    {"-ftree-partial-pre", negatable, optimization},
    {"-ftree-phiprop", negatable, optimization},
    {"-ftree-pre", negatable, optimization},
    {"-ftree-pta", negatable, optimization},
    {"-ftree-reassoc", negatable, optimization},
    {"-ftree-scev-cprop", negatable, optimization},
    {"-ftree-sink", negatable, optimization},
    {"-ftree-slp-vectorize", negatable, optimization},
    {"-ftree-slsr", negatable, optimization},
    {"-ftree-sra", negatable, optimization},
    {"-ftree-switch-conversion", negatable, optimization},
    {"-ftree-tail-merge", negatable, optimization},
    {"-ftree-ter", negatable, optimization},
    {"-ftree-vectorize", negatable, optimization},
    {"-ftree-vrp", negatable, optimization},
    {"-funconstrained-commons", negatable, optimization},
    {"-funit-at-a-time", negatable, optimization},
    {"-funroll-all-loops", negatable, optimization},
    {"-funroll-loops", negatable, optimization},
    {"-funsafe-math-optimizations", negatable, optimization},
    {"-funswitch-loops", negatable, optimization},
    {"-fvariable-expansion-in-unroller", negatable, optimization},
    {"-fvect-cost-model", joined_eq, optimization},
    {"-fvpt", negatable, optimization},
    {"-fweb", negatable, optimization},
    {"-fwhole-program", negatable, optimization},
    {"-fwrapv", negatable, optimization},
    {"-fzero-initialized-in-bss", negatable, optimization},
    {"-fexcess-precision", joined_eq, optimization},
    {"-fstack-reuse", joined_eq, optimization},
    {"-fsimd-cost-model", joined_eq, optimization},
    {"-flive-patching", joined_eq, optimization},
    {"-fpack-struct", negatable, optimization},
    {"-ftrapv", negatable, optimization},
    {"-fbounds-check", negatable, optimization},
    {"-fstack-limit-register", joined_eq, optimization},
    {"-fstack-limit-symbol", joined_eq, optimization},
    {"--param", joined_or_separate, optimization},

    // --- machine dependent ---------------------------------------------------
    {"-march", joined_eq, machine},
    {"-mtune", joined_eq, machine},
    {"-mcpu", joined_eq, machine},
    {"-mabi", joined_eq, machine},
    {"-mfpu", joined_eq, machine},
    {"-mfloat-abi", joined_eq, machine},
    {"-mfpmath", joined_eq, machine},
    {"-mbranch-cost", joined_eq, machine},
    {"-mtls-dialect", joined_eq, machine},
    {"-mcmodel", joined_eq, machine},
    {"-mstack-protector-guard", joined_eq, machine},
    {"-mpreferred-stack-boundary", joined_eq, machine},
    {"-m32", flag, machine},
    {"-m64", flag, machine},
    {"-mx32", flag, machine},
    {"-m16", flag, machine},
    {"-mmmx", negatable, machine},
    {"-msse", negatable, machine},
    {"-msse2", negatable, machine},
    {"-msse3", negatable, machine},
    {"-mssse3", negatable, machine},
    {"-msse4", negatable, machine},
    {"-msse4.1", negatable, machine},
    {"-msse4.2", negatable, machine},
    {"-msse4a", negatable, machine},
    {"-mavx", negatable, machine},
    {"-mavx2", negatable, machine},
    {"-mavx512f", negatable, machine},
    {"-mavx512cd", negatable, machine},
    {"-mavx512bw", negatable, machine},
    {"-mavx512dq", negatable, machine},
    {"-mavx512vl", negatable, machine},
    {"-mavx512vnni", negatable, machine},
    {"-mavx512bf16", negatable, machine},
    {"-mfma", negatable, machine},
    {"-mfma4", negatable, machine},
    {"-mbmi", negatable, machine},
    {"-mbmi2", negatable, machine},
    {"-mlzcnt", negatable, machine},
    {"-mpopcnt", negatable, machine},
    {"-maes", negatable, machine},
    {"-msha", negatable, machine},
    {"-mpclmul", negatable, machine},
    {"-mrdrnd", negatable, machine},
    {"-mrdseed", negatable, machine},
    {"-mf16c", negatable, machine},
    {"-mxsave", negatable, machine},
    {"-mprefetchwt1", negatable, machine},
    {"-mclflushopt", negatable, machine},
    {"-mmovbe", negatable, machine},
    {"-mlong-double-64", flag, machine},
    {"-mlong-double-80", flag, machine},
    {"-mlong-double-128", flag, machine},
    {"-mhard-float", flag, machine},
    {"-msoft-float", flag, machine},
    {"-maccumulate-outgoing-args", negatable, machine},
    {"-mred-zone", negatable, machine},
    {"-mpush-args", negatable, machine},
    {"-momit-leaf-frame-pointer", negatable, machine},
    {"-mvzeroupper", negatable, machine},
    {"-mavx256-split-unaligned-load", negatable, machine},
    {"-mavx256-split-unaligned-store", negatable, machine},
    {"-mgeneral-regs-only", flag, machine},
    {"-mbig-endian", flag, machine},
    {"-mlittle-endian", flag, machine},
    {"-mstrict-align", negatable, machine},
    {"-mfix-cortex-a53-835769", negatable, machine},
    {"-mfix-cortex-a53-843419", negatable, machine},
    {"-mlow-precision-recip-sqrt", negatable, machine},
    {"-mlow-precision-sqrt", negatable, machine},
    {"-mlow-precision-div", negatable, machine},
    {"-msve-vector-bits", joined_eq, machine},
    {"-moutline-atomics", negatable, machine},

    // --- warnings ------------------------------------------------------------
    {"-Wall", flag, warning},
    {"-Wextra", flag, warning},
    {"-Werror", flag, warning},
    {"-Werror=", joined, warning},
    {"-Wfatal-errors", flag, warning},
    {"-Wpedantic", flag, warning},
    {"-pedantic", flag, warning},
    {"-pedantic-errors", flag, warning},
    {"-w", flag, warning},
    {"-Wabi", negatable, warning},
    {"-Waddress", negatable, warning},
    {"-Waggregate-return", negatable, warning},
    {"-Walloc-zero", negatable, warning},
    {"-Walloca", negatable, warning},
    {"-Warray-bounds", negatable, warning},
    {"-Wattributes", negatable, warning},
    {"-Wbool-compare", negatable, warning},
    {"-Wbool-operation", negatable, warning},
    {"-Wcast-align", negatable, warning},
    {"-Wcast-qual", negatable, warning},
    {"-Wchar-subscripts", negatable, warning},
    {"-Wclobbered", negatable, warning},
    {"-Wcomment", negatable, warning},
    {"-Wconversion", negatable, warning},
    {"-Wdangling-else", negatable, warning},
    {"-Wdate-time", negatable, warning},
    {"-Wdeprecated", negatable, warning},
    {"-Wdeprecated-declarations", negatable, warning},
    {"-Wdisabled-optimization", negatable, warning},
    {"-Wdouble-promotion", negatable, warning},
    {"-Wduplicated-branches", negatable, warning},
    {"-Wduplicated-cond", negatable, warning},
    {"-Wempty-body", negatable, warning},
    {"-Wenum-compare", negatable, warning},
    {"-Wfloat-conversion", negatable, warning},
    {"-Wfloat-equal", negatable, warning},
    {"-Wformat", negatable, warning},
    {"-Wformat-nonliteral", negatable, warning},
    {"-Wformat-overflow", negatable, warning},
    {"-Wformat-security", negatable, warning},
    {"-Wformat-truncation", negatable, warning},
    {"-Wframe-larger-than", joined_eq, warning},
    {"-Wignored-qualifiers", negatable, warning},
    {"-Wimplicit-fallthrough", negatable, warning},
    {"-Winit-self", negatable, warning},
    {"-Winline", negatable, warning},
    {"-Wlogical-op", negatable, warning},
    {"-Wmain", negatable, warning},
    {"-Wmaybe-uninitialized", negatable, warning},
    {"-Wmisleading-indentation", negatable, warning},
    {"-Wmissing-braces", negatable, warning},
    {"-Wmissing-declarations", negatable, warning},
    {"-Wmissing-field-initializers", negatable, warning},
    {"-Wmissing-include-dirs", negatable, warning},
    {"-Wnarrowing", negatable, warning},
    {"-Wnonnull", negatable, warning},
    {"-Wnull-dereference", negatable, warning},
    {"-Wold-style-cast", negatable, warning},
    {"-Woverflow", negatable, warning},
    {"-Woverloaded-virtual", negatable, warning},
    {"-Wpacked", negatable, warning},
    {"-Wpadded", negatable, warning},
    {"-Wparentheses", negatable, warning},
    {"-Wpointer-arith", negatable, warning},
    {"-Wredundant-decls", negatable, warning},
    {"-Wreorder", negatable, warning},
    {"-Wrestrict", negatable, warning},
    {"-Wreturn-type", negatable, warning},
    {"-Wsequence-point", negatable, warning},
    {"-Wshadow", negatable, warning},
    {"-Wsign-compare", negatable, warning},
    {"-Wsign-conversion", negatable, warning},
    {"-Wsizeof-pointer-memaccess", negatable, warning},
    {"-Wstack-protector", negatable, warning},
    {"-Wstrict-aliasing", negatable, warning},
    {"-Wstrict-overflow", negatable, warning},
    {"-Wswitch", negatable, warning},
    {"-Wswitch-default", negatable, warning},
    {"-Wswitch-enum", negatable, warning},
    {"-Wtautological-compare", negatable, warning},
    {"-Wtrigraphs", negatable, warning},
    {"-Wtype-limits", negatable, warning},
    {"-Wundef", negatable, warning},
    {"-Wuninitialized", negatable, warning},
    {"-Wunknown-pragmas", negatable, warning},
    {"-Wunreachable-code", negatable, warning},
    {"-Wunsafe-loop-optimizations", negatable, warning},
    {"-Wunused", negatable, warning},
    {"-Wunused-but-set-parameter", negatable, warning},
    {"-Wunused-but-set-variable", negatable, warning},
    {"-Wunused-function", negatable, warning},
    {"-Wunused-label", negatable, warning},
    {"-Wunused-local-typedefs", negatable, warning},
    {"-Wunused-macros", negatable, warning},
    {"-Wunused-parameter", negatable, warning},
    {"-Wunused-result", negatable, warning},
    {"-Wunused-value", negatable, warning},
    {"-Wunused-variable", negatable, warning},
    {"-Wuseless-cast", negatable, warning},
    {"-Wvariadic-macros", negatable, warning},
    {"-Wvector-operation-performance", negatable, warning},
    {"-Wvla", negatable, warning},
    {"-Wvolatile-register-var", negatable, warning},
    {"-Wwrite-strings", negatable, warning},
    {"-Wzero-as-null-pointer-constant", negatable, warning},
    {"-Wsuggest-override", negatable, warning},
    {"-Wsuggest-final-types", negatable, warning},
    {"-Wsuggest-final-methods", negatable, warning},
    {"-Wsuggest-attribute", joined_eq, warning},

    // --- debugging -----------------------------------------------------------
    {"-g", flag, debug},
    {"-g0", flag, debug},
    {"-g1", flag, debug},
    {"-g2", flag, debug},
    {"-g3", flag, debug},
    {"-ggdb", flag, debug},
    {"-ggdb3", flag, debug},
    {"-gdwarf", flag, debug},
    {"-gdwarf-2", flag, debug},
    {"-gdwarf-3", flag, debug},
    {"-gdwarf-4", flag, debug},
    {"-gdwarf-5", flag, debug},
    {"-gsplit-dwarf", flag, debug},
    {"-gstabs", flag, debug},
    {"-fdebug-prefix-map", joined_eq, debug},
    {"-ffile-prefix-map", joined_eq, debug},
    {"-fmacro-prefix-map", joined_eq, debug},
    {"-fvar-tracking", negatable, debug},
    {"-fvar-tracking-assignments", negatable, debug},
    {"-feliminate-unused-debug-symbols", negatable, debug},
    {"-feliminate-unused-debug-types", negatable, debug},
    {"-femit-class-debug-always", negatable, debug},
    {"-fdebug-types-section", negatable, debug},
    {"-grecord-gcc-switches", flag, debug},
    {"-gno-record-gcc-switches", flag, debug},

    // --- sanitizers / instrumentation (kept generic) --------------------------
    {"-fsanitize", joined_eq, other},
    {"-fsanitize-recover", joined_eq, other},
    {"-fsanitize-address-use-after-scope", negatable, other},
    {"-fstack-check", negatable, other},
    {"-fstack-clash-protection", negatable, other},
    {"-fcf-protection", joined_eq, other},
    {"-finstrument-functions", negatable, other},
    {"-fpatchable-function-entry", joined_eq, other},

    // --- profiling / PGO -------------------------------------------------------
    {"-p", flag, profile},
    {"-pg", flag, profile},
    {"-fprofile-arcs", negatable, profile},
    {"-ftest-coverage", negatable, profile},
    {"--coverage", flag, profile},
    {"-fprofile-generate", negatable, profile},
    {"-fprofile-generate=", joined, profile},
    {"-fprofile-use", negatable, profile},
    {"-fprofile-use=", joined, profile},
    {"-fprofile-dir", joined_eq, profile},
    {"-fprofile-correction", negatable, profile},
    {"-fprofile-values", negatable, profile},
    {"-fprofile-reorder-functions", negatable, profile},
    {"-fprofile-partial-training", negatable, profile},
    {"-fprofile-update", joined_eq, profile},
    {"-fauto-profile", negatable, profile},
    {"-fauto-profile=", joined, profile},

    // --- LTO ---------------------------------------------------------------
    {"-flto", negatable, lto},
    {"-flto=", joined, lto},
    {"-flto-partition", joined_eq, lto},
    {"-flto-compression-level", joined_eq, lto},
    {"-ffat-lto-objects", negatable, lto},
    {"-fuse-linker-plugin", negatable, lto},
    {"-flto-odr-type-merging", negatable, lto},
    {"-fwpa", flag, lto},
    {"-fltrans", flag, lto},

    // --- code generation / linking -------------------------------------------
    {"-fPIC", flag, linker},
    {"-fpic", flag, linker},
    {"-fPIE", flag, linker},
    {"-fpie", flag, linker},
    {"-shared", flag, linker},
    {"-static", flag, linker},
    {"-static-libgcc", flag, linker},
    {"-static-libstdc++", flag, linker},
    {"-static-libasan", flag, linker},
    {"-symbolic", flag, linker},
    {"-rdynamic", flag, linker},
    {"-nostdlib", flag, linker},
    {"-nodefaultlibs", flag, linker},
    {"-nostartfiles", flag, linker},
    {"-nolibc", flag, linker},
    {"-pie", flag, linker},
    {"-no-pie", flag, linker},
    {"-r", flag, linker},
    {"-s", flag, linker},
    {"-l", joined_or_separate, linker},
    {"-L", joined_or_separate, linker},
    {"-T", separate, linker},
    {"-u", joined_or_separate, linker},
    {"-z", separate, linker},
    {"-Xlinker", separate, linker},
    {"-Wl", joined, linker},
    {"-Wa", joined, linker},
    {"-fuse-ld", joined_eq, linker},
    {"-pthread", flag, linker},
    {"-fwhole-program-vtables", negatable, linker},

    // --- directories -----------------------------------------------------------
    {"-B", joined_or_separate, directory},
    {"--sysroot", joined_eq, directory},
    {"-specs", joined_eq, directory},
    {"-working-directory", joined_eq, directory},
    {"-print-search-dirs", flag, directory},
    {"-print-libgcc-file-name", flag, directory},
    {"-print-file-name", joined_eq, directory},
    {"-print-prog-name", joined_eq, directory},
};

}  // namespace

const char* category_name(OptionCategory category) {
  switch (category) {
    case OptionCategory::output: return "output";
    case OptionCategory::language: return "language";
    case OptionCategory::preprocessor: return "preprocessor";
    case OptionCategory::optimization: return "optimization";
    case OptionCategory::machine: return "machine";
    case OptionCategory::warning: return "warning";
    case OptionCategory::debug: return "debug";
    case OptionCategory::linker: return "linker";
    case OptionCategory::directory: return "directory";
    case OptionCategory::profile: return "profile";
    case OptionCategory::lto: return "lto";
    case OptionCategory::other: return "other";
  }
  return "?";
}

const char* driver_mode_name(DriverMode mode) {
  switch (mode) {
    case DriverMode::preprocess: return "preprocess";
    case DriverMode::compile: return "compile";
    case DriverMode::assemble: return "assemble";
    case DriverMode::link: return "link";
  }
  return "?";
}

OptionTable::OptionTable(std::vector<OptionSpec> specs) : specs_(std::move(specs)) {
  for (const OptionSpec& spec : specs_) {
    by_name_.emplace(spec.name, &spec);
    if (spec.kind == OptionKind::joined || spec.kind == OptionKind::joined_or_separate) {
      joined_.push_back(&spec);
    }
  }
  std::sort(joined_.begin(), joined_.end(), [](const OptionSpec* a, const OptionSpec* b) {
    return a->name.size() > b->name.size();
  });
}

const OptionTable& OptionTable::gcc() {
  static const OptionTable table{{std::begin(kSpecs), std::end(kSpecs)}};
  return table;
}

const OptionSpec* OptionTable::find(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const OptionSpec* OptionTable::find_joined_prefix(std::string_view arg) const {
  for (const OptionSpec* spec : joined_) {
    if (starts_with(arg, spec->name) && arg.size() > spec->name.size()) return spec;
  }
  return nullptr;
}

bool CompileCommand::flag_enabled(std::string_view name) const {
  bool enabled = false;
  for (const GenericOption& option : generic) {
    if (option.name == name) enabled = option.enabled;
  }
  return enabled;
}

std::size_t CompileCommand::erase_generic(std::string_view name) {
  std::size_t before = generic.size();
  std::erase_if(generic, [&](const GenericOption& option) { return option.name == name; });
  return before - generic.size();
}

std::vector<std::string> CompileCommand::render() const {
  std::vector<std::string> argv;
  argv.push_back(program);
  switch (mode) {
    case DriverMode::preprocess: argv.push_back("-E"); break;
    case DriverMode::compile: argv.push_back("-S"); break;
    case DriverMode::assemble: argv.push_back("-c"); break;
    case DriverMode::link: break;
  }
  if (size_opt) {
    argv.push_back("-Os");
  } else if (opt_level > 0) {
    argv.push_back("-O" + std::to_string(opt_level));
  }
  if (!march.empty()) argv.push_back("-march=" + march);
  if (!mtune.empty()) argv.push_back("-mtune=" + mtune);
  if (!std_version.empty()) argv.push_back("-std=" + std_version);
  if (debug) argv.push_back("-g");
  if (pic) argv.push_back("-fPIC");
  if (shared) argv.push_back("-shared");
  if (static_link) argv.push_back("-static");
  if (lto) argv.push_back(lto_value.empty() ? "-flto" : "-flto=" + lto_value);
  if (profile_generate) argv.push_back("-fprofile-generate");
  if (!profile_use.empty()) {
    argv.push_back(profile_use == "." ? "-fprofile-use" : "-fprofile-use=" + profile_use);
  }
  for (const GenericOption& option : generic) {
    std::string name(option.name);
    if (!option.enabled) {
      // Reconstruct the -fno-/-mno-/-Wno- spelling.
      COMT_ASSERT(name.size() > 2, "negated option too short");
      name = name.substr(0, 2) + "no-" + name.substr(2);
      argv.push_back(name);
    } else if (!option.value.empty()) {
      const OptionSpec* spec = OptionTable::gcc().find(name);
      if (ends_with(name, "=") || (spec != nullptr && spec->kind == OptionKind::joined)) {
        argv.push_back(name + option.value);  // glued with no separator
      } else {
        argv.push_back(name + "=" + option.value);
      }
    } else {
      argv.push_back(name);
    }
  }
  for (const std::string& dir : include_dirs) argv.push_back("-I" + dir);
  for (const std::string& define : defines) argv.push_back("-D" + define);
  for (const std::string& undef : undefines) argv.push_back("-U" + undef);
  for (const std::string& input : inputs) argv.push_back(input);
  for (const std::string& dir : library_dirs) argv.push_back("-L" + dir);
  for (const std::string& library : libraries) argv.push_back("-l" + library);
  if (!linker_args.empty()) argv.push_back("-Wl," + join(linker_args, ","));
  for (const std::string& raw : unrecognized) argv.push_back(raw);
  if (!output.empty()) {
    argv.push_back("-o");
    argv.push_back(output);
  }
  return argv;
}

Result<CompileCommand> parse_command(std::span<const std::string> argv,
                                     const OptionTable& table) {
  if (argv.empty()) {
    return make_error(Errc::invalid_argument, "empty compiler command line");
  }
  CompileCommand cmd;
  cmd.program = argv[0];

  auto add_generic = [&cmd](const OptionSpec& spec, bool enabled, std::string value) {
    GenericOption option;
    option.name = std::string(spec.name);
    option.enabled = enabled;
    option.value = std::move(value);
    option.category = spec.category;
    cmd.generic.push_back(std::move(option));
  };

  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    if (arg.empty()) continue;
    if (arg[0] != '-' || arg == "-") {
      cmd.inputs.push_back(arg);
      continue;
    }

    // ---- structured fast paths --------------------------------------------
    if (arg == "-o") {
      if (i + 1 >= argv.size()) {
        return make_error(Errc::invalid_argument, "-o requires an argument");
      }
      cmd.output = argv[++i];
      continue;
    }
    if (starts_with(arg, "-o") && arg.size() > 2) {
      cmd.output = arg.substr(2);
      continue;
    }
    if (arg == "-c") { cmd.mode = DriverMode::assemble; continue; }
    if (arg == "-S") { cmd.mode = DriverMode::compile; continue; }
    if (arg == "-E") { cmd.mode = DriverMode::preprocess; continue; }
    if (starts_with(arg, "-O")) {
      std::string level = arg.substr(2);
      if (level.empty() || level == "1") cmd.opt_level = 1;
      else if (level == "0") cmd.opt_level = 0;
      else if (level == "2") cmd.opt_level = 2;
      else if (level == "3" || level == "fast") cmd.opt_level = 3;
      else if (level == "s" || level == "z") { cmd.opt_level = 2; cmd.size_opt = true; }
      else if (level == "g") cmd.opt_level = 1;
      else return make_error(Errc::invalid_argument, "unknown optimization level " + arg);
      cmd.size_opt = (level == "s" || level == "z");
      continue;
    }
    if (starts_with(arg, "-march=")) { cmd.march = arg.substr(7); continue; }
    if (starts_with(arg, "-mtune=")) { cmd.mtune = arg.substr(7); continue; }
    if (starts_with(arg, "-std=")) { cmd.std_version = arg.substr(5); continue; }
    if (arg == "-g" || starts_with(arg, "-g")) {
      const OptionSpec* spec = table.find(arg);
      if (arg == "-g" || (spec != nullptr && spec->category == OptionCategory::debug)) {
        cmd.debug = arg != "-g0";
        continue;
      }
      // fall through: -grecord..., unknown -g* handled below
    }
    if (arg == "-fPIC" || arg == "-fpic" || arg == "-fPIE" || arg == "-fpie") {
      cmd.pic = true;
      continue;
    }
    if (arg == "-shared") { cmd.shared = true; continue; }
    if (arg == "-static") { cmd.static_link = true; continue; }
    if (arg == "-flto") { cmd.lto = true; continue; }
    if (starts_with(arg, "-flto=")) {
      cmd.lto = true;
      cmd.lto_value = arg.substr(6);
      continue;
    }
    if (arg == "-fno-lto") { cmd.lto = false; cmd.lto_value.clear(); continue; }
    if (arg == "-fprofile-generate") { cmd.profile_generate = true; continue; }
    if (starts_with(arg, "-fprofile-generate=")) { cmd.profile_generate = true; continue; }
    if (arg == "-fprofile-use") { cmd.profile_use = "."; continue; }
    if (starts_with(arg, "-fprofile-use=")) { cmd.profile_use = arg.substr(14); continue; }
    if (starts_with(arg, "-I")) {
      if (arg.size() > 2) cmd.include_dirs.push_back(arg.substr(2));
      else if (i + 1 < argv.size()) cmd.include_dirs.push_back(argv[++i]);
      else return make_error(Errc::invalid_argument, "-I requires an argument");
      continue;
    }
    if (starts_with(arg, "-D")) {
      if (arg.size() > 2) cmd.defines.push_back(arg.substr(2));
      else if (i + 1 < argv.size()) cmd.defines.push_back(argv[++i]);
      else return make_error(Errc::invalid_argument, "-D requires an argument");
      continue;
    }
    if (starts_with(arg, "-U")) {
      if (arg.size() > 2) cmd.undefines.push_back(arg.substr(2));
      else if (i + 1 < argv.size()) cmd.undefines.push_back(argv[++i]);
      else return make_error(Errc::invalid_argument, "-U requires an argument");
      continue;
    }
    if (starts_with(arg, "-L")) {
      if (arg.size() > 2) cmd.library_dirs.push_back(arg.substr(2));
      else if (i + 1 < argv.size()) cmd.library_dirs.push_back(argv[++i]);
      else return make_error(Errc::invalid_argument, "-L requires an argument");
      continue;
    }
    if (starts_with(arg, "-l")) {
      if (arg.size() > 2) cmd.libraries.push_back(arg.substr(2));
      else if (i + 1 < argv.size()) cmd.libraries.push_back(argv[++i]);
      else return make_error(Errc::invalid_argument, "-l requires an argument");
      continue;
    }
    if (starts_with(arg, "-Wl,")) {
      for (const std::string& piece : split(arg.substr(4), ',')) {
        cmd.linker_args.push_back(piece);
      }
      continue;
    }
    if (arg == "-Xlinker") {
      if (i + 1 >= argv.size()) {
        return make_error(Errc::invalid_argument, "-Xlinker requires an argument");
      }
      cmd.linker_args.push_back(argv[++i]);
      continue;
    }

    // ---- generic table lookup ----------------------------------------------
    // Negated form: -fno-X / -mno-X / -Wno-X.
    if (arg.size() > 5 && (starts_with(arg, "-fno-") || starts_with(arg, "-mno-") ||
                           starts_with(arg, "-Wno-"))) {
      std::string positive = arg.substr(0, 2) + arg.substr(5);
      if (const OptionSpec* spec = table.find(positive);
          spec != nullptr && spec->kind == OptionKind::negatable) {
        add_generic(*spec, false, "");
        continue;
      }
    }
    // Exact match.
    if (const OptionSpec* spec = table.find(arg)) {
      switch (spec->kind) {
        case OptionKind::flag:
        case OptionKind::negatable:
          add_generic(*spec, true, "");
          break;
        case OptionKind::separate:
        case OptionKind::joined_or_separate:
          if (i + 1 >= argv.size()) {
            return make_error(Errc::invalid_argument, arg + " requires an argument");
          }
          add_generic(*spec, true, argv[++i]);
          break;
        case OptionKind::joined:
        case OptionKind::joined_eq:
          // Exact hit on a joined option with no glued argument.
          add_generic(*spec, true, "");
          break;
      }
      continue;
    }
    // name=value for joined_eq specs.
    if (std::size_t eq = arg.find('='); eq != std::string::npos) {
      std::string name = arg.substr(0, eq);
      if (const OptionSpec* spec = table.find(name);
          spec != nullptr && spec->kind == OptionKind::joined_eq) {
        add_generic(*spec, true, arg.substr(eq + 1));
        continue;
      }
    }
    // Longest joined prefix (-Wp,..., --param=..., etc.).
    if (const OptionSpec* spec = table.find_joined_prefix(arg)) {
      std::string value(arg.substr(spec->name.size()));
      // joined_or_separate options also accept a glued "=value" spelling.
      if (spec->kind == OptionKind::joined_or_separate && !value.empty() &&
          value.front() == '=') {
        value.erase(0, 1);
      }
      add_generic(*spec, true, std::move(value));
      continue;
    }
    // Unknown -f/-m/-W options: keep them, categorized by prefix, so that the
    // model is lossless even for options outside the table (mirroring the
    // paper's note that their model is continuously refined).
    if (starts_with(arg, "-f") || starts_with(arg, "-m") || starts_with(arg, "-W")) {
      GenericOption option;
      std::size_t eq = arg.find('=');
      option.name = eq == std::string::npos ? arg : arg.substr(0, eq);
      option.value = eq == std::string::npos ? "" : arg.substr(eq + 1);
      option.category = starts_with(arg, "-f")   ? OptionCategory::optimization
                        : starts_with(arg, "-m") ? OptionCategory::machine
                                                 : OptionCategory::warning;
      cmd.generic.push_back(std::move(option));
      continue;
    }
    cmd.unrecognized.push_back(arg);
  }
  return cmd;
}

json::Value CompileCommand::to_json() const {
  json::Object object;
  object.emplace_back("program", json::Value(program));
  json::Array argv;
  for (const std::string& arg : render()) argv.emplace_back(arg);
  object.emplace_back("argv", json::Value(std::move(argv)));
  return json::Value(std::move(object));
}

Result<CompileCommand> CompileCommand::from_json(const json::Value& value) {
  const json::Value* argv_json = value.find("argv");
  if (argv_json == nullptr || !argv_json->is_array()) {
    return make_error(Errc::invalid_argument, "compile command: missing argv");
  }
  std::vector<std::string> argv;
  for (const json::Value& item : argv_json->as_array()) argv.push_back(item.as_string());
  return parse_command(argv);
}

}  // namespace comt::toolchain
