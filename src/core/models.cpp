#include "core/models.hpp"

#include <algorithm>
#include <set>

namespace comt::core {
namespace {

json::Value strings_to_json(const std::vector<std::string>& items) {
  json::Array array;
  for (const std::string& item : items) array.emplace_back(item);
  return json::Value(std::move(array));
}

std::vector<std::string> strings_from_json(const json::Value* value) {
  std::vector<std::string> out;
  if (value == nullptr || !value->is_array()) return out;
  for (const json::Value& item : value->as_array()) {
    if (item.is_string()) out.push_back(item.as_string());
  }
  return out;
}

}  // namespace

const char* node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::source: return "source";
    case NodeKind::object: return "object";
    case NodeKind::archive: return "archive";
    case NodeKind::shared_lib: return "shared_lib";
    case NodeKind::executable: return "executable";
    case NodeKind::data: return "data";
  }
  return "?";
}

Result<NodeKind> node_kind_from_name(std::string_view name) {
  if (name == "source") return NodeKind::source;
  if (name == "object") return NodeKind::object;
  if (name == "archive") return NodeKind::archive;
  if (name == "shared_lib") return NodeKind::shared_lib;
  if (name == "executable") return NodeKind::executable;
  if (name == "data") return NodeKind::data;
  return make_error(Errc::invalid_argument, "unknown node kind: " + std::string(name));
}

json::Value GraphNode::to_json() const {
  json::Object object;
  object.emplace_back("id", json::Value(id));
  object.emplace_back("kind", json::Value(node_kind_name(kind)));
  object.emplace_back("path", json::Value(path));
  object.emplace_back("digest", json::Value(content_digest));
  json::Array deps_json;
  for (int dep : deps) deps_json.emplace_back(dep);
  object.emplace_back("deps", json::Value(std::move(deps_json)));
  if (compile.has_value()) object.emplace_back("compile", compile->to_json());
  if (!archive_argv.empty()) object.emplace_back("archive", strings_to_json(archive_argv));
  if (!toolchain_id.empty()) object.emplace_back("toolchain", json::Value(toolchain_id));
  if (!cwd.empty()) object.emplace_back("cwd", json::Value(cwd));
  return json::Value(std::move(object));
}

Result<GraphNode> GraphNode::from_json(const json::Value& value) {
  GraphNode node;
  node.id = static_cast<int>(value.get_int("id", -1));
  COMT_TRY(node.kind, node_kind_from_name(value.get_string("kind")));
  node.path = value.get_string("path");
  node.content_digest = value.get_string("digest");
  if (const json::Value* deps = value.find("deps"); deps != nullptr && deps->is_array()) {
    for (const json::Value& dep : deps->as_array()) {
      node.deps.push_back(static_cast<int>(dep.as_int()));
    }
  }
  if (const json::Value* compile = value.find("compile"); compile != nullptr) {
    COMT_TRY(toolchain::CompileCommand command,
             toolchain::CompileCommand::from_json(*compile));
    node.compile = std::move(command);
  }
  node.archive_argv = strings_from_json(value.find("archive"));
  node.toolchain_id = value.get_string("toolchain");
  node.cwd = value.get_string("cwd");
  return node;
}

int BuildGraph::add_node(GraphNode node) {
  node.id = static_cast<int>(nodes_.size());
  for (int dep : node.deps) {
    COMT_ASSERT(dep >= 0 && dep < node.id, "graph edge must point to an earlier node");
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

const GraphNode& BuildGraph::node(int id) const {
  COMT_ASSERT(id >= 0 && id < static_cast<int>(nodes_.size()), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

GraphNode& BuildGraph::node(int id) {
  COMT_ASSERT(id >= 0 && id < static_cast<int>(nodes_.size()), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

int BuildGraph::find_by_path(std::string_view path) const {
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    if (it->path == path) return it->id;
  }
  return -1;
}

int BuildGraph::find_by_digest(std::string_view digest) const {
  if (digest.empty()) return -1;
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    if (it->content_digest == digest) return it->id;
  }
  return -1;
}

Result<std::vector<int>> BuildGraph::topological_order() const {
  // Construction already forbids forward edges, so node order is a valid
  // topological order; emitted explicitly so transformed graphs (which may
  // reorder) still verify.
  std::vector<int> order;
  order.reserve(nodes_.size());
  std::vector<int> state(nodes_.size(), 0);
  for (const GraphNode& node : nodes_) {
    for (int dep : node.deps) {
      if (dep < 0 || dep >= static_cast<int>(nodes_.size())) {
        return make_error(Errc::corrupt, "graph edge out of range");
      }
      if (dep >= node.id) {
        return make_error(Errc::corrupt, "graph contains a forward edge (cycle)");
      }
    }
    order.push_back(node.id);
  }
  (void)state;
  return order;
}

std::vector<int> BuildGraph::roots() const {
  std::vector<bool> has_dependent(nodes_.size(), false);
  for (const GraphNode& node : nodes_) {
    for (int dep : node.deps) has_dependent[static_cast<std::size_t>(dep)] = true;
  }
  std::vector<int> out;
  for (const GraphNode& node : nodes_) {
    if (!has_dependent[static_cast<std::size_t>(node.id)]) out.push_back(node.id);
  }
  return out;
}

std::vector<int> BuildGraph::closure(int id) const {
  std::vector<int> out;
  std::set<int> seen;
  std::vector<int> stack = {id};
  while (!stack.empty()) {
    int current = stack.back();
    stack.pop_back();
    if (!seen.insert(current).second) continue;
    out.push_back(current);
    for (int dep : node(current).deps) stack.push_back(dep);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string BuildGraph::to_dot() const {
  std::string out = "digraph build {\n  rankdir=LR;\n";
  for (const GraphNode& node : nodes_) {
    out += "  n" + std::to_string(node.id) + " [label=\"" + node.path + "\\n(" +
           node_kind_name(node.kind) + ")\"];\n";
  }
  for (const GraphNode& node : nodes_) {
    for (int dep : node.deps) {
      out += "  n" + std::to_string(dep) + " -> n" + std::to_string(node.id) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

json::Value BuildGraph::to_json() const {
  json::Array nodes_json;
  for (const GraphNode& node : nodes_) nodes_json.push_back(node.to_json());
  json::Object object;
  object.emplace_back("nodes", json::Value(std::move(nodes_json)));
  return json::Value(std::move(object));
}

Result<BuildGraph> BuildGraph::from_json(const json::Value& value) {
  const json::Value* nodes_json = value.find("nodes");
  if (nodes_json == nullptr || !nodes_json->is_array()) {
    return make_error(Errc::invalid_argument, "build graph: missing nodes");
  }
  BuildGraph graph;
  for (const json::Value& item : nodes_json->as_array()) {
    COMT_TRY(GraphNode node, GraphNode::from_json(item));
    int expected = static_cast<int>(graph.size());
    if (node.id != expected) {
      return make_error(Errc::corrupt, "build graph: non-contiguous node ids");
    }
    // Deserialized data is untrusted: validate the DAG property here rather
    // than relying on add_node's programmer-error assertion.
    for (int dep : node.deps) {
      if (dep < 0 || dep >= expected) {
        return make_error(Errc::corrupt,
                          "build graph: node " + std::to_string(expected) +
                              " has forward or out-of-range edge " + std::to_string(dep));
      }
    }
    graph.add_node(std::move(node));
  }
  return graph;
}

const char* file_origin_name(FileOrigin origin) {
  switch (origin) {
    case FileOrigin::base_image: return "base";
    case FileOrigin::package_manager: return "package";
    case FileOrigin::build_process: return "build";
    case FileOrigin::data: return "data";
    case FileOrigin::unknown: return "unknown";
  }
  return "?";
}

json::Value ImageFileEntry::to_json() const {
  json::Object object;
  object.emplace_back("path", json::Value(path));
  object.emplace_back("origin", json::Value(file_origin_name(origin)));
  // Truncated digests: enough to disambiguate within one image, and they
  // keep the serialized model (hence the cache layer) compact.
  object.emplace_back("digest", json::Value(digest.substr(0, 16)));
  object.emplace_back("size", json::Value(size));
  if (!owner_package.empty()) object.emplace_back("package", json::Value(owner_package));
  if (build_node >= 0) object.emplace_back("node", json::Value(build_node));
  return json::Value(std::move(object));
}

Result<ImageFileEntry> ImageFileEntry::from_json(const json::Value& value) {
  ImageFileEntry entry;
  entry.path = value.get_string("path");
  std::string origin = value.get_string("origin");
  if (origin == "base") entry.origin = FileOrigin::base_image;
  else if (origin == "package") entry.origin = FileOrigin::package_manager;
  else if (origin == "build") entry.origin = FileOrigin::build_process;
  else if (origin == "data") entry.origin = FileOrigin::data;
  else entry.origin = FileOrigin::unknown;
  entry.digest = value.get_string("digest");
  entry.size = static_cast<std::uint64_t>(value.get_int("size"));
  entry.owner_package = value.get_string("package");
  entry.build_node = static_cast<int>(value.get_int("node", -1));
  return entry;
}

json::Value RuntimePackage::to_json() const {
  json::Object object;
  object.emplace_back("name", json::Value(name));
  object.emplace_back("version", json::Value(version));
  object.emplace_back("variant", json::Value(variant));
  return json::Value(std::move(object));
}

std::map<FileOrigin, std::size_t> ImageModel::origin_histogram() const {
  std::map<FileOrigin, std::size_t> histogram;
  for (const ImageFileEntry& entry : files) ++histogram[entry.origin];
  return histogram;
}

json::Value ImageModel::to_json() const {
  json::Object object;
  object.emplace_back("tag", json::Value(image_tag));
  object.emplace_back("arch", json::Value(architecture));
  json::Array files_json;
  for (const ImageFileEntry& entry : files) files_json.push_back(entry.to_json());
  object.emplace_back("files", json::Value(std::move(files_json)));
  json::Array packages_json;
  for (const RuntimePackage& package : runtime_packages) {
    packages_json.push_back(package.to_json());
  }
  object.emplace_back("packages", json::Value(std::move(packages_json)));
  object.emplace_back("entrypoint", strings_to_json(entrypoint));
  return json::Value(std::move(object));
}

Result<ImageModel> ImageModel::from_json(const json::Value& value) {
  ImageModel model;
  model.image_tag = value.get_string("tag");
  model.architecture = value.get_string("arch");
  if (const json::Value* files = value.find("files"); files != nullptr && files->is_array()) {
    for (const json::Value& item : files->as_array()) {
      COMT_TRY(ImageFileEntry entry, ImageFileEntry::from_json(item));
      model.files.push_back(std::move(entry));
    }
  }
  if (const json::Value* packages = value.find("packages");
      packages != nullptr && packages->is_array()) {
    for (const json::Value& item : packages->as_array()) {
      RuntimePackage package;
      package.name = item.get_string("name");
      package.version = item.get_string("version");
      package.variant = item.get_string("variant");
      model.runtime_packages.push_back(std::move(package));
    }
  }
  model.entrypoint = strings_from_json(value.find("entrypoint"));
  return model;
}

}  // namespace comt::core
