// Compiled-artifact model: the "binaries" the simulated toolchain produces.
//
// Object files, archives, shared libraries and executables stored in a
// container filesystem are blobs with a magic first line plus a JSON body
// describing their kernels and how they were compiled. The execution engine
// (src/sysmodel) interprets executables; the coMtainer back-end and the
// build-graph front-end parse them to recover compilation structure.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"
#include "toolchain/source.hpp"

namespace comt::toolchain {

/// How a translation unit (or linked image) was compiled.
struct CodegenInfo {
  std::string toolchain_id;  ///< producing toolchain ("gnu-generic", …)
  int opt_level = 0;
  std::string march;         ///< effective -march (resolved, not "native")
  int vector_lanes = 2;      ///< SIMD lanes (doubles) the code targets
  bool lto_ir = false;       ///< object carries IR for link-time optimization
  bool lto_applied = false;  ///< cross-TU optimization performed at link
  bool pgo_instrumented = false;  ///< built with -fprofile-generate
  double pgo_quality = 0;    ///< 0..1: how well a fed-back profile matched
  /// Post-link binary layout optimization applied (BOLT-style; the class of
  /// further optimizations the paper's §5.3 leaves as future work).
  bool layout_optimized = false;

  bool operator==(const CodegenInfo&) const = default;
};

/// One compiled translation unit.
struct ObjectCode {
  std::string source_path;    ///< path of the source file compiled
  std::string source_digest;  ///< sha256 of the source content
  CodegenInfo codegen;
  std::vector<KernelTrait> kernels;

  bool operator==(const ObjectCode&) const = default;
};

/// A linked image: executable or shared library.
struct LinkedImage {
  bool is_shared = false;
  std::string soname;              ///< for shared libraries
  std::string target_arch;         ///< "amd64" / "arm64"
  CodegenInfo codegen;             ///< link-level codegen summary
  std::vector<ObjectCode> objects;
  std::vector<std::string> needed;  ///< dynamic deps, -l names ("m", "mpi", …)
  /// Runtime attributes, meaningful mostly for library blobs:
  ///  "libspeed" — throughput multiplier for callers' lib-bound time
  ///  "fabric_tcp"/"fabric_hsn" — interconnect an MPI library can drive
  std::map<std::string, double> attributes;

  double attribute(std::string_view key, double fallback) const;

  bool operator==(const LinkedImage&) const = default;
};

// Blob magics: first line of the file content identifies the artifact type.
inline constexpr std::string_view kObjectMagic = "\x7f" "COMT-OBJ";
inline constexpr std::string_view kArchiveMagic = "!<comt-ar>";
inline constexpr std::string_view kImageMagic = "\x7f" "COMT-ELF";

std::string serialize_object(const ObjectCode& object);
Result<ObjectCode> parse_object(std::string_view blob);
bool is_object_blob(std::string_view blob);

std::string serialize_archive(const std::vector<ObjectCode>& members);
Result<std::vector<ObjectCode>> parse_archive(std::string_view blob);
bool is_archive_blob(std::string_view blob);

std::string serialize_image(const LinkedImage& image);
Result<LinkedImage> parse_image(std::string_view blob);
bool is_image_blob(std::string_view blob);

}  // namespace comt::toolchain
