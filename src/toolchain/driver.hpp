// The simulated compiler driver ("gcc"/"clang"/vendor cc) and archiver.
//
// Given a parsed CompileCommand and a container filesystem, the driver
// performs compilation: sources are analyzed into kernel descriptors and
// emitted as object blobs honoring -O/-march/-flto/-fprofile-*; links gather
// objects, archives and -l libraries into executable/shared-library blobs,
// applying link-time optimization (cross-TU call-overhead elimination for IR
// objects) and recording PGO state. Undefined-reference and missing-library
// errors are real: a kernel calling into "blas" must find a blas library at
// link time, and an MPI-using program must link an MPI — exactly the
// coupling points the paper's adapters rewrite.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"
#include "toolchain/artifact.hpp"
#include "toolchain/options.hpp"
#include "toolchain/toolchains.hpp"
#include "vfs/vfs.hpp"

namespace comt::toolchain {

/// Magic first line of PGO profile data files.
inline constexpr std::string_view kProfileMagic = "COMT-PROF";
/// Default profile filename -fprofile-use looks for (in the cwd).
inline constexpr std::string_view kDefaultProfileName = "default.profdata";

/// Outcome of a driver invocation.
struct DriverResult {
  std::vector<std::string> outputs;      ///< absolute paths written
  std::vector<std::string> inputs_read;  ///< absolute paths consumed
  std::string log;                       ///< human-readable notes
};

/// One compiler installation bound to a target architecture.
class Driver {
 public:
  /// `target_arch` is the architecture of the container the compiler runs
  /// in ("amd64"/"arm64"); toolchains with target_arch "any" produce code
  /// for it, arch-specific toolchains must match it.
  Driver(const Toolchain& toolchain, std::string target_arch);

  const Toolchain& toolchain() const { return toolchain_; }

  /// Executes a parsed command against `fs`. Compile modes write .o blobs;
  /// link mode writes an executable or shared-library blob.
  Result<DriverResult> run(const CompileCommand& command, vfs::Filesystem& fs,
                           const std::string& cwd) const;

 private:
  Result<ObjectCode> compile_one(const CompileCommand& command, vfs::Filesystem& fs,
                                 const std::string& cwd, const std::string& source_path,
                                 DriverResult& result) const;
  Result<double> profile_quality(const CompileCommand& command, const vfs::Filesystem& fs,
                                 const std::string& cwd,
                                 const std::vector<KernelTrait>& kernels,
                                 DriverResult& result) const;

  const Toolchain& toolchain_;
  std::string target_arch_;
};

/// The `ar` archiver: supports "ar rcs out.a member.o..." and "ar t out.a".
Result<DriverResult> run_ar(std::span<const std::string> argv, vfs::Filesystem& fs,
                            const std::string& cwd);

/// Builds a shared-library blob for a package (vendor BLAS, MPI, libm…):
/// no objects, just runtime attributes. `needed` may name transitive deps.
std::string make_library_blob(std::string_view soname, std::string_view target_arch,
                              const std::map<std::string, double>& attributes,
                              const std::vector<std::string>& needed = {});

/// Serializes PGO profile data: kernel name -> hotness weight in [0,1].
std::string serialize_profile(const std::map<std::string, double>& kernel_weights);
Result<std::map<std::string, double>> parse_profile(std::string_view blob);

}  // namespace comt::toolchain
