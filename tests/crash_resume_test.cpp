// Crash-safe resumable rebuilds, end to end: an exhaustive sweep that kills a
// journaled rebuild at every crash site on every call and proves the resume is
// bit-identical without re-running committed jobs; torn-write injection on
// journal appends and blob puts; journal/inputs mismatch rejection; and the
// service-level story — a crashed job recovered by a fresh service incarnation
// over the same hub and journal store.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "durable/journal.hpp"
#include "oci/fsck.hpp"
#include "registry/registry.hpp"
#include "service/service.hpp"
#include "store/disk.hpp"
#include "support/fault.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

namespace comt {
namespace {

/// One prepared world for the whole binary: minimd built and extended on the
/// x86 cluster. Every rebuild below works on a private copy of the layout, so
/// sharing the (comparatively expensive) user-side build is safe.
struct World {
  workloads::Evaluation eval{sysmodel::SystemProfile::x86_cluster()};
  std::string extended_tag;
};

World& shared_world() {
  static World* world = [] {
    auto* w = new World;
    const workloads::AppSpec* app = workloads::find_app("minimd");
    COMT_ASSERT(app != nullptr, "minimd missing from the corpus");
    auto prepared = w->eval.prepare(*app);
    COMT_ASSERT(prepared.ok(), "prepare failed");
    w->extended_tag = prepared.value().extended_tag;
    return w;
  }();
  return *world;
}

core::RebuildOptions base_options() {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  core::RebuildOptions options;
  options.system = &system;
  options.system_repo = &workloads::system_repo(system);
  options.sysenv_tag = workloads::sysenv_tag(system);
  return options;
}

/// Manifest digest of an uninterrupted, unjournaled rebuild — the reference
/// every crashed-and-resumed run must reproduce bit for bit.
std::string reference_digest() {
  static const std::string digest = [] {
    oci::Layout layout = shared_world().eval.layout();
    auto report = core::comtainer_rebuild(layout, shared_world().extended_tag,
                                          base_options());
    COMT_ASSERT(report.ok(), "reference rebuild failed");
    return report.value().image.manifest_digest.value;
  }();
  return digest;
}

TEST(CrashResumeTest, JournalingIsTransparentOnACleanRun) {
  oci::Layout layout = shared_world().eval.layout();
  durable::Journal journal;
  core::RebuildOptions options = base_options();
  options.journal = &journal;

  auto report = core::comtainer_rebuild(layout, shared_world().extended_tag, options);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report.value().image.manifest_digest.value, reference_digest());
  EXPECT_FALSE(report.value().resumed);
  EXPECT_EQ(report.value().journal_replayed, 0u);
  EXPECT_EQ(report.value().journal_committed, report.value().jobs);
  EXPECT_FALSE(journal.empty());

  auto replay = journal.replay();
  ASSERT_TRUE(replay.ok());
  ASSERT_TRUE(replay.value().begin.has_value());
  EXPECT_EQ(replay.value().begin->planned_jobs, report.value().jobs);
  EXPECT_EQ(replay.value().commits.size(), report.value().jobs);
}

TEST(CrashResumeTest, ReRunningACompletedJournalReplaysEveryJob) {
  oci::Layout layout = shared_world().eval.layout();
  durable::Journal journal;
  core::RebuildOptions options = base_options();
  options.journal = &journal;

  auto first = core::comtainer_rebuild(layout, shared_world().extended_tag, options);
  ASSERT_TRUE(first.ok());
  auto second = core::comtainer_rebuild(layout, shared_world().extended_tag, options);
  ASSERT_TRUE(second.ok()) << second.error().to_string();
  EXPECT_EQ(second.value().image.manifest_digest.value, reference_digest());
  EXPECT_TRUE(second.value().resumed);
  EXPECT_EQ(second.value().journal_replayed, first.value().jobs);
  EXPECT_EQ(second.value().cache_misses, 0u);  // nothing re-executed
}

// The tentpole acceptance test: crash at every site, at every call of that
// site, resume, and require (a) a bit-identical image and (b) that jobs whose
// commit record survived are replayed, never re-executed. With threads == 1
// the scheduler runs jobs inline in topological order, so the expected replay
// count at each (site, call) is exact arithmetic:
//   job_start/job_committed fire inside job k before its commit -> k-1 replays
//   journal_committed fires after job k's commit record          -> k replays
//   finish fires once, after all N commits                       -> N replays
TEST(CrashResumeTest, ExhaustiveCrashSweepResumesBitIdentical) {
  const std::string tag = shared_world().extended_tag;
  const std::string want = reference_digest();

  // Job count from one clean journaled run.
  std::size_t jobs = 0;
  {
    oci::Layout layout = shared_world().eval.layout();
    durable::Journal journal;
    core::RebuildOptions options = base_options();
    options.journal = &journal;
    auto clean = core::comtainer_rebuild(layout, tag, options);
    ASSERT_TRUE(clean.ok());
    jobs = clean.value().jobs;
  }
  ASSERT_GT(jobs, 1u);

  for (std::string_view site : core::kRebuildCrashSites) {
    const std::uint64_t site_calls = site == core::kCrashFinish ? 1 : jobs;
    for (std::uint64_t call = 1; call <= site_calls; ++call) {
      SCOPED_TRACE(std::string(site) + " call " + std::to_string(call));
      oci::Layout layout = shared_world().eval.layout();
      durable::Journal journal;
      support::FaultInjector faults;
      faults.crash_at(site, call);

      core::RebuildOptions options = base_options();
      options.journal = &journal;
      options.fault_injector = &faults;

      bool crashed = false;
      try {
        auto doomed = core::comtainer_rebuild(layout, tag, options);
        ADD_FAILURE() << "rebuild survived an armed crash site";
      } catch (const support::CrashInjected& crash) {
        crashed = true;
        EXPECT_EQ(crash.site, site);
        EXPECT_EQ(crash.call, call);
      }
      ASSERT_TRUE(crashed);

      faults.clear_all();
      auto resumed = core::comtainer_rebuild(layout, tag, options);
      ASSERT_TRUE(resumed.ok()) << resumed.error().to_string();
      EXPECT_EQ(resumed.value().image.manifest_digest.value, want);
      EXPECT_TRUE(resumed.value().resumed);

      std::size_t want_replayed = 0;
      if (site == core::kCrashJobStart || site == core::kCrashJobCommitted) {
        want_replayed = call - 1;
      } else if (site == core::kCrashJournalCommitted) {
        want_replayed = call;
      } else {
        want_replayed = jobs;  // kCrashFinish: everything was committed
      }
      EXPECT_EQ(resumed.value().journal_replayed, want_replayed);
      // Committed jobs never touch the toolchain again; with no compile cache
      // every non-replayed job counts as a miss.
      EXPECT_EQ(resumed.value().cache_misses, jobs - want_replayed);
      EXPECT_EQ(resumed.value().journal_committed, jobs - want_replayed);
    }
  }
}

// Tear the journal file itself mid-append at every record boundary: the torn
// tail must be detected, truncated, and the interrupted job re-executed.
TEST(CrashResumeTest, TornJournalAppendIsTruncatedAndReExecuted) {
  const std::string tag = shared_world().extended_tag;
  const std::string want = reference_digest();

  std::size_t jobs = 0;
  {
    oci::Layout layout = shared_world().eval.layout();
    durable::Journal journal;
    core::RebuildOptions options = base_options();
    options.journal = &journal;
    auto clean = core::comtainer_rebuild(layout, tag, options);
    ASSERT_TRUE(clean.ok());
    jobs = clean.value().jobs;
  }

  // Appends: call 1 is the begin record, call 1+k is job k's commit record.
  for (std::uint64_t call = 1; call <= jobs + 1; ++call) {
    SCOPED_TRACE("torn append call " + std::to_string(call));
    oci::Layout layout = shared_world().eval.layout();
    durable::Journal journal;
    support::FaultInjector faults;
    journal.set_fault_injector(&faults);
    faults.tear_at(durable::kJournalAppendSite, call, 0.5);

    core::RebuildOptions options = base_options();
    options.journal = &journal;
    options.fault_injector = &faults;

    bool crashed = false;
    try {
      auto doomed = core::comtainer_rebuild(layout, tag, options);
      ADD_FAILURE() << "rebuild survived a torn journal append";
    } catch (const support::CrashInjected& crash) {
      crashed = true;
      EXPECT_EQ(crash.site, durable::kJournalAppendSite);
    }
    ASSERT_TRUE(crashed);

    faults.clear_all();
    auto resumed = core::comtainer_rebuild(layout, tag, options);
    ASSERT_TRUE(resumed.ok()) << resumed.error().to_string();
    EXPECT_EQ(resumed.value().image.manifest_digest.value, want);
    EXPECT_GT(resumed.value().journal_truncated_bytes, 0u);
    if (call == 1) {
      // The begin record itself was torn away: a fresh run, not a resume.
      EXPECT_FALSE(resumed.value().resumed);
      EXPECT_EQ(resumed.value().journal_replayed, 0u);
    } else {
      EXPECT_TRUE(resumed.value().resumed);
      // call-2 commits landed intact before the torn one.
      EXPECT_EQ(resumed.value().journal_replayed, call - 2);
    }
  }
}

// Tear a blob write during final image assembly: the layout is left holding a
// truncated blob under the true content's digest. The resume replays every
// job from the journal and re-putting the true bytes heals the blob.
TEST(CrashResumeTest, TornBlobPutDuringAssemblyHealsOnResume) {
  const std::string tag = shared_world().extended_tag;
  oci::Layout layout = shared_world().eval.layout();
  durable::Journal journal;
  support::FaultInjector faults;
  layout.set_fault_injector(&faults);
  faults.tear_next(oci::kBlobPutSite, 0.5);

  core::RebuildOptions options = base_options();
  options.journal = &journal;
  options.fault_injector = &faults;

  bool crashed = false;
  try {
    auto doomed = core::comtainer_rebuild(layout, tag, options);
    ADD_FAILURE() << "rebuild survived a torn blob write";
  } catch (const support::CrashInjected& crash) {
    crashed = true;
    EXPECT_EQ(crash.site, oci::kBlobPutSite);
  }
  ASSERT_TRUE(crashed);
  // The crash left damage fsck can see...
  EXPECT_FALSE(oci::fsck(layout).clean());

  faults.clear_all();
  auto resumed = core::comtainer_rebuild(layout, tag, options);
  ASSERT_TRUE(resumed.ok()) << resumed.error().to_string();
  EXPECT_EQ(resumed.value().image.manifest_digest.value, reference_digest());
  EXPECT_TRUE(resumed.value().resumed);
  EXPECT_EQ(resumed.value().cache_misses, 0u);  // all jobs replayed
  // ...and the resume healed it by rewriting the true bytes.
  EXPECT_TRUE(oci::fsck(layout).clean());
}

TEST(CrashResumeTest, JournalForDifferentInputsIsRejected) {
  durable::Journal journal;
  durable::BeginRecord begin;
  begin.inputs_digest = "sha256:not-the-rebuild-you-are-looking-for";
  begin.system = "x86_cluster";
  begin.planned_jobs = 7;
  ASSERT_TRUE(journal.append_begin(begin).ok());

  oci::Layout layout = shared_world().eval.layout();
  core::RebuildOptions options = base_options();
  options.journal = &journal;
  auto report = core::comtainer_rebuild(layout, shared_world().extended_tag, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, Errc::invalid_argument);
}

// ---------------------------------------------------------------------------
// Service-level crash -> restart -> recover().

Status publish(registry::Registry& hub, const char* app_name, std::string_view name,
               std::string_view tag) {
  const workloads::AppSpec* app = workloads::find_app(app_name);
  if (app == nullptr) return make_error(Errc::not_found, "no such app in the corpus");
  workloads::Evaluation world(sysmodel::SystemProfile::x86_cluster());
  COMT_TRY(workloads::PreparedApp prepared, world.prepare(*app));
  return hub.push(world.layout(), prepared.extended_tag, name, tag);
}

service::TargetSystem make_target() {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  service::TargetSystem target;
  target.profile = &system;
  target.repo = &workloads::system_repo(system);
  EXPECT_TRUE(workloads::install_system_images(target.base_layout, system).ok());
  target.sysenv_tag = workloads::sysenv_tag(system);
  return target;
}

constexpr const char* kSys = "x86";
const std::string kOutTag = std::string("1.0+coMre.") + kSys;

TEST(ServiceCrashRecoveryTest, CrashedJobIsRecoveredBitIdenticallyByNextIncarnation) {
  // Reference: an uninterrupted service run on its own hub.
  std::string want;
  {
    registry::Registry hub;
    ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
    service::RebuildService svc(hub);
    ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());
    auto ticket = svc.submit({"hub/minimd", "1.0", kSys});
    ASSERT_TRUE(ticket.ok());
    auto done = svc.wait(ticket.value());
    ASSERT_EQ(done.value().state, service::JobState::succeeded);
    auto digest = hub.resolve("hub/minimd", kOutTag);
    ASSERT_TRUE(digest.ok());
    want = digest.value().value;
  }

  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  durable::JournalStore journals;
  support::FaultInjector faults;

  service::ServiceOptions options;
  options.journals = &journals;
  options.rebuild_threads = 1;  // a crash must unwind the submitting thread
  options.faults = &faults;

  // Incarnation one: dies at an injected crash site mid-rebuild. The journal
  // (with the commits made so far) outlives the service in the store.
  {
    service::RebuildService svc(hub, options);
    ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());
    faults.crash_at(core::kCrashJobCommitted, 2);
    auto ticket = svc.submit({"hub/minimd", "1.0", kSys});
    ASSERT_TRUE(ticket.ok());
    auto done = svc.wait(ticket.value());
    ASSERT_EQ(done.value().state, service::JobState::failed);
    EXPECT_TRUE(done.value().trace.crashed);
    EXPECT_EQ(done.value().trace.attempts, 1);  // a crash is not retried
    EXPECT_EQ(svc.stats().crashed, 1u);
    EXPECT_FALSE(hub.has("hub/minimd", kOutTag));
    EXPECT_EQ(journals.size(), 1u);
  }
  faults.clear_all();

  // Incarnation two: same hub, same journal store, fresh process state.
  service::ServiceOptions clean_options;
  clean_options.journals = &journals;
  clean_options.rebuild_threads = 1;
  service::RebuildService next(hub, clean_options);
  ASSERT_TRUE(next.add_system(kSys, make_target()).ok());

  auto recovery = next.recover();
  ASSERT_TRUE(recovery.ok()) << recovery.error().to_string();
  EXPECT_EQ(recovery.value().journals_found, 1u);
  EXPECT_EQ(recovery.value().skipped, 0u);
  ASSERT_EQ(recovery.value().resubmitted.size(), 1u);
  EXPECT_EQ(recovery.value().fsck.remaining, 0u);

  auto done = next.wait(recovery.value().resubmitted[0]);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done.value().state, service::JobState::succeeded)
      << done.value().result.error().to_string();
  // The jobs committed before the crash replayed instead of re-executing.
  EXPECT_GT(done.value().trace.journal_replayed, 0u);

  auto digest = hub.resolve("hub/minimd", kOutTag);
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(digest.value().value, want);
  // Success retires the journal; nothing is left to recover.
  EXPECT_EQ(journals.size(), 0u);
  EXPECT_EQ(next.recover().value().journals_found, 0u);
}

// The storage-layer acceptance test: both the journal store and the compile
// cache persist into ONE DiskStore directory. The service process dies
// mid-rebuild, a brand-new process (fresh DiskStore, JournalStore, and
// RebuildService objects over the same directory) hydrates both, resumes the
// journaled rebuild, serves at least one compile-cache hit from the previous
// incarnation's work, and produces a bit-identical image.
TEST(ServiceCrashRecoveryTest, RestartOverSameDiskStoreDirResumesWithWarmCache) {
  namespace stdfs = std::filesystem;
  const stdfs::path dir =
      stdfs::temp_directory_path() / "comt-restart-warm-cache";
  stdfs::remove_all(dir);

  // Reference digest from an uninterrupted run on its own hub.
  std::string want;
  {
    registry::Registry hub;
    ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
    service::RebuildService svc(hub);
    ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());
    auto ticket = svc.submit({"hub/minimd", "1.0", kSys});
    ASSERT_TRUE(ticket.ok());
    ASSERT_EQ(svc.wait(ticket.value()).value().state,
              service::JobState::succeeded);
    want = hub.resolve("hub/minimd", kOutTag).value().value;
  }

  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  support::FaultInjector faults;

  // Incarnation one: crashes inside job 2 after its cache entry was written
  // through but before its commit record landed. The directory is left
  // holding job 1's journaled commit plus cache entries for jobs 1 and 2.
  {
    auto disk = std::make_shared<store::DiskStore>(dir.string());
    durable::JournalStore journals(disk);
    service::ServiceOptions options;
    options.journals = &journals;
    options.store = disk;
    options.rebuild_threads = 1;
    options.faults = &faults;
    service::RebuildService svc(hub, options);
    ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());
    faults.crash_at(core::kCrashJobCommitted, 2);
    auto ticket = svc.submit({"hub/minimd", "1.0", kSys});
    ASSERT_TRUE(ticket.ok());
    auto done = svc.wait(ticket.value());
    ASSERT_EQ(done.value().state, service::JobState::failed);
    EXPECT_TRUE(done.value().trace.crashed);
    EXPECT_FALSE(hub.has("hub/minimd", kOutTag));
    EXPECT_EQ(journals.size(), 1u);
  }
  faults.clear_all();

  // Incarnation two: nothing shared with incarnation one but the directory.
  auto disk = std::make_shared<store::DiskStore>(dir.string());
  durable::JournalStore journals(disk);
  EXPECT_EQ(journals.hydrated(), 1u);
  EXPECT_EQ(journals.hydration_dropped(), 0u);

  service::ServiceOptions options;
  options.journals = &journals;
  options.store = disk;
  options.rebuild_threads = 1;
  service::RebuildService next(hub, options);
  ASSERT_TRUE(next.add_system(kSys, make_target()).ok());

  auto recovery = next.recover();
  ASSERT_TRUE(recovery.ok()) << recovery.error().to_string();
  EXPECT_EQ(recovery.value().journals_found, 1u);
  EXPECT_EQ(recovery.value().skipped, 0u);
  EXPECT_GT(recovery.value().cache_entries_recovered, 0u);
  ASSERT_EQ(recovery.value().resubmitted.size(), 1u);

  auto done = next.wait(recovery.value().resubmitted[0]);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done.value().state, service::JobState::succeeded)
      << done.value().result.error().to_string();
  // Job 1 replays from the journal; job 2's compile lands as a warm-cache hit
  // persisted by the previous process.
  EXPECT_GT(done.value().trace.journal_replayed, 0u);
  EXPECT_GE(done.value().trace.cache_hits, 1u);
  EXPECT_GT(next.stats().compile_cache_hydrated, 0u);

  auto digest = hub.resolve("hub/minimd", kOutTag);
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(digest.value().value, want);

  // Journal retirement is durable: a third incarnation has nothing to do.
  EXPECT_EQ(journals.size(), 0u);
  durable::JournalStore third(std::make_shared<store::DiskStore>(dir.string()));
  EXPECT_EQ(third.hydrated(), 0u);
  stdfs::remove_all(dir);
}

TEST(ServiceCrashRecoveryTest, RecoverSkipsJournalsItCanNoLongerServe) {
  registry::Registry hub;
  ASSERT_TRUE(publish(hub, "minimd", "hub/minimd", "1.0").ok());
  durable::JournalStore journals;

  // A journal whose metadata is not a request at all, and one whose image is
  // gone from the hub.
  (void)journals.open("garbage", "not json");
  (void)journals.open("hub/ghost:1.0|x86", R"({"name":"hub/ghost","tag":"1.0","system":"x86","priority":1})");

  service::ServiceOptions options;
  options.journals = &journals;
  service::RebuildService svc(hub, options);
  ASSERT_TRUE(svc.add_system(kSys, make_target()).ok());

  auto recovery = svc.recover();
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery.value().journals_found, 2u);
  EXPECT_EQ(recovery.value().skipped, 2u);
  EXPECT_TRUE(recovery.value().resubmitted.empty());
  EXPECT_EQ(journals.size(), 0u);  // unserviceable journals are dropped
}

}  // namespace
}  // namespace comt
