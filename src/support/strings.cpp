#include "support/strings.hpp"

#include <cctype>

namespace comt {

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) fields.emplace_back(text.substr(start, i - start));
  }
  return fields;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string_view text, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string normalize_path(std::string_view path) {
  if (path.empty()) return ".";
  const bool absolute = path.front() == '/';
  std::vector<std::string> stack;
  for (const std::string& segment : split(path, '/')) {
    if (segment.empty() || segment == ".") continue;
    if (segment == "..") {
      if (!stack.empty() && stack.back() != "..") {
        stack.pop_back();
      } else if (!absolute) {
        stack.push_back("..");
      }
      // ".." at the root of an absolute path is dropped (POSIX lexical).
      continue;
    }
    stack.push_back(segment);
  }
  std::string out = absolute ? "/" : "";
  out += join(stack, "/");
  if (out.empty()) return ".";
  return out;
}

std::string path_join(std::string_view base, std::string_view tail) {
  if (!tail.empty() && tail.front() == '/') return normalize_path(tail);
  if (base.empty()) return normalize_path(tail);
  std::string combined(base);
  combined += '/';
  combined += tail;
  return normalize_path(combined);
}

std::string path_dirname(std::string_view path) {
  std::string normal = normalize_path(path);
  std::size_t pos = normal.rfind('/');
  if (pos == std::string::npos) return ".";
  if (pos == 0) return "/";
  return normal.substr(0, pos);
}

std::string path_basename(std::string_view path) {
  std::string normal = normalize_path(path);
  if (normal == "/") return "/";
  std::size_t pos = normal.rfind('/');
  if (pos == std::string::npos) return normal;
  return normal.substr(pos + 1);
}

std::string path_extension(std::string_view path) {
  std::string base = path_basename(path);
  std::size_t pos = base.rfind('.');
  if (pos == std::string::npos || pos == 0) return "";
  return base.substr(pos);
}

}  // namespace comt
