// Load generator for the distributed rebuild fleet: N service replicas share
// one store behind a simulated remote (S3-dialect) endpoint with injected
// per-op latency and transient faults, and every replica receives the same
// request mix — the N-clients-hit-N-replicas worst case a load balancer
// produces. The run reports the global dedup rate (one lease per distinct
// build fleet-wide), cross-replica reuse, lease-wait p50/p99 under remote
// latency, remote retry absorption, and a warm-cache pass where a second
// fleet generation rebuilds against the entries the first wrote through.
//
// Usage: fleet_rebuild [--smoke] [--replicas N] [--images M] [--rounds R]
//                      [--json PATH]
//   --smoke   small deterministic run with hard assertions (CI-friendly):
//             every distinct (image, system) acquires exactly one lease
//             fleet-wide (zero duplicate rebuilds), cross-replica reuse and
//             warm-cache hits are both nonzero, all injected remote faults
//             actually fired, and no ticket fails.
//   --json PATH   write machine-readable results (with hardware provenance)
//                 to PATH.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet.hpp"
#include "json/json.hpp"
#include "registry/registry.hpp"
#include "service/service.hpp"
#include "store/remote.hpp"
#include "store/store.hpp"
#include "support/fault.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

constexpr const char* kSys = "x86";

int publish(registry::Registry& hub, const char* app_name, const std::string& name) {
  const workloads::AppSpec* app = workloads::find_app(app_name);
  if (app == nullptr) {
    std::fprintf(stderr, "%s missing from corpus\n", app_name);
    return 1;
  }
  workloads::Evaluation world(sysmodel::SystemProfile::x86_cluster());
  auto prepared = world.prepare(*app);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare %s: %s\n", app_name, prepared.error().to_string().c_str());
    return 1;
  }
  auto pushed = hub.push(world.layout(), prepared.value().extended_tag, name, "1.0");
  if (!pushed.ok()) {
    std::fprintf(stderr, "push %s: %s\n", app_name, pushed.error().to_string().c_str());
    return 1;
  }
  return 0;
}

int add_system(fleet::Fleet& fleet) {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  service::TargetSystem target;
  target.profile = &system;
  target.repo = &workloads::system_repo(system);
  if (!workloads::install_system_images(target.base_layout, system).ok()) {
    std::fprintf(stderr, "installing sysenv failed\n");
    return 1;
  }
  target.sysenv_tag = workloads::sysenv_tag(system);
  if (!fleet.add_system(kSys, target).ok()) {
    std::fprintf(stderr, "add_system failed\n");
    return 1;
  }
  return 0;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double round3(double value) { return std::round(value * 1000.0) / 1000.0; }

/// "model name" line from /proc/cpuinfo, or "unknown" — recorded in the
/// JSON so a baseline carries the machine it was measured on.
std::string cpu_model() {
  std::FILE* info = std::fopen("/proc/cpuinfo", "r");
  if (info == nullptr) return "unknown";
  std::string model = "unknown";
  char line[512];
  while (std::fgets(line, sizeof line, info) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    if (const char* colon = std::strchr(line, ':')) {
      model = colon + 1;
      while (!model.empty() && (model.front() == ' ' || model.front() == '\t')) {
        model.erase(model.begin());
      }
      while (!model.empty() && (model.back() == '\n' || model.back() == '\r')) {
        model.pop_back();
      }
    }
    break;
  }
  std::fclose(info);
  return model;
}

int write_file(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(content.data(), 1, content.size(), out);
  std::fclose(out);
  return 0;
}

struct RunTally {
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  std::size_t reused = 0;
  std::vector<double> wait_ms;
  double wall_ms = 0;
  /// image index -> replica whose lease grant actually built it.
  std::vector<std::size_t> builder;
};

void tally_one(const service::TicketStatus& done, RunTally& tally) {
  if (done.state == service::JobState::succeeded) {
    ++tally.succeeded;
  } else {
    ++tally.failed;
    std::fprintf(stderr, "ticket failed: %s\n",
                 done.result.ok() ? service::to_string(done.state)
                                  : done.result.error().to_string().c_str());
  }
  if (done.trace.fleet_reuse) ++tally.reused;
  tally.wait_ms.push_back(done.trace.lease_wait_ms);
}

/// Submits `rounds` copies of every image to every replica (each round is a
/// full duplicate storm), waits them all out, and records which replica won
/// each image's build lease.
int storm(fleet::Fleet& fleet, const std::vector<std::string>& images, int rounds,
          RunTally& tally) {
  auto start = std::chrono::steady_clock::now();
  std::vector<fleet::FleetTicket> tickets;
  std::vector<std::size_t> ticket_image;
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < images.size(); ++i) {
      for (std::size_t replica = 0; replica < fleet.replica_count(); ++replica) {
        auto ticket = fleet.submit_to(replica, {images[i], "1.0", kSys});
        if (!ticket.ok()) {
          std::fprintf(stderr, "submit %s to replica %zu: %s\n", images[i].c_str(),
                       replica, ticket.error().to_string().c_str());
          return 1;
        }
        tickets.push_back(ticket.value());
        ticket_image.push_back(i);
      }
    }
  }
  tally.builder.assign(images.size(), 0);
  for (std::size_t t = 0; t < tickets.size(); ++t) {
    auto done = fleet.wait(tickets[t]);
    if (!done.ok()) return 1;
    tally_one(done.value(), tally);
    if (!done.value().trace.fleet_reuse &&
        done.value().state == service::JobState::succeeded) {
      tally.builder[ticket_image[t]] = tickets[t].replica;
    }
  }
  tally.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int replicas = 3;
  int image_count = 2;
  int rounds = 2;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--replicas") == 0 && i + 1 < argc) {
      replicas = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--images") == 0 && i + 1 < argc) {
      image_count = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (smoke) {
    replicas = 3;
    image_count = 2;
    rounds = 1;
  }
  const std::vector<const char*> corpus = {"minimd", "comd", "hpccg"};
  image_count = std::clamp(image_count, 1, static_cast<int>(corpus.size()));

  registry::Registry hub;
  std::vector<std::string> images;
  for (int i = 0; i < image_count; ++i) {
    std::string name = std::string("hub/") + corpus[static_cast<std::size_t>(i)];
    if (publish(hub, corpus[static_cast<std::size_t>(i)], name) != 0) return 1;
    images.push_back(std::move(name));
  }

  // The shared substrate sits behind a simulated remote endpoint: every
  // coordination key, journal record, and cache write-through pays transfer
  // latency, and the first few transfers fail transiently (the retry loop
  // must absorb them — a fleet whose leases wedge on a flaky remote is
  // useless).
  support::FaultInjector remote_faults;
  store::RemoteStore::Options remote_options;
  remote_options.get_latency = std::chrono::microseconds(200);
  remote_options.put_latency = std::chrono::microseconds(400);
  remote_options.max_attempts = 4;
  remote_options.backoff = std::chrono::microseconds(50);
  auto remote = std::make_shared<store::RemoteStore>(
      std::make_shared<store::MemStore>(), remote_options);
  remote->set_fault_injector(&remote_faults);
  remote_faults.fail_next(store::kRemotePutSite, 2);
  remote_faults.fail_next(store::kRemoteGetSite, 2);

  fleet::FleetOptions options;
  options.replicas = static_cast<std::size_t>(replicas);
  options.store = remote;
  options.lease_ttl = std::chrono::seconds(30);
  options.queue_capacity =
      images.size() * static_cast<std::size_t>(replicas) *
      static_cast<std::size_t>(std::max(rounds, 1)) + 8;

  fleet::Fleet fleet(hub, options);
  if (add_system(fleet) != 0) return 1;

  RunTally cold;
  if (storm(fleet, images, std::max(rounds, 1), cold) != 0) return 1;
  const std::size_t cold_leases = fleet.stats().leases_acquired;
  const std::size_t cold_remote_retries = remote->retries();
  if (fleet.stats().coordinator_errors != 0) {
    std::fprintf(stderr, "coordination degraded %zu times on the cold run\n",
                 static_cast<std::size_t>(fleet.stats().coordinator_errors));
  }

  // Warm pass: age out the done markers (as a production deployment expires
  // them), then aim each image at a replica that did NOT build it. That
  // replica must rebuild — its local compile cache is cold for these jobs —
  // and every lookup falls back to the entries the cold-pass builder wrote
  // through to the shared store. This isolates the cross-replica warm-cache
  // path from lease-level reuse.
  for (const store::KvEntry& entry : remote->list(fleet::kDonePrefix)) {
    if (!remote->erase(entry.key).ok()) return 1;
  }
  RunTally warm;
  {
    auto start = std::chrono::steady_clock::now();
    std::vector<fleet::FleetTicket> tickets;
    for (std::size_t i = 0; i < images.size(); ++i) {
      const std::size_t other = (cold.builder[i] + 1) % fleet.replica_count();
      auto ticket = fleet.submit_to(other, {images[i], "1.0", kSys});
      if (!ticket.ok()) return 1;
      tickets.push_back(ticket.value());
    }
    for (const fleet::FleetTicket& ticket : tickets) {
      auto done = fleet.wait(ticket);
      if (!done.ok()) return 1;
      tally_one(done.value(), warm);
    }
    warm.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  }
  const std::size_t warm_leases = fleet.stats().leases_acquired - cold_leases;
  const std::size_t warm_remote_hits = fleet.stats().cache_remote_hits;

  const std::size_t tickets = cold.succeeded + cold.failed;
  const double dedup_rate =
      tickets == 0 ? 0.0 : static_cast<double>(cold.reused) / static_cast<double>(tickets);
  std::printf("rebuild fleet: %d replicas x %zu images x %d rounds over a remote store "
              "(%lld/%lld us get/put latency)\n",
              replicas, images.size(), std::max(rounds, 1),
              static_cast<long long>(remote_options.get_latency.count()),
              static_cast<long long>(remote_options.put_latency.count()));
  std::printf("%-28s %10zu\n", "tickets", tickets);
  std::printf("%-28s %10zu (distinct builds fleet-wide)\n", "leases acquired", cold_leases);
  std::printf("%-28s %10zu\n", "cross-replica reuses", cold.reused);
  std::printf("%-28s %9.0f%%\n", "dedup rate", 100.0 * dedup_rate);
  std::printf("%-28s %10.2f\n", "wall ms (cold)", cold.wall_ms);
  std::printf("%-28s %10.2f\n", "p50 lease wait ms", percentile(cold.wait_ms, 50));
  std::printf("%-28s %10.2f\n", "p99 lease wait ms", percentile(cold.wait_ms, 99));
  std::printf("%-28s %10zu\n", "remote retries absorbed", cold_remote_retries);
  std::printf("%-28s %10zu\n", "warm-run remote cache hits", warm_remote_hits);
  std::printf("%-28s %10zu succeeded, %zu failed (cold) / %zu succeeded, %zu failed "
              "(warm)\n", "final states", cold.succeeded, cold.failed, warm.succeeded,
              warm.failed);
  std::printf("fault sites:\n");
  for (const support::FaultInjector::SiteCount& site : remote_faults.site_counts()) {
    std::printf("  %-26s %10llu calls, %llu injected\n", site.site.c_str(),
                static_cast<unsigned long long>(site.calls),
                static_cast<unsigned long long>(site.injected));
  }

  if (smoke) {
    if (cold.failed != 0 || warm.failed != 0) {
      std::fprintf(stderr, "SMOKE: %zu cold / %zu warm tickets failed despite retryable "
                           "remote faults\n", cold.failed, warm.failed);
      return 1;
    }
    if (cold_leases != images.size()) {
      std::fprintf(stderr, "SMOKE: %zu leases for %zu distinct builds — duplicate "
                           "rebuilds slipped through\n", cold_leases, images.size());
      return 1;
    }
    if (cold.reused == 0) {
      std::fprintf(stderr, "SMOKE: no cross-replica reuse in a duplicate storm\n");
      return 1;
    }
    if (warm_leases != images.size()) {
      std::fprintf(stderr, "SMOKE: warm generation acquired %zu leases for %zu builds\n",
                   warm_leases, images.size());
      return 1;
    }
    if (warm_remote_hits == 0) {
      std::fprintf(stderr, "SMOKE: warm generation never hit the shared compile cache\n");
      return 1;
    }
    if (remote_faults.injected(store::kRemoteGetSite) == 0 ||
        remote_faults.injected(store::kRemotePutSite) == 0) {
      std::fprintf(stderr, "SMOKE: armed remote faults never fired — the chaos run "
                           "tested nothing\n");
      return 1;
    }
  }

  if (!json_path.empty()) {
    json::Object doc;
    doc.emplace_back("mode", json::Value(std::string(smoke ? "smoke" : "full")));
    doc.emplace_back("hardware_threads",
                     json::Value(static_cast<std::uint64_t>(
                         std::max(1u, std::thread::hardware_concurrency()))));
    doc.emplace_back("cpu_model", json::Value(cpu_model()));
    doc.emplace_back("replicas", json::Value(replicas));
    doc.emplace_back("images", json::Value(static_cast<std::uint64_t>(images.size())));
    doc.emplace_back("rounds", json::Value(std::max(rounds, 1)));
    doc.emplace_back("remote_get_latency_us",
                     json::Value(static_cast<std::uint64_t>(
                         remote_options.get_latency.count())));
    doc.emplace_back("remote_put_latency_us",
                     json::Value(static_cast<std::uint64_t>(
                         remote_options.put_latency.count())));
    doc.emplace_back("tickets", json::Value(static_cast<std::uint64_t>(tickets)));
    doc.emplace_back("distinct_builds", json::Value(static_cast<std::uint64_t>(cold_leases)));
    doc.emplace_back("cross_replica_reuses",
                     json::Value(static_cast<std::uint64_t>(cold.reused)));
    doc.emplace_back("dedup_rate_pct", json::Value(round3(100.0 * dedup_rate)));
    doc.emplace_back("wall_ms_cold", json::Value(round3(cold.wall_ms)));
    doc.emplace_back("p50_lease_wait_ms", json::Value(round3(percentile(cold.wait_ms, 50))));
    doc.emplace_back("p99_lease_wait_ms", json::Value(round3(percentile(cold.wait_ms, 99))));
    doc.emplace_back("remote_retries",
                     json::Value(static_cast<std::uint64_t>(cold_remote_retries)));
    doc.emplace_back("failed_tickets",
                     json::Value(static_cast<std::uint64_t>(cold.failed + warm.failed)));
    json::Object warm_obj;
    warm_obj.emplace_back("wall_ms", json::Value(round3(warm.wall_ms)));
    warm_obj.emplace_back("leases", json::Value(static_cast<std::uint64_t>(warm_leases)));
    warm_obj.emplace_back("remote_cache_hits",
                          json::Value(static_cast<std::uint64_t>(warm_remote_hits)));
    doc.emplace_back("warm_generation", json::Value(std::move(warm_obj)));
    json::Array sites;
    for (const support::FaultInjector::SiteCount& site : remote_faults.site_counts()) {
      json::Object entry;
      entry.emplace_back("site", json::Value(site.site));
      entry.emplace_back("calls", json::Value(static_cast<std::uint64_t>(site.calls)));
      entry.emplace_back("injected",
                         json::Value(static_cast<std::uint64_t>(site.injected)));
      sites.push_back(json::Value(std::move(entry)));
    }
    doc.emplace_back("fault_sites", json::Value(std::move(sites)));
    if (write_file(json_path, json::serialize_pretty(json::Value(std::move(doc)))) != 0) {
      return 1;
    }
    std::printf("results written to %s\n", json_path.c_str());
  }
  return 0;
}
