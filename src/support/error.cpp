#include "support/error.hpp"

namespace comt {

const char* errc_name(Errc code) {
  switch (code) {
    case Errc::invalid_argument:
      return "invalid_argument";
    case Errc::not_found:
      return "not_found";
    case Errc::already_exists:
      return "already_exists";
    case Errc::corrupt:
      return "corrupt";
    case Errc::unsupported:
      return "unsupported";
    case Errc::failed:
      return "failed";
  }
  return "unknown";
}

}  // namespace comt
