#include <gtest/gtest.h>

#include "shell/shell.hpp"

namespace comt::shell {
namespace {

std::vector<std::string> words(std::string_view line, const Environment& env = {}) {
  auto result = tokenize(line, env);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().to_string());
  return result.ok() ? result.value() : std::vector<std::string>{};
}

TEST(TokenizeTest, PlainWords) {
  EXPECT_EQ(words("gcc -O2 -c main.c"),
            (std::vector<std::string>{"gcc", "-O2", "-c", "main.c"}));
  EXPECT_TRUE(words("").empty());
  EXPECT_TRUE(words("   \t ").empty());
}

TEST(TokenizeTest, SingleQuotesAreLiteral) {
  Environment env{{"X", "val"}};
  EXPECT_EQ(words("echo '$X literal  spaces'", env),
            (std::vector<std::string>{"echo", "$X literal  spaces"}));
}

TEST(TokenizeTest, DoubleQuotesExpandButDontSplit) {
  Environment env{{"FLAGS", "-O2 -g"}};
  EXPECT_EQ(words("cc \"$FLAGS\" x.c", env),
            (std::vector<std::string>{"cc", "-O2 -g", "x.c"}));
}

TEST(TokenizeTest, UnquotedExpansionFieldSplits) {
  Environment env{{"CFLAGS", "-O3 -march=native"}};
  EXPECT_EQ(words("gcc $CFLAGS -c a.c", env),
            (std::vector<std::string>{"gcc", "-O3", "-march=native", "-c", "a.c"}));
}

TEST(TokenizeTest, EmptyExpansionProducesNoWord) {
  EXPECT_EQ(words("a $UNSET b"), (std::vector<std::string>{"a", "b"}));
}

TEST(TokenizeTest, AdjacentExpansion) {
  Environment env{{"D", "/work"}};
  EXPECT_EQ(words("cd $D/src", env), (std::vector<std::string>{"cd", "/work/src"}));
  EXPECT_EQ(words("cd ${D}dir", env), (std::vector<std::string>{"cd", "/workdir"}));
}

TEST(TokenizeTest, BackslashEscapes) {
  EXPECT_EQ(words(R"(echo a\ b \$HOME)"),
            (std::vector<std::string>{"echo", "a b", "$HOME"}));
}

TEST(TokenizeTest, QuotesInsideWords) {
  EXPECT_EQ(words("-DNAME='\"quoted\"'"),
            (std::vector<std::string>{"-DNAME=\"quoted\""}));
}

TEST(TokenizeTest, DollarWithoutNameIsLiteral) {
  EXPECT_EQ(words("price $ 5"), (std::vector<std::string>{"price", "$", "5"}));
  EXPECT_EQ(words("x${unclosed"), (std::vector<std::string>{"x${unclosed"}));
}

TEST(TokenizeTest, UnterminatedQuotesFail) {
  EXPECT_FALSE(tokenize("echo 'open", {}).ok());
  EXPECT_FALSE(tokenize("echo \"open", {}).ok());
}

TEST(ExpandTest, BothForms) {
  Environment env{{"A", "1"}, {"LONG_name2", "2"}};
  EXPECT_EQ(expand_variables("$A ${LONG_name2} $missing", env), "1 2 ");
  EXPECT_EQ(expand_variables("no vars", env), "no vars");
  EXPECT_EQ(expand_variables("\\$A", env), "$A");
}

TEST(CommandListTest, AndChain) {
  auto commands = parse_command_list("mkdir -p /x && cd /x && touch f", {});
  ASSERT_TRUE(commands.ok());
  ASSERT_EQ(commands.value().size(), 3u);
  EXPECT_TRUE(commands.value()[0].and_next);
  EXPECT_TRUE(commands.value()[1].and_next);
  EXPECT_FALSE(commands.value()[2].and_next);
  EXPECT_EQ(commands.value()[0].argv,
            (std::vector<std::string>{"mkdir", "-p", "/x"}));
}

TEST(CommandListTest, SemicolonSequence) {
  auto commands = parse_command_list("a ; b", {});
  ASSERT_TRUE(commands.ok());
  ASSERT_EQ(commands.value().size(), 2u);
  EXPECT_FALSE(commands.value()[0].and_next);
}

TEST(CommandListTest, SeparatorsInsideQuotesIgnored) {
  auto commands = parse_command_list("echo 'a && b ; c' && next", {});
  ASSERT_TRUE(commands.ok());
  ASSERT_EQ(commands.value().size(), 2u);
  EXPECT_EQ(commands.value()[0].argv[1], "a && b ; c");
}

TEST(CommandListTest, EmptySegmentsSkipped) {
  auto commands = parse_command_list("a && ", {});
  ASSERT_TRUE(commands.ok());
  EXPECT_EQ(commands.value().size(), 1u);
}

TEST(CommandListTest, ExpansionHappensPerCommand) {
  Environment env{{"T", "target"}};
  auto commands = parse_command_list("make $T && echo done", env);
  ASSERT_TRUE(commands.ok());
  EXPECT_EQ(commands.value()[0].argv, (std::vector<std::string>{"make", "target"}));
}

}  // namespace
}  // namespace comt::shell
