// coMtainer image inspector: what a system administrator would run against a
// pulled extended image before trusting a rebuild. Prints the manifest chain,
// the five-way file-provenance breakdown, the runtime dependency list, the
// build graph (with its Graphviz rendering), and each compilation model.
#include <cstdio>

#include "core/cache.hpp"
#include "core/verify.hpp"
#include "support/strings.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

void print_image_row(const oci::Layout& layout, std::string_view tag) {
  auto image = layout.find_image(tag);
  if (!image.ok()) return;
  std::uint64_t bytes = image.value().manifest.config.size;
  for (const oci::Descriptor& layer : image.value().manifest.layers) bytes += layer.size;
  std::printf("  %-22s %2zu layers  %8.2f MiB  %s\n", std::string(tag).c_str(),
              image.value().manifest.layers.size(), workloads::to_sim_mib(bytes),
              image.value().manifest_digest.value.substr(0, 19).c_str());
}

}  // namespace

int main() {
  // Stage an extended image to inspect (in a real deployment this would be
  // `comtainer inspect ./app.dist.oci`).
  const workloads::AppSpec* app = workloads::find_app("minife");
  workloads::Evaluation world(sysmodel::SystemProfile::x86_cluster());
  auto prepared = world.prepare(*app);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", prepared.error().to_string().c_str());
    return 1;
  }

  std::printf("== manifests in the layout (index.json) ==\n");
  print_image_row(world.layout(), prepared.value().dist_tag);
  print_image_row(world.layout(), prepared.value().extended_tag);

  auto extended = world.layout().find_image(prepared.value().extended_tag);
  auto rootfs = world.layout().flatten(extended.value());
  if (!rootfs.ok()) return 1;
  auto bundle = core::load_cache(rootfs.value());
  if (!bundle.ok()) {
    std::fprintf(stderr, "not an extended image: %s\n",
                 bundle.error().to_string().c_str());
    return 1;
  }

  const core::ImageModel& model = bundle.value().models.image;
  std::printf("\n== image model: file provenance (%zu files) ==\n", model.files.size());
  auto histogram = model.origin_histogram();
  for (auto origin : {core::FileOrigin::base_image, core::FileOrigin::package_manager,
                      core::FileOrigin::build_process, core::FileOrigin::data,
                      core::FileOrigin::unknown}) {
    std::printf("  %-10s %4zu\n", core::file_origin_name(origin),
                histogram.count(origin) != 0 ? histogram.at(origin) : 0);
  }
  std::printf("\n  build products:\n");
  for (const core::ImageFileEntry& entry : model.files) {
    if (entry.origin == core::FileOrigin::build_process) {
      std::printf("    %-28s <- graph node %d\n", entry.path.c_str(), entry.build_node);
    }
  }

  std::printf("\n== runtime dependencies ==\n");
  for (const core::RuntimePackage& package : model.runtime_packages) {
    std::printf("  %-18s %-12s %s\n", package.name.c_str(), package.version.c_str(),
                package.variant.c_str());
  }

  const core::BuildGraph& graph = bundle.value().models.graph;
  std::printf("\n== build graph (%zu nodes, %zu cached inputs) ==\n", graph.size(),
              bundle.value().sources.size());
  for (const core::GraphNode& node : graph.nodes()) {
    std::string deps;
    for (int dep : node.deps) deps += (deps.empty() ? "" : ",") + std::to_string(dep);
    std::printf("  [%2d] %-10s %-28s deps={%s}\n", node.id,
                core::node_kind_name(node.kind), node.path.c_str(), deps.c_str());
    if (node.compile.has_value()) {
      std::printf("        compilation model: %s\n",
                  join(node.compile->render(), " ").c_str());
    }
  }

  std::printf("\n== graphviz ==\n%s", graph.to_dot().c_str());

  // The admin's go/no-go check before rebuilding from this image.
  auto verification =
      core::verify_extended_image(world.layout(), prepared.value().extended_tag);
  if (!verification.ok()) {
    std::fprintf(stderr, "verification error: %s\n",
                 verification.error().to_string().c_str());
    return 1;
  }
  std::printf("\n== verification ==\n");
  std::printf("  extended image: %s | graph: %s | sources cached: %zu, missing: %zu\n",
              verification.value().is_extended ? "yes" : "NO",
              verification.value().graph_valid ? "valid" : "INVALID",
              verification.value().sources_cached, verification.value().sources_missing);
  for (const std::string& problem : verification.value().problems) {
    std::printf("  problem: %s\n", problem.c_str());
  }
  std::printf("  verdict: %s\n", verification.value().ok() ? "OK to rebuild" : "DO NOT REBUILD");
  return verification.value().ok() ? 0 : 1;
}
