#include "core/backend.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <set>

#include "buildexec/builder.hpp"
#include "buildexec/container.hpp"
#include "core/frontend.hpp"
#include "sched/dag.hpp"
#include "sched/thread_pool.hpp"
#include "support/sha256.hpp"
#include "support/strings.hpp"
#include "toolchain/driver.hpp"

namespace comt::core {
namespace {

constexpr std::string_view kRebuildMetaPath = "/.coMtainer/rebuild-meta.json";

json::Value replacements_to_json(const std::map<std::string, std::string>& replacements) {
  json::Object object;
  for (const auto& [from, to] : replacements) object.emplace_back(from, json::Value(to));
  return json::Value(std::move(object));
}

std::map<std::string, std::string> replacements_from_json(const json::Value& value) {
  std::map<std::string, std::string> out;
  if (!value.is_object()) return out;
  for (const auto& [from, to] : value.as_object()) {
    if (to.is_string()) out[from] = to.as_string();
  }
  return out;
}

/// Pins an image's blobs (manifest, config, layers) in a layout for the
/// guard's lifetime. A journaled rebuild holds one over its source image so
/// garbage collection or fsck quarantine running against the same layout
/// cannot reclaim bytes the rebuild — or a crash-resume of it — still needs.
class PinGuard {
 public:
  PinGuard() = default;
  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;
  ~PinGuard() {
    if (layout_ == nullptr) return;
    for (const oci::Digest& digest : digests_) layout_->unpin_blob(digest);
  }

  void pin(oci::Layout& layout, const oci::Image& image) {
    layout_ = &layout;
    digests_.push_back(image.manifest_digest);
    digests_.push_back(image.manifest.config.digest);
    for (const oci::Descriptor& layer : image.manifest.layers) {
      digests_.push_back(layer.digest);
    }
    for (const oci::Digest& digest : digests_) layout.pin_blob(digest);
  }

 private:
  oci::Layout* layout_ = nullptr;
  std::vector<oci::Digest> digests_;
};

/// Identity of a rebuild for the journal's begin record: the extended image,
/// the target, and the (adapter-transformed) compile DAG. A journal written
/// for one identity must not drive another — replaying foreign outputs would
/// silently corrupt the rebuilt image.
std::string rebuild_inputs_digest(const oci::Image& extended,
                                  const sysmodel::SystemProfile& system,
                                  const std::string& arch, const BuildGraph& graph,
                                  const std::vector<int>& order) {
  Sha256 hasher;
  auto put = [&hasher](std::string_view field) {
    std::uint64_t size = field.size();
    hasher.update(&size, sizeof(size));
    hasher.update(field);
  };
  put(extended.manifest_digest.value);
  put(system.name);
  put(arch);
  for (int id : order) {
    const GraphNode& node = graph.node(id);
    put(std::to_string(id));
    put(node.path);
    put(node.cwd);
    if (node.is_leaf()) {
      put(node.content_digest);
      continue;
    }
    if (node.compile.has_value()) {
      for (const std::string& arg : node.compile->render()) put(arg);
    }
    for (const std::string& arg : node.archive_argv) put(arg);
    for (int dep : node.deps) put(std::to_string(dep));
  }
  auto digest = hasher.finish();
  return to_hex(digest.data(), digest.size());
}

}  // namespace

std::string base_tag_of(std::string_view tag) {
  for (std::string_view suffix : {kRedirectedSuffix, kRebuiltSuffix, kExtendedSuffix}) {
    if (ends_with(tag, suffix)) return std::string(tag.substr(0, tag.size() - suffix.size()));
  }
  return std::string(tag);
}

Result<oci::Image> comtainer_build(oci::Layout& layout, std::string_view dist_tag,
                                   std::string_view base_tag,
                                   const buildexec::BuildRecord& record,
                                   const vfs::Filesystem& build_rootfs,
                                   const CacheOptions& cache_options) {
  COMT_TRY(oci::Image dist, layout.find_image(dist_tag));
  COMT_TRY(oci::Image base, layout.find_image(base_tag));

  AnalysisInput input;
  input.record = &record;
  input.layout = &layout;
  input.dist_image = &dist;
  input.dist_base = &base;
  COMT_TRY(ProcessModels models, analyze(input));
  models.image.image_tag = std::string(dist_tag);

  COMT_TRY(vfs::Filesystem cache_layer,
           make_cache_layer(models, record, build_rootfs, cache_options));
  std::string extended_tag = std::string(dist_tag) + std::string(kExtendedSuffix);
  return layout.append_layer(dist, cache_layer, "coMtainer-build", extended_tag);
}

Result<RebuildReport> comtainer_rebuild(oci::Layout& layout, std::string_view extended_tag,
                                        const RebuildOptions& options) {
  if (options.system == nullptr || options.system_repo == nullptr) {
    return make_error(Errc::invalid_argument, "rebuild: missing system or repository");
  }
  obs::Span root_span =
      obs::maybe_span(options.tracer, "rebuild", options.parent_span, "rebuild");
  root_span.annotate("image", extended_tag);
  obs::Span resolve_span =
      obs::maybe_span(options.tracer, "resolve", root_span.id(), "resolve");
  COMT_TRY(oci::Image extended, layout.find_image(extended_tag));
  COMT_TRY(vfs::Filesystem extended_rootfs, layout.flatten(extended));
  COMT_TRY(CacheBundle bundle, load_cache(extended_rootfs));

  // Adapters operate on an independent copy of the models (§4.2).
  BuildGraph graph = bundle.models.graph;
  AdapterContext context{options.system, options.system_repo};
  RebuildReport report;
  report.root_span = root_span.id();
  bool want_profile = false;
  for (const SystemAdapter* adapter : options.adapters) {
    COMT_TRY_STATUS(adapter->adapt_graph(graph, context));
    adapter->adapt_packages(report.package_replacements, bundle.models.image, context);
    want_profile = want_profile || adapter->wants_profile_feedback();
  }

  // The rebuild container: the system's build environment.
  buildexec::ImageBuilder builder(layout);
  builder.set_apt_source(options.system_repo);
  COMT_TRY(buildexec::Container container, builder.container_from(options.sysenv_tag));

  // Materialize every build input from the cache at its recorded path.
  // Inputs absent from the cache must be environment-provided files
  // (package-owned libraries): the Sysenv container supplies its own —
  // optimized — builds of those at the same paths.
  for (const GraphNode& node : graph.nodes()) {
    if (!node.is_leaf() || node.content_digest.empty()) continue;
    auto source = bundle.sources.find(node.content_digest);
    if (source == bundle.sources.end()) {
      if (container.rootfs().exists(node.path)) continue;
      return make_error(Errc::corrupt, "rebuild: cache is missing input " + node.path +
                                           " and the system provides no substitute");
    }
    COMT_TRY_STATUS(container.rootfs().write_file(node.path, source->second));
  }

  // The compile scheduler. Each non-leaf graph node becomes one job whose
  // dependency edges are the node's non-leaf producers, so independent
  // translation units compile concurrently while links wait for their
  // objects. Sequential mode (threads == 1) runs jobs inline in topological
  // order directly on the shared rootfs. Concurrent mode runs the DAG in
  // epoch/wave mode: every wave shares one immutable copy-on-write snapshot
  // of the rootfs (published by the wave-begin hook, read lock-free by all
  // jobs), job outputs are buffered per job, and the wave-commit hook applies
  // them to the rootfs — in submission order, on the scheduler's calling
  // thread, one batch per wave instead of one writer lock per job. Both modes
  // produce bit-identical rebuilt images because a job only ever reads
  // outputs of its (earlier-wave) dependencies. See docs/PERFORMANCE.md.
  COMT_TRY(std::vector<int> order, graph.topological_order());
  const std::string arch = container.config().architecture;
  const shell::Environment env = container.env();
  // Concurrent mode only: the current wave's shared rootfs snapshot. Written
  // by the wave-begin hook (between waves, on the run() caller's thread),
  // read by job bodies; the wave barrier orders the two.
  std::shared_ptr<const vfs::Filesystem> epoch_view;
  // One per scheduler job in concurrent mode: outputs buffered by the body,
  // applied by the wave-commit hook.
  struct PendingCommit {
    std::string job_key;
    std::vector<sched::CachedOutput> outputs;
    bool replayed = false;  ///< journal replay: already durable, don't re-append
  };
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> journal_replayed{0};
  std::atomic<std::uint64_t> journal_committed{0};

  // Write-ahead journal: bind this rebuild to the journal's begin record and
  // recover whatever a previous interrupted run already committed. The source
  // image's blobs stay pinned while the journal is live.
  durable::ReplayState replay_state;
  PinGuard pins;
  if (options.journal != nullptr) {
    pins.pin(layout, extended);
    const std::string inputs_digest =
        rebuild_inputs_digest(extended, *options.system, arch, graph, order);
    COMT_TRY(replay_state, options.journal->replay());
    report.journal_truncated_bytes = replay_state.truncated_bytes;
    if (replay_state.begin.has_value()) {
      if (replay_state.begin->inputs_digest != inputs_digest) {
        return make_error(Errc::invalid_argument,
                          "rebuild: journal was begun for different inputs (" +
                              replay_state.begin->inputs_digest + " != " + inputs_digest +
                              ")");
      }
      report.resumed = true;
    } else {
      durable::BeginRecord begin;
      begin.inputs_digest = inputs_digest;
      begin.system = options.system->name;
      begin.metadata = options.journal_metadata;
      for (int id : order) {
        if (!graph.node(id).is_leaf()) ++begin.planned_jobs;
      }
      COMT_TRY_STATUS(options.journal->append_begin(begin));
    }
  }
  resolve_span.end();

  // Current digest of `path` in the shared rootfs; "" when unreadable. The
  // cache verifies its per-entry input manifest through this, so a changed
  // source, header, object or toolchain stub turns a candidate into a miss.
  // Concurrent jobs digest against the wave's immutable snapshot, lock-free;
  // sequential jobs read the live rootfs (nothing else is running).
  auto digest_in_rootfs = [&](const std::string& path) -> std::string {
    const vfs::Filesystem& fs =
        epoch_view != nullptr ? *epoch_view : container.rootfs();
    auto content = fs.read_file(path);
    return content.ok() ? Sha256::hex_digest(content.value()) : std::string();
  };

  // One job body. `slot == nullptr` is the sequential path: execute in place
  // on the shared rootfs, commit and journal inline (per-job crash sites are
  // exact, which the crash-resume machinery depends on). With a slot the job
  // runs in a wave: it executes against a private copy of the wave snapshot
  // and buffers its outputs; the wave-commit hook applies and journals them
  // at the barrier.
  auto run_job = [&](const std::string& job_key, const std::vector<std::string>& argv,
                     const std::string& cwd, PendingCommit* slot) -> Status {
    if (options.fault_injector != nullptr) {
      options.fault_injector->check_crash(kCrashJobStart);
    }
    if (slot != nullptr) slot->job_key = job_key;
    // Crash-resume replay: a commit record means this job's outputs are
    // already durable — re-apply them instead of re-running the tool.
    if (options.journal != nullptr) {
      auto committed = replay_state.commits.find(job_key);
      if (committed != replay_state.commits.end()) {
        if (durable::digest_outputs(committed->second.outputs) !=
            committed->second.output_digest) {
          return make_error(Errc::corrupt, "rebuild: journal commit for job " + job_key +
                                               " fails its output digest");
        }
        if (slot != nullptr) {
          slot->replayed = true;
          for (const durable::JournalOutput& out : committed->second.outputs) {
            slot->outputs.push_back({out.path, out.content, out.mode});
          }
        } else {
          for (const durable::JournalOutput& out : committed->second.outputs) {
            COMT_TRY_STATUS(container.rootfs().write_file(out.path, out.content, out.mode));
          }
        }
        journal_replayed.fetch_add(1);
        return Status::success();
      }
    }
    if (options.fault_injector != nullptr) {
      COMT_TRY_STATUS(options.fault_injector->check(kCompileFaultSite));
    }
    sched::CacheKey key{options.system->name, arch, cwd, argv};
    const std::string key_digest = key.digest();
    std::vector<sched::CachedOutput> outputs;
    bool from_cache = false;
    if (options.compile_cache != nullptr) {
      auto hit = options.compile_cache->lookup(key_digest, digest_in_rootfs);
      if (hit != nullptr) {
        outputs = hit->outputs;
        from_cache = true;
        cache_hits.fetch_add(1);
      }
    }
    if (!from_cache) {
      // Sequential mode executes directly on the shared rootfs (nothing else
      // runs, so no snapshot is needed and no copy is paid). A wave job
      // executes against a private copy of the wave snapshot — node-level
      // structural sharing makes that a pointer-per-path copy, no content
      // bytes and no lock — and the rebuilt files are identical because the
      // tool sees the same committed dependency outputs either way.
      vfs::Filesystem snapshot;
      vfs::Filesystem* fs = &container.rootfs();
      if (slot != nullptr) {
        snapshot = *epoch_view;
        fs = &snapshot;
      }
      auto executed = buildexec::exec_tool(argv, *fs, cwd, arch, env);
      if (!executed.ok()) return executed.error();
      cache_misses.fetch_add(1);
      if (slot != nullptr || options.compile_cache != nullptr ||
          options.journal != nullptr) {
        for (const std::string& out_path : executed.value().outputs) {
          auto content = fs->read_file(out_path);
          if (!content.ok()) continue;  // e.g. an output the tool itself removed
          std::uint32_t mode = 0644;
          if (const vfs::Node* node = fs->lookup(out_path)) mode = node->mode;
          outputs.push_back({out_path, std::move(content).value(), mode});
        }
      }
      if (options.compile_cache != nullptr) {
        sched::CacheEntry entry;
        for (const std::string& in_path : executed.value().inputs_read) {
          auto content = fs->read_file(in_path);
          entry.input_digests[in_path] =
              content.ok() ? Sha256::hex_digest(content.value()) : std::string();
        }
        if (!executed.value().resolved_program.empty()) {
          auto program = fs->read_file(executed.value().resolved_program);
          entry.input_digests[executed.value().resolved_program] =
              program.ok() ? Sha256::hex_digest(program.value()) : std::string();
        }
        if (slot != nullptr || options.journal != nullptr) {
          entry.outputs = outputs;  // the write-back / journal commit below still needs them
        } else {
          entry.outputs = std::move(outputs);
        }
        options.compile_cache->store(key_digest, std::move(entry));
      }
    }
    if (slot != nullptr) {
      // Wave mode: nothing touches the shared rootfs here. The commit hook
      // applies these at the barrier, in submission order.
      slot->outputs = std::move(outputs);
      return Status::success();
    }
    // Sequential: a cache hit replays its outputs onto the rootfs (a miss
    // already wrote in place), then the job is journaled inline.
    if (from_cache) {
      for (const sched::CachedOutput& out : outputs) {
        COMT_TRY_STATUS(container.rootfs().write_file(out.path, out.content, out.mode));
      }
    }
    if (options.journal != nullptr) {
      if (options.fault_injector != nullptr) {
        options.fault_injector->check_crash(kCrashJobCommitted);
      }
      durable::CommitRecord record;
      record.job_id = job_key;
      record.outputs.reserve(outputs.size());
      for (sched::CachedOutput& out : outputs) {
        record.outputs.push_back({std::move(out.path), std::move(out.content), out.mode});
      }
      record.output_digest = durable::digest_outputs(record.outputs);
      COMT_TRY_STATUS(options.journal->append_commit(record));
      journal_committed.fetch_add(1);
      if (options.fault_injector != nullptr) {
        options.fault_injector->check_crash(kCrashJournalCommitted);
      }
    }
    return Status::success();
  };

  std::unique_ptr<sched::ThreadPool> pool;
  obs::Counter* commit_batches = nullptr;
  obs::Histogram* commit_batch_jobs = nullptr;
  if (options.threads > 1) {
    pool = std::make_unique<sched::ThreadPool>(options.threads);
    pool->set_metrics(options.metrics);
    if (options.metrics != nullptr) {
      commit_batches = &options.metrics->counter("rebuild.commit.batches");
      commit_batch_jobs = &options.metrics->histogram("rebuild.commit.batch_jobs",
                                                      obs::default_batch_size_buckets());
    }
  }

  // `pass` prefixes journal job keys so the two PGO passes (which run the
  // same node ids with different flags) never share commit records.
  auto execute_graph = [&](bool profile_generate, bool profile_use,
                           std::string_view pass) -> Status {
    // The pass span parents every compile-job span; its own category is
    // "sched" so the profile attributes the time to the jobs, not twice.
    obs::Span pass_span = obs::maybe_span(
        options.tracer, "pass:" + std::string(pass), root_span.id(), "sched");
    sched::DagScheduler scheduler;
    std::vector<PendingCommit> pending;  // sized after all jobs are added
    for (int id : order) {
      const GraphNode& node = graph.node(id);
      if (node.is_leaf()) continue;
      std::vector<std::string> argv;
      if (node.compile.has_value()) {
        toolchain::CompileCommand command = *node.compile;
        if (profile_generate) {
          command.profile_generate = true;
          command.profile_use.clear();
        }
        if (profile_use) {
          command.profile_generate = false;
          command.profile_use = ".";
        }
        argv = command.render();
      } else if (!node.archive_argv.empty()) {
        argv = node.archive_argv;
      }
      std::vector<std::string> dep_jobs;
      for (int dep : node.deps) {
        if (!graph.node(dep).is_leaf()) dep_jobs.push_back(std::to_string(dep));
      }
      std::string cwd = node.cwd.empty() ? "/" : node.cwd;
      std::string path = node.path;
      std::string job_key = std::string(pass) + ":" + std::to_string(id);
      const std::size_t job_index = scheduler.job_count();
      COMT_TRY_STATUS(scheduler.add_job(
          std::to_string(id), std::move(dep_jobs),
          [&run_job, &pending, &pool, id, job_index, job_key = std::move(job_key),
           path = std::move(path), argv = std::move(argv),
           cwd = std::move(cwd)]() -> Status {
            if (argv.empty()) return Status::success();
            PendingCommit* slot = pool != nullptr ? &pending[job_index] : nullptr;
            Status status = run_job(job_key, argv, cwd, slot);
            if (!status.ok()) {
              return make_error(status.error().code,
                                "rebuild of node " + std::to_string(id) + " (" + path +
                                    "): " + status.error().message);
            }
            return Status::success();
          },
          node.archive_argv.empty() ? "compile" : "link"));
    }
    pending.assign(scheduler.job_count(), PendingCommit{});
    report.jobs += scheduler.job_count();
    sched::ObsOptions sched_obs;
    sched_obs.tracer = options.tracer;
    sched_obs.parent = pass_span.id();
    sched_obs.metrics = options.metrics;

    // Concurrent passes run in epoch mode: one shared snapshot per wave, one
    // batched commit (plus journal appends) per wave, both on this thread.
    sched::EpochHooks hooks;
    const sched::EpochHooks* hooks_ptr = nullptr;
    if (pool != nullptr) {
      hooks.begin = [&](std::size_t, const std::vector<std::size_t>&) {
        epoch_view = std::make_shared<const vfs::Filesystem>(container.rootfs());
      };
      hooks.commit = [&](std::size_t,
                         const std::vector<std::size_t>& succeeded) -> Status {
        if (commit_batches != nullptr) commit_batches->add();
        if (commit_batch_jobs != nullptr) {
          commit_batch_jobs->observe(static_cast<double>(succeeded.size()));
        }
        for (std::size_t job : succeeded) {
          PendingCommit& slot = pending[job];
          for (const sched::CachedOutput& out : slot.outputs) {
            COMT_TRY_STATUS(
                container.rootfs().write_file(out.path, out.content, out.mode));
          }
          if (options.journal != nullptr && !slot.replayed) {
            if (options.fault_injector != nullptr) {
              options.fault_injector->check_crash(kCrashJobCommitted);
            }
            durable::CommitRecord record;
            record.job_id = slot.job_key;
            record.outputs.reserve(slot.outputs.size());
            for (sched::CachedOutput& out : slot.outputs) {
              record.outputs.push_back(
                  {std::move(out.path), std::move(out.content), out.mode});
            }
            record.output_digest = durable::digest_outputs(record.outputs);
            COMT_TRY_STATUS(options.journal->append_commit(record));
            journal_committed.fetch_add(1);
            if (options.fault_injector != nullptr) {
              options.fault_injector->check_crash(kCrashJournalCommitted);
            }
          }
          slot.outputs.clear();
          slot.outputs.shrink_to_fit();
        }
        return Status::success();
      };
      hooks_ptr = &hooks;
    }
    COMT_TRY(sched::ScheduleReport schedule,
             scheduler.run(pool.get(), sched_obs, hooks_ptr));
    pass_span.annotate("jobs", static_cast<std::uint64_t>(schedule.jobs.size()));
    report.nodes_executed += schedule.executed;
    report.wall_ms += schedule.wall_ms;
    return schedule.first_error();
  };

  if (want_profile) {
    // Pass 1: instrumented build.
    COMT_TRY_STATUS(execute_graph(/*profile_generate=*/true, /*profile_use=*/false, "pg"));
    // Trial runs on the target system produce the profiles.
    sysmodel::ExecutionEngine engine(*options.system);
    for (int id : graph.roots()) {
      const GraphNode& node = graph.node(id);
      if (node.kind != NodeKind::executable) continue;
      auto run = engine.run(container.rootfs(), node.path, options.profile_run);
      if (!run.ok()) {
        return make_error(run.error().code,
                          "PGO trial run of " + node.path + ": " + run.error().message);
      }
      if (!run.value().profile_blob.empty()) {
        std::string cwd = node.cwd.empty() ? "/" : node.cwd;
        COMT_TRY_STATUS(container.rootfs().write_file(
            path_join(cwd, toolchain::kDefaultProfileName), run.value().profile_blob));
      }
    }
    // Pass 2: profile-guided build.
    COMT_TRY_STATUS(execute_graph(/*profile_generate=*/false, /*profile_use=*/true, "pu"));
    report.profile_feedback = true;
  } else {
    COMT_TRY_STATUS(execute_graph(false, false, "p0"));
  }

  // Every pass fully committed: fold the journal into one canonical
  // begin+commit snapshot and drop records superseded by the final pass —
  // a PGO journal that lived through instrument→optimize shrinks back to
  // the "pu" commits a resume would actually replay. (A resume of a crash
  // from here re-runs the cheap instrument pass but replays every final-pass
  // job, so the image is still bit-identical.)
  if (options.journal != nullptr) {
    const std::string final_prefix = std::string(want_profile ? "pu" : "p0") + ":";
    COMT_TRY(report.journal_compaction,
             options.journal->compact([&final_prefix](const durable::CommitRecord& commit) {
               return commit.job_id.compare(0, final_prefix.size(), final_prefix) == 0;
             }));
    report.journal_compacted = true;
  }

  // Post-link artifact transformations (binary-level optimizations such as
  // the BOLT-style layout adapter) run on the rebuilt linked images.
  for (int id : graph.roots()) {
    const GraphNode& node = graph.node(id);
    if (node.kind != NodeKind::executable && node.kind != NodeKind::shared_lib) continue;
    auto blob = container.rootfs().read_file(node.path);
    if (!blob.ok() || !toolchain::is_image_blob(blob.value())) continue;
    COMT_TRY(toolchain::LinkedImage artifact, toolchain::parse_image(blob.value()));
    bool changed = false;
    for (const SystemAdapter* adapter : options.adapters) {
      toolchain::LinkedImage before = artifact;
      COMT_TRY_STATUS(adapter->adapt_artifact(artifact, context));
      changed = changed || !(artifact == before);
    }
    if (changed) {
      COMT_TRY_STATUS(container.rootfs().write_file(
          node.path, toolchain::serialize_image(artifact), 0755));
    }
  }

  // Collect the rebuild layer: the rebuilt content of every build-produced
  // file of the application image, stored under /.coMtainer/rebuild at the
  // file's original image path.
  obs::Span commit_span =
      obs::maybe_span(options.tracer, "layer-commit", root_span.id(), "layer-commit");
  vfs::Filesystem rebuild_layer;
  for (const ImageFileEntry& entry : bundle.models.image.files) {
    if (entry.origin != FileOrigin::build_process || entry.build_node < 0) continue;
    const GraphNode& node = graph.node(entry.build_node);
    auto content = container.rootfs().read_file(node.path);
    if (!content.ok()) {
      return make_error(Errc::failed,
                        "rebuild: expected output missing from rebuild container: " +
                            node.path);
    }
    COMT_TRY_STATUS(rebuild_layer.write_file(std::string(kRebuildDir) + entry.path,
                                             std::move(content).value(), 0755));
    ++report.files_rebuilt;
  }
  COMT_TRY_STATUS(rebuild_layer.write_file(
      std::string(kRebuildMetaPath),
      json::serialize(replacements_to_json(report.package_replacements))));

  report.cache_hits = cache_hits.load();
  report.cache_misses = cache_misses.load();
  report.journal_replayed = journal_replayed.load();
  report.journal_committed = journal_committed.load();
  if (options.metrics != nullptr) {
    options.metrics->counter("rebuild.cache.hits").add(report.cache_hits);
    options.metrics->counter("rebuild.cache.misses").add(report.cache_misses);
    options.metrics->counter("rebuild.journal.replayed").add(report.journal_replayed);
    options.metrics->counter("rebuild.journal.committed").add(report.journal_committed);
  }

  // The last crash window: every job is journaled but the rebuilt image is
  // not assembled yet. A resume replays everything and lands here again.
  if (options.fault_injector != nullptr) {
    options.fault_injector->check_crash(kCrashFinish);
  }

  std::string rebuilt_tag = base_tag_of(extended_tag) + std::string(kRebuiltSuffix);
  COMT_TRY(report.image,
           layout.append_layer(extended, rebuild_layer, "coMtainer-rebuild", rebuilt_tag));
  commit_span.end();
  root_span.end();
  if (options.tracer != nullptr) {
    report.profile = obs::profile_phases(*options.tracer, report.root_span);
  }
  return report;
}

Result<RedirectReport> comtainer_redirect(oci::Layout& layout, std::string_view source_tag,
                                          const RedirectOptions& options) {
  if (options.system_repo == nullptr) {
    return make_error(Errc::invalid_argument, "redirect: missing system repository");
  }
  obs::Span redirect_span =
      obs::maybe_span(options.tracer, "redirect", options.parent_span, "redirect");
  redirect_span.annotate("image", source_tag);
  COMT_TRY(oci::Image source, layout.find_image(source_tag));
  COMT_TRY(vfs::Filesystem source_rootfs, layout.flatten(source));
  COMT_TRY(CacheBundle bundle, load_cache(source_rootfs));
  const ImageModel& model = bundle.models.image;

  // Package replacements: from the rebuild layer when present, plus any the
  // caller supplies (redirect-only flows).
  std::map<std::string, std::string> replacements = options.package_replacements;
  if (source_rootfs.is_regular(kRebuildMetaPath)) {
    COMT_TRY(std::string meta_text, source_rootfs.read_file(kRebuildMetaPath));
    COMT_TRY(json::Value meta, json::parse(meta_text));
    for (const auto& [from, to] : replacements_from_json(meta)) {
      replacements.emplace(from, to);
    }
  }

  COMT_TRY(oci::Image rebase, layout.find_image(options.rebase_tag));
  COMT_TRY(vfs::Filesystem rebase_rootfs, layout.flatten(rebase));
  buildexec::Container container(std::move(rebase_rootfs), rebase.config,
                                 options.system_repo);

  RedirectReport report;

  // Install the application's runtime dependencies. A package is taken from
  // the system repository only when an adapter proposed the substitution
  // (the libo decision); otherwise — and when the system repo lacks it —
  // the original image's files are carried over unchanged, so un-adapted
  // redirects preserve the generic stack exactly.
  for (const RuntimePackage& package : model.runtime_packages) {
    auto replacement = replacements.find(package.name);
    if (replacement != replacements.end() &&
        options.system_repo->find(replacement->second) != nullptr) {
      COMT_TRY_STATUS(
          container.run_argv({"apt-get", "install", "-y", replacement->second}));
      ++report.packages_installed;
    } else {
      for (const ImageFileEntry& entry : model.files) {
        if (entry.origin == FileOrigin::package_manager &&
            entry.owner_package == package.name &&
            !container.rootfs().exists(entry.path)) {
          COMT_TRY_STATUS(
              container.rootfs().copy_from(source_rootfs, entry.path, entry.path));
        }
      }
    }
  }

  // Stage rebuilt content out of the source image through the scheduler:
  // each build-produced entry reads its rebuild-layer blob into a private
  // slot (reads of the immutable source rootfs are safe concurrently).
  // Writes into the optimized image happen afterwards, sequentially in
  // model order, so the result is identical at any thread count.
  std::vector<std::optional<std::string>> staged(model.files.size());
  {
    sched::DagScheduler scheduler;
    for (std::size_t i = 0; i < model.files.size(); ++i) {
      const ImageFileEntry& entry = model.files[i];
      if (entry.origin != FileOrigin::build_process) continue;
      std::string rebuilt_path = std::string(kRebuildDir) + entry.path;
      COMT_TRY_STATUS(scheduler.add_job(
          std::to_string(i), {},
          [&source_rootfs, &staged, i, rebuilt_path = std::move(rebuilt_path)]() -> Status {
            auto content = source_rootfs.read_file(rebuilt_path);
            if (content.ok()) staged[i] = std::move(content).value();
            return Status::success();
          }));
    }
    std::unique_ptr<sched::ThreadPool> pool;
    if (options.threads > 1) pool = std::make_unique<sched::ThreadPool>(options.threads);
    COMT_TRY(sched::ScheduleReport schedule, scheduler.run(pool.get()));
    COMT_TRY_STATUS(schedule.first_error());
    report.wall_ms += schedule.wall_ms;
  }

  // Place application files at their original paths: rebuilt content where a
  // rebuild layer provides it, otherwise the original image's bytes.
  for (std::size_t i = 0; i < model.files.size(); ++i) {
    const ImageFileEntry& entry = model.files[i];
    switch (entry.origin) {
      case FileOrigin::base_image:
      case FileOrigin::package_manager:
        break;  // supplied by the Rebase image / installed packages
      case FileOrigin::build_process: {
        if (staged[i].has_value()) {
          COMT_TRY_STATUS(
              container.rootfs().write_file(entry.path, std::move(*staged[i]), 0755));
          ++report.files_from_rebuild;
        } else {
          COMT_TRY_STATUS(
              container.rootfs().copy_from(source_rootfs, entry.path, entry.path));
          ++report.files_from_original;
        }
        break;
      }
      case FileOrigin::data:
      case FileOrigin::unknown:
        COMT_TRY_STATUS(
            container.rootfs().copy_from(source_rootfs, entry.path, entry.path));
        ++report.files_from_original;
        break;
    }
  }

  // The optimized image keeps the application's runtime configuration.
  container.config().config = source.config.config;

  buildexec::ImageBuilder builder(layout);
  std::string optimized_tag = base_tag_of(source_tag) + std::string(kRedirectedSuffix);
  COMT_TRY(report.image,
           builder.commit(container, rebase, "coMtainer-redirect", optimized_tag));
  return report;
}

}  // namespace comt::core
