#include "fleet/fleet.hpp"

#include <utility>

namespace comt::fleet {

Fleet::Fleet(registry::Registry& hub, FleetOptions options)
    : hub_(hub), options_(std::move(options)) {
  if (options_.replicas == 0) options_.replicas = 1;
  metrics_ = options_.metrics != nullptr ? options_.metrics : &own_metrics_;
  store_ = options_.store != nullptr ? options_.store
                                     : std::make_shared<store::MemStore>();
  journals_ = std::make_unique<durable::JournalStore>(store_);
  if (options_.faults != nullptr) journals_->set_fault_injector(options_.faults);
  if (options_.chunked_artifacts) {
    transfer::ChunkStore::Options chunk_options;
    chunk_options.params = options_.chunk_params;
    chunks_ = std::make_shared<transfer::ChunkStore>(store_, std::move(chunk_options));
    chunks_->set_observer(options_.tracer, metrics_);
    // From here on every hub push (each replica publishes its rebuilt images
    // through hub_) dedups at chunk granularity against the shared substrate.
    hub_.enable_chunk_dedup(chunks_);
  }

  for (std::size_t i = 0; i < options_.replicas; ++i) {
    const std::string replica_id = "replica" + std::to_string(i);
    LeaseCoordinator::Options lease;
    lease.replica_id = replica_id;
    lease.ttl = options_.lease_ttl;
    lease.poll = options_.lease_poll;
    lease.max_wait = options_.lease_max_wait;
    auto coordinator = std::make_unique<LeaseCoordinator>(store_, &hub_, lease);
    coordinator->set_metrics(metrics_);

    service::ServiceOptions service;
    service.queue_capacity = options_.queue_capacity;
    service.workers_per_system = options_.workers_per_system;
    service.rebuild_threads = options_.rebuild_threads;
    service.max_attempts = options_.max_attempts;
    service.sleep_on_backoff = options_.sleep_on_backoff;
    service.default_tenant = options_.default_tenant;
    service.tenants = options_.tenants;
    service.autoscale = options_.autoscale;
    service.faults = options_.faults;
    service.journals = journals_.get();
    service.store = store_;
    service.coordinator = coordinator.get();
    service.replica_id = replica_id;
    service.tracer = options_.tracer;
    service.metrics = metrics_;
    replicas_.push_back(std::make_unique<service::RebuildService>(hub_, std::move(service)));
    coordinators_.push_back(std::move(coordinator));
  }
}

Fleet::~Fleet() { drain(); }

Status Fleet::add_system(const std::string& fingerprint,
                         const service::TargetSystem& target) {
  for (auto& replica : replicas_) {
    COMT_TRY_STATUS(replica->add_system(fingerprint, target));
  }
  return Status::success();
}

Result<FleetTicket> Fleet::submit(const service::SubmitRequest& request) {
  const std::size_t replica =
      next_replica_.fetch_add(1, std::memory_order_relaxed) % replicas_.size();
  return submit_to(replica, request);
}

Result<FleetTicket> Fleet::submit_to(std::size_t replica,
                                     const service::SubmitRequest& request) {
  if (replica >= replicas_.size()) {
    return make_error(Errc::invalid_argument,
                      "fleet: no such replica " + std::to_string(replica));
  }
  COMT_TRY(service::Ticket ticket, replicas_[replica]->submit(request));
  return FleetTicket{replica, ticket};
}

Result<service::TicketStatus> Fleet::status(const FleetTicket& ticket) const {
  if (ticket.replica >= replicas_.size()) {
    return make_error(Errc::invalid_argument,
                      "fleet: no such replica " + std::to_string(ticket.replica));
  }
  return replicas_[ticket.replica]->status(ticket.ticket);
}

Result<service::TicketStatus> Fleet::wait(const FleetTicket& ticket) const {
  if (ticket.replica >= replicas_.size()) {
    return make_error(Errc::invalid_argument,
                      "fleet: no such replica " + std::to_string(ticket.replica));
  }
  return replicas_[ticket.replica]->wait(ticket.ticket);
}

void Fleet::pause() {
  for (auto& replica : replicas_) replica->pause();
}

void Fleet::resume() {
  for (auto& replica : replicas_) replica->resume();
}

void Fleet::drain() {
  for (auto& replica : replicas_) replica->drain();
}

Result<service::RecoveryReport> Fleet::recover(std::size_t replica) {
  if (replica >= replicas_.size()) {
    return make_error(Errc::invalid_argument,
                      "fleet: no such replica " + std::to_string(replica));
  }
  return replicas_[replica]->recover();
}

FleetStats Fleet::stats() const {
  FleetStats out;
  out.submitted = metrics_->counter_value("service.submitted");
  out.coalesced = metrics_->counter_value("service.coalesced");
  out.succeeded = metrics_->counter_value("service.succeeded");
  out.failed = metrics_->counter_value("service.failed");
  out.throttled = metrics_->counter_value("service.throttled");
  out.scale_ups = metrics_->counter_value("service.autoscale.scale_up");
  out.scale_downs = metrics_->counter_value("service.autoscale.scale_down");
  out.crashed = metrics_->counter_value("service.crashed");
  out.fleet_reused = metrics_->counter_value("service.fleet_reused");
  out.coordinator_errors = metrics_->counter_value("service.coordinator_errors");
  out.leases_acquired = metrics_->counter_value("fleet.lease.acquired");
  out.lease_steals = metrics_->counter_value("fleet.lease.steals");
  out.lease_waits = metrics_->counter_value("fleet.lease.waits");
  out.lease_wait_ms = metrics_->gauge_value("fleet.lease.wait_ms");
  out.cache_remote_hits = metrics_->counter_value("compile_cache.remote_hits");
  out.transfer_chunks_hit = metrics_->counter_value("transfer.chunks_hit");
  out.transfer_chunks_miss = metrics_->counter_value("transfer.chunks_miss");
  out.transfer_bytes_moved = metrics_->counter_value("transfer.bytes_moved");
  out.transfer_bytes_deduped = metrics_->counter_value("transfer.bytes_deduped");
  return out;
}

}  // namespace comt::fleet
