#include "core/cache.hpp"

#include "pkg/pkg.hpp"
#include "toolchain/source.hpp"
#include "support/sha256.hpp"
#include "support/strings.hpp"

namespace comt::core {

Result<vfs::Filesystem> make_cache_layer(const ProcessModels& models,
                                         const buildexec::BuildRecord& record,
                                         const vfs::Filesystem& build_rootfs,
                                         const CacheOptions& options) {
  (void)record;  // fully encoded in the models; not duplicated into the layer
  vfs::Filesystem layer;
  std::string dir(kCacheDir);
  COMT_TRY_STATUS(layer.make_directories(dir));
  // Obfuscation changes source bytes, so the graph's leaf digests must be
  // re-keyed; work on a copy so the caller's models stay pristine.
  BuildGraph graph = models.graph;

  // Every leaf node's content, keyed by digest. These are the high-level
  // build inputs (source code, headers, data) that enable system-side
  // recompilation — the bulk of Table 3's cache sizes. Inputs owned by
  // packages (system libraries read at link time) are deliberately NOT
  // cached: the target system supplies its own builds of those — that
  // substitution is the whole point of the rebuild.
  COMT_TRY(pkg::Database database, pkg::Database::load(build_rootfs));
  for (GraphNode& node : graph.nodes()) {
    if (!node.is_leaf() || node.content_digest.empty()) continue;
    if (!database.owner_of(node.path).empty()) continue;
    auto content = build_rootfs.read_file(node.path);
    if (!content.ok()) {
      return make_error(Errc::not_found,
                        "cache: build input vanished from build container: " + node.path);
    }
    if (Sha256::hex_digest(content.value()) != node.content_digest) {
      return make_error(Errc::corrupt,
                        "cache: build input changed since it was recorded: " + node.path);
    }
    std::string payload = std::move(content).value();
    if (options.obfuscate_sources) {
      payload = toolchain::obfuscate_source(payload);
      node.content_digest = Sha256::hex_digest(payload);
    }
    COMT_TRY_STATUS(layer.write_file(dir + "/sources/" + node.content_digest,
                                     std::move(payload)));
  }
  COMT_TRY_STATUS(
      layer.write_file(dir + "/build_graph.json", json::serialize(graph.to_json())));
  COMT_TRY_STATUS(
      layer.write_file(dir + "/image_model.json", json::serialize(models.image.to_json())));
  return layer;
}

Result<CacheBundle> load_cache(const vfs::Filesystem& extended_rootfs) {
  std::string dir(kCacheDir);
  if (!extended_rootfs.is_directory(dir)) {
    return make_error(Errc::not_found,
                      "not a coMtainer extended image (no " + dir + " layer)");
  }
  CacheBundle bundle;
  COMT_TRY(std::string graph_text, extended_rootfs.read_file(dir + "/build_graph.json"));
  COMT_TRY(json::Value graph_json, json::parse(graph_text));
  COMT_TRY(bundle.models.graph, BuildGraph::from_json(graph_json));

  COMT_TRY(std::string image_text, extended_rootfs.read_file(dir + "/image_model.json"));
  COMT_TRY(json::Value image_json, json::parse(image_text));
  COMT_TRY(bundle.models.image, ImageModel::from_json(image_json));

  // Older cache layers carried the raw build record too; tolerate both.
  if (extended_rootfs.is_regular(dir + "/build_record.json")) {
    COMT_TRY(std::string record_text,
             extended_rootfs.read_file(dir + "/build_record.json"));
    COMT_TRY(bundle.record, buildexec::BuildRecord::parse(record_text));
  }

  std::string sources_dir = dir + "/sources";
  if (extended_rootfs.is_directory(sources_dir)) {
    COMT_TRY(std::vector<std::string> names, extended_rootfs.list_directory(sources_dir));
    for (const std::string& digest : names) {
      COMT_TRY(std::string content, extended_rootfs.read_file(sources_dir + "/" + digest));
      if (Sha256::hex_digest(content) != digest) {
        return make_error(Errc::corrupt, "cache: source blob corrupt: " + digest);
      }
      bundle.sources.emplace(digest, std::move(content));
    }
  }
  return bundle;
}

std::uint64_t cache_layer_bytes(const vfs::Filesystem& cache_layer) {
  return cache_layer.total_file_bytes();
}

}  // namespace comt::core
