// Export pipeline artifacts to real on-disk formats: writes the extended
// image as an OCI layout directory (the `./xxx.dist.oci` the paper's buildah
// commands produce), loads it back from disk to prove interop, and also
// emits a SIF-style single-file image for Singularity-like engines.
//
// Usage: export_oci [output-directory]   (default: ./lulesh.dist.oci)
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "oci/convert.hpp"
#include "oci/disk.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : "./lulesh.dist.oci";

  const workloads::AppSpec* app = workloads::find_app("lulesh");
  workloads::Evaluation world(sysmodel::SystemProfile::x86_cluster());
  auto prepared = world.prepare(*app);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", prepared.error().to_string().c_str());
    return 1;
  }

  // The paper's `buildah push lulesh.dist oci:./lulesh.dist.oci`.
  auto saved = oci::save_layout(world.layout(), out_dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.error().to_string().c_str());
    return 1;
  }
  std::size_t blobs = 0;
  std::uintmax_t bytes = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(out_dir + "/blobs/sha256")) {
    ++blobs;
    bytes += entry.file_size();
  }
  std::printf("wrote %s: %zu blobs, %.1f MiB (sim)\n", out_dir.c_str(), blobs,
              workloads::to_sim_mib(bytes));

  // Round-trip: load the directory back and flatten the extended image.
  auto loaded = oci::load_layout(out_dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.error().to_string().c_str());
    return 1;
  }
  auto extended = loaded.value().find_image(prepared.value().extended_tag);
  if (!extended.ok()) {
    std::fprintf(stderr, "extended image missing after reload\n");
    return 1;
  }
  std::printf("reloaded %s from disk (manifest %s)\n",
              prepared.value().extended_tag.c_str(),
              extended.value().manifest_digest.value.substr(0, 19).c_str());

  // And a SIF-style single file for Singularity/Apptainer-like engines.
  auto sif = oci::to_sif(loaded.value(), extended.value());
  if (!sif.ok()) return 1;
  std::string sif_path = out_dir + ".sif";
  std::ofstream(sif_path, std::ios::binary) << sif.value();
  std::printf("wrote %s (%.1f MiB sim)\n", sif_path.c_str(),
              workloads::to_sim_mib(sif.value().size()));

  // Prove the SIF is runnable.
  auto flat = oci::from_sif(sif.value());
  if (!flat.ok()) return 1;
  sysmodel::ExecutionEngine engine(sysmodel::SystemProfile::x86_cluster());
  auto report = engine.run(flat.value().rootfs, flat.value().entrypoint[0],
                           app->inputs.front().run_request(16));
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n", report.error().to_string().c_str());
    return 1;
  }
  std::printf("ran entrypoint from the SIF: %.2f s on 16 nodes\n",
              report.value().seconds);
  return 0;
}
