// End-to-end integration: the complete coMtainer story per application —
// user-side build + extension, registry distribution, system-side rebuild and
// redirect on both clusters, execution under all four schemes, and the
// performance invariants the paper's evaluation rests on.
#include <gtest/gtest.h>

#include "core/backend.hpp"
#include "registry/registry.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

namespace comt {
namespace {

using workloads::AppSpec;
using workloads::Evaluation;
using workloads::PreparedApp;

// Scheme invariants for a sweep of apps on the x86 cluster.
class SchemeInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(SchemeInvariants, AdaptationRecoversPerformance) {
  const AppSpec* app = workloads::find_app(GetParam());
  ASSERT_NE(app, nullptr);
  Evaluation world(sysmodel::SystemProfile::x86_cluster());
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok()) << prepared.error().to_string();
  auto times = world.run_schemes(*app, prepared.value(), app->inputs.front(), 16);
  ASSERT_TRUE(times.ok()) << times.error().to_string();

  EXPECT_GT(times.value().original, 0);
  // coMtainer's core claim: the adapted image matches the native build.
  EXPECT_NEAR(times.value().adapted, times.value().native,
              times.value().native * 0.02);
  if (std::string(GetParam()) != "hpccg") {
    // Everywhere except the known outlier, adaptation beats the generic image.
    EXPECT_LT(times.value().adapted, times.value().original);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, SchemeInvariants,
                         ::testing::Values("lulesh", "hpl", "comd", "hpccg",
                                           "minife", "miniamr"));

TEST(IntegrationTest, HpccgRegressesUnderAggressiveNativeToolchain) {
  const AppSpec* app = workloads::find_app("hpccg");
  Evaluation world(sysmodel::SystemProfile::x86_cluster());
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok());
  auto times = world.run_schemes(*app, prepared.value(), app->inputs.front(), 16);
  ASSERT_TRUE(times.ok());
  // The paper's hpccg finding: native/adapted slightly SLOWER than original.
  EXPECT_GT(times.value().native, times.value().original);
}

TEST(IntegrationTest, LuleshCommunicationCollapsesOnAarch64) {
  const AppSpec* app = workloads::find_app("lulesh");
  Evaluation world(sysmodel::SystemProfile::aarch64_cluster());
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok());
  auto times = world.run_schemes(*app, prepared.value(), app->inputs.front(), 16);
  ASSERT_TRUE(times.ok());
  // Fig. 9b: generic MPI without the fabric plugin is catastrophically slow
  // at 16 nodes — well over 2x, the paper reports +231%.
  EXPECT_GT(times.value().original / times.value().adapted, 2.5);
}

TEST(IntegrationTest, PgoIsInputSpecific) {
  // lammps.lj profits from PGO; lammps.chain regresses (Fig. 10).
  const AppSpec* app = workloads::find_app("lammps");
  Evaluation world(sysmodel::SystemProfile::x86_cluster());
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok());
  const workloads::WorkloadInput* lj = nullptr;
  const workloads::WorkloadInput* chain = nullptr;
  for (const workloads::WorkloadInput& input : app->inputs) {
    if (input.name == "lj") lj = &input;
    if (input.name == "chain") chain = &input;
  }
  ASSERT_NE(lj, nullptr);
  ASSERT_NE(chain, nullptr);

  auto lj_times = world.run_schemes(*app, prepared.value(), *lj, 16);
  ASSERT_TRUE(lj_times.ok());
  EXPECT_LT(lj_times.value().optimized, lj_times.value().adapted);

  auto chain_times = world.run_schemes(*app, prepared.value(), *chain, 16);
  ASSERT_TRUE(chain_times.ok());
  EXPECT_GT(chain_times.value().optimized, chain_times.value().adapted);
}

TEST(IntegrationTest, ExtendedImageSurvivesRegistryRoundTrip) {
  const AppSpec* app = workloads::find_app("comd");
  Evaluation user_world(sysmodel::SystemProfile::x86_cluster());
  auto prepared = user_world.prepare(*app);
  ASSERT_TRUE(prepared.ok());

  // Push from the "user machine", pull on the "HPC system".
  registry::Registry hub;
  ASSERT_TRUE(hub.push(user_world.layout(), prepared.value().extended_tag,
                       "hub/comd", "latest").ok());

  Evaluation system_world(sysmodel::SystemProfile::x86_cluster());
  ASSERT_TRUE(hub.pull("hub/comd", "latest", system_world.layout(),
                       prepared.value().extended_tag).ok());
  // Note: dist tag isn't pulled; redirect works straight off the extended
  // image pulled from the registry.
  auto adapted_tag = system_world.adapt(*app, prepared.value());
  ASSERT_TRUE(adapted_tag.ok()) << adapted_tag.error().to_string();
  auto seconds = system_world.run_image(adapted_tag.value(), app->inputs.front(), 16);
  ASSERT_TRUE(seconds.ok()) << seconds.error().to_string();
  EXPECT_GT(seconds.value(), 0);
}

TEST(IntegrationTest, GenericImageRunsUnchangedOnBothSystems) {
  // Image neutrality: the SAME generic image (per arch) executes on any
  // system of that arch; adaptation is optional, not required.
  for (const sysmodel::SystemProfile* system :
       {&sysmodel::SystemProfile::x86_cluster(),
        &sysmodel::SystemProfile::aarch64_cluster()}) {
    const AppSpec* app = workloads::find_app("minimd");
    Evaluation world(*system);
    auto prepared = world.prepare(*app);
    ASSERT_TRUE(prepared.ok());
    auto seconds = world.run_image(prepared.value().dist_tag, app->inputs.front(), 16);
    ASSERT_TRUE(seconds.ok()) << system->name;
    EXPECT_GT(seconds.value(), 0);
  }
}

TEST(IntegrationTest, RebuildIsRepeatable) {
  // "Rebuilding and redirecting can be performed many times during the
  // image's lifetime" (§4.1) — e.g. re-running PGO as inputs drift.
  const AppSpec* app = workloads::find_app("miniaero");
  Evaluation world(sysmodel::SystemProfile::x86_cluster());
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok());
  auto first = world.adapt(*app, prepared.value());
  ASSERT_TRUE(first.ok());
  auto again =
      world.optimize(*app, prepared.value(), app->inputs.front(), 16);
  ASSERT_TRUE(again.ok()) << again.error().to_string();
  auto seconds = world.run_image(again.value(), app->inputs.front(), 16);
  ASSERT_TRUE(seconds.ok());
}

TEST(IntegrationTest, CrossIsaRebuildRunsOnTheOtherArch) {
  const AppSpec* app = workloads::find_app("minimd");
  const sysmodel::SystemProfile& target = sysmodel::SystemProfile::aarch64_cluster();
  oci::Layout layout;
  ASSERT_TRUE(workloads::install_user_images(layout, "amd64").ok());
  ASSERT_TRUE(workloads::install_system_images(layout, target).ok());

  auto file = dockerfile::parse(workloads::dockerfile_cross_comt(*app, "amd64"));
  ASSERT_TRUE(file.ok());
  buildexec::ImageBuilder builder(layout);
  builder.set_apt_source(&workloads::ubuntu_repo("amd64"));
  buildexec::BuildRecord record;
  ASSERT_TRUE(builder.build(file.value(), workloads::build_context(*app),
                            "minimd.dist", "", &record).ok());
  auto build_stage = layout.find_image("minimd.dist.stage0");
  ASSERT_TRUE(build_stage.ok());
  auto build_rootfs = layout.flatten(build_stage.value());
  ASSERT_TRUE(build_rootfs.ok());
  ASSERT_TRUE(core::comtainer_build(layout, "minimd.dist",
                                    workloads::base_tag("amd64"), record,
                                    build_rootfs.value()).ok());

  core::CrossIsaAdapter cross;
  core::LibraryAdapter libo;
  core::ToolchainAdapter cxxo;
  core::RebuildOptions rebuild;
  rebuild.system = &target;
  rebuild.system_repo = &workloads::system_repo(target);
  rebuild.sysenv_tag = workloads::sysenv_tag(target);
  rebuild.adapters = {&cross, &libo, &cxxo};
  auto rebuilt = core::comtainer_rebuild(layout, "minimd.dist+coM", rebuild);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error().to_string();

  core::RedirectOptions redirect;
  redirect.system = &target;
  redirect.system_repo = &workloads::system_repo(target);
  redirect.rebase_tag = workloads::rebase_tag(target);
  auto redirected = core::comtainer_redirect(layout, "minimd.dist+coMre", redirect);
  ASSERT_TRUE(redirected.ok()) << redirected.error().to_string();

  auto rootfs = layout.flatten(redirected.value().image);
  ASSERT_TRUE(rootfs.ok());
  sysmodel::ExecutionEngine engine(target);
  auto report = engine.run(rootfs.value(), app->binary_path(),
                           app->inputs.front().run_request(16));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_GT(report.value().seconds, 0);
}

TEST(IntegrationTest, IsaLockedAppCannotCross) {
  const AppSpec* app = workloads::find_app("hpl");
  const sysmodel::SystemProfile& target = sysmodel::SystemProfile::aarch64_cluster();
  oci::Layout layout;
  ASSERT_TRUE(workloads::install_user_images(layout, "amd64").ok());
  ASSERT_TRUE(workloads::install_system_images(layout, target).ok());

  auto file = dockerfile::parse(workloads::dockerfile_text(*app, "amd64", true));
  ASSERT_TRUE(file.ok());
  buildexec::ImageBuilder builder(layout);
  builder.set_apt_source(&workloads::ubuntu_repo("amd64"));
  buildexec::BuildRecord record;
  ASSERT_TRUE(builder.build(file.value(), workloads::build_context(*app), "hpl.dist",
                            "", &record).ok());
  auto build_stage = layout.find_image("hpl.dist.stage0");
  auto build_rootfs = layout.flatten(build_stage.value());
  ASSERT_TRUE(core::comtainer_build(layout, "hpl.dist", workloads::base_tag("amd64"),
                                    record, build_rootfs.value()).ok());

  core::CrossIsaAdapter cross;
  core::ToolchainAdapter cxxo;
  core::RebuildOptions rebuild;
  rebuild.system = &target;
  rebuild.system_repo = &workloads::system_repo(target);
  rebuild.sysenv_tag = workloads::sysenv_tag(target);
  rebuild.adapters = {&cross, &cxxo};
  auto rebuilt = core::comtainer_rebuild(layout, "hpl.dist+coM", rebuild);
  ASSERT_FALSE(rebuilt.ok());
  EXPECT_NE(rebuilt.error().message.find("ISA-specific"), std::string::npos);
}

TEST(IntegrationTest, WrongArchImageFailsToRunBeforeAdaptation) {
  // An amd64 image on the AArch64 system: exec format error — the class of
  // hard failure §1 attributes to the adaptability issue.
  const AppSpec* app = workloads::find_app("comd");
  const sysmodel::SystemProfile& target = sysmodel::SystemProfile::aarch64_cluster();
  oci::Layout layout;
  ASSERT_TRUE(workloads::install_user_images(layout, "amd64").ok());
  auto file = dockerfile::parse(workloads::dockerfile_text(*app, "amd64", true));
  buildexec::ImageBuilder builder(layout);
  builder.set_apt_source(&workloads::ubuntu_repo("amd64"));
  ASSERT_TRUE(
      builder.build(file.value(), workloads::build_context(*app), "comd.dist").ok());
  auto image = layout.find_image("comd.dist");
  auto rootfs = layout.flatten(image.value());
  sysmodel::ExecutionEngine engine(target);
  auto report = engine.run(rootfs.value(), app->binary_path());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("Exec format error"), std::string::npos);
}

TEST(IntegrationTest, CacheStaysSmallRelativeToImage) {
  // Table 3's headline: the cache layer is a small fraction of the image.
  for (const char* name : {"comd", "lammps", "openmx"}) {
    const AppSpec* app = workloads::find_app(name);
    Evaluation world(sysmodel::SystemProfile::x86_cluster());
    auto prepared = world.prepare(*app);
    ASSERT_TRUE(prepared.ok());
    double ratio = static_cast<double>(prepared.value().cache_layer_bytes) /
                   static_cast<double>(prepared.value().image_bytes);
    EXPECT_LT(ratio, 0.12) << name;
  }
}

}  // namespace
}  // namespace comt
