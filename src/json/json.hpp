// Minimal JSON document model, parser and serializer.
//
// Used for OCI manifests/configs and for serializing coMtainer's process
// models into the cache layer. Objects preserve insertion order so that
// serialization is deterministic and OCI blob digests are stable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace comt::json {

class Value;

using Array = std::vector<Value>;
/// Insertion-ordered key/value list. Lookup is linear; OCI documents are
/// small, and order stability matters more than asymptotics here.
using Object = std::vector<std::pair<std::string, Value>>;

enum class Type { null, boolean, number, string, array, object };

/// A JSON document node. Value semantics; deep copies.
class Value {
 public:
  Value() : type_(Type::null) {}
  Value(std::nullptr_t) : type_(Type::null) {}  // NOLINT
  Value(bool b) : type_(Type::boolean), bool_(b) {}  // NOLINT
  Value(double d) : type_(Type::number), number_(d) {}  // NOLINT
  Value(std::int64_t i) : type_(Type::number), number_(static_cast<double>(i)) {}  // NOLINT
  Value(int i) : type_(Type::number), number_(i) {}  // NOLINT
  Value(std::uint64_t u) : type_(Type::number), number_(static_cast<double>(u)) {}  // NOLINT
  Value(const char* s) : type_(Type::string), string_(s) {}  // NOLINT
  Value(std::string s) : type_(Type::string), string_(std::move(s)) {}  // NOLINT
  Value(std::string_view s) : type_(Type::string), string_(s) {}  // NOLINT
  Value(Array a) : type_(Type::array), array_(std::move(a)) {}  // NOLINT
  Value(Object o) : type_(Type::object), object_(std::move(o)) {}  // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::null; }
  bool is_bool() const { return type_ == Type::boolean; }
  bool is_number() const { return type_ == Type::number; }
  bool is_string() const { return type_ == Type::string; }
  bool is_array() const { return type_ == Type::array; }
  bool is_object() const { return type_ == Type::object; }

  // Typed accessors. Precondition: matching type (checked, aborts on misuse).
  bool as_bool() const {
    COMT_ASSERT(is_bool(), "json: not a bool");
    return bool_;
  }
  double as_number() const {
    COMT_ASSERT(is_number(), "json: not a number");
    return number_;
  }
  std::int64_t as_int() const { return static_cast<std::int64_t>(as_number()); }
  const std::string& as_string() const {
    COMT_ASSERT(is_string(), "json: not a string");
    return string_;
  }
  const Array& as_array() const {
    COMT_ASSERT(is_array(), "json: not an array");
    return array_;
  }
  Array& as_array() {
    COMT_ASSERT(is_array(), "json: not an array");
    return array_;
  }
  const Object& as_object() const {
    COMT_ASSERT(is_object(), "json: not an object");
    return object_;
  }
  Object& as_object() {
    COMT_ASSERT(is_object(), "json: not an object");
    return object_;
  }

  /// Object member lookup; returns nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// Object member lookup with defaults for optional fields.
  std::string get_string(std::string_view key, std::string fallback = "") const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback = 0) const;
  bool get_bool(std::string_view key, bool fallback = false) const;

  /// Sets (or replaces) an object member. Precondition: is_object().
  void set(std::string key, Value value);

  /// Appends to an array. Precondition: is_array().
  void push_back(Value value);

  bool operator==(const Value& other) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses a complete JSON document; trailing garbage is an error.
Result<Value> parse(std::string_view text);

/// Compact serialization (no whitespace). Deterministic given the document.
std::string serialize(const Value& value);

/// Pretty-printed serialization with 2-space indentation.
std::string serialize_pretty(const Value& value);

}  // namespace comt::json
