#include "transfer/chunkstore.hpp"

#include <utility>

#include "support/sha256.hpp"

namespace comt::transfer {
namespace {

constexpr std::string_view kAlgorithmPrefix = "sha256:";
constexpr std::string_view kCodecsKeySuffix = "codecs";

}  // namespace

ChunkStore::ChunkStore(std::shared_ptr<store::KvStore> backend)
    : ChunkStore(std::move(backend), Options{}) {}

ChunkStore::ChunkStore(std::shared_ptr<store::KvStore> backend, Options options)
    : backend_(std::move(backend)), options_(std::move(options)) {
  COMT_ASSERT(backend_ != nullptr, "chunk store: null backend");
  COMT_ASSERT(options_.params.validate().ok(), "chunk store: invalid chunker params");
  if (options_.codecs.empty()) options_.codecs = supported_codecs();
  // Hydrate the refcount index from manifests already in the backend — a
  // reopened DiskStore-backed chunk store must GC exactly like a fresh one.
  // Damaged manifests are skipped; their chunks stay unreferenced and a
  // re-push of the blob heals the manifest under the same key.
  const std::string manifest_prefix = options_.prefix + "manifest/";
  for (const store::KvEntry& entry : backend_->list(manifest_prefix)) {
    auto bytes = backend_->get(entry.key);
    if (!bytes.ok()) continue;
    auto parsed = ChunkManifest::parse(bytes.value());
    if (!parsed.ok()) continue;
    for (const ChunkRef& chunk : parsed.value().chunks) ++refcounts_[chunk.digest];
    manifests_.emplace(parsed.value().blob_digest, std::move(parsed.value()));
  }
  // Publish (or refresh) the codec advertisement peers negotiate against.
  (void)backend_->put(options_.prefix + std::string(kCodecsKeySuffix),
                      serialize_codec_list(options_.codecs));
}

Result<std::string> ChunkStore::digest_hex(std::string_view digest) {
  if (digest.size() <= kAlgorithmPrefix.size() ||
      digest.substr(0, kAlgorithmPrefix.size()) != kAlgorithmPrefix) {
    return make_error(Errc::invalid_argument,
                      "chunk store: malformed digest: " + std::string(digest));
  }
  return std::string(digest.substr(kAlgorithmPrefix.size()));
}

std::string ChunkStore::chunk_key(std::string_view chunk_digest) const {
  auto hex = digest_hex(chunk_digest);
  COMT_ASSERT(hex.ok(), "chunk store: malformed chunk digest");
  return options_.prefix + "chunk/sha256/" + hex.value();
}

std::string ChunkStore::manifest_key(std::string_view blob_digest) const {
  auto hex = digest_hex(blob_digest);
  COMT_ASSERT(hex.ok(), "chunk store: malformed blob digest");
  return options_.prefix + "manifest/sha256/" + hex.value();
}

void ChunkStore::note_hit(std::uint64_t raw_bytes) const {
  hits_.fetch_add(1, std::memory_order_relaxed);
  deduped_bytes_.fetch_add(raw_bytes, std::memory_order_relaxed);
  if (hit_counter_ != nullptr) {
    hit_counter_->add();
    deduped_counter_->add(raw_bytes);
  }
}

void ChunkStore::note_miss(std::uint64_t stored_bytes) const {
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (miss_counter_ != nullptr) {
    miss_counter_->add();
    stored_counter_->add(stored_bytes);
  }
}

Result<ChunkManifest> ChunkStore::put_blob(const std::string& bytes) {
  COMT_TRY(ChunkManifest built, build_manifest(bytes, options_.params));
  const CodecId codec = options_.codecs.front();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto existing = manifests_.find(built.blob_digest);
    if (existing != manifests_.end()) {
      // Blob-level idempotence: everything dedups, nothing re-references.
      for (const ChunkRef& chunk : built.chunks) note_hit(chunk.size);
      return existing->second;
    }
  }
  for (const ChunkRef& chunk : built.chunks) {
    COMT_TRY(std::uint64_t wrote,
             put_chunk(chunk.digest, std::string_view(bytes).substr(chunk.offset, chunk.size),
                       codec));
    (void)wrote;
  }
  COMT_TRY_STATUS(put_manifest(built));
  return built;
}

Result<std::uint64_t> ChunkStore::put_chunk(std::string_view chunk_digest,
                                            std::string_view raw, CodecId codec) {
  COMT_TRY(std::string hex, digest_hex(chunk_digest));
  (void)hex;
  const std::string key = chunk_key(chunk_digest);
  if (backend_->contains(key)) {
    note_hit(raw.size());
    return std::uint64_t{0};
  }
  std::string framed = frame_chunk(codec, raw);
  const std::uint64_t wire = framed.size();
  COMT_TRY_STATUS(backend_->put(key, std::move(framed)));
  note_miss(wire);
  return wire;
}

Result<std::uint64_t> ChunkStore::repair_chunk(std::string_view chunk_digest,
                                               std::string_view raw, CodecId codec) {
  COMT_TRY(std::string hex, digest_hex(chunk_digest));
  (void)hex;
  if (std::string(kAlgorithmPrefix) + Sha256::hex_digest(raw) != chunk_digest) {
    return make_error(Errc::invalid_argument,
                      "chunk repair: bytes do not hash to " + std::string(chunk_digest));
  }
  std::string framed = frame_chunk(codec, raw);
  const std::uint64_t wire = framed.size();
  COMT_TRY_STATUS(backend_->put(chunk_key(chunk_digest), std::move(framed)));
  return wire;
}

Result<std::string> ChunkStore::get_chunk(std::string_view chunk_digest,
                                          std::uint64_t* wire_bytes) const {
  COMT_TRY(std::string hex, digest_hex(chunk_digest));
  (void)hex;
  auto framed = backend_->get(chunk_key(chunk_digest));
  if (!framed.ok()) {
    if (framed.error().code == Errc::not_found) {
      return make_error(Errc::not_found, "no such chunk: " + std::string(chunk_digest));
    }
    return framed.error();
  }
  if (wire_bytes != nullptr) *wire_bytes = framed.value().size();
  COMT_TRY(std::string raw, unframe_chunk(chunk_digest, framed.value()));
  if (std::string(kAlgorithmPrefix) + Sha256::hex_digest(raw) != chunk_digest) {
    return make_error(Errc::corrupt,
                      "chunk does not match its digest: " + std::string(chunk_digest));
  }
  return raw;
}

Status ChunkStore::put_manifest(const ChunkManifest& manifest) {
  std::lock_guard<std::mutex> lock(mutex_);
  return put_manifest_locked(manifest);
}

Status ChunkStore::put_manifest_locked(const ChunkManifest& manifest) {
  if (manifests_.count(manifest.blob_digest) != 0) return Status::success();
  COMT_TRY_STATUS(backend_->put(manifest_key(manifest.blob_digest), manifest.serialize()));
  for (const ChunkRef& chunk : manifest.chunks) ++refcounts_[chunk.digest];
  manifests_.emplace(manifest.blob_digest, manifest);
  return Status::success();
}

bool ChunkStore::contains_blob(std::string_view blob_digest) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return manifests_.count(std::string(blob_digest)) != 0;
}

bool ChunkStore::contains_chunk(std::string_view chunk_digest) const {
  auto hex = digest_hex(chunk_digest);
  if (!hex.ok()) return false;
  return backend_->contains(chunk_key(chunk_digest));
}

Result<ChunkManifest> ChunkStore::manifest(std::string_view blob_digest) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = manifests_.find(std::string(blob_digest));
  if (it == manifests_.end()) {
    return make_error(Errc::not_found, "no manifest for blob: " + std::string(blob_digest));
  }
  return it->second;
}

Result<std::string> ChunkStore::get_blob(std::string_view blob_digest) const {
  COMT_TRY(ChunkManifest stored, manifest(blob_digest));
  std::string out;
  out.reserve(stored.total_size);
  for (const ChunkRef& chunk : stored.chunks) {
    if (chunk.offset != out.size()) {
      return make_error(Errc::corrupt,
                        "chunk manifest offsets inconsistent for " + std::string(blob_digest));
    }
    COMT_TRY(std::string raw, get_chunk(chunk.digest));
    out.append(raw);
  }
  if (std::string(kAlgorithmPrefix) + Sha256::hex_digest(out) != blob_digest ||
      out.size() != stored.total_size) {
    return make_error(Errc::corrupt,
                      "reassembled blob does not match its digest: " +
                          std::string(blob_digest));
  }
  return out;
}

Result<std::uint64_t> ChunkStore::erase_blob(std::string_view blob_digest) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key(blob_digest);
  auto it = manifests_.find(key);
  if (it == manifests_.end()) return std::uint64_t{0};
  if (pins_.count(key) != 0) return std::uint64_t{0};  // journaled rebuild still needs it
  std::uint64_t freed = 0;
  // Dedup within one manifest: a chunk listed twice holds one reference.
  std::set<std::string> distinct;
  for (const ChunkRef& chunk : it->second.chunks) distinct.insert(chunk.digest);
  for (const std::string& digest : distinct) {
    auto ref = refcounts_.find(digest);
    if (ref == refcounts_.end()) continue;
    if (--ref->second > 0) continue;
    refcounts_.erase(ref);
    const std::string ckey = chunk_key(digest);
    auto size = backend_->size(ckey);
    if (size.ok()) freed += size.value();
    COMT_TRY_STATUS(backend_->erase(ckey));
  }
  COMT_TRY_STATUS(backend_->erase(manifest_key(key)));
  manifests_.erase(it);
  return freed;
}

void ChunkStore::pin_blob(std::string_view blob_digest) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++pins_[std::string(blob_digest)];
}

void ChunkStore::unpin_blob(std::string_view blob_digest) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = pins_.find(std::string(blob_digest));
  if (it == pins_.end()) return;
  if (--it->second <= 0) pins_.erase(it);
}

bool ChunkStore::is_pinned(std::string_view blob_digest) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pins_.count(std::string(blob_digest)) != 0;
}

std::vector<CodecId> ChunkStore::advertised_codecs() const {
  auto bytes = backend_->get(options_.prefix + std::string(kCodecsKeySuffix));
  if (!bytes.ok()) return {};
  return parse_codec_list(bytes.value());
}

std::uint64_t ChunkStore::stored_chunk_bytes() const {
  std::uint64_t total = 0;
  for (const store::KvEntry& entry : backend_->list(options_.prefix + "chunk/")) {
    total += entry.size;
  }
  return total;
}

std::uint64_t ChunkStore::logical_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [digest, manifest] : manifests_) total += manifest.total_size;
  return total;
}

double ChunkStore::dedup_ratio() const {
  const std::uint64_t stored = stored_chunk_bytes();
  if (stored == 0) return 1.0;
  return static_cast<double>(logical_bytes()) / static_cast<double>(stored);
}

std::size_t ChunkStore::chunk_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return refcounts_.size();
}

std::size_t ChunkStore::blob_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return manifests_.size();
}

std::uint64_t ChunkStore::chunks_hit() const {
  return hits_.load(std::memory_order_relaxed);
}

std::uint64_t ChunkStore::chunks_miss() const {
  return misses_.load(std::memory_order_relaxed);
}

std::uint64_t ChunkStore::bytes_deduped() const {
  return deduped_bytes_.load(std::memory_order_relaxed);
}

std::uint64_t ChunkStore::bytes_moved() const {
  return moved_bytes_.load(std::memory_order_relaxed);
}

void ChunkStore::note_transfer_moved(std::uint64_t wire_bytes) const {
  moved_bytes_.fetch_add(wire_bytes, std::memory_order_relaxed);
  if (moved_counter_ != nullptr) moved_counter_->add(wire_bytes);
}

void ChunkStore::set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  if (metrics == nullptr) {
    hit_counter_ = miss_counter_ = deduped_counter_ = stored_counter_ = nullptr;
    moved_counter_ = nullptr;
    return;
  }
  hit_counter_ = &metrics->counter("transfer.chunks_hit");
  miss_counter_ = &metrics->counter("transfer.chunks_miss");
  deduped_counter_ = &metrics->counter("transfer.bytes_deduped");
  stored_counter_ = &metrics->counter("transfer.bytes_stored");
  moved_counter_ = &metrics->counter("transfer.bytes_moved");
}

}  // namespace comt::transfer
