#include "oci/disk.hpp"

#include <memory>

#include "store/cas.hpp"
#include "store/disk.hpp"

namespace comt::oci {
namespace {

/// An unframed DiskStore over an OCI layout directory: the store keys
/// ("oci-layout", "index.json", "blobs/sha256/<hex>") map 1:1 to the file
/// names the spec requires, and raw (unframed) values keep the files
/// byte-identical to what any other OCI tool writes. Integrity comes from
/// the content addresses, not a frame.
std::shared_ptr<store::DiskStore> layout_dir_store(const std::string& directory) {
  return std::make_shared<store::DiskStore>(directory,
                                            store::DiskStore::Options{/*framed=*/false});
}

}  // namespace

Status save_layout(const Layout& layout, const std::string& directory) {
  auto disk = layout_dir_store(directory);
  store::CasStore blobs(disk, std::string(kBlobKeyPrefix));

  COMT_TRY_STATUS(disk->put(kOciLayoutKey, std::string(kOciLayoutContent)));
  COMT_TRY_STATUS(disk->put(kIndexKey, json::serialize(layout.index_json())));

  // Only blobs reachable from the index travel — a one-shot export, unlike
  // attach(), which mirrors the whole store.
  auto save_blob = [&](const Digest& digest) -> Status {
    COMT_TRY(std::string content, layout.get_blob(digest));
    return blobs.put_at(digest.value, std::move(content));
  };
  for (const std::string& tag : layout.tags()) {
    COMT_TRY(Image image, layout.find_image(tag));
    COMT_TRY_STATUS(save_blob(image.manifest_digest));
    COMT_TRY_STATUS(save_blob(image.manifest.config.digest));
    for (const Descriptor& layer : image.manifest.layers) {
      COMT_TRY_STATUS(save_blob(layer.digest));
    }
  }
  return disk->sync();
}

Result<Layout> load_layout(const std::string& directory) {
  auto disk = layout_dir_store(directory);
  store::CasStore blobs(disk, std::string(kBlobKeyPrefix));

  COMT_TRY(std::string index_text, disk->get(kIndexKey));
  COMT_TRY(json::Value index, json::parse(index_text));
  const json::Value* manifests = index.find("manifests");
  if (manifests == nullptr || !manifests->is_array()) {
    return make_error(Errc::corrupt, directory + "/index.json: missing manifests");
  }

  Layout layout;
  for (const json::Value& entry : manifests->as_array()) {
    COMT_TRY(Descriptor descriptor, Descriptor::from_json(entry));
    // CasStore::get verifies content against address — a tampered or torn
    // blob file surfaces here as Errc::corrupt.
    COMT_TRY(std::string manifest_blob, blobs.get(descriptor.digest.value));
    COMT_TRY(json::Value manifest_doc, json::parse(manifest_blob));
    COMT_TRY(Manifest manifest, Manifest::from_json(manifest_doc));

    // Pull in the config and layer blobs first; add_manifest checks them.
    for (const Descriptor& blob :
         [&] {
           std::vector<Descriptor> all = manifest.layers;
           all.push_back(manifest.config);
           return all;
         }()) {
      if (layout.has_blob(blob.digest)) continue;
      COMT_TRY(std::string content, blobs.get(blob.digest.value));
      layout.put_blob(std::move(content), blob.media_type);
    }
    auto ref = descriptor.annotations.find(std::string(kRefNameAnnotation));
    std::string tag = ref == descriptor.annotations.end()
                          ? descriptor.digest.value
                          : ref->second;
    COMT_TRY(Digest digest, layout.add_manifest(manifest, tag));
    if (digest != descriptor.digest) {
      return make_error(Errc::corrupt,
                        "re-serialized manifest digest mismatch for tag " + tag);
    }
  }
  return layout;
}

}  // namespace comt::oci
