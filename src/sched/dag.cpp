#include "sched/dag.hpp"

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <queue>

#include "obs/stopwatch.hpp"

namespace comt::sched {

Status ScheduleReport::first_error() const {
  // Prefer a job's own failure over a "skipped because a dependency failed"
  // notice — the root cause is what callers should surface.
  for (const JobOutcome& job : jobs) {
    if (!job.status.ok() && !job.skipped) return job.status.error();
  }
  for (const JobOutcome& job : jobs) {
    if (!job.status.ok()) return job.status.error();
  }
  return Status::success();
}

Status DagScheduler::add_job(std::string id, std::vector<std::string> deps, JobFn fn,
                             std::string category) {
  for (const Job& job : jobs_) {
    if (job.id == id) {
      return make_error(Errc::already_exists, "sched: duplicate job '" + id + "'");
    }
  }
  jobs_.push_back(Job{std::move(id), std::move(deps), std::move(fn), std::move(category)});
  return Status::success();
}

Result<ScheduleReport> DagScheduler::run(ThreadPool* pool, const ObsOptions& opts,
                                         const EpochHooks* hooks) {
  const obs::Stopwatch schedule_clock;
  const std::size_t count = jobs_.size();

  obs::Histogram* ready_wait_ms = nullptr;
  obs::Counter* executed_count = nullptr;
  obs::Counter* failed_count = nullptr;
  obs::Counter* skipped_count = nullptr;
  obs::Counter* epoch_count = nullptr;
  obs::Histogram* epoch_jobs = nullptr;
  if (opts.metrics != nullptr) {
    ready_wait_ms = &opts.metrics->histogram(opts.metric_prefix + ".ready_wait_ms");
    executed_count = &opts.metrics->counter(opts.metric_prefix + ".jobs.executed");
    failed_count = &opts.metrics->counter(opts.metric_prefix + ".jobs.failed");
    skipped_count = &opts.metrics->counter(opts.metric_prefix + ".jobs.skipped");
    if (hooks != nullptr) {
      epoch_count = &opts.metrics->counter(opts.metric_prefix + ".epochs");
      epoch_jobs = &opts.metrics->histogram(opts.metric_prefix + ".epoch_jobs",
                                            obs::default_batch_size_buckets());
    }
  }

  // Resolve names to indices and validate edges.
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < count; ++i) index[jobs_[i].id] = i;
  std::vector<std::vector<std::size_t>> dependents(count);
  std::vector<std::size_t> indegree(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    for (const std::string& dep : jobs_[i].deps) {
      auto found = index.find(dep);
      if (found == index.end()) {
        return make_error(Errc::not_found, "sched: job '" + jobs_[i].id +
                                               "' depends on unknown job '" + dep + "'");
      }
      dependents[found->second].push_back(i);
      ++indegree[i];
    }
  }

  // Kahn's algorithm up front: a cycle must be an error, not a deadlock.
  // The same pass computes wave levels (1 + longest dependency chain) for
  // epoch mode — every job in a wave depends only on earlier waves, so one
  // immutable snapshot per wave is always consistent.
  std::vector<std::size_t> level(count, 0);
  {
    std::vector<std::size_t> degree = indegree;
    std::queue<std::size_t> ready;
    for (std::size_t i = 0; i < count; ++i) {
      if (degree[i] == 0) ready.push(i);
    }
    std::size_t visited = 0;
    while (!ready.empty()) {
      std::size_t job = ready.front();
      ready.pop();
      ++visited;
      for (std::size_t dependent : dependents[job]) {
        if (level[dependent] < level[job] + 1) level[dependent] = level[job] + 1;
        if (--degree[dependent] == 0) ready.push(dependent);
      }
    }
    if (visited != count) {
      std::string cyclic;
      for (std::size_t i = 0; i < count; ++i) {
        if (degree[i] != 0) {
          cyclic = jobs_[i].id;
          break;
        }
      }
      return make_error(Errc::invalid_argument,
                        "sched: dependency cycle involving job '" + cyclic + "'");
    }
  }

  ScheduleReport report;
  report.jobs.resize(count);
  for (std::size_t i = 0; i < count; ++i) report.jobs[i].id = jobs_[i].id;

  // Per-job dispatch latency: restarted when the job's last dependency
  // resolves (greedy) or when its wave is dispatched (epoch), observed when
  // its body starts.
  std::vector<obs::Stopwatch> ready_at(count);

  if (hooks != nullptr) {
    // ---- Epoch / wave mode -------------------------------------------------
    // Jobs grouped by level run as one batch between two barriers. No
    // per-job mutex: a body writes only its own report slot, the shared
    // counters are aggregated on the caller's thread at the barrier, and
    // poison marks are read/written only between waves.
    std::vector<std::vector<std::size_t>> waves;
    for (std::size_t i = 0; i < count; ++i) {
      if (level[i] >= waves.size()) waves.resize(level[i] + 1);
      waves[level[i]].push_back(i);  // ascending i: submission order per wave
    }

    std::vector<bool> poisoned(count, false);

    auto run_body = [&](std::size_t job_index) {
      if (ready_wait_ms != nullptr) {
        ready_wait_ms->observe(ready_at[job_index].elapsed_ms());
      }
      const Job& job = jobs_[job_index];
      obs::Span span = obs::maybe_span(opts.tracer, "job:" + job.id, opts.parent,
                                       job.category.empty() ? opts.category : job.category);
      const obs::Stopwatch job_clock;
      Status status = job.fn();
      JobOutcome& outcome = report.jobs[job_index];
      outcome.status = std::move(status);
      outcome.wall_ms = job_clock.elapsed_ms();
      span.end();
    };

    for (const std::vector<std::size_t>& wave : waves) {
      std::vector<std::size_t> runnable;
      runnable.reserve(wave.size());
      for (std::size_t job_index : wave) {
        if (poisoned[job_index]) {
          const Job& job = jobs_[job_index];
          obs::Span span =
              obs::maybe_span(opts.tracer, "job:" + job.id, opts.parent,
                              job.category.empty() ? opts.category : job.category);
          span.annotate("skipped", std::uint64_t{1});
          span.end();
          JobOutcome& outcome = report.jobs[job_index];
          outcome.skipped = true;
          outcome.status = make_error(Errc::failed, "sched: skipped '" + job.id +
                                                        "': a dependency failed");
          ++report.skipped;
          if (skipped_count != nullptr) skipped_count->add();
        } else {
          runnable.push_back(job_index);
        }
      }

      if (!runnable.empty()) {
        if (hooks->begin) hooks->begin(report.epochs, runnable);
        for (std::size_t job_index : runnable) ready_at[job_index].restart();

        if (pool == nullptr) {
          for (std::size_t job_index : runnable) run_body(job_index);
        } else {
          std::atomic<std::size_t> pending{runnable.size()};
          std::mutex wave_mutex;
          std::condition_variable wave_done;
          std::vector<std::function<void()>> tasks;
          tasks.reserve(runnable.size());
          for (std::size_t job_index : runnable) {
            tasks.push_back([&, job_index] {
              run_body(job_index);
              if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(wave_mutex);
                wave_done.notify_all();
              }
            });
          }
          pool->submit_batch(std::move(tasks));
          std::unique_lock<std::mutex> lock(wave_mutex);
          wave_done.wait(lock, [&] {
            return pending.load(std::memory_order_acquire) == 0;
          });
        }

        std::vector<std::size_t> succeeded;
        succeeded.reserve(runnable.size());
        for (std::size_t job_index : runnable) {
          if (report.jobs[job_index].status.ok()) succeeded.push_back(job_index);
        }
        if (hooks->commit) {
          Status committed = hooks->commit(report.epochs, succeeded);
          if (!committed.ok()) {
            // The wave's outputs never landed: every "succeeded" body is in
            // fact failed, and its dependents must not run.
            for (std::size_t job_index : succeeded) {
              report.jobs[job_index].status = committed;
            }
          }
        }
        for (std::size_t job_index : runnable) {
          ++report.executed;
          if (executed_count != nullptr) executed_count->add();
          if (!report.jobs[job_index].status.ok()) {
            ++report.failed;
            if (failed_count != nullptr) failed_count->add();
          }
        }
        ++report.epochs;
        if (epoch_count != nullptr) epoch_count->add();
        if (epoch_jobs != nullptr) epoch_jobs->observe(static_cast<double>(runnable.size()));
      }

      // Poison propagation happens between waves only — dependents are all
      // in later waves, so no body ever races these flags.
      for (std::size_t job_index : wave) {
        const JobOutcome& outcome = report.jobs[job_index];
        if (!outcome.status.ok()) {
          for (std::size_t dependent : dependents[job_index]) {
            poisoned[dependent] = true;
          }
        }
      }
    }

    report.wall_ms = schedule_clock.elapsed_ms();
    return report;
  }

  // ---- Greedy mode ---------------------------------------------------------
  // Shared execution state. `waiting` counts unresolved dependencies; a job
  // becomes ready at zero. `poisoned` marks jobs with a failed dependency.
  std::mutex mutex;
  std::condition_variable done_cv;
  std::vector<std::size_t> waiting = indegree;
  std::vector<bool> poisoned(count, false);
  std::size_t remaining = count;

  // Runs one ready job (or skips it), records its outcome, and returns the
  // dependents this freed. This is the single execution path shared by the
  // sequential and pooled modes, so both produce identical effects.
  auto execute_one = [&](std::size_t job_index) -> std::vector<std::size_t> {
    bool skip;
    {
      std::lock_guard<std::mutex> lock(mutex);
      skip = poisoned[job_index];
    }
    if (ready_wait_ms != nullptr) {
      ready_wait_ms->observe(ready_at[job_index].elapsed_ms());
    }
    const Job& job = jobs_[job_index];
    obs::Span span = obs::maybe_span(opts.tracer, "job:" + job.id, opts.parent,
                                     job.category.empty() ? opts.category : job.category);
    Status status = Status::success();
    double ms = 0;
    if (skip) {
      status = make_error(Errc::failed, "sched: skipped '" + job.id +
                                            "': a dependency failed");
      span.annotate("skipped", std::uint64_t{1});
    } else {
      const obs::Stopwatch job_clock;
      status = job.fn();
      ms = job_clock.elapsed_ms();
    }
    span.end();
    std::vector<std::size_t> freed;
    std::lock_guard<std::mutex> lock(mutex);
    JobOutcome& outcome = report.jobs[job_index];
    outcome.status = status;
    outcome.skipped = skip;
    outcome.wall_ms = ms;
    if (skip) {
      ++report.skipped;
      if (skipped_count != nullptr) skipped_count->add();
    } else {
      ++report.executed;
      if (executed_count != nullptr) executed_count->add();
      if (!status.ok()) {
        ++report.failed;
        if (failed_count != nullptr) failed_count->add();
      }
    }
    bool ok = status.ok() && !skip;
    for (std::size_t dependent : dependents[job_index]) {
      if (!ok) poisoned[dependent] = true;
      if (--waiting[dependent] == 0) {
        ready_at[dependent].restart();
        freed.push_back(dependent);
      }
    }
    if (--remaining == 0) done_cv.notify_all();
    return freed;
  };

  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < count; ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }

  if (pool == nullptr) {
    // Inline: an explicit worklist instead of recursion, FIFO order.
    std::deque<std::size_t> worklist(frontier.begin(), frontier.end());
    while (!worklist.empty()) {
      std::size_t job = worklist.front();
      worklist.pop_front();
      for (std::size_t next : execute_one(job)) worklist.push_back(next);
    }
  } else {
    // Pooled: completion dispatches the freed dependents back into the pool.
    std::function<void(std::size_t)> submit_job = [&](std::size_t job_index) {
      pool->submit([&submit_job, &execute_one, job_index] {
        for (std::size_t next : execute_one(job_index)) submit_job(next);
      });
    };
    for (std::size_t job : frontier) submit_job(job);
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }

  report.wall_ms = schedule_clock.elapsed_ms();
  return report;
}

}  // namespace comt::sched
