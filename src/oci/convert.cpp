#include "oci/convert.hpp"

#include "support/strings.hpp"
#include "tar/tar.hpp"

namespace comt::oci {
namespace {

json::Value metadata_json(const Image& image) {
  json::Object object;
  object.emplace_back("arch", json::Value(image.config.architecture));
  json::Array entrypoint;
  for (const std::string& part : image.config.config.entrypoint) {
    entrypoint.emplace_back(part);
  }
  object.emplace_back("entrypoint", json::Value(std::move(entrypoint)));
  json::Array cmd;
  for (const std::string& part : image.config.config.cmd) cmd.emplace_back(part);
  object.emplace_back("cmd", json::Value(std::move(cmd)));
  object.emplace_back("workdir", json::Value(image.config.config.working_dir));
  return json::Value(std::move(object));
}

}  // namespace

Result<FlatImage> to_flat_image(const Layout& layout, const Image& image) {
  FlatImage flat;
  COMT_TRY(flat.rootfs, layout.flatten(image));
  flat.entrypoint = image.config.config.entrypoint;
  flat.architecture = image.config.architecture;

  // /ch/environment: one KEY=value per line (Charliecloud convention).
  std::string environment;
  for (const std::string& entry : image.config.config.env) {
    environment += entry;
    environment += '\n';
  }
  COMT_TRY_STATUS(flat.rootfs.write_file("/ch/environment", std::move(environment)));
  COMT_TRY_STATUS(flat.rootfs.write_file("/ch/metadata.json",
                                         json::serialize(metadata_json(image))));
  return flat;
}

Result<std::string> to_sif(const Layout& layout, const Image& image) {
  COMT_TRY(FlatImage flat, to_flat_image(layout, image));
  // Header line, metadata line, then the squashed tree.
  std::string out(kSifMagic);
  out += '\n';
  out += json::serialize(metadata_json(image));
  out += '\n';
  out += tar::pack(flat.rootfs);
  return out;
}

Result<FlatImage> from_sif(std::string_view blob) {
  if (!starts_with(blob, kSifMagic)) {
    return make_error(Errc::corrupt, "not a SIF image (bad magic)");
  }
  std::size_t first = blob.find('\n');
  std::size_t second = blob.find('\n', first + 1);
  if (first == std::string_view::npos || second == std::string_view::npos) {
    return make_error(Errc::corrupt, "SIF image: truncated header");
  }
  COMT_TRY(json::Value metadata, json::parse(blob.substr(first + 1, second - first - 1)));

  FlatImage flat;
  COMT_TRY(flat.rootfs, tar::unpack(blob.substr(second + 1)));
  flat.architecture = metadata.get_string("arch");
  if (const json::Value* entrypoint = metadata.find("entrypoint");
      entrypoint != nullptr && entrypoint->is_array()) {
    for (const json::Value& part : entrypoint->as_array()) {
      flat.entrypoint.push_back(part.as_string());
    }
  }
  return flat;
}

}  // namespace comt::oci
