// Reproduces Table 2: the workloads used in the evaluation, with the paper's
// lines-of-code numbers next to this corpus's generated-source line counts
// (the corpus is deliberately smaller; its sizes are calibrated to Table 3's
// cache-layer sizes instead).
#include <cstdio>

#include "workloads/corpus.hpp"

using namespace comt;

int main() {
  std::printf("Table 2 — workloads used in the evaluation\n\n");
  std::printf("%-10s %-28s %12s %12s %6s\n", "app", "workloads", "paper LoC",
              "corpus LoC", "TUs");
  int total_workloads = 0;
  for (const workloads::AppSpec& app : workloads::corpus()) {
    std::string inputs;
    for (const workloads::WorkloadInput& input : app.inputs) {
      if (!inputs.empty()) inputs += ",";
      inputs += input.name.empty() ? app.name : input.name;
    }
    std::printf("%-10s %-28s %12d %12d %6zu\n", app.name.c_str(), inputs.c_str(),
                app.paper_loc, app.corpus_loc(), app.units.size());
    total_workloads += static_cast<int>(app.inputs.size());
  }
  std::printf("\n  %zu applications, %d workload rows (paper: 9 benchmarks + "
              "lammps x5 + openmx x4 = 18 rows)\n",
              workloads::corpus().size(), total_workloads);
  return 0;
}
