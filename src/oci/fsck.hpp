// OCI layout fsck: integrity scan, corruption classification, and repair.
//
// A blob store that survived a crash (or a torn write) can hold four classes
// of damage, mirrored from what the Sarus/Shifter image stores treat as
// operational incidents:
//
//   corrupt_blob      stored bytes do not hash to the digest they sit under
//   truncated_blob    like corrupt_blob, but the bytes are shorter than a
//                     referencing descriptor says — a partially flushed write
//   missing_blob      a manifest references a digest the store does not hold
//   dangling_manifest an index tag points at a manifest blob that is missing
//                     or unparseable
//
// fsck() re-hashes every blob and walks every index entry, returning all
// findings classified. fsck_repair() additionally heals what it can: damaged
// or missing blobs are re-fetched from an origin (a registry the content was
// pulled from) when the fetched bytes verify against the wanted digest;
// unrepairable damaged blobs are quarantined (dropped) unless pinned, and
// index tags whose manifests stay unrecoverable are cut. The report records
// the action taken per finding plus a rescan's remaining-problem count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "oci/oci.hpp"
#include "support/error.hpp"

namespace comt::oci {

/// Corruption classes fsck distinguishes.
enum class FsckIssue {
  corrupt_blob,
  truncated_blob,
  missing_blob,
  dangling_manifest,
};

const char* to_string(FsckIssue issue);

/// What repair did about a finding.
enum class FsckAction {
  none,       ///< scan-only, or nothing applicable (e.g. the blob is pinned)
  refetched,  ///< re-fetched from the origin and verified against the digest
  dropped,    ///< quarantined: blob removed / dangling tag cut from the index
};

struct FsckFinding {
  FsckIssue issue = FsckIssue::corrupt_blob;
  Digest digest;        ///< the damaged/missing blob (or the missing manifest)
  std::string context;  ///< where the reference came from ("tag 'x' layer 2", "orphan")
  FsckAction action = FsckAction::none;
  /// For dangling_manifest: the index tag repair would cut. Empty otherwise.
  std::string tag;
};

struct FsckReport {
  std::vector<FsckFinding> findings;  ///< in scan order
  std::size_t corrupt = 0;
  std::size_t truncated = 0;
  std::size_t missing = 0;
  std::size_t dangling = 0;
  std::size_t refetched = 0;  ///< findings healed from the origin
  std::size_t dropped = 0;    ///< findings quarantined
  /// Findings a post-repair rescan still sees (always == findings.size() for
  /// a scan-only fsck() when damage exists; 0 after a complete repair).
  std::size_t remaining = 0;

  bool clean() const { return findings.empty(); }
};

/// Supplies the true bytes for a digest during repair — typically a
/// registry::Registry the layout's content was pulled from. Fetched content
/// is verified against the requested digest before it is accepted.
using BlobFetcher = std::function<Result<std::string>(const Digest&)>;

/// Scan only: classify every problem, touch nothing.
FsckReport fsck(const Layout& layout);

/// Scan, then repair: refetch damaged/missing blobs from `origin` (when given
/// and the bytes verify), drop unrepairable unpinned blobs, cut index tags
/// whose manifests cannot be recovered. Pinned blobs are never dropped.
FsckReport fsck_repair(Layout& layout, const BlobFetcher& origin = {});

}  // namespace comt::oci
