#include <gtest/gtest.h>

#include "json/json.hpp"

namespace comt::json {
namespace {

Value must_parse(std::string_view text) {
  auto result = parse(text);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().to_string());
  return result.ok() ? result.value() : Value();
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(must_parse("null").is_null());
  EXPECT_EQ(must_parse("true").as_bool(), true);
  EXPECT_EQ(must_parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(must_parse("3.25").as_number(), 3.25);
  EXPECT_EQ(must_parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(must_parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(must_parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParseTest, Escapes) {
  EXPECT_EQ(must_parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(must_parse(R"("Aé")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(must_parse(R"("中")").as_string(), "\xe4\xb8\xad");
}

TEST(JsonParseTest, NestedStructures) {
  Value doc = must_parse(R"({"a": [1, 2, {"b": null}], "c": {"d": true}})");
  ASSERT_TRUE(doc.is_object());
  const Value* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_TRUE(a->as_array()[2].find("b")->is_null());
  EXPECT_TRUE(doc.find("c")->get_bool("d"));
}

TEST(JsonParseTest, EmptyContainers) {
  EXPECT_TRUE(must_parse("[]").as_array().empty());
  EXPECT_TRUE(must_parse("{}").as_object().empty());
  EXPECT_TRUE(must_parse(" [ ] ").as_array().empty());
}

TEST(JsonParseTest, WhitespaceTolerant) {
  Value doc = must_parse("  {  \"k\"  :  [ 1 ,\n 2 ]  }  ");
  EXPECT_EQ(doc.find("k")->as_array().size(), 2u);
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(parse("").ok());
  EXPECT_FALSE(parse("{").ok());
  EXPECT_FALSE(parse("[1,").ok());
  EXPECT_FALSE(parse("{\"a\"}").ok());
  EXPECT_FALSE(parse("\"unterminated").ok());
  EXPECT_FALSE(parse("truefalse").ok());
  EXPECT_FALSE(parse("1 2").ok());  // trailing garbage
  EXPECT_FALSE(parse("{\"a\":1,}").ok());
  EXPECT_FALSE(parse("nul").ok());
  EXPECT_FALSE(parse("\"bad \\q escape\"").ok());
}

TEST(JsonSerializeTest, Compact) {
  Object object;
  object.emplace_back("name", Value("x"));
  object.emplace_back("n", Value(3));
  object.emplace_back("list", Value(Array{Value(1), Value(true), Value(nullptr)}));
  EXPECT_EQ(serialize(Value(std::move(object))),
            R"({"name":"x","n":3,"list":[1,true,null]})");
}

TEST(JsonSerializeTest, IntegersHaveNoDecimalPoint) {
  EXPECT_EQ(serialize(Value(42)), "42");
  EXPECT_EQ(serialize(Value(-7)), "-7");
  EXPECT_EQ(serialize(Value(0)), "0");
  EXPECT_EQ(serialize(Value(2.5)), "2.5");
}

TEST(JsonSerializeTest, EscapesControlCharacters) {
  EXPECT_EQ(serialize(Value(std::string("a\nb\x01"))), "\"a\\nb\\u0001\"");
}

TEST(JsonSerializeTest, PrettyIsReparseable) {
  Value doc = must_parse(R"({"a":[1,{"b":[]}],"c":"text"})");
  Value again = must_parse(serialize_pretty(doc));
  EXPECT_EQ(doc, again);
}

TEST(JsonObjectTest, SetReplacesAndAppends) {
  Value object{Object{}};
  object.set("a", Value(1));
  object.set("b", Value(2));
  object.set("a", Value(3));
  EXPECT_EQ(object.as_object().size(), 2u);
  EXPECT_EQ(object.get_int("a"), 3);
  // Insertion order preserved.
  EXPECT_EQ(object.as_object()[0].first, "a");
}

TEST(JsonObjectTest, GettersWithDefaults) {
  Value doc = must_parse(R"({"s":"v","n":5,"b":true})");
  EXPECT_EQ(doc.get_string("s"), "v");
  EXPECT_EQ(doc.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(doc.get_int("n"), 5);
  EXPECT_EQ(doc.get_int("missing", -1), -1);
  EXPECT_TRUE(doc.get_bool("b"));
  EXPECT_TRUE(doc.get_bool("missing", true));
  // Type mismatches fall back too.
  EXPECT_EQ(doc.get_string("n", "dflt"), "dflt");
}

// Round-trip property over representative documents.
class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, ParseSerializeParse) {
  Value first = must_parse(GetParam());
  std::string text = serialize(first);
  Value second = must_parse(text);
  EXPECT_EQ(first, second);
  EXPECT_EQ(serialize(second), text);  // serialization is a fixed point
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonRoundTrip,
    ::testing::Values(
        "null", "true", "0", "-1.5", "\"\"", "\"plain\"", "[]", "{}",
        R"([1,[2,[3,[4]]]])",
        R"({"deep":{"deeper":{"deepest":[null,true,"x"]}}})",
        R"({"digest":"sha256:abc","size":1234,"annotations":{"k":"v"}})",
        R"(["","\\","\"","\n"])",
        R"({"mixed":[1,"two",false,null,{"k":[]}]})"));

}  // namespace
}  // namespace comt::json
