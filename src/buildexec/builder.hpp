// Dockerfile executor: drives Containers through multi-stage builds against
// an OCI layout. Each stage is committed as "<tag>.stage<N>" (so later stages
// and the coMtainer front-end can reach intermediate rootfs trees); the
// target stage is additionally tagged `tag`. When the stage's base image
// carries the hijack label and a recorder is supplied, every RUN command and
// COPY movement lands in the BuildRecord — the paper's Fig. 6 hijacked build.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "buildexec/container.hpp"
#include "buildexec/record.hpp"
#include "dockerfile/dockerfile.hpp"
#include "oci/oci.hpp"

namespace comt::buildexec {

class ImageBuilder {
 public:
  explicit ImageBuilder(oci::Layout& layout) : layout_(layout) {}

  /// Package repository backing apt-get inside build containers (nullable).
  void set_apt_source(const pkg::Repository* repo) { apt_source_ = repo; }

  /// `docker build --build-arg` equivalents; they override ARG defaults.
  void set_build_args(std::map<std::string, std::string> args) {
    build_args_ = std::move(args);
  }

  /// Executes the Dockerfile against `context` and tags the result `tag`.
  /// `target_stage` ("" = last) stops the build at a named/numbered stage.
  Result<oci::Image> build(const dockerfile::Dockerfile& file,
                           const vfs::Filesystem& context, std::string_view tag,
                           std::string_view target_stage = "",
                           BuildRecord* record = nullptr);

  /// Instantiates a container from a tagged image (flattened rootfs + config).
  Result<Container> container_from(std::string_view tag) const;

  /// Commits a container as a one-layer derivation of `base` (docker commit):
  /// the layer is the rootfs diff, the config is the container's current one.
  Result<oci::Image> commit(const Container& container, const oci::Image& base,
                            std::string_view created_by, std::string_view tag);

 private:
  oci::Layout& layout_;
  const pkg::Repository* apt_source_ = nullptr;
  std::map<std::string, std::string> build_args_;
};

}  // namespace comt::buildexec
