#include "workloads/harness.hpp"

#include "dockerfile/dockerfile.hpp"
#include "support/strings.hpp"

namespace comt::workloads {
namespace {

/// Size of an image: config blob plus all layer blobs (what `podman images`
/// reports and Table 3 lists).
std::uint64_t image_bytes(const oci::Image& image) {
  std::uint64_t total = image.manifest.config.size;
  for (const oci::Descriptor& layer : image.manifest.layers) total += layer.size;
  return total;
}

}  // namespace

std::string dockerfile_native(const AppSpec& app, const sysmodel::SystemProfile& system) {
  std::string text = dockerfile_text(app, system.arch, /*comt_bases=*/true);
  text = replace_all(text, "FROM comt/env:" + system.arch, "FROM " + sysenv_tag(system));
  text = replace_all(text, "FROM comt/base:" + system.arch, "FROM " + rebase_tag(system));
  // A system user drives the vendor toolchain and native flags by hand.
  text = replace_all(text, "ARG CFLAGS=-O2",
                     "ARG CFLAGS=-O2\nENV PATH=/opt/system/bin:/usr/local/bin:/usr/bin:/bin");
  return text;
}

Evaluation::Evaluation(const sysmodel::SystemProfile& system) : system_(system) {
  Status status = install_user_images(layout_, system.arch);
  COMT_ASSERT(status.ok(), "failed to install user-side base images");
  status = install_system_images(layout_, system);
  COMT_ASSERT(status.ok(), "failed to install system-side images");
}

Result<PreparedApp> Evaluation::prepare(const AppSpec& app) {
  COMT_TRY(dockerfile::Dockerfile file,
           dockerfile::parse(dockerfile_text(app, system_.arch, /*comt_bases=*/true)));
  buildexec::ImageBuilder builder(layout_);
  builder.set_apt_source(&ubuntu_repo(system_.arch));

  PreparedApp prepared;
  prepared.dist_tag = app.name + ".dist";
  buildexec::BuildRecord record;
  COMT_TRY(oci::Image dist, builder.build(file, build_context(app), prepared.dist_tag,
                                          /*target=*/"", &record));
  prepared.image_bytes = image_bytes(dist);

  // The build-stage container's final filesystem is where coMtainer-build
  // collects the sources from (it is tagged "<tag>.stage0" by the builder).
  COMT_TRY(oci::Image build_stage, layout_.find_image(prepared.dist_tag + ".stage0"));
  COMT_TRY(vfs::Filesystem build_rootfs, layout_.flatten(build_stage));

  COMT_TRY(oci::Image extended,
           core::comtainer_build(layout_, prepared.dist_tag, base_tag(system_.arch),
                                 record, build_rootfs));
  prepared.extended_tag = prepared.dist_tag + std::string(core::kExtendedSuffix);
  // Cache layer = the one layer the extended image adds over the dist image.
  COMT_ASSERT(extended.manifest.layers.size() >= 1, "extended image has no layers");
  prepared.cache_layer_bytes = extended.manifest.layers.back().size;
  return prepared;
}

Result<double> Evaluation::run_image(std::string_view tag, const WorkloadInput& input,
                                     int nodes) {
  COMT_TRY(oci::Image image, layout_.find_image(tag));
  COMT_TRY(vfs::Filesystem rootfs, layout_.flatten(image));
  if (image.config.config.entrypoint.empty()) {
    return make_error(Errc::invalid_argument, std::string(tag) + ": no entrypoint");
  }
  sysmodel::ExecutionEngine engine(system_);
  COMT_TRY(sysmodel::RunReport report,
           engine.run(rootfs, image.config.config.entrypoint[0], input.run_request(nodes)));
  return report.seconds;
}

Result<std::string> Evaluation::transform(
    const PreparedApp& prepared, const std::vector<const core::SystemAdapter*>& adapters,
    const WorkloadInput& input, int nodes) {
  core::RebuildOptions rebuild_options;
  rebuild_options.system = &system_;
  rebuild_options.system_repo = &system_repo(system_);
  rebuild_options.sysenv_tag = sysenv_tag(system_);
  rebuild_options.adapters = adapters;
  rebuild_options.profile_run = input.run_request(nodes);
  COMT_TRY(core::RebuildReport rebuilt,
           core::comtainer_rebuild(layout_, prepared.extended_tag, rebuild_options));

  core::RedirectOptions redirect_options;
  redirect_options.system = &system_;
  redirect_options.system_repo = &system_repo(system_);
  redirect_options.rebase_tag = rebase_tag(system_);
  std::string rebuilt_tag =
      core::base_tag_of(prepared.extended_tag) + std::string(core::kRebuiltSuffix);
  COMT_TRY(core::RedirectReport redirected,
           core::comtainer_redirect(layout_, rebuilt_tag, redirect_options));
  (void)redirected;
  return core::base_tag_of(prepared.extended_tag) + std::string(core::kRedirectedSuffix);
}

Result<std::string> Evaluation::redirect_only(const AppSpec& app,
                                              const PreparedApp& prepared) {
  core::RedirectOptions options;
  options.system = &system_;
  options.system_repo = &system_repo(system_);
  options.rebase_tag = rebase_tag(system_);
  for (const std::string& name : app.runtime_packages) {
    const pkg::Package* candidate = system_repo(system_).find(name);
    if (candidate != nullptr && candidate->variant == pkg::Variant::optimized) {
      options.package_replacements[name] = candidate->name;
    }
  }
  COMT_TRY(core::RedirectReport redirected,
           core::comtainer_redirect(layout_, prepared.extended_tag, options));
  (void)redirected;
  return core::base_tag_of(prepared.extended_tag) + std::string(core::kRedirectedSuffix);
}

Result<std::string> Evaluation::adapt(const AppSpec& app, const PreparedApp& prepared) {
  auto owned = core::adapted_scheme();
  std::vector<const core::SystemAdapter*> adapters;
  for (const auto& adapter : owned) adapters.push_back(adapter.get());
  return transform(prepared, adapters, app.inputs.front(), system_.nodes);
}

Result<std::string> Evaluation::optimize(const AppSpec& app, const PreparedApp& prepared,
                                         const WorkloadInput& input, int nodes) {
  (void)app;
  auto owned = core::optimized_scheme();
  std::vector<const core::SystemAdapter*> adapters;
  for (const auto& adapter : owned) adapters.push_back(adapter.get());
  return transform(prepared, adapters, input, nodes);
}

Result<std::string> Evaluation::build_native(const AppSpec& app) {
  COMT_TRY(dockerfile::Dockerfile file,
           dockerfile::parse(dockerfile_native(app, system_)));
  buildexec::ImageBuilder builder(layout_);
  builder.set_apt_source(&system_repo(system_));
  builder.set_build_args({{"CFLAGS", "-O3 -march=native"}});
  std::string tag = app.name + ".native";
  COMT_TRY(oci::Image image, builder.build(file, build_context(app), tag));
  (void)image;
  return tag;
}

Result<SchemeTimes> Evaluation::run_schemes(const AppSpec& app, const PreparedApp& prepared,
                                            const WorkloadInput& input, int nodes) {
  SchemeTimes times;
  COMT_TRY(times.original, run_image(prepared.dist_tag, input, nodes));

  COMT_TRY(std::string native_tag, build_native(app));
  COMT_TRY(times.native, run_image(native_tag, input, nodes));

  COMT_TRY(std::string adapted_tag, adapt(app, prepared));
  COMT_TRY(times.adapted, run_image(adapted_tag, input, nodes));

  COMT_TRY(std::string optimized_tag, optimize(app, prepared, input, nodes));
  COMT_TRY(times.optimized, run_image(optimized_tag, input, nodes));
  return times;
}

}  // namespace comt::workloads
