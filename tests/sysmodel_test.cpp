#include <gtest/gtest.h>

#include "sysmodel/sysmodel.hpp"
#include "toolchain/driver.hpp"

namespace comt::sysmodel {
namespace {

using toolchain::KernelTrait;
using toolchain::LinkedImage;
using toolchain::ObjectCode;

/// Builds an executable blob directly (bypassing the driver) so each test
/// controls codegen state precisely.
LinkedImage make_executable(KernelTrait kernel, std::string toolchain_id = "gnu-generic",
                            int opt = 2, std::string march = "x86-64", int lanes = 2) {
  LinkedImage exe;
  exe.target_arch = "amd64";
  ObjectCode object;
  object.source_path = "/src/k.cc";
  object.codegen.toolchain_id = std::move(toolchain_id);
  object.codegen.opt_level = opt;
  object.codegen.march = std::move(march);
  object.codegen.vector_lanes = lanes;
  object.kernels = {std::move(kernel)};
  exe.codegen = object.codegen;
  exe.objects = {std::move(object)};
  return exe;
}

KernelTrait kernel(double work = 100, double vec = 0, double mem = 0, double call = 0,
                   double branch = 0) {
  KernelTrait k;
  k.name = "k";
  k.work = work;
  k.frac_vec = vec;
  k.frac_mem = mem;
  k.frac_call = call;
  k.frac_branch = branch;
  return k;
}

vfs::Filesystem rootfs_with(const LinkedImage& exe) {
  vfs::Filesystem fs;
  EXPECT_TRUE(fs.write_file("/app/run", serialize_image(exe), 0755).ok());
  return fs;
}

double run_seconds(const LinkedImage& exe, const SystemProfile& system,
                   RunRequest request = {}) {
  vfs::Filesystem fs = rootfs_with(exe);
  ExecutionEngine engine(system);
  auto report = engine.run(fs, "/app/run", request);
  EXPECT_TRUE(report.ok()) << (report.ok() ? "" : report.error().to_string());
  return report.ok() ? report.value().seconds : -1;
}

TEST(ProfileTest, BuiltinsExist) {
  EXPECT_EQ(SystemProfile::x86_cluster().arch, "amd64");
  EXPECT_EQ(SystemProfile::aarch64_cluster().arch, "arm64");
  EXPECT_EQ(SystemProfile::x86_cluster().nodes, 16);
  EXPECT_TRUE(SystemProfile::x86_cluster().march_is_tuned("x86-64-v4"));
  EXPECT_FALSE(SystemProfile::x86_cluster().march_is_tuned("x86-64"));
}

TEST(EngineTest, ScalarTimeMatchesModel) {
  // Pure scalar kernel on the x86 profile with generic codegen at O2:
  // t = work / (ips * codegen * untuned).
  double seconds = run_seconds(make_executable(kernel(100)),
                               SystemProfile::x86_cluster());
  const SystemProfile& sys = SystemProfile::x86_cluster();
  EXPECT_NEAR(seconds, 100.0 / (sys.scalar_ips * 1.0 * sys.untuned_factor), 1e-9);
}

TEST(EngineTest, WiderLanesSpeedUpVectorCode) {
  KernelTrait k = kernel(100, /*vec=*/0.8);
  double narrow = run_seconds(make_executable(k, "vendor-x86", 2, "x86-64-v3", 2),
                              SystemProfile::x86_cluster());
  double wide = run_seconds(make_executable(k, "vendor-x86", 2, "x86-64-v3", 8),
                            SystemProfile::x86_cluster());
  EXPECT_LT(wide, narrow);
  // Lanes are capped by the hardware.
  double too_wide = run_seconds(make_executable(k, "vendor-x86", 2, "x86-64-v3", 64),
                                SystemProfile::x86_cluster());
  EXPECT_NEAR(too_wide, run_seconds(make_executable(k, "vendor-x86", 2, "x86-64-v3",
                                                    SystemProfile::x86_cluster().max_lanes),
                                    SystemProfile::x86_cluster()),
              1e-9);
}

TEST(EngineTest, HigherOptLevelIsFaster) {
  KernelTrait k = kernel(100, 0.3, 0.1);
  double o0 = run_seconds(make_executable(k, "gnu-generic", 0), SystemProfile::x86_cluster());
  double o2 = run_seconds(make_executable(k, "gnu-generic", 2), SystemProfile::x86_cluster());
  EXPECT_LT(o2, o0);
}

TEST(EngineTest, MemoryBoundTimeUnaffectedByCodegen) {
  KernelTrait k = kernel(100, 0, /*mem=*/1.0);
  double generic = run_seconds(make_executable(k, "gnu-generic", 2),
                               SystemProfile::x86_cluster());
  double vendor = run_seconds(make_executable(k, "vendor-x86", 3, "x86-64-v4", 8),
                              SystemProfile::x86_cluster());
  EXPECT_NEAR(generic, vendor, 1e-9);
}

TEST(EngineTest, LibrarySpeedComesFromInstalledLibrary) {
  KernelTrait k = kernel(100);
  k.lib = "blas";
  k.frac_lib = 1.0;
  LinkedImage exe = make_executable(k);
  exe.needed = {"blas"};

  vfs::Filesystem slow = rootfs_with(exe);
  ASSERT_TRUE(slow.write_file("/usr/lib/libblas.so",
                              toolchain::make_library_blob("libblas.so", "amd64",
                                                           {{"libspeed", 1.0}}),
                              0755).ok());
  vfs::Filesystem fast = rootfs_with(exe);
  ASSERT_TRUE(fast.write_file("/usr/lib/libblas.so",
                              toolchain::make_library_blob("libblas.so", "amd64",
                                                           {{"libspeed", 4.0}}),
                              0755).ok());
  ExecutionEngine engine(SystemProfile::x86_cluster());
  double slow_seconds = engine.run(slow, "/app/run").value().seconds;
  double fast_seconds = engine.run(fast, "/app/run").value().seconds;
  EXPECT_NEAR(slow_seconds / fast_seconds, 4.0, 1e-9);
}

TEST(EngineTest, MissingLibraryIsLoaderError) {
  KernelTrait k = kernel(10);
  LinkedImage exe = make_executable(k);
  exe.needed = {"blas"};
  vfs::Filesystem fs = rootfs_with(exe);
  ExecutionEngine engine(SystemProfile::x86_cluster());
  auto report = engine.run(fs, "/app/run");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("libblas.so"), std::string::npos);
}

TEST(EngineTest, LoaderBuiltinsAlwaysResolve) {
  KernelTrait k = kernel(10);
  LinkedImage exe = make_executable(k);
  exe.needed = {"m", "pthread", "stdc++"};
  vfs::Filesystem fs = rootfs_with(exe);
  ExecutionEngine engine(SystemProfile::x86_cluster());
  auto report = engine.run(fs, "/app/run");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().warnings.size(), 3u);
}

TEST(EngineTest, ArchMismatchIsExecFormatError) {
  LinkedImage exe = make_executable(kernel(10));
  exe.target_arch = "arm64";
  vfs::Filesystem fs = rootfs_with(exe);
  ExecutionEngine engine(SystemProfile::x86_cluster());
  auto report = engine.run(fs, "/app/run");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("Exec format error"), std::string::npos);
}

TEST(EngineTest, CannotRunSharedLibraryOrGarbage) {
  LinkedImage lib = make_executable(kernel(10));
  lib.is_shared = true;
  vfs::Filesystem fs = rootfs_with(lib);
  ASSERT_TRUE(fs.write_file("/etc/passwd", "root:x\n").ok());
  ExecutionEngine engine(SystemProfile::x86_cluster());
  EXPECT_FALSE(engine.run(fs, "/app/run").ok());
  EXPECT_FALSE(engine.run(fs, "/etc/passwd").ok());
  EXPECT_FALSE(engine.run(fs, "/no/such/file").ok());
}

TEST(EngineTest, LtoRemovesCallOverhead) {
  KernelTrait k = kernel(100, 0, 0, /*call=*/1.0);
  k.lto_response = 0.6;
  LinkedImage plain = make_executable(k);
  LinkedImage optimized = make_executable(k);
  optimized.objects[0].codegen.lto_applied = true;
  double before = run_seconds(plain, SystemProfile::x86_cluster());
  double after = run_seconds(optimized, SystemProfile::x86_cluster());
  EXPECT_NEAR(after / before, 0.4, 1e-9);
}

TEST(EngineTest, NegativePgoResponseSlowsDown) {
  KernelTrait k = kernel(100, 0, 0, 0, /*branch=*/1.0);
  k.pgo_response = -0.5;
  LinkedImage trained = make_executable(k);
  trained.objects[0].codegen.pgo_quality = 1.0;
  double plain = run_seconds(make_executable(k), SystemProfile::x86_cluster());
  double regressed = run_seconds(trained, SystemProfile::x86_cluster());
  EXPECT_GT(regressed, plain);
}

TEST(EngineTest, InstrumentationCostsAndEmitsProfile) {
  KernelTrait hot = kernel(90);
  hot.name = "hot";
  KernelTrait cold = kernel(10);
  cold.name = "cold";
  LinkedImage exe = make_executable(hot);
  exe.objects[0].kernels.push_back(cold);
  LinkedImage instrumented = exe;
  instrumented.codegen.pgo_instrumented = true;
  instrumented.objects[0].codegen.pgo_instrumented = true;

  ExecutionEngine engine(SystemProfile::x86_cluster());
  auto plain = engine.run(rootfs_with(exe), "/app/run");
  auto traced = engine.run(rootfs_with(instrumented), "/app/run");
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(traced.ok());
  EXPECT_GT(traced.value().seconds, plain.value().seconds);
  ASSERT_FALSE(traced.value().profile_blob.empty());
  auto weights = toolchain::parse_profile(traced.value().profile_blob);
  ASSERT_TRUE(weights.ok());
  EXPECT_NEAR(weights.value().at("hot"), 0.9, 1e-9);
  EXPECT_TRUE(plain.value().profile_blob.empty());
}

TEST(EngineTest, CommunicationZeroOnOneNode) {
  KernelTrait k = kernel(100);
  k.frac_comm = 0.5;
  LinkedImage exe = make_executable(k);
  exe.needed = {"mpi"};
  vfs::Filesystem fs = rootfs_with(exe);
  ASSERT_TRUE(fs.write_file("/usr/lib/libmpi.so",
                            toolchain::make_library_blob("libmpi.so", "amd64",
                                                         {{"fabric_tcp", 1.0}}),
                            0755).ok());
  ExecutionEngine engine(SystemProfile::x86_cluster());
  RunRequest single;
  single.nodes = 1;
  RunRequest sixteen;
  sixteen.nodes = 16;
  auto one = engine.run(fs, "/app/run", single);
  auto many = engine.run(fs, "/app/run", sixteen);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(many.ok());
  EXPECT_DOUBLE_EQ(one.value().breakdown.comm, 0.0);
  EXPECT_GT(many.value().breakdown.comm, 0.0);
}

TEST(EngineTest, FasterFabricCutsCommTime) {
  KernelTrait k = kernel(100);
  k.frac_comm = 0.5;
  LinkedImage exe = make_executable(k);
  exe.needed = {"mpi"};

  auto with_fabric = [&](std::map<std::string, double> attributes) {
    vfs::Filesystem fs = rootfs_with(exe);
    EXPECT_TRUE(fs.write_file("/usr/lib/libmpi.so",
                              toolchain::make_library_blob("libmpi.so", "amd64",
                                                           attributes),
                              0755).ok());
    ExecutionEngine engine(SystemProfile::x86_cluster());
    RunRequest request;
    request.nodes = 16;
    return engine.run(fs, "/app/run", request).value().breakdown.comm;
  };
  double tcp_only = with_fabric({{"fabric_tcp", 1.0}});
  double with_ib = with_fabric({{"fabric_tcp", 1.0}, {"fabric_ib", 1.0}});
  double with_hsn = with_fabric({{"fabric_tcp", 1.0}, {"fabric_hsn", 1.0}});
  EXPECT_GT(tcp_only, with_ib);
  EXPECT_GT(with_ib, with_hsn);
}

TEST(EngineTest, StrongScalingDividesComputeAcrossNodes) {
  KernelTrait k = kernel(160);
  LinkedImage exe = make_executable(k);
  RunRequest one;
  RunRequest sixteen;
  sixteen.nodes = 16;
  double t1 = run_seconds(exe, SystemProfile::x86_cluster(), one);
  double t16 = run_seconds(exe, SystemProfile::x86_cluster(), sixteen);
  EXPECT_NEAR(t1 / t16, 16.0, 1e-9);
}

TEST(EngineTest, KernelWeightsScaleSelectively) {
  KernelTrait a = kernel(100);
  a.name = "a";
  KernelTrait b = kernel(100);
  b.name = "b";
  LinkedImage exe = make_executable(a);
  exe.objects[0].kernels.push_back(b);
  RunRequest request;
  request.kernel_weight = {{"a", 3.0}, {"b", 0.0}};
  vfs::Filesystem fs = rootfs_with(exe);
  ExecutionEngine engine(SystemProfile::x86_cluster());
  auto report = engine.run(fs, "/app/run", request);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().kernel_seconds.at("a"), 0.0);
  EXPECT_DOUBLE_EQ(report.value().kernel_seconds.at("b"), 0.0);
}

TEST(EngineTest, AggressiveToolchainCanRegress) {
  KernelTrait k = kernel(100);
  k.aggr_response = -0.5;
  // vendor-x86 has aggressiveness 1.0, gnu-generic 0.1.
  double generic = run_seconds(make_executable(k, "gnu-generic", 3, "x86-64-v3"),
                               SystemProfile::x86_cluster());
  double vendor = run_seconds(make_executable(k, "vendor-x86", 3, "x86-64-v3"),
                              SystemProfile::x86_cluster());
  EXPECT_GT(vendor, generic);
}

TEST(EngineTest, BreakdownSumsToTotal) {
  KernelTrait k = kernel(100, 0.2, 0.2, 0.1, 0.1);
  k.lib = "m";
  k.frac_lib = 0.1;
  LinkedImage exe = make_executable(k);
  exe.needed = {"m"};
  vfs::Filesystem fs = rootfs_with(exe);
  ExecutionEngine engine(SystemProfile::x86_cluster());
  auto report = engine.run(fs, "/app/run");
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report.value().breakdown.total(), report.value().seconds, 1e-9);
}

// Monotonicity sweep: more nodes never increases per-run compute time.
class NodeScaling : public ::testing::TestWithParam<int> {};

TEST_P(NodeScaling, ComputeMonotone) {
  KernelTrait k = kernel(320, 0.3, 0.3);
  LinkedImage exe = make_executable(k);
  RunRequest fewer;
  fewer.nodes = GetParam();
  RunRequest more;
  more.nodes = GetParam() * 2;
  double t_fewer = run_seconds(exe, SystemProfile::x86_cluster(), fewer);
  double t_more = run_seconds(exe, SystemProfile::x86_cluster(), more);
  EXPECT_GT(t_fewer, t_more);
}

INSTANTIATE_TEST_SUITE_P(Nodes, NodeScaling, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace comt::sysmodel
