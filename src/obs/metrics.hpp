// The metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Instruments are created once through the registry (under its lock) and
// returned as stable references; every subsequent update is a lock-free
// atomic, so hot paths (per-compile-job cache accounting, pool queue-wait
// observation) pay one relaxed atomic op. Histograms use fixed upper-bound
// buckets with linear interpolation for percentile extraction — the same
// model as Prometheus histogram_quantile, so p50/p95/p99 are cheap and the
// error is bounded by bucket width.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"

namespace comt::obs {

/// Monotonically increasing integer. Thread-safe.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Settable/addable double. Thread-safe (CAS on add, so concurrent adds
/// never lose updates).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram over non-negative observations. Bucket `i` counts
/// observations <= bounds[i]; one implicit overflow bucket catches the rest.
/// observe() is one relaxed atomic increment per call plus two for count/sum.
class Histogram {
 public:
  /// `bounds` are strictly ascending upper bounds (checked, aborts on misuse).
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.value(); }

  /// p in [0, 100]. Linear interpolation inside the owning bucket (lower edge
  /// 0 for the first bucket). The overflow bucket clamps to the last bound.
  /// Returns 0 for an empty histogram.
  double percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; the extra final entry is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  Gauge sum_;
};

/// Default histogram bounds for millisecond latencies: exponential from
/// 0.01 ms to ~65 s.
std::vector<double> default_latency_buckets_ms();

/// Default histogram bounds for small cardinalities (batch sizes, jobs per
/// epoch, commit fan-in): powers of two from 1 to 4096.
std::vector<double> default_batch_size_buckets();

/// Named instrument store. counter()/gauge()/histogram() create on first use
/// and return stable references; creation takes the registry lock, updates
/// through the returned reference never do. A name permanently binds to its
/// first instrument kind (requesting it as another kind aborts).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

  /// Current value of a counter/gauge, 0 when the name was never created.
  /// This is what makes cheap "stats views" possible (service::ServiceStats).
  std::uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;

  /// Percentile of a histogram, 0 when the name was never created — the
  /// read-side twin of counter_value for latency views (per-tenant p99
  /// queue-wait in ServiceStats).
  double histogram_percentile(std::string_view name, double p) const;

  /// Snapshot as {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {"count", "sum", "p50", "p95", "p99"}}}, names sorted.
  json::Value to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace comt::obs
