#include "store/sharded.hpp"

#include <algorithm>
#include <cassert>

#include "store/wire.hpp"

namespace comt::store {

namespace {

/// Ring placement hash. Raw fnv1a64 is fine as a checksum but disperses
/// poorly for routing: the last byte of the input gets a single multiply, so
/// sequential keys ("key-1", "key-2", ...) share their high bits and collapse
/// into one ring gap. A splitmix64 finalizer spreads those bits.
std::uint64_t ring_hash(std::string_view data) {
  std::uint64_t h = wire::fnv1a64(data);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

std::vector<ShardedStore::RingPoint> ShardedStore::build_ring(
    std::size_t shards, std::size_t virtual_nodes) {
  std::vector<RingPoint> ring;
  ring.reserve(shards * virtual_nodes);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    for (std::size_t v = 0; v < virtual_nodes; ++v) {
      const std::string point =
          "shard" + std::to_string(shard) + "#" + std::to_string(v);
      ring.push_back(RingPoint{ring_hash(point), shard});
    }
  }
  std::sort(ring.begin(), ring.end(), [](const RingPoint& a, const RingPoint& b) {
    return a.hash < b.hash || (a.hash == b.hash && a.shard < b.shard);
  });
  return ring;
}

ShardedStore::ShardedStore(std::vector<std::shared_ptr<KvStore>> shards,
                           Options options)
    : shards_(std::move(shards)), options_(options) {
  assert(!shards_.empty() && "ShardedStore needs at least one shard");
  if (options_.virtual_nodes == 0) options_.virtual_nodes = 1;
  ring_ = build_ring(shards_.size(), options_.virtual_nodes);
}

std::size_t ShardedStore::route(std::string_view key) const {
  const std::uint64_t hash = ring_hash(key);
  // First ring point clockwise of the key's hash; wrap to the first point.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const RingPoint& point, std::uint64_t h) { return point.hash < h; });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

std::size_t ShardedStore::shard_of(std::string_view key) const { return route(key); }

Result<std::string> ShardedStore::get(std::string_view key) const {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  const std::size_t shard = route(key);
  auto value = shards_[shard]->get(key);
  if (value.ok()) {
    note_get(value.value().size());
    if (!shard_gets_.empty()) shard_gets_[shard]->add();
  } else if (value.error().code == Errc::corrupt) {
    note_corrupt();
  }
  return value;
}

Status ShardedStore::put(std::string_view key, std::string value) {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  const std::size_t shard = route(key);
  const std::uint64_t bytes = value.size();
  COMT_TRY_STATUS(shards_[shard]->put(key, std::move(value)));
  note_put(bytes);
  if (!shard_puts_.empty()) shard_puts_[shard]->add();
  return Status::success();
}

Status ShardedStore::erase(std::string_view key) {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  const std::size_t shard = route(key);
  COMT_TRY_STATUS(shards_[shard]->erase(key));
  note_erase();
  if (!shard_erases_.empty()) shard_erases_[shard]->add();
  return Status::success();
}

bool ShardedStore::contains(std::string_view key) const {
  if (key.empty()) return false;
  return owner(key).contains(key);
}

Result<std::uint64_t> ShardedStore::size(std::string_view key) const {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  return owner(key).size(key);
}

std::vector<KvEntry> ShardedStore::list(std::string_view prefix) const {
  // A prefix scatters over every shard (hashing ignores hierarchy), so a
  // list is a merge of per-shard lists, re-sorted into one namespace view.
  std::vector<KvEntry> out;
  for (const auto& shard : shards_) {
    std::vector<KvEntry> part = shard->list(prefix);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const KvEntry& a, const KvEntry& b) { return a.key < b.key; });
  return out;
}

Status ShardedStore::sync() {
  obs::Span span = sync_span();
  for (const auto& shard : shards_) COMT_TRY_STATUS(shard->sync());
  note_sync();
  return Status::success();
}

Result<bool> ShardedStore::compare_and_put(std::string_view key,
                                           const std::optional<std::string>& expected,
                                           std::string value) {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  // Same key → same shard → same CAS mutex: arbitration is exactly as strong
  // as on the unsharded child.
  return owner(key).compare_and_put(key, expected, std::move(value));
}

void ShardedStore::bind_shard_counters() {
  shard_gets_.clear();
  shard_puts_.clear();
  shard_erases_.clear();
  if (shard_metrics_ == nullptr) return;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::string base = "store.shard" + std::to_string(i);
    shard_gets_.push_back(&shard_metrics_->counter(base + ".gets"));
    shard_puts_.push_back(&shard_metrics_->counter(base + ".puts"));
    shard_erases_.push_back(&shard_metrics_->counter(base + ".erases"));
  }
}

void ShardedStore::set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  KvStore::set_observer(tracer, metrics);
  shard_metrics_ = metrics;
  bind_shard_counters();
}

Result<ShardedStore::RebalanceReport> ShardedStore::reshard(
    std::vector<std::shared_ptr<KvStore>> shards) {
  if (shards.empty()) {
    return make_error(Errc::invalid_argument, "sharded store: need at least one shard");
  }
  RebalanceReport report;
  report.shards_before = shards_.size();
  report.shards_after = shards.size();

  std::vector<RingPoint> next_ring = build_ring(shards.size(), options_.virtual_nodes);
  auto route_in = [](const std::vector<RingPoint>& ring, std::string_view key) {
    const std::uint64_t hash = ring_hash(key);
    auto it = std::lower_bound(
        ring.begin(), ring.end(), hash,
        [](const RingPoint& point, std::uint64_t h) { return point.hash < h; });
    if (it == ring.end()) it = ring.begin();
    return it->shard;
  };

  // Snapshot placements first (a key migrated into a reused child must not
  // be re-walked when that child's turn comes), then move every key whose
  // new owner is a different physical child. Unchanged placements — the
  // consistent-hash common case — move nothing.
  std::vector<std::pair<std::size_t, KvEntry>> placements;
  for (std::size_t old_shard = 0; old_shard < shards_.size(); ++old_shard) {
    for (KvEntry& entry : shards_[old_shard]->list()) {
      placements.emplace_back(old_shard, std::move(entry));
    }
  }
  report.keys_total = placements.size();
  for (const auto& [old_shard, entry] : placements) {
    const std::size_t new_shard = route_in(next_ring, entry.key);
    if (shards[new_shard] == shards_[old_shard]) continue;
    COMT_TRY(std::string value, shards_[old_shard]->get(entry.key));
    COMT_TRY_STATUS(shards[new_shard]->put(entry.key, std::move(value)));
    COMT_TRY_STATUS(shards_[old_shard]->erase(entry.key));
    ++report.keys_moved;
    report.bytes_moved += entry.size;
  }

  shards_ = std::move(shards);
  ring_ = std::move(next_ring);
  bind_shard_counters();
  return report;
}

}  // namespace comt::store
