#include <gtest/gtest.h>

#include "toolchain/driver.hpp"
#include "toolchain/source.hpp"

namespace comt::toolchain {
namespace {

const Toolchain& gnu() {
  const Toolchain* tc = ToolchainRegistry::builtin().find("gnu-generic");
  EXPECT_NE(tc, nullptr);
  return *tc;
}

const Toolchain& vendor_x86() {
  const Toolchain* tc = ToolchainRegistry::builtin().find("vendor-x86");
  EXPECT_NE(tc, nullptr);
  return *tc;
}

std::string kernel_source(std::string kernel_name, std::string extra = "") {
  SourceGenSpec spec;
  spec.unit_name = kernel_name + "_unit";
  KernelTrait kernel;
  kernel.name = std::move(kernel_name);
  kernel.work = 100;
  kernel.frac_vec = 0.4;
  spec.kernels = {kernel};
  spec.filler_lines = 5;
  return generate_source(spec) + extra;
}

vfs::Filesystem workspace() {
  vfs::Filesystem fs;
  EXPECT_TRUE(fs.write_file("/work/a.cc", kernel_source("alpha")).ok());
  EXPECT_TRUE(fs.write_file("/work/b.cc", kernel_source("beta")).ok());
  return fs;
}

CompileCommand parse(std::vector<std::string> argv) {
  auto result = parse_command(argv);
  EXPECT_TRUE(result.ok());
  return result.value();
}

TEST(DriverTest, CompileProducesObject) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  auto result = driver.run(parse({"gcc", "-O2", "-c", "a.cc", "-o", "a.o"}), fs, "/work");
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().outputs, std::vector<std::string>{"/work/a.o"});
  auto object = parse_object(fs.read_file("/work/a.o").value());
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(object.value().codegen.opt_level, 2);
  EXPECT_EQ(object.value().codegen.toolchain_id, "gnu-generic");
  EXPECT_EQ(object.value().codegen.march, "x86-64");
  ASSERT_EQ(object.value().kernels.size(), 1u);
  EXPECT_EQ(object.value().kernels[0].name, "alpha");
}

TEST(DriverTest, DefaultObjectName) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  auto result = driver.run(parse({"gcc", "-c", "a.cc"}), fs, "/work");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(fs.is_regular("/work/a.o"));
}

TEST(DriverTest, MissingInputFails) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  EXPECT_FALSE(driver.run(parse({"gcc", "-c", "ghost.cc"}), fs, "/work").ok());
  EXPECT_FALSE(driver.run(parse({"gcc"}), fs, "/work").ok());
}

TEST(DriverTest, MissingIncludeFails) {
  vfs::Filesystem fs;
  ASSERT_TRUE(fs.write_file("/work/x.cc", "#include \"nope.h\"\n").ok());
  Driver driver(gnu(), "amd64");
  auto result = driver.run(parse({"gcc", "-c", "x.cc"}), fs, "/work");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("nope.h"), std::string::npos);
}

TEST(DriverTest, IncludeResolvedViaMinusI) {
  vfs::Filesystem fs;
  ASSERT_TRUE(fs.write_file("/work/x.cc", "#include \"dep.h\"\n").ok());
  ASSERT_TRUE(fs.write_file("/work/third_party/dep.h", "// dep\n").ok());
  Driver driver(gnu(), "amd64");
  auto result = driver.run(parse({"gcc", "-Ithird_party", "-c", "x.cc"}), fs, "/work");
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  // The header is an input of this compilation (graph provenance needs it).
  bool saw_header = false;
  for (const std::string& input : result.value().inputs_read) {
    saw_header |= input == "/work/third_party/dep.h";
  }
  EXPECT_TRUE(saw_header);
}

TEST(DriverTest, LinkObjectsIntoExecutable) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  ASSERT_TRUE(driver.run(parse({"gcc", "-c", "a.cc"}), fs, "/work").ok());
  ASSERT_TRUE(driver.run(parse({"gcc", "-c", "b.cc"}), fs, "/work").ok());
  auto result = driver.run(parse({"gcc", "a.o", "b.o", "-o", "app"}), fs, "/work");
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  auto image = parse_image(fs.read_file("/work/app").value());
  ASSERT_TRUE(image.ok());
  EXPECT_FALSE(image.value().is_shared);
  EXPECT_EQ(image.value().target_arch, "amd64");
  EXPECT_EQ(image.value().objects.size(), 2u);
  EXPECT_TRUE(fs.lookup("/work/app")->executable());
}

TEST(DriverTest, CompileAndLinkInOneStep) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  auto result = driver.run(parse({"gcc", "-O2", "a.cc", "b.cc", "-o", "app"}), fs, "/work");
  ASSERT_TRUE(result.ok());
  auto image = parse_image(fs.read_file("/work/app").value());
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image.value().objects.size(), 2u);
}

TEST(DriverTest, UndefinedLibraryReferenceFails) {
  vfs::Filesystem fs;
  ASSERT_TRUE(fs.write_file(
      "/work/x.cc", "// @comt-kernel name=k work=1 lib=blas:0.5\nvoid k();\n").ok());
  Driver driver(gnu(), "amd64");
  auto result = driver.run(parse({"gcc", "x.cc", "-o", "app"}), fs, "/work");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("undefined reference"), std::string::npos);
}

TEST(DriverTest, SharedLibrarySatisfiesReference) {
  vfs::Filesystem fs;
  ASSERT_TRUE(fs.write_file(
      "/work/x.cc", "// @comt-kernel name=k work=1 lib=blas:0.5\nvoid k();\n").ok());
  ASSERT_TRUE(fs.write_file("/usr/lib/libblas.so",
                            make_library_blob("libblas.so", "amd64", {{"libspeed", 1.0}}),
                            0755).ok());
  Driver driver(gnu(), "amd64");
  auto result = driver.run(parse({"gcc", "x.cc", "-lblas", "-o", "app"}), fs, "/work");
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  auto image = parse_image(fs.read_file("/work/app").value());
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image.value().needed, std::vector<std::string>{"blas"});
}

TEST(DriverTest, CannotFindLibraryFails) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  auto result = driver.run(parse({"gcc", "a.cc", "-lexotic", "-o", "app"}), fs, "/work");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("cannot find -lexotic"), std::string::npos);
}

TEST(DriverTest, MpiKernelNeedsMpiLibrary) {
  vfs::Filesystem fs;
  ASSERT_TRUE(fs.write_file(
      "/work/x.cc", "// @comt-kernel name=k work=1 comm=0.2\nvoid k();\n").ok());
  Driver driver(gnu(), "amd64");
  auto without = driver.run(parse({"gcc", "x.cc", "-o", "app"}), fs, "/work");
  ASSERT_FALSE(without.ok());
  EXPECT_NE(without.error().message.find("MPI_Init"), std::string::npos);

  ASSERT_TRUE(fs.write_file("/usr/lib/libmpi.so",
                            make_library_blob("libmpi.so", "amd64", {{"fabric_tcp", 1.0}}),
                            0755).ok());
  EXPECT_TRUE(driver.run(parse({"gcc", "x.cc", "-lmpi", "-o", "app"}), fs, "/work").ok());
}

TEST(DriverTest, StaticArchiveMembersAreMerged) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  ASSERT_TRUE(driver.run(parse({"gcc", "-c", "a.cc"}), fs, "/work").ok());
  ASSERT_TRUE(driver.run(parse({"gcc", "-c", "b.cc"}), fs, "/work").ok());
  std::vector<std::string> ar_argv = {"ar", "rcs", "libcore.a", "a.o", "b.o"};
  ASSERT_TRUE(run_ar(ar_argv, fs, "/work").ok());
  ASSERT_TRUE(fs.write_file("/work/main.cc", kernel_source("main_k")).ok());
  auto result = driver.run(parse({"gcc", "main.cc", "libcore.a", "-o", "app"}), fs, "/work");
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  auto image = parse_image(fs.read_file("/work/app").value());
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image.value().objects.size(), 3u);
}

TEST(DriverTest, ArReplacesSameNamedMembers) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  ASSERT_TRUE(driver.run(parse({"gcc", "-c", "a.cc"}), fs, "/work").ok());
  std::vector<std::string> ar_argv = {"ar", "rcs", "lib.a", "a.o"};
  ASSERT_TRUE(run_ar(ar_argv, fs, "/work").ok());
  ASSERT_TRUE(run_ar(ar_argv, fs, "/work").ok());  // idempotent, not duplicating
  auto members = parse_archive(fs.read_file("/work/lib.a").value());
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members.value().size(), 1u);
}

TEST(DriverTest, ArList) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  ASSERT_TRUE(driver.run(parse({"gcc", "-c", "a.cc"}), fs, "/work").ok());
  std::vector<std::string> make_argv = {"ar", "rcs", "lib.a", "a.o"};
  ASSERT_TRUE(run_ar(make_argv, fs, "/work").ok());
  std::vector<std::string> list_argv = {"ar", "t", "lib.a"};
  auto listing = run_ar(list_argv, fs, "/work");
  ASSERT_TRUE(listing.ok());
  EXPECT_NE(listing.value().log.find("a.cc"), std::string::npos);
}

TEST(DriverTest, LtoMarksIrAndApplies) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  ASSERT_TRUE(driver.run(parse({"gcc", "-O2", "-flto", "-c", "a.cc"}), fs, "/work").ok());
  auto object = parse_object(fs.read_file("/work/a.o").value());
  ASSERT_TRUE(object.ok());
  EXPECT_TRUE(object.value().codegen.lto_ir);
  EXPECT_FALSE(object.value().codegen.lto_applied);

  ASSERT_TRUE(driver.run(parse({"gcc", "-flto", "a.o", "-o", "app"}), fs, "/work").ok());
  auto image = parse_image(fs.read_file("/work/app").value());
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE(image.value().codegen.lto_applied);
  EXPECT_TRUE(image.value().objects[0].codegen.lto_applied);
}

TEST(DriverTest, LtoWithoutIrObjectsDoesNotApply) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  ASSERT_TRUE(driver.run(parse({"gcc", "-c", "a.cc"}), fs, "/work").ok());
  ASSERT_TRUE(driver.run(parse({"gcc", "-flto", "a.o", "-o", "app"}), fs, "/work").ok());
  auto image = parse_image(fs.read_file("/work/app").value());
  ASSERT_TRUE(image.ok());
  EXPECT_FALSE(image.value().codegen.lto_applied);
}

TEST(DriverTest, ProfileGenerateAndUse) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  ASSERT_TRUE(
      driver.run(parse({"gcc", "-fprofile-generate", "-c", "a.cc"}), fs, "/work").ok());
  auto instrumented = parse_object(fs.read_file("/work/a.o").value());
  ASSERT_TRUE(instrumented.ok());
  EXPECT_TRUE(instrumented.value().codegen.pgo_instrumented);

  // Feed a matching profile back.
  ASSERT_TRUE(fs.write_file(std::string("/work/") + std::string(kDefaultProfileName),
                            serialize_profile({{"alpha", 0.9}})).ok());
  ASSERT_TRUE(driver.run(parse({"gcc", "-fprofile-use", "-c", "a.cc"}), fs, "/work").ok());
  auto trained = parse_object(fs.read_file("/work/a.o").value());
  ASSERT_TRUE(trained.ok());
  EXPECT_FALSE(trained.value().codegen.pgo_instrumented);
  EXPECT_GT(trained.value().codegen.pgo_quality, 0.5);
}

TEST(DriverTest, ProfileUseMissingDataWarnsButSucceeds) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  auto result = driver.run(parse({"gcc", "-fprofile-use", "-c", "a.cc"}), fs, "/work");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result.value().log.find("profile data not found"), std::string::npos);
  auto object = parse_object(fs.read_file("/work/a.o").value());
  EXPECT_DOUBLE_EQ(object.value().codegen.pgo_quality, 0.0);
}

TEST(DriverTest, UnsupportedMarchFails) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  // The distro compiler does not reach x86-64-v4.
  auto result = driver.run(parse({"gcc", "-march=x86-64-v4", "-c", "a.cc"}), fs, "/work");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("x86-64-v4"), std::string::npos);
}

TEST(DriverTest, MarchNativeResolvesToWidest) {
  vfs::Filesystem fs = workspace();
  Driver generic_driver(gnu(), "amd64");
  ASSERT_TRUE(generic_driver.run(parse({"gcc", "-march=native", "-c", "a.cc"}),
                                 fs, "/work").ok());
  auto generic_object = parse_object(fs.read_file("/work/a.o").value());
  EXPECT_EQ(generic_object.value().codegen.march, "x86-64-v3");

  Driver vendor_driver(vendor_x86(), "amd64");
  ASSERT_TRUE(vendor_driver.run(parse({"gcc", "-march=native", "-c", "a.cc"}),
                                fs, "/work").ok());
  auto vendor_object = parse_object(fs.read_file("/work/a.o").value());
  EXPECT_EQ(vendor_object.value().codegen.march, "x86-64-v4");
  EXPECT_EQ(vendor_object.value().codegen.vector_lanes, 8);
}

TEST(DriverTest, CrossArchMachineFlagRejected) {
  vfs::Filesystem fs = workspace();
  const Toolchain* arm = ToolchainRegistry::builtin().find("vendor-aarch64");
  ASSERT_NE(arm, nullptr);
  Driver driver(*arm, "arm64");
  auto result = driver.run(parse({"gcc", "-msse4.2", "-c", "a.cc"}), fs, "/work");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("-msse4.2"), std::string::npos);
}

TEST(DriverTest, ArchSpecificToolchainRefusesOtherArch) {
  vfs::Filesystem fs = workspace();
  Driver driver(vendor_x86(), "arm64");
  auto result = driver.run(parse({"gcc", "-c", "a.cc"}), fs, "/work");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("exec format"), std::string::npos);
}

TEST(DriverTest, IsaLockedSourceFailsCross) {
  vfs::Filesystem fs;
  SourceGenSpec spec;
  spec.unit_name = "tuned";
  spec.isa_specific = {"x86_64"};
  spec.filler_lines = 3;
  ASSERT_TRUE(fs.write_file("/work/tuned.cc", generate_source(spec)).ok());
  const Toolchain* arm = ToolchainRegistry::builtin().find("vendor-aarch64");
  Driver driver(*arm, "arm64");
  auto result = driver.run(parse({"gcc", "-c", "tuned.cc"}), fs, "/work");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("ISA-specific"), std::string::npos);
  // Same source on its own ISA compiles fine.
  Driver x86_driver(gnu(), "amd64");
  EXPECT_TRUE(x86_driver.run(parse({"gcc", "-c", "tuned.cc"}), fs, "/work").ok());
}

TEST(DriverTest, IsaLockViaIncludedHeader) {
  vfs::Filesystem fs;
  ASSERT_TRUE(fs.write_file("/work/arch_tune.h", "// @comt-isa x86_64\n").ok());
  ASSERT_TRUE(fs.write_file("/work/x.cc", "#include \"arch_tune.h\"\n").ok());
  const Toolchain* arm = ToolchainRegistry::builtin().find("vendor-aarch64");
  Driver driver(*arm, "arm64");
  EXPECT_FALSE(driver.run(parse({"gcc", "-c", "x.cc"}), fs, "/work").ok());
}

TEST(DriverTest, SharedLibraryOutput) {
  vfs::Filesystem fs = workspace();
  Driver driver(gnu(), "amd64");
  ASSERT_TRUE(driver.run(parse({"gcc", "-fPIC", "-c", "a.cc"}), fs, "/work").ok());
  ASSERT_TRUE(
      driver.run(parse({"gcc", "-shared", "a.o", "-o", "libalpha.so"}), fs, "/work").ok());
  auto image = parse_image(fs.read_file("/work/libalpha.so").value());
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE(image.value().is_shared);
  EXPECT_EQ(image.value().soname, "libalpha.so");
}

}  // namespace
}  // namespace comt::toolchain
