#include "toolchain/artifact.hpp"

#include "json/json.hpp"
#include "support/strings.hpp"

namespace comt::toolchain {
namespace {

json::Value kernel_to_json(const KernelTrait& kernel) {
  json::Object object;
  object.emplace_back("name", json::Value(kernel.name));
  object.emplace_back("work", json::Value(kernel.work));
  object.emplace_back("vec", json::Value(kernel.frac_vec));
  object.emplace_back("mem", json::Value(kernel.frac_mem));
  object.emplace_back("call", json::Value(kernel.frac_call));
  object.emplace_back("branch", json::Value(kernel.frac_branch));
  object.emplace_back("lib", json::Value(kernel.lib));
  object.emplace_back("flib", json::Value(kernel.frac_lib));
  object.emplace_back("comm", json::Value(kernel.frac_comm));
  object.emplace_back("aggr", json::Value(kernel.aggr_response));
  object.emplace_back("rlto", json::Value(kernel.lto_response));
  object.emplace_back("rpgo", json::Value(kernel.pgo_response));
  return json::Value(std::move(object));
}

KernelTrait kernel_from_json(const json::Value& value) {
  KernelTrait kernel;
  kernel.name = value.get_string("name");
  auto number = [&](const char* key) {
    const json::Value* v = value.find(key);
    return v != nullptr && v->is_number() ? v->as_number() : 0.0;
  };
  kernel.work = number("work");
  kernel.frac_vec = number("vec");
  kernel.frac_mem = number("mem");
  kernel.frac_call = number("call");
  kernel.frac_branch = number("branch");
  kernel.lib = value.get_string("lib");
  kernel.frac_lib = number("flib");
  kernel.frac_comm = number("comm");
  kernel.aggr_response = number("aggr");
  kernel.lto_response = number("rlto");
  kernel.pgo_response = number("rpgo");
  return kernel;
}

json::Value codegen_to_json(const CodegenInfo& codegen) {
  json::Object object;
  object.emplace_back("toolchain", json::Value(codegen.toolchain_id));
  object.emplace_back("opt", json::Value(codegen.opt_level));
  object.emplace_back("march", json::Value(codegen.march));
  object.emplace_back("lanes", json::Value(codegen.vector_lanes));
  object.emplace_back("lto_ir", json::Value(codegen.lto_ir));
  object.emplace_back("lto_applied", json::Value(codegen.lto_applied));
  object.emplace_back("pgo_instr", json::Value(codegen.pgo_instrumented));
  object.emplace_back("pgo_quality", json::Value(codegen.pgo_quality));
  if (codegen.layout_optimized) object.emplace_back("layout", json::Value(true));
  return json::Value(std::move(object));
}

CodegenInfo codegen_from_json(const json::Value& value) {
  CodegenInfo codegen;
  codegen.toolchain_id = value.get_string("toolchain");
  codegen.opt_level = static_cast<int>(value.get_int("opt"));
  codegen.march = value.get_string("march");
  codegen.vector_lanes = static_cast<int>(value.get_int("lanes", 2));
  codegen.lto_ir = value.get_bool("lto_ir");
  codegen.lto_applied = value.get_bool("lto_applied");
  codegen.pgo_instrumented = value.get_bool("pgo_instr");
  if (const json::Value* q = value.find("pgo_quality"); q != nullptr && q->is_number()) {
    codegen.pgo_quality = q->as_number();
  }
  codegen.layout_optimized = value.get_bool("layout");
  return codegen;
}

json::Value object_to_json(const ObjectCode& object_code) {
  json::Object object;
  object.emplace_back("source", json::Value(object_code.source_path));
  object.emplace_back("digest", json::Value(object_code.source_digest));
  object.emplace_back("codegen", codegen_to_json(object_code.codegen));
  json::Array kernels;
  for (const KernelTrait& kernel : object_code.kernels) {
    kernels.push_back(kernel_to_json(kernel));
  }
  object.emplace_back("kernels", json::Value(std::move(kernels)));
  return json::Value(std::move(object));
}

ObjectCode object_from_json(const json::Value& value) {
  ObjectCode object_code;
  object_code.source_path = value.get_string("source");
  object_code.source_digest = value.get_string("digest");
  if (const json::Value* codegen = value.find("codegen"); codegen != nullptr) {
    object_code.codegen = codegen_from_json(*codegen);
  }
  if (const json::Value* kernels = value.find("kernels");
      kernels != nullptr && kernels->is_array()) {
    for (const json::Value& kernel : kernels->as_array()) {
      object_code.kernels.push_back(kernel_from_json(kernel));
    }
  }
  return object_code;
}

/// Wraps a JSON body under a magic first line.
std::string wrap(std::string_view magic, const json::Value& body) {
  std::string out(magic);
  out += '\n';
  out += json::serialize(body);
  return out;
}

Result<json::Value> unwrap(std::string_view magic, std::string_view blob,
                           std::string_view what) {
  if (!starts_with(blob, magic)) {
    return make_error(Errc::corrupt, std::string(what) + ": bad magic");
  }
  std::size_t newline = blob.find('\n');
  if (newline == std::string_view::npos) {
    return make_error(Errc::corrupt, std::string(what) + ": truncated header");
  }
  // The JSON body is one compact line; anything after the next newline is
  // padding (library blobs carry size ballast, like real .so file bodies).
  std::string_view body = blob.substr(newline + 1);
  if (std::size_t end = body.find('\n'); end != std::string_view::npos) {
    body = body.substr(0, end);
  }
  return json::parse(body);
}

}  // namespace

double LinkedImage::attribute(std::string_view key, double fallback) const {
  auto it = attributes.find(std::string(key));
  return it == attributes.end() ? fallback : it->second;
}

std::string serialize_object(const ObjectCode& object) {
  return wrap(kObjectMagic, object_to_json(object));
}

Result<ObjectCode> parse_object(std::string_view blob) {
  COMT_TRY(json::Value body, unwrap(kObjectMagic, blob, "object file"));
  return object_from_json(body);
}

bool is_object_blob(std::string_view blob) { return starts_with(blob, kObjectMagic); }

std::string serialize_archive(const std::vector<ObjectCode>& members) {
  json::Array array;
  for (const ObjectCode& member : members) array.push_back(object_to_json(member));
  return wrap(kArchiveMagic, json::Value(std::move(array)));
}

Result<std::vector<ObjectCode>> parse_archive(std::string_view blob) {
  COMT_TRY(json::Value body, unwrap(kArchiveMagic, blob, "archive"));
  if (!body.is_array()) return make_error(Errc::corrupt, "archive: body is not an array");
  std::vector<ObjectCode> members;
  for (const json::Value& member : body.as_array()) {
    members.push_back(object_from_json(member));
  }
  return members;
}

bool is_archive_blob(std::string_view blob) { return starts_with(blob, kArchiveMagic); }

std::string serialize_image(const LinkedImage& image) {
  json::Object object;
  object.emplace_back("shared", json::Value(image.is_shared));
  object.emplace_back("soname", json::Value(image.soname));
  object.emplace_back("arch", json::Value(image.target_arch));
  object.emplace_back("codegen", codegen_to_json(image.codegen));
  json::Array objects;
  for (const ObjectCode& member : image.objects) objects.push_back(object_to_json(member));
  object.emplace_back("objects", json::Value(std::move(objects)));
  json::Array needed;
  for (const std::string& name : image.needed) needed.emplace_back(name);
  object.emplace_back("needed", json::Value(std::move(needed)));
  json::Object attributes;
  for (const auto& [key, value] : image.attributes) {
    attributes.emplace_back(key, json::Value(value));
  }
  object.emplace_back("attributes", json::Value(std::move(attributes)));
  return wrap(kImageMagic, json::Value(std::move(object)));
}

Result<LinkedImage> parse_image(std::string_view blob) {
  COMT_TRY(json::Value body, unwrap(kImageMagic, blob, "linked image"));
  LinkedImage image;
  image.is_shared = body.get_bool("shared");
  image.soname = body.get_string("soname");
  image.target_arch = body.get_string("arch");
  if (const json::Value* codegen = body.find("codegen"); codegen != nullptr) {
    image.codegen = codegen_from_json(*codegen);
  }
  if (const json::Value* objects = body.find("objects");
      objects != nullptr && objects->is_array()) {
    for (const json::Value& member : objects->as_array()) {
      image.objects.push_back(object_from_json(member));
    }
  }
  if (const json::Value* needed = body.find("needed");
      needed != nullptr && needed->is_array()) {
    for (const json::Value& name : needed->as_array()) {
      image.needed.push_back(name.as_string());
    }
  }
  if (const json::Value* attributes = body.find("attributes");
      attributes != nullptr && attributes->is_object()) {
    for (const auto& [key, value] : attributes->as_object()) {
      if (value.is_number()) image.attributes[key] = value.as_number();
    }
  }
  return image;
}

bool is_image_blob(std::string_view blob) { return starts_with(blob, kImageMagic); }

}  // namespace comt::toolchain
