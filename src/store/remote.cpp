#include "store/remote.hpp"

#include <cassert>
#include <thread>
#include <utility>

#include "store/wire.hpp"

namespace comt::store {

RemoteStore::RemoteStore(std::shared_ptr<KvStore> inner, Options options)
    : inner_(std::move(inner)), options_(options) {
  assert(inner_ != nullptr && "RemoteStore needs a backing store");
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

std::string RemoteStore::frame(std::string_view value) {
  std::string out;
  out.reserve(kFrameHeader + value.size());
  wire::put_u32(out, static_cast<std::uint32_t>(value.size()));
  wire::put_u64(out, wire::fnv1a64(value));
  out.append(value);
  return out;
}

Result<std::string> RemoteStore::unframe(std::string_view key,
                                         std::string framed) const {
  wire::Reader reader{framed};
  const std::uint32_t size = reader.u32();
  const std::uint64_t hash = reader.u64();
  if (!reader.ok || framed.size() != kFrameHeader + size) {
    return make_error(Errc::corrupt,
                      "remote store: torn transfer for key: " + std::string(key));
  }
  std::string value = framed.substr(kFrameHeader);
  if (wire::fnv1a64(value) != hash) {
    return make_error(Errc::corrupt,
                      "remote store: checksum mismatch for key: " + std::string(key));
  }
  return value;
}

void RemoteStore::note_retry() const {
  retries_.fetch_add(1, std::memory_order_relaxed);
  if (retry_counter_ != nullptr) retry_counter_->add();
}

RemoteStore::BreakerState RemoteStore::breaker_state() const {
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  return state_;
}

void RemoteStore::breaker_transition_locked(BreakerState next,
                                            std::string_view why) const {
  state_ = next;
  if (next == BreakerState::open) {
    opened_at_ = std::chrono::steady_clock::now();
    probe_in_flight_ = false;
    if (breaker_opens_ != nullptr) breaker_opens_->add();
  } else if (next == BreakerState::closed) {
    consecutive_failures_ = 0;
    probe_in_flight_ = false;
    if (breaker_closes_ != nullptr) breaker_closes_->add();
  }
  obs::Span span = obs::maybe_span(tracer_, "remote.breaker", obs::kNoSpan, "store");
  span.annotate("state", next == BreakerState::open      ? "open"
                         : next == BreakerState::closed  ? "closed"
                                                         : "half_open");
  span.annotate("why", why);
}

Status RemoteStore::breaker_admit(std::string_view op) const {
  if (options_.breaker_threshold <= 0) return Status::success();
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  switch (state_) {
    case BreakerState::closed:
      return Status::success();
    case BreakerState::open:
      if (std::chrono::steady_clock::now() - opened_at_ >= options_.breaker_cooldown) {
        // Cooldown lapsed: this caller becomes the half-open probe.
        breaker_transition_locked(BreakerState::half_open, "cooldown lapsed");
        probe_in_flight_ = true;
        return Status::success();
      }
      break;
    case BreakerState::half_open:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return Status::success();
      }
      break;
  }
  fast_fails_.fetch_add(1, std::memory_order_relaxed);
  if (breaker_fast_fail_counter_ != nullptr) breaker_fast_fail_counter_->add();
  return make_error(Errc::failed, "remote store: circuit breaker open, " +
                                      std::string(op) + " failed fast");
}

void RemoteStore::breaker_record(bool ok) const {
  if (options_.breaker_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  if (ok) {
    if (state_ == BreakerState::half_open) {
      breaker_transition_locked(BreakerState::closed, "probe succeeded");
    } else {
      consecutive_failures_ = 0;
    }
    return;
  }
  if (state_ == BreakerState::half_open) {
    breaker_transition_locked(BreakerState::open, "probe failed");
    return;
  }
  if (state_ == BreakerState::closed &&
      ++consecutive_failures_ >= options_.breaker_threshold) {
    breaker_transition_locked(BreakerState::open, "consecutive failures");
  }
}

void RemoteStore::note_wire_get(std::uint64_t bytes) const {
  wire_get_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void RemoteStore::note_wire_put(std::uint64_t bytes) const {
  wire_put_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

Status RemoteStore::checked_attempts(std::string_view site, int* attempts) const {
  if (attempts != nullptr) *attempts = 1;
  if (faults() == nullptr) return Status::success();
  Status last = Status::success();
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (attempts != nullptr) *attempts = attempt;
    last = faults()->check(site);
    if (last.ok()) return last;
    if (attempt == options_.max_attempts) break;
    note_retry();
    if (options_.backoff.count() > 0) {
      // Exponential backoff: base, 2x, 4x, ... (shift capped well below
      // overflow — nobody configures 2^20 retries).
      const int shift = attempt - 1 < 20 ? attempt - 1 : 20;
      std::this_thread::sleep_for(options_.backoff * (std::int64_t{1} << shift));
    }
  }
  return last;
}

Result<std::string> RemoteStore::get(std::string_view key) const {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  COMT_TRY_STATUS(breaker_admit("get"));
  // Only transport-level outcomes feed the breaker: not_found/corrupt are
  // answers from a healthy endpoint, not evidence it is down.
  int attempts = 1;
  Status reachable = checked_attempts(kRemoteGetSite, &attempts);
  breaker_record(reachable.ok());
  COMT_TRY_STATUS(reachable);
  if (options_.get_latency.count() > 0) {
    std::this_thread::sleep_for(options_.get_latency);
  }
  auto framed = inner_->get(key);
  if (!framed.ok()) {
    if (framed.error().code == Errc::corrupt) note_corrupt();
    return framed.error();
  }
  // Every attempt re-downloaded the framed object; only the last one
  // completed, but the wire carried all of them.
  const std::uint64_t wire =
      static_cast<std::uint64_t>(framed.value().size()) * static_cast<std::uint64_t>(attempts);
  auto value = unframe(key, std::move(framed.value()));
  if (value.ok()) {
    note_wire_get(wire);
    logical_get_bytes_.fetch_add(value.value().size(), std::memory_order_relaxed);
    if (logical_get_counter_ != nullptr) logical_get_counter_->add(value.value().size());
    note_get(wire);
  } else {
    note_corrupt();
  }
  return value;
}

Status RemoteStore::put(std::string_view key, std::string value) {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  COMT_TRY_STATUS(breaker_admit("put"));
  const std::uint64_t frame_size = value.size() + kFrameHeader;
  int attempts = 1;
  Status reachable = checked_attempts(kRemotePutSite, &attempts);
  breaker_record(reachable.ok());
  if (!reachable.ok()) {
    // Every exhausted attempt still pushed the object at the endpoint before
    // the transfer died — the wire saw all of it even though the op failed.
    note_wire_put(frame_size * static_cast<std::uint64_t>(attempts));
    return reachable;
  }
  if (options_.put_latency.count() > 0) {
    std::this_thread::sleep_for(options_.put_latency);
  }
  const std::uint64_t bytes = value.size();
  std::string framed = frame(value);
  std::optional<std::size_t> torn;
  if (faults() != nullptr) torn = faults()->check_torn(kRemotePutSite, framed.size());
  if (torn.has_value()) {
    // The upload died mid-flight: the endpoint keeps the bytes that arrived
    // and the client never completes the transfer. The truncated frame fails
    // checksum verification on the next download. The failed earlier attempts
    // sent the whole frame; this one sent the kept prefix.
    note_wire_put(frame_size * static_cast<std::uint64_t>(attempts - 1) + *torn);
    (void)inner_->put(key, framed.substr(0, *torn));
    throw support::CrashInjected{std::string(kRemotePutSite)};
  }
  COMT_TRY_STATUS(inner_->put(key, std::move(framed)));
  const std::uint64_t wire = frame_size * static_cast<std::uint64_t>(attempts);
  note_wire_put(wire);
  logical_put_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (logical_put_counter_ != nullptr) logical_put_counter_->add(bytes);
  note_put(wire);
  return Status::success();
}

Status RemoteStore::erase(std::string_view key) {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  COMT_TRY_STATUS(inner_->erase(key));
  note_erase();
  return Status::success();
}

bool RemoteStore::contains(std::string_view key) const {
  return inner_->contains(key);
}

Result<std::uint64_t> RemoteStore::size(std::string_view key) const {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  COMT_TRY(std::uint64_t framed, inner_->size(key));
  if (framed < kFrameHeader) {
    return make_error(Errc::corrupt,
                      "remote store: torn transfer for key: " + std::string(key));
  }
  return framed - kFrameHeader;
}

std::vector<KvEntry> RemoteStore::list(std::string_view prefix) const {
  std::vector<KvEntry> out = inner_->list(prefix);
  for (KvEntry& entry : out) {
    entry.size = entry.size >= kFrameHeader ? entry.size - kFrameHeader : 0;
  }
  return out;
}

Status RemoteStore::sync() {
  obs::Span span = sync_span();
  COMT_TRY_STATUS(inner_->sync());
  note_sync();
  return Status::success();
}

void RemoteStore::set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  KvStore::set_observer(tracer, metrics);
  tracer_ = tracer;
  if (metrics == nullptr) {
    retry_counter_ = nullptr;
    logical_get_counter_ = logical_put_counter_ = nullptr;
    breaker_opens_ = breaker_closes_ = breaker_fast_fail_counter_ = nullptr;
    return;
  }
  retry_counter_ = &metrics->counter("store.remote.retries");
  logical_get_counter_ = &metrics->counter("store.remote.logical_get_bytes");
  logical_put_counter_ = &metrics->counter("store.remote.logical_put_bytes");
  breaker_opens_ = &metrics->counter("store.remote.breaker.opens");
  breaker_closes_ = &metrics->counter("store.remote.breaker.closes");
  breaker_fast_fail_counter_ = &metrics->counter("store.remote.breaker.fast_fails");
}

}  // namespace comt::store
