// The generality extensions of §4.6 and the AD: the rpm database dialect and
// OCI -> Charliecloud/SIF image conversion.
#include <gtest/gtest.h>

#include "oci/convert.hpp"
#include "pkg/pkg.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

namespace comt {
namespace {

pkg::Package sample_package(std::string name) {
  pkg::Package package;
  package.name = std::move(name);
  package.version = "2.0";
  package.architecture = "amd64";
  package.depends = {"glibc"};
  package.attributes["libspeed"] = "2.5";
  package.files.push_back({"/usr/lib64/lib" + package.name + ".so", "payload", 0755});
  return package;
}

// ---- rpm dialect --------------------------------------------------------------

TEST(RpmDialectTest, PersistAndReload) {
  vfs::Filesystem fs;
  pkg::Database db;
  db.set_format(pkg::PackageFormat::rpm);
  ASSERT_TRUE(db.install(fs, sample_package("openblas")).ok());
  // rpm layout, not dpkg.
  EXPECT_TRUE(fs.is_regular(pkg::kRpmStatusPath));
  EXPECT_FALSE(fs.exists(pkg::kStatusPath));
  EXPECT_TRUE(fs.is_regular("/var/lib/rpm/files/openblas.list"));
  // rpm field names in the stanza.
  std::string status = fs.read_file(pkg::kRpmStatusPath).value();
  EXPECT_NE(status.find("Name: openblas"), std::string::npos);
  EXPECT_NE(status.find("Requires: glibc"), std::string::npos);
  EXPECT_NE(status.find("Arch: amd64"), std::string::npos);
  EXPECT_EQ(status.find("Package:"), std::string::npos);

  auto reloaded = pkg::Database::load(fs);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().format(), pkg::PackageFormat::rpm);
  const pkg::InstalledPackage* record = reloaded.value().find("openblas");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->version, "2.0");
  EXPECT_EQ(record->depends, std::vector<std::string>{"glibc"});
  EXPECT_EQ(record->attributes.at("libspeed"), "2.5");
  EXPECT_EQ(reloaded.value().owner_of("/usr/lib64/libopenblas.so"), "openblas");
}

TEST(RpmDialectTest, RemoveCleansRpmRecords) {
  vfs::Filesystem fs;
  pkg::Database db;
  db.set_format(pkg::PackageFormat::rpm);
  ASSERT_TRUE(db.install(fs, sample_package("fftw")).ok());
  ASSERT_TRUE(db.remove(fs, "fftw").ok());
  EXPECT_FALSE(fs.exists("/var/lib/rpm/files/fftw.list"));
  auto reloaded = pkg::Database::load(fs);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().size(), 0u);
}

TEST(RpmDialectTest, DebImagesStayDeb) {
  vfs::Filesystem fs;
  pkg::Database db;  // default deb
  ASSERT_TRUE(db.install(fs, sample_package("libm")).ok());
  auto reloaded = pkg::Database::load(fs);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().format(), pkg::PackageFormat::deb);
}

TEST(RpmDialectTest, DebTakesPrecedenceWhenBothPresent) {
  // A pathological image carrying both databases resolves to dpkg (the
  // Debian-derived base images our prototype targets, §4.6).
  vfs::Filesystem fs;
  ASSERT_TRUE(fs.write_file(pkg::kStatusPath, "Package: a\nVersion: 1\n\n").ok());
  ASSERT_TRUE(fs.write_file(pkg::kRpmStatusPath, "Name: b\nVersion: 1\n\n").ok());
  auto db = pkg::Database::load(fs);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().format(), pkg::PackageFormat::deb);
  EXPECT_TRUE(db.value().installed("a"));
  EXPECT_FALSE(db.value().installed("b"));
}

// ---- OCI -> flat / SIF -----------------------------------------------------------

class ConversionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<workloads::Evaluation>(
        sysmodel::SystemProfile::x86_cluster());
    app_ = workloads::find_app("hpccg");
    auto prepared = world_->prepare(*app_);
    ASSERT_TRUE(prepared.ok());
    auto image = world_->layout().find_image(prepared.value().dist_tag);
    ASSERT_TRUE(image.ok());
    image_ = std::make_unique<oci::Image>(image.value());
  }
  std::unique_ptr<workloads::Evaluation> world_;
  const workloads::AppSpec* app_ = nullptr;
  std::unique_ptr<oci::Image> image_;
};

TEST_F(ConversionFixture, FlatImageCarriesChMetadata) {
  auto flat = oci::to_flat_image(world_->layout(), *image_);
  ASSERT_TRUE(flat.ok());
  EXPECT_TRUE(flat.value().rootfs.is_regular("/ch/environment"));
  std::string environment = flat.value().rootfs.read_file("/ch/environment").value();
  EXPECT_NE(environment.find("PATH="), std::string::npos);
  EXPECT_EQ(flat.value().entrypoint, std::vector<std::string>{app_->binary_path()});
  EXPECT_EQ(flat.value().architecture, "amd64");
  // The application is in the flat tree and still runnable.
  sysmodel::ExecutionEngine engine(sysmodel::SystemProfile::x86_cluster());
  auto report = engine.run(flat.value().rootfs, app_->binary_path(),
                           app_->inputs.front().run_request(16));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
}

TEST_F(ConversionFixture, SifRoundTrip) {
  auto blob = oci::to_sif(world_->layout(), *image_);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob.value().rfind(std::string(oci::kSifMagic), 0), 0u);

  auto back = oci::from_sif(blob.value());
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back.value().architecture, "amd64");
  EXPECT_EQ(back.value().entrypoint, std::vector<std::string>{app_->binary_path()});
  // Runnable straight from the unpacked SIF.
  sysmodel::ExecutionEngine engine(sysmodel::SystemProfile::x86_cluster());
  auto report = engine.run(back.value().rootfs, app_->binary_path(),
                           app_->inputs.front().run_request(16));
  ASSERT_TRUE(report.ok());
  // Same runtime behavior as running the OCI image directly.
  auto oci_rootfs = world_->layout().flatten(*image_);
  auto direct = engine.run(oci_rootfs.value(), app_->binary_path(),
                           app_->inputs.front().run_request(16));
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ(report.value().seconds, direct.value().seconds);
}

TEST_F(ConversionFixture, SifRejectsGarbage) {
  EXPECT_FALSE(oci::from_sif("ELF...").ok());
  EXPECT_FALSE(oci::from_sif(std::string(oci::kSifMagic)).ok());
  EXPECT_FALSE(oci::from_sif(std::string(oci::kSifMagic) + "\n{bad json\n").ok());
}

}  // namespace
}  // namespace comt
