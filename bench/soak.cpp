// SLO-gated soak harness for the overload-safe rebuild fleet (the
// robustness counterpart of service_throughput's single-service load run).
//
// The run drives N tenants' rebuild traffic — a quiet tenant and a flooding
// hot tenant, plus a quota-capped one — across BOTH ISAs (an x86-64 system
// and an AArch64 system fed by the same cross-portable images) and mixed
// toolchain adapter sets, through a multi-replica Fleet whose shared
// substrate sits behind a RemoteStore with an injected flaky network and a
// circuit breaker. Phases:
//
//   1. publish + warmup   cross-portable images built once, every
//                         (image, system) rebuilt once so later phases
//                         measure a uniformly warm compile cache
//   2. solo baseline      the quiet tenant runs alone; its per-job queue
//                         waits are the fairness baseline
//   3. hot-tenant flood   hot clients keep >= 10x the quiet tenant's
//                         outstanding jobs queued while the quiet tenant
//                         repeats its baseline run
//   4. quota burst        a capped tenant bursts past its token bucket;
//                         the overflow must throttle, nobody else sheds
//   5. breaker drill      (quiescent) the network goes fully dark, the
//                         breaker must trip open, fail fast without
//                         touching the wire, and recover through its
//                         half-open probe once the network heals
//   6. convergence        after the load stops, every replica's autoscaled
//                         worker pools must shrink back to min_workers
//
// SLO gates (hard failures, applied in every mode):
//   - fairness: quiet tenant flood p99 queue wait <= 3x max(solo p99, floor)
//   - zero lost tickets: every ticket reaches a terminal state
//   - zero failed tickets: the flaky network must be absorbed by retries
//   - breaker: opens under the outage, recovers to closed, fast-fails
//     without consuming network attempts
//   - autoscaler: scaled up under the flood, converged back to min after
//
// Usage: soak [--smoke] [--duration-s D] [--quiet-waves N] [--hot-clients N]
//             [--floor-ms F] [--json PATH]
//   --smoke        seconds-scale run for CI (flood ~1.5 s).
//   --duration-s   minimum flood wall time; the full run defaults to 45 s and
//                  is minutes-capable (e.g. --duration-s 300).
//   On hosts with one hardware thread the full run auto-downscales its heavy
//   rows (duration, clients, replicas) and records that provenance in the
//   JSON.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "buildexec/builder.hpp"
#include "core/backend.hpp"
#include "dockerfile/dockerfile.hpp"
#include "fleet/fleet.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "registry/registry.hpp"
#include "service/service.hpp"
#include "store/remote.hpp"
#include "store/store.hpp"
#include "support/fault.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

/// Builds `app` from its cross-portable script (ISA-specific flags dropped)
/// on the amd64 user side and pushes the extended image — one publish serves
/// both the x86 and the AArch64 target system.
Result<std::string> publish_cross(registry::Registry& hub, oci::Layout& layout,
                                  buildexec::ImageBuilder& builder,
                                  const workloads::AppSpec& app) {
  std::string script = workloads::dockerfile_cross_comt(app, "amd64");
  COMT_TRY(dockerfile::Dockerfile file, dockerfile::parse(script));
  buildexec::BuildRecord record;
  std::string dist_tag = app.name + ".dist";
  COMT_TRY(oci::Image dist,
           builder.build(file, workloads::build_context(app), dist_tag, "", &record));
  (void)dist;
  COMT_TRY(oci::Image stage, layout.find_image(dist_tag + ".stage0"));
  COMT_TRY(vfs::Filesystem rootfs, layout.flatten(stage));
  COMT_TRY(oci::Image extended,
           core::comtainer_build(layout, dist_tag, workloads::base_tag("amd64"),
                                 record, rootfs));
  (void)extended;
  std::string name = "hub/" + app.name;
  COMT_TRY_STATUS(hub.push(layout, dist_tag + "+coM", name, "1.0"));
  return name;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double round3(double value) { return std::round(value * 1000.0) / 1000.0; }

double since_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

int write_file(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(content.data(), 1, content.size(), out);
  std::fclose(out);
  return 0;
}

/// Every ticket the harness submits settles here exactly once; anything that
/// cannot be shown terminal counts as lost — the zero-lost-tickets gate.
struct Ledger {
  std::mutex mutex;
  std::size_t total = 0;
  std::size_t succeeded = 0;
  std::size_t throttled = 0;
  std::size_t failed = 0;
  std::size_t other = 0;
  std::size_t lost = 0;

  void settle(const Result<service::TicketStatus>& done) {
    std::lock_guard<std::mutex> lock(mutex);
    ++total;
    if (!done.ok() || !service::is_terminal(done.value().state)) {
      ++lost;
      return;
    }
    switch (done.value().state) {
      case service::JobState::succeeded: ++succeeded; break;
      case service::JobState::throttled: ++throttled; break;
      case service::JobState::failed: ++failed; break;
      default: ++other; break;
    }
  }
};

struct WaveJob {
  std::string image;
  std::string system;
};

/// Submits one tenant wave as a burst, waits every ticket, settles it, and
/// appends succeeded jobs' queue waits to `waits`.
void run_wave(fleet::Fleet& fleet, const std::vector<WaveJob>& wave,
              const std::string& tenant, service::Priority priority, Ledger& ledger,
              std::vector<double>* waits) {
  std::vector<fleet::FleetTicket> tickets;
  tickets.reserve(wave.size());
  for (const WaveJob& job : wave) {
    service::SubmitRequest request;
    request.name = job.image;
    request.tag = "1.0";
    request.system = job.system;
    request.priority = priority;
    request.tenant = tenant;
    auto ticket = fleet.submit(request);
    if (!ticket.ok()) {
      std::lock_guard<std::mutex> lock(ledger.mutex);
      ++ledger.total;
      ++ledger.lost;
      continue;
    }
    tickets.push_back(ticket.value());
  }
  for (const fleet::FleetTicket& ticket : tickets) {
    auto done = fleet.wait(ticket);
    ledger.settle(done);
    if (waits != nullptr && done.ok() &&
        done.value().state == service::JobState::succeeded) {
      waits->push_back(done.value().trace.queue_ms);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int quiet_waves = 0;
  int hot_clients = 0;
  double floor_ms = 25.0;
  double duration_s = 0.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--duration-s") == 0 && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--quiet-waves") == 0 && i + 1 < argc) {
      quiet_waves = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--hot-clients") == 0 && i + 1 < argc) {
      hot_clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--floor-ms") == 0 && i + 1 < argc) {
      floor_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const unsigned host_threads = std::max(1u, std::thread::hardware_concurrency());
  bool heavy_skipped = false;
  std::size_t replicas = smoke ? 2 : 3;
  int hot_apps = smoke ? 3 : 5;
  int hot_burst = 2;  // each hot client keeps this many waves outstanding
  if (quiet_waves <= 0) quiet_waves = smoke ? 4 : 24;
  if (hot_clients <= 0) hot_clients = smoke ? 2 : 4;
  if (duration_s <= 0.0) duration_s = smoke ? 1.5 : 45.0;
  if (!smoke && host_threads <= 1) {
    // A one-thread host serializes the whole flood; the heavy full-scale rows
    // would measure the scheduler of the host, not of the fleet. Down-scale
    // them and say so in the provenance.
    heavy_skipped = true;
    replicas = 2;
    hot_apps = 3;
    quiet_waves = std::min(quiet_waves, 8);
    hot_clients = std::min(hot_clients, 2);
    duration_s = std::min(duration_s, 8.0);
    std::printf("NOTE: 1 hardware thread — heavy rows auto-skipped "
                "(downscaled to %d hot clients, %zu replicas, %.0f s flood)\n",
                hot_clients, replicas, duration_s);
  }
  const double flood_target_ms = duration_s * 1000.0;
  const double solo_target_ms = flood_target_ms / 3.0;
  // The quiet tenant's cadence: one wave, then a short think pause — the same
  // pattern in the solo and flood phases, so the two p99s are comparable.
  const auto quiet_think = std::chrono::milliseconds(5);

  // Cross-portable app mix: every app here builds on amd64 and crosses to the
  // AArch64 system (none is ISA-locked). The hot tenant floods with its set;
  // the quiet tenant owns a distinct app so its jobs never coalesce with the
  // flood and its queue waits are genuinely its own.
  const std::vector<const char*> hot_names = {"minimd", "comd", "hpccg", "minife",
                                              "miniaero"};
  const char* quiet_name = "miniamr";

  // ---- publish --------------------------------------------------------------
  registry::Registry hub;
  oci::Layout build_layout;
  if (!workloads::install_user_images(build_layout, "amd64").ok()) {
    std::fprintf(stderr, "installing user-side images failed\n");
    return 1;
  }
  buildexec::ImageBuilder builder(build_layout);
  builder.set_apt_source(&workloads::ubuntu_repo("amd64"));

  std::vector<std::string> hot_images;
  for (int i = 0; i < hot_apps; ++i) {
    const workloads::AppSpec* app = workloads::find_app(hot_names[static_cast<std::size_t>(i)]);
    if (app == nullptr) {
      std::fprintf(stderr, "%s missing from corpus\n", hot_names[static_cast<std::size_t>(i)]);
      return 1;
    }
    auto published = publish_cross(hub, build_layout, builder, *app);
    if (!published.ok()) {
      std::fprintf(stderr, "publish %s: %s\n", app->name.c_str(),
                   published.error().to_string().c_str());
      return 1;
    }
    hot_images.push_back(published.value());
  }
  const workloads::AppSpec* quiet_app = workloads::find_app(quiet_name);
  if (quiet_app == nullptr) {
    std::fprintf(stderr, "%s missing from corpus\n", quiet_name);
    return 1;
  }
  auto quiet_published = publish_cross(hub, build_layout, builder, *quiet_app);
  if (!quiet_published.ok()) {
    std::fprintf(stderr, "publish %s: %s\n", quiet_name,
                 quiet_published.error().to_string().c_str());
    return 1;
  }
  const std::string quiet_image = quiet_published.value();

  // ---- fleet over a flaky remote substrate ----------------------------------
  obs::MetricsRegistry metrics;
  support::FaultInjector net_faults;     // the simulated network
  support::FaultInjector compile_faults; // wobbly compile nodes
  hub.set_fault_injector(&net_faults);

  store::RemoteStore::Options remote_options;
  remote_options.get_latency = std::chrono::microseconds(200);
  remote_options.put_latency = std::chrono::microseconds(200);
  remote_options.max_attempts = 3;
  remote_options.backoff = std::chrono::microseconds(5);
  remote_options.breaker_threshold = 4;
  remote_options.breaker_cooldown = std::chrono::milliseconds(50);
  auto remote = std::make_shared<store::RemoteStore>(
      std::make_shared<store::MemStore>(), remote_options);
  remote->set_fault_injector(&net_faults);
  remote->set_observer(nullptr, &metrics);
  if (!remote->put("soak/sentinel", "ok").ok()) {
    std::fprintf(stderr, "sentinel put failed\n");
    return 1;
  }

  // Adapter sets give the two systems genuinely different rebuild pipelines:
  // the x86 side runs the paper's "adapted" set, the AArch64 side crosses the
  // ISA first. Declared before the fleet so they outlive every rebuild.
  core::CrossIsaAdapter cross;
  core::LibraryAdapter libo;
  core::ToolchainAdapter cxxo;

  fleet::FleetOptions options;
  options.replicas = replicas;
  options.queue_capacity = 4096;
  options.workers_per_system = 1;
  options.max_attempts = 3;
  options.sleep_on_backoff = true;
  options.tenants["capped"] = service::TenantPolicy{1.0, 3.0, 0.0};
  options.autoscale.enabled = true;
  options.autoscale.min_workers = 1;
  options.autoscale.max_workers = 3;
  options.autoscale.interval_ms = 10;
  options.autoscale.up_backlog_per_worker = 1.0;
  options.autoscale.down_backlog_per_worker = 0.25;
  options.autoscale.cooldown_periods = 3;
  options.store = remote;
  options.faults = &compile_faults;
  options.metrics = &metrics;
  // Chunk-dedup the hub over the same flaky remote: every rebuilt image's
  // chunk traffic rides the retry/breaker machinery with everything else.
  options.chunked_artifacts = true;
  fleet::Fleet fleet(hub, options);

  const std::vector<std::pair<const char*, const sysmodel::SystemProfile*>> isas = {
      {"x86", &sysmodel::SystemProfile::x86_cluster()},
      {"arm", &sysmodel::SystemProfile::aarch64_cluster()},
  };
  for (const auto& [fp, profile] : isas) {
    service::TargetSystem target;
    target.profile = profile;
    target.repo = &workloads::system_repo(*profile);
    if (!workloads::install_system_images(target.base_layout, *profile).ok()) {
      std::fprintf(stderr, "installing sysenv for %s failed\n", fp);
      return 1;
    }
    target.sysenv_tag = workloads::sysenv_tag(*profile);
    target.adapters = std::strcmp(fp, "arm") == 0
                          ? std::vector<const core::SystemAdapter*>{&cross, &libo, &cxxo}
                          : std::vector<const core::SystemAdapter*>{&libo, &cxxo};
    if (!fleet.add_system(fp, target).ok()) {
      std::fprintf(stderr, "add_system(%s) failed\n", fp);
      return 1;
    }
  }

  Ledger ledger;
  std::vector<WaveJob> quiet_wave;
  for (const auto& [fp, profile] : isas) quiet_wave.push_back({quiet_image, fp});
  std::vector<WaveJob> hot_wave;
  for (int b = 0; b < hot_burst; ++b) {
    for (const std::string& image : hot_images) {
      for (const auto& [fp, profile] : isas) hot_wave.push_back({image, fp});
    }
  }

  // ---- phase 1: warmup ------------------------------------------------------
  // Rebuild every (image, system) once so the compile cache is uniformly warm
  // before anything is measured — first-build cost must not skew either the
  // solo baseline or the flood.
  auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<WaveJob> warmup = hot_wave;
    warmup.resize(static_cast<std::size_t>(hot_apps) * isas.size());  // one burst copy
    for (const WaveJob& job : quiet_wave) warmup.push_back(job);
    run_wave(fleet, warmup, "warmup", service::Priority::normal, ledger, nullptr);
    std::lock_guard<std::mutex> lock(ledger.mutex);
    if (ledger.succeeded != ledger.total) {
      std::fprintf(stderr, "SOAK: warmup left %zu of %zu jobs unsucceeded\n",
                   ledger.total - ledger.succeeded, ledger.total);
      return 1;
    }
  }
  double warmup_ms = since_ms(t0);

  // The soak's steady-state weather: every 9th download and every 11th upload
  // fails (absorbed inside the RemoteStore's 3-attempt retry loop, so no
  // operation — and no ticket — may fail from it), plus a burst of registry
  // pull faults and one compile fault that the service-level retry must eat.
  net_faults.fail_every(store::kRemoteGetSite, 9);
  net_faults.fail_every(store::kRemotePutSite, 11);
  net_faults.fail_next(registry::kPullFaultSite, 2);
  compile_faults.fail_next(core::kCompileFaultSite, 1);

  // ---- phase 2: solo baseline ----------------------------------------------
  t0 = std::chrono::steady_clock::now();
  std::vector<double> solo_waits;
  for (int wave = 0; wave < quiet_waves || since_ms(t0) < solo_target_ms; ++wave) {
    run_wave(fleet, quiet_wave, "quiet", service::Priority::normal, ledger, &solo_waits);
    std::this_thread::sleep_for(quiet_think);
  }
  double solo_ms = since_ms(t0);
  double solo_p99 = percentile(solo_waits, 99);

  // ---- phase 3: hot-tenant flood -------------------------------------------
  // Outstanding hot jobs by construction: hot_clients x hot_wave vs the quiet
  // tenant's single wave — the >= 10x flood the fairness SLO is gated under.
  const double flood_factor_built =
      static_cast<double>(hot_clients) * static_cast<double>(hot_wave.size()) /
      static_cast<double>(quiet_wave.size());
  t0 = std::chrono::steady_clock::now();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hot_tickets{0};
  std::vector<std::vector<double>> hot_waits(static_cast<std::size_t>(hot_clients));
  std::vector<std::thread> hot_threads;
  for (int c = 0; c < hot_clients; ++c) {
    hot_threads.emplace_back([&, c] {
      while (!stop.load(std::memory_order_relaxed)) {
        run_wave(fleet, hot_wave, "hot", service::Priority::interactive, ledger,
                 &hot_waits[static_cast<std::size_t>(c)]);
        hot_tickets.fetch_add(hot_wave.size(), std::memory_order_relaxed);
      }
    });
  }
  std::vector<double> flood_waits;
  std::size_t quiet_flood_tickets = 0;
  for (int wave = 0; wave < quiet_waves || since_ms(t0) < flood_target_ms; ++wave) {
    run_wave(fleet, quiet_wave, "quiet", service::Priority::normal, ledger,
             &flood_waits);
    quiet_flood_tickets += quiet_wave.size();
    std::this_thread::sleep_for(quiet_think);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : hot_threads) thread.join();
  double flood_ms = since_ms(t0);
  double flood_p99 = percentile(flood_waits, 99);
  std::vector<double> hot_all;
  for (const auto& waits : hot_waits) hot_all.insert(hot_all.end(), waits.begin(), waits.end());
  double hot_p99 = percentile(hot_all, 99);
  const double flood_factor_seen =
      quiet_flood_tickets == 0
          ? 0.0
          : static_cast<double>(hot_tickets.load()) /
                static_cast<double>(quiet_flood_tickets);

  // ---- phase 4: quota burst -------------------------------------------------
  // Ten rapid submissions against a burst-3 bucket (per replica, behind the
  // round-robin balancer). The overflow must throttle; throttled tickets are
  // terminal immediately and count toward the zero-lost gate like any other.
  std::size_t throttled_before = ledger.throttled;
  {
    std::vector<fleet::FleetTicket> tickets;
    for (int i = 0; i < 10; ++i) {
      service::SubmitRequest request;
      request.name = quiet_image;
      request.tag = "1.0";
      request.system = "x86";
      request.tenant = "capped";
      auto ticket = fleet.submit(request);
      if (ticket.ok()) tickets.push_back(ticket.value());
    }
    for (const fleet::FleetTicket& ticket : tickets) ledger.settle(fleet.wait(ticket));
  }
  std::size_t quota_throttled = ledger.throttled - throttled_before;

  // ---- phase 5: breaker drill (quiescent) -----------------------------------
  // No tickets are in flight, so the endpoint outage exercises the breaker
  // without failing anyone: trip it open, prove fast-fail leaves the wire
  // untouched, heal the network, and recover through the half-open probe.
  const std::uint64_t opens_before = metrics.counter_value("store.remote.breaker.opens");
  net_faults.clear(store::kRemoteGetSite);
  net_faults.fail_every(store::kRemoteGetSite, 1);  // the endpoint goes dark
  for (int i = 0; i < remote_options.breaker_threshold; ++i) {
    if (remote->get("soak/sentinel").ok()) {
      std::fprintf(stderr, "SOAK: get succeeded through a dark endpoint\n");
      return 1;
    }
  }
  if (remote->breaker_state() != store::RemoteStore::BreakerState::open) {
    std::fprintf(stderr, "SOAK: breaker still closed after %d consecutive failures\n",
                 remote_options.breaker_threshold);
    return 1;
  }
  const std::uint64_t wire_calls = net_faults.calls(store::kRemoteGetSite);
  if (remote->get("soak/sentinel").ok()) {
    std::fprintf(stderr, "SOAK: open breaker admitted an operation\n");
    return 1;
  }
  if (net_faults.calls(store::kRemoteGetSite) != wire_calls) {
    std::fprintf(stderr, "SOAK: fast-fail still touched the network\n");
    return 1;
  }
  net_faults.clear(store::kRemoteGetSite);  // the network heals
  std::this_thread::sleep_for(remote_options.breaker_cooldown * 3);
  auto probed = remote->get("soak/sentinel");
  if (!probed.ok() || probed.value() != "ok") {
    std::fprintf(stderr, "SOAK: half-open probe failed after the network healed\n");
    return 1;
  }
  const bool breaker_recovered =
      remote->breaker_state() == store::RemoteStore::BreakerState::closed;
  const std::uint64_t breaker_opens =
      metrics.counter_value("store.remote.breaker.opens") - opens_before;
  const std::uint64_t breaker_closes = metrics.counter_value("store.remote.breaker.closes");
  const std::uint64_t breaker_fast_fails = remote->breaker_fast_fails();

  // ---- phase 6: autoscaler convergence --------------------------------------
  t0 = std::chrono::steady_clock::now();
  bool converged = false;
  while (since_ms(t0) < 15000.0) {
    converged = true;
    for (std::size_t r = 0; r < replicas && converged; ++r) {
      for (const auto& [fp, profile] : isas) {
        const std::string gauge = "service.autoscale.workers.replica" +
                                  std::to_string(r) + "." + fp;
        if (metrics.gauge_value(gauge) !=
            static_cast<double>(options.autoscale.min_workers)) {
          converged = false;
          break;
        }
      }
    }
    if (converged) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  double converge_ms = since_ms(t0);
  fleet.drain();

  // ---- report + gates -------------------------------------------------------
  fleet::FleetStats stats = fleet.stats();
  const double fairness_base = std::max(solo_p99, floor_ms);
  const double fairness_ratio = flood_p99 / fairness_base;
  const std::uint64_t net_injected = net_faults.injected(store::kRemoteGetSite) +
                                     net_faults.injected(store::kRemotePutSite);

  std::printf("soak: %d hot clients x %zu-job waves vs quiet tenant, "
              "%zu replicas, both ISAs, flaky network\n",
              hot_clients, hot_wave.size(), replicas);
  std::printf("%-28s %10zu (%zu succeeded, %zu throttled, %zu failed, %zu lost)\n",
              "tickets", ledger.total, ledger.succeeded, ledger.throttled,
              ledger.failed, ledger.lost);
  std::printf("%-28s %10.1fx built, %.1fx observed\n", "hot:quiet flood factor",
              flood_factor_built, flood_factor_seen);
  std::printf("%-28s %10.2f ms (solo %.2f ms, floor %.2f ms) -> ratio %.2f\n",
              "quiet p99 queue wait", flood_p99, solo_p99, floor_ms, fairness_ratio);
  std::printf("%-28s %10.2f ms\n", "hot p99 queue wait", hot_p99);
  std::printf("%-28s %10zu up, %zu down, converged=%s in %.0f ms\n", "scale events",
              stats.scale_ups, stats.scale_downs, converged ? "yes" : "no",
              converge_ms);
  std::printf("%-28s %10llu opens, %llu closes, %llu fast fails, recovered=%s\n",
              "breaker",
              static_cast<unsigned long long>(breaker_opens),
              static_cast<unsigned long long>(breaker_closes),
              static_cast<unsigned long long>(breaker_fast_fails),
              breaker_recovered ? "yes" : "no");
  // Chunk-transfer economics: rebuilt images share almost everything with
  // what the hub already holds, so the wire cost per rebuild is the delta.
  registry::Stats hub_stats = hub.stats();
  const std::uint64_t chunk_probes = hub_stats.chunks_moved + hub_stats.chunks_reused;
  const double chunk_hit_rate =
      chunk_probes == 0
          ? 0.0
          : static_cast<double>(hub_stats.chunks_reused) / static_cast<double>(chunk_probes);
  const double moved_per_rebuild =
      ledger.succeeded == 0 ? 0.0
                            : static_cast<double>(hub_stats.chunk_bytes_moved) /
                                  static_cast<double>(ledger.succeeded);
  std::printf("%-28s %9.1f%% (%llu moved, %llu reused)\n", "chunk hit rate",
              100.0 * chunk_hit_rate,
              static_cast<unsigned long long>(hub_stats.chunks_moved),
              static_cast<unsigned long long>(hub_stats.chunks_reused));
  std::printf("%-28s %10.2f MiB (%.2f MiB/rebuild, dedup %.2fx)\n",
              "chunk bytes moved",
              workloads::to_sim_mib(hub_stats.chunk_bytes_moved),
              workloads::to_sim_mib(static_cast<std::uint64_t>(moved_per_rebuild)),
              fleet.chunk_store() == nullptr ? 0.0
                                             : fleet.chunk_store()->dedup_ratio());
  std::printf("%-28s %10llu network faults injected, %llu store retries\n",
              "flakiness",
              static_cast<unsigned long long>(net_injected),
              static_cast<unsigned long long>(remote->retries()));
  std::printf("%-28s %10zu throttled of 10 capped submissions\n", "quota burst",
              quota_throttled);
  std::printf("%-28s warmup %.0f / solo %.0f / flood %.0f ms\n", "phase wall",
              warmup_ms, solo_ms, flood_ms);

  int gate_failures = 0;
  auto gate = [&gate_failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "SOAK GATE: %s\n", what);
      ++gate_failures;
    }
  };
  gate(ledger.lost == 0, "lost tickets (non-terminal after wait)");
  gate(ledger.failed == 0, "failed tickets — the flaky network must be absorbed");
  gate(fairness_ratio <= 3.0,
       "fairness: quiet tenant flood p99 exceeds 3x its solo baseline");
  gate(flood_factor_built >= 10.0, "flood under-provisioned (< 10x quiet)");
  gate(quota_throttled >= 1, "quota burst never throttled");
  gate(stats.scale_ups >= 1, "autoscaler never scaled up under the flood");
  gate(converged, "autoscaler did not converge back to min workers");
  gate(breaker_opens >= 1 && breaker_recovered && breaker_closes >= 1,
       "breaker did not trip open and recover through half-open");
  gate(breaker_fast_fails >= 1, "open breaker never failed fast");
  gate(net_injected >= 1, "flaky network never actually fired");
  gate(chunk_probes > 0, "chunk dedup never saw a rebuild push");
  gate(hub_stats.chunks_reused > 0,
       "rebuild pushes never reused a chunk the hub already held");

  if (!json_path.empty()) {
    json::Object doc;
    doc.emplace_back("mode", json::Value(std::string(smoke ? "smoke" : "full")));
    doc.emplace_back("host_threads", json::Value(static_cast<std::uint64_t>(host_threads)));
    doc.emplace_back("heavy_rows_skipped", json::Value(heavy_skipped));
    if (heavy_skipped) {
      doc.emplace_back("provenance",
                       json::Value(std::string("full-scale rows downscaled: host has "
                                               "1 hardware thread")));
    }
    doc.emplace_back("duration_s", json::Value(round3(duration_s)));
    doc.emplace_back("replicas", json::Value(static_cast<std::uint64_t>(replicas)));
    doc.emplace_back("hot_clients", json::Value(hot_clients));
    doc.emplace_back("quiet_waves", json::Value(quiet_waves));
    doc.emplace_back("hot_wave_jobs", json::Value(static_cast<std::uint64_t>(hot_wave.size())));
    json::Object fairness;
    fairness.emplace_back("solo_p99_ms", json::Value(round3(solo_p99)));
    fairness.emplace_back("flood_p99_ms", json::Value(round3(flood_p99)));
    fairness.emplace_back("hot_flood_p99_ms", json::Value(round3(hot_p99)));
    fairness.emplace_back("floor_ms", json::Value(round3(floor_ms)));
    fairness.emplace_back("ratio", json::Value(round3(fairness_ratio)));
    fairness.emplace_back("limit", json::Value(3.0));
    doc.emplace_back("fairness", json::Value(std::move(fairness)));
    doc.emplace_back("flood_factor_built", json::Value(round3(flood_factor_built)));
    doc.emplace_back("flood_factor_observed", json::Value(round3(flood_factor_seen)));
    json::Object tickets_obj;
    tickets_obj.emplace_back("total", json::Value(static_cast<std::uint64_t>(ledger.total)));
    tickets_obj.emplace_back("succeeded",
                             json::Value(static_cast<std::uint64_t>(ledger.succeeded)));
    tickets_obj.emplace_back("throttled",
                             json::Value(static_cast<std::uint64_t>(ledger.throttled)));
    tickets_obj.emplace_back("failed", json::Value(static_cast<std::uint64_t>(ledger.failed)));
    tickets_obj.emplace_back("lost", json::Value(static_cast<std::uint64_t>(ledger.lost)));
    doc.emplace_back("tickets", json::Value(std::move(tickets_obj)));
    json::Object breaker_obj;
    breaker_obj.emplace_back("opens", json::Value(breaker_opens));
    breaker_obj.emplace_back("closes", json::Value(breaker_closes));
    breaker_obj.emplace_back("fast_fails", json::Value(breaker_fast_fails));
    breaker_obj.emplace_back("recovered", json::Value(breaker_recovered));
    doc.emplace_back("breaker", json::Value(std::move(breaker_obj)));
    json::Object autoscale_obj;
    autoscale_obj.emplace_back("scale_ups",
                               json::Value(static_cast<std::uint64_t>(stats.scale_ups)));
    autoscale_obj.emplace_back("scale_downs",
                               json::Value(static_cast<std::uint64_t>(stats.scale_downs)));
    autoscale_obj.emplace_back("converged", json::Value(converged));
    autoscale_obj.emplace_back("converge_ms", json::Value(round3(converge_ms)));
    doc.emplace_back("autoscale", json::Value(std::move(autoscale_obj)));
    json::Object faults_obj;
    faults_obj.emplace_back("network_injected", json::Value(net_injected));
    faults_obj.emplace_back("store_retries", json::Value(remote->retries()));
    faults_obj.emplace_back("service_retries",
                            json::Value(static_cast<std::uint64_t>(
                                metrics.counter_value("service.retries"))));
    doc.emplace_back("faults", json::Value(std::move(faults_obj)));
    doc.emplace_back("quota_throttled",
                     json::Value(static_cast<std::uint64_t>(quota_throttled)));
    json::Object transfer_obj;
    transfer_obj.emplace_back("chunk_hit_rate_pct",
                              json::Value(round3(100.0 * chunk_hit_rate)));
    transfer_obj.emplace_back("bytes_moved", json::Value(hub_stats.chunk_bytes_moved));
    transfer_obj.emplace_back("bytes_deduped", json::Value(hub_stats.chunk_bytes_deduped));
    transfer_obj.emplace_back(
        "mib_moved_per_rebuild",
        json::Value(round3(workloads::to_sim_mib(
            static_cast<std::uint64_t>(moved_per_rebuild)))));
    transfer_obj.emplace_back(
        "dedup_ratio",
        json::Value(round3(fleet.chunk_store() == nullptr
                               ? 0.0
                               : fleet.chunk_store()->dedup_ratio())));
    doc.emplace_back("transfer", json::Value(std::move(transfer_obj)));
    json::Object wall;
    wall.emplace_back("warmup_ms", json::Value(round3(warmup_ms)));
    wall.emplace_back("solo_ms", json::Value(round3(solo_ms)));
    wall.emplace_back("flood_ms", json::Value(round3(flood_ms)));
    doc.emplace_back("phase_wall", json::Value(std::move(wall)));
    if (write_file(json_path, json::serialize_pretty(json::Value(std::move(doc)))) != 0) {
      return 1;
    }
    std::printf("results written to %s\n", json_path.c_str());
  }

  if (gate_failures != 0) {
    std::fprintf(stderr, "SOAK: %d gate(s) failed\n", gate_failures);
    return 1;
  }
  std::printf("all SLO gates passed\n");
  return 0;
}
