#include "transfer/chunker.hpp"

#include <array>

#include "store/wire.hpp"
#include "support/sha256.hpp"

namespace comt::transfer {
namespace {

/// splitmix64 (Steele et al.) — the generator behind the gear table. Chosen
/// for full 64-bit avalanche from a counter, so every table entry is an
/// independent-looking constant derived from one fixed seed.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// The gear table: 256 fixed random constants, one per byte value. The seed
/// is part of the wire protocol — changing it re-chunks the world, so it is
/// pinned here and nowhere configurable.
const std::array<std::uint64_t, 256>& gear_table() {
  static const std::array<std::uint64_t, 256> table = [] {
    std::array<std::uint64_t, 256> out{};
    std::uint64_t state = 0x636F4D7461696E65ULL;  // "coMtaine"
    for (std::uint64_t& entry : out) entry = splitmix64(state);
    return out;
  }();
  return table;
}

constexpr std::string_view kManifestMagic = "CMCM1";  // coMtainer chunk manifest v1

}  // namespace

Status ChunkerParams::validate() const {
  if (avg_size == 0 || (avg_size & (avg_size - 1)) != 0) {
    return make_error(Errc::invalid_argument,
                      "chunker: avg_size must be a nonzero power of two");
  }
  if (min_size == 0 || min_size > avg_size || avg_size > max_size) {
    return make_error(Errc::invalid_argument,
                      "chunker: need 0 < min_size <= avg_size <= max_size");
  }
  return Status::success();
}

std::vector<std::pair<std::uint64_t, std::uint32_t>> chunk_boundaries(
    std::string_view data, const ChunkerParams& params) {
  const std::array<std::uint64_t, 256>& gear = gear_table();
  const std::uint64_t mask = params.avg_size - 1;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> out;
  std::size_t start = 0;
  while (start < data.size()) {
    const std::size_t remaining = data.size() - start;
    std::size_t cut = remaining;  // the tail is its own (possibly short) chunk
    if (remaining > params.min_size) {
      const std::size_t limit = remaining < params.max_size ? remaining : params.max_size;
      // The hash restarts at every chunk start, so a boundary decision depends
      // only on the ~64 bytes behind it (the shift ages old bytes out of the
      // 64-bit state). That locality is the resync property.
      std::uint64_t hash = 0;
      std::size_t pos = 0;
      cut = limit;
      for (; pos < limit; ++pos) {
        hash = (hash << 1) + gear[static_cast<unsigned char>(data[start + pos])];
        if (pos + 1 >= params.min_size && (hash & mask) == 0) {
          cut = pos + 1;
          break;
        }
      }
    }
    out.emplace_back(static_cast<std::uint64_t>(start), static_cast<std::uint32_t>(cut));
    start += cut;
  }
  return out;
}

Result<ChunkManifest> build_manifest(std::string_view blob, const ChunkerParams& params) {
  COMT_TRY_STATUS(params.validate());
  ChunkManifest manifest;
  manifest.blob_digest = "sha256:" + Sha256::hex_digest(blob);
  manifest.total_size = blob.size();
  for (const auto& [offset, size] : chunk_boundaries(blob, params)) {
    ChunkRef ref;
    ref.offset = offset;
    ref.size = size;
    ref.digest = "sha256:" + Sha256::hex_digest(blob.substr(offset, size));
    manifest.chunks.push_back(std::move(ref));
  }
  return manifest;
}

std::string ChunkManifest::serialize() const {
  std::string payload;
  payload.append(kManifestMagic);
  store::wire::put_str(payload, blob_digest);
  store::wire::put_u64(payload, total_size);
  store::wire::put_u32(payload, static_cast<std::uint32_t>(chunks.size()));
  for (const ChunkRef& chunk : chunks) {
    store::wire::put_u64(payload, chunk.offset);
    store::wire::put_u32(payload, chunk.size);
    store::wire::put_str(payload, chunk.digest);
  }
  store::wire::put_u64(payload, store::wire::fnv1a64(
                                    std::string_view(payload).substr(kManifestMagic.size())));
  return payload;
}

Result<ChunkManifest> ChunkManifest::parse(std::string_view bytes) {
  if (bytes.size() < kManifestMagic.size() + 8 ||
      bytes.substr(0, kManifestMagic.size()) != kManifestMagic) {
    return make_error(Errc::corrupt, "chunk manifest: bad magic");
  }
  const std::string_view body =
      bytes.substr(kManifestMagic.size(), bytes.size() - kManifestMagic.size() - 8);
  store::wire::Reader trailer{bytes.substr(bytes.size() - 8)};
  if (store::wire::fnv1a64(body) != trailer.u64()) {
    return make_error(Errc::corrupt, "chunk manifest: checksum mismatch");
  }
  store::wire::Reader reader{body};
  ChunkManifest manifest;
  manifest.blob_digest = reader.str();
  manifest.total_size = reader.u64();
  const std::uint32_t count = reader.u32();
  for (std::uint32_t i = 0; i < count && reader.ok; ++i) {
    ChunkRef chunk;
    chunk.offset = reader.u64();
    chunk.size = reader.u32();
    chunk.digest = reader.str();
    manifest.chunks.push_back(std::move(chunk));
  }
  if (!reader.ok || !reader.at_end()) {
    return make_error(Errc::corrupt, "chunk manifest: truncated");
  }
  return manifest;
}

}  // namespace comt::transfer
