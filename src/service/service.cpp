#include "service/service.hpp"

#include <chrono>
#include <cmath>
#include <optional>
#include <thread>
#include <utility>

#include "json/json.hpp"
#include "obs/stopwatch.hpp"

namespace comt::service {
namespace {

/// Local tag a job pulls the extended image under inside its private
/// workspace; comtainer_rebuild derives "work+coMre" from it.
constexpr std::string_view kWorkTag = "work+coM";
constexpr std::string_view kWorkRebuiltTag = "work+coMre";

/// Deterministic jitter in [0, 1): splitmix64 finalizer over (ticket, attempt).
/// No global RNG — the same job retries with the same delays on every run.
double jitter01(std::uint64_t ticket, int attempt) {
  std::uint64_t x = ticket * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(attempt);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Transient failures are retried; everything else (not_found, corrupt,
/// unsupported, …) is a property of the request and permanent.
bool is_retryable(const Error& error) { return error.code == Errc::failed; }

/// Journal-store key of a request: one journal per (image reference, system).
std::string journal_key(const SubmitRequest& request) {
  return request.name + ":" + request.tag + "|" + request.system;
}

/// The submit request, serialized into the journal metadata so recover() on a
/// later service incarnation can rebuild and resubmit it.
std::string request_metadata(const SubmitRequest& request) {
  json::Object object;
  object.emplace_back("name", json::Value(request.name));
  object.emplace_back("tag", json::Value(request.tag));
  object.emplace_back("system", json::Value(request.system));
  object.emplace_back("priority",
                      json::Value(static_cast<double>(static_cast<int>(request.priority))));
  return json::serialize(json::Value(std::move(object)));
}

bool parse_request_metadata(const std::string& metadata, SubmitRequest& request) {
  auto parsed = json::parse(metadata);
  if (!parsed.ok() || !parsed.value().is_object()) return false;
  for (const auto& [field, value] : parsed.value().as_object()) {
    if (field == "name" && value.is_string()) request.name = value.as_string();
    if (field == "tag" && value.is_string()) request.tag = value.as_string();
    if (field == "system" && value.is_string()) request.system = value.as_string();
    if (field == "priority" && value.is_number()) {
      request.priority = static_cast<Priority>(static_cast<int>(value.as_number()));
    }
  }
  return !request.name.empty() && !request.tag.empty() && !request.system.empty();
}

/// Releases the hub pins a journaled attempt takes on its source image — on
/// every exit path, including an injected crash unwinding.
class HubPinGuard {
 public:
  HubPinGuard(registry::Registry& hub, const SubmitRequest& request)
      : hub_(&hub), name_(request.name), tag_(request.tag) {
    pinned_ = hub_->pin(name_, tag_).ok();
  }
  ~HubPinGuard() {
    if (pinned_) (void)hub_->unpin(name_, tag_);
  }
  HubPinGuard(const HubPinGuard&) = delete;
  HubPinGuard& operator=(const HubPinGuard&) = delete;

 private:
  registry::Registry* hub_;
  std::string name_, tag_;
  bool pinned_ = false;
};

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::queued: return "queued";
    case JobState::running: return "running";
    case JobState::succeeded: return "succeeded";
    case JobState::failed: return "failed";
    case JobState::rejected: return "rejected";
    case JobState::expired: return "expired";
    case JobState::drained: return "drained";
  }
  return "unknown";
}

bool is_terminal(JobState state) {
  return state != JobState::queued && state != JobState::running;
}

std::string fingerprint(const sysmodel::SystemProfile& profile) {
  return profile.name + "/" + profile.arch + "/" + profile.native_toolchain + "/" +
         profile.native_march;
}

/// One distinct rebuild: possibly many tickets, exactly one execution.
struct RebuildService::Job {
  SubmitRequest request;
  std::string key;  ///< manifest digest + system — the coalescing key
  std::vector<Ticket> tickets;
  JobState state = JobState::queued;
  Status result;
  std::string output;
  JobTrace trace;
  obs::Stopwatch enqueued;  ///< running since admission; read once at pickup
  obs::Span span;           ///< "service.job", ends when the job finalizes
  std::pair<int, std::uint64_t> queue_key;  ///< position while queued
};

/// Per-target state: the tenant config, its worker pool, its slice of the
/// admission queue ordered by (priority desc, arrival order).
struct RebuildService::SystemState {
  TargetSystem target;
  std::unique_ptr<sched::ThreadPool> pool;
  std::map<std::pair<int, std::uint64_t>, std::shared_ptr<Job>> queue;
};

RebuildService::RebuildService(registry::Registry& hub, ServiceOptions options)
    : hub_(hub), options_(std::move(options)) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.workers_per_system == 0) options_.workers_per_system = 1;
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  metrics_ = options_.metrics != nullptr ? options_.metrics : &own_metrics_;
  if (options_.journals != nullptr) options_.journals->set_metrics(metrics_);
  // Metrics before attach, so hydrated entries count in compile_cache.*.
  cache_.set_metrics(metrics_);
  if (options_.store != nullptr) cache_.attach(options_.store);
}

RebuildService::~RebuildService() { drain(); }

Status RebuildService::add_system(std::string fingerprint, TargetSystem target) {
  if (target.profile == nullptr || target.repo == nullptr) {
    return make_error(Errc::invalid_argument,
                      "service: target system needs a profile and a repository");
  }
  COMT_TRY_STATUS(target.base_layout.find_image(target.sysenv_tag));
  std::lock_guard<std::mutex> lock(mutex_);
  if (systems_.count(fingerprint) != 0) {
    return make_error(Errc::already_exists, "service: system already registered: " + fingerprint);
  }
  auto state = std::make_unique<SystemState>();
  state->target = std::move(target);
  state->pool = std::make_unique<sched::ThreadPool>(options_.workers_per_system);
  state->pool->set_metrics(metrics_, "service.pool");
  systems_.emplace(std::move(fingerprint), std::move(state));
  return Status::success();
}

Result<Ticket> RebuildService::submit(const SubmitRequest& request) {
  // Resolve outside the service lock (the hub has its own).
  COMT_TRY(oci::Digest digest, hub_.resolve(request.name, request.tag));

  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) {
    return make_error(Errc::failed, "service: draining, not accepting submissions");
  }
  auto sys_it = systems_.find(request.system);
  if (sys_it == systems_.end()) {
    return make_error(Errc::not_found, "service: unknown target system " + request.system);
  }
  SystemState& sys = *sys_it->second;

  Ticket ticket = next_ticket_++;
  counter("service.submitted").add();

  // Coalesce: a queued or running job for the same (image digest, system)
  // serves this ticket too.
  std::string key = digest.value + "|" + request.system;
  if (auto active = active_.find(key); active != active_.end()) {
    active->second->tickets.push_back(ticket);
    tickets_[ticket] = TicketRecord{active->second, /*coalesced=*/true};
    counter("service.coalesced").add();
    return ticket;
  }

  auto job = std::make_shared<Job>();
  job->request = request;
  job->key = key;
  job->tickets = {ticket};
  job->span = obs::maybe_span(options_.tracer, "service.job", obs::kNoSpan, "service");
  job->span.annotate("image", request.name + ":" + request.tag);
  job->span.annotate("system", request.system);
  if (!options_.replica_id.empty()) job->span.annotate("replica", options_.replica_id);
  tickets_[ticket] = TicketRecord{job, /*coalesced=*/false};

  // Bounded admission with priority-aware load shedding: a full queue sheds
  // the newest lowest-priority queued job when the arrival outranks it,
  // otherwise the arrival itself.
  if (queued_count_ >= options_.queue_capacity) {
    SystemState* worst_sys = nullptr;
    std::shared_ptr<Job> worst;
    for (auto& [name, candidate_sys] : systems_) {
      if (candidate_sys->queue.empty()) continue;
      auto last = std::prev(candidate_sys->queue.end());
      if (worst == nullptr || last->first > worst->queue_key) {
        worst = last->second;
        worst_sys = candidate_sys.get();
      }
    }
    if (worst != nullptr &&
        static_cast<int>(worst->request.priority) < static_cast<int>(request.priority)) {
      worst_sys->queue.erase(worst->queue_key);
      --queued_count_;
      counter("service.shed").add();
      finalize_locked(*worst, JobState::rejected,
                      make_error(Errc::failed,
                                 "service: load shed by a higher-priority arrival"));
    } else {
      counter("service.shed").add();
      finalize_locked(*job, JobState::rejected,
                      make_error(Errc::failed, "service: admission queue full"));
      return ticket;
    }
  }

  counter("service.admitted").add();
  job->queue_key = {-static_cast<int>(request.priority), next_seq_++};
  sys.queue.emplace(job->queue_key, job);
  ++queued_count_;
  active_[key] = job;
  sys.pool->submit([this, &sys] { run_next(sys); });
  return ticket;
}

void RebuildService::run_next(SystemState& sys) {
  std::shared_ptr<Job> job;
  JobTrace trace;
  Ticket seed = 0;
  obs::SpanId job_span = obs::kNoSpan;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    start_cv_.wait(lock, [this] { return !paused_ || draining_; });
    // The queue may have shrunk under us (eviction, drain): one runner task
    // is submitted per admitted job, so a missing job just means this runner
    // has nothing to do.
    if (sys.queue.empty()) return;
    auto it = sys.queue.begin();
    job = it->second;
    sys.queue.erase(it);
    --queued_count_;
    job->trace.queue_ms = job->enqueued.elapsed_ms();
    if (job->request.deadline_ms > 0 && job->trace.queue_ms > job->request.deadline_ms) {
      counter("service.expired").add();
      finalize_locked(*job, JobState::expired,
                      make_error(Errc::failed, "service: queue-wait deadline exceeded"));
      return;
    }
    job->state = JobState::running;
    ++running_count_;
    // Work on a private copy of the trace: status() snapshots job->trace
    // under the lock while this worker runs. The ticket seeding the backoff
    // jitter is captured here too — the tickets vector can grow concurrently
    // as requests coalesce onto this job.
    trace = job->trace;
    seed = job->tickets.front();
    job_span = job->span.id();
  }

  // The heavy part — no service lock held. job->request/key are immutable
  // after submit, so reading them unlocked is safe.
  Status result = Status::success();
  std::string output;
  bool skip_execute = false;
  bool hold_lease = false;
  std::uint64_t lease_epoch = 0;
  if (options_.coordinator != nullptr) {
    auto grant = options_.coordinator->acquire(job->key);
    if (grant.ok()) {
      trace.lease_wait_ms += grant.value().wait_ms;
      if (grant.value().reuse) {
        // Another replica already built this key; adopt its published image.
        trace.fleet_reuse = true;
        output = grant.value().output;
        skip_execute = true;
        counter("service.fleet_reused").add();
      } else {
        hold_lease = true;
        lease_epoch = grant.value().epoch;
        trace.lease_stolen = grant.value().stolen;
      }
    } else {
      // Coordination failing must never fail the build: degrade to an
      // uncoordinated rebuild. Worst case is a duplicate compile — wasted
      // work, but bit-identical output.
      counter("service.coordinator_errors").add();
    }
  }
  if (!skip_execute) {
    execute(sys.target, job->request, seed, job_span, trace, result, output);
  }
  if (hold_lease) {
    if (trace.crashed) {
      // The "process" died at an injected crash site still holding the
      // lease. A dead process releases nothing: the record stays in the
      // store until its TTL lapses and another replica steals it.
    } else {
      options_.coordinator->release(job->key,
                                    result.ok() ? FleetCoordinator::Outcome::succeeded
                                                : FleetCoordinator::Outcome::failed,
                                    output, lease_epoch);
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_count_;
    job->trace = std::move(trace);
    job->output = std::move(output);
    if (result.ok()) {
      counter("service.succeeded").add();
      finalize_locked(*job, JobState::succeeded, Status::success());
    } else {
      counter("service.failed").add();
      if (job->trace.crashed) counter("service.crashed").add();
      finalize_locked(*job, JobState::failed, std::move(result));
    }
  }
}

void RebuildService::execute(const TargetSystem& target, const SubmitRequest& request,
                             Ticket seed, obs::SpanId job_span, JobTrace& trace,
                             Status& result, std::string& output) {
  Status last = Status::success();
  double prev_delay_ms = 0;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    trace.attempts = attempt;
    obs::Span attempt_span = obs::maybe_span(
        options_.tracer, "attempt:" + std::to_string(attempt), job_span, "service");
    Status status = Status::success();
    try {
      status = attempt_once(target, request, attempt_span.id(), trace, output);
    } catch (const support::CrashInjected& crash) {
      // The in-process stand-in for the rebuild dying (SIGKILL, node loss).
      // No retry: the journal stays in the store, and recover() on the next
      // service incarnation resumes the work from it.
      trace.crashed = true;
      result = make_error(Errc::failed, "service: rebuild crashed at injected site '" +
                                            crash.site + "'; journal retained, " +
                                            "recover() resumes it");
      return;
    }
    if (status.ok()) {
      result = Status::success();
      return;
    }
    last = status;
    if (!is_retryable(status.error()) || attempt == options_.max_attempts) break;

    // Exponential backoff with deterministic jitter. The explicit clamp to
    // the previous delay keeps the sequence monotonically non-decreasing
    // even once the exponential curve saturates at backoff_max_ms.
    double delay = options_.backoff_base_ms * std::pow(2.0, attempt - 1);
    delay = std::min(delay, options_.backoff_max_ms);
    delay *= 1.0 + jitter01(seed, attempt);
    delay = std::max(delay, prev_delay_ms);
    prev_delay_ms = delay;
    trace.backoff_ms.push_back(delay);
    attempt_span.annotate("backoff_ms", static_cast<std::uint64_t>(delay * 1000));
    attempt_span.end();  // the backoff sleep is queueing, not attempt work
    if (options_.sleep_on_backoff) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
    }
  }
  result = make_error(
      last.error().code,
      "service: rebuild of " + request.name + ":" + request.tag + " for " +
          request.system + " failed after " + std::to_string(trace.attempts) +
          " attempt(s): " + last.error().message);
}

Status RebuildService::attempt_once(const TargetSystem& target, const SubmitRequest& request,
                                    obs::SpanId attempt_span, JobTrace& trace,
                                    std::string& output) {
  // Every attempt starts from a pristine private workspace, so a failed
  // attempt leaves no partial state behind — the hub only ever sees a
  // complete push. Journaled attempts are the exception by design: committed
  // compile jobs survive in the journal and replay into the next attempt's
  // fresh workspace.
  oci::Layout workspace = target.base_layout;

  std::shared_ptr<durable::Journal> journal;
  std::optional<HubPinGuard> hub_pins;
  if (options_.journals != nullptr) {
    // A metadata conflict (Errc::already_exists) means the key is owned by a
    // different request — not retryable, so it surfaces as a permanent
    // failure rather than stomping the other rebuild's journal.
    COMT_TRY(journal,
             options_.journals->open(journal_key(request), request_metadata(request)));
    // While the journal names this image, the hub must not sweep its blobs —
    // a resume still needs to pull them.
    hub_pins.emplace(hub_, request);
  }

  obs::Span pull_span =
      obs::maybe_span(options_.tracer, "service.pull", attempt_span, "pull");
  obs::Stopwatch pull_clock;
  Status pulled = hub_.pull(request.name, request.tag, workspace, kWorkTag);
  trace.pull_ms += pull_clock.elapsed_ms();
  pull_span.end();
  COMT_TRY_STATUS(pulled);

  core::RebuildOptions options;
  options.system = target.profile;
  options.system_repo = target.repo;
  options.sysenv_tag = target.sysenv_tag;
  options.adapters = target.adapters;
  options.threads = options_.rebuild_threads;
  options.compile_cache = &cache_;
  options.fault_injector = options_.faults;
  options.journal = journal.get();
  if (journal != nullptr) options.journal_metadata = request_metadata(request);
  options.tracer = options_.tracer;
  options.parent_span = attempt_span;
  options.metrics = metrics_;

  obs::Stopwatch rebuild_clock;
  auto report = core::comtainer_rebuild(workspace, kWorkTag, options);
  trace.rebuild_ms += rebuild_clock.elapsed_ms();
  if (!report.ok()) return report.error();
  trace.compile_jobs += report.value().jobs;
  trace.cache_hits += report.value().cache_hits;
  trace.cache_misses += report.value().cache_misses;
  trace.journal_replayed += report.value().journal_replayed;
  trace.journal_committed += report.value().journal_committed;

  std::string output_tag = request.tag + "+coMre." + request.system;
  obs::Span push_span =
      obs::maybe_span(options_.tracer, "service.push", attempt_span, "blob-push");
  obs::Stopwatch push_clock;
  Status pushed = hub_.push(workspace, kWorkRebuiltTag, request.name, output_tag);
  trace.push_ms += push_clock.elapsed_ms();
  push_span.end();
  COMT_TRY_STATUS(pushed);

  // The result is durable downstream; the journal has served its purpose.
  if (options_.journals != nullptr) options_.journals->remove(journal_key(request));

  output = request.name + ":" + output_tag;
  return Status::success();
}

Result<RecoveryReport> RebuildService::recover() {
  RecoveryReport report;
  // The cache hydrated at construction; report it here so one RecoveryReport
  // tells the whole restart story (journals resumed + cache warmth).
  report.cache_entries_recovered = cache_.stats().hydrated;
  // Heal the hub first: a crash mid-push can leave torn blobs behind, and a
  // resumed rebuild is about to pull from it.
  report.fsck = hub_.fsck(/*repair=*/true);
  if (options_.journals == nullptr) return report;
  for (const durable::JournalStore::Entry& entry : options_.journals->list()) {
    ++report.journals_found;
    SubmitRequest request;
    if (!parse_request_metadata(entry.metadata, request)) {
      options_.journals->remove(entry.key);
      ++report.skipped;
      continue;
    }
    auto ticket = submit(request);
    if (!ticket.ok()) {
      // The image or target system is gone — this journal can never be
      // served again.
      options_.journals->remove(entry.key);
      ++report.skipped;
      continue;
    }
    report.resubmitted.push_back(ticket.value());
  }
  return report;
}

void RebuildService::finalize_locked(Job& job, JobState state, Status result) {
  job.state = state;
  job.result = std::move(result);
  active_.erase(job.key);
  counter("service.retries").add(job.trace.backoff_ms.size());
  counter("service.cache_hits").add(job.trace.cache_hits);
  counter("service.cache_misses").add(job.trace.cache_misses);
  metrics_->gauge("service.queue_ms").add(job.trace.queue_ms);
  metrics_->gauge("service.pull_ms").add(job.trace.pull_ms);
  metrics_->gauge("service.rebuild_ms").add(job.trace.rebuild_ms);
  metrics_->gauge("service.push_ms").add(job.trace.push_ms);
  job.span.annotate("state", to_string(state));
  job.span.end();
  done_cv_.notify_all();
}

Result<TicketStatus> RebuildService::status(Ticket ticket) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    return make_error(Errc::not_found, "service: unknown ticket " + std::to_string(ticket));
  }
  const Job& job = *it->second.job;
  TicketStatus out;
  out.state = job.state;
  out.result = job.result;
  out.output = job.output;
  out.trace = job.trace;
  out.trace.coalesced = it->second.coalesced;
  return out;
}

Result<TicketStatus> RebuildService::wait(Ticket ticket) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    return make_error(Errc::not_found, "service: unknown ticket " + std::to_string(ticket));
  }
  std::shared_ptr<Job> job = it->second.job;
  bool coalesced = it->second.coalesced;
  done_cv_.wait(lock, [&job] { return is_terminal(job->state); });
  TicketStatus out;
  out.state = job->state;
  out.result = job->result;
  out.output = job->output;
  out.trace = job->trace;
  out.trace.coalesced = coalesced;
  return out;
}

void RebuildService::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void RebuildService::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  start_cv_.notify_all();
}

void RebuildService::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    for (auto& [name, sys] : systems_) {
      // Fail queued jobs in queue order; their runner tasks will pop nothing.
      while (!sys->queue.empty()) {
        std::shared_ptr<Job> job = sys->queue.begin()->second;
        sys->queue.erase(sys->queue.begin());
        --queued_count_;
        counter("service.drained").add();
        finalize_locked(*job, JobState::drained,
                        make_error(Errc::failed, "service: drained while queued"));
      }
    }
  }
  start_cv_.notify_all();  // wake runners held by pause()
  for (auto& [name, sys] : systems_) sys->pool->wait_idle();
}

ServiceStats RebuildService::stats() const {
  // The lock orders this snapshot after any finalization that already
  // completed: counter updates happen while the mutex is held, so they are
  // visible to a reader that acquires it afterwards.
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats out;
  out.submitted = metrics_->counter_value("service.submitted");
  out.coalesced = metrics_->counter_value("service.coalesced");
  out.admitted = metrics_->counter_value("service.admitted");
  out.shed = metrics_->counter_value("service.shed");
  out.succeeded = metrics_->counter_value("service.succeeded");
  out.failed = metrics_->counter_value("service.failed");
  out.expired = metrics_->counter_value("service.expired");
  out.drained = metrics_->counter_value("service.drained");
  out.retries = metrics_->counter_value("service.retries");
  out.crashed = metrics_->counter_value("service.crashed");
  out.fleet_reused = metrics_->counter_value("service.fleet_reused");
  out.coordinator_errors = metrics_->counter_value("service.coordinator_errors");
  out.compile_cache_hits = metrics_->counter_value("service.cache_hits");
  out.compile_cache_misses = metrics_->counter_value("service.cache_misses");
  out.compile_cache_inserts = metrics_->counter_value("compile_cache.inserts");
  out.compile_cache_hydrated = metrics_->counter_value("compile_cache.hydrated");
  out.compile_cache_remote_hits = metrics_->counter_value("compile_cache.remote_hits");
  out.queue_ms = metrics_->gauge_value("service.queue_ms");
  out.pull_ms = metrics_->gauge_value("service.pull_ms");
  out.rebuild_ms = metrics_->gauge_value("service.rebuild_ms");
  out.push_ms = metrics_->gauge_value("service.push_ms");
  return out;
}

std::size_t RebuildService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_count_;
}

std::size_t RebuildService::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_count_;
}

}  // namespace comt::service
