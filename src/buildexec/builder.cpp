#include "buildexec/builder.hpp"

#include "support/sha256.hpp"
#include "support/strings.hpp"

namespace comt::buildexec {
namespace {

/// Sets an environment variable on the container and mirrors it into the
/// image config's "KEY=value" env list (so the committed image carries it).
void set_container_env(Container& container, const std::string& key,
                       const std::string& value) {
  container.env()[key] = value;
  std::vector<std::string>& entries = container.config().config.env;
  std::string prefix = key + "=";
  for (std::string& entry : entries) {
    if (starts_with(entry, prefix)) {
      entry = prefix + value;
      return;
    }
  }
  entries.push_back(prefix + value);
}

/// Regular files a COPY of `source` into `target` will create, as paths in
/// the destination tree (used to record the movement's outputs).
std::vector<std::string> copied_outputs(const vfs::Filesystem& tree,
                                        const std::string& source,
                                        const std::string& target) {
  std::vector<std::string> outputs;
  if (tree.is_regular(source)) {
    outputs.push_back(target);
    return outputs;
  }
  std::string prefix = source == "/" ? source : source + "/";
  tree.walk([&](const std::string& path, const vfs::Node& node) {
    if (node.type == vfs::NodeType::regular && starts_with(path, prefix)) {
      outputs.push_back(path_join(target, path.substr(prefix.size())));
    }
    return true;
  });
  return outputs;
}

}  // namespace

Result<oci::Image> ImageBuilder::build(const dockerfile::Dockerfile& file,
                                       const vfs::Filesystem& context,
                                       std::string_view tag,
                                       std::string_view target_stage,
                                       BuildRecord* record) {
  if (file.stages.empty()) {
    return make_error(Errc::invalid_argument, "build: Dockerfile has no stages");
  }
  int last_stage = static_cast<int>(file.stages.size()) - 1;
  if (!target_stage.empty()) {
    last_stage = file.stage_index(target_stage);
    if (last_stage < 0) {
      return make_error(Errc::not_found,
                        "build: unknown target stage '" + std::string(target_stage) + "'");
    }
  }

  struct BuiltStage {
    oci::Image image;
    vfs::Filesystem rootfs;
  };
  std::vector<BuiltStage> built;

  for (int index = 0; index <= last_stage; ++index) {
    const dockerfile::Stage& stage = file.stages[index];

    // The base is an earlier stage of this build or an image in the layout.
    oci::Image base;
    int from_stage = file.stage_index(stage.base_image);
    if (from_stage >= 0 && from_stage < index) {
      base = built[from_stage].image;
    } else {
      auto found = layout_.find_image(stage.base_image);
      if (!found.ok()) {
        return make_error(Errc::not_found,
                          "build: unknown base image '" + stage.base_image + "'");
      }
      base = std::move(found).value();
    }
    COMT_TRY(vfs::Filesystem rootfs, layout_.flatten(base));
    Container container(std::move(rootfs), base.config, apt_source_);

    // Recording is opt-in via the base image's hijack label (Fig. 6): builds
    // from mainstream bases proceed unrecorded.
    auto label = base.config.config.labels.find(std::string(kHijackLabel));
    bool hijack = label != base.config.config.labels.end() && label->second == "true";
    if (record != nullptr && hijack) container.attach_recorder(record);

    for (const dockerfile::Instruction& inst : stage.instructions) {
      switch (inst.kind) {
        case dockerfile::InstructionKind::from:
          break;  // stage boundaries are handled by the outer loop
        case dockerfile::InstructionKind::run: {
          Status status = container.run_shell(inst.text);
          if (!status.ok()) {
            return make_error(status.error().code,
                              "RUN (line " + std::to_string(inst.line) +
                                  "): " + status.error().message);
          }
          break;
        }
        case dockerfile::InstructionKind::copy: {
          if (inst.args.size() < 2) {
            return make_error(Errc::invalid_argument,
                              "COPY (line " + std::to_string(inst.line) +
                                  "): needs source and destination");
          }
          const vfs::Filesystem* source_tree = &context;
          if (!inst.stage.empty()) {
            int source_stage = file.stage_index(inst.stage);
            if (source_stage < 0 || source_stage >= static_cast<int>(built.size())) {
              return make_error(Errc::not_found,
                                "COPY (line " + std::to_string(inst.line) +
                                    "): unknown stage '" + inst.stage + "'");
            }
            source_tree = &built[source_stage].rootfs;
          }
          std::string dest_raw = inst.args.back();
          std::string dest = normalize_path(path_join(container.cwd(), dest_raw));
          ToolInvocation movement;
          movement.argv.emplace_back(kCopyPseudoTool);
          for (const std::string& arg : inst.args) movement.argv.push_back(arg);
          movement.cwd = container.cwd();
          for (std::size_t i = 0; i + 1 < inst.args.size(); ++i) {
            std::string source = normalize_path(path_join("/", inst.args[i]));
            if (!source_tree->exists(source)) {
              return make_error(Errc::not_found,
                                "COPY (line " + std::to_string(inst.line) +
                                    "): '" + inst.args[i] + "' not found");
            }
            std::string target = dest;
            if (source_tree->is_regular(source) &&
                (inst.args.size() > 2 || ends_with(dest_raw, "/"))) {
              target = path_join(dest, path_basename(source));
            }
            COMT_TRY_STATUS(container.rootfs().copy_from(*source_tree, source, target));
            movement.inputs_read.push_back(source);
            for (std::string& output : copied_outputs(*source_tree, source, target)) {
              movement.outputs.push_back(std::move(output));
            }
          }
          if (record != nullptr && hijack) {
            for (const std::string& output : movement.outputs) {
              auto content = container.rootfs().read_file(output);
              if (content.ok()) {
                movement.digests[output] = Sha256::hex_digest(content.value());
              }
            }
            record->invocations.push_back(std::move(movement));
          }
          break;
        }
        case dockerfile::InstructionKind::env:
          set_container_env(container, inst.args[0], inst.args[1]);
          break;
        case dockerfile::InstructionKind::arg: {
          // ARG scope: available for expansion in later instructions of this
          // build, overridden by --build-arg, not persisted into the config.
          auto supplied = build_args_.find(inst.args[0]);
          container.env()[inst.args[0]] =
              supplied != build_args_.end()
                  ? supplied->second
                  : (inst.args.size() > 1 ? inst.args[1] : "");
          break;
        }
        case dockerfile::InstructionKind::workdir: {
          std::string path = normalize_path(
              path_join(container.cwd(),
                        shell::expand_variables(inst.args[0], container.env())));
          COMT_TRY_STATUS(container.rootfs().make_directories(path));
          container.set_cwd(path);
          container.config().config.working_dir = path;
          break;
        }
        case dockerfile::InstructionKind::label:
          container.config().config.labels[inst.args[0]] = inst.args[1];
          break;
        case dockerfile::InstructionKind::entrypoint:
          container.config().config.entrypoint = inst.args;
          break;
        case dockerfile::InstructionKind::cmd:
          container.config().config.cmd = inst.args;
          break;
      }
    }

    std::string stage_tag = std::string(tag) + ".stage" + std::to_string(index);
    std::string created_by =
        "FROM " + stage.base_image + (stage.name.empty() ? "" : " AS " + stage.name);
    COMT_TRY(oci::Image image, commit(container, base, created_by, stage_tag));
    built.push_back(BuiltStage{std::move(image), container.rootfs()});
  }

  oci::Image final_image = built[last_stage].image;
  COMT_TRY(final_image.manifest_digest, layout_.add_manifest(final_image.manifest, tag));
  return final_image;
}

Result<Container> ImageBuilder::container_from(std::string_view tag) const {
  COMT_TRY(oci::Image image, layout_.find_image(tag));
  COMT_TRY(vfs::Filesystem rootfs, layout_.flatten(image));
  return Container(std::move(rootfs), image.config, apt_source_);
}

Result<oci::Image> ImageBuilder::commit(const Container& container, const oci::Image& base,
                                        std::string_view created_by, std::string_view tag) {
  COMT_TRY(vfs::Filesystem base_rootfs, layout_.flatten(base));
  vfs::LayerDiff delta = vfs::diff(base_rootfs, container.rootfs());
  oci::Descriptor layer = layout_.put_layer(delta.upper);

  oci::ImageConfig config = container.config();
  config.diff_ids = base.config.diff_ids;
  config.diff_ids.push_back(layer.digest);
  config.history = base.config.history;
  config.history.emplace_back(created_by);
  oci::Descriptor config_descriptor =
      layout_.put_blob(json::serialize(config.to_json()), oci::kMediaTypeConfig);

  oci::Manifest manifest = base.manifest;
  manifest.config = config_descriptor;
  manifest.layers.push_back(layer);
  COMT_TRY(oci::Digest manifest_digest, layout_.add_manifest(manifest, tag));
  return oci::Image{std::move(manifest_digest), std::move(manifest), std::move(config)};
}

}  // namespace comt::buildexec
