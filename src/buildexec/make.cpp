#include "buildexec/make.hpp"

#include <functional>
#include <set>

#include "buildexec/container.hpp"
#include "support/strings.hpp"

namespace comt::buildexec {
namespace {

/// Expands $(VAR), ${VAR} and single-character $X references (which is how
/// the $@ $< $^ automatics are stored: under keys "@", "<", "^"). Variable
/// values may reference further variables; recursion is depth-capped.
std::string expand_make(std::string_view text,
                        const std::map<std::string, std::string>& variables,
                        int depth = 0) {
  if (depth > 16) return std::string(text);
  std::string result;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '$' || i + 1 >= text.size()) {
      result += text[i];
      continue;
    }
    char next = text[i + 1];
    if (next == '$') {
      result += '$';
      ++i;
      continue;
    }
    std::string name;
    if (next == '(' || next == '{') {
      char close = next == '(' ? ')' : '}';
      std::size_t end = text.find(close, i + 2);
      if (end == std::string_view::npos) {
        result += text[i];
        continue;
      }
      name = std::string(text.substr(i + 2, end - i - 2));
      i = end;
    } else {
      name = std::string(1, next);
      ++i;
    }
    auto it = variables.find(name);
    if (it != variables.end()) result += expand_make(it->second, variables, depth + 1);
  }
  return result;
}

/// Restores the container's working directory on every exit path (make -C).
class CwdGuard {
 public:
  explicit CwdGuard(Container& container)
      : container_(container), saved_(container.cwd()) {}
  ~CwdGuard() { container_.set_cwd(saved_); }
  CwdGuard(const CwdGuard&) = delete;
  CwdGuard& operator=(const CwdGuard&) = delete;

 private:
  Container& container_;
  std::string saved_;
};

}  // namespace

const MakeRule* Makefile::find_rule(std::string_view target) const {
  for (const MakeRule& rule : rules) {
    if (rule.target == target) return &rule;
  }
  return nullptr;
}

Result<Makefile> parse_makefile(std::string_view text) {
  Makefile makefile;
  int current_rule = -1;
  int line_number = 0;
  for (const std::string& line : split(text, '\n')) {
    ++line_number;
    if (!line.empty() && line[0] == '\t') {
      if (current_rule < 0) {
        return make_error(Errc::invalid_argument,
                          "makefile line " + std::to_string(line_number) +
                              ": recipe commences before first target");
      }
      std::string command(trim(line));
      if (!command.empty()) makefile.rules[current_rule].recipe.push_back(command);
      continue;
    }
    std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    std::size_t eq = trimmed.find('=');
    std::size_t colon = trimmed.find(':');
    bool assignment = eq != std::string_view::npos &&
                      (colon == std::string_view::npos || eq < colon || eq == colon + 1);
    if (assignment) {
      char op = '=';
      std::size_t name_end = eq;
      if (eq > 0 && (trimmed[eq - 1] == '?' || trimmed[eq - 1] == ':' ||
                     trimmed[eq - 1] == '+')) {
        op = trimmed[eq - 1];
        name_end = eq - 1;
      }
      std::string name(trim(trimmed.substr(0, name_end)));
      std::string value(trim(trimmed.substr(eq + 1)));
      if (name.empty() || name.find(' ') != std::string::npos) {
        return make_error(Errc::invalid_argument,
                          "makefile line " + std::to_string(line_number) +
                              ": malformed variable name");
      }
      if (op == '+') {
        std::string& slot = makefile.variables[name];
        slot = slot.empty() ? value : slot + " " + value;
      } else if (op != '?' || makefile.variables.count(name) == 0) {
        makefile.variables[name] = value;
      }
      current_rule = -1;
      continue;
    }
    if (colon != std::string_view::npos) {
      std::string target(trim(trimmed.substr(0, colon)));
      if (target.empty() || split_whitespace(target).size() != 1) {
        return make_error(Errc::invalid_argument,
                          "makefile line " + std::to_string(line_number) +
                              ": malformed target '" + target + "'");
      }
      MakeRule rule;
      rule.target = target;
      rule.prerequisites = split_whitespace(trim(trimmed.substr(colon + 1)));
      makefile.rules.push_back(std::move(rule));
      current_rule = static_cast<int>(makefile.rules.size()) - 1;
      if (makefile.default_goal.empty()) makefile.default_goal = target;
      continue;
    }
    return make_error(Errc::invalid_argument,
                      "makefile line " + std::to_string(line_number) +
                          ": missing separator");
  }
  if (makefile.rules.empty()) {
    return make_error(Errc::invalid_argument, "makefile: no targets");
  }
  return makefile;
}

Result<std::vector<std::string>> run_make(Container& container,
                                          const std::vector<std::string>& argv) {
  std::string directory;
  std::map<std::string, std::string> overrides;
  std::vector<std::string> goals;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    if (arg == "-C") {
      if (i + 1 >= argv.size()) {
        return make_error(Errc::invalid_argument, "make: option -C requires a directory");
      }
      directory = argv[++i];
    } else if (starts_with(arg, "-j") || arg == "-s" || arg == "-k") {
      continue;  // parallelism/verbosity flags: accepted, irrelevant here
    } else if (arg.find('=') != std::string::npos) {
      std::size_t eq = arg.find('=');
      overrides[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      goals.push_back(arg);
    }
  }

  CwdGuard guard(container);
  if (!directory.empty()) {
    std::string target = normalize_path(path_join(container.cwd(), directory));
    if (!container.rootfs().is_directory(target)) {
      return make_error(Errc::not_found, "make: chdir " + directory + ": no such directory");
    }
    container.set_cwd(target);
  }
  const std::string cwd = container.cwd();

  auto text = container.rootfs().read_file(path_join(cwd, "Makefile"));
  if (!text.ok()) {
    return make_error(Errc::not_found, "make: *** No makefile found in " + cwd);
  }
  COMT_TRY(Makefile makefile, parse_makefile(text.value()));
  for (const auto& [name, value] : overrides) makefile.variables[name] = value;
  if (goals.empty()) goals.push_back(makefile.default_goal);

  std::vector<std::string> built;
  std::map<std::string, bool> finished;  // target -> its recipe ran
  std::set<std::string> visiting;

  std::function<Result<bool>(const std::string&)> build =
      [&](const std::string& target) -> Result<bool> {
    if (visiting.count(target) != 0) {
      return make_error(Errc::failed,
                        "make: circular dependency dropped at '" + target + "'");
    }
    auto memo = finished.find(target);
    if (memo != finished.end()) return memo->second;

    const MakeRule* rule = makefile.find_rule(target);
    std::string target_path = path_join(cwd, target);
    if (rule == nullptr) {
      if (container.rootfs().exists(target_path)) return false;
      return make_error(Errc::not_found,
                        "make: *** No rule to make target '" + target + "'");
    }

    visiting.insert(target);
    std::vector<std::string> prerequisites;
    for (const std::string& raw : rule->prerequisites) {
      for (std::string& word :
           split_whitespace(expand_make(raw, makefile.variables))) {
        prerequisites.push_back(std::move(word));
      }
    }
    bool dependency_rebuilt = false;
    for (const std::string& prerequisite : prerequisites) {
      auto rebuilt = build(prerequisite);
      if (!rebuilt.ok()) {
        visiting.erase(target);
        return rebuilt.error();
      }
      dependency_rebuilt = dependency_rebuilt || rebuilt.value();
    }
    visiting.erase(target);

    // Up-to-date check is existence-based: the vfs has no mtimes, and the
    // recorded builds only ever run from clean trees.
    bool needs_build = !container.rootfs().exists(target_path) || dependency_rebuilt;
    bool ran = false;
    if (needs_build && !rule->recipe.empty()) {
      std::map<std::string, std::string> variables = makefile.variables;
      variables["@"] = target;
      variables["<"] = prerequisites.empty() ? "" : prerequisites.front();
      variables["^"] = join(prerequisites, " ");
      for (const std::string& line : rule->recipe) {
        Status status = container.run_shell(expand_make(line, variables));
        if (!status.ok()) {
          return make_error(status.error().code,
                            "make: *** [" + target + "] " + status.error().message);
        }
      }
      ran = true;
      built.push_back(target);
    }
    finished[target] = ran;
    return ran;
  };

  for (const std::string& goal : goals) {
    auto result = build(goal);
    if (!result.ok()) return result.error();
  }
  return built;
}

}  // namespace comt::buildexec
