#include "store/disk.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <optional>

#include "store/wire.hpp"

namespace comt::store {
namespace {

namespace stdfs = std::filesystem;

constexpr std::string_view kTempDir = ".tmp";
constexpr std::size_t kFrameHeaderSize = sizeof(std::uint32_t) + sizeof(std::uint64_t);
constexpr char kHexDigits[] = "0123456789ABCDEF";

/// Bytes that pass through the key↔filename mapping unescaped. Everything
/// else (including '%' itself) is percent-encoded, so decode(encode(k)) == k
/// for arbitrary byte strings.
bool safe_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '.' || c == '_' || c == '-' || c == '+';
}

void encode_byte(std::string& out, char c) {
  out.push_back('%');
  out.push_back(kHexDigits[(static_cast<unsigned char>(c) >> 4) & 0xF]);
  out.push_back(kHexDigits[static_cast<unsigned char>(c) & 0xF]);
}

/// One path segment of a key, percent-encoded. "." and ".." are encoded in
/// full so a key can never escape the root or alias the directory links.
std::string encode_segment(std::string_view segment) {
  std::string out;
  out.reserve(segment.size());
  const bool dots_only = segment == "." || segment == "..";
  for (char c : segment) {
    if (!dots_only && safe_char(c)) {
      out.push_back(c);
    } else {
      encode_byte(out, c);
    }
  }
  return out;
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Inverse of encode_segment. Returns nullopt for a filename that is not a
/// valid encoding (stray files in the directory are not ours — skip them).
std::optional<std::string> decode_segment(std::string_view segment) {
  std::string out;
  out.reserve(segment.size());
  for (std::size_t i = 0; i < segment.size(); ++i) {
    if (segment[i] != '%') {
      out.push_back(segment[i]);
      continue;
    }
    if (i + 2 >= segment.size()) return std::nullopt;
    const int hi = hex_value(segment[i + 1]);
    const int lo = hex_value(segment[i + 2]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

Result<std::string> read_file(const stdfs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return make_error(Errc::not_found, "store: no such key (cannot open " + path.string() + ")");
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) return make_error(Errc::failed, "store: read failed: " + path.string());
  return content;
}

/// Wraps `value` in the journal-convention frame.
std::string frame_value(std::string_view value) {
  std::string out;
  out.reserve(kFrameHeaderSize + value.size());
  wire::put_u32(out, static_cast<std::uint32_t>(value.size()));
  wire::put_u64(out, wire::fnv1a64(value));
  out.append(value);
  return out;
}

/// Strips and verifies the frame. A short header, a size that disagrees with
/// the file, or a checksum mismatch all mean the stored bytes are damaged.
Result<std::string> unframe_value(std::string&& encoded, const std::string& key) {
  if (encoded.size() < kFrameHeaderSize) {
    return make_error(Errc::corrupt, "store: torn value (short frame header): " + key);
  }
  wire::Reader header{std::string_view(encoded).substr(0, kFrameHeaderSize)};
  const std::uint32_t payload_size = header.u32();
  const std::uint64_t checksum = header.u64();
  if (encoded.size() != kFrameHeaderSize + payload_size) {
    return make_error(Errc::corrupt, "store: torn value (frame size mismatch): " + key);
  }
  std::string payload = encoded.substr(kFrameHeaderSize);
  if (wire::fnv1a64(payload) != checksum) {
    return make_error(Errc::corrupt, "store: value checksum mismatch: " + key);
  }
  return payload;
}

Status fsync_path(const stdfs::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::success();  // deleted since it was written — nothing to flush
  Status status = Status::success();
  if (::fsync(fd) != 0) {
    status = make_error(Errc::failed, "store: fsync failed: " + path.string());
  }
  ::close(fd);
  return status;
}

}  // namespace

DiskStore::DiskStore(std::string root) : DiskStore(std::move(root), Options()) {}

DiskStore::DiskStore(std::string root, Options options)
    : root_(std::move(root)), options_(options) {}

Result<stdfs::path> DiskStore::key_path(std::string_view key) const {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  stdfs::path path(root_);
  std::size_t start = 0;
  while (start <= key.size()) {
    const std::size_t slash = key.find('/', start);
    const std::string_view segment =
        key.substr(start, slash == std::string_view::npos ? std::string_view::npos
                                                          : slash - start);
    if (segment.empty()) {
      return make_error(Errc::invalid_argument,
                        "store: key has an empty path segment: " + std::string(key));
    }
    path /= encode_segment(segment);
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  return path;
}

Status DiskStore::write_atomic(const stdfs::path& path, std::string_view bytes) {
  std::error_code ec;
  stdfs::create_directories(path.parent_path(), ec);
  if (ec) {
    return make_error(Errc::failed,
                      "store: cannot create " + path.parent_path().string() + ": " + ec.message());
  }
  stdfs::path temp_dir = stdfs::path(root_) / kTempDir;
  stdfs::create_directories(temp_dir, ec);
  if (ec) {
    return make_error(Errc::failed, "store: cannot create " + temp_dir.string() + ": " + ec.message());
  }
  stdfs::path temp;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    temp = temp_dir / ("t" + std::to_string(temp_seq_++));
  }
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return make_error(Errc::failed, "store: cannot open for writing: " + temp.string());
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return make_error(Errc::failed, "store: short write: " + temp.string());
  }
  stdfs::rename(temp, path, ec);
  if (ec) {
    stdfs::remove(temp, ec);
    return make_error(Errc::failed, "store: rename failed: " + path.string());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  dirty_.insert(path.string());
  return Status::success();
}

Result<std::string> DiskStore::get(std::string_view key) const {
  COMT_TRY(stdfs::path path, key_path(key));
  COMT_TRY(std::string encoded, read_file(path));
  if (!options_.framed) {
    note_get(encoded.size());
    return encoded;
  }
  auto payload = unframe_value(std::move(encoded), std::string(key));
  if (!payload.ok()) {
    note_corrupt();
    return payload;
  }
  note_get(payload.value().size());
  return payload;
}

Status DiskStore::put(std::string_view key, std::string value) {
  COMT_TRY(stdfs::path path, key_path(key));
  std::string encoded = options_.framed ? frame_value(value) : std::move(value);
  std::optional<std::size_t> torn;
  if (faults() != nullptr) torn = faults()->check_torn(kStorePutSite, encoded.size());
  if (torn.has_value()) {
    // A real torn write lands on the final path (the rename already happened
    // or the filesystem journaled a partial flush); bypass the temp file so
    // the next get() sees exactly the torn prefix.
    std::error_code ec;
    stdfs::create_directories(path.parent_path(), ec);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) out.write(encoded.data(), static_cast<std::streamsize>(*torn));
    throw support::CrashInjected{std::string(kStorePutSite)};
  }
  COMT_TRY_STATUS(write_atomic(path, encoded));
  note_put(encoded.size() - (options_.framed ? kFrameHeaderSize : 0));
  return Status::success();
}

Status DiskStore::erase(std::string_view key) {
  COMT_TRY(stdfs::path path, key_path(key));
  std::error_code ec;
  stdfs::remove(path, ec);
  if (ec) return make_error(Errc::failed, "store: cannot remove " + path.string());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dirty_.erase(path.string());
  }
  note_erase();
  return Status::success();
}

bool DiskStore::contains(std::string_view key) const {
  auto path = key_path(key);
  if (!path.ok()) return false;
  std::error_code ec;
  return stdfs::is_regular_file(path.value(), ec);
}

Result<std::uint64_t> DiskStore::size(std::string_view key) const {
  COMT_TRY(stdfs::path path, key_path(key));
  std::error_code ec;
  const std::uintmax_t bytes = stdfs::file_size(path, ec);
  if (ec) return make_error(Errc::not_found, "store: no such key: " + std::string(key));
  if (!options_.framed) return static_cast<std::uint64_t>(bytes);
  return bytes >= kFrameHeaderSize ? static_cast<std::uint64_t>(bytes - kFrameHeaderSize) : 0;
}

std::vector<KvEntry> DiskStore::list(std::string_view prefix) const {
  std::vector<KvEntry> out;
  std::error_code ec;
  stdfs::recursive_directory_iterator it(root_, ec);
  if (ec) return out;  // no directory yet — an empty store
  const stdfs::path temp_dir = stdfs::path(root_) / kTempDir;
  for (stdfs::recursive_directory_iterator end; it != end; it.increment(ec)) {
    if (ec) break;
    if (it->path() == temp_dir) {
      it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file(ec)) continue;
    // Re-assemble the key from the decoded path segments under root.
    const stdfs::path relative = stdfs::relative(it->path(), root_, ec);
    if (ec) continue;
    std::string key;
    bool valid = true;
    for (const stdfs::path& part : relative) {
      auto segment = decode_segment(part.string());
      if (!segment.has_value()) {
        valid = false;
        break;
      }
      if (!key.empty()) key.push_back('/');
      key += *segment;
    }
    if (!valid || key.compare(0, prefix.size(), prefix) != 0) continue;
    const std::uintmax_t bytes = it->file_size(ec);
    if (ec) continue;
    std::uint64_t size = static_cast<std::uint64_t>(bytes);
    if (options_.framed) size = size >= kFrameHeaderSize ? size - kFrameHeaderSize : 0;
    out.push_back(KvEntry{std::move(key), size});
  }
  std::sort(out.begin(), out.end(),
            [](const KvEntry& a, const KvEntry& b) { return a.key < b.key; });
  return out;
}

Status DiskStore::sync() {
  obs::Span span = sync_span();
  std::set<std::string> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending.swap(dirty_);
  }
  Status status = Status::success();
  std::set<std::string> parents;
  for (const std::string& file : pending) {
    Status flushed = fsync_path(file);
    if (status.ok() && !flushed.ok()) status = flushed;
    parents.insert(stdfs::path(file).parent_path().string());
  }
  for (const std::string& dir : parents) {
    Status flushed = fsync_path(dir);
    if (status.ok() && !flushed.ok()) status = flushed;
  }
  // Drop the temp directory when it is empty — an exported OCI layout
  // directory should hold exactly the spec's files. Fails harmlessly (and is
  // ignored) while a concurrent put still has a temp file in flight.
  std::error_code ec;
  stdfs::remove(stdfs::path(root_) / kTempDir, ec);
  span.annotate("files", static_cast<std::uint64_t>(pending.size()));
  note_sync();
  return status;
}

}  // namespace comt::store
