// Content-addressed view over a KvStore: values are keyed by their own
// SHA-256 ("sha256:<hex>" → "<prefix>sha256/<hex>", the OCI blobs/ layout).
// put() digests, get() re-digests and refuses to return bytes that no longer
// match their address — the store-level analogue of what oci::Layout::fsck
// checks. The escape hatches (get_unverified, put_at) exist for exactly the
// callers that need to see or create damaged state: fsck walks corrupt
// blobs, and fault injection plants torn ones.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "store/store.hpp"

namespace comt::store {

class CasStore {
 public:
  /// Addresses content under `prefix` in `backend` (e.g. "blobs/" for an OCI
  /// layout). The backend is shared: several CAS views and other keyspaces
  /// (journals, cache entries) can live in one store.
  explicit CasStore(std::shared_ptr<KvStore> backend, std::string prefix = "");

  /// Stores `bytes` and returns its content address "sha256:<hex>".
  Result<std::string> put(std::string bytes);

  /// Bytes stored under `digest`, verified: Errc::corrupt when the stored
  /// content no longer hashes to its address.
  Result<std::string> get(std::string_view digest) const;

  /// Bytes stored under `digest` with no verification — fsck reads damaged
  /// blobs through this to classify them.
  Result<std::string> get_unverified(std::string_view digest) const;

  /// Stores `bytes` under `digest` without hashing. This is how torn or
  /// bit-rotted state enters a store in tests, and how a caller that already
  /// trusts digest↔bytes (a layout copy) avoids re-hashing.
  Status put_at(std::string_view digest, std::string bytes);

  bool contains(std::string_view digest) const;

  /// Drops `digest`. Returns the stored size in bytes, 0 when absent.
  std::uint64_t erase(std::string_view digest);

  /// Stored size of `digest` in bytes, Errc::not_found when absent.
  Result<std::uint64_t> size(std::string_view digest) const;

  /// Every stored content address, sorted.
  std::vector<std::string> digests() const;

  std::size_t count() const;
  std::uint64_t total_bytes() const;

  KvStore& backend() { return *backend_; }
  const KvStore& backend() const { return *backend_; }
  const std::shared_ptr<KvStore>& backend_ptr() const { return backend_; }

 private:
  Result<std::string> key_for(std::string_view digest) const;

  std::shared_ptr<KvStore> backend_;
  std::string prefix_;
};

}  // namespace comt::store
