// The compression stage of the wire path. Chunks move (and rest) inside a
// small self-describing frame — codec id, raw size, raw checksum, payload —
// so the receiving side always knows how to undo the encoding and can prove
// the decode round-tripped before trusting a single byte. A torn upload, a
// bit-flip in storage, or a decoder bug all surface as Errc::corrupt; they
// can never silently reassemble into a wrong blob.
//
// Codecs are negotiated per transfer: the pushing side sends its preference
// list against the destination's advertised set (ChunkStore publishes one)
// and the first common id wins. Identity is always available, so negotiation
// degrades to "no compression", never to "no transfer". The frame additionally
// stores identity whenever encoding does not shrink a chunk — the negotiated
// codec is a ceiling, not a promise.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace comt::transfer {

/// Wire-stable codec identifiers (part of the chunk frame; never renumber).
enum class CodecId : std::uint8_t {
  identity = 0,  ///< raw bytes
  lz = 1,        ///< byte-aligned LZ (greedy 4-byte-hash matcher, 64 KiB window)
};

const char* codec_name(CodecId id);

/// One compression scheme. Implementations must be deterministic and
/// side-effect free; encode/decode run concurrently from many transfers.
class Codec {
 public:
  virtual ~Codec() = default;
  virtual CodecId id() const = 0;
  /// Encoded form of `raw`. May be larger than the input (the chunk frame
  /// falls back to identity storage in that case).
  virtual std::string encode(std::string_view raw) const = 0;
  /// Inverse of encode. `raw_size` is the expected decoded size from the
  /// frame header; any structural violation returns Errc::corrupt.
  virtual Result<std::string> decode(std::string_view encoded,
                                     std::size_t raw_size) const = 0;
};

/// Built-in codec for `id`, nullptr when unknown (a frame from a newer peer).
const Codec* find_codec(CodecId id);

/// Every codec this build supports, in descending preference order.
std::vector<CodecId> supported_codecs();

/// First entry of `preferred` that `remote` also supports — the per-transfer
/// negotiation. Errc::unsupported when the sets are disjoint (cannot happen
/// between builds that both list identity, but a hostile advertisement can).
Result<CodecId> negotiate(const std::vector<CodecId>& preferred,
                          const std::vector<CodecId>& remote);

/// Frames `raw` for the wire under `codec`:
/// [u8 codec_id][u32 raw_size][u64 fnv1a64(raw)][payload]. Falls back to an
/// identity frame when the encoding does not shrink the payload.
std::string frame_chunk(CodecId codec, std::string_view raw);

/// Unframes and decodes, then verifies raw size and checksum — torn frames,
/// unknown codecs and failed round-trips all come back Errc::corrupt (or
/// Errc::unsupported for a codec id this build has no decoder for). `what`
/// names the chunk in error messages.
Result<std::string> unframe_chunk(std::string_view what, std::string_view framed);

/// Serialized codec advertisement (one u8 per id) and its parser; this is the
/// value a ChunkStore publishes under its codecs key. A damaged advertisement
/// parses as empty — negotiation then fails closed instead of guessing.
std::string serialize_codec_list(const std::vector<CodecId>& codecs);
std::vector<CodecId> parse_codec_list(std::string_view bytes);

}  // namespace comt::transfer
