#include <gtest/gtest.h>

#include "toolchain/artifact.hpp"
#include "toolchain/driver.hpp"

namespace comt::toolchain {
namespace {

ObjectCode sample_object() {
  ObjectCode object;
  object.source_path = "/work/src/kernel.cc";
  object.source_digest = "abc123";
  object.codegen.toolchain_id = "gnu-generic";
  object.codegen.opt_level = 2;
  object.codegen.march = "x86-64";
  object.codegen.vector_lanes = 2;
  object.codegen.lto_ir = true;
  KernelTrait kernel;
  kernel.name = "hot_loop";
  kernel.work = 42;
  kernel.frac_vec = 0.5;
  kernel.lib = "blas";
  kernel.frac_lib = 0.2;
  kernel.pgo_response = -0.3;
  object.kernels.push_back(std::move(kernel));
  return object;
}

TEST(ObjectBlobTest, RoundTrip) {
  ObjectCode object = sample_object();
  std::string blob = serialize_object(object);
  EXPECT_TRUE(is_object_blob(blob));
  EXPECT_FALSE(is_archive_blob(blob));
  EXPECT_FALSE(is_image_blob(blob));
  auto back = parse_object(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), object);
}

TEST(ObjectBlobTest, BadMagicRejected) {
  auto result = parse_object("ELF not really");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::corrupt);
}

TEST(ArchiveBlobTest, RoundTripMultipleMembers) {
  ObjectCode a = sample_object();
  ObjectCode b = sample_object();
  b.source_path = "/work/src/other.cc";
  b.codegen.opt_level = 3;
  std::string blob = serialize_archive({a, b});
  EXPECT_TRUE(is_archive_blob(blob));
  auto back = parse_archive(blob);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_EQ(back.value()[0], a);
  EXPECT_EQ(back.value()[1], b);
}

TEST(ArchiveBlobTest, EmptyArchive) {
  auto back = parse_archive(serialize_archive({}));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(ImageBlobTest, RoundTrip) {
  LinkedImage image;
  image.is_shared = false;
  image.target_arch = "amd64";
  image.codegen.toolchain_id = "vendor-x86";
  image.codegen.opt_level = 3;
  image.codegen.lto_applied = true;
  image.codegen.pgo_quality = 0.8;
  image.objects = {sample_object()};
  image.needed = {"m", "blas", "mpi"};
  image.attributes["libspeed"] = 2.5;
  std::string blob = serialize_image(image);
  EXPECT_TRUE(is_image_blob(blob));
  auto back = parse_image(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), image);
}

TEST(ImageBlobTest, PaddingAfterJsonTolerated) {
  // Library packages pad their blobs to realistic sizes; parsing must only
  // consume the JSON line.
  std::string blob = make_library_blob("libblas.so", "amd64", {{"libspeed", 3.2}});
  blob += "\n//PAD//" + std::string(5000, 'x');
  auto back = parse_image(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().is_shared);
  EXPECT_EQ(back.value().soname, "libblas.so");
  EXPECT_DOUBLE_EQ(back.value().attribute("libspeed", 1.0), 3.2);
  EXPECT_DOUBLE_EQ(back.value().attribute("missing", 7.0), 7.0);
}

TEST(ImageBlobTest, LibraryBlobCarriesNeeded) {
  std::string blob = make_library_blob("libscalapack.so", "arm64",
                                       {{"libspeed", 2.0}}, {"blas", "mpi"});
  auto back = parse_image(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().needed, (std::vector<std::string>{"blas", "mpi"}));
  EXPECT_EQ(back.value().target_arch, "arm64");
}

TEST(ProfileBlobTest, RoundTrip) {
  std::map<std::string, double> weights{{"hot", 0.7}, {"cold", 0.05}};
  std::string blob = serialize_profile(weights);
  auto back = parse_profile(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), weights);
}

TEST(ProfileBlobTest, BadMagicRejected) {
  EXPECT_FALSE(parse_profile("{}").ok());
}

TEST(CodegenTest, DefaultsSurviveRoundTrip) {
  ObjectCode object;
  object.source_path = "/x.c";
  auto back = parse_object(serialize_object(object));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().codegen.vector_lanes, 2);
  EXPECT_FALSE(back.value().codegen.lto_applied);
  EXPECT_DOUBLE_EQ(back.value().codegen.pgo_quality, 0.0);
}

}  // namespace
}  // namespace comt::toolchain
