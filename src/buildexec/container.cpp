#include "buildexec/container.hpp"

#include <algorithm>
#include <set>

#include "buildexec/make.hpp"
#include "support/sha256.hpp"
#include "support/strings.hpp"
#include "toolchain/driver.hpp"
#include "toolchain/options.hpp"
#include "toolchain/toolchains.hpp"

namespace comt::buildexec {
namespace {

constexpr std::string_view kDefaultPath = "/usr/local/bin:/usr/bin:/bin";
constexpr std::string_view kArStubMagic = "#!binutils-ar";
constexpr std::string_view kToolsetStubMagic = "#!comt-toolset";

/// Resolves argv[0] to an installed program path: names containing '/' are
/// taken relative to `cwd`, bare names search $PATH.
Result<std::string> resolve_program(const std::string& name, const vfs::Filesystem& fs,
                                    const std::string& cwd, const shell::Environment& env) {
  if (contains(name, "/")) {
    std::string path = normalize_path(path_join(cwd, name));
    if (fs.is_regular(path) || fs.is_symlink(path)) return path;
    return make_error(Errc::not_found, name + ": command not found");
  }
  auto it = env.find("PATH");
  std::string_view search = it != env.end() ? std::string_view(it->second) : kDefaultPath;
  for (const std::string& dir : split(search, ':')) {
    if (dir.empty()) continue;
    std::string candidate = path_join(dir, name);
    if (fs.is_regular(candidate) || fs.is_symlink(candidate)) return candidate;
  }
  return make_error(Errc::not_found, name + ": command not found");
}

/// True when the command is one of the file-utility / package / make builtins
/// the simulated shell provides (real images ship these as binaries; modeling
/// their effects is all the build scripts need).
bool is_builtin(std::string_view name) {
  static const std::set<std::string_view> kBuiltins = {
      "mkdir", "touch", "cp", "mv", "rm", "ln", "echo", "cat", "true",
      "make",  "apt-get", "apt"};
  return kBuiltins.count(name) != 0;
}

/// Splits a builtin argv into plain arguments and a `> file` redirect target.
struct RedirectSplit {
  std::vector<std::string> args;
  std::string target;  ///< "" when no redirect
};

Result<RedirectSplit> split_redirect(const std::vector<std::string>& argv) {
  RedirectSplit out;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    if (argv[i] == ">") {
      if (i + 1 != argv.size() - 1) {
        return make_error(Errc::invalid_argument, argv[0] + ": bad redirection");
      }
      out.target = argv[i + 1];
      return out;
    }
    out.args.push_back(argv[i]);
  }
  return out;
}

/// Copies a subtree within one filesystem. vfs::Filesystem::copy_from on the
/// same object would iterate the node map while inserting into it, so the
/// source subtree is collected first.
Status copy_within(vfs::Filesystem& fs, const std::string& source, const std::string& dest) {
  const vfs::Node* node = fs.lookup(source);
  if (node == nullptr) {
    return make_error(Errc::not_found, "cannot stat '" + source + "'");
  }
  std::vector<std::pair<std::string, vfs::Node>> subtree;
  if (node->type == vfs::NodeType::directory) {
    std::string prefix = source == "/" ? source : source + "/";
    fs.walk([&](const std::string& path, const vfs::Node& entry) {
      if (starts_with(path, prefix)) subtree.emplace_back(path.substr(prefix.size()), entry);
      return true;
    });
    COMT_TRY_STATUS(fs.make_directories(dest, node->mode));
  } else {
    subtree.emplace_back("", *node);
  }
  for (const auto& [relative, entry] : subtree) {
    std::string target = relative.empty() ? dest : path_join(dest, relative);
    switch (entry.type) {
      case vfs::NodeType::directory:
        COMT_TRY_STATUS(fs.make_directories(target, entry.mode));
        break;
      case vfs::NodeType::symlink:
        COMT_TRY_STATUS(fs.make_symlink(target, entry.content));
        break;
      case vfs::NodeType::regular:
        COMT_TRY_STATUS(fs.write_file(target, entry.content, entry.mode));
        break;
    }
  }
  return Status::success();
}

}  // namespace

Result<ToolExecution> exec_tool(const std::vector<std::string>& argv,
                                vfs::Filesystem& fs, const std::string& cwd,
                                const std::string& arch,
                                const shell::Environment& env) {
  if (argv.empty()) {
    return make_error(Errc::invalid_argument, "empty command");
  }
  COMT_TRY(std::string program, resolve_program(argv[0], fs, cwd, env));
  COMT_TRY(std::string content, fs.read_file(program));

  ToolExecution execution;
  execution.resolved_program = program;

  if (starts_with(content, toolchain::kToolchainStubMagic)) {
    std::string toolchain_id = toolchain::parse_toolchain_stub(content);
    const toolchain::Toolchain* toolchain =
        toolchain::ToolchainRegistry::builtin().find(toolchain_id);
    if (toolchain == nullptr) {
      return make_error(Errc::corrupt,
                        program + ": unknown toolchain '" + toolchain_id + "'");
    }
    COMT_TRY(toolchain::CompileCommand command, toolchain::parse_command(argv));
    // MPI compiler wrappers link the MPI library implicitly; that implicit
    // -lmpi is exactly the coupling the paper's adapters must preserve.
    if (starts_with(path_basename(argv[0]), "mpi") &&
        std::find(command.libraries.begin(), command.libraries.end(), "mpi") ==
            command.libraries.end()) {
      command.libraries.push_back("mpi");
    }
    toolchain::Driver driver(*toolchain, arch);
    COMT_TRY(toolchain::DriverResult result, driver.run(command, fs, cwd));
    execution.toolchain_id = toolchain_id;
    execution.outputs = std::move(result.outputs);
    execution.inputs_read = std::move(result.inputs_read);
    execution.log = std::move(result.log);
    return execution;
  }
  if (starts_with(content, kArStubMagic)) {
    COMT_TRY(toolchain::DriverResult result, toolchain::run_ar(argv, fs, cwd));
    execution.outputs = std::move(result.outputs);
    execution.inputs_read = std::move(result.inputs_read);
    execution.log = std::move(result.log);
    return execution;
  }
  if (starts_with(content, kToolsetStubMagic)) {
    // coMtainer toolset entry points (coMtainer-build & co.) are orchestrated
    // from outside the container; inside one they are no-ops.
    return execution;
  }
  return make_error(Errc::failed, argv[0] + ": cannot execute binary file");
}

Container::Container(vfs::Filesystem rootfs, oci::ImageConfig config,
                     const pkg::Repository* apt_source)
    : rootfs_(std::move(rootfs)), config_(std::move(config)), apt_source_(apt_source) {
  for (const std::string& entry : config_.config.env) {
    std::size_t eq = entry.find('=');
    if (eq == std::string::npos) continue;
    env_[entry.substr(0, eq)] = entry.substr(eq + 1);
  }
  if (!config_.config.working_dir.empty()) {
    cwd_ = normalize_path(config_.config.working_dir);
  }
}

Status Container::run_shell(std::string_view line) {
  COMT_TRY(std::vector<shell::Command> commands, shell::parse_command_list(line, env_));
  Status last = Status::success();
  for (const shell::Command& command : commands) {
    last = execute(command.argv);
    if (!last.ok() && command.and_next) return last;
  }
  return last;
}

Status Container::run_argv(const std::vector<std::string>& argv) {
  return execute(argv);
}

Status Container::execute(const std::vector<std::string>& argv) {
  if (argv.empty()) return Status::success();

  // `cd` mutates shell state rather than the filesystem; it is not a tool
  // invocation and is not recorded.
  if (argv[0] == "cd") {
    std::string target =
        argv.size() > 1 ? normalize_path(path_join(cwd_, argv[1])) : std::string("/");
    COMT_TRY(std::string resolved, rootfs_.resolve(target));
    if (!rootfs_.is_directory(resolved)) {
      return make_error(Errc::not_found, "cd: " + target + ": No such directory");
    }
    cwd_ = std::move(resolved);
    return Status::success();
  }

  ToolInvocation invocation;
  invocation.argv = argv;
  invocation.cwd = cwd_;
  invocation.env = env_;

  Status status = dispatch(argv, invocation);

  invocation.succeeded = status.ok();
  if (!status.ok()) invocation.message = status.error().to_string();
  // Point-in-time digests: the recorded hashes must reflect file content as
  // the tool saw it, so they are taken immediately after the invocation.
  for (const std::vector<std::string>* paths :
       {&invocation.inputs_read, &invocation.outputs}) {
    for (const std::string& path : *paths) {
      auto content = rootfs_.read_file(path);
      if (content.ok()) invocation.digests[path] = Sha256::hex_digest(content.value());
    }
  }
  if (record_ != nullptr) record_->invocations.push_back(std::move(invocation));
  return status;
}

Status Container::dispatch(const std::vector<std::string>& argv, ToolInvocation& invocation) {
  const std::string& name = argv[0];
  if (contains(name, "/") || !is_builtin(name)) {
    auto execution = exec_tool(argv, rootfs_, cwd_, config_.architecture, env_);
    if (!execution.ok()) return execution.error();
    invocation.outputs = std::move(execution.value().outputs);
    invocation.inputs_read = std::move(execution.value().inputs_read);
    invocation.resolved_program = std::move(execution.value().resolved_program);
    invocation.toolchain_id = std::move(execution.value().toolchain_id);
    return Status::success();
  }

  auto at = [&](const std::string& path) { return normalize_path(path_join(cwd_, path)); };

  if (name == "true") return Status::success();

  if (name == "mkdir") {
    for (std::size_t i = 1; i < argv.size(); ++i) {
      if (argv[i] == "-p") continue;
      COMT_TRY_STATUS(rootfs_.make_directories(at(argv[i])));
    }
    return Status::success();
  }

  if (name == "touch") {
    for (std::size_t i = 1; i < argv.size(); ++i) {
      std::string path = at(argv[i]);
      if (!rootfs_.exists(path)) {
        COMT_TRY_STATUS(rootfs_.write_file(path, ""));
      }
      invocation.outputs.push_back(path);
    }
    return Status::success();
  }

  if (name == "cp") {
    std::vector<std::string> paths;
    bool recursive = false;
    for (std::size_t i = 1; i < argv.size(); ++i) {
      if (argv[i] == "-r" || argv[i] == "-R" || argv[i] == "-a") {
        recursive = true;
      } else {
        paths.push_back(at(argv[i]));
      }
    }
    if (paths.size() < 2) return make_error(Errc::invalid_argument, "cp: missing operand");
    std::string dest = paths.back();
    paths.pop_back();
    for (const std::string& source : paths) {
      if (!rootfs_.exists(source)) {
        return make_error(Errc::not_found, "cp: cannot stat '" + source + "'");
      }
      if (rootfs_.is_directory(source) && !recursive) {
        return make_error(Errc::invalid_argument,
                          "cp: -r not specified; omitting directory '" + source + "'");
      }
      std::string target = rootfs_.is_directory(dest) && !rootfs_.is_directory(source)
                               ? path_join(dest, path_basename(source))
                               : dest;
      COMT_TRY_STATUS(copy_within(rootfs_, source, target));
      invocation.inputs_read.push_back(source);
      invocation.outputs.push_back(target);
    }
    return Status::success();
  }

  if (name == "mv") {
    if (argv.size() != 3) return make_error(Errc::invalid_argument, "mv: missing operand");
    std::string source = at(argv[1]);
    std::string dest = at(argv[2]);
    if (!rootfs_.exists(source)) {
      return make_error(Errc::not_found, "mv: cannot stat '" + source + "'");
    }
    if (rootfs_.is_directory(dest)) dest = path_join(dest, path_basename(source));
    COMT_TRY_STATUS(rootfs_.rename(source, dest));
    invocation.outputs.push_back(dest);
    return Status::success();
  }

  if (name == "rm") {
    bool force = false;
    std::vector<std::string> paths;
    for (std::size_t i = 1; i < argv.size(); ++i) {
      if (argv[i] == "-f" || argv[i] == "-rf" || argv[i] == "-fr") {
        force = true;
      } else if (argv[i] == "-r" || argv[i] == "-R") {
        continue;  // vfs remove is always recursive
      } else {
        paths.push_back(at(argv[i]));
      }
    }
    for (const std::string& path : paths) {
      if (!rootfs_.exists(path)) {
        if (force) continue;
        return make_error(Errc::not_found, "rm: cannot remove '" + path + "'");
      }
      COMT_TRY_STATUS(rootfs_.remove(path));
    }
    return Status::success();
  }

  if (name == "ln") {
    if (argv.size() != 4 || argv[1] != "-s") {
      return make_error(Errc::unsupported, "ln: only 'ln -s target link' is supported");
    }
    std::string link = at(argv[3]);
    COMT_TRY_STATUS(rootfs_.make_symlink(link, argv[2]));
    invocation.outputs.push_back(link);
    return Status::success();
  }

  if (name == "echo") {
    COMT_TRY(RedirectSplit redirect, split_redirect(argv));
    if (!redirect.target.empty()) {
      std::string path = at(redirect.target);
      COMT_TRY_STATUS(rootfs_.write_file(path, join(redirect.args, " ") + "\n"));
      invocation.outputs.push_back(path);
    }
    return Status::success();
  }

  if (name == "cat") {
    COMT_TRY(RedirectSplit redirect, split_redirect(argv));
    std::string text;
    for (const std::string& file : redirect.args) {
      std::string path = at(file);
      COMT_TRY(std::string content, rootfs_.read_file(path));
      text += content;
      invocation.inputs_read.push_back(path);
    }
    if (!redirect.target.empty()) {
      std::string path = at(redirect.target);
      COMT_TRY_STATUS(rootfs_.write_file(path, std::move(text)));
      invocation.outputs.push_back(path);
    }
    return Status::success();
  }

  if (name == "make") {
    auto targets = run_make(*this, argv);
    if (!targets.ok()) return targets.error();
    return Status::success();
  }

  if (name == "apt-get" || name == "apt") return builtin_apt(argv);

  return make_error(Errc::not_found, name + ": command not found");
}

Status Container::builtin_apt(const std::vector<std::string>& argv) {
  std::string subcommand;
  std::vector<std::string> names;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    if (starts_with(argv[i], "-")) continue;  // -y, -q and friends
    if (subcommand.empty()) {
      subcommand = argv[i];
    } else {
      names.push_back(argv[i]);
    }
  }
  if (apt_source_ == nullptr) {
    return make_error(Errc::failed, "apt-get: no package sources configured");
  }
  if (subcommand == "update") return Status::success();
  if (subcommand == "install") {
    COMT_TRY(pkg::Database database, pkg::Database::load(rootfs_));
    COMT_TRY(std::vector<const pkg::Package*> order,
             pkg::resolve(*apt_source_, names, database.installed_names()));
    for (const pkg::Package* package : order) {
      if (database.installed(package->name)) continue;
      COMT_TRY_STATUS(database.install(rootfs_, *package));
    }
    return Status::success();
  }
  if (subcommand == "remove" || subcommand == "purge") {
    COMT_TRY(pkg::Database database, pkg::Database::load(rootfs_));
    for (const std::string& package : names) {
      COMT_TRY_STATUS(database.remove(rootfs_, package));
    }
    return Status::success();
  }
  return make_error(Errc::unsupported, "apt-get: unsupported subcommand '" + subcommand + "'");
}

}  // namespace comt::buildexec
