// Quickstart: the full coMtainer workflow for one application (LULESH),
// mirroring the paper's artifact walkthrough (§Appendix B.2):
//
//   1. build the two-stage image with coMtainer Env/Base bases (user side)
//   2. coMtainer-build  -> extended image  (<tag>+coM)
//   3. push/pull through a registry
//   4. coMtainer-rebuild -> rebuilt image  (<tag>+coMre)   (system side)
//   5. coMtainer-redirect -> optimized image (<tag>+opt)
//   6. run original vs optimized and compare.
#include <cstdio>

#include "core/backend.hpp"
#include "registry/registry.hpp"
#include "workloads/harness.hpp"

using namespace comt;

int main() {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  const workloads::AppSpec* app = workloads::find_app("lulesh");
  if (app == nullptr) {
    std::fprintf(stderr, "lulesh missing from corpus\n");
    return 1;
  }

  std::printf("== coMtainer quickstart: %s on %s ==\n\n", app->name.c_str(),
              system.name.c_str());

  // --- user side -------------------------------------------------------------
  workloads::Evaluation world(system);
  auto prepared = world.prepare(*app);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", prepared.error().to_string().c_str());
    return 1;
  }
  std::printf("[user]   built %s (%.1f MiB) and extended image %s (+%.2f MiB cache)\n",
              prepared.value().dist_tag.c_str(),
              workloads::to_sim_mib(prepared.value().image_bytes),
              prepared.value().extended_tag.c_str(),
              workloads::to_sim_mib(prepared.value().cache_layer_bytes));

  // --- distribution ------------------------------------------------------------
  registry::Registry hub;
  auto pushed = hub.push(world.layout(), prepared.value().extended_tag, "demo/lulesh",
                         "latest");
  if (!pushed.ok()) {
    std::fprintf(stderr, "push failed: %s\n", pushed.error().to_string().c_str());
    return 1;
  }
  std::printf("[hub]    pushed %s (%zu blobs stored)\n",
              prepared.value().extended_tag.c_str(), hub.stats().blobs);

  // --- system side -------------------------------------------------------------
  auto adapted_tag = world.adapt(*app, prepared.value());
  if (!adapted_tag.ok()) {
    std::fprintf(stderr, "rebuild/redirect failed: %s\n",
                 adapted_tag.error().to_string().c_str());
    return 1;
  }
  std::printf("[system] rebuilt and redirected -> %s\n", adapted_tag.value().c_str());

  const workloads::WorkloadInput& input = app->inputs.front();
  auto original = world.run_image(prepared.value().dist_tag, input, system.nodes);
  auto adapted = world.run_image(adapted_tag.value(), input, system.nodes);
  if (!original.ok() || !adapted.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 (!original.ok() ? original.error() : adapted.error()).to_string().c_str());
    return 1;
  }
  std::printf("\n  original image : %7.2f s\n", original.value());
  std::printf("  adapted image  : %7.2f s   (%.0f%% faster)\n", adapted.value(),
              (original.value() / adapted.value() - 1.0) * 100.0);
  return 0;
}
