// Directory-backed KvStore.
//
// Each key maps to one file under the root: '/' in the key is a directory
// separator, every other byte outside [A-Za-z0-9._+-] is percent-encoded, so
// arbitrary keys (journal keys carry ':' and '|') round-trip through any
// POSIX filesystem. Puts are atomic — write to a temp file under
// <root>/.tmp, then rename over the final path — so readers never observe a
// half-written value and a crash leaves at worst an orphan temp file.
//
// Two framing modes:
//  - framed (default): values are stored as [u32 size][u64 fnv1a64][bytes],
//    the write-ahead journal's record convention, so a torn or bit-flipped
//    file is detected on get() and reported as Errc::corrupt instead of
//    handing damaged bytes to the caller.
//  - unframed: raw bytes on disk. Used where the on-disk format is fixed by
//    an external spec — the OCI image layout, whose blobs are verified by
//    their SHA-256 content address instead.
//
// sync() fsyncs every file written since the last sync (and its directory),
// the durability point a production deployment would place after a batch of
// writes.
#pragma once

#include <filesystem>
#include <set>
#include <string>
#include <string_view>

#include "store/store.hpp"

namespace comt::store {

class DiskStore final : public KvStore {
 public:
  struct Options {
    /// Frame values with the journal's [u32 size][u64 fnv1a64] header for
    /// torn-write detection. Disable only for externally specified formats
    /// (OCI layout directories) that carry their own integrity story.
    bool framed = true;
  };

  /// Binds to `root`. The directory is created lazily on the first put, so
  /// opening a store read-only on a missing directory has no side effects.
  explicit DiskStore(std::string root);
  DiskStore(std::string root, Options options);

  Result<std::string> get(std::string_view key) const override;
  Status put(std::string_view key, std::string value) override;
  Status erase(std::string_view key) override;
  bool contains(std::string_view key) const override;
  Result<std::uint64_t> size(std::string_view key) const override;
  std::vector<KvEntry> list(std::string_view prefix = {}) const override;
  Status sync() override;

  const std::string& root() const { return root_; }
  bool framed() const { return options_.framed; }

 private:
  Result<std::filesystem::path> key_path(std::string_view key) const;
  Status write_atomic(const std::filesystem::path& path, std::string_view bytes);

  std::string root_;
  Options options_;
  mutable std::mutex mutex_;  ///< guards dirty_ and temp_seq_
  std::set<std::string> dirty_;  ///< files written since the last sync()
  std::uint64_t temp_seq_ = 0;
};

}  // namespace comt::store
