#include "vfs/vfs.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace comt::vfs {
namespace {

/// True if `path` is inside the directory `dir` (not equal to it).
bool is_under(std::string_view path, std::string_view dir) {
  if (dir == "/") return path.size() > 1;
  return path.size() > dir.size() && starts_with(path, dir) && path[dir.size()] == '/';
}

std::string whiteout_path(std::string_view deleted) {
  return path_join(path_dirname(deleted),
                   std::string(kWhiteoutPrefix) + path_basename(deleted));
}

}  // namespace

Filesystem::NodeRef Filesystem::make_node(NodeType type, std::string content,
                                          std::uint32_t mode) {
  auto node = std::make_shared<Node>();
  node->type = type;
  node->content = std::move(content);
  node->mode = mode;
  return node;
}

Filesystem::Filesystem() {
  nodes_.emplace("/", make_node(NodeType::directory, "", 0755));
}

bool Filesystem::exists(std::string_view path) const { return lookup(path) != nullptr; }

bool Filesystem::is_directory(std::string_view path) const {
  const Node* node = lookup(path);
  return node != nullptr && node->type == NodeType::directory;
}

bool Filesystem::is_regular(std::string_view path) const {
  const Node* node = lookup(path);
  return node != nullptr && node->type == NodeType::regular;
}

bool Filesystem::is_symlink(std::string_view path) const {
  const Node* node = lookup(path);
  return node != nullptr && node->type == NodeType::symlink;
}

const Node* Filesystem::lookup(std::string_view path) const {
  auto it = nodes_.find(normalize_path(path));
  return it == nodes_.end() ? nullptr : it->second.get();
}

Result<std::string> Filesystem::resolve(std::string_view path) const {
  std::string current = normalize_path(path);
  // Bounded symlink chain to catch cycles (Linux uses 40).
  for (int hops = 0; hops < 40; ++hops) {
    auto it = nodes_.find(current);
    if (it == nodes_.end() || it->second->type != NodeType::symlink) return current;
    const std::string& target = it->second->content;
    current = target.front() == '/' ? normalize_path(target)
                                    : path_join(path_dirname(current), target);
  }
  return make_error(Errc::corrupt, "symlink loop resolving " + std::string(path));
}

Result<std::string> Filesystem::read_file(std::string_view path) const {
  COMT_TRY(std::string real, resolve(path));
  const Node* node = lookup(real);
  if (node == nullptr) return make_error(Errc::not_found, "no such file: " + real);
  if (node->type != NodeType::regular) {
    return make_error(Errc::invalid_argument, "not a regular file: " + real);
  }
  return node->content;
}

Result<std::vector<std::string>> Filesystem::list_directory(std::string_view path) const {
  COMT_TRY(std::string real, resolve(path));
  const Node* node = lookup(real);
  if (node == nullptr) return make_error(Errc::not_found, "no such directory: " + real);
  if (node->type != NodeType::directory) {
    return make_error(Errc::invalid_argument, "not a directory: " + real);
  }
  std::vector<std::string> names;
  std::string prefix = real == "/" ? "/" : real + "/";
  for (auto it = nodes_.upper_bound(prefix); it != nodes_.end(); ++it) {
    const std::string& candidate = it->first;
    if (!starts_with(candidate, prefix)) break;
    std::string_view rest = std::string_view(candidate).substr(prefix.size());
    if (rest.find('/') == std::string_view::npos) names.emplace_back(rest);
  }
  return names;
}

std::vector<std::string> Filesystem::all_paths() const {
  std::vector<std::string> paths;
  paths.reserve(nodes_.size());
  for (const auto& [path, node] : nodes_) {
    if (path != "/") paths.push_back(path);
  }
  return paths;
}

std::uint64_t Filesystem::total_file_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [path, node] : nodes_) {
    if (node->type == NodeType::regular) total += node->content.size();
  }
  return total;
}

Status Filesystem::insert_parents(std::string_view path) {
  std::string dir = path_dirname(path);
  if (dir == "/" || dir == ".") return Status::success();
  auto it = nodes_.find(dir);
  if (it != nodes_.end()) {
    if (it->second->type != NodeType::directory) {
      return make_error(Errc::invalid_argument, "parent is not a directory: " + dir);
    }
    return Status::success();
  }
  COMT_TRY_STATUS(insert_parents(dir));
  nodes_.emplace(std::move(dir), make_node(NodeType::directory, "", 0755));
  return Status::success();
}

Status Filesystem::make_directories(std::string_view path, std::uint32_t mode) {
  std::string normal = normalize_path(path);
  if (normal == "/") return Status::success();
  auto it = nodes_.find(normal);
  if (it != nodes_.end()) {
    if (it->second->type != NodeType::directory) {
      return make_error(Errc::already_exists, "exists and is not a directory: " + normal);
    }
    return Status::success();
  }
  COMT_TRY_STATUS(insert_parents(normal));
  nodes_.emplace(std::move(normal), make_node(NodeType::directory, "", mode));
  return Status::success();
}

Status Filesystem::write_file(std::string_view path, std::string content, std::uint32_t mode) {
  std::string normal = normalize_path(path);
  auto it = nodes_.find(normal);
  if (it != nodes_.end() && it->second->type == NodeType::directory) {
    return make_error(Errc::already_exists, "is a directory: " + normal);
  }
  COMT_TRY_STATUS(insert_parents(normal));
  // A fresh node, never an in-place edit: snapshots sharing the old node keep
  // reading the old bytes.
  nodes_[normal] = make_node(NodeType::regular, std::move(content), mode);
  return Status::success();
}

Status Filesystem::make_symlink(std::string_view path, std::string target) {
  std::string normal = normalize_path(path);
  auto it = nodes_.find(normal);
  if (it != nodes_.end() && it->second->type == NodeType::directory) {
    return make_error(Errc::already_exists, "is a directory: " + normal);
  }
  COMT_TRY_STATUS(insert_parents(normal));
  nodes_[normal] = make_node(NodeType::symlink, std::move(target), 0777);
  return Status::success();
}

Status Filesystem::remove(std::string_view path) {
  std::string normal = normalize_path(path);
  if (normal == "/") return make_error(Errc::invalid_argument, "cannot remove /");
  auto it = nodes_.find(normal);
  if (it == nodes_.end()) return make_error(Errc::not_found, "no such path: " + normal);
  // Erase the node and, for directories, the whole subtree.
  it = nodes_.erase(it);
  while (it != nodes_.end() && is_under(it->first, normal)) it = nodes_.erase(it);
  return Status::success();
}

Status Filesystem::rename(std::string_view from, std::string_view to) {
  std::string src = normalize_path(from);
  std::string dst = normalize_path(to);
  auto it = nodes_.find(src);
  if (it == nodes_.end()) return make_error(Errc::not_found, "no such path: " + src);
  if (src == dst) return Status::success();
  if (dst == src || is_under(dst, src)) {
    return make_error(Errc::invalid_argument, "cannot rename a directory into itself");
  }
  COMT_TRY_STATUS(insert_parents(dst));
  // Collect the subtree first; mutating the map invalidates range iteration.
  // Node pointers are shared, so a rename never copies file content.
  std::vector<std::pair<std::string, NodeRef>> moved;
  moved.emplace_back(dst, it->second);
  for (auto sub = std::next(it); sub != nodes_.end() && is_under(sub->first, src); ++sub) {
    moved.emplace_back(dst + sub->first.substr(src.size()), sub->second);
  }
  COMT_TRY_STATUS(remove(src));
  if (nodes_.count(dst) != 0) COMT_TRY_STATUS(remove(dst));
  for (auto& [path, node] : moved) nodes_[std::move(path)] = std::move(node);
  return Status::success();
}

Status Filesystem::copy_from(const Filesystem& other, std::string_view source,
                             std::string_view dest) {
  COMT_TRY(std::string src, other.resolve(source));
  auto root_it = other.nodes_.find(src);
  if (root_it == other.nodes_.end()) {
    return make_error(Errc::not_found, "no such path: " + src);
  }
  const NodeRef& root = root_it->second;
  std::string dst = normalize_path(dest);
  if (root->type != NodeType::directory) {
    // Copying a file onto an existing directory places it inside (cp semantics).
    if (is_directory(dst)) dst = path_join(dst, path_basename(src));
    COMT_TRY_STATUS(insert_parents(dst));
    nodes_[dst] = root;  // share, don't duplicate
    return Status::success();
  }
  COMT_TRY_STATUS(make_directories(dst));
  std::string prefix = src == "/" ? "/" : src + "/";
  for (auto it = other.nodes_.upper_bound(prefix); it != other.nodes_.end(); ++it) {
    if (!starts_with(it->first, prefix)) break;
    std::string target = path_join(dst, it->first.substr(prefix.size()));
    COMT_TRY_STATUS(insert_parents(target));
    nodes_[target] = it->second;  // share, don't duplicate
  }
  return Status::success();
}

void Filesystem::walk(const std::function<bool(const std::string&, const Node&)>& visit) const {
  for (const auto& [path, node] : nodes_) {
    if (path == "/") continue;
    if (!visit(path, *node)) return;
  }
}

bool Filesystem::operator==(const Filesystem& other) const {
  if (nodes_.size() != other.nodes_.size()) return false;
  auto mine = nodes_.begin();
  auto theirs = other.nodes_.begin();
  for (; mine != nodes_.end(); ++mine, ++theirs) {
    if (mine->first != theirs->first) return false;
    // Shared node -> trivially equal; otherwise compare content.
    if (mine->second == theirs->second) continue;
    if (!(*mine->second == *theirs->second)) return false;
  }
  return true;
}

LayerDiff diff(const Filesystem& base, const Filesystem& target) {
  LayerDiff out;
  // Additions and modifications.
  target.walk([&](const std::string& path, const Node& node) {
    const Node* old = base.lookup(path);
    if (old == nullptr) {
      out.upper.make_directories(path_dirname(path));
      ++out.added;
    } else if (old == &node || (old->type == node.type && old->content == node.content &&
                                old->mode == node.mode)) {
      return true;  // unchanged (shared nodes short-circuit on identity)
    } else {
      ++out.modified;
    }
    switch (node.type) {
      case NodeType::directory:
        out.upper.make_directories(path, node.mode);
        break;
      case NodeType::regular:
        out.upper.write_file(path, node.content, node.mode);
        break;
      case NodeType::symlink:
        out.upper.make_symlink(path, node.content);
        break;
    }
    return true;
  });
  // Deletions become whiteout files. A deleted directory produces a single
  // whiteout for its root (children vanish with it).
  std::string skip_under;
  base.walk([&](const std::string& path, const Node&) {
    if (!skip_under.empty() && is_under(path, skip_under)) return true;
    if (!target.exists(path)) {
      out.upper.write_file(whiteout_path(path), "", 0);
      ++out.deleted;
      skip_under = path;
    }
    return true;
  });
  return out;
}

Status apply_layer(Filesystem& base, const Filesystem& layer) {
  // Pass 1: whiteouts and opaque markers.
  std::vector<std::string> whiteouts;
  std::vector<std::string> opaque_dirs;
  layer.walk([&](const std::string& path, const Node&) {
    std::string name = path_basename(path);
    if (name == kOpaqueMarker) {
      opaque_dirs.push_back(path_dirname(path));
    } else if (starts_with(name, kWhiteoutPrefix)) {
      whiteouts.push_back(path_join(path_dirname(path),
                                    name.substr(kWhiteoutPrefix.size())));
    }
    return true;
  });
  for (const std::string& dir : opaque_dirs) {
    if (base.is_directory(dir)) {
      COMT_TRY_STATUS(base.remove(dir));
      COMT_TRY_STATUS(base.make_directories(dir));
    }
  }
  for (const std::string& victim : whiteouts) {
    if (base.exists(victim)) COMT_TRY_STATUS(base.remove(victim));
  }
  // Pass 2: content. A regular file replacing a directory (or vice versa)
  // first removes the old node, per overlay semantics.
  Status failure = Status::success();
  layer.walk([&](const std::string& path, const Node& node) {
    std::string name = path_basename(path);
    if (name == kOpaqueMarker || starts_with(name, kWhiteoutPrefix)) return true;
    const Node* old = base.lookup(path);
    if (old != nullptr && old->type != node.type) {
      Status st = base.remove(path);
      if (!st.ok()) {
        failure = st;
        return false;
      }
    }
    Status st = Status::success();
    switch (node.type) {
      case NodeType::directory:
        st = base.make_directories(path, node.mode);
        break;
      case NodeType::regular:
        st = base.write_file(path, node.content, node.mode);
        break;
      case NodeType::symlink:
        st = base.make_symlink(path, node.content);
        break;
    }
    if (!st.ok()) {
      failure = st;
      return false;
    }
    return true;
  });
  return failure;
}

}  // namespace comt::vfs
