#include "tar/tar.hpp"

#include <cstring>

#include "support/strings.hpp"

namespace comt::tar {
namespace {

constexpr std::size_t kBlockSize = 512;

// ustar header field offsets/sizes (POSIX.1-1988).
struct HeaderLayout {
  static constexpr std::size_t name = 0, name_len = 100;
  static constexpr std::size_t mode = 100, mode_len = 8;
  static constexpr std::size_t uid = 108, uid_len = 8;
  static constexpr std::size_t gid = 116, gid_len = 8;
  static constexpr std::size_t size = 124, size_len = 12;
  static constexpr std::size_t mtime = 136, mtime_len = 12;
  static constexpr std::size_t chksum = 148, chksum_len = 8;
  static constexpr std::size_t typeflag = 156;
  static constexpr std::size_t linkname = 157, linkname_len = 100;
  static constexpr std::size_t magic = 257;
};

void write_octal(char* field, std::size_t length, std::uint64_t value) {
  // Left-zero-padded octal, NUL-terminated. Staged through a buffer wide
  // enough for any uint64 so the compiler can prove no truncation.
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%0*llo", static_cast<int>(length - 1),
                static_cast<unsigned long long>(value));
  std::memcpy(field, buffer, length - 1);
  field[length - 1] = '\0';
}

std::uint64_t read_octal(const char* field, std::size_t length) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < length; ++i) {
    char c = field[i];
    if (c == '\0' || c == ' ') break;
    if (c < '0' || c > '7') continue;
    value = value * 8 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

void emit_header(std::string& out, std::string_view name, std::uint64_t size,
                 std::uint32_t mode, char typeflag, std::string_view linkname) {
  char header[kBlockSize];
  std::memset(header, 0, sizeof header);
  std::memcpy(header + HeaderLayout::name, name.data(),
              std::min<std::size_t>(name.size(), HeaderLayout::name_len));
  write_octal(header + HeaderLayout::mode, HeaderLayout::mode_len, mode);
  write_octal(header + HeaderLayout::uid, HeaderLayout::uid_len, 0);
  write_octal(header + HeaderLayout::gid, HeaderLayout::gid_len, 0);
  write_octal(header + HeaderLayout::size, HeaderLayout::size_len, size);
  write_octal(header + HeaderLayout::mtime, HeaderLayout::mtime_len, 0);
  header[HeaderLayout::typeflag] = typeflag;
  std::memcpy(header + HeaderLayout::linkname, linkname.data(),
              std::min<std::size_t>(linkname.size(), HeaderLayout::linkname_len));
  std::memcpy(header + HeaderLayout::magic, "ustar\00000", 8);
  // Checksum: sum of all bytes with the checksum field itself as spaces.
  std::memset(header + HeaderLayout::chksum, ' ', HeaderLayout::chksum_len);
  unsigned sum = 0;
  for (char c : header) sum += static_cast<unsigned char>(c);
  std::snprintf(header + HeaderLayout::chksum, HeaderLayout::chksum_len, "%06o", sum);
  header[HeaderLayout::chksum + 7] = ' ';
  out.append(header, kBlockSize);
}

void emit_padded(std::string& out, std::string_view data) {
  out.append(data);
  std::size_t remainder = data.size() % kBlockSize;
  if (remainder != 0) out.append(kBlockSize - remainder, '\0');
}

/// Emits a GNU long-name record when `name` exceeds the ustar field.
void emit_name(std::string& out, const std::string& name, std::uint64_t size,
               std::uint32_t mode, char typeflag, std::string_view linkname) {
  if (name.size() > HeaderLayout::name_len) {
    std::string with_nul = name + '\0';
    emit_header(out, "././@LongLink", with_nul.size(), 0644, 'L', "");
    emit_padded(out, with_nul);
  }
  emit_header(out, name.size() > HeaderLayout::name_len
                       ? std::string_view(name).substr(0, HeaderLayout::name_len)
                       : std::string_view(name),
              size, mode, typeflag, linkname);
}

}  // namespace

std::string pack(const vfs::Filesystem& tree) {
  std::string out;
  tree.walk([&](const std::string& path, const vfs::Node& node) {
    // Archive member names are relative ("usr/bin/gcc"), directories get a
    // trailing slash per convention.
    std::string name = path.substr(1);
    switch (node.type) {
      case vfs::NodeType::directory:
        emit_name(out, name + "/", 0, node.mode, '5', "");
        break;
      case vfs::NodeType::regular:
        emit_name(out, name, node.content.size(), node.mode, '0', "");
        emit_padded(out, node.content);
        break;
      case vfs::NodeType::symlink:
        emit_name(out, name, 0, node.mode, '2', node.content);
        break;
    }
    return true;
  });
  // End-of-archive: two zero blocks.
  out.append(2 * kBlockSize, '\0');
  return out;
}

Result<vfs::Filesystem> unpack(std::string_view archive) {
  vfs::Filesystem tree;
  std::size_t offset = 0;
  std::string pending_long_name;
  while (offset + kBlockSize <= archive.size()) {
    const char* header = archive.data() + offset;
    // Two consecutive zero blocks terminate the archive; one zero block is
    // treated the same for robustness.
    bool all_zero = true;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
      if (header[i] != '\0') {
        all_zero = false;
        break;
      }
    }
    if (all_zero) break;
    offset += kBlockSize;

    std::size_t name_length = strnlen(header + HeaderLayout::name, HeaderLayout::name_len);
    std::string name(header + HeaderLayout::name, name_length);
    std::uint64_t size = read_octal(header + HeaderLayout::size, HeaderLayout::size_len);
    std::uint32_t mode = static_cast<std::uint32_t>(
        read_octal(header + HeaderLayout::mode, HeaderLayout::mode_len));
    char typeflag = header[HeaderLayout::typeflag];
    std::size_t linkname_length =
        strnlen(header + HeaderLayout::linkname, HeaderLayout::linkname_len);
    std::string linkname(header + HeaderLayout::linkname, linkname_length);

    std::size_t padded = (size + kBlockSize - 1) / kBlockSize * kBlockSize;
    if (offset + padded > archive.size()) {
      return make_error(Errc::corrupt, "tar: truncated member " + name);
    }
    std::string_view payload = archive.substr(offset, size);
    offset += padded;

    if (typeflag == 'L') {
      pending_long_name.assign(payload.data(), payload.size());
      // Trim the trailing NUL the writer appends.
      while (!pending_long_name.empty() && pending_long_name.back() == '\0') {
        pending_long_name.pop_back();
      }
      continue;
    }
    if (!pending_long_name.empty()) {
      name = pending_long_name;
      pending_long_name.clear();
    }
    if (name.empty()) return make_error(Errc::corrupt, "tar: empty member name");
    std::string path = "/" + name;
    switch (typeflag) {
      case '5':
        COMT_TRY_STATUS(tree.make_directories(path, mode));
        break;
      case '0':
      case '\0':
        COMT_TRY_STATUS(tree.write_file(path, std::string(payload), mode));
        break;
      case '2':
        COMT_TRY_STATUS(tree.make_symlink(path, linkname));
        break;
      default:
        return make_error(Errc::unsupported,
                          std::string("tar: unsupported typeflag '") + typeflag + "' for " + name);
    }
  }
  return tree;
}

}  // namespace comt::tar
