// Cross-ISA workflow (§5.5): take an extended image built on an x86-64
// workstation and, without touching the user side again, rebuild + redirect
// it on the AArch64 cluster. The cross-ISA adapter strips the build script's
// x86 machine flags; the AArch64 Sysenv supplies toolchain and libraries.
// Also demonstrates the honest failure mode: an app whose build generates an
// ISA-locked configuration header refuses to cross.
#include <cstdio>

#include "buildexec/builder.hpp"
#include "core/backend.hpp"
#include "dockerfile/dockerfile.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

Result<double> try_cross(const workloads::AppSpec& app, bool portable_script) {
  const sysmodel::SystemProfile& target = sysmodel::SystemProfile::aarch64_cluster();
  oci::Layout layout;
  COMT_TRY_STATUS(workloads::install_user_images(layout, "amd64"));
  COMT_TRY_STATUS(workloads::install_system_images(layout, target));

  // --- user side: x86-64 workstation -----------------------------------------
  std::string script = portable_script
                           ? workloads::dockerfile_cross_comt(app, "amd64")
                           : workloads::dockerfile_text(app, "amd64", true);
  COMT_TRY(dockerfile::Dockerfile file, dockerfile::parse(script));
  buildexec::ImageBuilder builder(layout);
  builder.set_apt_source(&workloads::ubuntu_repo("amd64"));
  buildexec::BuildRecord record;
  std::string tag = app.name + ".dist";
  COMT_TRY(oci::Image dist,
           builder.build(file, workloads::build_context(app), tag, "", &record));
  (void)dist;
  COMT_TRY(oci::Image stage, layout.find_image(tag + ".stage0"));
  COMT_TRY(vfs::Filesystem build_rootfs, layout.flatten(stage));
  COMT_TRY(oci::Image extended,
           core::comtainer_build(layout, tag, workloads::base_tag("amd64"), record,
                                 build_rootfs));
  (void)extended;

  // --- system side: AArch64 cluster -------------------------------------------
  core::CrossIsaAdapter cross;
  core::LibraryAdapter libo;
  core::ToolchainAdapter cxxo;
  core::RebuildOptions rebuild;
  rebuild.system = &target;
  rebuild.system_repo = &workloads::system_repo(target);
  rebuild.sysenv_tag = workloads::sysenv_tag(target);
  rebuild.adapters = {&cross, &libo, &cxxo};
  COMT_TRY(core::RebuildReport rebuilt, core::comtainer_rebuild(layout, tag + "+coM", rebuild));
  (void)rebuilt;

  core::RedirectOptions redirect;
  redirect.system = &target;
  redirect.system_repo = &workloads::system_repo(target);
  redirect.rebase_tag = workloads::rebase_tag(target);
  COMT_TRY(core::RedirectReport redirected,
           core::comtainer_redirect(layout, tag + "+coMre", redirect));

  COMT_TRY(vfs::Filesystem rootfs, layout.flatten(redirected.image));
  sysmodel::ExecutionEngine engine(target);
  COMT_TRY(sysmodel::RunReport report,
           engine.run(rootfs, app.binary_path(),
                      app.inputs.front().run_request(target.nodes)));
  return report.seconds;
}

}  // namespace

int main() {
  std::printf("== cross-ISA: x86-64 extended images rebuilt on the AArch64 cluster ==\n\n");

  // A portable app, with the (slightly modified) build script — succeeds.
  const workloads::AppSpec* comd = workloads::find_app("comd");
  auto ok = try_cross(*comd, /*portable_script=*/true);
  if (ok.ok()) {
    std::printf("comd:   crossed x86-64 -> AArch64, runs in %.2fs on 16 nodes\n",
                ok.value());
  } else {
    std::printf("comd:   FAILED: %s\n", ok.error().to_string().c_str());
    return 1;
  }

  // The same app with its unmodified x86 build script (carries -mavx2):
  // the cross-ISA adapter strips machine flags, so this also crosses.
  auto flags = try_cross(*comd, /*portable_script=*/false);
  std::printf("comd*:  unmodified x86 script %s (adapter strips -mavx2/-mfma)\n",
              flags.ok() ? "still crosses" : flags.error().to_string().c_str());

  // An ISA-locked app (generated arch_tune.h pins x86_64) — fails honestly.
  const workloads::AppSpec* hpl = workloads::find_app("hpl");
  auto locked = try_cross(*hpl, /*portable_script=*/false);
  if (!locked.ok()) {
    std::printf("hpl:    refused as expected: %s\n", locked.error().message.c_str());
  } else {
    std::printf("hpl:    unexpectedly crossed!\n");
    return 1;
  }
  return 0;
}
