// Reproduces Table 3: the size of each application's original image on both
// architectures and the size of the coMtainer cache layer added to it.
// Sizes are simulated MiB (kSimBytesPerMiB real bytes = 1 reported MiB; the
// 4096:1 scale preserves every ratio the paper discusses).
#include <cstdio>
#include <map>
#include <string>

#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

int main() {
  std::printf("Table 3 — size (in MiB) of original images and cache layers\n\n");

  std::map<std::string, workloads::PreparedApp> x86, arm;
  workloads::Evaluation x86_world(sysmodel::SystemProfile::x86_cluster());
  workloads::Evaluation arm_world(sysmodel::SystemProfile::aarch64_cluster());
  for (const workloads::AppSpec& app : workloads::corpus()) {
    auto a = x86_world.prepare(app);
    auto b = arm_world.prepare(app);
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "prepare(%s) failed\n", app.name.c_str());
      return 1;
    }
    x86[app.name] = a.value();
    arm[app.name] = b.value();
  }

  std::printf("%-10s %14s %14s %10s %10s\n", "app", "image(x86-64)", "image(arm64)",
              "cache", "cache/img");
  double max_ratio_x86 = 0;
  for (const workloads::AppSpec& app : workloads::corpus()) {
    const auto& px = x86[app.name];
    const auto& pa = arm[app.name];
    double image_x86 = workloads::to_sim_mib(px.image_bytes);
    double image_arm = workloads::to_sim_mib(pa.image_bytes);
    double cache = workloads::to_sim_mib(px.cache_layer_bytes);
    double ratio = cache / image_x86 * 100.0;
    max_ratio_x86 = std::max(max_ratio_x86, ratio);
    std::printf("%-10s %13.2f %14.2f %9.2f %9.1f%%\n", app.name.c_str(), image_x86,
                image_arm, cache, ratio);
  }
  std::printf("\n  max cache/image ratio on x86-64: %.1f%% (paper: max 7.1%% on "
              "x86-64, 11.3%% on AArch64)\n",
              max_ratio_x86);
  std::printf("  paper reference rows: comd 170.36/94.87/0.75, lammps "
              "203.30/127.23/14.42, openmx 440.97/359.14/23.99 MiB\n");
  return 0;
}
