// An in-memory OCI image registry: the "repository" box in the paper's
// workflow (Fig. 1/4). Push copies an image (manifest, config, layers) from a
// local layout into the registry store; pull copies it back out. Blobs are
// content-addressed, so repeated pushes of shared base layers deduplicate.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "oci/oci.hpp"
#include "support/error.hpp"

namespace comt::registry {

/// Registry statistics for reporting distribution overhead (Table 3).
struct Stats {
  std::size_t repositories = 0;
  std::size_t blobs = 0;
  std::uint64_t stored_bytes = 0;
  std::uint64_t pushed_bytes = 0;  ///< bytes actually transferred by pushes
  std::uint64_t pulled_bytes = 0;  ///< bytes actually transferred by pulls
};

class Registry {
 public:
  /// Pushes the image tagged `local_tag` in `source` under "name:tag".
  /// Only blobs the registry does not already hold are "transferred".
  Status push(const oci::Layout& source, std::string_view local_tag,
              std::string_view name, std::string_view tag);

  /// Pulls "name:tag" into `destination`, tagging it `local_tag`.
  Status pull(std::string_view name, std::string_view tag, oci::Layout& destination,
              std::string_view local_tag) const;

  bool has(std::string_view name, std::string_view tag) const;

  Stats stats() const;

 private:
  oci::Layout store_;
  std::map<std::string, oci::Digest> references_;  // "name:tag" -> manifest
  mutable Stats transfer_;
};

}  // namespace comt::registry
