#include "sched/dag.hpp"

#include <condition_variable>
#include <map>
#include <mutex>
#include <queue>

#include "obs/stopwatch.hpp"

namespace comt::sched {

Status ScheduleReport::first_error() const {
  // Prefer a job's own failure over a "skipped because a dependency failed"
  // notice — the root cause is what callers should surface.
  for (const JobOutcome& job : jobs) {
    if (!job.status.ok() && !job.skipped) return job.status.error();
  }
  for (const JobOutcome& job : jobs) {
    if (!job.status.ok()) return job.status.error();
  }
  return Status::success();
}

Status DagScheduler::add_job(std::string id, std::vector<std::string> deps, JobFn fn,
                             std::string category) {
  for (const Job& job : jobs_) {
    if (job.id == id) {
      return make_error(Errc::already_exists, "sched: duplicate job '" + id + "'");
    }
  }
  jobs_.push_back(Job{std::move(id), std::move(deps), std::move(fn), std::move(category)});
  return Status::success();
}

Result<ScheduleReport> DagScheduler::run(ThreadPool* pool, const ObsOptions& opts) {
  const obs::Stopwatch schedule_clock;
  const std::size_t count = jobs_.size();

  obs::Histogram* ready_wait_ms = nullptr;
  obs::Counter* executed_count = nullptr;
  obs::Counter* failed_count = nullptr;
  obs::Counter* skipped_count = nullptr;
  if (opts.metrics != nullptr) {
    ready_wait_ms = &opts.metrics->histogram(opts.metric_prefix + ".ready_wait_ms");
    executed_count = &opts.metrics->counter(opts.metric_prefix + ".jobs.executed");
    failed_count = &opts.metrics->counter(opts.metric_prefix + ".jobs.failed");
    skipped_count = &opts.metrics->counter(opts.metric_prefix + ".jobs.skipped");
  }

  // Resolve names to indices and validate edges.
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < count; ++i) index[jobs_[i].id] = i;
  std::vector<std::vector<std::size_t>> dependents(count);
  std::vector<std::size_t> indegree(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    for (const std::string& dep : jobs_[i].deps) {
      auto found = index.find(dep);
      if (found == index.end()) {
        return make_error(Errc::not_found, "sched: job '" + jobs_[i].id +
                                               "' depends on unknown job '" + dep + "'");
      }
      dependents[found->second].push_back(i);
      ++indegree[i];
    }
  }

  // Kahn's algorithm up front: a cycle must be an error, not a deadlock.
  {
    std::vector<std::size_t> degree = indegree;
    std::queue<std::size_t> ready;
    for (std::size_t i = 0; i < count; ++i) {
      if (degree[i] == 0) ready.push(i);
    }
    std::size_t visited = 0;
    while (!ready.empty()) {
      std::size_t job = ready.front();
      ready.pop();
      ++visited;
      for (std::size_t dependent : dependents[job]) {
        if (--degree[dependent] == 0) ready.push(dependent);
      }
    }
    if (visited != count) {
      std::string cyclic;
      for (std::size_t i = 0; i < count; ++i) {
        if (degree[i] != 0) {
          cyclic = jobs_[i].id;
          break;
        }
      }
      return make_error(Errc::invalid_argument,
                        "sched: dependency cycle involving job '" + cyclic + "'");
    }
  }

  ScheduleReport report;
  report.jobs.resize(count);
  for (std::size_t i = 0; i < count; ++i) report.jobs[i].id = jobs_[i].id;

  // Shared execution state. `waiting` counts unresolved dependencies; a job
  // becomes ready at zero. `poisoned` marks jobs with a failed dependency.
  std::mutex mutex;
  std::condition_variable done_cv;
  std::vector<std::size_t> waiting = indegree;
  std::vector<bool> poisoned(count, false);
  std::size_t remaining = count;
  // Per-job dispatch latency: restarted when the job's last dependency
  // resolves, observed when its body starts (frontier jobs count from here).
  std::vector<obs::Stopwatch> ready_at(count);

  // Runs one ready job (or skips it), records its outcome, and returns the
  // dependents this freed. This is the single execution path shared by the
  // sequential and pooled modes, so both produce identical effects.
  auto execute_one = [&](std::size_t job_index) -> std::vector<std::size_t> {
    bool skip;
    {
      std::lock_guard<std::mutex> lock(mutex);
      skip = poisoned[job_index];
    }
    if (ready_wait_ms != nullptr) {
      ready_wait_ms->observe(ready_at[job_index].elapsed_ms());
    }
    const Job& job = jobs_[job_index];
    obs::Span span = obs::maybe_span(opts.tracer, "job:" + job.id, opts.parent,
                                     job.category.empty() ? opts.category : job.category);
    Status status = Status::success();
    double ms = 0;
    if (skip) {
      status = make_error(Errc::failed, "sched: skipped '" + job.id +
                                            "': a dependency failed");
      span.annotate("skipped", std::uint64_t{1});
    } else {
      const obs::Stopwatch job_clock;
      status = job.fn();
      ms = job_clock.elapsed_ms();
    }
    span.end();
    std::vector<std::size_t> freed;
    std::lock_guard<std::mutex> lock(mutex);
    JobOutcome& outcome = report.jobs[job_index];
    outcome.status = status;
    outcome.skipped = skip;
    outcome.wall_ms = ms;
    if (skip) {
      ++report.skipped;
      if (skipped_count != nullptr) skipped_count->add();
    } else {
      ++report.executed;
      if (executed_count != nullptr) executed_count->add();
      if (!status.ok()) {
        ++report.failed;
        if (failed_count != nullptr) failed_count->add();
      }
    }
    bool ok = status.ok() && !skip;
    for (std::size_t dependent : dependents[job_index]) {
      if (!ok) poisoned[dependent] = true;
      if (--waiting[dependent] == 0) {
        ready_at[dependent].restart();
        freed.push_back(dependent);
      }
    }
    if (--remaining == 0) done_cv.notify_all();
    return freed;
  };

  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < count; ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }

  if (pool == nullptr) {
    // Inline: an explicit worklist instead of recursion, FIFO order.
    std::deque<std::size_t> worklist(frontier.begin(), frontier.end());
    while (!worklist.empty()) {
      std::size_t job = worklist.front();
      worklist.pop_front();
      for (std::size_t next : execute_one(job)) worklist.push_back(next);
    }
  } else {
    // Pooled: completion dispatches the freed dependents back into the pool.
    std::function<void(std::size_t)> submit_job = [&](std::size_t job_index) {
      pool->submit([&submit_job, &execute_one, job_index] {
        for (std::size_t next : execute_one(job_index)) submit_job(next);
      });
    };
    for (std::size_t job : frontier) submit_job(job);
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }

  report.wall_ms = schedule_clock.elapsed_ms();
  return report;
}

}  // namespace comt::sched
