#include <gtest/gtest.h>

#include "toolchain/options.hpp"

namespace comt::toolchain {
namespace {

CompileCommand must_parse(std::vector<std::string> argv) {
  auto result = parse_command(argv);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().to_string());
  return result.ok() ? result.value() : CompileCommand{};
}

TEST(OptionTableTest, HasSubstantialCoverage) {
  // The paper's compilation model is derived from the full GCC manual; the
  // reproduction carries several hundred options across all classes.
  EXPECT_GE(OptionTable::gcc().size(), 400u);
}

TEST(OptionTableTest, LookupKinds) {
  const OptionTable& table = OptionTable::gcc();
  ASSERT_NE(table.find("-o"), nullptr);
  EXPECT_EQ(table.find("-o")->kind, OptionKind::separate);
  ASSERT_NE(table.find("-ffast-math"), nullptr);
  EXPECT_EQ(table.find("-ffast-math")->kind, OptionKind::negatable);
  ASSERT_NE(table.find("-std"), nullptr);
  EXPECT_EQ(table.find("-std")->kind, OptionKind::joined_eq);
  EXPECT_EQ(table.find("-made-up-option"), nullptr);
  ASSERT_NE(table.find_joined_prefix("-DNAME"), nullptr);
  EXPECT_EQ(table.find_joined_prefix("-DNAME")->name, "-D");
  // A bare joined option with no glued argument is not a prefix hit.
  EXPECT_EQ(table.find_joined_prefix("-D"), nullptr);
}

TEST(ParseTest, AssembleMode) {
  CompileCommand cmd = must_parse({"gcc", "-O2", "-c", "main.c", "-o", "main.o"});
  EXPECT_EQ(cmd.mode, DriverMode::assemble);
  EXPECT_EQ(cmd.opt_level, 2);
  EXPECT_EQ(cmd.inputs, std::vector<std::string>{"main.c"});
  EXPECT_EQ(cmd.output, "main.o");
}

TEST(ParseTest, LinkModeDefault) {
  CompileCommand cmd = must_parse({"gcc", "a.o", "b.o", "-o", "prog", "-lm", "-lblas"});
  EXPECT_EQ(cmd.mode, DriverMode::link);
  EXPECT_EQ(cmd.inputs, (std::vector<std::string>{"a.o", "b.o"}));
  EXPECT_EQ(cmd.libraries, (std::vector<std::string>{"m", "blas"}));
}

TEST(ParseTest, OptimizationLevels) {
  EXPECT_EQ(must_parse({"gcc", "-O0", "x.c"}).opt_level, 0);
  EXPECT_EQ(must_parse({"gcc", "-O", "x.c"}).opt_level, 1);
  EXPECT_EQ(must_parse({"gcc", "-O1", "x.c"}).opt_level, 1);
  EXPECT_EQ(must_parse({"gcc", "-O3", "x.c"}).opt_level, 3);
  EXPECT_EQ(must_parse({"gcc", "-Ofast", "x.c"}).opt_level, 3);
  CompileCommand size = must_parse({"gcc", "-Os", "x.c"});
  EXPECT_EQ(size.opt_level, 2);
  EXPECT_TRUE(size.size_opt);
  EXPECT_FALSE(parse_command(std::vector<std::string>{"gcc", "-O9x", "x.c"}).ok());
}

TEST(ParseTest, MachineAndStandard) {
  CompileCommand cmd = must_parse(
      {"g++", "-std=c++20", "-march=x86-64-v3", "-mtune=native", "x.cc"});
  EXPECT_EQ(cmd.std_version, "c++20");
  EXPECT_EQ(cmd.march, "x86-64-v3");
  EXPECT_EQ(cmd.mtune, "native");
}

TEST(ParseTest, LtoForms) {
  EXPECT_TRUE(must_parse({"gcc", "-flto", "x.c"}).lto);
  CompileCommand with_value = must_parse({"gcc", "-flto=auto", "x.c"});
  EXPECT_TRUE(with_value.lto);
  EXPECT_EQ(with_value.lto_value, "auto");
  CompileCommand negated = must_parse({"gcc", "-flto", "-fno-lto", "x.c"});
  EXPECT_FALSE(negated.lto);
}

TEST(ParseTest, ProfileForms) {
  EXPECT_TRUE(must_parse({"gcc", "-fprofile-generate", "x.c"}).profile_generate);
  EXPECT_EQ(must_parse({"gcc", "-fprofile-use", "x.c"}).profile_use, ".");
  EXPECT_EQ(must_parse({"gcc", "-fprofile-use=prof.d", "x.c"}).profile_use, "prof.d");
}

TEST(ParseTest, PreprocessorPaths) {
  CompileCommand cmd = must_parse({"gcc", "-Iinclude", "-I", "/usr/inc", "-DA=1",
                                   "-DB", "-UC", "-c", "x.c"});
  EXPECT_EQ(cmd.include_dirs, (std::vector<std::string>{"include", "/usr/inc"}));
  EXPECT_EQ(cmd.defines, (std::vector<std::string>{"A=1", "B"}));
  EXPECT_EQ(cmd.undefines, (std::vector<std::string>{"C"}));
}

TEST(ParseTest, LinkerPassthrough) {
  CompileCommand cmd = must_parse(
      {"gcc", "x.o", "-Wl,-rpath,/opt/lib", "-Xlinker", "--as-needed", "-o", "out"});
  EXPECT_EQ(cmd.linker_args,
            (std::vector<std::string>{"-rpath", "/opt/lib", "--as-needed"}));
}

TEST(ParseTest, NegatedGenericFlags) {
  CompileCommand cmd = must_parse({"gcc", "-ffast-math", "-fno-strict-aliasing",
                                   "-Wno-unused-variable", "-mno-avx2", "x.c"});
  EXPECT_TRUE(cmd.flag_enabled("-ffast-math"));
  bool saw_disabled_alias = false, saw_disabled_warn = false, saw_disabled_avx = false;
  for (const GenericOption& option : cmd.generic) {
    if (option.name == "-fstrict-aliasing") saw_disabled_alias = !option.enabled;
    if (option.name == "-Wunused-variable") saw_disabled_warn = !option.enabled;
    if (option.name == "-mavx2") saw_disabled_avx = !option.enabled;
  }
  EXPECT_TRUE(saw_disabled_alias);
  EXPECT_TRUE(saw_disabled_warn);
  EXPECT_TRUE(saw_disabled_avx);
}

TEST(ParseTest, LastFlagWins) {
  CompileCommand cmd = must_parse({"gcc", "-ffast-math", "-fno-fast-math", "x.c"});
  EXPECT_FALSE(cmd.flag_enabled("-ffast-math"));
}

TEST(ParseTest, SharedAndPic) {
  CompileCommand cmd = must_parse({"gcc", "-shared", "-fPIC", "x.o", "-o", "libx.so"});
  EXPECT_TRUE(cmd.shared);
  EXPECT_TRUE(cmd.pic);
  EXPECT_TRUE(must_parse({"gcc", "-static", "x.o"}).static_link);
}

TEST(ParseTest, UnknownDashFOptionsPreserved) {
  CompileCommand cmd = must_parse({"gcc", "-fbrand-new-pass=3", "x.c"});
  bool found = false;
  for (const GenericOption& option : cmd.generic) {
    if (option.name == "-fbrand-new-pass" && option.value == "3") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ParseTest, TrulyUnknownOptionsKeptVerbatim) {
  CompileCommand cmd = must_parse({"gcc", "--weird-thing", "x.c"});
  EXPECT_EQ(cmd.unrecognized, std::vector<std::string>{"--weird-thing"});
}

TEST(ParseTest, ErasGeneric) {
  CompileCommand cmd = must_parse({"gcc", "-funroll-loops", "-funroll-loops", "x.c"});
  EXPECT_EQ(cmd.erase_generic("-funroll-loops"), 2u);
  EXPECT_FALSE(cmd.flag_enabled("-funroll-loops"));
}

TEST(ParseTest, MissingArgumentErrors) {
  EXPECT_FALSE(parse_command(std::vector<std::string>{"gcc", "-o"}).ok());
  EXPECT_FALSE(parse_command(std::vector<std::string>{"gcc", "x.c", "-I"}).ok());
  EXPECT_FALSE(parse_command(std::vector<std::string>{"gcc", "x.o", "-Xlinker"}).ok());
  EXPECT_FALSE(parse_command(std::vector<std::string>{}).ok());
}

TEST(JsonTest, CommandRoundTripsThroughJson) {
  CompileCommand cmd = must_parse({"gcc", "-O2", "-march=native", "-flto", "-c",
                                   "k.c", "-o", "k.o"});
  auto back = CompileCommand::from_json(cmd.to_json());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), cmd);
}

// The round-trip invariant over a broad sweep of real-world command lines:
// parse(render(parse(argv))) == parse(argv).
class RenderRoundTrip : public ::testing::TestWithParam<std::vector<std::string>> {};

TEST_P(RenderRoundTrip, ParseRenderParse) {
  CompileCommand first = must_parse(GetParam());
  std::vector<std::string> rendered = first.render();
  CompileCommand second = must_parse(rendered);
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    CommandLines, RenderRoundTrip,
    ::testing::Values(
        std::vector<std::string>{"gcc", "-c", "x.c"},
        std::vector<std::string>{"gcc", "-O3", "-march=x86-64-v4", "-c", "x.c", "-o", "x.o"},
        std::vector<std::string>{"g++", "-std=c++17", "-O2", "-g", "-Wall", "-Wextra",
                                 "-c", "x.cc"},
        std::vector<std::string>{"gcc", "a.o", "b.o", "-Ldeps", "-lm", "-lblas", "-o", "app"},
        std::vector<std::string>{"gcc", "-shared", "-fPIC", "x.o", "-o", "libx.so"},
        std::vector<std::string>{"gcc", "-flto=8", "-ffat-lto-objects", "-O2", "-c", "x.c"},
        std::vector<std::string>{"gcc", "-fprofile-generate", "-O2", "x.c", "-o", "prog"},
        std::vector<std::string>{"gcc", "-fprofile-use=data", "-fprofile-correction",
                                 "-O3", "x.c", "-o", "prog"},
        std::vector<std::string>{"gcc", "-ffast-math", "-fno-math-errno",
                                 "-funsafe-math-optimizations", "-c", "x.c"},
        std::vector<std::string>{"gcc", "-mavx2", "-mno-avx512f", "-mfma", "-c", "x.c"},
        std::vector<std::string>{"gcc", "-Wno-unused-parameter", "-Werror=format",
                                 "-c", "x.c"},
        std::vector<std::string>{"gcc", "-DNDEBUG", "-DVER=2", "-UOLD", "-Iinc",
                                 "-I/abs/inc", "-c", "x.c"},
        std::vector<std::string>{"gcc", "x.o", "-Wl,--gc-sections,-O1", "-static",
                                 "-o", "app"},
        std::vector<std::string>{"gcc", "--param", "max-inline-insns=400", "-O2",
                                 "-c", "x.c"},
        std::vector<std::string>{"mpicc", "-O2", "main.o", "-lmpi", "-lm", "-o", "app"},
        std::vector<std::string>{"gcc", "-Os", "-ffunction-sections", "-fdata-sections",
                                 "-c", "tiny.c"}));

}  // namespace
}  // namespace comt::toolchain
