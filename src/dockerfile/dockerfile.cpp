#include "dockerfile/dockerfile.hpp"

#include <algorithm>
#include <cctype>

#include "json/json.hpp"
#include "support/strings.hpp"

namespace comt::dockerfile {
namespace {

std::string to_upper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

/// Splits "KEY=value" or "KEY value" (ENV legacy form) into a pair.
Result<std::pair<std::string, std::string>> parse_key_value(std::string_view text,
                                                            int line) {
  std::string_view trimmed = trim(text);
  std::size_t eq = trimmed.find('=');
  std::size_t space = trimmed.find_first_of(" \t");
  if (eq != std::string_view::npos && (space == std::string_view::npos || eq < space)) {
    std::string key(trim(trimmed.substr(0, eq)));
    std::string value(trim(trimmed.substr(eq + 1)));
    // Strip one level of surrounding quotes.
    if (value.size() >= 2 && (value.front() == '"' || value.front() == '\'') &&
        value.back() == value.front()) {
      value = value.substr(1, value.size() - 2);
    }
    return std::make_pair(std::move(key), std::move(value));
  }
  if (space != std::string_view::npos) {
    return std::make_pair(std::string(trim(trimmed.substr(0, space))),
                          std::string(trim(trimmed.substr(space + 1))));
  }
  return make_error(Errc::invalid_argument,
                    "line " + std::to_string(line) + ": expected KEY=value");
}

/// Parses exec-form ["a","b"] if `text` looks like a JSON array; otherwise
/// wraps the shell form.
std::vector<std::string> parse_exec_or_shell(std::string_view text) {
  std::string_view trimmed = trim(text);
  if (!trimmed.empty() && trimmed.front() == '[') {
    auto parsed = json::parse(trimmed);
    if (parsed.ok() && parsed.value().is_array()) {
      std::vector<std::string> argv;
      bool all_strings = true;
      for (const json::Value& item : parsed.value().as_array()) {
        if (!item.is_string()) {
          all_strings = false;
          break;
        }
        argv.push_back(item.as_string());
      }
      if (all_strings) return argv;
    }
  }
  return {"/bin/sh", "-c", std::string(trimmed)};
}

}  // namespace

const char* instruction_name(InstructionKind kind) {
  switch (kind) {
    case InstructionKind::from: return "FROM";
    case InstructionKind::run: return "RUN";
    case InstructionKind::copy: return "COPY";
    case InstructionKind::env: return "ENV";
    case InstructionKind::arg: return "ARG";
    case InstructionKind::workdir: return "WORKDIR";
    case InstructionKind::label: return "LABEL";
    case InstructionKind::entrypoint: return "ENTRYPOINT";
    case InstructionKind::cmd: return "CMD";
  }
  return "?";
}

int Dockerfile::stage_index(std::string_view name) const {
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (stages[i].name == name) return static_cast<int>(i);
  }
  // Numeric references ("COPY --from=0") address stages by ordinal.
  if (!name.empty() &&
      std::all_of(name.begin(), name.end(),
                  [](unsigned char c) { return std::isdigit(c); })) {
    int index = std::stoi(std::string(name));
    if (index >= 0 && index < static_cast<int>(stages.size())) return index;
  }
  return -1;
}

Result<Dockerfile> parse(std::string_view text) {
  Dockerfile file;
  std::vector<std::string> raw_lines = split(text, '\n');

  // Join continuations and strip comments, remembering original line numbers.
  struct Logical {
    std::string text;
    int line;
  };
  std::vector<Logical> logical;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    std::string_view line = trim(raw_lines[i]);
    if (line.empty() || line.front() == '#') continue;
    Logical entry{std::string(line), static_cast<int>(i + 1)};
    while (ends_with(entry.text, "\\") && i + 1 < raw_lines.size()) {
      entry.text.pop_back();
      while (!entry.text.empty() && entry.text.back() == ' ') entry.text.pop_back();
      ++i;
      std::string_view next = trim(raw_lines[i]);
      if (!next.empty() && next.front() == '#') continue;
      entry.text += ' ';
      entry.text += next;
    }
    logical.push_back(std::move(entry));
  }

  for (const Logical& entry : logical) {
    std::size_t space = entry.text.find_first_of(" \t");
    std::string keyword = to_upper(space == std::string::npos
                                       ? std::string_view(entry.text)
                                       : std::string_view(entry.text).substr(0, space));
    std::string rest = space == std::string::npos
                           ? ""
                           : std::string(trim(std::string_view(entry.text).substr(space + 1)));
    auto fail = [&](std::string message) {
      return make_error(Errc::invalid_argument,
                        "line " + std::to_string(entry.line) + ": " + message);
    };

    if (keyword == "FROM") {
      Stage stage;
      std::vector<std::string> words = split_whitespace(rest);
      if (words.empty()) return fail("FROM requires an image reference");
      stage.base_image = words[0];
      if (words.size() >= 3 && to_upper(words[1]) == "AS") {
        stage.name = words[2];
      } else if (words.size() != 1) {
        return fail("malformed FROM; expected FROM <image> [AS <name>]");
      }
      file.stages.push_back(std::move(stage));
      continue;
    }

    if (file.stages.empty()) return fail(keyword + " before FROM");
    Stage& stage = file.stages.back();
    Instruction instruction;
    instruction.text = rest;
    instruction.line = entry.line;

    if (keyword == "RUN") {
      instruction.kind = InstructionKind::run;
      if (rest.empty()) return fail("RUN requires a command");
    } else if (keyword == "COPY" || keyword == "ADD") {
      instruction.kind = InstructionKind::copy;
      std::vector<std::string> words = split_whitespace(rest);
      for (const std::string& word : words) {
        if (starts_with(word, "--from=")) {
          instruction.stage = word.substr(7);
        } else if (starts_with(word, "--")) {
          // --chown/--chmod accepted and ignored (no uid model in the vfs).
        } else {
          instruction.args.push_back(word);
        }
      }
      if (instruction.args.size() < 2) return fail("COPY requires source(s) and destination");
    } else if (keyword == "ENV" || keyword == "ARG" || keyword == "LABEL") {
      instruction.kind = keyword == "ENV"   ? InstructionKind::env
                         : keyword == "ARG" ? InstructionKind::arg
                                            : InstructionKind::label;
      if (keyword == "ARG" && rest.find('=') == std::string::npos) {
        instruction.args = {std::string(trim(rest)), ""};
      } else {
        COMT_TRY(auto kv, parse_key_value(rest, entry.line));
        instruction.args = {kv.first, kv.second};
      }
    } else if (keyword == "WORKDIR") {
      instruction.kind = InstructionKind::workdir;
      if (rest.empty()) return fail("WORKDIR requires a path");
      instruction.args = {rest};
    } else if (keyword == "ENTRYPOINT" || keyword == "CMD") {
      instruction.kind =
          keyword == "ENTRYPOINT" ? InstructionKind::entrypoint : InstructionKind::cmd;
      instruction.args = parse_exec_or_shell(rest);
    } else {
      return fail("unsupported instruction " + keyword);
    }
    stage.instructions.push_back(std::move(instruction));
  }

  if (file.stages.empty()) {
    return make_error(Errc::invalid_argument, "Dockerfile has no FROM instruction");
  }
  return file;
}

std::string to_text(const Dockerfile& file) {
  std::string out;
  for (const Stage& stage : file.stages) {
    out += "FROM " + stage.base_image;
    if (!stage.name.empty()) out += " AS " + stage.name;
    out += '\n';
    for (const Instruction& instruction : stage.instructions) {
      out += instruction_name(instruction.kind);
      if (instruction.kind == InstructionKind::copy && !instruction.stage.empty()) {
        out += " --from=" + instruction.stage;
        out += " " + join(instruction.args, " ");
      } else {
        out += " " + instruction.text;
      }
      out += '\n';
    }
  }
  return out;
}

std::pair<int, int> line_diff(std::string_view before, std::string_view after) {
  std::vector<std::string> a = split(before, '\n');
  std::vector<std::string> b = split(after, '\n');
  // Drop trailing empty line from the final newline.
  if (!a.empty() && a.back().empty()) a.pop_back();
  if (!b.empty() && b.back().empty()) b.pop_back();
  const std::size_t n = a.size(), m = b.size();
  // LCS dynamic program; Dockerfiles are tiny, O(n·m) is fine.
  std::vector<std::vector<int>> lcs(n + 1, std::vector<int>(m + 1, 0));
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      lcs[i][j] = a[i - 1] == b[j - 1] ? lcs[i - 1][j - 1] + 1
                                       : std::max(lcs[i - 1][j], lcs[i][j - 1]);
    }
  }
  int common = lcs[n][m];
  return {static_cast<int>(m) - common, static_cast<int>(n) - common};
}

}  // namespace comt::dockerfile
