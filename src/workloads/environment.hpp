// Evaluation environments: distro package repositories, system software
// stacks, and the base images the paper's workflow uses —
//   ubuntu:24.04          — mainstream generic base (per arch)
//   comt/env:<arch>       — coMtainer Env image (build stage; hijack on)
//   comt/base:<arch>      — coMtainer Base image (dist stage; hijack on)
//   comt/sysenv:<system>  — system-side rebuild environment (generic + native
//                           toolchains, optimized libraries)
//   comt/rebase:<system>  — system-side runtime base for redirect
//
// Sizes are expressed in *simulated MiB*: kSimBytesPerMiB bytes of real blob
// content represent one MiB reported in the paper's Table 3 (a 4096:1 scale
// keeps in-memory images small while preserving every ratio).
#pragma once

#include <string>
#include <string_view>

#include "oci/oci.hpp"
#include "pkg/pkg.hpp"
#include "support/error.hpp"
#include "sysmodel/sysmodel.hpp"

namespace comt::workloads {

inline constexpr std::uint64_t kSimBytesPerMiB = 4096;

/// Deterministic filler content of about `mib` simulated MiB.
std::string filler(double mib, std::string_view seed);

/// bytes -> simulated MiB.
double to_sim_mib(std::uint64_t bytes);

/// The distro package archive for an architecture ("amd64"/"arm64"):
/// generic toolchain and libraries, everything Variant::generic.
const pkg::Repository& ubuntu_repo(std::string_view arch);

/// A target system's software stack: optimized builds of the same library
/// names (bigger libspeed, fabric plugins) plus the vendor toolchain package
/// installing compilers under /opt/system/bin.
const pkg::Repository& system_repo(const sysmodel::SystemProfile& system);

/// Tags for the standard images.
std::string ubuntu_tag(std::string_view arch);
std::string env_tag(std::string_view arch);
std::string base_tag(std::string_view arch);
std::string sysenv_tag(const sysmodel::SystemProfile& system);
std::string rebase_tag(const sysmodel::SystemProfile& system);

/// Registers ubuntu + comt/env + comt/base for `arch` into `layout`.
Status install_user_images(oci::Layout& layout, std::string_view arch);

/// Registers comt/sysenv + comt/rebase for `system` into `layout`.
Status install_system_images(oci::Layout& layout, const sysmodel::SystemProfile& system);

}  // namespace comt::workloads
