#include <gtest/gtest.h>

#include "vfs/vfs.hpp"

namespace comt::vfs {
namespace {

Filesystem sample_tree() {
  Filesystem fs;
  EXPECT_TRUE(fs.write_file("/etc/os-release", "linux\n").ok());
  EXPECT_TRUE(fs.write_file("/usr/bin/tool", "#!bin\n", 0755).ok());
  EXPECT_TRUE(fs.make_symlink("/usr/bin/alias", "tool").ok());
  EXPECT_TRUE(fs.make_directories("/var/empty").ok());
  return fs;
}

TEST(VfsTest, RootAlwaysExists) {
  Filesystem fs;
  EXPECT_TRUE(fs.is_directory("/"));
  EXPECT_EQ(fs.node_count(), 0u);
}

TEST(VfsTest, WriteCreatesAncestors) {
  Filesystem fs;
  ASSERT_TRUE(fs.write_file("/a/b/c.txt", "hi").ok());
  EXPECT_TRUE(fs.is_directory("/a"));
  EXPECT_TRUE(fs.is_directory("/a/b"));
  EXPECT_TRUE(fs.is_regular("/a/b/c.txt"));
  EXPECT_EQ(fs.read_file("/a/b/c.txt").value(), "hi");
}

TEST(VfsTest, OverwriteReplacesContent) {
  Filesystem fs;
  ASSERT_TRUE(fs.write_file("/f", "one").ok());
  ASSERT_TRUE(fs.write_file("/f", "two", 0755).ok());
  EXPECT_EQ(fs.read_file("/f").value(), "two");
  EXPECT_TRUE(fs.lookup("/f")->executable());
}

TEST(VfsTest, CannotWriteOverDirectory) {
  Filesystem fs;
  ASSERT_TRUE(fs.make_directories("/d").ok());
  EXPECT_FALSE(fs.write_file("/d", "x").ok());
}

TEST(VfsTest, CannotUseFileAsDirectory) {
  Filesystem fs;
  ASSERT_TRUE(fs.write_file("/f", "x").ok());
  EXPECT_FALSE(fs.write_file("/f/child", "y").ok());
  EXPECT_FALSE(fs.make_directories("/f").ok());
}

TEST(VfsTest, SymlinkResolution) {
  Filesystem fs = sample_tree();
  EXPECT_EQ(fs.resolve("/usr/bin/alias").value(), "/usr/bin/tool");
  EXPECT_EQ(fs.read_file("/usr/bin/alias").value(), "#!bin\n");
}

TEST(VfsTest, AbsoluteSymlinkTarget) {
  Filesystem fs;
  ASSERT_TRUE(fs.write_file("/real/file", "data").ok());
  ASSERT_TRUE(fs.make_symlink("/link", "/real/file").ok());
  EXPECT_EQ(fs.read_file("/link").value(), "data");
}

TEST(VfsTest, SymlinkChain) {
  Filesystem fs;
  ASSERT_TRUE(fs.write_file("/target", "x").ok());
  ASSERT_TRUE(fs.make_symlink("/l1", "/target").ok());
  ASSERT_TRUE(fs.make_symlink("/l2", "/l1").ok());
  ASSERT_TRUE(fs.make_symlink("/l3", "/l2").ok());
  EXPECT_EQ(fs.read_file("/l3").value(), "x");
}

TEST(VfsTest, SymlinkLoopDetected) {
  Filesystem fs;
  ASSERT_TRUE(fs.make_symlink("/a", "/b").ok());
  ASSERT_TRUE(fs.make_symlink("/b", "/a").ok());
  auto result = fs.resolve("/a");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::corrupt);
}

TEST(VfsTest, ReadMissingFileFails) {
  Filesystem fs;
  auto result = fs.read_file("/nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::not_found);
}

TEST(VfsTest, ListDirectory) {
  Filesystem fs = sample_tree();
  auto names = fs.list_directory("/usr/bin");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"alias", "tool"}));
  // Only immediate children.
  auto root = fs.list_directory("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value(), (std::vector<std::string>{"etc", "usr", "var"}));
}

TEST(VfsTest, RemoveSubtree) {
  Filesystem fs = sample_tree();
  ASSERT_TRUE(fs.remove("/usr").ok());
  EXPECT_FALSE(fs.exists("/usr"));
  EXPECT_FALSE(fs.exists("/usr/bin/tool"));
  EXPECT_TRUE(fs.exists("/etc/os-release"));
  EXPECT_FALSE(fs.remove("/usr").ok());
  EXPECT_FALSE(fs.remove("/").ok());
}

TEST(VfsTest, RenameMovesSubtree) {
  Filesystem fs = sample_tree();
  ASSERT_TRUE(fs.rename("/usr", "/opt/relocated").ok());
  EXPECT_FALSE(fs.exists("/usr"));
  EXPECT_EQ(fs.read_file("/opt/relocated/bin/tool").value(), "#!bin\n");
  EXPECT_TRUE(fs.is_symlink("/opt/relocated/bin/alias"));
}

TEST(VfsTest, RenameIntoOwnSubtreeRejected) {
  Filesystem fs;
  ASSERT_TRUE(fs.make_directories("/d/sub").ok());
  EXPECT_FALSE(fs.rename("/d", "/d/sub/x").ok());
}

TEST(VfsTest, CopyFromOtherFilesystem) {
  Filesystem source = sample_tree();
  Filesystem dest;
  ASSERT_TRUE(dest.copy_from(source, "/usr", "/copied").ok());
  EXPECT_EQ(dest.read_file("/copied/bin/tool").value(), "#!bin\n");
  // Single file copy.
  ASSERT_TRUE(dest.copy_from(source, "/etc/os-release", "/os").ok());
  EXPECT_EQ(dest.read_file("/os").value(), "linux\n");
  // File copy into an existing directory lands inside it.
  ASSERT_TRUE(dest.make_directories("/into").ok());
  ASSERT_TRUE(dest.copy_from(source, "/etc/os-release", "/into").ok());
  EXPECT_EQ(dest.read_file("/into/os-release").value(), "linux\n");
}

TEST(VfsTest, WalkVisitsInPathOrder) {
  Filesystem fs = sample_tree();
  std::vector<std::string> paths;
  fs.walk([&](const std::string& path, const Node&) {
    paths.push_back(path);
    return true;
  });
  EXPECT_TRUE(std::is_sorted(paths.begin(), paths.end()));
  EXPECT_EQ(paths.front(), "/etc");
  // Early exit.
  int count = 0;
  fs.walk([&](const std::string&, const Node&) { return ++count < 2; });
  EXPECT_EQ(count, 2);
}

TEST(VfsTest, TotalFileBytes) {
  Filesystem fs = sample_tree();
  EXPECT_EQ(fs.total_file_bytes(), 6u + 6u);  // "linux\n" + "#!bin\n"
}

// ---- diff / apply_layer ------------------------------------------------------

TEST(LayerTest, DiffDetectsAddModifyDelete) {
  Filesystem base = sample_tree();
  Filesystem target = base;
  ASSERT_TRUE(target.write_file("/new.txt", "n").ok());
  ASSERT_TRUE(target.write_file("/etc/os-release", "changed\n").ok());
  ASSERT_TRUE(target.remove("/usr/bin/tool").ok());

  LayerDiff delta = diff(base, target);
  EXPECT_EQ(delta.added, 1u);
  EXPECT_EQ(delta.modified, 1u);
  EXPECT_EQ(delta.deleted, 1u);
  EXPECT_TRUE(delta.upper.is_regular("/new.txt"));
  EXPECT_TRUE(delta.upper.is_regular("/usr/bin/.wh.tool"));
}

TEST(LayerTest, DeletedDirectoryYieldsSingleWhiteout) {
  Filesystem base = sample_tree();
  Filesystem target = base;
  ASSERT_TRUE(target.remove("/usr").ok());
  LayerDiff delta = diff(base, target);
  EXPECT_EQ(delta.deleted, 1u);
  EXPECT_TRUE(delta.upper.is_regular("/.wh.usr"));
}

TEST(LayerTest, ApplyWhiteoutRemoves) {
  Filesystem base = sample_tree();
  Filesystem layer;
  ASSERT_TRUE(layer.write_file("/usr/bin/.wh.tool", "").ok());
  ASSERT_TRUE(apply_layer(base, layer).ok());
  EXPECT_FALSE(base.exists("/usr/bin/tool"));
  EXPECT_TRUE(base.exists("/usr/bin/alias"));
}

TEST(LayerTest, OpaqueDirectoryHidesLowerContent) {
  Filesystem base = sample_tree();
  Filesystem layer;
  ASSERT_TRUE(layer.write_file(std::string("/usr/bin/") + std::string(kOpaqueMarker), "").ok());
  ASSERT_TRUE(layer.write_file("/usr/bin/fresh", "f").ok());
  ASSERT_TRUE(apply_layer(base, layer).ok());
  EXPECT_FALSE(base.exists("/usr/bin/tool"));
  EXPECT_FALSE(base.exists("/usr/bin/alias"));
  EXPECT_EQ(base.read_file("/usr/bin/fresh").value(), "f");
}

TEST(LayerTest, TypeChangeReplacesNode) {
  Filesystem base;
  ASSERT_TRUE(base.make_directories("/node/with/children").ok());
  Filesystem layer;
  ASSERT_TRUE(layer.write_file("/node", "now a file").ok());
  ASSERT_TRUE(apply_layer(base, layer).ok());
  EXPECT_TRUE(base.is_regular("/node"));
  EXPECT_FALSE(base.exists("/node/with"));
}

// Property: apply(base, diff(base, target)) == target, over varied fixtures.
struct TreePair {
  const char* name;
  Filesystem (*base)();
  Filesystem (*target)();
};

Filesystem empty_tree() { return Filesystem(); }
Filesystem deep_tree() {
  Filesystem fs;
  EXPECT_TRUE(fs.write_file("/a/b/c/d/e.txt", "deep").ok());
  EXPECT_TRUE(fs.make_symlink("/a/link", "b/c").ok());
  return fs;
}
Filesystem mutated_sample() {
  Filesystem fs = sample_tree();
  EXPECT_TRUE(fs.remove("/etc").ok());
  EXPECT_TRUE(fs.write_file("/usr/bin/tool", "v2", 0700).ok());
  EXPECT_TRUE(fs.write_file("/var/empty/now-used", "x").ok());
  EXPECT_TRUE(fs.make_symlink("/etc", "/var").ok());  // dir -> symlink type change
  return fs;
}

class DiffApplyRoundTrip : public ::testing::TestWithParam<TreePair> {};

TEST_P(DiffApplyRoundTrip, ApplyOfDiffReconstructsTarget) {
  Filesystem base = GetParam().base();
  Filesystem target = GetParam().target();
  LayerDiff delta = diff(base, target);
  Filesystem rebuilt = base;
  ASSERT_TRUE(apply_layer(rebuilt, delta.upper).ok());
  EXPECT_TRUE(rebuilt == target) << "tree mismatch for " << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, DiffApplyRoundTrip,
    ::testing::Values(TreePair{"empty->sample", &empty_tree, &sample_tree},
                      TreePair{"sample->empty", &sample_tree, &empty_tree},
                      TreePair{"sample->mutated", &sample_tree, &mutated_sample},
                      TreePair{"empty->deep", &empty_tree, &deep_tree},
                      TreePair{"deep->sample", &deep_tree, &sample_tree},
                      TreePair{"identical", &sample_tree, &sample_tree}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace comt::vfs
