// Reproduces Table 3: the size of each application's original image on both
// architectures and the size of the coMtainer cache layer added to it.
// Sizes are simulated MiB (kSimBytesPerMiB real bytes = 1 reported MiB; the
// 4096:1 scale preserves every ratio the paper discusses).
//
// The second section measures image *distribution* with the transfer
// subsystem: each app's generic image is pushed to a chunk-dedup registry,
// then the optimized child is delta-pushed against it — what crosses the
// wire is only the chunks the recompile actually changed. Reported per app:
// the bytes a delta push moved, the fraction of the full image that is, and
// the chunk store's dedup ratio (logical bytes / stored framed bytes).
//
// Usage: table3_image_size [--smoke] [--json PATH]
//   --smoke   hard-asserts the distribution gates (CI): per-app dedup ratio
//             > 1.0, delta push moves < 40% of full-image bytes with an
//             overall dedup ratio > 2.5x, and a torn chunk upload is always
//             detected (reassembly reads corrupt, never silently wrong) and
//             heals to bit-identical bytes after repair.
//   --json PATH   write machine-readable results (with hardware provenance).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "json/json.hpp"
#include "registry/registry.hpp"
#include "store/remote.hpp"
#include "store/store.hpp"
#include "support/fault.hpp"
#include "sysmodel/sysmodel.hpp"
#include "transfer/chunkstore.hpp"
#include "transfer/delta.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

double round3(double value) { return std::round(value * 1000.0) / 1000.0; }

/// "model name" line from /proc/cpuinfo, or "unknown" — recorded in the
/// JSON so a baseline carries the machine it was measured on.
std::string cpu_model() {
  std::FILE* info = std::fopen("/proc/cpuinfo", "r");
  if (info == nullptr) return "unknown";
  std::string model = "unknown";
  char line[512];
  while (std::fgets(line, sizeof line, info) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    if (const char* colon = std::strchr(line, ':')) {
      model = colon + 1;
      while (!model.empty() && (model.front() == ' ' || model.front() == '\t')) {
        model.erase(model.begin());
      }
      while (!model.empty() && (model.back() == '\n' || model.back() == '\r')) {
        model.pop_back();
      }
    }
    break;
  }
  std::fclose(info);
  return model;
}

int write_file(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(content.data(), 1, content.size(), out);
  std::fclose(out);
  return 0;
}

/// One app's distribution measurements.
struct DeltaRow {
  std::string app;
  double image_mib = 0;        ///< optimized image, logical
  double stored_mib = 0;       ///< framed unique chunks (generic + optimized)
  double logical_mib = 0;      ///< what whole-blob CAS would hold
  double moved_mib = 0;        ///< wire bytes the delta push moved
  double moved_pct = 0;        ///< moved / image
  double deduped_mib = 0;      ///< raw bytes reused chunks covered
  double dedup_ratio = 0;      ///< chunk store logical / stored
  std::size_t chunks_moved = 0;
  std::size_t chunks_reused = 0;
  bool full_push = false;
};

/// Tears a chunk upload mid-blob and proves the failure mode: the torn chunk
/// reads back corrupt (never silently wrong), a re-push plus repair_chunk
/// heals it, and the reassembled blob is bit-identical. Returns 0 on pass.
int torn_transfer_check(const std::string& blob) {
  auto remote = std::make_shared<store::RemoteStore>(std::make_shared<store::MemStore>());
  support::FaultInjector faults;
  remote->set_fault_injector(&faults);
  transfer::ChunkStore destination(remote);

  auto manifest = transfer::build_manifest(blob, destination.params());
  if (!manifest.ok()) {
    std::fprintf(stderr, "torn-check: build_manifest failed\n");
    return 1;
  }

  faults.tear_next(std::string(store::kRemotePutSite), 0.5);
  bool crashed = false;
  try {
    (void)transfer::push_delta(blob, {}, destination);
  } catch (const support::CrashInjected&) {
    crashed = true;
  }
  if (!crashed) {
    std::fprintf(stderr, "torn-check: injected tear did not fire\n");
    return 1;
  }

  // Detection: every chunk the torn upload left behind either decodes and
  // digest-verifies or reads back Errc::corrupt.
  bool saw_corrupt = false;
  for (const transfer::ChunkRef& chunk : manifest.value().chunks) {
    if (!destination.contains_chunk(chunk.digest)) continue;
    auto raw = destination.get_chunk(chunk.digest);
    if (raw.ok()) continue;
    if (raw.error().code != Errc::corrupt) {
      std::fprintf(stderr, "torn-check: unexpected error %s\n",
                   raw.error().to_string().c_str());
      return 1;
    }
    saw_corrupt = true;
  }
  if (!saw_corrupt) {
    std::fprintf(stderr, "torn-check: tear kept no detectable damage\n");
    return 1;
  }

  // Heal: re-push moves the missing chunks; the torn one the dedup probe
  // still trusts is overwritten with repair_chunk (the fsck path).
  auto report = transfer::push_delta(blob, {}, destination);
  if (!report.ok()) {
    std::fprintf(stderr, "torn-check: re-push failed\n");
    return 1;
  }
  for (const transfer::ChunkRef& chunk : manifest.value().chunks) {
    if (destination.get_chunk(chunk.digest).ok()) continue;
    auto healed = destination.repair_chunk(
        chunk.digest, std::string_view(blob).substr(chunk.offset, chunk.size),
        transfer::CodecId::lz);
    if (!healed.ok()) {
      std::fprintf(stderr, "torn-check: repair_chunk failed\n");
      return 1;
    }
  }
  auto back = destination.get_blob(report.value().blob_digest);
  if (!back.ok() || back.value() != blob) {
    std::fprintf(stderr, "torn-check: healed blob is not bit-identical\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: table3_image_size [--smoke] [--json PATH]\n");
      return 2;
    }
  }

  std::printf("Table 3 — size (in MiB) of original images and cache layers\n\n");

  std::map<std::string, workloads::PreparedApp> x86, arm;
  workloads::Evaluation x86_world(sysmodel::SystemProfile::x86_cluster());
  workloads::Evaluation arm_world(sysmodel::SystemProfile::aarch64_cluster());
  for (const workloads::AppSpec& app : workloads::corpus()) {
    auto a = x86_world.prepare(app);
    auto b = arm_world.prepare(app);
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "prepare(%s) failed\n", app.name.c_str());
      return 1;
    }
    x86[app.name] = a.value();
    arm[app.name] = b.value();
  }

  std::printf("%-10s %14s %14s %10s %10s\n", "app", "image(x86-64)", "image(arm64)",
              "cache", "cache/img");
  double max_ratio_x86 = 0;
  for (const workloads::AppSpec& app : workloads::corpus()) {
    const auto& px = x86[app.name];
    const auto& pa = arm[app.name];
    double image_x86 = workloads::to_sim_mib(px.image_bytes);
    double image_arm = workloads::to_sim_mib(pa.image_bytes);
    double cache = workloads::to_sim_mib(px.cache_layer_bytes);
    double ratio = cache / image_x86 * 100.0;
    max_ratio_x86 = std::max(max_ratio_x86, ratio);
    std::printf("%-10s %13.2f %14.2f %9.2f %9.1f%%\n", app.name.c_str(), image_x86,
                image_arm, cache, ratio);
  }
  std::printf("\n  max cache/image ratio on x86-64: %.1f%% (paper: max 7.1%% on "
              "x86-64, 11.3%% on AArch64)\n",
              max_ratio_x86);
  std::printf("  paper reference rows: comd 170.36/94.87/0.75, lammps "
              "203.30/127.23/14.42, openmx 440.97/359.14/23.99 MiB\n");

  // ---- distribution: chunk dedup + delta push -------------------------------
  // Per app: a fresh chunk-dedup registry receives the generic image whole,
  // then the optimized child rides a delta push naming the generic parent as
  // base. moved% is the acceptance number: what fraction of the optimized
  // image's bytes actually crossed the wire.
  std::printf("\nImage distribution — delta push of optimized vs generic parent\n\n");
  std::printf("%-10s %11s %11s %8s %11s %11s %7s %7s %7s\n", "app", "image MiB",
              "moved MiB", "moved%", "dedup MiB", "stored MiB", "ratio", "chunks",
              "reused");

  std::vector<DeltaRow> rows;
  std::string torn_probe_blob;  // largest optimized layer, for the torn check
  for (const workloads::AppSpec& app : workloads::corpus()) {
    auto optimized = x86_world.optimize(app, x86[app.name], app.inputs.front(), 16);
    if (!optimized.ok()) {
      std::fprintf(stderr, "optimize(%s): %s\n", app.name.c_str(),
                   optimized.error().to_string().c_str());
      return 1;
    }

    registry::Registry hub;
    hub.enable_chunk_dedup(
        std::make_shared<transfer::ChunkStore>(std::make_shared<store::MemStore>()));
    std::string name = "org/" + app.name;
    auto pushed = hub.push(x86_world.layout(), x86[app.name].dist_tag, name, "generic");
    if (!pushed.ok()) {
      std::fprintf(stderr, "push(%s generic): %s\n", app.name.c_str(),
                   pushed.error().to_string().c_str());
      return 1;
    }
    auto delta = hub.push_delta(x86_world.layout(), optimized.value(), name, "optimized",
                                {name + ":generic"});
    if (!delta.ok()) {
      std::fprintf(stderr, "push_delta(%s): %s\n", app.name.c_str(),
                   delta.error().to_string().c_str());
      return 1;
    }

    const registry::ImageDeltaReport& report = delta.value();
    DeltaRow row;
    row.app = app.name;
    row.image_mib = workloads::to_sim_mib(report.image_bytes);
    row.moved_mib = workloads::to_sim_mib(report.bytes_moved);
    row.moved_pct = report.moved_fraction() * 100.0;
    row.deduped_mib = workloads::to_sim_mib(report.bytes_deduped);
    row.stored_mib = workloads::to_sim_mib(hub.chunk_store()->stored_chunk_bytes());
    row.logical_mib = workloads::to_sim_mib(hub.chunk_store()->logical_bytes());
    row.dedup_ratio = hub.chunk_store()->dedup_ratio();
    row.chunks_moved = report.chunks_moved;
    row.chunks_reused = report.chunks_reused;
    row.full_push = report.full_push;
    rows.push_back(row);
    std::printf("%-10s %11.2f %11.2f %7.1f%% %11.2f %11.2f %7.2f %7zu %7zu\n",
                row.app.c_str(), row.image_mib, row.moved_mib, row.moved_pct,
                row.deduped_mib, row.stored_mib, row.dedup_ratio, row.chunks_moved,
                row.chunks_reused);

    if (torn_probe_blob.empty()) {
      auto image = x86_world.layout().find_image(optimized.value());
      if (image.ok()) {
        const oci::Descriptor* biggest = nullptr;
        for (const oci::Descriptor& layer : image.value().manifest.layers) {
          if (biggest == nullptr || layer.size > biggest->size) biggest = &layer;
        }
        if (biggest != nullptr) {
          auto bytes = x86_world.layout().get_blob(biggest->digest);
          if (bytes.ok()) torn_probe_blob = std::move(bytes).value();
        }
      }
    }
  }

  double worst_moved_pct = 0, min_ratio = 1e9, sum_image = 0, sum_moved = 0;
  bool any_full_push = false;
  for (const DeltaRow& row : rows) {
    worst_moved_pct = std::max(worst_moved_pct, row.moved_pct);
    min_ratio = std::min(min_ratio, row.dedup_ratio);
    sum_image += row.image_mib;
    sum_moved += row.moved_mib;
    any_full_push |= row.full_push;
  }
  double overall_moved_pct = sum_image == 0 ? 0 : sum_moved / sum_image * 100.0;
  std::printf("\n  worst moved%%: %.1f%%  overall moved%%: %.1f%%  min dedup ratio: "
              "%.2fx\n",
              worst_moved_pct, overall_moved_pct, min_ratio);

  int torn_rc = -1;
  if (!torn_probe_blob.empty()) {
    torn_rc = torn_transfer_check(torn_probe_blob);
    std::printf("  torn-transfer check: %s (detected as corrupt, healed "
                "bit-identical)\n",
                torn_rc == 0 ? "pass" : "FAIL");
  }

  int rc = 0;
  if (smoke) {
    // CI gates: dedup must actually pay (> 1.0 per app), and the acceptance
    // numbers — a delta push moves < 40% of full-image bytes at > 2.5x dedup.
    if (any_full_push) {
      std::fprintf(stderr, "SMOKE FAIL: a delta push degraded to full push\n");
      rc = 1;
    }
    if (min_ratio <= 1.0) {
      std::fprintf(stderr, "SMOKE FAIL: dedup ratio %.2f <= 1.0\n", min_ratio);
      rc = 1;
    }
    if (worst_moved_pct >= 40.0) {
      std::fprintf(stderr, "SMOKE FAIL: delta push moved %.1f%% >= 40%%\n",
                   worst_moved_pct);
      rc = 1;
    }
    if (min_ratio <= 2.5) {
      std::fprintf(stderr, "SMOKE FAIL: dedup ratio %.2f <= 2.5\n", min_ratio);
      rc = 1;
    }
    if (torn_rc != 0) {
      std::fprintf(stderr, "SMOKE FAIL: torn-transfer check did not pass\n");
      rc = 1;
    }
    if (rc == 0) std::printf("\nSMOKE OK\n");
  }

  if (!json_path.empty()) {
    json::Object doc;
    doc.emplace_back("bench", json::Value(std::string("table3_image_size")));
    doc.emplace_back("mode", json::Value(std::string(smoke ? "smoke" : "full")));
    doc.emplace_back("cpu_model", json::Value(cpu_model()));
    doc.emplace_back("hardware_threads",
                     json::Value(static_cast<std::uint64_t>(
                         std::thread::hardware_concurrency())));
    json::Array apps;
    for (const workloads::AppSpec& app : workloads::corpus()) {
      json::Object entry;
      entry.emplace_back("app", json::Value(app.name));
      entry.emplace_back("image_mib_x86",
                         json::Value(round3(workloads::to_sim_mib(x86[app.name].image_bytes))));
      entry.emplace_back("image_mib_arm",
                         json::Value(round3(workloads::to_sim_mib(arm[app.name].image_bytes))));
      entry.emplace_back(
          "cache_mib",
          json::Value(round3(workloads::to_sim_mib(x86[app.name].cache_layer_bytes))));
      for (const DeltaRow& row : rows) {
        if (row.app != app.name) continue;
        entry.emplace_back("optimized_image_mib", json::Value(round3(row.image_mib)));
        entry.emplace_back("delta_moved_mib", json::Value(round3(row.moved_mib)));
        entry.emplace_back("delta_moved_pct", json::Value(round3(row.moved_pct)));
        entry.emplace_back("dedup_mib", json::Value(round3(row.deduped_mib)));
        entry.emplace_back("chunk_stored_mib", json::Value(round3(row.stored_mib)));
        entry.emplace_back("cas_logical_mib", json::Value(round3(row.logical_mib)));
        entry.emplace_back("dedup_ratio", json::Value(round3(row.dedup_ratio)));
        entry.emplace_back("chunks_moved",
                           json::Value(static_cast<std::uint64_t>(row.chunks_moved)));
        entry.emplace_back("chunks_reused",
                           json::Value(static_cast<std::uint64_t>(row.chunks_reused)));
      }
      apps.push_back(json::Value(std::move(entry)));
    }
    doc.emplace_back("apps", json::Value(std::move(apps)));
    doc.emplace_back("worst_delta_moved_pct", json::Value(round3(worst_moved_pct)));
    doc.emplace_back("overall_delta_moved_pct", json::Value(round3(overall_moved_pct)));
    doc.emplace_back("min_dedup_ratio", json::Value(round3(min_ratio)));
    doc.emplace_back("torn_transfer_check",
                     json::Value(std::string(torn_rc == 0 ? "pass" : "fail")));
    if (write_file(json_path, json::serialize_pretty(json::Value(std::move(doc)))) != 0) {
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return rc;
}
