// Content-defined chunking: the sub-blob granularity underneath delta image
// distribution. A rolling Gear hash (one shift-add per byte over a fixed
// 256-entry random table) decides chunk boundaries from the *content* of a
// ~64-byte sliding window, not from offsets — so inserting a byte near the
// front of a blob shifts only the chunk it lands in and its immediate
// neighbour; every later boundary re-synchronizes and the downstream chunks
// keep their digests. That boundary-shift resistance is what makes two image
// layers that differ by a few recompiled files share almost all of their
// chunks, where fixed-size blocks would share none past the first edit.
//
// The chunker is deterministic by construction: the gear table is generated
// from a fixed seed with splitmix64, boundaries depend only on bytes and
// parameters, and the manifest lists chunks in offset order. Two hosts
// chunking the same blob with the same ChunkerParams always produce the same
// manifest — the property the delta protocol's chunk-set difference rests on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace comt::transfer {

/// Chunk-size bounds. `avg_size` must be a power of two (it becomes the
/// boundary mask); min <= avg <= max is required. The defaults target the
/// simulated-image scale (layers of tens to hundreds of KiB): small enough
/// that one recompiled file in a tar layer dirties O(1) chunks, large enough
/// that manifest overhead stays a few percent.
struct ChunkerParams {
  std::size_t min_size = 512;
  std::size_t avg_size = 2048;
  std::size_t max_size = 16384;

  /// Rejects non-power-of-two averages and inverted bounds.
  Status validate() const;

  bool operator==(const ChunkerParams&) const = default;
};

/// One chunk of a blob: where it sits and what it hashes to.
struct ChunkRef {
  std::uint64_t offset = 0;
  std::uint32_t size = 0;
  std::string digest;  ///< "sha256:<hex>" of the chunk bytes

  bool operator==(const ChunkRef&) const = default;
};

/// The chunk-level description of one blob: its whole-blob digest (the
/// content address reassembly is verified against), total size, and the
/// ordered chunk list. This is what moves over the wire instead of the blob
/// when the destination already holds most of the chunks.
struct ChunkManifest {
  std::string blob_digest;  ///< "sha256:<hex>" of the whole blob
  std::uint64_t total_size = 0;
  std::vector<ChunkRef> chunks;

  /// Wire encoding: length-framed fields with a trailing fnv1a64 checksum, so
  /// a torn or bit-flipped stored manifest parses as Errc::corrupt instead of
  /// silently describing the wrong chunks.
  std::string serialize() const;
  static Result<ChunkManifest> parse(std::string_view bytes);

  bool operator==(const ChunkManifest&) const = default;
};

/// Chunk boundaries of `data` as (offset, size) pairs, in order. Empty input
/// yields no chunks. Pure function of (data, params).
std::vector<std::pair<std::uint64_t, std::uint32_t>> chunk_boundaries(
    std::string_view data, const ChunkerParams& params);

/// Chunks `blob` and digests every chunk plus the whole blob.
Result<ChunkManifest> build_manifest(std::string_view blob, const ChunkerParams& params);

}  // namespace comt::transfer
