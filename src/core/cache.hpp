// Cache storage (§4.2/§4.5): encodes the process models and build inputs into
// an OCI cache layer, turning an application image into a coMtainer
// *extended image* — and decodes them back on the system side. Thanks to the
// layered nature of OCI images the injection changes nothing in the original
// image; the extended manifest is tagged "<tag>+coM" alongside it, exactly
// like the artifact's index.json convention.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "buildexec/record.hpp"
#include "core/models.hpp"
#include "oci/oci.hpp"
#include "support/error.hpp"
#include "vfs/vfs.hpp"

namespace comt::core {

/// Where the cache layer lives inside an extended image.
inline constexpr std::string_view kCacheDir = "/.coMtainer/cache";
/// Manifest tag suffixes, as in the artifact's index.json.
inline constexpr std::string_view kExtendedSuffix = "+coM";
inline constexpr std::string_view kRebuiltSuffix = "+coMre";
inline constexpr std::string_view kRedirectedSuffix = "+opt";
/// Where the rebuild layer stores its outputs, keyed by original image path.
inline constexpr std::string_view kRebuildDir = "/.coMtainer/rebuild";

/// Everything the system side needs to rebuild: models, the raw build log,
/// and every build input's content keyed by digest.
struct CacheBundle {
  ProcessModels models;
  buildexec::BuildRecord record;
  std::map<std::string, std::string> sources;  ///< content digest -> bytes
};

struct CacheOptions {
  /// §4.6: ship obfuscated sources — identifiers and logic are masked, the
  /// compilation-relevant structure (annotations, includes) survives, and
  /// the graph's leaf digests are re-keyed to the obfuscated contents so
  /// every integrity check still holds.
  bool obfuscate_sources = false;
};

/// Assembles the cache layer tree. Build-input contents (sources, headers,
/// data files — every leaf of the graph) are pulled from the build
/// container's filesystem by path, verified against their recorded digests.
Result<vfs::Filesystem> make_cache_layer(const ProcessModels& models,
                                         const buildexec::BuildRecord& record,
                                         const vfs::Filesystem& build_rootfs,
                                         const CacheOptions& options = {});

/// Reads a cache bundle back out of an extended image's flattened tree.
Result<CacheBundle> load_cache(const vfs::Filesystem& extended_rootfs);

/// Total size in bytes of the cache layer's files (Table 3's "Cache" column).
std::uint64_t cache_layer_bytes(const vfs::Filesystem& cache_layer);

}  // namespace comt::core
