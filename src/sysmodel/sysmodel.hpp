// HPC system profiles and the container execution engine.
//
// A SystemProfile captures what the paper's two testbeds (Table 1) expose to
// applications: ISA, SIMD width, memory bandwidth, interconnect fabrics, and
// which toolchain/march the platform vendor tunes for. The ExecutionEngine
// "runs" an executable blob inside a flattened container filesystem on a
// profile: it resolves dynamic libraries out of the image (failing like a
// real loader when one is missing), then evaluates the DESIGN.md §5 time
// model over the binary's kernels. Instrumented binaries emit PGO profiles.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"
#include "toolchain/artifact.hpp"
#include "vfs/vfs.hpp"

namespace comt::sysmodel {

/// One HPC system (or user workstation).
struct SystemProfile {
  std::string name;
  std::string arch;          ///< "amd64" / "arm64"
  std::string cpu_model;     ///< Table 1 text
  std::string os_name;
  int nodes = 16;
  int cores_per_node = 64;
  int ram_gib = 512;

  double scalar_ips = 1.0;   ///< abstract work units / second, scalar code
  double mem_bw = 1.0;       ///< work units / second for memory-bound work
  int max_lanes = 8;         ///< hardware SIMD lanes (doubles)
  double call_cost = 1.0;    ///< penalty multiplier on call-overhead work
  double branch_cost = 1.0;  ///< penalty multiplier on branchy work
  double comm_cost = 1.0;    ///< scales communication time
  /// Interconnects reachable from this system and their relative speeds,
  /// e.g. {"tcp", 1.0}, {"hsn", 12.0}. An MPI library drives the fastest
  /// fabric it has a plugin for.
  std::map<std::string, double> fabric_speed;

  /// -march/-mtune values the platform vendor actually tunes for. Code
  /// compiled for other march values runs at `untuned_factor` of nominal
  /// compute speed (distro-generic code scheduled poorly for this core —
  /// the per-vendor gap §3 describes). Vectorized loops can pay a separate,
  /// usually harsher penalty (`vector_untuned_factor`): SIMD scheduling is
  /// where generic codegen diverges most from vendor tuning.
  std::vector<std::string> tuned_marches;
  double untuned_factor = 0.9;
  double vector_untuned_factor = 0.9;

  std::string native_toolchain;  ///< toolchain id system adapters install
  std::string native_march;      ///< -march those adapters compile with

  bool march_is_tuned(std::string_view march) const;

  // Built-in profiles mirroring Table 1, plus the image builder's machine.
  static const SystemProfile& x86_cluster();
  static const SystemProfile& aarch64_cluster();
  static const SystemProfile& user_workstation();
};

/// Parameters of one run.
struct RunRequest {
  int nodes = 1;
  double input_scale = 1.0;  ///< scales every kernel's work
  /// Per-kernel work multipliers: different inputs of the same binary (the
  /// paper's lammps.chain vs lammps.lj etc.) emphasize different kernels.
  std::map<std::string, double> kernel_weight;
};

/// Per-bottleneck breakdown of a run.
struct TimeBreakdown {
  double scalar = 0, vector = 0, memory = 0, library = 0, call = 0, branch = 0,
         comm = 0;
  double total() const {
    return scalar + vector + memory + library + call + branch + comm;
  }
};

/// Outcome of one run.
struct RunReport {
  double seconds = 0;
  TimeBreakdown breakdown;
  std::map<std::string, double> kernel_seconds;
  /// Profile blob (toolchain::serialize_profile format) when the binary was
  /// instrumented; empty otherwise.
  std::string profile_blob;
  std::vector<std::string> warnings;
};

/// Runs executables from container images on a system profile.
class ExecutionEngine {
 public:
  explicit ExecutionEngine(const SystemProfile& system) : system_(system) {}

  const SystemProfile& system() const { return system_; }

  /// Executes `exe_path` inside `rootfs`. Fails with loader-style errors on
  /// architecture mismatch or missing shared libraries.
  Result<RunReport> run(const vfs::Filesystem& rootfs, std::string_view exe_path,
                        const RunRequest& request = {}) const;

 private:
  Result<toolchain::LinkedImage> resolve_library(const vfs::Filesystem& rootfs,
                                                 std::string_view name) const;

  const SystemProfile& system_;
};

}  // namespace comt::sysmodel
