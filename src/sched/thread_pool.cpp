#include "sched/thread_pool.hpp"

namespace comt::sched {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::set_metrics(obs::MetricsRegistry* metrics, std::string_view prefix) {
  if (metrics == nullptr) {
    queue_wait_ms_ = nullptr;
    task_counter_ = nullptr;
    return;
  }
  queue_wait_ms_ = &metrics->histogram(std::string(prefix) + ".queue_wait_ms");
  task_counter_ = &metrics->counter(std::string(prefix) + ".tasks");
}

void ThreadPool::submit(std::function<void()> task) {
  if (queue_wait_ms_ != nullptr) {
    task = [this, queued = obs::Stopwatch(), task = std::move(task)] {
      queue_wait_ms_->observe(queued.elapsed_ms());
      task_counter_->add();
      task();
    };
  }
  {
    std::lock_guard<std::mutex> state(state_mutex_);
    if (stopping_) return;
    ++outstanding_;
  }
  std::size_t slot = next_queue_.fetch_add(1) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
    queues_[slot]->queue.push_back(std::move(task));
  }
  work_available_.notify_one();
}

bool ThreadPool::take(std::size_t self, std::function<void()>& task) {
  // Own queue first (front: LIFO locality is irrelevant for compile jobs,
  // FIFO keeps dispatch order close to submission order)…
  {
    Worker& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.queue.empty()) {
      task = std::move(own.queue.front());
      own.queue.pop_front();
      return true;
    }
  }
  // …then steal from the back of a sibling.
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    Worker& victim = *queues_[(self + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.queue.empty()) {
      task = std::move(victim.queue.back());
      victim.queue.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (take(self, task)) {
      task();
      executed_.fetch_add(1);
      std::lock_guard<std::mutex> state(state_mutex_);
      if (--outstanding_ == 0) all_done_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> state(state_mutex_);
    if (stopping_) return;
    work_available_.wait(state, [this, self] {
      if (stopping_) return true;
      for (const auto& worker : queues_) {
        std::lock_guard<std::mutex> lock(worker->mutex);
        if (!worker->queue.empty()) return true;
      }
      (void)self;
      return false;
    });
    if (stopping_) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> state(state_mutex_);
  all_done_.wait(state, [this] { return outstanding_ == 0; });
}

void ThreadPool::shutdown() {
  std::size_t discarded = 0;
  {
    std::lock_guard<std::mutex> state(state_mutex_);
    if (stopping_) return;
    stopping_ = true;
    // Drain the queues: unstarted work is dropped, running tasks finish.
    for (const auto& worker : queues_) {
      std::lock_guard<std::mutex> lock(worker->mutex);
      discarded += worker->queue.size();
      worker->queue.clear();
    }
    outstanding_ -= discarded;
    if (outstanding_ == 0) all_done_.notify_all();
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace comt::sched
