// The rebuild service: a multi-tenant build-farm daemon over the registry
// and the coMtainer backend.
//
// The paper's workflow ends with one HPC system pulling one extended image
// and calling comtainer_rebuild. At production scale that call sits behind a
// service (the centralized conversion daemons of the Sarus suite, the
// per-target specialization pipeline of XaaS): many users submit images, many
// target systems want each image specialized for themselves. RebuildService
// is that daemon:
//
//   submit ─▶ admission queue ─▶ coalesce ─▶ per-system worker pool ─▶
//             (bounded, priority   (same image      pull → rebuild → push
//              classes, load        + system key
//              shedding)            share one job)
//
//  - Admission is tenant-aware. Every request names a tenant (empty =
//    "default"); each tenant holds a token-bucket rate quota, and over-quota
//    arrivals are shed immediately in JobState::throttled — a hot tenant
//    saturates its own budget, never the fleet. Admitted jobs land in
//    per-tenant queues (priority classes preserved within a tenant) that
//    workers drain by deficit-weighted round-robin, so a tenant flooding
//    Priority::interactive cannot starve another tenant's normal jobs.
//  - Admission is bounded (ServiceOptions::queue_capacity). When the queue is
//    full, a higher-priority arrival evicts the newest lowest-priority queued
//    job; otherwise the arrival itself is shed. Shed jobs finish in
//    JobState::rejected.
//  - Concurrent requests for the same (extended-image manifest digest, target
//    system) attach to the in-flight job and share its result — one rebuild,
//    N tickets (JobTrace::coalesced marks the attached ones).
//  - Each registered target system owns a sched::ThreadPool of
//    workers_per_system workers, so independent images rebuild concurrently
//    per system and systems do not starve each other. One content-addressed
//    sched::CompileCache is shared across every tenant and system.
//  - Transient faults (Errc::failed — injected registry faults, spurious
//    compile failures, tool exit != 0) are retried up to max_attempts with
//    exponential backoff plus deterministic jitter; recorded delays are
//    monotonically non-decreasing. Any other error category is permanent and
//    surfaces in the ticket immediately.
//  - drain() stops admission, fails still-queued jobs with
//    JobState::drained, and completes every in-flight job, so the registry
//    only ever holds fully pushed results.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "durable/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "oci/fsck.hpp"
#include "oci/oci.hpp"
#include "registry/registry.hpp"
#include "sched/compile_cache.hpp"
#include "sched/thread_pool.hpp"
#include "store/store.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "sysmodel/sysmodel.hpp"

namespace comt::service {

/// Admission priority. Higher classes are served first and shed last.
enum class Priority { batch = 0, normal = 1, interactive = 2 };

/// Lifecycle of a submitted rebuild.
enum class JobState {
  queued,     ///< admitted, waiting for a worker
  running,    ///< a worker is executing pull → rebuild → push
  succeeded,  ///< result pushed to the hub registry (see TicketStatus::output)
  failed,     ///< permanent failure — retries exhausted or non-retryable error
  rejected,   ///< shed at admission (queue full / evicted by higher priority)
  throttled,  ///< shed at admission — the tenant exceeded its rate quota
  expired,    ///< deadline passed while queued, or a retry would overshoot it
  drained,    ///< still queued when drain()/shutdown began
};

const char* to_string(JobState state);
bool is_terminal(JobState state);

/// Handle to a submitted request. Tickets are never reused.
using Ticket = std::uint64_t;

struct SubmitRequest {
  std::string name;  ///< extended image reference in the hub registry…
  std::string tag;   ///< …as pushed by the user ("org/app", "1.0+coM")
  std::string system;  ///< fingerprint of a registered target system
  Priority priority = Priority::normal;
  /// Deadline from admission, honored across the whole retry loop: a job
  /// popped later than this fails as expired, and a retry whose backoff would
  /// land past it expires instead of retrying (running attempts are never
  /// killed). 0 = no deadline.
  double deadline_ms = 0;
  /// Who is asking. Empty maps to the "default" tenant. Quotas, fair-queue
  /// weight, and the per-tenant stats breakdown all key off this.
  std::string tenant{};
};

/// Per-tenant admission policy: fair-share weight plus a token-bucket rate
/// quota. Unlisted tenants get ServiceOptions::default_tenant.
struct TenantPolicy {
  /// Deficit-round-robin share relative to other tenants on the same target
  /// system (2.0 drains twice as fast as 1.0). Clamped to >= 0.01.
  double weight = 1.0;
  /// Token-bucket capacity in submissions. 0 disables the quota entirely
  /// (the default): every arrival is admitted.
  double quota_burst = 0;
  /// Bucket refill rate in submissions/second. With quota_burst > 0 and rate
  /// 0 the tenant gets a hard lifetime cap of quota_burst submissions.
  double quota_rate = 0;
};

/// Worker-pool autoscaling: each per-system pool tracks its backlog between
/// min_workers and max_workers. The controller samples queue depth and the
/// queue wait observed since the previous tick every interval_ms, scales up
/// one worker when the backlog-per-worker or recent queue wait crosses the
/// up thresholds, and scales down one worker only after the backlog has sat
/// below the down threshold for `cooldown_periods` consecutive ticks — the
/// hysteresis that keeps a bursty queue from flapping the pool. Scale events
/// land in "service.autoscale.scale_up"/"scale_down" and each pool's current
/// size in the "service.autoscale.workers.<system>" gauge (qualified as
/// "….<replica_id>.<system>" when the service runs as a fleet replica).
struct AutoscaleOptions {
  bool enabled = false;
  std::size_t min_workers = 1;
  std::size_t max_workers = 4;
  double interval_ms = 20;
  /// Scale up when queue depth >= up_backlog_per_worker * pool size…
  double up_backlog_per_worker = 2.0;
  /// …or when the mean queue wait observed since the last tick exceeds this
  /// (0 disables the wait trigger).
  double up_queue_wait_ms = 0;
  /// Scale-down candidate when queue depth <= down_backlog_per_worker * size.
  double down_backlog_per_worker = 0.25;
  /// Consecutive quiet ticks required before shrinking, and the minimum gap
  /// (in ticks) between any two scale events on one pool.
  int cooldown_periods = 3;
};

/// Structured per-job diagnostics, shared by all coalesced tickets.
struct JobTrace {
  double queue_ms = 0;    ///< admission → worker pickup
  double pull_ms = 0;     ///< registry pulls, summed over attempts
  double rebuild_ms = 0;  ///< comtainer_rebuild, summed over attempts
  double push_ms = 0;     ///< result pushes, summed over attempts
  int attempts = 0;       ///< executions of pull→rebuild→push (retries + 1)
  /// Backoff delay before each retry; monotonically non-decreasing.
  std::vector<double> backoff_ms;
  std::size_t compile_jobs = 0;  ///< scheduler jobs, summed over attempts
  std::size_t cache_hits = 0;    ///< compile-cache replays (shared cache)
  std::size_t cache_misses = 0;
  bool coalesced = false;  ///< this ticket attached to another's in-flight job
  bool crashed = false;    ///< the job died at an injected crash site
  bool fleet_reuse = false;   ///< served from another replica's published result
  bool lease_stolen = false;  ///< this replica took over an expired lease
  double lease_wait_ms = 0;   ///< spent waiting on another replica's lease
  /// Compile jobs replayed from write-ahead journal commit records instead of
  /// executing (crash-resume and journaled retries), summed over attempts.
  std::size_t journal_replayed = 0;
  /// Commit records this job appended to its journal, summed over attempts.
  std::size_t journal_committed = 0;
};

/// Snapshot of one ticket.
struct TicketStatus {
  JobState state = JobState::queued;
  Status result;       ///< the failure detail for failed/rejected/expired/drained
  std::string output;  ///< "name:tag" of the rebuilt image in the hub when succeeded
  JobTrace trace;
};

/// One tenant target: everything a rebuild for that system needs.
struct TargetSystem {
  const sysmodel::SystemProfile* profile = nullptr;
  const pkg::Repository* repo = nullptr;  ///< the system's optimized stack
  /// Template layout holding the system's Sysenv image; every job works on a
  /// private copy, so jobs never see each other's intermediate state.
  oci::Layout base_layout;
  std::string sysenv_tag;
  /// Adapters applied to every rebuild for this system, in order.
  std::vector<const core::SystemAdapter*> adapters;
};

/// Stable identity of a target system: the profile facets the rebuild output
/// depends on. Two hosts with equal fingerprints can share rebuilt images.
std::string fingerprint(const sysmodel::SystemProfile& profile);

/// Cross-replica coordination hook (implemented by fleet::LeaseCoordinator).
/// A service with a coordinator asks it before executing each distinct job:
/// either this replica wins the global lease and builds, or another replica
/// already built (or is building) and the grant hands back the published
/// result. In-process coalescing stays as-is — the coordinator extends the
/// same dedup across replica boundaries.
class FleetCoordinator {
 public:
  virtual ~FleetCoordinator() = default;

  /// acquire()'s decision for a job about to execute.
  struct Grant {
    bool reuse = false;       ///< another replica's result serves this job
    std::string output;       ///< "name:tag" in the shared hub when reuse
    std::uint64_t epoch = 0;  ///< lease epoch this replica holds when !reuse
    bool stolen = false;      ///< the lease was taken over from a dead holder
    double wait_ms = 0;       ///< time spent waiting on the current holder
  };

  enum class Outcome { succeeded, failed, crashed };

  /// Blocks until `key` (the coalescing key: manifest digest + "|" + system
  /// fingerprint) is either this replica's to build (lease held) or already
  /// served (reuse grant).
  virtual Result<Grant> acquire(const std::string& key) = 0;

  /// Reports how the build under the lease ended. `output` is the published
  /// "name:tag" on success. Not called for reuse grants, and deliberately
  /// not called when the job died at an injected crash site — a dead process
  /// releases nothing, the lease TTL hands the work over.
  virtual void release(const std::string& key, Outcome outcome,
                       const std::string& output, std::uint64_t epoch) = 0;
};

struct ServiceOptions {
  /// Bound on jobs queued across all systems (running jobs do not count).
  std::size_t queue_capacity = 64;
  /// Worker threads per registered target system. With autoscaling enabled
  /// this is the initial size, clamped into [min_workers, max_workers].
  std::size_t workers_per_system = 2;
  /// Admission policy for tenants not listed in `tenants`. The default —
  /// weight 1, no quota — reproduces the pre-tenant behaviour exactly.
  TenantPolicy default_tenant;
  /// Per-tenant policy overrides, keyed by SubmitRequest::tenant.
  std::map<std::string, TenantPolicy> tenants;
  /// Per-system worker-pool autoscaling (off by default: fixed pools).
  AutoscaleOptions autoscale;
  /// `threads` passed to each comtainer_rebuild (intra-job parallelism).
  std::size_t rebuild_threads = 1;
  /// Executions of pull→rebuild→push per job before the failure is permanent.
  int max_attempts = 3;
  /// First retry delay; doubles per retry, capped at backoff_max_ms, then
  /// scaled by a deterministic jitter in [1, 2).
  double backoff_base_ms = 0.2;
  double backoff_max_ms = 50.0;
  /// When false, backoff delays are recorded in the trace but not slept —
  /// deterministic schedule tests don't have to wait out the clock.
  bool sleep_on_backoff = true;
  /// Passed to every rebuild as RebuildOptions::fault_injector. To also
  /// inject registry faults, arm the same injector on the hub registry.
  support::FaultInjector* faults = nullptr;
  /// Optional write-ahead journal store making every rebuild crash-safe.
  /// Each job opens a journal keyed "name:tag|system" (metadata = the submit
  /// request as JSON) and removes it once its result is pushed. The store
  /// outlives the service the way files outlive a process: hand the same
  /// store to the next service incarnation and call recover(). While a job's
  /// journal is live, the job's source image is pinned in the hub so
  /// Registry::remove/gc cannot sweep blobs a resume still needs.
  /// Crash injection requires rebuild_threads == 1 (a crash must unwind the
  /// submitting thread, not a pool worker). A JournalStore constructed over
  /// a store::KvStore (e.g. a DiskStore directory) survives the process
  /// itself, not just the service object.
  durable::JournalStore* journals = nullptr;
  /// Optional backing store for the shared compile cache. When set, every
  /// cached compile writes through to "cache/<key>" and the service
  /// constructor hydrates whatever entries the store already holds — a
  /// restarted service over the same store starts with a warm cache
  /// (RecoveryReport::cache_entries_recovered reports how warm). Point it
  /// at the same store the journal store uses for one-directory restarts.
  std::shared_ptr<store::KvStore> store;
  /// Optional cross-replica coordinator. When set, every distinct job
  /// acquires the global lease for its coalescing key before executing;
  /// jobs another replica already served finish as fleet_reuse without
  /// touching the toolchain. A coordinator error never fails the job — the
  /// replica degrades to an uncoordinated build (worst case a duplicate,
  /// still bit-identical) and counts "service.coordinator_errors".
  FleetCoordinator* coordinator = nullptr;
  /// Replica identity, annotated on job spans and written into lease
  /// records so takeovers are attributable.
  std::string replica_id;
  /// Optional tracer. Each distinct job emits a "service.job" span; every
  /// attempt nests an "attempt:<n>" span under it, which in turn parents the
  /// attempt's "service.pull"/"service.push" spans and the rebuild's own
  /// "rebuild" span tree — one trace covers admission through blob push.
  obs::Tracer* tracer = nullptr;
  /// Optional metrics registry. When set, every service counter
  /// ("service.*"), worker-pool ("service.pool.*", including the
  /// steals/parks contention counters — see sched::ThreadPool::set_metrics),
  /// journal, and rebuild metric lands here; when null the service keeps
  /// them in a private registry. ServiceStats is a point-in-time view over
  /// whichever registry is active.
  obs::MetricsRegistry* metrics = nullptr;
};

/// What recover() found and did after a restart.
struct RecoveryReport {
  /// Hub integrity scan + repair (torn blobs a crash left behind, …).
  oci::FsckReport fsck;
  /// Tickets of interrupted rebuilds resubmitted from their journals; their
  /// committed compile jobs replay instead of re-executing.
  std::vector<Ticket> resubmitted;
  std::size_t journals_found = 0;
  /// Journals dropped because their request can no longer be served (image
  /// or target system gone, metadata unreadable).
  std::size_t skipped = 0;
  /// Compile-cache entries hydrated from ServiceOptions::store at
  /// construction — committed work a resumed rebuild replays as cache hits.
  std::size_t cache_entries_recovered = 0;
};

/// One tenant's slice of the service counters, assembled from the
/// "service.tenant.<name>.*" instruments (so it survives to_json export and
/// merges across fleet replicas sharing one registry).
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;        ///< rejected at admission or evicted
  std::uint64_t throttled = 0;   ///< shed by the tenant's own rate quota
  double p99_queue_wait_ms = 0;  ///< admission → pop, from the tenant histogram
};

/// Aggregate counters. Ticket counters count submissions; job counters count
/// distinct rebuilds (coalesced tickets share one job). A ServiceStats is a
/// point-in-time view assembled from the service's metrics registry (the
/// "service.*" counters and gauges), not independent state.
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< tickets issued
  std::uint64_t coalesced = 0;  ///< tickets attached to an in-flight job
  std::uint64_t admitted = 0;   ///< jobs that entered the queue
  std::uint64_t shed = 0;       ///< jobs rejected at admission or evicted
  std::uint64_t throttled = 0;  ///< jobs shed by per-tenant rate quotas
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
  std::uint64_t expired = 0;
  std::uint64_t drained = 0;
  std::uint64_t scale_ups = 0;    ///< autoscaler grow events across all pools
  std::uint64_t scale_downs = 0;  ///< autoscaler shrink events
  std::uint64_t retries = 0;  ///< backoff delays taken across all jobs
  std::uint64_t crashed = 0;  ///< jobs that died at an injected crash site
  std::uint64_t fleet_reused = 0;  ///< jobs served from another replica's result
  std::uint64_t coordinator_errors = 0;  ///< acquire() failures (degraded builds)
  std::uint64_t compile_cache_hits = 0;
  std::uint64_t compile_cache_misses = 0;
  std::uint64_t compile_cache_inserts = 0;   ///< entries stored by rebuilds
  std::uint64_t compile_cache_hydrated = 0;  ///< entries recovered from the store
  std::uint64_t compile_cache_remote_hits = 0;  ///< served via the store fallback
  double queue_ms = 0, pull_ms = 0, rebuild_ms = 0, push_ms = 0;  ///< summed
  /// Per-tenant breakdown, keyed by tenant name ("" maps to "default").
  std::map<std::string, TenantStats> tenants;
};

class RebuildService {
 public:
  /// The service serves images out of (and pushes results back into) `hub`,
  /// which must outlive it. The registry is shared with outside pushers —
  /// it is thread-safe.
  explicit RebuildService(registry::Registry& hub, ServiceOptions options = {});

  /// Drains: queued jobs fail as drained, in-flight jobs complete.
  ~RebuildService();

  RebuildService(const RebuildService&) = delete;
  RebuildService& operator=(const RebuildService&) = delete;

  /// Registers a tenant target under `fingerprint` and spins up its worker
  /// pool. Register every system before sharing the service across threads.
  Status add_system(std::string fingerprint, TargetSystem target);

  /// Submits a rebuild. Returns a ticket immediately; the ticket may already
  /// be terminal (rejected) when the request was shed at admission. Fails
  /// only for requests the queue can never serve: unknown image, unknown
  /// system, or a draining service.
  Result<Ticket> submit(const SubmitRequest& request);

  /// Snapshot of a ticket's current state.
  Result<TicketStatus> status(Ticket ticket) const;

  /// Blocks until the ticket is terminal and returns its final status.
  Result<TicketStatus> wait(Ticket ticket) const;

  /// Holds job starts (admission continues) until resume() — lets tests and
  /// benchmarks build a known queue state deterministically.
  void pause();
  void resume();

  /// Graceful shutdown: stops admission, fails every still-queued job with
  /// JobState::drained, and blocks until all in-flight jobs finished (their
  /// results are pushed normally). Idempotent.
  void drain();

  /// Crash recovery, run once after constructing a service over a hub and
  /// journal store a previous incarnation crashed on: fscks + repairs the
  /// hub, then resubmits every surviving journal's request. Resumed rebuilds
  /// replay their committed compile jobs from the journal and produce images
  /// bit-identical to an uninterrupted run. Journals whose image or system
  /// vanished are dropped and counted as skipped.
  Result<RecoveryReport> recover();

  ServiceStats stats() const;
  std::size_t queue_depth() const;
  std::size_t running() const;

 private:
  struct Job;
  struct TenantQueue;
  struct SystemState;
  struct TenantState;
  struct TicketRecord {
    std::shared_ptr<Job> job;
    bool coalesced = false;
  };

  void run_next(SystemState& sys);
  /// Deficit-weighted round-robin pick across the system's tenant queues
  /// (priority order within a tenant). Null when every queue is empty.
  std::shared_ptr<Job> pick_job_locked(SystemState& sys);
  /// Token-bucket check for one arrival; false = shed as throttled.
  bool take_quota_token_locked(const std::string& tenant);
  TenantState& tenant_state_locked(const std::string& tenant);
  /// Removes the globally worst (lowest-priority, newest) queued job to make
  /// room for `arriving`; returns it, or null when nothing queued ranks
  /// below the arrival.
  std::shared_ptr<Job> evict_for_locked(Priority arriving);
  void execute(const TargetSystem& target, const SubmitRequest& request, Ticket seed,
               obs::SpanId job_span, const obs::Stopwatch& admitted, JobTrace& trace,
               Status& result, std::string& output, bool& deadline_expired);
  Status attempt_once(const TargetSystem& target, const SubmitRequest& request,
                      obs::SpanId attempt_span, JobTrace& trace, std::string& output);
  void finalize_locked(Job& job, JobState state, Status result);
  void autoscale_loop();
  void autoscale_tick();
  obs::Counter& counter(std::string_view name) { return metrics_->counter(name); }
  obs::Counter& tenant_counter(const std::string& tenant, std::string_view which);

  registry::Registry& hub_;
  ServiceOptions options_;
  sched::CompileCache cache_;  ///< shared across all tenants and systems
  /// Backing store for stats() when no external registry is supplied.
  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;  ///< options_.metrics or &own_metrics_

  mutable std::mutex mutex_;
  mutable std::condition_variable done_cv_;  ///< signalled on job completion
  std::condition_variable start_cv_;         ///< pause()/resume()/drain() gate
  std::map<std::string, std::unique_ptr<SystemState>> systems_;
  std::map<Ticket, TicketRecord> tickets_;
  std::map<std::string, std::shared_ptr<Job>> active_;  ///< coalescing index
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;  ///< quota buckets
  std::uint64_t next_ticket_ = 1;
  std::uint64_t next_seq_ = 0;
  std::size_t queued_count_ = 0;
  std::size_t running_count_ = 0;
  bool paused_ = false;
  bool draining_ = false;

  /// Autoscale controller. Started by the constructor when enabled, stopped
  /// by drain(); ticks sample each system's backlog and queue wait.
  std::thread autoscaler_;
  std::condition_variable autoscale_cv_;  ///< waits on mutex_; drain() wakes it
  bool stop_autoscaler_ = false;
};

}  // namespace comt::service
