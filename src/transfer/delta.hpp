// The delta push/pull protocol: move an image blob between two chunk stores
// by shipping only the chunks the other side does not already hold. The
// canonical coMtainer use is pushing an optimized child image to a node that
// already has the generic parent: the chunk-set difference against the base
// manifests is small (the recompiled layers share most of their tar content
// with the generic ones), so the wire moves a fraction of the blob.
//
// Both directions degrade gracefully. A destination that never saw the base
// (or garbage-collected some of its chunks) simply misses more per-chunk
// `contains` probes and the transfer converges to a full push — correctness
// never depends on the base actually being present. Every reassembly is
// verified against the whole-blob SHA-256, so a torn transfer surfaces as
// Errc::corrupt at pull time and a re-push heals it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"
#include "transfer/chunker.hpp"
#include "transfer/chunkstore.hpp"
#include "transfer/codec.hpp"

namespace comt::transfer {

struct DeltaOptions {
  /// Sender-side codec preference, negotiated against the destination's
  /// advertisement per transfer.
  std::vector<CodecId> preferred = supported_codecs();
};

/// What one delta transfer did, for accounting and the benches.
struct DeltaReport {
  std::string blob_digest;
  std::uint64_t blob_bytes = 0;     ///< logical size of the blob
  std::size_t chunks_total = 0;
  std::size_t chunks_moved = 0;     ///< chunks actually sent over the wire
  std::size_t chunks_reused = 0;    ///< chunks the receiver already held
  std::uint64_t bytes_moved = 0;    ///< framed chunk bytes + manifest bytes on the wire
  std::uint64_t bytes_deduped = 0;  ///< raw bytes covered by reused chunks
  CodecId codec = CodecId::identity;  ///< negotiated codec for this transfer
  bool full_push = false;  ///< no usable base manifest at the destination

  double moved_fraction() const {
    return blob_bytes == 0 ? 0.0
                           : static_cast<double>(bytes_moved) /
                                 static_cast<double>(blob_bytes);
  }
};

/// Pushes `blob` into `destination`, deduplicating against whatever chunks it
/// already holds. `base_blob_digests` names blobs expected at the destination
/// (the generic parent's layers); they only inform the `full_push` flag — the
/// per-chunk probes are authoritative, so a missing or partially GC'd base
/// degrades to moving more chunks, never to a wrong blob. Emits a
/// "transfer.push" span on the destination's tracer and bumps its
/// "transfer.bytes_moved" counter by the wire bytes.
Result<DeltaReport> push_delta(const std::string& blob,
                               const std::vector<std::string>& base_blob_digests,
                               ChunkStore& destination, const DeltaOptions& options = {});

/// Pulls `blob_digest` from `source` into `local`, fetching only the chunks
/// `local` is missing, reassembling, and verifying the whole-blob digest.
/// On success the blob is fully materialized in `local` (chunks + manifest)
/// and, when `blob_out` is non-null, its bytes are returned there. Emits a
/// "transfer.pull" span on the source's tracer.
Result<DeltaReport> pull_delta(const ChunkStore& source, std::string_view blob_digest,
                               ChunkStore& local, std::string* blob_out = nullptr,
                               const DeltaOptions& options = {});

}  // namespace comt::transfer
