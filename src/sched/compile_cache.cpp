#include "sched/compile_cache.hpp"

#include "support/sha256.hpp"

namespace comt::sched {
namespace {

void append_field(std::string& buffer, const std::string& field) {
  buffer += std::to_string(field.size());
  buffer += ':';
  buffer += field;
}

}  // namespace

std::string CacheKey::digest() const {
  std::string buffer;
  append_field(buffer, toolchain_id);
  append_field(buffer, target_arch);
  append_field(buffer, cwd);
  buffer += std::to_string(argv.size());
  buffer += ';';
  for (const std::string& arg : argv) append_field(buffer, arg);
  return Sha256::hex_digest(buffer);
}

std::shared_ptr<const CacheEntry> CompileCache::lookup(const std::string& key_digest,
                                                       const DigestFn& digest_of) {
  std::shared_ptr<const CacheEntry> candidate;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = entries_.find(key_digest);
    if (found != entries_.end()) candidate = found->second;
  }
  // Verify the input manifest outside the lock: digest_of may do real work.
  if (candidate) {
    for (const auto& [path, digest] : candidate->input_digests) {
      if (digest_of(path) != digest) {
        candidate = nullptr;
        break;
      }
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (candidate) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return candidate;
}

void CompileCache::store(const std::string& key_digest, CacheEntry entry) {
  auto shared = std::make_shared<const CacheEntry>(std::move(entry));
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[key_digest] = std::move(shared);
  ++stats_.stores;
}

CacheStats CompileCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t CompileCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace comt::sched
