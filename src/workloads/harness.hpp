// End-to-end evaluation harness: wires the whole pipeline together for one
// target system — user-side image build + coMtainer-build, system-side
// rebuild/redirect under a chosen adapter set, and execution of the four
// schemes the paper compares (original / native / adapted / optimized).
// Benches, examples and integration tests all drive this API.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "buildexec/builder.hpp"
#include "core/backend.hpp"
#include "oci/oci.hpp"
#include "support/error.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/corpus.hpp"
#include "workloads/environment.hpp"

namespace comt::workloads {

/// Execution times of the four schemes for one workload (seconds, simulated).
struct SchemeTimes {
  double original = 0;
  double native = 0;
  double adapted = 0;
  double optimized = 0;
};

/// Artifacts of preparing one application on the user side.
struct PreparedApp {
  std::string dist_tag;      ///< the generic application image
  std::string extended_tag;  ///< the coMtainer extended image ("…+coM")
  std::uint64_t image_bytes = 0;        ///< dist image size (all layers+config)
  std::uint64_t cache_layer_bytes = 0;  ///< the added cache layer's blob size
};

/// One evaluation world: a blob layout populated with the user-side images,
/// one target system's Sysenv/Rebase images, and helpers to run schemes.
class Evaluation {
 public:
  explicit Evaluation(const sysmodel::SystemProfile& system);

  const sysmodel::SystemProfile& system() const { return system_; }
  oci::Layout& layout() { return layout_; }

  /// User side: builds the app's generic image from its Dockerfile (with the
  /// coMtainer Env/Base bases) and creates the extended image.
  Result<PreparedApp> prepare(const AppSpec& app);

  /// Runs the image tagged `tag` for one workload input on this system.
  Result<double> run_image(std::string_view tag, const WorkloadInput& input, int nodes);

  /// System side: rebuild + redirect under an arbitrary adapter set (the
  /// motivation figure's ablation ladder uses this). The PGO feedback trial,
  /// if any adapter requests one, runs `input` at `nodes`.
  Result<std::string> transform(const PreparedApp& prepared,
                                const std::vector<const core::SystemAdapter*>& adapters,
                                const WorkloadInput& input, int nodes);

  /// Redirect-only flow: package replacement without recompilation (the
  /// `libo` step of Fig. 3). Replaces every generic runtime package that has
  /// an optimized counterpart in the system repository.
  Result<std::string> redirect_only(const AppSpec& app, const PreparedApp& prepared);

  /// System side: rebuild + redirect under the paper's "adapted" adapter set
  /// (libo + cxxo). Returns the optimized image's tag.
  Result<std::string> adapt(const AppSpec& app, const PreparedApp& prepared);

  /// System side: rebuild + redirect under the "optimized" set (+LTO +PGO);
  /// the PGO feedback trial uses `input` at `nodes`, mirroring deployment.
  Result<std::string> optimize(const AppSpec& app, const PreparedApp& prepared,
                               const WorkloadInput& input, int nodes);

  /// Builds the app natively on the system (Sysenv toolchain, -O3
  /// -march=native, system software stack) and returns the image tag.
  Result<std::string> build_native(const AppSpec& app);

  /// All four schemes for one workload input.
  Result<SchemeTimes> run_schemes(const AppSpec& app, const PreparedApp& prepared,
                                  const WorkloadInput& input, int nodes);

 private:
  const sysmodel::SystemProfile& system_;
  oci::Layout layout_;
};

/// The native-build Dockerfile: the user-side Dockerfile re-based onto the
/// system's build/runtime stack with native flags — what a knowledgeable
/// system user would write by hand.
std::string dockerfile_native(const AppSpec& app, const sysmodel::SystemProfile& system);

}  // namespace comt::workloads
