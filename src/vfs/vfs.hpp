// In-memory POSIX-ish filesystem.
//
// Container root filesystems, layer contents and build trees are all
// Filesystem values. Layer mechanics (OCI whiteouts, overlay application,
// diffing) live here because they are filesystem-tree operations; tar
// serialization lives in src/tar.
//
// Copying a Filesystem is cheap: nodes are immutable and shared between
// copies (structural sharing / copy-on-write at node granularity), so a
// snapshot of a multi-megabyte rootfs copies one pointer per path instead of
// the file bytes. Every mutation replaces whole nodes — a published node is
// never edited in place — which is what lets the rebuild engine hand one
// immutable snapshot to many concurrent readers (see docs/PERFORMANCE.md).
// Mutating a Filesystem object while another thread reads that same object
// is still a race, exactly as before; distinct copies never alias mutable
// state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace comt::vfs {

enum class NodeType { regular, directory, symlink };

/// One filesystem node. Regular files own their content; symlinks own their
/// target string; directories carry only metadata (children are implied by
/// the path map). Nodes are immutable once published into a Filesystem.
struct Node {
  NodeType type = NodeType::regular;
  std::string content;      ///< regular: file bytes; symlink: link target
  std::uint32_t mode = 0644;  ///< permission bits (0755 default for dirs)
  bool executable() const { return (mode & 0111) != 0; }
  bool operator==(const Node&) const = default;
};

/// OCI whiteout filename prefix ("deleted in this layer").
inline constexpr std::string_view kWhiteoutPrefix = ".wh.";
/// OCI opaque-directory marker ("hide all lower-layer content of this dir").
inline constexpr std::string_view kOpaqueMarker = ".wh..wh..opq";

/// An in-memory filesystem tree. Paths are normalized absolute paths
/// ("/usr/bin/gcc"); the root directory "/" always exists. Maintained
/// invariant: every node's parent directories exist as directory nodes.
class Filesystem {
 public:
  Filesystem();

  // -- queries ---------------------------------------------------------------

  bool exists(std::string_view path) const;
  bool is_directory(std::string_view path) const;
  bool is_regular(std::string_view path) const;
  bool is_symlink(std::string_view path) const;

  /// Node at exactly `path` (no symlink following); nullptr when absent.
  /// The pointer stays valid until this Filesystem replaces or removes the
  /// node (copies of the Filesystem keep the underlying node alive).
  const Node* lookup(std::string_view path) const;

  /// Resolves symlinks in every component (bounded chain length) and returns
  /// the final normalized path.
  Result<std::string> resolve(std::string_view path) const;

  /// Reads a regular file, following symlinks.
  Result<std::string> read_file(std::string_view path) const;

  /// Immediate children names of a directory, sorted.
  Result<std::vector<std::string>> list_directory(std::string_view path) const;

  /// All paths except "/", sorted (parents before children).
  std::vector<std::string> all_paths() const;

  /// Number of nodes excluding the root.
  std::size_t node_count() const { return nodes_.size() - 1; }

  /// Sum of regular-file content sizes, in bytes.
  std::uint64_t total_file_bytes() const;

  // -- mutations ---------------------------------------------------------------

  /// Creates `path` and any missing ancestors as directories.
  Status make_directories(std::string_view path, std::uint32_t mode = 0755);

  /// Writes a regular file, creating ancestors. Overwrites an existing
  /// regular file; fails if `path` is an existing directory.
  Status write_file(std::string_view path, std::string content, std::uint32_t mode = 0644);

  /// Creates a symlink node whose content is `target`.
  Status make_symlink(std::string_view path, std::string target);

  /// Removes a node; directories are removed recursively.
  Status remove(std::string_view path);

  /// Renames `from` to `to` (subtree included).
  Status rename(std::string_view from, std::string_view to);

  /// Copies the subtree rooted at `source` (in `other`) to `dest` here.
  /// If `source` is a directory its contents land under `dest`; if a file,
  /// `dest` names the new file. Content is shared, not duplicated.
  Status copy_from(const Filesystem& other, std::string_view source, std::string_view dest);

  /// Visits every node in path order. Return false from the visitor to stop.
  void walk(const std::function<bool(const std::string&, const Node&)>& visit) const;

  /// Structural equality: same paths, node-for-node equal. Nodes shared
  /// between the two filesystems compare by pointer, so diffing a snapshot
  /// against its source is near-free.
  bool operator==(const Filesystem& other) const;

 private:
  using NodeRef = std::shared_ptr<const Node>;

  static NodeRef make_node(NodeType type, std::string content, std::uint32_t mode);
  Status insert_parents(std::string_view path);

  // Key: normalized absolute path. Values are shared with copies of this
  // Filesystem; mutations bind a fresh node, never edit through the pointer.
  std::map<std::string, NodeRef> nodes_;
};

/// A changeset between two filesystems, in OCI layer semantics: `upper`
/// contains added/modified nodes, plus whiteout marker files for deletions.
struct LayerDiff {
  Filesystem upper;
  std::size_t added = 0;
  std::size_t modified = 0;
  std::size_t deleted = 0;
};

/// Computes the OCI-style diff taking `base` to `target`.
LayerDiff diff(const Filesystem& base, const Filesystem& target);

/// Applies an OCI layer tree (with whiteout markers) on top of `base`,
/// in place. This is the "POSIX file system simulator" role of §4.5: the
/// final image filesystem is the fold of apply_layer over all layers.
Status apply_layer(Filesystem& base, const Filesystem& layer);

}  // namespace comt::vfs
