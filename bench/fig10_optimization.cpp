// Reproduces Figure 10: execution time of the adapted and optimized schemes
// relative to the native build (lower is better; 1.00 = native parity).
// Shows the LTO+PGO gains/losses per workload and the paper's callouts.
#include <cstdio>
#include <string>
#include <vector>

#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

int run_system(const sysmodel::SystemProfile& system, const char* paper_claims) {
  std::printf("=== %s ===\n", system.name.c_str());
  std::printf("%-16s %10s %10s %12s\n", "workload", "adapted", "optimized",
              "opt-vs-adapted");

  workloads::Evaluation world(system);
  double sum_adapted_rel = 0, sum_optimized_rel = 0;
  double best_gain = -1e9, worst_gain = 1e9;
  std::string best_name, worst_name;
  int count = 0;

  for (const workloads::AppSpec& app : workloads::corpus()) {
    auto prepared = world.prepare(app);
    if (!prepared.ok()) {
      std::fprintf(stderr, "prepare(%s): %s\n", app.name.c_str(),
                   prepared.error().to_string().c_str());
      return 1;
    }
    for (const workloads::WorkloadInput& input : app.inputs) {
      auto times = world.run_schemes(app, prepared.value(), input, system.nodes);
      if (!times.ok()) {
        std::fprintf(stderr, "run(%s): %s\n", input.display_name(app.name).c_str(),
                     times.error().to_string().c_str());
        return 1;
      }
      double adapted_rel = times.value().adapted / times.value().native;
      double optimized_rel = times.value().optimized / times.value().native;
      // Gain of the advanced optimizations over the adapted scheme (the
      // per-workload LTO+PGO effect the paper discusses).
      double gain = (1.0 - times.value().optimized / times.value().adapted) * 100.0;
      std::string name = input.display_name(app.name);
      std::printf("%-16s %9.3fx %9.3fx %+10.1f%%\n", name.c_str(), adapted_rel,
                  optimized_rel, gain);
      sum_adapted_rel += adapted_rel;
      sum_optimized_rel += optimized_rel;
      if (gain > best_gain) {
        best_gain = gain;
        best_name = name;
      }
      if (gain < worst_gain) {
        worst_gain = gain;
        worst_name = name;
      }
      ++count;
    }
  }
  const double n = count;
  std::printf("\n  mean relative to native: adapted %.3fx | optimized %.3fx\n",
              sum_adapted_rel / n, sum_optimized_rel / n);
  std::printf("  mean LTO+PGO effect vs adapted: %+.1f%%\n",
              (1.0 - (sum_optimized_rel / n) / (sum_adapted_rel / n)) * 100.0);
  std::printf("  best:  %-14s %+.1f%%\n  worst: %-14s %+.1f%%\n", best_name.c_str(),
              best_gain, worst_name.c_str(), worst_gain);
  std::printf("  paper: %s\n\n", paper_claims);
  return 0;
}

}  // namespace

int main() {
  std::printf("Figure 10 — relative execution time to native builds\n\n");
  if (run_system(sysmodel::SystemProfile::x86_cluster(),
                 "LTO+PGO add 8% over adapted, 3.4% over native; best openmx.pt13 "
                 "+30.4%; worst lammps.chain -12.1%") != 0) {
    return 1;
  }
  if (run_system(sysmodel::SystemProfile::aarch64_cluster(),
                 "LTO+PGO add 5.6% over adapted, 3% over native; best lammps.lj "
                 "+17.7%; worst hpcg -14.9%") != 0) {
    return 1;
  }
  return 0;
}
