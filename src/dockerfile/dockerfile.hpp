// Dockerfile (Containerfile) AST and parser.
//
// Supports the subset the paper's two-stage build workflow uses (Fig. 2/6):
// FROM..AS, RUN, COPY (with --from=<stage>), ADD, ENV, ARG, WORKDIR, LABEL,
// ENTRYPOINT, CMD, plus line continuations and comments. ENTRYPOINT/CMD accept
// both exec-form JSON arrays and shell form.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace comt::dockerfile {

enum class InstructionKind {
  from,
  run,
  copy,
  env,
  arg,
  workdir,
  label,
  entrypoint,
  cmd,
};

const char* instruction_name(InstructionKind kind);

struct Instruction {
  InstructionKind kind;
  /// Raw argument text after the keyword (continuations joined, trimmed).
  std::string text;
  /// Parsed fields; meaning depends on kind:
  ///  from:        args[0]=image ref, optional stage name in `stage`
  ///  copy:        args=sources + destination, `stage`=--from value or ""
  ///  env/arg/label: args = {key, value}
  ///  workdir:     args[0]=path
  ///  entrypoint/cmd: args = argv (exec form) or {"/bin/sh","-c",line}
  std::vector<std::string> args;
  std::string stage;
  int line = 0;  ///< 1-based source line (for diagnostics and Fig. 11 diffs)
};

/// One build stage: FROM plus following instructions.
struct Stage {
  std::string base_image;   ///< image reference after FROM
  std::string name;         ///< AS name, or "" for anonymous stages
  std::vector<Instruction> instructions;  ///< excludes the FROM itself
};

struct Dockerfile {
  std::vector<Stage> stages;

  /// Index of the stage named `name` (or its 0-based ordinal as a string);
  /// -1 when absent.
  int stage_index(std::string_view name) const;
};

Result<Dockerfile> parse(std::string_view text);

/// Re-serializes a Dockerfile to text (used to measure build-script line
/// diffs for the Fig. 11 cross-ISA experiment).
std::string to_text(const Dockerfile& file);

/// Counts the line-level diff between two Dockerfile texts: returns
/// {added, deleted} using an LCS over lines (what `diff` would report).
std::pair<int, int> line_diff(std::string_view before, std::string_view after);

}  // namespace comt::dockerfile
