#include <gtest/gtest.h>

#include "core/cache.hpp"
#include "core/verify.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

namespace comt::core {
namespace {

class VerifyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<workloads::Evaluation>(
        sysmodel::SystemProfile::x86_cluster());
    app_ = workloads::find_app("comd");
    ASSERT_NE(app_, nullptr);
    auto prepared = world_->prepare(*app_);
    ASSERT_TRUE(prepared.ok());
    prepared_ = prepared.value();
  }

  /// Re-tags the extended image with a tampered flattened tree.
  void retag(const std::function<void(vfs::Filesystem&)>& tamper) {
    auto extended = world_->layout().find_image(prepared_.extended_tag);
    ASSERT_TRUE(extended.ok());
    auto rootfs = world_->layout().flatten(extended.value());
    ASSERT_TRUE(rootfs.ok());
    vfs::Filesystem damaged = rootfs.value();
    tamper(damaged);
    oci::ImageConfig config = extended.value().config;
    config.diff_ids.clear();
    config.history.clear();
    ASSERT_TRUE(world_->layout()
                    .create_image(config, {damaged}, prepared_.extended_tag)
                    .ok());
  }

  std::unique_ptr<workloads::Evaluation> world_;
  const workloads::AppSpec* app_ = nullptr;
  workloads::PreparedApp prepared_;
};

TEST_F(VerifyFixture, HealthyExtendedImagePasses) {
  auto report = verify_extended_image(world_->layout(), prepared_.extended_tag);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_TRUE(report.value().ok()) << (report.value().problems.empty()
                                           ? ""
                                           : report.value().problems.front());
  EXPECT_TRUE(report.value().is_extended);
  EXPECT_TRUE(report.value().graph_valid);
  EXPECT_GT(report.value().graph_nodes, 0u);
  EXPECT_GT(report.value().sources_cached, 0u);
  EXPECT_EQ(report.value().sources_missing, 0u);
  EXPECT_TRUE(report.value().entrypoint_is_build_product);
  EXPECT_GT(report.value().origin_histogram[FileOrigin::build_process], 0u);
}

TEST_F(VerifyFixture, PlainImageIsNotExtended) {
  auto report = verify_extended_image(world_->layout(), prepared_.dist_tag);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().is_extended);
  EXPECT_FALSE(report.value().ok());
}

TEST_F(VerifyFixture, MissingSourceReported) {
  retag([](vfs::Filesystem& fs) {
    auto names = fs.list_directory(std::string(kCacheDir) + "/sources");
    ASSERT_TRUE(names.ok());
    ASSERT_FALSE(names.value().empty());
    ASSERT_TRUE(fs.remove(std::string(kCacheDir) + "/sources/" + names.value().front())
                    .ok());
  });
  auto report = verify_extended_image(world_->layout(), prepared_.extended_tag);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().is_extended);
  EXPECT_GT(report.value().sources_missing, 0u);
  EXPECT_FALSE(report.value().ok());
}

TEST_F(VerifyFixture, UnclassifiedFileReported) {
  retag([](vfs::Filesystem& fs) {
    ASSERT_TRUE(fs.write_file("/smuggled-binary", "payload", 0755).ok());
  });
  auto report = verify_extended_image(world_->layout(), prepared_.extended_tag);
  ASSERT_TRUE(report.ok());
  bool flagged = false;
  for (const std::string& problem : report.value().problems) {
    flagged |= problem.find("/smuggled-binary") != std::string::npos;
  }
  EXPECT_TRUE(flagged);
  EXPECT_FALSE(report.value().ok());
}

TEST_F(VerifyFixture, VanishedBuildProductReported) {
  retag([this](vfs::Filesystem& fs) {
    ASSERT_TRUE(fs.remove(app_->binary_path()).ok());
  });
  auto report = verify_extended_image(world_->layout(), prepared_.extended_tag);
  ASSERT_TRUE(report.ok());
  bool flagged = false;
  for (const std::string& problem : report.value().problems) {
    flagged |= problem.find("vanished") != std::string::npos;
  }
  EXPECT_TRUE(flagged);
}

TEST_F(VerifyFixture, UnknownTagIsHardError) {
  auto report = verify_extended_image(world_->layout(), "ghost:tag");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, Errc::not_found);
}

}  // namespace
}  // namespace comt::core
