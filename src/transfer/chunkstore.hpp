// The chunk-level dedup store: the new layer between the content-addressed
// substrate and the wire. Where CasStore keys whole blobs by their digest, a
// ChunkStore splits every blob with the content-defined chunker and stores
//
//   <prefix>chunk/sha256/<hex>     — one framed chunk (codec.hpp frame)
//   <prefix>manifest/sha256/<hex>  — the blob's chunk manifest
//   <prefix>codecs                 — this store's codec advertisement
//
// in any KvStore backend. Two blobs that share content share chunks: putting
// an optimized image layer next to its generic parent stores only the chunks
// the recompile actually changed. get_blob reassembles from the manifest and
// verifies the whole-blob SHA-256, so a torn chunk upload or storage bit-flip
// is always Errc::corrupt, never a silently wrong image.
//
// Garbage collection is refcount-per-manifest: a chunk lives while any stored
// manifest references it. The refcount index is in-memory, hydrated from the
// stored manifests at construction (like the registry's reference map), so a
// store reopened over a DiskStore directory garbage-collects correctly.
// Blob-level pins (refcounted, like oci::Layout pins) exclude a blob's chunks
// from erase_blob entirely — the registry pins the images journaled rebuilds
// still name, so a crash-resume never loses chunks to a concurrent GC.
//
// Thread-safe: all index mutations run under one mutex; backend puts of chunk
// bytes are idempotent (content-addressed), so concurrent pushes of shared
// content are safe in any order.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/store.hpp"
#include "support/error.hpp"
#include "transfer/chunker.hpp"
#include "transfer/codec.hpp"

namespace comt::transfer {

class ChunkStore {
 public:
  struct Options {
    ChunkerParams params;
    /// Codecs this store accepts (advertised under the codecs key) in
    /// descending preference; the first entry encodes local put_blob writes.
    std::vector<CodecId> codecs = supported_codecs();
    /// Keyspace prefix inside the backend; several ChunkStores and other
    /// keyspaces can share one store.
    std::string prefix = "transfer/";
  };

  /// Opens (or creates) a chunk store over `backend`, hydrating the refcount
  /// index from any manifests already stored and publishing the codec
  /// advertisement. Constructing over a RemoteStore makes every chunk move a
  /// wire transfer riding that store's retry/breaker machinery.
  explicit ChunkStore(std::shared_ptr<store::KvStore> backend);
  ChunkStore(std::shared_ptr<store::KvStore> backend, Options options);

  // ---- blob level -----------------------------------------------------------

  /// Chunks `bytes`, stores only the chunks the backend does not already
  /// hold, writes the manifest, and returns it. Idempotent per blob: re-putting
  /// an already-stored blob counts every chunk as a dedup hit and does not
  /// double-reference anything.
  Result<ChunkManifest> put_blob(const std::string& bytes);

  /// Reassembles the blob from its manifest and verifies the whole-blob
  /// digest. Any damaged/missing chunk or a failed whole-blob check is
  /// Errc::corrupt (missing chunk: not_found).
  Result<std::string> get_blob(std::string_view blob_digest) const;

  bool contains_blob(std::string_view blob_digest) const;
  Result<ChunkManifest> manifest(std::string_view blob_digest) const;

  /// Drops the blob's manifest and every chunk whose refcount hits zero.
  /// Returns the framed chunk bytes freed; 0 when absent. A pinned blob is
  /// not erased (returns 0 and keeps everything).
  Result<std::uint64_t> erase_blob(std::string_view blob_digest);

  /// Refcounted pin against erase_blob — the chunk-level twin of
  /// oci::Layout::pin_blob, taken by the registry for journaled rebuilds.
  void pin_blob(std::string_view blob_digest);
  void unpin_blob(std::string_view blob_digest);
  bool is_pinned(std::string_view blob_digest) const;

  // ---- chunk level (the delta protocol's entry points) ----------------------

  bool contains_chunk(std::string_view chunk_digest) const;

  /// Stores one chunk framed under `codec` (identity fallback applies).
  /// Returns the framed (wire) size written; an already-present chunk is left
  /// alone and returns 0.
  Result<std::uint64_t> put_chunk(std::string_view chunk_digest, std::string_view raw,
                                  CodecId codec);

  /// Unframes, decodes and digest-verifies one chunk. `wire_bytes`, when
  /// non-null, receives the framed stored size (what a transfer moves).
  Result<std::string> get_chunk(std::string_view chunk_digest,
                                std::uint64_t* wire_bytes = nullptr) const;

  /// Unconditionally re-writes one chunk, healing a torn or bit-flipped
  /// stored frame that put_chunk's dedup probe would otherwise keep trusting.
  /// `raw` must hash to `chunk_digest`. Returns the framed size written.
  Result<std::uint64_t> repair_chunk(std::string_view chunk_digest, std::string_view raw,
                                     CodecId codec);

  /// Records `manifest`, bumping chunk refcounts when it is new. The chunks
  /// themselves must already be stored (push moves chunks first).
  Status put_manifest(const ChunkManifest& manifest);

  /// The destination's advertised codec list, read back from the backend —
  /// what a pushing peer negotiates against. Empty when damaged or absent.
  std::vector<CodecId> advertised_codecs() const;

  // ---- accounting -----------------------------------------------------------

  /// Framed bytes of every stored chunk — the store's physical footprint.
  std::uint64_t stored_chunk_bytes() const;
  /// Sum of every stored manifest's blob size — the logical bytes served.
  std::uint64_t logical_bytes() const;
  /// logical / stored; 1.0 for an empty store. > 1 means dedup+compression
  /// beat whole-blob storage.
  double dedup_ratio() const;
  std::size_t chunk_count() const;
  std::size_t blob_count() const;

  /// Dedup hits/misses and deduped bytes observed by this store object.
  std::uint64_t chunks_hit() const;
  std::uint64_t chunks_miss() const;
  std::uint64_t bytes_deduped() const;
  /// Wire bytes delta transfers moved into/out of this store (see delta.hpp).
  std::uint64_t bytes_moved() const;
  /// Called by the delta protocol after a transfer completes.
  void note_transfer_moved(std::uint64_t wire_bytes) const;

  const ChunkerParams& params() const { return options_.params; }
  const std::vector<CodecId>& codecs() const { return options_.codecs; }
  store::KvStore& backend() { return *backend_; }
  const std::shared_ptr<store::KvStore>& backend_ptr() const { return backend_; }

  /// Attaches "transfer.chunks_hit"/"transfer.chunks_miss"/
  /// "transfer.bytes_deduped"/"transfer.bytes_stored" counters. Pass nullptrs
  /// to detach. Wire up before sharing.
  void set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics);
  obs::Tracer* tracer() const { return tracer_; }

 private:
  std::string chunk_key(std::string_view chunk_digest) const;
  std::string manifest_key(std::string_view blob_digest) const;
  static Result<std::string> digest_hex(std::string_view digest);
  void note_hit(std::uint64_t raw_bytes) const;
  void note_miss(std::uint64_t stored_bytes) const;
  Status put_manifest_locked(const ChunkManifest& manifest);

  std::shared_ptr<store::KvStore> backend_;
  Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, int, std::less<>> refcounts_;  ///< chunk digest → #manifests
  std::map<std::string, ChunkManifest, std::less<>> manifests_;  ///< blob digest → manifest
  std::map<std::string, int, std::less<>> pins_;       ///< blob digest → pin count
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> deduped_bytes_{0};
  mutable std::atomic<std::uint64_t> moved_bytes_{0};
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* hit_counter_ = nullptr;
  obs::Counter* miss_counter_ = nullptr;
  obs::Counter* deduped_counter_ = nullptr;
  obs::Counter* stored_counter_ = nullptr;
  obs::Counter* moved_counter_ = nullptr;
};

}  // namespace comt::transfer
