#include <gtest/gtest.h>

#include "oci/oci.hpp"

namespace comt::oci {
namespace {

vfs::Filesystem layer_tree(std::string_view marker) {
  vfs::Filesystem fs;
  EXPECT_TRUE(fs.write_file("/marker", std::string(marker)).ok());
  EXPECT_TRUE(fs.write_file("/shared", "same in every layer").ok());
  return fs;
}

ImageConfig sample_config() {
  ImageConfig config;
  config.architecture = "amd64";
  config.config.env = {"PATH=/usr/bin", "LANG=C"};
  config.config.entrypoint = {"/app/run"};
  config.config.cmd = {"--default"};
  config.config.working_dir = "/app";
  config.config.labels["vendor"] = "comtainer";
  return config;
}

TEST(DigestTest, MatchesSha256) {
  Digest digest = Digest::of_blob("abc");
  EXPECT_EQ(digest.value,
            "sha256:ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(DescriptorTest, JsonRoundTrip) {
  Descriptor descriptor;
  descriptor.media_type = std::string(kMediaTypeLayer);
  descriptor.digest = Digest::of_blob("x");
  descriptor.size = 1;
  descriptor.annotations["note"] = "hello";
  auto back = Descriptor::from_json(descriptor.to_json());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().media_type, descriptor.media_type);
  EXPECT_EQ(back.value().digest, descriptor.digest);
  EXPECT_EQ(back.value().size, 1u);
  EXPECT_EQ(back.value().annotations.at("note"), "hello");
}

TEST(DescriptorTest, MissingDigestRejected) {
  json::Object object;
  object.emplace_back("mediaType", json::Value("x"));
  EXPECT_FALSE(Descriptor::from_json(json::Value(std::move(object))).ok());
}

TEST(ImageConfigTest, JsonRoundTrip) {
  ImageConfig config = sample_config();
  config.diff_ids = {Digest::of_blob("l1"), Digest::of_blob("l2")};
  config.history = {"step one", "step two"};
  auto back = ImageConfig::from_json(config.to_json());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().architecture, "amd64");
  EXPECT_EQ(back.value().config.env, config.config.env);
  EXPECT_EQ(back.value().config.entrypoint, config.config.entrypoint);
  EXPECT_EQ(back.value().config.labels.at("vendor"), "comtainer");
  EXPECT_EQ(back.value().diff_ids, config.diff_ids);
  EXPECT_EQ(back.value().history, config.history);
}

TEST(LayoutTest, BlobStoreIsContentAddressed) {
  Layout layout;
  Descriptor a = layout.put_blob("hello", "text/plain");
  Descriptor b = layout.put_blob("hello", "text/plain");
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(layout.blob_count(), 1u);
  EXPECT_EQ(layout.get_blob(a.digest).value(), "hello");
  EXPECT_FALSE(layout.get_blob(Digest{"sha256:0000"}).ok());
}

TEST(LayoutTest, CreateAndFindImage) {
  Layout layout;
  auto image = layout.create_image(sample_config(), {layer_tree("one")}, "app:v1");
  ASSERT_TRUE(image.ok());
  auto found = layout.find_image("app:v1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().manifest_digest, image.value().manifest_digest);
  EXPECT_EQ(found.value().config.config.entrypoint,
            std::vector<std::string>{"/app/run"});
  EXPECT_FALSE(layout.find_image("missing:tag").ok());
}

TEST(LayoutTest, FlattenAppliesLayersInOrder) {
  Layout layout;
  vfs::Filesystem lower = layer_tree("lower");
  vfs::Filesystem upper;
  ASSERT_TRUE(upper.write_file("/marker", "upper").ok());
  ASSERT_TRUE(upper.write_file("/.wh.shared", "").ok());
  auto image = layout.create_image(sample_config(), {lower, upper}, "stacked");
  ASSERT_TRUE(image.ok());
  auto rootfs = layout.flatten(image.value());
  ASSERT_TRUE(rootfs.ok());
  EXPECT_EQ(rootfs.value().read_file("/marker").value(), "upper");
  EXPECT_FALSE(rootfs.value().exists("/shared"));
}

TEST(LayoutTest, AppendLayerDerivesNewImage) {
  Layout layout;
  auto base = layout.create_image(sample_config(), {layer_tree("base")}, "app:v1");
  ASSERT_TRUE(base.ok());
  vfs::Filesystem extra;
  ASSERT_TRUE(extra.write_file("/.coMtainer/cache/x", "cache data").ok());
  auto extended = layout.append_layer(base.value(), extra, "coMtainer-build", "app:v1+coM");
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended.value().manifest.layers.size(), 2u);
  EXPECT_EQ(extended.value().config.history.back(), "coMtainer-build");
  // The original image is untouched (the paper's layering argument).
  auto original = layout.find_image("app:v1");
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(original.value().manifest.layers.size(), 1u);
  auto rootfs = layout.flatten(extended.value());
  ASSERT_TRUE(rootfs.ok());
  EXPECT_EQ(rootfs.value().read_file("/.coMtainer/cache/x").value(), "cache data");
  EXPECT_EQ(rootfs.value().read_file("/marker").value(), "base");
}

TEST(LayoutTest, RetaggingReplacesIndexEntry) {
  Layout layout;
  auto v1 = layout.create_image(sample_config(), {layer_tree("one")}, "app:latest");
  ASSERT_TRUE(v1.ok());
  auto v2 = layout.create_image(sample_config(), {layer_tree("two")}, "app:latest");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(layout.tags(), std::vector<std::string>{"app:latest"});
  auto found = layout.find_image("app:latest");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().manifest_digest, v2.value().manifest_digest);
}

TEST(LayoutTest, ManifestRequiresBlobsPresent) {
  Layout layout;
  Manifest manifest;
  manifest.config.media_type = std::string(kMediaTypeConfig);
  manifest.config.digest = Digest::of_blob("not stored");
  auto result = layout.add_manifest(manifest, "broken");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::not_found);
}

TEST(LayoutTest, IndexJsonCarriesRefNames) {
  Layout layout;
  ASSERT_TRUE(layout.create_image(sample_config(), {layer_tree("a")}, "a:1").ok());
  ASSERT_TRUE(layout.create_image(sample_config(), {layer_tree("b")}, "b:2").ok());
  json::Value index = layout.index_json();
  const json::Value* manifests = index.find("manifests");
  ASSERT_NE(manifests, nullptr);
  ASSERT_EQ(manifests->as_array().size(), 2u);
  EXPECT_EQ(manifests->as_array()[0]
                .find("annotations")
                ->get_string(std::string(kRefNameAnnotation)),
            "a:1");
}

TEST(LayoutTest, FsckDetectsHealthyStore) {
  Layout layout;
  ASSERT_TRUE(layout.create_image(sample_config(), {layer_tree("x")}, "x:1").ok());
  EXPECT_TRUE(layout.fsck().ok());
}

TEST(LayoutTest, ManifestJsonRoundTrip) {
  Layout layout;
  auto image = layout.create_image(sample_config(), {layer_tree("m")}, "m:1");
  ASSERT_TRUE(image.ok());
  auto back = Manifest::from_json(image.value().manifest.to_json());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().config.digest, image.value().manifest.config.digest);
  ASSERT_EQ(back.value().layers.size(), 1u);
  EXPECT_EQ(back.value().layers[0].digest, image.value().manifest.layers[0].digest);
}

// The paper's §4.5 file-system simulator: flattening multiple layers with
// deletes/opaque markers, parameterized over layer counts.
class FlattenDepth : public ::testing::TestWithParam<int> {};

TEST_P(FlattenDepth, LastWriterWins) {
  Layout layout;
  std::vector<vfs::Filesystem> layers;
  for (int i = 0; i < GetParam(); ++i) {
    vfs::Filesystem layer;
    ASSERT_TRUE(layer.write_file("/generation", std::to_string(i)).ok());
    ASSERT_TRUE(layer.write_file("/file" + std::to_string(i), "mine").ok());
    layers.push_back(std::move(layer));
  }
  auto image = layout.create_image(sample_config(), layers, "depth");
  ASSERT_TRUE(image.ok());
  auto rootfs = layout.flatten(image.value());
  ASSERT_TRUE(rootfs.ok());
  EXPECT_EQ(rootfs.value().read_file("/generation").value(),
            std::to_string(GetParam() - 1));
  for (int i = 0; i < GetParam(); ++i) {
    EXPECT_TRUE(rootfs.value().exists("/file" + std::to_string(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, FlattenDepth, ::testing::Values(1, 2, 5, 16));

}  // namespace
}  // namespace comt::oci
