// Profile reports: a rebuild's spans folded into per-phase time breakdowns.
//
// The rebuild pipeline tags every span with a phase category (resolve →
// compile → link → layer-commit → blob-push); profile_phases() sums span
// durations per category under one root span, which is exactly the "where
// did this rebuild spend its time" question an operator asks before anything
// else. The known pipeline phases are reported first, in pipeline order, then
// any other categories alphabetically.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "obs/trace.hpp"

namespace comt::obs {

/// Pipeline phases in execution order. Categories outside this list still
/// aggregate; they sort after these.
inline constexpr std::string_view kPipelinePhases[] = {
    "resolve", "compile", "link", "layer-commit", "blob-push"};

struct PhaseTime {
  std::string phase;    ///< span category
  double total_ms = 0;  ///< summed span durations in this phase
  std::size_t spans = 0;
};

struct ProfileReport {
  std::string root;     ///< root span name ("" when no root was found)
  double total_ms = 0;  ///< root span duration (0 without a root)
  std::vector<PhaseTime> phases;

  /// {"root", "total_ms", "phases": [{"phase", "total_ms", "spans"}, …]}.
  json::Value to_json() const;
  /// Aligned human-readable table, one line per phase.
  std::string to_string() const;
};

/// Aggregates the tracer's spans by category. With `root != kNoSpan` only the
/// root span's descendants (by parent links) are counted and total_ms is the
/// root's duration; with kNoSpan every span counts and total_ms spans the
/// whole trace. The root span's own category is excluded from the phase sums
/// (it would double-count all of its children).
ProfileReport profile_phases(const Tracer& tracer, SpanId root = kNoSpan);

}  // namespace comt::obs
