// The evaluation corpus: the paper's nine HPC benchmarks plus LAMMPS and
// OpenMX (Table 2), reproduced as synthetic applications whose kernel mixes
// are calibrated so the evaluation figures' *shape* falls out of the
// execution model (who wins, by what factor, where the regressions are).
// Each app carries a source tree, a two-stage Dockerfile, its package
// dependencies, per-workload inputs, and cross-ISA build-script variants.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sysmodel/sysmodel.hpp"
#include "toolchain/source.hpp"
#include "vfs/vfs.hpp"

namespace comt::workloads {

/// One evaluated input of an application (a row of Fig. 9: lammps.lj etc.).
struct WorkloadInput {
  std::string name;          ///< "lj", "pt13", or "" for single-input apps
  double input_scale = 1.0;
  std::map<std::string, double> kernel_weight;

  /// Full display name, "app.input" or just "app".
  std::string display_name(std::string_view app) const;

  sysmodel::RunRequest run_request(int nodes) const;
};

struct AppSpec {
  std::string name;       ///< "lulesh"
  int paper_loc = 0;      ///< Table 2's LoC column
  std::vector<std::string> build_packages;    ///< apt deps of the build stage
  std::vector<std::string> runtime_packages;  ///< apt deps of the dist stage
  std::vector<toolchain::SourceGenSpec> units;  ///< TUs; units[0] holds main()
  std::vector<std::string> link_libraries;      ///< -l names
  std::vector<std::string> extra_cflags;  ///< ISA-specific flags (Fig. 11 fodder)
  bool isa_locked = false;  ///< build script generates an ISA-locked header
  /// Build through a Makefile instead of explicit RUN gcc lines (real apps
  /// do; the hijacker must see through the build system).
  bool use_make = false;
  std::vector<WorkloadInput> inputs;

  std::string binary_path() const { return "/app/" + name; }
  /// Lines of code of the generated corpus sources.
  int corpus_loc() const;
};

/// All eleven applications (18 workload rows).
const std::vector<AppSpec>& corpus();
const AppSpec* find_app(std::string_view name);

/// The build context tree for an app: /src/*.cc and /src/*.h, plus a
/// generated /Makefile for make-driven apps.
vfs::Filesystem build_context(const AppSpec& app);

/// The generated Makefile of a make-driven app.
std::string makefile_text(const AppSpec& app);

/// The app's two-stage Dockerfile. `comt_bases` selects coMtainer Env/Base
/// images (Fig. 6's one-line modification) versus plain ubuntu.
std::string dockerfile_text(const AppSpec& app, std::string_view arch, bool comt_bases);

/// The minimally modified build script that lets coMtainer cross ISAs
/// (machine flags removed, ISA-locked header generation dropped).
std::string dockerfile_cross_comt(const AppSpec& app, std::string_view arch);

/// The traditional cross-compilation build script (cross toolchain install,
/// triplet-prefixed tools, sysroot) — Fig. 11's xbuild baseline.
std::string dockerfile_xbuild(const AppSpec& app, std::string_view host_arch,
                              std::string_view target_arch);

}  // namespace comt::workloads
