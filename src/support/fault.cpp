#include "support/fault.hpp"

namespace comt::support {
namespace {

std::string describe(std::string_view site, std::uint64_t call) {
  return "injected fault at " + std::string(site) + " (call #" + std::to_string(call) + ")";
}

}  // namespace

void FaultInjector::fail_next(std::string_view site, int count, Errc code,
                              std::string message) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& s = sites_[std::string(site)];
  s.fail_next = count > 0 ? count : 0;
  s.code = code;
  if (!message.empty()) s.message = std::move(message);
}

void FaultInjector::fail_every(std::string_view site, int period, Errc code,
                               std::string message) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& s = sites_[std::string(site)];
  s.fail_every = period > 0 ? period : 0;
  s.every_base = s.calls;
  s.code = code;
  if (!message.empty()) s.message = std::move(message);
}

void FaultInjector::crash_next(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_[std::string(site)].crash_next = true;
}

void FaultInjector::crash_at(std::string_view site, std::uint64_t nth_call) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_[std::string(site)].crash_at = nth_call;
}

void FaultInjector::tear_next(std::string_view site, double keep_fraction) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& s = sites_[std::string(site)];
  s.tear_next = true;
  s.tear_fraction = keep_fraction;
}

void FaultInjector::tear_at(std::string_view site, std::uint64_t nth_call,
                            double keep_fraction) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& s = sites_[std::string(site)];
  s.tear_at = nth_call;
  s.tear_fraction = keep_fraction;
}

void FaultInjector::clear(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  it->second.fail_next = 0;
  it->second.fail_every = 0;
  it->second.crash_next = false;
  it->second.crash_at = 0;
  it->second.tear_next = false;
  it->second.tear_at = 0;
}

void FaultInjector::clear_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, s] : sites_) {
    s.fail_next = 0;
    s.fail_every = 0;
    s.crash_next = false;
    s.crash_at = 0;
    s.tear_next = false;
    s.tear_at = 0;
  }
}

Status FaultInjector::check(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& s = sites_[std::string(site)];
  ++s.calls;
  bool fire = false;
  if (s.fail_next > 0) {
    --s.fail_next;
    fire = true;
  } else if (s.fail_every > 0 && (s.calls - s.every_base) % s.fail_every == 0) {
    fire = true;
  }
  if (!fire) return Status::success();
  ++s.injected;
  std::string message = s.message.empty() ? describe(site, s.calls)
                                          : s.message + " (call #" + std::to_string(s.calls) + ")";
  return make_error(s.code, std::move(message));
}

void FaultInjector::check_crash(std::string_view site) {
  CrashInjected crash;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Site& s = sites_[std::string(site)];
    ++s.calls;
    bool fire = false;
    if (s.crash_next) {
      s.crash_next = false;
      fire = true;
    } else if (s.crash_at != 0 && s.calls == s.crash_at) {
      s.crash_at = 0;
      fire = true;
    }
    if (!fire) return;
    ++s.injected;
    crash = CrashInjected{std::string(site), s.calls};
  }
  throw crash;
}

std::optional<std::size_t> FaultInjector::check_torn(std::string_view site,
                                                     std::size_t total_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& s = sites_[std::string(site)];
  ++s.calls;
  bool fire = false;
  if (s.tear_next) {
    s.tear_next = false;
    fire = true;
  } else if (s.tear_at != 0 && s.calls == s.tear_at) {
    s.tear_at = 0;
    fire = true;
  }
  if (!fire) return std::nullopt;
  ++s.injected;
  if (total_bytes == 0) return 0;
  double fraction = s.tear_fraction;
  if (fraction < 0) fraction = 0;
  auto keep = static_cast<std::size_t>(static_cast<double>(total_bytes) * fraction);
  // A "torn" write that persisted everything would be a completed write.
  if (keep >= total_bytes) keep = total_bytes - 1;
  return keep;
}

std::uint64_t FaultInjector::calls(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.calls;
}

std::uint64_t FaultInjector::injected(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.injected;
}

std::vector<FaultInjector::SiteCount> FaultInjector::site_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SiteCount> out;
  out.reserve(sites_.size());
  for (const auto& [name, s] : sites_) {
    out.push_back(SiteCount{name, s.calls, s.injected});
  }
  return out;  // sites_ is an ordered map, so this is already name-sorted
}

std::uint64_t FaultInjector::total_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, s] : sites_) total += s.injected;
  return total;
}

}  // namespace comt::support
