// OCI fsck: detection and repair of all four corruption classes, pin
// protection, and the registry-level integrity surface (fsck, gc, pin).
#include "oci/fsck.hpp"

#include <gtest/gtest.h>

#include "registry/registry.hpp"
#include "support/fault.hpp"

namespace comt::oci {
namespace {

vfs::Filesystem layer_tree(std::string_view marker) {
  vfs::Filesystem fs;
  EXPECT_TRUE(fs.write_file("/marker", std::string(marker)).ok());
  EXPECT_TRUE(fs.write_file("/bin/tool", "tool bytes " + std::string(marker), 0755).ok());
  return fs;
}

Image make_image(Layout& layout, std::string_view tag, std::string_view marker) {
  auto image = layout.create_image(ImageConfig{}, {layer_tree(marker)}, tag);
  EXPECT_TRUE(image.ok());
  return image.value();
}

/// A pristine copy of `layout` acting as the origin registry fsck refetches
/// true bytes from.
BlobFetcher origin_of(const Layout& origin) {
  return [&origin](const Digest& digest) { return origin.get_blob(digest); };
}

const FsckFinding* find_issue(const FsckReport& report, FsckIssue issue) {
  for (const FsckFinding& finding : report.findings) {
    if (finding.issue == issue) return &finding;
  }
  return nullptr;
}

TEST(FsckTest, CleanLayoutHasNoFindings) {
  Layout layout;
  make_image(layout, "app:v1", "one");
  FsckReport report = fsck(layout);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.remaining, 0u);
}

TEST(FsckTest, CorruptByteDetectedAndRefetched) {
  Layout layout;
  Image image = make_image(layout, "app:v1", "one");
  Layout pristine = layout;

  // Flip one byte of the layer blob, length unchanged: corrupt, not truncated.
  const Digest layer = image.manifest.layers[0].digest;
  std::string bytes = layout.get_blob(layer).value();
  bytes[bytes.size() / 2] ^= 0x40;
  layout.set_blob_bytes(layer, std::move(bytes));

  FsckReport scan = fsck(layout);
  ASSERT_EQ(scan.findings.size(), 1u);
  EXPECT_EQ(scan.corrupt, 1u);
  EXPECT_EQ(scan.findings[0].digest, layer);
  EXPECT_NE(scan.findings[0].context.find("layer 0"), std::string::npos);
  EXPECT_STREQ(to_string(scan.findings[0].issue), "corrupt-blob");

  FsckReport repair = fsck_repair(layout, origin_of(pristine));
  EXPECT_EQ(repair.refetched, 1u);
  EXPECT_EQ(repair.remaining, 0u);
  EXPECT_EQ(layout.get_blob(layer).value(), pristine.get_blob(layer).value());
  EXPECT_TRUE(layout.fsck().ok());
}

TEST(FsckTest, TruncatedBlobDetectedAndRefetched) {
  Layout layout;
  Image image = make_image(layout, "app:v1", "one");
  Layout pristine = layout;

  const Digest layer = image.manifest.layers[0].digest;
  std::string bytes = layout.get_blob(layer).value();
  layout.set_blob_bytes(layer, bytes.substr(0, bytes.size() / 3));

  FsckReport scan = fsck(layout);
  ASSERT_EQ(scan.findings.size(), 1u);
  EXPECT_EQ(scan.truncated, 1u);
  EXPECT_EQ(scan.findings[0].issue, FsckIssue::truncated_blob);

  FsckReport repair = fsck_repair(layout, origin_of(pristine));
  EXPECT_EQ(repair.refetched, 1u);
  EXPECT_EQ(repair.remaining, 0u);
}

TEST(FsckTest, MissingBlobDetectedAndRefetched) {
  Layout layout;
  Image image = make_image(layout, "app:v1", "one");
  Layout pristine = layout;

  const Digest config = image.manifest.config.digest;
  EXPECT_GT(layout.remove_blob(config), 0u);

  FsckReport scan = fsck(layout);
  ASSERT_EQ(scan.findings.size(), 1u);
  EXPECT_EQ(scan.missing, 1u);
  EXPECT_EQ(scan.findings[0].issue, FsckIssue::missing_blob);
  EXPECT_NE(scan.findings[0].context.find("config"), std::string::npos);

  FsckReport repair = fsck_repair(layout, origin_of(pristine));
  EXPECT_EQ(repair.refetched, 1u);
  EXPECT_EQ(repair.remaining, 0u);
  EXPECT_TRUE(layout.has_blob(config));
}

TEST(FsckTest, DanglingManifestRefetchedFromOrigin) {
  Layout layout;
  Image image = make_image(layout, "app:v1", "one");
  Layout pristine = layout;

  EXPECT_GT(layout.remove_blob(image.manifest_digest), 0u);
  FsckReport scan = fsck(layout);
  ASSERT_EQ(scan.findings.size(), 1u);
  EXPECT_EQ(scan.dangling, 1u);
  EXPECT_EQ(scan.findings[0].tag, "app:v1");

  FsckReport repair = fsck_repair(layout, origin_of(pristine));
  EXPECT_EQ(repair.refetched, 1u);
  EXPECT_EQ(repair.remaining, 0u);
  EXPECT_TRUE(layout.find_image("app:v1").ok());
}

TEST(FsckTest, DanglingManifestWithoutOriginCutsTheTag) {
  Layout layout;
  Image image = make_image(layout, "app:v1", "one");
  make_image(layout, "app:v2", "two");
  EXPECT_GT(layout.remove_blob(image.manifest_digest), 0u);

  FsckReport repair = fsck_repair(layout);
  EXPECT_EQ(repair.dangling, 1u);
  EXPECT_EQ(repair.dropped, 1u);
  EXPECT_EQ(repair.remaining, 0u);
  EXPECT_FALSE(layout.find_image("app:v1").ok());
  EXPECT_TRUE(layout.find_image("app:v2").ok());
  // index_json asserts every indexed manifest exists — the cut restored that.
  (void)layout.index_json();
}

TEST(FsckTest, AllFourClassesInOneScan) {
  Layout layout;
  Image victim = make_image(layout, "app:corrupt", "one");
  Image truncated = make_image(layout, "app:trunc", "two");
  Image missing = make_image(layout, "app:missing", "three");
  Image dangling = make_image(layout, "app:dangling", "four");
  Layout pristine = layout;

  std::string bytes = layout.get_blob(victim.manifest.layers[0].digest).value();
  bytes.back() ^= 0x01;
  layout.set_blob_bytes(victim.manifest.layers[0].digest, std::move(bytes));
  std::string short_bytes = layout.get_blob(truncated.manifest.layers[0].digest).value();
  short_bytes.resize(short_bytes.size() / 2);
  layout.set_blob_bytes(truncated.manifest.layers[0].digest, std::move(short_bytes));
  EXPECT_GT(layout.remove_blob(missing.manifest.config.digest), 0u);
  EXPECT_GT(layout.remove_blob(dangling.manifest_digest), 0u);

  FsckReport scan = fsck(layout);
  EXPECT_EQ(scan.corrupt, 1u);
  EXPECT_EQ(scan.truncated, 1u);
  EXPECT_EQ(scan.missing, 1u);
  EXPECT_EQ(scan.dangling, 1u);
  EXPECT_EQ(scan.remaining, scan.findings.size());
  ASSERT_NE(find_issue(scan, FsckIssue::corrupt_blob), nullptr);
  ASSERT_NE(find_issue(scan, FsckIssue::dangling_manifest), nullptr);

  FsckReport repair = fsck_repair(layout, origin_of(pristine));
  EXPECT_EQ(repair.refetched, 4u);
  EXPECT_EQ(repair.dropped, 0u);
  EXPECT_EQ(repair.remaining, 0u);
  for (std::string_view tag : {"app:corrupt", "app:trunc", "app:missing", "app:dangling"}) {
    EXPECT_TRUE(layout.find_image(tag).ok()) << tag;
  }
}

TEST(FsckTest, OrphanDamageIsQuarantined) {
  Layout layout;
  make_image(layout, "app:v1", "one");
  Descriptor orphan = layout.put_blob("orphan bytes nothing references", "text/plain");
  std::string bytes = layout.get_blob(orphan.digest).value();
  bytes[0] ^= 0x01;
  layout.set_blob_bytes(orphan.digest, std::move(bytes));

  FsckReport scan = fsck(layout);
  ASSERT_EQ(scan.findings.size(), 1u);
  EXPECT_EQ(scan.findings[0].context, "unreferenced blob");

  // Even with an origin, unreferenced damage is dropped, not refetched.
  Layout pristine;
  pristine.put_blob("orphan bytes nothing references", "text/plain");
  FsckReport repair = fsck_repair(layout, origin_of(pristine));
  EXPECT_EQ(repair.dropped, 1u);
  EXPECT_EQ(repair.refetched, 0u);
  EXPECT_EQ(repair.remaining, 0u);
  EXPECT_FALSE(layout.has_blob(orphan.digest));
}

TEST(FsckTest, PinnedBlobIsNeverDropped) {
  Layout layout;
  Descriptor orphan = layout.put_blob("journaled intermediate state", "text/plain");
  layout.pin_blob(orphan.digest);
  std::string bytes = layout.get_blob(orphan.digest).value();
  bytes[0] ^= 0x01;
  layout.set_blob_bytes(orphan.digest, std::move(bytes));

  FsckReport repair = fsck_repair(layout);
  ASSERT_EQ(repair.findings.size(), 1u);
  EXPECT_EQ(repair.findings[0].action, FsckAction::none);
  EXPECT_EQ(repair.dropped, 0u);
  EXPECT_EQ(repair.remaining, 1u);  // honest: still damaged, but protected
  EXPECT_TRUE(layout.has_blob(orphan.digest));

  layout.unpin_blob(orphan.digest);
  FsckReport second = fsck_repair(layout);
  EXPECT_EQ(second.dropped, 1u);
  EXPECT_EQ(second.remaining, 0u);
}

TEST(FsckTest, RepairWithoutOriginDropsDamagedReferencedBlob) {
  Layout layout;
  Image image = make_image(layout, "app:v1", "one");
  const Digest layer = image.manifest.layers[0].digest;
  std::string bytes = layout.get_blob(layer).value();
  bytes[0] ^= 0x01;
  layout.set_blob_bytes(layer, std::move(bytes));

  FsckReport repair = fsck_repair(layout);
  EXPECT_EQ(repair.dropped, 1u);
  // The manifest still references the dropped blob — the rescan reports it
  // as missing, which is the truthful remaining state.
  EXPECT_EQ(repair.remaining, 1u);
  EXPECT_FALSE(layout.has_blob(layer));
}

// ---- Layout pins vs GC (the journaled-rebuild regression) -------------------

TEST(LayoutPinTest, RemoveBlobRespectsRefcountedPins) {
  Layout layout;
  Descriptor blob = layout.put_blob("pinned content", "text/plain");
  layout.pin_blob(blob.digest);
  layout.pin_blob(blob.digest);
  EXPECT_TRUE(layout.is_pinned(blob.digest));
  EXPECT_EQ(layout.remove_blob(blob.digest), 0u);
  layout.unpin_blob(blob.digest);
  EXPECT_EQ(layout.remove_blob(blob.digest), 0u);  // one pin still held
  layout.unpin_blob(blob.digest);
  EXPECT_FALSE(layout.is_pinned(blob.digest));
  EXPECT_GT(layout.remove_blob(blob.digest), 0u);
}

TEST(LayoutPinTest, UnpinWithoutPinIsANoop) {
  Layout layout;
  Descriptor blob = layout.put_blob("x", "text/plain");
  layout.unpin_blob(blob.digest);
  EXPECT_FALSE(layout.is_pinned(blob.digest));
  EXPECT_GT(layout.remove_blob(blob.digest), 0u);
}

// ---- Registry integrity surface ---------------------------------------------

void push_sample(registry::Registry& hub, std::string_view name, std::string_view tag,
                 std::string_view marker) {
  Layout local;
  make_image(local, "local", marker);
  EXPECT_TRUE(hub.push(local, "local", name, tag).ok());
}

TEST(RegistryFsckTest, CleanHubScansClean) {
  registry::Registry hub;
  push_sample(hub, "org/app", "1.0", "one");
  FsckReport report = hub.fsck();
  EXPECT_TRUE(report.clean());
}

TEST(RegistryFsckTest, TornPushIsDetectedAndQuarantined) {
  registry::Registry hub;
  Layout local;
  make_image(local, "local", "one");
  ASSERT_TRUE(hub.push(local, "local", "org/app", "1.0").ok());

  // A second image dies mid-push: its first new blob is torn, the reference
  // is never written — exactly what a crashed pusher leaves behind.
  Layout other;
  make_image(other, "local", "two");
  support::FaultInjector faults;
  hub.set_fault_injector(&faults);
  faults.tear_next(std::string(kBlobPutSite), 0.4);
  EXPECT_THROW((void)hub.push(other, "local", "org/app", "2.0"), support::CrashInjected);
  hub.set_fault_injector(nullptr);
  EXPECT_FALSE(hub.has("org/app", "2.0"));

  FsckReport scan = hub.fsck();
  ASSERT_FALSE(scan.clean());

  FsckReport repair = hub.fsck(/*repair=*/true);
  EXPECT_GE(repair.dropped, 1u);
  EXPECT_EQ(repair.remaining, 0u);
  EXPECT_TRUE(hub.fsck().clean());
  // The intact image is untouched.
  Layout check;
  EXPECT_TRUE(hub.pull("org/app", "1.0", check, "pulled").ok());
}

TEST(RegistryPinTest, PinProtectsImageBlobsFromRemoveAndGc) {
  registry::Registry hub;
  Layout local;
  make_image(local, "local", "one");
  ASSERT_TRUE(hub.push(local, "local", "org/app", "1.0").ok());
  const std::size_t blobs_before = hub.stats().blobs;

  // The journaled-rebuild regression: while a rebuild's journal names this
  // image, a concurrent remove() of its only reference must not sweep the
  // blobs — the crash-resume still has to pull them.
  ASSERT_TRUE(hub.pin("org/app", "1.0").ok());
  ASSERT_TRUE(hub.remove("org/app", "1.0").ok());
  EXPECT_EQ(hub.stats().blobs, blobs_before);
  EXPECT_EQ(hub.stats().removed_blobs, 0u);

  // Unpin fails (the reference is gone), so release via gc after re-push:
  // re-pushing restores the reference, unpin releases, remove sweeps.
  ASSERT_TRUE(hub.push(local, "local", "org/app", "1.0").ok());
  ASSERT_TRUE(hub.unpin("org/app", "1.0").ok());
  ASSERT_TRUE(hub.remove("org/app", "1.0").ok());
  EXPECT_EQ(hub.stats().blobs, 0u);
  EXPECT_GT(hub.stats().removed_blobs, 0u);
}

TEST(RegistryPinTest, GcSweepsOnlyUnpinnedUnreferencedBlobs) {
  registry::Registry hub;
  Layout local;
  make_image(local, "local", "one");
  ASSERT_TRUE(hub.push(local, "local", "org/app", "1.0").ok());
  ASSERT_TRUE(hub.pin("org/app", "1.0").ok());
  ASSERT_TRUE(hub.remove("org/app", "1.0").ok());
  const std::size_t pinned_blobs = hub.stats().blobs;
  ASSERT_GT(pinned_blobs, 0u);

  // gc() with the pins still held: nothing to reclaim.
  ASSERT_TRUE(hub.gc().ok());
  EXPECT_EQ(hub.stats().blobs, pinned_blobs);
}

}  // namespace
}  // namespace comt::oci
