#include <gtest/gtest.h>

#include "core/models.hpp"

namespace comt::core {
namespace {

BuildGraph sample_graph() {
  BuildGraph graph;
  GraphNode source;
  source.kind = NodeKind::source;
  source.path = "/work/src/main.cc";
  source.content_digest = "d-main";
  int source_id = graph.add_node(std::move(source));

  GraphNode header;
  header.kind = NodeKind::source;
  header.path = "/work/src/common.h";
  header.content_digest = "d-header";
  int header_id = graph.add_node(std::move(header));

  GraphNode object;
  object.kind = NodeKind::object;
  object.path = "/work/main.o";
  object.content_digest = "d-object";
  object.deps = {source_id, header_id};
  auto command = toolchain::parse_command(
      std::vector<std::string>{"gcc", "-O2", "-c", "src/main.cc", "-o", "main.o"});
  EXPECT_TRUE(command.ok());
  object.compile = command.value();
  object.toolchain_id = "gnu-generic";
  object.cwd = "/work";
  int object_id = graph.add_node(std::move(object));

  GraphNode exe;
  exe.kind = NodeKind::executable;
  exe.path = "/work/app";
  exe.content_digest = "d-exe";
  exe.deps = {object_id};
  auto link = toolchain::parse_command(
      std::vector<std::string>{"gcc", "main.o", "-o", "app", "-lm"});
  EXPECT_TRUE(link.ok());
  exe.compile = link.value();
  exe.toolchain_id = "gnu-generic";
  exe.cwd = "/work";
  graph.add_node(std::move(exe));
  return graph;
}

TEST(BuildGraphTest, Lookups) {
  BuildGraph graph = sample_graph();
  EXPECT_EQ(graph.size(), 4u);
  EXPECT_EQ(graph.find_by_path("/work/main.o"), 2);
  EXPECT_EQ(graph.find_by_path("/ghost"), -1);
  EXPECT_EQ(graph.find_by_digest("d-exe"), 3);
  EXPECT_EQ(graph.find_by_digest(""), -1);
  EXPECT_EQ(graph.find_by_digest("unknown"), -1);
}

TEST(BuildGraphTest, LatestPathWins) {
  BuildGraph graph = sample_graph();
  GraphNode overwrite;
  overwrite.kind = NodeKind::object;
  overwrite.path = "/work/main.o";  // recompiled later in the build
  overwrite.content_digest = "d-object-v2";
  graph.add_node(std::move(overwrite));
  EXPECT_EQ(graph.find_by_path("/work/main.o"), 4);
}

TEST(BuildGraphTest, TopologicalOrderValid) {
  BuildGraph graph = sample_graph();
  auto order = graph.topological_order();
  ASSERT_TRUE(order.ok());
  std::vector<int> position(graph.size());
  for (std::size_t i = 0; i < order.value().size(); ++i) {
    position[static_cast<std::size_t>(order.value()[i])] = static_cast<int>(i);
  }
  for (const GraphNode& node : graph.nodes()) {
    for (int dep : node.deps) {
      EXPECT_LT(position[static_cast<std::size_t>(dep)],
                position[static_cast<std::size_t>(node.id)]);
    }
  }
}

TEST(BuildGraphTest, RootsAndClosure) {
  BuildGraph graph = sample_graph();
  EXPECT_EQ(graph.roots(), std::vector<int>{3});
  EXPECT_EQ(graph.closure(3), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(graph.closure(2), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(graph.closure(0), std::vector<int>{0});
}

TEST(BuildGraphTest, LeafDetection) {
  BuildGraph graph = sample_graph();
  EXPECT_TRUE(graph.node(0).is_leaf());
  EXPECT_FALSE(graph.node(2).is_leaf());
}

TEST(BuildGraphTest, JsonRoundTrip) {
  BuildGraph graph = sample_graph();
  auto back = BuildGraph::from_json(graph.to_json());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), graph.size());
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const GraphNode& a = graph.node(static_cast<int>(i));
    const GraphNode& b = back.value().node(static_cast<int>(i));
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.path, b.path);
    EXPECT_EQ(a.content_digest, b.content_digest);
    EXPECT_EQ(a.deps, b.deps);
    EXPECT_EQ(a.compile.has_value(), b.compile.has_value());
    if (a.compile.has_value()) {
      EXPECT_EQ(*a.compile, *b.compile);
    }
    EXPECT_EQ(a.toolchain_id, b.toolchain_id);
    EXPECT_EQ(a.cwd, b.cwd);
  }
}

TEST(BuildGraphTest, FromJsonRejectsBadIds) {
  json::Object node;
  node.emplace_back("id", json::Value(5));  // non-contiguous
  node.emplace_back("kind", json::Value("source"));
  json::Object doc;
  doc.emplace_back("nodes", json::Value(json::Array{json::Value(std::move(node))}));
  EXPECT_FALSE(BuildGraph::from_json(json::Value(std::move(doc))).ok());
}

TEST(BuildGraphTest, DotExportMentionsEveryNode) {
  BuildGraph graph = sample_graph();
  std::string dot = graph.to_dot();
  EXPECT_NE(dot.find("/work/app"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3"), std::string::npos);
}

TEST(NodeKindTest, NamesRoundTrip) {
  for (NodeKind kind : {NodeKind::source, NodeKind::object, NodeKind::archive,
                        NodeKind::shared_lib, NodeKind::executable, NodeKind::data}) {
    auto back = node_kind_from_name(node_kind_name(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), kind);
  }
  EXPECT_FALSE(node_kind_from_name("bogus").ok());
}

TEST(ImageModelTest, JsonRoundTrip) {
  ImageModel model;
  model.image_tag = "app.dist";
  model.architecture = "amd64";
  model.entrypoint = {"/app/run"};
  ImageFileEntry entry;
  entry.path = "/app/run";
  entry.origin = FileOrigin::build_process;
  entry.digest = "0123456789abcdef0123456789abcdef";
  entry.size = 1234;
  entry.build_node = 3;
  model.files.push_back(entry);
  ImageFileEntry lib;
  lib.path = "/usr/lib/libm.so";
  lib.origin = FileOrigin::package_manager;
  lib.owner_package = "libm";
  model.files.push_back(lib);
  model.runtime_packages.push_back({"libm", "1.0", "generic"});

  auto back = ImageModel::from_json(model.to_json());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().image_tag, "app.dist");
  ASSERT_EQ(back.value().files.size(), 2u);
  EXPECT_EQ(back.value().files[0].origin, FileOrigin::build_process);
  EXPECT_EQ(back.value().files[0].build_node, 3);
  // Digests are truncated to 16 chars in serialized form (cache compactness).
  EXPECT_EQ(back.value().files[0].digest, "0123456789abcdef");
  EXPECT_EQ(back.value().files[1].owner_package, "libm");
  ASSERT_EQ(back.value().runtime_packages.size(), 1u);
  EXPECT_EQ(back.value().runtime_packages[0].variant, "generic");
  EXPECT_EQ(back.value().entrypoint, std::vector<std::string>{"/app/run"});
}

TEST(ImageModelTest, OriginHistogram) {
  ImageModel model;
  for (FileOrigin origin : {FileOrigin::base_image, FileOrigin::base_image,
                            FileOrigin::build_process, FileOrigin::unknown}) {
    ImageFileEntry entry;
    entry.origin = origin;
    model.files.push_back(entry);
  }
  auto histogram = model.origin_histogram();
  EXPECT_EQ(histogram[FileOrigin::base_image], 2u);
  EXPECT_EQ(histogram[FileOrigin::build_process], 1u);
  EXPECT_EQ(histogram[FileOrigin::unknown], 1u);
  EXPECT_EQ(histogram.count(FileOrigin::data), 0u);
}

}  // namespace
}  // namespace comt::core
