// Deterministic fault injection for exercising retry/recovery paths.
//
// Production code calls `check(site)` at each operation that can fail
// transiently in a real deployment (a registry pull over a flaky network, a
// compile job on a wobbly node). Tests and benchmarks arm per-site schedules —
// "fail the next 2 calls", "fail every 3rd call" — and the instrumented code
// observes an ordinary Status error, indistinguishable from a genuine fault.
// With no schedule armed a site always succeeds, so leaving the hooks wired in
// release builds costs one pointer test.
//
// Beyond transient Status faults, two harder failure modes are injectable for
// crash-safety testing:
//  - crash points: `check_crash(site)` throws CrashInjected when armed,
//    simulating the process dying at exactly that instruction. CrashInjected
//    is deliberately not a std::exception, so no ordinary recovery path can
//    swallow it — only a harness that expects the crash catches it.
//  - torn writes: `check_torn(site, size)` tells an instrumented writer to
//    persist only a prefix of its bytes and then crash, the way a power cut
//    tears a partially flushed file. The write-ahead journal and the blob
//    store call it on every append/put.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace comt::support {

/// Simulated process death, thrown by check_crash()/torn writes. Not derived
/// from std::exception on purpose: a `catch (const std::exception&)` recovery
/// path must not be able to turn a crash into a handled error.
struct CrashInjected {
  std::string site;
  std::uint64_t call = 0;  ///< the site's call count when the crash fired
};

/// Thread-safe named-site fault injector. Sites come into existence on first
/// use; call counters are kept per site so schedules are deterministic under
/// any interleaving of *other* sites (calls to one site never advance
/// another's schedule).
class FaultInjector {
 public:
  /// Arms `site` to fail its next `count` calls with `code`.
  void fail_next(std::string_view site, int count, Errc code = Errc::failed,
                 std::string message = "");

  /// Arms `site` to fail every `period`-th call from now on (1-based: with
  /// period 3, calls 3, 6, 9, ... fail). `period <= 0` disarms.
  void fail_every(std::string_view site, int period, Errc code = Errc::failed,
                  std::string message = "");

  /// Arms `site` to crash (throw CrashInjected) on its next check_crash call.
  void crash_next(std::string_view site);

  /// Arms `site` to crash when its lifetime call counter reaches `nth_call`
  /// (1-based, counting every check/check_crash/check_torn at that site).
  /// `nth_call == 0` disarms. Exhaustive crash sweeps use this: learn a
  /// site's call count from a clean run, then crash at 1..N in turn.
  void crash_at(std::string_view site, std::uint64_t nth_call);

  /// Arms `site` so its next torn-write check fires, persisting
  /// `keep_fraction` of the payload (clamped to [0, size-1]) before crashing.
  void tear_next(std::string_view site, double keep_fraction = 0.5);

  /// Like crash_at, but for torn-write checks: tears the write made on the
  /// site's `nth_call`-th call.
  void tear_at(std::string_view site, std::uint64_t nth_call,
               double keep_fraction = 0.5);

  /// Disarms every schedule at `site`; counters keep their values.
  void clear(std::string_view site);

  /// Disarms all sites.
  void clear_all();

  /// The instrumented operation's hook: counts the call and returns the
  /// injected error when a schedule fires, success otherwise.
  Status check(std::string_view site);

  /// Crash-point hook: counts the call and throws CrashInjected when a crash
  /// schedule fires (the armed schedule is consumed first, so a resumed run
  /// with a cleared injector sails through).
  void check_crash(std::string_view site);

  /// Torn-write hook for a writer about to persist `total_bytes`. Returns
  /// the number of bytes to persist before dying when a tear schedule fires
  /// (always < total_bytes when total_bytes > 0), std::nullopt to write
  /// normally. The caller persists the prefix and then throws
  /// CrashInjected{site, calls}.
  std::optional<std::size_t> check_torn(std::string_view site,
                                        std::size_t total_bytes);

  /// Calls made to `site` so far (including successful ones).
  std::uint64_t calls(std::string_view site) const;

  /// Faults fired at `site` so far.
  std::uint64_t injected(std::string_view site) const;

  /// Faults fired across all sites.
  std::uint64_t total_injected() const;

  /// One site's lifetime counters.
  struct SiteCount {
    std::string site;
    std::uint64_t calls = 0;
    std::uint64_t injected = 0;

    bool operator==(const SiteCount&) const = default;
  };

  /// Snapshot of every site touched so far (sorted by name). Chaos tests use
  /// this to assert the faults they armed were actually exercised — a chaos
  /// run whose injection sites never fired tested nothing.
  std::vector<SiteCount> site_counts() const;

 private:
  struct Site {
    std::uint64_t calls = 0;
    std::uint64_t injected = 0;
    int fail_next = 0;       ///< remaining forced failures
    int fail_every = 0;      ///< 0 = off
    std::uint64_t every_base = 0;  ///< call count when fail_every was armed
    bool crash_next = false;       ///< crash on the next check_crash
    std::uint64_t crash_at = 0;    ///< crash when calls reaches this (0 = off)
    bool tear_next = false;        ///< tear the next checked write
    std::uint64_t tear_at = 0;     ///< tear the write on this call (0 = off)
    double tear_fraction = 0.5;    ///< bytes kept = floor(size * fraction)
    Errc code = Errc::failed;
    std::string message;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Site, std::less<>> sites_;
};

}  // namespace comt::support
