#include "registry/registry.hpp"

#include <mutex>
#include <set>

#include "store/disk.hpp"

namespace comt::registry {
namespace {

std::string make_reference(std::string_view name, std::string_view tag) {
  return std::string(name) + ":" + std::string(tag);
}

/// Copies one blob across layouts, counting bytes only when the destination
/// does not already hold it (content-addressed dedup, like a real registry).
Status transfer_blob(const oci::Layout& from, oci::Layout& to, const oci::Descriptor& blob,
                     std::uint64_t& transferred) {
  if (to.has_blob(blob.digest)) return Status::success();
  COMT_TRY(std::string content, from.get_blob(blob.digest));
  transferred += content.size();
  to.put_blob(std::move(content), blob.media_type);
  return Status::success();
}

}  // namespace

Status Registry::attach(std::shared_ptr<store::KvStore> backend) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  COMT_TRY_STATUS(store_.attach(std::move(backend)));
  // The store's index (just merged from the backend) is the authority; the
  // reference map is a view over it.
  references_.clear();
  for (const auto& [reference, digest] : store_.index_entries()) {
    references_[reference] = digest;
  }
  return Status::success();
}

Status Registry::open_directory(const std::string& directory) {
  return attach(std::make_shared<store::DiskStore>(
      directory, store::DiskStore::Options{/*framed=*/false}));
}

void Registry::set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  if (metrics == nullptr) {
    pulls_ = pushes_ = gcs_ = fscks_ = pulled_bytes_ = pushed_bytes_ = nullptr;
    return;
  }
  pulls_ = &metrics->counter("registry.pulls");
  pushes_ = &metrics->counter("registry.pushes");
  gcs_ = &metrics->counter("registry.gcs");
  fscks_ = &metrics->counter("registry.fscks");
  pulled_bytes_ = &metrics->counter("registry.pulled_bytes");
  pushed_bytes_ = &metrics->counter("registry.pushed_bytes");
}

Status Registry::push(const oci::Layout& source, std::string_view local_tag,
                      std::string_view name, std::string_view tag) {
  obs::Span span = obs::maybe_span(tracer_, "registry.push", obs::kNoSpan, "blob-push");
  span.annotate("image", make_reference(name, tag));
  if (faults_ != nullptr) COMT_TRY_STATUS(faults_->check(kPushFaultSite));
  COMT_TRY(oci::Image image, source.find_image(local_tag));
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const std::uint64_t pushed_before = transfer_.pushed_bytes;
  COMT_TRY_STATUS(transfer_blob(source, store_, image.manifest.config, transfer_.pushed_bytes));
  for (const oci::Descriptor& layer : image.manifest.layers) {
    COMT_TRY_STATUS(transfer_blob(source, store_, layer, transfer_.pushed_bytes));
  }
  COMT_TRY(std::string manifest_blob, source.get_blob(image.manifest_digest));
  if (!store_.has_blob(image.manifest_digest)) transfer_.pushed_bytes += manifest_blob.size();
  store_.put_blob(std::move(manifest_blob), oci::kMediaTypeManifest);
  const std::string reference = make_reference(name, tag);
  references_[reference] = image.manifest_digest;
  // Mirror the reference into the store's index so oci::fsck on the backing
  // layout sees which blobs are reachable from which repository.
  store_.tag_manifest(reference, image.manifest_digest);
  if (pushes_ != nullptr) {
    pushes_->add();
    pushed_bytes_->add(transfer_.pushed_bytes - pushed_before);
  }
  span.annotate("bytes", transfer_.pushed_bytes - pushed_before);
  return Status::success();
}

Status Registry::pull(std::string_view name, std::string_view tag, oci::Layout& destination,
                      std::string_view local_tag) const {
  obs::Span span = obs::maybe_span(tracer_, "registry.pull", obs::kNoSpan, "pull");
  span.annotate("image", make_reference(name, tag));
  if (faults_ != nullptr) COMT_TRY_STATUS(faults_->check(kPullFaultSite));
  // Writer lock: pull reads the store but also updates the transfer counters.
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = references_.find(make_reference(name, tag));
  if (it == references_.end()) {
    return make_error(Errc::not_found, "registry: no such image " + make_reference(name, tag));
  }
  const std::uint64_t pulled_before = transfer_.pulled_bytes;
  COMT_TRY(oci::Image image, store_.load_image(it->second));
  COMT_TRY_STATUS(
      transfer_blob(store_, destination, image.manifest.config, transfer_.pulled_bytes));
  for (const oci::Descriptor& layer : image.manifest.layers) {
    COMT_TRY_STATUS(transfer_blob(store_, destination, layer, transfer_.pulled_bytes));
  }
  COMT_TRY(oci::Digest digest, destination.add_manifest(image.manifest, local_tag));
  (void)digest;
  if (pulls_ != nullptr) {
    pulls_->add();
    pulled_bytes_->add(transfer_.pulled_bytes - pulled_before);
  }
  span.annotate("bytes", transfer_.pulled_bytes - pulled_before);
  return Status::success();
}

bool Registry::has(std::string_view name, std::string_view tag) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return references_.count(make_reference(name, tag)) != 0;
}

Result<oci::Digest> Registry::resolve(std::string_view name, std::string_view tag) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = references_.find(make_reference(name, tag));
  if (it == references_.end()) {
    return make_error(Errc::not_found, "registry: no such image " + make_reference(name, tag));
  }
  return it->second;
}

std::vector<std::string> Registry::list() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(references_.size());
  for (const auto& [reference, digest] : references_) out.push_back(reference);
  return out;
}

Status Registry::remove(std::string_view name, std::string_view tag) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = references_.find(make_reference(name, tag));
  if (it == references_.end()) {
    return make_error(Errc::not_found, "registry: no such image " + make_reference(name, tag));
  }
  references_.erase(it);
  store_.remove_tag(make_reference(name, tag));
  return sweep_locked();
}

Status Registry::gc() {
  obs::Span span = obs::maybe_span(tracer_, "registry.gc", obs::kNoSpan, "registry");
  if (gcs_ != nullptr) gcs_->add();
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return sweep_locked();
}

Status Registry::sweep_locked() {
  // Mark: everything any reference reaches stays.
  std::set<oci::Digest> reachable;
  for (const auto& [reference, digest] : references_) {
    COMT_TRY(oci::Image image, store_.load_image(digest));
    reachable.insert(digest);
    reachable.insert(image.manifest.config.digest);
    for (const oci::Descriptor& layer : image.manifest.layers) {
      reachable.insert(layer.digest);
    }
  }
  // Sweep: unreferenced, unpinned blobs are reclaimed and counted. A pinned
  // blob belongs to a live journaled rebuild — its resume still needs the
  // bytes even though no reference names them anymore.
  for (const oci::Digest& digest : store_.blob_digests()) {
    if (reachable.count(digest) != 0 || store_.is_pinned(digest)) continue;
    std::uint64_t freed = store_.remove_blob(digest);
    if (freed == 0) continue;
    transfer_.reclaimed_bytes += freed;
    ++transfer_.removed_blobs;
  }
  return Status::success();
}

Status Registry::pin(std::string_view name, std::string_view tag) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = references_.find(make_reference(name, tag));
  if (it == references_.end()) {
    return make_error(Errc::not_found, "registry: no such image " + make_reference(name, tag));
  }
  COMT_TRY(oci::Image image, store_.load_image(it->second));
  store_.pin_blob(it->second);
  store_.pin_blob(image.manifest.config.digest);
  for (const oci::Descriptor& layer : image.manifest.layers) store_.pin_blob(layer.digest);
  return Status::success();
}

Status Registry::unpin(std::string_view name, std::string_view tag) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = references_.find(make_reference(name, tag));
  if (it == references_.end()) {
    return make_error(Errc::not_found, "registry: no such image " + make_reference(name, tag));
  }
  COMT_TRY(oci::Image image, store_.load_image(it->second));
  store_.unpin_blob(it->second);
  store_.unpin_blob(image.manifest.config.digest);
  for (const oci::Descriptor& layer : image.manifest.layers) store_.unpin_blob(layer.digest);
  return Status::success();
}

Result<std::string> Registry::fetch_blob(const oci::Digest& digest) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return store_.get_blob(digest);
}

oci::FsckReport Registry::fsck(bool repair, const oci::BlobFetcher& origin) {
  obs::Span span = obs::maybe_span(tracer_, "registry.fsck", obs::kNoSpan, "registry");
  span.annotate("repair", std::uint64_t{repair ? 1u : 0u});
  if (fscks_ != nullptr) fscks_->add();
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (!repair) return oci::fsck(store_);
  oci::FsckReport report = oci::fsck_repair(store_, origin);
  // Repair may have cut dangling tags from the store index; mirror that back
  // into the reference map so resolve()/pull() stop offering broken images.
  references_.clear();
  for (const auto& [reference, digest] : store_.index_entries()) {
    references_[reference] = digest;
  }
  return report;
}

Stats Registry::stats() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  Stats out = transfer_;
  out.repositories = references_.size();
  out.blobs = store_.blob_count();
  out.stored_bytes = store_.total_blob_bytes();
  return out;
}

}  // namespace comt::registry
