#include "fleet/lease.hpp"

#include <thread>
#include <utility>

#include "store/wire.hpp"

namespace comt::fleet {
namespace {

namespace wire = comt::store::wire;

std::string lease_key(const std::string& key) { return std::string(kLeasePrefix) + key; }
std::string done_key(const std::string& key) { return std::string(kDonePrefix) + key; }

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   since)
      .count();
}

}  // namespace

std::uint64_t lease_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string encode_lease(const LeaseRecord& record) {
  std::string out;
  wire::put_str(out, record.owner);
  wire::put_u64(out, record.epoch);
  wire::put_u64(out, record.deadline_ms);
  wire::put_u64(out, wire::fnv1a64(out));
  return out;
}

std::optional<LeaseRecord> decode_lease(std::string_view encoded) {
  if (encoded.size() < 8) return std::nullopt;
  const std::string_view payload = encoded.substr(0, encoded.size() - 8);
  wire::Reader trailer{encoded.substr(encoded.size() - 8)};
  if (trailer.u64() != wire::fnv1a64(payload)) return std::nullopt;
  wire::Reader reader{payload};
  LeaseRecord record;
  record.owner = reader.str();
  record.epoch = reader.u64();
  record.deadline_ms = reader.u64();
  if (!reader.ok || !reader.at_end()) return std::nullopt;
  return record;
}

LeaseCoordinator::LeaseCoordinator(std::shared_ptr<store::KvStore> store,
                                   registry::Registry* hub, Options options)
    : store_(std::move(store)), hub_(hub), options_(std::move(options)) {
  if (options_.ttl.count() <= 0) options_.ttl = std::chrono::milliseconds(1);
  if (options_.poll.count() <= 0) options_.poll = std::chrono::milliseconds(1);
}

void LeaseCoordinator::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    acquired_ = steals_ = reused_ = waits_ = releases_ = nullptr;
    wait_ms_ = nullptr;
    return;
  }
  acquired_ = &metrics->counter("fleet.lease.acquired");
  steals_ = &metrics->counter("fleet.lease.steals");
  reused_ = &metrics->counter("fleet.lease.reused");
  waits_ = &metrics->counter("fleet.lease.waits");
  releases_ = &metrics->counter("fleet.lease.releases");
  wait_ms_ = &metrics->gauge("fleet.lease.wait_ms");
}

void LeaseCoordinator::note(obs::Counter* counter) const {
  if (counter != nullptr) counter->add();
}

bool LeaseCoordinator::output_resolves(const std::string& output) const {
  if (hub_ == nullptr) return true;
  const std::size_t colon = output.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  return hub_->resolve(output.substr(0, colon), output.substr(colon + 1)).ok();
}

std::optional<LeaseCoordinator::Grant> LeaseCoordinator::reuse_after_claim(
    const std::string& key, double wait_ms) {
  auto done = store_->get(done_key(key));
  if (!done.ok() || !output_resolves(done.value())) return std::nullopt;
  // The previous holder finished between our marker check and our claim; we
  // hold a lease nobody needs. Drop it and hand back the published result.
  (void)store_->erase(lease_key(key));
  note(reused_);
  Grant grant;
  grant.reuse = true;
  grant.output = done.value();
  grant.wait_ms = wait_ms;
  return grant;
}

Result<LeaseCoordinator::Grant> LeaseCoordinator::acquire(const std::string& key) {
  const auto start = std::chrono::steady_clock::now();
  bool counted_wait = false;
  for (;;) {
    // 1. Global memo first: someone may have already built and published.
    auto done = store_->get(done_key(key));
    if (done.ok()) {
      if (output_resolves(done.value())) {
        note(reused_);
        if (wait_ms_ != nullptr) wait_ms_->add(elapsed_ms(start));
        Grant grant;
        grant.reuse = true;
        grant.output = done.value();
        grant.wait_ms = elapsed_ms(start);
        return grant;
      }
      // Stale memo — the published image vanished from the hub. Erase it and
      // fall through to rebuild.
      (void)store_->erase(done_key(key));
    }

    // 2. The lease. Corrupt (torn record) counts as absent: compare_and_put
    // arbitrates the overwrite.
    auto current = store_->get(lease_key(key));
    if (!current.ok() && current.error().code != Errc::not_found &&
        current.error().code != Errc::corrupt) {
      return current.error();
    }

    if (!current.ok()) {
      LeaseRecord fresh{options_.replica_id, 1,
                        lease_now_ms() + static_cast<std::uint64_t>(options_.ttl.count())};
      COMT_TRY(bool won,
               store_->compare_and_put(lease_key(key), std::nullopt, encode_lease(fresh)));
      if (won) {
        if (auto reuse = reuse_after_claim(key, elapsed_ms(start))) return *reuse;
        note(acquired_);
        if (wait_ms_ != nullptr) wait_ms_->add(elapsed_ms(start));
        Grant grant;
        grant.epoch = fresh.epoch;
        grant.wait_ms = elapsed_ms(start);
        return grant;
      }
      continue;  // lost the claim race; re-evaluate immediately
    }

    std::optional<LeaseRecord> record = decode_lease(current.value());
    if (!record.has_value() || lease_now_ms() >= record->deadline_ms) {
      // Dead holder (expired TTL) or a record damaged beyond the store's own
      // framing: steal by CAS on the exact stored bytes, bumping the epoch so
      // a late release by the old holder cannot clobber the new reign.
      LeaseRecord next{options_.replica_id,
                       record.has_value() ? record->epoch + 1 : 1,
                       lease_now_ms() + static_cast<std::uint64_t>(options_.ttl.count())};
      COMT_TRY(bool won, store_->compare_and_put(lease_key(key), current.value(),
                                                 encode_lease(next)));
      if (won) {
        if (auto reuse = reuse_after_claim(key, elapsed_ms(start))) return *reuse;
        note(acquired_);
        note(steals_);
        if (wait_ms_ != nullptr) wait_ms_->add(elapsed_ms(start));
        Grant grant;
        grant.epoch = next.epoch;
        grant.stolen = true;
        grant.wait_ms = elapsed_ms(start);
        return grant;
      }
      continue;
    }

    // 3. A live holder is building. Wait out one poll tick.
    if (!counted_wait) {
      counted_wait = true;
      note(waits_);
    }
    if (elapsed_ms(start) > static_cast<double>(options_.max_wait.count())) {
      return make_error(Errc::failed, "fleet: lease wait timed out for key: " + key);
    }
    std::this_thread::sleep_for(options_.poll);
  }
}

void LeaseCoordinator::release(const std::string& key, Outcome outcome,
                               const std::string& output, std::uint64_t epoch) {
  if (outcome == Outcome::succeeded && !output.empty()) {
    // Marker before lease erase: a waiter that sees the lease vanish must
    // already be able to see the result.
    (void)store_->put(done_key(key), output);
  }
  auto current = store_->get(lease_key(key));
  if (current.ok()) {
    std::optional<LeaseRecord> record = decode_lease(current.value());
    if (record.has_value() &&
        (record->owner != options_.replica_id || record->epoch != epoch)) {
      // The lease was stolen while we built (TTL undersized for this build).
      // The new reign owns the record now; leave it alone.
      return;
    }
  }
  (void)store_->erase(lease_key(key));
  note(releases_);
}

std::optional<LeaseRecord> LeaseCoordinator::read_lease(const std::string& key) const {
  auto current = store_->get(lease_key(key));
  if (!current.ok()) return std::nullopt;
  return decode_lease(current.value());
}

std::optional<std::string> LeaseCoordinator::read_done(const std::string& key) const {
  auto done = store_->get(done_key(key));
  if (!done.ok()) return std::nullopt;
  return done.value();
}

}  // namespace comt::fleet
