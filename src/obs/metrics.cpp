#include "obs/metrics.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace comt::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  COMT_ASSERT(!bounds_.empty(), "obs: histogram needs at least one bucket bound");
  COMT_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
              "obs: histogram bounds must be strictly ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  std::size_t index = static_cast<std::size_t>(it - bounds_.begin());  // overflow when end
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.add(value);
}

double Histogram::percentile(double p) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0;

  const double target = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i == bounds_.size()) return bounds_.back();  // overflow: clamp
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    const double fraction = (target - before) / static_cast<double>(counts[i]);
    return lower + fraction * (upper - lower);
  }
  return bounds_.back();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> default_latency_buckets_ms() {
  std::vector<double> bounds;
  for (double bound = 0.01; bound < 100000.0; bound *= 2.0) bounds.push_back(bound);
  return bounds;
}

std::vector<double> default_batch_size_buckets() {
  std::vector<double> bounds;
  for (double bound = 1.0; bound <= 4096.0; bound *= 2.0) bounds.push_back(bound);
  return bounds;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  COMT_ASSERT(gauges_.find(name) == gauges_.end() &&
                  histograms_.find(name) == histograms_.end(),
              "obs: metric name already bound to another kind");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  COMT_ASSERT(counters_.find(name) == counters_.end() &&
                  histograms_.find(name) == histograms_.end(),
              "obs: metric name already bound to another kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  COMT_ASSERT(counters_.find(name) == counters_.end() &&
                  gauges_.find(name) == gauges_.end(),
              "obs: metric name already bound to another kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = default_latency_buckets_ms();
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

double MetricsRegistry::histogram_percentile(std::string_view name, double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? 0 : it->second->percentile(p);
}

json::Value MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Object counters;
  for (const auto& [name, counter] : counters_) {
    counters.emplace_back(name, json::Value(counter->value()));
  }
  json::Object gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges.emplace_back(name, json::Value(gauge->value()));
  }
  json::Object histograms;
  for (const auto& [name, histogram] : histograms_) {
    json::Object entry;
    entry.emplace_back("count", json::Value(histogram->count()));
    entry.emplace_back("sum", json::Value(histogram->sum()));
    entry.emplace_back("p50", json::Value(histogram->percentile(50)));
    entry.emplace_back("p95", json::Value(histogram->percentile(95)));
    entry.emplace_back("p99", json::Value(histogram->percentile(99)));
    histograms.emplace_back(name, json::Value(std::move(entry)));
  }
  json::Object document;
  document.emplace_back("counters", json::Value(std::move(counters)));
  document.emplace_back("gauges", json::Value(std::move(gauges)));
  document.emplace_back("histograms", json::Value(std::move(histograms)));
  return json::Value(std::move(document));
}

}  // namespace comt::obs
