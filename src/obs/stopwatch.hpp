// The one stopwatch. Every place that reports wall time (the DAG scheduler,
// the rebuild service, the benchmarks) measures through this instead of
// hand-rolling steady_clock arithmetic, so elapsed-time semantics (steady
// clock, double milliseconds) are identical across the codebase.
#pragma once

#include <chrono>

namespace comt::obs {

/// Steady-clock elapsed-time meter. Starts at construction; restartable.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  /// Milliseconds since construction or the last restart().
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  /// Microseconds since construction or the last restart().
  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_).count();
  }

  void restart() { start_ = Clock::now(); }

  Clock::time_point start() const { return start_; }

 private:
  Clock::time_point start_;
};

}  // namespace comt::obs
