// Extended-image verification: the checks a system administrator runs before
// trusting a pulled image enough to rebuild from it. Validates the layout's
// content addressing, the cache bundle's integrity, the build graph's DAG
// property, source completeness, and the image model's internal consistency.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/models.hpp"
#include "oci/oci.hpp"
#include "support/error.hpp"

namespace comt::core {

struct VerifyReport {
  bool is_extended = false;     ///< carries a readable cache layer
  bool graph_valid = false;     ///< DAG property + ids consistent
  std::size_t graph_nodes = 0;
  std::size_t sources_cached = 0;
  std::size_t sources_missing = 0;  ///< leaves with neither cache nor env substitute
  std::size_t files_classified = 0;
  std::map<FileOrigin, std::size_t> origin_histogram;
  bool entrypoint_is_build_product = false;
  /// Human-readable findings for everything that failed a check.
  std::vector<std::string> problems;

  bool ok() const { return is_extended && graph_valid && problems.empty(); }
};

/// Verifies the image tagged `tag` in `layout`. Hard failures (unreadable
/// image) surface as errors; check failures land in the report's `problems`.
Result<VerifyReport> verify_extended_image(const oci::Layout& layout,
                                           std::string_view tag);

}  // namespace comt::core
