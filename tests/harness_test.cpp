// The evaluation harness itself: the Evaluation facade, native-build script
// generation, and the measurement invariants the benches rely on.
#include <gtest/gtest.h>

#include "dockerfile/dockerfile.hpp"
#include "sysmodel/sysmodel.hpp"
#include "toolchain/artifact.hpp"
#include "workloads/harness.hpp"

namespace comt::workloads {
namespace {

TEST(HarnessTest, PrepareTagsAndSizes) {
  Evaluation world(sysmodel::SystemProfile::x86_cluster());
  const AppSpec* app = find_app("hpccg");
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared.value().dist_tag, "hpccg.dist");
  EXPECT_EQ(prepared.value().extended_tag, "hpccg.dist+coM");
  EXPECT_GT(prepared.value().image_bytes, 0u);
  EXPECT_GT(prepared.value().cache_layer_bytes, 0u);
  EXPECT_LT(prepared.value().cache_layer_bytes, prepared.value().image_bytes);
  // Both tags resolvable; stage images are kept for coMtainer-build.
  EXPECT_TRUE(world.layout().find_image("hpccg.dist").ok());
  EXPECT_TRUE(world.layout().find_image("hpccg.dist+coM").ok());
  EXPECT_TRUE(world.layout().find_image("hpccg.dist.stage0").ok());
}

TEST(HarnessTest, PrepareIsRepeatable) {
  Evaluation world(sysmodel::SystemProfile::x86_cluster());
  const AppSpec* app = find_app("minimd");
  auto first = world.prepare(*app);
  auto second = world.prepare(*app);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().image_bytes, second.value().image_bytes);
  EXPECT_EQ(first.value().cache_layer_bytes, second.value().cache_layer_bytes);
}

TEST(HarnessTest, RunImageErrors) {
  Evaluation world(sysmodel::SystemProfile::x86_cluster());
  const AppSpec* app = find_app("minimd");
  auto missing = world.run_image("no-such:tag", app->inputs.front(), 1);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, Errc::not_found);
  // The base image has no entrypoint.
  auto no_entry = world.run_image(ubuntu_tag("amd64"), app->inputs.front(), 1);
  ASSERT_FALSE(no_entry.ok());
  EXPECT_EQ(no_entry.error().code, Errc::invalid_argument);
}

TEST(HarnessTest, NativeDockerfileUsesSystemStack) {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  const AppSpec* app = find_app("comd");
  std::string text = dockerfile_native(*app, system);
  EXPECT_NE(text.find("FROM " + sysenv_tag(system)), std::string::npos);
  EXPECT_NE(text.find("FROM " + rebase_tag(system)), std::string::npos);
  EXPECT_NE(text.find("/opt/system/bin"), std::string::npos);
  EXPECT_EQ(text.find("comt/env"), std::string::npos);
  auto parsed = dockerfile::parse(text);
  ASSERT_TRUE(parsed.ok());
}

TEST(HarnessTest, NativeBinaryUsesVendorToolchainAndNativeMarch) {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  Evaluation world(system);
  const AppSpec* app = find_app("comd");
  auto tag = world.build_native(*app);
  ASSERT_TRUE(tag.ok()) << tag.error().to_string();
  auto image = world.layout().find_image(tag.value());
  ASSERT_TRUE(image.ok());
  auto rootfs = world.layout().flatten(image.value());
  auto exe = toolchain::parse_image(rootfs.value().read_file(app->binary_path()).value());
  ASSERT_TRUE(exe.ok());
  EXPECT_EQ(exe.value().codegen.toolchain_id, "vendor-x86");
  EXPECT_EQ(exe.value().codegen.opt_level, 3);
  EXPECT_EQ(exe.value().codegen.march, "x86-64-v4");  // -march=native resolved
  EXPECT_EQ(exe.value().codegen.vector_lanes, 8);
}

TEST(HarnessTest, SchemesOrderingForATypicalApp) {
  Evaluation world(sysmodel::SystemProfile::x86_cluster());
  const AppSpec* app = find_app("comd");
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok());
  auto times = world.run_schemes(*app, prepared.value(), app->inputs.front(), 16);
  ASSERT_TRUE(times.ok());
  // comd is vec/LTO/PGO-friendly: strict improvement down the ladder.
  EXPECT_GT(times.value().original, times.value().adapted);
  EXPECT_GT(times.value().adapted, times.value().optimized);
  EXPECT_DOUBLE_EQ(times.value().adapted, times.value().native);
}

TEST(HarnessTest, MoreNodesReduceComputeTime) {
  Evaluation world(sysmodel::SystemProfile::x86_cluster());
  const AppSpec* app = find_app("minimd");
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok());
  auto one = world.run_image(prepared.value().dist_tag, app->inputs.front(), 1);
  auto sixteen = world.run_image(prepared.value().dist_tag, app->inputs.front(), 16);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(sixteen.ok());
  EXPECT_GT(one.value(), sixteen.value());
}

TEST(HarnessTest, MakeDrivenAppsProduceSameModelShape) {
  // miniaero builds through make; its graph must look exactly like a
  // hand-written-RUN app's: sources, objects, executable, full provenance.
  Evaluation world(sysmodel::SystemProfile::x86_cluster());
  const AppSpec* app = find_app("miniaero");
  ASSERT_TRUE(app->use_make);
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok()) << prepared.error().to_string();
  auto extended = world.layout().find_image(prepared.value().extended_tag);
  auto rootfs = world.layout().flatten(extended.value());
  auto bundle = core::load_cache(rootfs.value());
  ASSERT_TRUE(bundle.ok());
  int objects = 0, executables = 0;
  for (const core::GraphNode& node : bundle.value().models.graph.nodes()) {
    objects += node.kind == core::NodeKind::object;
    executables += node.kind == core::NodeKind::executable;
  }
  EXPECT_EQ(objects, static_cast<int>(app->units.size()));
  EXPECT_EQ(executables, 1);
  // And the whole rebuild pipeline works on the make-recorded graph.
  auto adapted = world.adapt(*app, prepared.value());
  ASSERT_TRUE(adapted.ok()) << adapted.error().to_string();
}

}  // namespace
}  // namespace comt::workloads
