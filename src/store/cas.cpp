#include "store/cas.hpp"

#include "support/sha256.hpp"

namespace comt::store {
namespace {

constexpr std::string_view kAlgorithm = "sha256";

}  // namespace

CasStore::CasStore(std::shared_ptr<KvStore> backend, std::string prefix)
    : backend_(std::move(backend)), prefix_(std::move(prefix)) {
  COMT_ASSERT(backend_ != nullptr, "cas: null backend");
}

Result<std::string> CasStore::key_for(std::string_view digest) const {
  // "sha256:<hex>" → "<prefix>sha256/<hex>", the OCI blobs directory shape.
  const std::size_t colon = digest.find(':');
  if (colon == std::string_view::npos || digest.substr(0, colon) != kAlgorithm ||
      colon + 1 == digest.size()) {
    return make_error(Errc::invalid_argument, "malformed digest: " + std::string(digest));
  }
  std::string key = prefix_;
  key += kAlgorithm;
  key.push_back('/');
  key += digest.substr(colon + 1);
  return key;
}

Result<std::string> CasStore::put(std::string bytes) {
  std::string digest = std::string(kAlgorithm) + ":" + Sha256::hex_digest(bytes);
  COMT_TRY(std::string key, key_for(digest));
  COMT_TRY_STATUS(backend_->put(key, std::move(bytes)));
  return digest;
}

Result<std::string> CasStore::get(std::string_view digest) const {
  COMT_TRY(std::string bytes, get_unverified(digest));
  if (std::string(kAlgorithm) + ":" + Sha256::hex_digest(bytes) != digest) {
    return make_error(Errc::corrupt,
                      "blob does not match its digest: " + std::string(digest));
  }
  return bytes;
}

Result<std::string> CasStore::get_unverified(std::string_view digest) const {
  COMT_TRY(std::string key, key_for(digest));
  auto bytes = backend_->get(key);
  if (!bytes.ok() && bytes.error().code == Errc::not_found) {
    return make_error(Errc::not_found, "no such blob: " + std::string(digest));
  }
  return bytes;
}

Status CasStore::put_at(std::string_view digest, std::string bytes) {
  COMT_TRY(std::string key, key_for(digest));
  return backend_->put(key, std::move(bytes));
}

bool CasStore::contains(std::string_view digest) const {
  auto key = key_for(digest);
  return key.ok() && backend_->contains(key.value());
}

std::uint64_t CasStore::erase(std::string_view digest) {
  auto key = key_for(digest);
  if (!key.ok()) return 0;
  auto bytes = backend_->size(key.value());
  if (!bytes.ok()) return 0;
  if (!backend_->erase(key.value()).ok()) return 0;
  return bytes.value();
}

Result<std::uint64_t> CasStore::size(std::string_view digest) const {
  COMT_TRY(std::string key, key_for(digest));
  auto bytes = backend_->size(key);
  if (!bytes.ok() && bytes.error().code == Errc::not_found) {
    return make_error(Errc::not_found, "no such blob: " + std::string(digest));
  }
  return bytes;
}

std::vector<std::string> CasStore::digests() const {
  const std::string want = prefix_ + std::string(kAlgorithm) + "/";
  std::vector<std::string> out;
  for (const KvEntry& entry : backend_->list(want)) {
    const std::string_view hex = std::string_view(entry.key).substr(want.size());
    if (hex.empty() || hex.find('/') != std::string_view::npos) continue;
    out.push_back(std::string(kAlgorithm) + ":" + std::string(hex));
  }
  return out;
}

std::size_t CasStore::count() const { return digests().size(); }

std::uint64_t CasStore::total_bytes() const {
  const std::string want = prefix_ + std::string(kAlgorithm) + "/";
  std::uint64_t total = 0;
  for (const KvEntry& entry : backend_->list(want)) total += entry.size;
  return total;
}

}  // namespace comt::store
