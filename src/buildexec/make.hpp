// A small GNU-make interpreter: variable assignments (=, ?=, :=), rules with
// prerequisites and tab-indented recipes, $(VAR)/${VAR} expansion, the $@ $<
// $^ automatics, and existence-based up-to-date checks. Recipes execute
// through the container shell, so a hijacked `make` still records each
// compiler invocation individually — the paper's point that recording at the
// tool boundary sees through arbitrary build drivers.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace comt::buildexec {

class Container;

/// One parsed rule. Prerequisites and recipe lines are stored unexpanded;
/// expansion happens at execution time against the effective variable set
/// (file variables overridden by command-line NAME=value arguments).
struct MakeRule {
  std::string target;
  std::vector<std::string> prerequisites;
  std::vector<std::string> recipe;
};

struct Makefile {
  std::map<std::string, std::string> variables;
  std::vector<MakeRule> rules;
  std::string default_goal;  ///< first rule's target

  const MakeRule* find_rule(std::string_view target) const;
};

/// Parses makefile text. Errors: a recipe line before any rule, a line that
/// is neither assignment nor rule, a multi-word rule target, no rules at all.
Result<Makefile> parse_makefile(std::string_view text);

/// Runs `make` inside the container: argv is the full command line
/// ("make [-C dir] [NAME=value...] [goals...]"; -j is accepted and ignored).
/// Returns the targets whose recipes ran, in build order.
Result<std::vector<std::string>> run_make(Container& container,
                                          const std::vector<std::string>& argv);

}  // namespace comt::buildexec
