// Dependency-aware job scheduler for the rebuild engine.
//
// Jobs are named, carry explicit dependency edges (compile jobs depend on the
// jobs producing their inputs, links on their objects, archives on their
// members — exactly the edges the process models record), and run through a
// ThreadPool once every dependency succeeded. The schedule is validated
// up front with Kahn's algorithm, so a cyclic graph is an error before any
// job runs — never a deadlock. Results are reported in submission order
// regardless of completion order, which is what makes parallel rebuilds
// reproducible job-for-job.
//
// Two execution modes share the validation and reporting machinery:
//
//  * Greedy (hooks == nullptr): each completed job immediately dispatches the
//    dependents it freed. Maximum overlap, per-job completion bookkeeping.
//  * Epoch / wave (hooks != nullptr): the DAG is partitioned into waves
//    (wave(i) = 1 + max over dependencies), every job inside a wave is
//    mutually independent, and the whole wave is dispatched as one batch.
//    EpochHooks::begin runs once per wave before dispatch and
//    EpochHooks::commit once after the wave barrier — both on the run()
//    caller's thread — which is what lets the rebuild engine share one
//    immutable rootfs snapshot per wave and batch all output commits
//    instead of locking per job (see docs/PERFORMANCE.md).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/thread_pool.hpp"
#include "support/error.hpp"

namespace comt::sched {

/// A job body: does the work, reports success/failure.
using JobFn = std::function<Status()>;

/// Per-job outcome, in submission order.
struct JobOutcome {
  std::string id;       ///< the id given to add_job
  Status status;        ///< success, the job's own error, or the skip reason
  bool skipped = false; ///< true when a dependency failed and the job never ran
  double wall_ms = 0;   ///< job body execution time (0 when skipped)
};

/// Outcome of one scheduler run.
struct ScheduleReport {
  std::vector<JobOutcome> jobs;  ///< one per add_job call, in that order
  std::size_t executed = 0;      ///< job bodies that ran (succeeded or failed)
  std::size_t failed = 0;        ///< executed bodies that returned an error
  std::size_t skipped = 0;       ///< jobs never run because a dependency failed
  std::size_t epochs = 0;        ///< waves dispatched (0 in greedy mode)
  double wall_ms = 0;            ///< schedule wall time

  /// Error of the first failed/skipped job in submission order, or success.
  Status first_error() const;
};

/// Observability hooks for one scheduler run. All pointers are optional and
/// borrowed: the caller keeps them alive for the duration of run().
struct ObsOptions {
  obs::Tracer* tracer = nullptr;       ///< when set, one "job:<id>" span per job
  obs::SpanId parent = obs::kNoSpan;   ///< parent for every job span
  std::string category = "compile";    ///< span category (per-job override wins)
  obs::MetricsRegistry* metrics = nullptr;  ///< sink for the counters below
  /// Metric namespace: "<prefix>.ready_wait_ms" (dispatch latency histogram),
  /// "<prefix>.jobs.{executed,failed,skipped}" counters, and in epoch mode
  /// "<prefix>.epochs" (waves dispatched) plus "<prefix>.epoch_jobs"
  /// (jobs-per-wave histogram — low values mean a serial DAG, not a slow pool).
  std::string metric_prefix = "sched";
};

/// Wave lifecycle callbacks for epoch mode. Both hooks run on the thread that
/// called run() — never on a pool worker — so they may touch state the job
/// bodies only read. Either may be empty.
struct EpochHooks {
  /// Called before a wave is dispatched. `jobs` are the submission-order
  /// indices of the bodies about to execute (poisoned jobs are excluded; a
  /// wave in which everything is poisoned still reports, but `begin` and
  /// `commit` are skipped). The rebuild engine uses this to publish one
  /// immutable rootfs snapshot for the whole wave.
  std::function<void(std::size_t epoch, const std::vector<std::size_t>& jobs)> begin;

  /// Called after the wave barrier with the submission-order indices of the
  /// bodies that succeeded. A returned error marks every listed job failed
  /// (their dependents are then skipped, make -k style). The rebuild engine
  /// uses this to apply the wave's buffered outputs under one commit instead
  /// of one per job.
  std::function<Status(std::size_t epoch, const std::vector<std::size_t>& succeeded)> commit;
};

/// Builds and executes one dependency graph. Not thread-safe itself: add jobs
/// and call run() from one thread (run() fans the bodies out internally).
class DagScheduler {
 public:
  /// Registers a job. `deps` name jobs this one must run after; forward
  /// references are allowed (edges are resolved at run()). Duplicate ids
  /// are an error. `category` labels the job's span ("compile", "link", …);
  /// empty falls back to ObsOptions::category.
  Status add_job(std::string id, std::vector<std::string> deps, JobFn fn,
                 std::string category = "");

  /// Jobs registered so far.
  std::size_t job_count() const { return jobs_.size(); }

  /// Executes the graph. With a pool, independent jobs run concurrently;
  /// with `pool == nullptr` jobs run inline on the calling thread, in
  /// topological submission order — the same code path either way, so both
  /// modes produce identical filesystem effects. Fails without running
  /// anything when the graph has an unknown dependency or a cycle.
  /// A failed job skips its transitive dependents; independent jobs still
  /// run (make -k semantics, so one bad unit doesn't hide other errors).
  /// With ObsOptions attached, every job — executed or skipped — emits
  /// exactly one span, so span count always equals job_count().
  ///
  /// Passing `hooks` selects epoch mode: jobs run wave-by-wave with a barrier
  /// (and the hook calls) between waves. Within a wave, outcomes land in
  /// submission order; with `pool == nullptr` the wave bodies run inline.
  Result<ScheduleReport> run(ThreadPool* pool, const ObsOptions& opts = {},
                             const EpochHooks* hooks = nullptr);

 private:
  struct Job {
    std::string id;
    std::vector<std::string> deps;
    JobFn fn;
    std::string category;
  };

  std::vector<Job> jobs_;
};

}  // namespace comt::sched
