#include "obs/trace.hpp"

#include <algorithm>
#include <unordered_map>

namespace comt::obs {
namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::annotate(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  record_.args.emplace_back(std::string(key), std::string(value));
}

void Span::annotate(std::string_view key, std::uint64_t value) {
  annotate(key, std::to_string(value));
}

void Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  record_.dur_us = tracer->now_us() - record_.start_us;
  tracer->record(std::move(record_));
}

Tracer::Tracer() : tracer_id_(next_tracer_id()) {}

Span Tracer::span(std::string_view name, SpanId parent, std::string_view category) {
  SpanRecord record;
  record.id = next_span_.fetch_add(1, std::memory_order_relaxed);
  record.parent = parent;
  record.name = std::string(name);
  record.category = std::string(category);
  record.start_us = now_us();
  return Span(this, std::move(record));
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Tracer ids are process-unique and never reused, so a stale entry left by
  // a destroyed tracer can never be looked up again — the map only grows by
  // one entry per (thread, tracer) pair.
  thread_local std::unordered_map<std::uint64_t, ThreadBuffer*> buffers_by_tracer;
  auto it = buffers_by_tracer.find(tracer_id_);
  if (it != buffers_by_tracer.end()) return *it->second;

  auto owned = std::make_unique<ThreadBuffer>();
  owned->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  ThreadBuffer* buffer = owned.get();
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers_.push_back(std::move(owned));
  }
  buffers_by_tracer.emplace(tracer_id_, buffer);
  return *buffer;
}

void Tracer::record(SpanRecord record) {
  ThreadBuffer& buffer = local_buffer();
  record.tid = buffer.tid;
  // The buffer's mutex is only ever contended by export; emission from the
  // owning thread is an uncontended lock around one push_back.
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.records.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> registry_lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> lock(buffer->mutex);
      out.insert(out.end(), buffer->records.begin(), buffer->records.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.id < b.id;
  });
  return out;
}

std::size_t Tracer::span_count() const {
  std::size_t count = 0;
  std::lock_guard<std::mutex> registry_lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    count += buffer->records.size();
  }
  return count;
}

json::Value Tracer::trace_events() const {
  json::Array events;
  for (const SpanRecord& span : snapshot()) {
    json::Object event;
    event.emplace_back("name", json::Value(span.name));
    event.emplace_back("cat",
                       json::Value(span.category.empty() ? "default" : span.category));
    event.emplace_back("ph", json::Value("X"));
    event.emplace_back("ts", json::Value(span.start_us));
    event.emplace_back("dur", json::Value(span.dur_us));
    event.emplace_back("pid", json::Value(1));
    event.emplace_back("tid", json::Value(static_cast<std::int64_t>(span.tid)));
    json::Object args;
    args.emplace_back("id", json::Value(std::to_string(span.id)));
    args.emplace_back("parent", json::Value(std::to_string(span.parent)));
    for (const auto& [key, value] : span.args) {
      args.emplace_back(key, json::Value(value));
    }
    event.emplace_back("args", json::Value(std::move(args)));
    events.push_back(json::Value(std::move(event)));
  }
  json::Object document;
  document.emplace_back("traceEvents", json::Value(std::move(events)));
  document.emplace_back("displayTimeUnit", json::Value("ms"));
  return json::Value(std::move(document));
}

std::string Tracer::chrome_trace_json() const { return json::serialize(trace_events()); }

}  // namespace comt::obs
