#include "toolchain/driver.hpp"

#include <algorithm>
#include <set>

#include "json/json.hpp"
#include "support/sha256.hpp"
#include "support/strings.hpp"
#include "toolchain/source.hpp"

namespace comt::toolchain {
namespace {

/// Libraries the C/C++ runtime links implicitly; their absence in the image
/// is never a link error.
const std::set<std::string, std::less<>> kImplicitLibraries = {"c", "gcc", "gcc_s",
                                                               "stdc++", "dl", "rt"};

/// Machine options only meaningful on one ISA. Feeding an x86 -m option to an
/// AArch64 compiler is a hard error (this is what breaks naive cross-ISA
/// rebuilds of images whose build scripts carry ISA-specific flags — §5.5).
bool machine_flag_matches_arch(std::string_view name, std::string_view arch) {
  static constexpr std::string_view kX86Only[] = {
      "-msse", "-mavx", "-mfma", "-mmmx", "-mbmi", "-mlzcnt", "-mpopcnt", "-maes",
      "-msha", "-mpclmul", "-mrdrnd", "-mrdseed", "-mf16c", "-mxsave", "-mfpmath",
      "-mprefetchwt1", "-mclflushopt", "-mmovbe", "-mvzeroupper", "-mavx256",
      "-mlong-double", "-mred-zone", "-mpreferred-stack-boundary", "-m32", "-m64",
      "-mx32", "-m16"};
  static constexpr std::string_view kArmOnly[] = {
      "-msve-vector-bits", "-moutline-atomics", "-mfix-cortex", "-mlow-precision",
      "-mgeneral-regs-only", "-mbig-endian", "-mlittle-endian", "-mstrict-align"};
  for (std::string_view prefix : kX86Only) {
    if (starts_with(name, prefix)) return arch == "amd64";
  }
  for (std::string_view prefix : kArmOnly) {
    if (starts_with(name, prefix)) return arch == "arm64";
  }
  return true;  // arch-neutral machine option (-mtune spelling etc.)
}

bool is_source_file(std::string_view path) {
  std::string ext = path_extension(path);
  return ext == ".c" || ext == ".cc" || ext == ".cpp" || ext == ".cxx" || ext == ".C" ||
         ext == ".f" || ext == ".f90" || ext == ".F90";
}

/// Default library search path (mirrors the usual ld layout).
const std::vector<std::string>& default_library_dirs() {
  static const std::vector<std::string> dirs = {"/usr/local/lib", "/usr/lib", "/lib"};
  return dirs;
}

}  // namespace

Driver::Driver(const Toolchain& toolchain, std::string target_arch)
    : toolchain_(toolchain), target_arch_(std::move(target_arch)) {}

Result<double> Driver::profile_quality(const CompileCommand& command,
                                       const vfs::Filesystem& fs, const std::string& cwd,
                                       const std::vector<KernelTrait>& kernels,
                                       DriverResult& result) const {
  if (command.profile_use.empty()) return 0.0;
  std::string profile_path =
      command.profile_use == "."
          ? path_join(cwd, kDefaultProfileName)
          : path_join(cwd, command.profile_use);
  if (fs.is_directory(profile_path)) {
    profile_path = path_join(profile_path, kDefaultProfileName);
  }
  auto blob = fs.read_file(profile_path);
  if (!blob.ok()) {
    // GCC warns and continues when profile data is missing.
    result.log += "warning: profile data not found at " + profile_path + "\n";
    return 0.0;
  }
  result.inputs_read.push_back(profile_path);
  COMT_TRY(auto weights, parse_profile(blob.value()));
  if (kernels.empty()) return 0.0;
  // Quality = fraction of this TU's kernels that the profile covers,
  // weighted by recorded hotness (a cold-covered kernel trains poorly).
  double covered = 0;
  for (const KernelTrait& kernel : kernels) {
    auto it = weights.find(kernel.name);
    if (it != weights.end()) covered += std::min(1.0, it->second * 2.0);
  }
  return std::min(1.0, covered / static_cast<double>(kernels.size()));
}

Result<ObjectCode> Driver::compile_one(const CompileCommand& command, vfs::Filesystem& fs,
                                       const std::string& cwd,
                                       const std::string& source_path,
                                       DriverResult& result) const {
  std::string absolute = path_join(cwd, source_path);
  COMT_TRY(std::string content, fs.read_file(absolute));
  result.inputs_read.push_back(absolute);
  COMT_TRY(SourceInfo info, analyze_source(content));

  if (!command.march.empty() && !toolchain_.supports(command.march)) {
    return make_error(Errc::failed, toolchain_.id + ": error: unsupported -march=" +
                                        command.march);
  }
  for (const GenericOption& option : command.generic) {
    if (option.category == OptionCategory::machine &&
        !machine_flag_matches_arch(option.name, target_arch_)) {
      return make_error(Errc::failed, toolchain_.id + ": error: unrecognized command-line option '" +
                                          option.name + "' for target " + target_arch_);
    }
  }
  // Local includes must resolve (against the source's directory and -I), and
  // their ISA markers count toward the translation unit's.
  std::vector<std::string> isa_specific = info.isa_specific;
  for (const std::string& include : info.includes) {
    std::vector<std::string> candidates;
    candidates.push_back(path_join(path_dirname(absolute), include));
    for (const std::string& dir : command.include_dirs) {
      candidates.push_back(path_join(path_join(cwd, dir), include));
    }
    bool found = false;
    for (const std::string& candidate : candidates) {
      if (fs.is_regular(candidate)) {
        result.inputs_read.push_back(candidate);
        COMT_TRY(std::string header_content, fs.read_file(candidate));
        COMT_TRY(SourceInfo header_info, analyze_source(header_content));
        isa_specific.insert(isa_specific.end(), header_info.isa_specific.begin(),
                            header_info.isa_specific.end());
        found = true;
        break;
      }
    }
    if (!found) {
      return make_error(Errc::failed,
                        source_path + ": fatal error: " + include + ": No such file");
    }
  }

  // ISA gate: code hard-wired to another ISA (inline assembly, intrinsics,
  // generated arch-config headers) fails to compile for this target, which
  // is what blocks naive cross-ISA rebuilds (§5.5).
  if (!isa_specific.empty()) {
    std::string want = target_arch_ == "amd64" ? "x86_64" : "aarch64";
    bool compatible = false;
    for (const std::string& isa : isa_specific) {
      if (isa == want) compatible = true;
    }
    if (!compatible) {
      return make_error(Errc::failed, source_path + ": error: ISA-specific code (" +
                                          join(isa_specific, ",") + ") cannot target " +
                                          target_arch_);
    }
  }

  ObjectCode object;
  object.source_path = absolute;
  object.source_digest = Sha256::hex_digest(content);
  object.kernels = info.kernels;
  object.codegen.toolchain_id = toolchain_.id;
  object.codegen.opt_level = std::clamp(command.opt_level, 0, 3);
  object.codegen.march = toolchain_.resolve_march(command.march);
  object.codegen.vector_lanes = toolchain_.lanes_for(object.codegen.march);
  object.codegen.lto_ir = command.lto;
  object.codegen.pgo_instrumented = command.profile_generate;
  COMT_TRY(object.codegen.pgo_quality,
           profile_quality(command, fs, cwd, info.kernels, result));
  return object;
}

Result<DriverResult> Driver::run(const CompileCommand& command, vfs::Filesystem& fs,
                                 const std::string& cwd) const {
  DriverResult result;
  if (toolchain_.target_arch != "any" && toolchain_.target_arch != target_arch_) {
    return make_error(Errc::failed, toolchain_.id + ": exec format error on " + target_arch_);
  }
  if (command.inputs.empty()) {
    return make_error(Errc::failed, command.program + ": fatal error: no input files");
  }

  switch (command.mode) {
    case DriverMode::preprocess:
    case DriverMode::compile: {
      // -E/-S: the pipeline stops early; modelled as a passthrough copy of
      // the source (enough for build graphs that use them, none of ours do).
      for (const std::string& input : command.inputs) {
        std::string absolute = path_join(cwd, input);
        COMT_TRY(std::string content, fs.read_file(absolute));
        result.inputs_read.push_back(absolute);
        std::string output = command.output.empty()
                                 ? path_join(cwd, path_basename(input) + ".i")
                                 : path_join(cwd, command.output);
        COMT_TRY_STATUS(fs.write_file(output, std::move(content)));
        result.outputs.push_back(output);
      }
      return result;
    }
    case DriverMode::assemble: {
      if (!command.output.empty() && command.inputs.size() > 1) {
        return make_error(Errc::failed,
                          "cannot specify -o with -c with multiple files");
      }
      for (const std::string& input : command.inputs) {
        if (!is_source_file(input)) {
          return make_error(Errc::failed, input + ": file not recognized for -c");
        }
        COMT_TRY(ObjectCode object, compile_one(command, fs, cwd, input, result));
        std::string stem = path_basename(input);
        stem = stem.substr(0, stem.size() - path_extension(stem).size());
        std::string output = command.output.empty() ? path_join(cwd, stem + ".o")
                                                    : path_join(cwd, command.output);
        COMT_TRY_STATUS(fs.write_file(output, serialize_object(object)));
        result.outputs.push_back(output);
      }
      return result;
    }
    case DriverMode::link:
      break;
  }

  // ---- link ----------------------------------------------------------------
  LinkedImage image;
  image.is_shared = command.shared;
  image.target_arch = target_arch_;
  std::set<std::string> satisfied_libraries(kImplicitLibraries.begin(),
                                            kImplicitLibraries.end());
  bool any_ir = false;

  // Positional inputs: sources (compiled inline), objects, archives.
  for (const std::string& input : command.inputs) {
    if (is_source_file(input)) {
      COMT_TRY(ObjectCode object, compile_one(command, fs, cwd, input, result));
      any_ir = any_ir || object.codegen.lto_ir;
      image.objects.push_back(std::move(object));
      continue;
    }
    std::string absolute = path_join(cwd, input);
    COMT_TRY(std::string blob, fs.read_file(absolute));
    result.inputs_read.push_back(absolute);
    if (is_object_blob(blob)) {
      COMT_TRY(ObjectCode object, parse_object(blob));
      any_ir = any_ir || object.codegen.lto_ir;
      image.objects.push_back(std::move(object));
    } else if (is_archive_blob(blob)) {
      COMT_TRY(std::vector<ObjectCode> members, parse_archive(blob));
      for (ObjectCode& member : members) {
        any_ir = any_ir || member.codegen.lto_ir;
        image.objects.push_back(std::move(member));
      }
    } else if (is_image_blob(blob)) {
      COMT_TRY(LinkedImage dependency, parse_image(blob));
      if (!dependency.is_shared) {
        return make_error(Errc::failed, input + ": cannot link against an executable");
      }
      std::string soname = dependency.soname;
      if (starts_with(soname, "lib")) soname = soname.substr(3);
      if (std::size_t dot = soname.find(".so"); dot != std::string::npos) {
        soname = soname.substr(0, dot);
      }
      image.needed.push_back(soname);
      satisfied_libraries.insert(soname);
    } else {
      return make_error(Errc::failed, input + ": file format not recognized");
    }
  }

  // -l resolution against -L dirs then the default search path.
  std::vector<std::string> search_dirs;
  for (const std::string& dir : command.library_dirs) {
    search_dirs.push_back(path_join(cwd, dir));
  }
  search_dirs.insert(search_dirs.end(), default_library_dirs().begin(),
                     default_library_dirs().end());
  for (const std::string& library : command.libraries) {
    bool found = false;
    for (const std::string& dir : search_dirs) {
      std::string shared_path = path_join(dir, "lib" + library + ".so");
      std::string static_path = path_join(dir, "lib" + library + ".a");
      if (!command.static_link && fs.exists(shared_path)) {
        COMT_TRY(std::string blob, fs.read_file(shared_path));
        result.inputs_read.push_back(shared_path);
        if (!is_image_blob(blob)) {
          return make_error(Errc::failed, shared_path + ": file format not recognized");
        }
        image.needed.push_back(library);
        satisfied_libraries.insert(library);
        found = true;
        break;
      }
      if (fs.exists(static_path)) {
        COMT_TRY(std::string blob, fs.read_file(static_path));
        result.inputs_read.push_back(static_path);
        COMT_TRY(std::vector<ObjectCode> members, parse_archive(blob));
        for (ObjectCode& member : members) {
          any_ir = any_ir || member.codegen.lto_ir;
          image.objects.push_back(std::move(member));
        }
        satisfied_libraries.insert(library);
        found = true;
        break;
      }
    }
    if (!found) {
      if (kImplicitLibraries.count(library) != 0 || library == "pthread" ||
          library == "m") {
        // Runtime-provided; resolved by the loader.
        image.needed.push_back(library);
        satisfied_libraries.insert(library);
      } else {
        return make_error(Errc::failed, "ld: cannot find -l" + library);
      }
    }
  }

  // Undefined-reference check: every kernel's library calls must be
  // satisfied, and MPI-communicating kernels need an MPI library.
  for (const ObjectCode& object : image.objects) {
    for (const KernelTrait& kernel : object.kernels) {
      if (!kernel.lib.empty() && satisfied_libraries.count(kernel.lib) == 0 &&
          kernel.lib != "m") {
        return make_error(Errc::failed, "ld: undefined reference to `" + kernel.lib +
                                            "_kernel' in " + object.source_path);
      }
      if (kernel.lib == "m" && satisfied_libraries.count("m") == 0) {
        image.needed.push_back("m");
        satisfied_libraries.insert("m");
      }
      if (kernel.frac_comm > 0 && satisfied_libraries.count("mpi") == 0) {
        return make_error(Errc::failed, "ld: undefined reference to `MPI_Init' in " +
                                            object.source_path);
      }
    }
  }

  // Link-time optimization: IR-carrying objects participate in cross-TU
  // inlining. Mixed links (some fat objects) still succeed; only IR objects
  // get the benefit, mirroring GCC's behavior.
  if (command.lto && any_ir) {
    image.codegen.lto_applied = true;
    for (ObjectCode& object : image.objects) {
      if (object.codegen.lto_ir) object.codegen.lto_applied = true;
    }
  }

  image.codegen.toolchain_id = toolchain_.id;
  image.codegen.opt_level = std::clamp(command.opt_level, 0, 3);
  image.codegen.march = toolchain_.resolve_march(command.march);
  image.codegen.vector_lanes = toolchain_.lanes_for(image.codegen.march);
  image.codegen.lto_ir = command.lto;
  image.codegen.pgo_instrumented = command.profile_generate;
  for (const ObjectCode& object : image.objects) {
    image.codegen.pgo_quality =
        std::max(image.codegen.pgo_quality, object.codegen.pgo_quality);
  }

  std::string output = command.output.empty()
                           ? path_join(cwd, command.shared ? "a.so" : "a.out")
                           : path_join(cwd, command.output);
  if (command.shared) image.soname = path_basename(output);
  // De-duplicate needed entries, preserving first-seen order.
  {
    std::set<std::string> seen;
    std::vector<std::string> unique;
    for (std::string& name : image.needed) {
      if (seen.insert(name).second) unique.push_back(std::move(name));
    }
    image.needed = std::move(unique);
  }
  COMT_TRY_STATUS(fs.write_file(output, serialize_image(image), 0755));
  result.outputs.push_back(output);
  return result;
}

Result<DriverResult> run_ar(std::span<const std::string> argv, vfs::Filesystem& fs,
                            const std::string& cwd) {
  if (argv.size() < 3) {
    return make_error(Errc::failed, "ar: usage: ar rcs archive members...");
  }
  const std::string& operation = argv[1];
  DriverResult result;
  std::string archive_path = path_join(cwd, argv[2]);
  if (contains(operation, "t")) {
    COMT_TRY(std::string blob, fs.read_file(archive_path));
    result.inputs_read.push_back(archive_path);
    COMT_TRY(std::vector<ObjectCode> members, parse_archive(blob));
    for (const ObjectCode& member : members) {
      result.log += path_basename(member.source_path) + "\n";
    }
    return result;
  }
  if (!contains(operation, "r")) {
    return make_error(Errc::failed, "ar: unsupported operation " + operation);
  }
  std::vector<ObjectCode> members;
  // 'r' without 'c' appends to an existing archive.
  if (fs.exists(archive_path)) {
    COMT_TRY(std::string blob, fs.read_file(archive_path));
    COMT_TRY(members, parse_archive(blob));
  }
  for (std::size_t i = 3; i < argv.size(); ++i) {
    std::string member_path = path_join(cwd, argv[i]);
    COMT_TRY(std::string blob, fs.read_file(member_path));
    result.inputs_read.push_back(member_path);
    if (!is_object_blob(blob)) {
      return make_error(Errc::failed, "ar: " + argv[i] + " is not an object file");
    }
    COMT_TRY(ObjectCode object, parse_object(blob));
    // 'r' replaces an existing member of the same name (ar semantics);
    // without this, re-running a recorded ar command would duplicate members.
    std::erase_if(members, [&](const ObjectCode& existing) {
      return path_basename(existing.source_path) == path_basename(object.source_path);
    });
    members.push_back(std::move(object));
  }
  COMT_TRY_STATUS(fs.write_file(archive_path, serialize_archive(members)));
  result.outputs.push_back(archive_path);
  return result;
}

std::string make_library_blob(std::string_view soname, std::string_view target_arch,
                              const std::map<std::string, double>& attributes,
                              const std::vector<std::string>& needed) {
  LinkedImage image;
  image.is_shared = true;
  image.soname = std::string(soname);
  image.target_arch = std::string(target_arch);
  image.attributes = attributes;
  image.needed = needed;
  return serialize_image(image);
}

std::string serialize_profile(const std::map<std::string, double>& kernel_weights) {
  json::Object object;
  for (const auto& [name, weight] : kernel_weights) {
    object.emplace_back(name, json::Value(weight));
  }
  std::string out(kProfileMagic);
  out += '\n';
  out += json::serialize(json::Value(std::move(object)));
  return out;
}

Result<std::map<std::string, double>> parse_profile(std::string_view blob) {
  if (!starts_with(blob, kProfileMagic)) {
    return make_error(Errc::corrupt, "profile data: bad magic");
  }
  std::size_t newline = blob.find('\n');
  COMT_TRY(json::Value body, json::parse(blob.substr(newline + 1)));
  if (!body.is_object()) return make_error(Errc::corrupt, "profile data: not an object");
  std::map<std::string, double> weights;
  for (const auto& [name, value] : body.as_object()) {
    if (value.is_number()) weights[name] = value.as_number();
  }
  return weights;
}

}  // namespace comt::toolchain
