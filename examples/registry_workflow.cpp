// Full distribution workflow across two heterogeneous sites (Fig. 4): one
// generic extended image is pushed once, then each HPC system pulls it and
// specializes it for itself. Shows image neutrality (one artifact, many
// targets) and the distribution overhead Table 3 quantifies.
#include <cstdio>

#include "registry/registry.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

int deploy_on(const sysmodel::SystemProfile& system, registry::Registry& hub,
              const workloads::AppSpec& app, const workloads::PreparedApp& prepared) {
  // Each system has its own layout (its own local store) and pulls the one
  // published image.
  workloads::Evaluation site(system);
  auto pulled = hub.pull("hub/" + app.name, "latest", site.layout(),
                         prepared.extended_tag);
  if (!pulled.ok()) {
    std::fprintf(stderr, "pull failed on %s: %s\n", system.name.c_str(),
                 pulled.error().to_string().c_str());
    return 1;
  }
  auto adapted = site.adapt(app, prepared);
  if (!adapted.ok()) {
    std::fprintf(stderr, "adapt failed on %s: %s\n", system.name.c_str(),
                 adapted.error().to_string().c_str());
    return 1;
  }
  auto seconds = site.run_image(adapted.value(), app.inputs.front(), system.nodes);
  if (!seconds.ok()) {
    std::fprintf(stderr, "run failed on %s: %s\n", system.name.c_str(),
                 seconds.error().to_string().c_str());
    return 1;
  }
  std::printf("  %-16s pulled, specialized and ran in %7.2fs on %d nodes\n",
              system.name.c_str(), seconds.value(), system.nodes);
  return 0;
}

}  // namespace

int main() {
  const workloads::AppSpec* app = workloads::find_app("minife");
  if (app == nullptr) return 1;

  std::printf("== one neutral image, two HPC systems ==\n\n");

  // User side: build and publish ONE extended image per architecture. (The
  // two clusters here differ in arch, so the user publishes both builds —
  // within an arch, one image serves every system.)
  registry::Registry hub;
  std::printf("[user] publishing %s\n", app->name.c_str());

  workloads::Evaluation x86_user(sysmodel::SystemProfile::x86_cluster());
  auto x86_prepared = x86_user.prepare(*app);
  if (!x86_prepared.ok()) return 1;
  if (!hub.push(x86_user.layout(), x86_prepared.value().extended_tag, "hub/" + app->name,
                "latest").ok()) {
    return 1;
  }
  std::printf("[hub]  stored %.1f MiB (image %.1f MiB + cache %.2f MiB)\n\n",
              workloads::to_sim_mib(hub.stats().pushed_bytes),
              workloads::to_sim_mib(x86_prepared.value().image_bytes),
              workloads::to_sim_mib(x86_prepared.value().cache_layer_bytes));

  if (deploy_on(sysmodel::SystemProfile::x86_cluster(), hub, *app,
                x86_prepared.value()) != 0) {
    return 1;
  }

  workloads::Evaluation arm_user(sysmodel::SystemProfile::aarch64_cluster());
  auto arm_prepared = arm_user.prepare(*app);
  if (!arm_prepared.ok()) return 1;
  if (!hub.push(arm_user.layout(), arm_prepared.value().extended_tag,
                "hub/" + app->name, "latest").ok()) {
    return 1;
  }
  if (deploy_on(sysmodel::SystemProfile::aarch64_cluster(), hub, *app,
                arm_prepared.value()) != 0) {
    return 1;
  }

  auto stats = hub.stats();
  std::printf("\n[hub]  %zu repositories, %zu blobs, %.1f MiB stored, %.1f MiB pulled\n",
              stats.repositories, stats.blobs, workloads::to_sim_mib(stats.stored_bytes),
              workloads::to_sim_mib(stats.pulled_bytes));
  return 0;
}
