#include "buildexec/record.hpp"

namespace comt::buildexec {
namespace {

json::Value string_array(const std::vector<std::string>& items) {
  json::Value array{json::Array{}};
  for (const std::string& item : items) array.push_back(json::Value(item));
  return array;
}

json::Value string_map(const std::map<std::string, std::string>& items) {
  json::Value object{json::Object{}};
  for (const auto& [key, value] : items) object.set(key, json::Value(value));
  return object;
}

Result<std::vector<std::string>> parse_string_array(const json::Value* value,
                                                    std::string_view what) {
  std::vector<std::string> items;
  if (value == nullptr) return items;
  if (!value->is_array()) {
    return make_error(Errc::corrupt, std::string(what) + " is not an array");
  }
  for (const json::Value& item : value->as_array()) {
    if (!item.is_string()) {
      return make_error(Errc::corrupt, std::string(what) + " element is not a string");
    }
    items.push_back(item.as_string());
  }
  return items;
}

Result<std::map<std::string, std::string>> parse_string_map(
    const json::Value* value, std::string_view what) {
  std::map<std::string, std::string> items;
  if (value == nullptr) return items;
  if (!value->is_object()) {
    return make_error(Errc::corrupt, std::string(what) + " is not an object");
  }
  for (const auto& [key, entry] : value->as_object()) {
    if (!entry.is_string()) {
      return make_error(Errc::corrupt, std::string(what) + " value is not a string");
    }
    items.emplace(key, entry.as_string());
  }
  return items;
}

}  // namespace

json::Value ToolInvocation::to_json() const {
  json::Value object{json::Object{}};
  object.set("argv", string_array(argv));
  object.set("resolved_program", json::Value(resolved_program));
  object.set("toolchain_id", json::Value(toolchain_id));
  object.set("cwd", json::Value(cwd));
  object.set("env", string_map(env));
  object.set("inputs_read", string_array(inputs_read));
  object.set("outputs", string_array(outputs));
  object.set("digests", string_map(digests));
  object.set("succeeded", json::Value(succeeded));
  object.set("message", json::Value(message));
  return object;
}

Result<ToolInvocation> ToolInvocation::from_json(const json::Value& value) {
  if (!value.is_object()) {
    return make_error(Errc::corrupt,
                                      "invocation is not an object");
  }
  ToolInvocation invocation;
  COMT_TRY(invocation.argv, parse_string_array(value.find("argv"), "argv"));
  if (invocation.argv.empty()) {
    return make_error(Errc::corrupt,
                                      "invocation has an empty argv");
  }
  invocation.resolved_program = value.get_string("resolved_program");
  invocation.toolchain_id = value.get_string("toolchain_id");
  invocation.cwd = value.get_string("cwd", "/");
  COMT_TRY(invocation.env, parse_string_map(value.find("env"), "env"));
  COMT_TRY(invocation.inputs_read,
           parse_string_array(value.find("inputs_read"), "inputs_read"));
  COMT_TRY(invocation.outputs,
           parse_string_array(value.find("outputs"), "outputs"));
  COMT_TRY(invocation.digests,
           parse_string_map(value.find("digests"), "digests"));
  invocation.succeeded = value.get_bool("succeeded", true);
  invocation.message = value.get_string("message");
  return invocation;
}

json::Value BuildRecord::to_json() const {
  json::Value object{json::Object{}};
  json::Value array{json::Array{}};
  for (const ToolInvocation& invocation : invocations) {
    array.push_back(invocation.to_json());
  }
  object.set("invocations", std::move(array));
  return object;
}

std::string BuildRecord::serialize() const {
  return json::serialize_pretty(to_json());
}

Result<BuildRecord> BuildRecord::parse(std::string_view text) {
  COMT_TRY(json::Value document, json::parse(text));
  if (!document.is_object()) {
    return make_error(Errc::corrupt,
                                   "build record is not an object");
  }
  const json::Value* array = document.find("invocations");
  if (array == nullptr || !array->is_array()) {
    return make_error(Errc::corrupt,
                                   "build record has no invocations array");
  }
  BuildRecord record;
  for (const json::Value& entry : array->as_array()) {
    COMT_TRY(ToolInvocation invocation, ToolInvocation::from_json(entry));
    record.invocations.push_back(std::move(invocation));
  }
  return record;
}

}  // namespace comt::buildexec
