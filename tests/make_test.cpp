#include <gtest/gtest.h>

#include "buildexec/container.hpp"
#include "buildexec/make.hpp"
#include "toolchain/artifact.hpp"
#include "toolchain/toolchains.hpp"

namespace comt::buildexec {
namespace {

constexpr const char* kMakefile =
    "CC = gcc\n"
    "CFLAGS = -O2\n"
    "CFLAGS ?= -O0\n"  // conditional: must not override
    "OBJS = main.o util.o\n"
    "\n"
    "# default goal\n"
    "app: $(OBJS)\n"
    "\t$(CC) $(CFLAGS) $^ -o $@\n"
    "\n"
    "main.o: src/main.cc src/common.h\n"
    "\t$(CC) $(CFLAGS) -c $< -o $@\n"
    "\n"
    "util.o: src/util.cc src/common.h\n"
    "\t$(CC) $(CFLAGS) -c $< -o $@\n"
    "\n"
    "clean:\n"
    "\trm -f app main.o util.o\n";

Container make_container() {
  vfs::Filesystem rootfs;
  EXPECT_TRUE(rootfs.write_file("/usr/bin/gcc",
                                toolchain::make_toolchain_stub("gnu-generic"), 0755).ok());
  EXPECT_TRUE(rootfs.write_file("/work/Makefile", kMakefile).ok());
  EXPECT_TRUE(rootfs.write_file(
      "/work/src/main.cc",
      "#include \"common.h\"\n// @comt-kernel name=m work=5\nvoid m();\n").ok());
  EXPECT_TRUE(rootfs.write_file(
      "/work/src/util.cc",
      "#include \"common.h\"\n// @comt-kernel name=u work=3\nvoid u();\n").ok());
  EXPECT_TRUE(rootfs.write_file("/work/src/common.h", "// decls\n").ok());
  oci::ImageConfig config;
  config.architecture = "amd64";
  Container container(std::move(rootfs), config, nullptr);
  container.set_cwd("/work");
  return container;
}

TEST(MakefileParseTest, VariablesRulesAndDefaultGoal) {
  auto makefile = parse_makefile(kMakefile);
  ASSERT_TRUE(makefile.ok()) << makefile.error().to_string();
  EXPECT_EQ(makefile.value().variables.at("CC"), "gcc");
  EXPECT_EQ(makefile.value().variables.at("CFLAGS"), "-O2");  // ?= did not clobber
  EXPECT_EQ(makefile.value().default_goal, "app");
  ASSERT_EQ(makefile.value().rules.size(), 4u);
  const MakeRule* app = makefile.value().find_rule("app");
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->prerequisites, std::vector<std::string>{"$(OBJS)"});
  EXPECT_EQ(makefile.value().find_rule("ghost"), nullptr);
}

TEST(MakefileParseTest, Errors) {
  EXPECT_FALSE(parse_makefile("\techo recipe with no rule\n").ok());
  EXPECT_FALSE(parse_makefile("just a line\n").ok());
  EXPECT_FALSE(parse_makefile("").ok());
  EXPECT_FALSE(parse_makefile("a b: c\n\ttouch x\n").ok());  // malformed target
}

TEST(RunMakeTest, BuildsDefaultGoalTransitively) {
  Container container = make_container();
  auto targets = run_make(container, {"make"});
  ASSERT_TRUE(targets.ok()) << targets.error().to_string();
  EXPECT_EQ(targets.value(), (std::vector<std::string>{"main.o", "util.o", "app"}));
  auto blob = container.rootfs().read_file("/work/app");
  ASSERT_TRUE(blob.ok());
  auto image = toolchain::parse_image(blob.value());
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image.value().objects.size(), 2u);
  EXPECT_EQ(image.value().objects[0].codegen.opt_level, 2);
}

TEST(RunMakeTest, OverridesBeatFileVariables) {
  Container container = make_container();
  auto targets = run_make(container, {"make", "CFLAGS=-O3 -flto", "app"});
  ASSERT_TRUE(targets.ok()) << targets.error().to_string();
  auto image = toolchain::parse_image(container.rootfs().read_file("/work/app").value());
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image.value().objects[0].codegen.opt_level, 3);
  EXPECT_TRUE(image.value().codegen.lto_applied);
}

TEST(RunMakeTest, UpToDateTargetsAreSkipped) {
  Container container = make_container();
  ASSERT_TRUE(run_make(container, {"make"}).ok());
  auto again = run_make(container, {"make"});
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().empty());  // nothing to do
}

TEST(RunMakeTest, ExplicitGoalAndClean) {
  Container container = make_container();
  auto only_util = run_make(container, {"make", "util.o"});
  ASSERT_TRUE(only_util.ok());
  EXPECT_EQ(only_util.value(), std::vector<std::string>{"util.o"});
  EXPECT_FALSE(container.rootfs().exists("/work/app"));

  ASSERT_TRUE(run_make(container, {"make"}).ok());
  ASSERT_TRUE(container.rootfs().exists("/work/app"));
  // `clean` has no file named after it, so its recipe always runs.
  auto clean = run_make(container, {"make", "clean"});
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(container.rootfs().exists("/work/app"));
  EXPECT_FALSE(container.rootfs().exists("/work/main.o"));
}

TEST(RunMakeTest, MissingRuleAndMissingMakefile) {
  Container container = make_container();
  auto missing = run_make(container, {"make", "nonexistent-target"});
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error().message.find("No rule to make target"), std::string::npos);

  ASSERT_TRUE(container.rootfs().remove("/work/Makefile").ok());
  EXPECT_FALSE(run_make(container, {"make"}).ok());
}

TEST(RunMakeTest, CircularDependencyDetected) {
  Container container = make_container();
  ASSERT_TRUE(container.rootfs().write_file(
      "/work/Makefile", "a: b\n\ttouch a\nb: a\n\ttouch b\n").ok());
  auto result = run_make(container, {"make"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("circular"), std::string::npos);
}

TEST(RunMakeTest, DashCChangesDirectory) {
  Container container = make_container();
  container.set_cwd("/");
  auto targets = run_make(container, {"make", "-C", "work"});
  ASSERT_TRUE(targets.ok()) << targets.error().to_string();
  EXPECT_TRUE(container.rootfs().exists("/work/app"));
  EXPECT_EQ(container.cwd(), "/");  // restored
}

TEST(RunMakeTest, RecipesAreRecordedIndividually) {
  // The whole point: the hijacker sees through make.
  Container container = make_container();
  BuildRecord record;
  container.attach_recorder(&record);
  ASSERT_TRUE(container.run_shell("make").ok());
  int compiler_invocations = 0;
  bool saw_make = false;
  for (const ToolInvocation& invocation : record.invocations) {
    if (invocation.argv[0] == "gcc") ++compiler_invocations;
    if (invocation.argv[0] == "make") saw_make = true;
  }
  EXPECT_EQ(compiler_invocations, 3);  // 2 compiles + 1 link
  EXPECT_TRUE(saw_make);
}

TEST(RunMakeTest, FailingRecipeStops) {
  Container container = make_container();
  ASSERT_TRUE(container.rootfs().write_file(
      "/work/Makefile", "app: main.o\n\tgcc main.o -o app\nmain.o: src/ghost.cc\n"
                        "\tgcc -c src/ghost.cc -o main.o\n").ok());
  auto result = run_make(container, {"make"});
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(container.rootfs().exists("/work/app"));
}

}  // namespace
}  // namespace comt::buildexec
