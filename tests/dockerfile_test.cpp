#include <gtest/gtest.h>

#include "dockerfile/dockerfile.hpp"

namespace comt::dockerfile {
namespace {

constexpr const char* kTwoStage = R"(# build LULESH, two-stage (Fig. 2)
FROM ubuntu:24.04 AS build
ARG CFLAGS=-O2
WORKDIR /work
RUN apt-get update && \
    apt-get install -y build-essential
COPY src /work/src
RUN gcc $CFLAGS -c src/main.c -o main.o
RUN gcc main.o -o lulesh -lm

FROM ubuntu:24.04 AS dist
RUN apt-get install -y libm
WORKDIR /app
COPY --from=build /work/lulesh /app/lulesh
ENTRYPOINT ["/app/lulesh"]
CMD ["-s", "30"]
)";

Dockerfile must_parse(std::string_view text) {
  auto result = parse(text);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().to_string());
  return result.ok() ? result.value() : Dockerfile{};
}

TEST(DockerfileTest, TwoStageStructure) {
  Dockerfile file = must_parse(kTwoStage);
  ASSERT_EQ(file.stages.size(), 2u);
  EXPECT_EQ(file.stages[0].base_image, "ubuntu:24.04");
  EXPECT_EQ(file.stages[0].name, "build");
  EXPECT_EQ(file.stages[1].name, "dist");
  EXPECT_EQ(file.stage_index("build"), 0);
  EXPECT_EQ(file.stage_index("dist"), 1);
  EXPECT_EQ(file.stage_index("0"), 0);  // numeric reference
  EXPECT_EQ(file.stage_index("nope"), -1);
}

TEST(DockerfileTest, ContinuationsJoined) {
  Dockerfile file = must_parse(kTwoStage);
  const Instruction& run = file.stages[0].instructions[2];
  ASSERT_EQ(run.kind, InstructionKind::run);
  EXPECT_EQ(run.text, "apt-get update && apt-get install -y build-essential");
}

TEST(DockerfileTest, CopyFromStage) {
  Dockerfile file = must_parse(kTwoStage);
  const auto& dist = file.stages[1].instructions;
  const Instruction* copy = nullptr;
  for (const Instruction& instruction : dist) {
    if (instruction.kind == InstructionKind::copy) copy = &instruction;
  }
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->stage, "build");
  EXPECT_EQ(copy->args, (std::vector<std::string>{"/work/lulesh", "/app/lulesh"}));
}

TEST(DockerfileTest, ExecFormEntrypoint) {
  Dockerfile file = must_parse(kTwoStage);
  const auto& dist = file.stages[1].instructions;
  EXPECT_EQ(dist[3].kind, InstructionKind::entrypoint);
  EXPECT_EQ(dist[3].args, std::vector<std::string>{"/app/lulesh"});
  EXPECT_EQ(dist[4].kind, InstructionKind::cmd);
  EXPECT_EQ(dist[4].args, (std::vector<std::string>{"-s", "30"}));
}

TEST(DockerfileTest, ShellFormEntrypoint) {
  Dockerfile file = must_parse("FROM x\nENTRYPOINT ./run --flag\n");
  EXPECT_EQ(file.stages[0].instructions[0].args,
            (std::vector<std::string>{"/bin/sh", "-c", "./run --flag"}));
}

TEST(DockerfileTest, EnvArgLabelForms) {
  Dockerfile file = must_parse(
      "FROM x\nENV KEY=value\nENV SPACED legacy form\nARG NAME\nARG WITH=default\n"
      "LABEL maintainer=\"someone\"\n");
  const auto& ins = file.stages[0].instructions;
  EXPECT_EQ(ins[0].args, (std::vector<std::string>{"KEY", "value"}));
  EXPECT_EQ(ins[1].args, (std::vector<std::string>{"SPACED", "legacy form"}));
  EXPECT_EQ(ins[2].args, (std::vector<std::string>{"NAME", ""}));
  EXPECT_EQ(ins[3].args, (std::vector<std::string>{"WITH", "default"}));
  EXPECT_EQ(ins[4].args, (std::vector<std::string>{"maintainer", "someone"}));
}

TEST(DockerfileTest, Errors) {
  EXPECT_FALSE(parse("").ok());
  EXPECT_FALSE(parse("RUN before-from\n").ok());
  EXPECT_FALSE(parse("FROM\n").ok());
  EXPECT_FALSE(parse("FROM x\nCOPY onlyone\n").ok());
  EXPECT_FALSE(parse("FROM x\nWORKDIR\n").ok());
  EXPECT_FALSE(parse("FROM x\nBOGUS arg\n").ok());
  EXPECT_FALSE(parse("FROM img AS\n").ok());
}

TEST(DockerfileTest, CommentsAndBlanksIgnored) {
  Dockerfile file = must_parse("# header\n\nFROM x\n# mid comment\nRUN ls\n\n");
  ASSERT_EQ(file.stages.size(), 1u);
  EXPECT_EQ(file.stages[0].instructions.size(), 1u);
}

TEST(DockerfileTest, ToTextReparses) {
  Dockerfile file = must_parse(kTwoStage);
  Dockerfile again = must_parse(to_text(file));
  ASSERT_EQ(again.stages.size(), 2u);
  EXPECT_EQ(again.stages[0].instructions.size(), file.stages[0].instructions.size());
  EXPECT_EQ(again.stages[1].instructions.size(), file.stages[1].instructions.size());
}

// ---- line_diff (Fig. 11's measurement) --------------------------------------

TEST(LineDiffTest, IdenticalIsZero) {
  auto [added, deleted] = line_diff("a\nb\nc\n", "a\nb\nc\n");
  EXPECT_EQ(added, 0);
  EXPECT_EQ(deleted, 0);
}

TEST(LineDiffTest, PureAddition) {
  auto [added, deleted] = line_diff("a\nb\n", "a\nx\nb\ny\n");
  EXPECT_EQ(added, 2);
  EXPECT_EQ(deleted, 0);
}

TEST(LineDiffTest, PureDeletion) {
  auto [added, deleted] = line_diff("a\nb\nc\n", "b\n");
  EXPECT_EQ(added, 0);
  EXPECT_EQ(deleted, 2);
}

TEST(LineDiffTest, ChangedLineCountsBoth) {
  auto [added, deleted] = line_diff("keep\nold\nkeep2\n", "keep\nnew\nkeep2\n");
  EXPECT_EQ(added, 1);
  EXPECT_EQ(deleted, 1);
}

TEST(LineDiffTest, CompletelyDifferent) {
  auto [added, deleted] = line_diff("a\nb\n", "c\nd\ne\n");
  EXPECT_EQ(added, 3);
  EXPECT_EQ(deleted, 2);
}

TEST(LineDiffTest, EmptyInputs) {
  auto [added, deleted] = line_diff("", "x\n");
  EXPECT_EQ(added, 1);
  EXPECT_EQ(deleted, 0);
  auto [a2, d2] = line_diff("", "");
  EXPECT_EQ(a2, 0);
  EXPECT_EQ(d2, 0);
}

}  // namespace
}  // namespace comt::dockerfile
