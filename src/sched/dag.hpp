// Dependency-aware job scheduler for the rebuild engine.
//
// Jobs are named, carry explicit dependency edges (compile jobs depend on the
// jobs producing their inputs, links on their objects, archives on their
// members — exactly the edges the process models record), and run through a
// ThreadPool once every dependency succeeded. The schedule is validated
// up front with Kahn's algorithm, so a cyclic graph is an error before any
// job runs — never a deadlock. Results are reported in submission order
// regardless of completion order, which is what makes parallel rebuilds
// reproducible job-for-job.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/thread_pool.hpp"
#include "support/error.hpp"

namespace comt::sched {

/// A job body: does the work, reports success/failure.
using JobFn = std::function<Status()>;

/// Per-job outcome, in submission order.
struct JobOutcome {
  std::string id;
  Status status;        ///< success, the job's own error, or the skip reason
  bool skipped = false; ///< true when a dependency failed and the job never ran
  double wall_ms = 0;   ///< job body execution time (0 when skipped)
};

/// Outcome of one scheduler run.
struct ScheduleReport {
  std::vector<JobOutcome> jobs;  ///< one per add_job call, in that order
  std::size_t executed = 0;      ///< job bodies that ran (succeeded or failed)
  std::size_t failed = 0;
  std::size_t skipped = 0;
  double wall_ms = 0;            ///< schedule wall time

  /// Error of the first failed/skipped job in submission order, or success.
  Status first_error() const;
};

/// Observability hooks for one scheduler run. All pointers are optional and
/// borrowed: the caller keeps them alive for the duration of run().
struct ObsOptions {
  obs::Tracer* tracer = nullptr;       ///< when set, one "job:<id>" span per job
  obs::SpanId parent = obs::kNoSpan;   ///< parent for every job span
  std::string category = "compile";    ///< span category (per-job override wins)
  obs::MetricsRegistry* metrics = nullptr;
  std::string metric_prefix = "sched"; ///< "<prefix>.ready_wait_ms", "<prefix>.jobs.*"
};

class DagScheduler {
 public:
  /// Registers a job. `deps` name jobs this one must run after; forward
  /// references are allowed (edges are resolved at run()). Duplicate ids
  /// are an error. `category` labels the job's span ("compile", "link", …);
  /// empty falls back to ObsOptions::category.
  Status add_job(std::string id, std::vector<std::string> deps, JobFn fn,
                 std::string category = "");

  std::size_t job_count() const { return jobs_.size(); }

  /// Executes the graph. With a pool, independent jobs run concurrently;
  /// with `pool == nullptr` jobs run inline on the calling thread, in
  /// topological submission order — the same code path either way, so both
  /// modes produce identical filesystem effects. Fails without running
  /// anything when the graph has an unknown dependency or a cycle.
  /// A failed job skips its transitive dependents; independent jobs still
  /// run (make -k semantics, so one bad unit doesn't hide other errors).
  /// With ObsOptions attached, every job — executed or skipped — emits
  /// exactly one span, so span count always equals job_count().
  Result<ScheduleReport> run(ThreadPool* pool, const ObsOptions& opts = {});

 private:
  struct Job {
    std::string id;
    std::vector<std::string> deps;
    JobFn fn;
    std::string category;
  };

  std::vector<Job> jobs_;
};

}  // namespace comt::sched
