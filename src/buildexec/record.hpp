// Build-process recording (§4.1): the hijacking build container logs every
// tool invocation — compilers, the archiver, file movements, package-manager
// runs — together with point-in-time content digests of the files each tool
// read and wrote. The record is the raw material the front-end distills into
// the build-graph process model.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "support/error.hpp"

namespace comt::buildexec {

/// Image-config label that switches invocation recording on. The coMtainer
/// Env/Base images carry it; ordinary bases don't, so builds from mainstream
/// images are never recorded (Fig. 6's opt-in hijack).
inline constexpr std::string_view kHijackLabel = "comtainer.hijack";

/// argv[0] of the pseudo-invocation recorded for a Dockerfile COPY movement
/// (COPY has no real tool, but the file flow matters to the image model).
inline constexpr std::string_view kCopyPseudoTool = "comt::copy";

/// One recorded tool invocation.
struct ToolInvocation {
  std::vector<std::string> argv;       ///< as invoked, after shell expansion
  std::string resolved_program;        ///< absolute path argv[0] resolved to
  std::string toolchain_id;            ///< for compiler stubs, the toolchain
  std::string cwd = "/";               ///< working directory of the invocation
  std::map<std::string, std::string> env;  ///< environment at invocation time
  std::vector<std::string> inputs_read;    ///< absolute paths consumed
  std::vector<std::string> outputs;        ///< absolute paths written
  /// Point-in-time sha256 of every input and output, keyed by path.
  std::map<std::string, std::string> digests;
  bool succeeded = true;
  std::string message;  ///< error text for failed invocations

  json::Value to_json() const;
  static Result<ToolInvocation> from_json(const json::Value& value);
};

/// The full log of one hijacked build.
struct BuildRecord {
  std::vector<ToolInvocation> invocations;

  json::Value to_json() const;
  std::string serialize() const;

  /// Parses a serialized record. Rejects non-JSON input, documents without an
  /// "invocations" array, and invocations with an empty argv.
  static Result<BuildRecord> parse(std::string_view text);
};

}  // namespace comt::buildexec
