// Small string utilities shared across modules. All functions are pure and
// allocate only for their return values.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace comt {

/// Splits `text` on `separator`; empty fields are preserved
/// ("a,,b" -> {"a","","b"}). An empty input yields one empty field.
std::vector<std::string> split(std::string_view text, char separator);

/// Splits on runs of ASCII whitespace; no empty fields are produced.
std::vector<std::string> split_whitespace(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins `parts` with `separator` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view separator);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// True if `text` contains `needle`.
bool contains(std::string_view text, std::string_view needle);

/// Replaces every occurrence of `from` (must be non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from, std::string_view to);

/// Normalizes an absolute or relative slash path: collapses "//" and "."
/// segments and resolves ".." lexically (never above the root for absolute
/// paths). "" -> ".", "/" -> "/".
std::string normalize_path(std::string_view path);

/// Joins two path fragments with exactly one '/' between them. If `tail` is
/// absolute it replaces `base` (POSIX semantics).
std::string path_join(std::string_view base, std::string_view tail);

/// Directory part of a path ("/a/b/c" -> "/a/b", "c" -> ".", "/x" -> "/").
std::string path_dirname(std::string_view path);

/// Final component of a path ("/a/b/c" -> "c", "/" -> "/").
std::string path_basename(std::string_view path);

/// File extension including the dot ("a/b.c.o" -> ".o"); "" when none.
std::string path_extension(std::string_view path);

}  // namespace comt
