// Consistent-hash sharded KvStore: one key→bytes namespace spread over N
// child stores, the way a site-scale compile substrate spreads its cache and
// journal traffic over several storage nodes.
//
// Routing uses a classic consistent-hash ring: every shard owns
// `virtual_nodes` points on a 64-bit ring (fnv1a64 of "shard<i>#<v>"), a key
// routes to the first point clockwise of its own hash. The ring makes
// resharding cheap: reshard() to N+1 children only moves the keys whose
// successor point changed hands — about K/N of them — and the report says
// exactly how many moved. Routing is deterministic across processes, so a
// ShardedStore reopened over the same child directories finds every key
// where it left it.
//
// The wrapper's own observer counts aggregate traffic like any KvStore;
// set_observer additionally binds per-shard counters
// ("store.shard<i>.gets"/".puts"/".erases") so a hot shard is visible in the
// metrics, not just in aggregate. compare_and_put routes to the owning
// shard's CAS, so lease arbitration survives sharding.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "store/store.hpp"

namespace comt::store {

class ShardedStore final : public KvStore {
 public:
  struct Options {
    /// Ring points per shard. More points smooth the key distribution at the
    /// cost of a larger (still tiny) routing table.
    std::size_t virtual_nodes = 32;
  };

  /// What a reshard did. keys_total counts keys examined (everything stored);
  /// keys_moved/bytes_moved count the ones whose owner changed.
  struct RebalanceReport {
    std::size_t keys_total = 0;
    std::size_t keys_moved = 0;
    std::uint64_t bytes_moved = 0;
    std::size_t shards_before = 0;
    std::size_t shards_after = 0;
  };

  /// Routes over `shards` (at least one, none null). Shards are identified
  /// by their index, so the same child list always yields the same ring.
  ShardedStore(std::vector<std::shared_ptr<KvStore>> shards, Options options);
  explicit ShardedStore(std::vector<std::shared_ptr<KvStore>> shards)
      : ShardedStore(std::move(shards), Options{}) {}

  Result<std::string> get(std::string_view key) const override;
  Status put(std::string_view key, std::string value) override;
  Status erase(std::string_view key) override;
  bool contains(std::string_view key) const override;
  Result<std::uint64_t> size(std::string_view key) const override;
  std::vector<KvEntry> list(std::string_view prefix = {}) const override;
  Status sync() override;
  Result<bool> compare_and_put(std::string_view key,
                               const std::optional<std::string>& expected,
                               std::string value) override;

  /// Base observer plus per-shard counters "store.shard<i>.{gets,puts,erases}".
  void set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics) override;

  /// Replaces the shard set and migrates every key whose ring owner changed
  /// (read from the old owner, write to the new, erase the old copy).
  /// Consistent hashing keeps the moved fraction near |changed points| /
  /// |ring|. Not concurrency-safe against in-flight operations — quiesce the
  /// store first, the way a deployment drains before resizing its backend.
  Result<RebalanceReport> reshard(std::vector<std::shared_ptr<KvStore>> shards);

  std::size_t shard_count() const { return shards_.size(); }

  /// The shard index `key` routes to — deterministic, exposed so tests and
  /// rebalance audits can reason about placement.
  std::size_t shard_of(std::string_view key) const;

  const std::shared_ptr<KvStore>& shard(std::size_t index) const {
    return shards_[index];
  }

 private:
  struct RingPoint {
    std::uint64_t hash;
    std::size_t shard;
  };

  static std::vector<RingPoint> build_ring(std::size_t shards,
                                           std::size_t virtual_nodes);
  std::size_t route(std::string_view key) const;
  KvStore& owner(std::string_view key) const { return *shards_[route(key)]; }

  void bind_shard_counters();

  std::vector<std::shared_ptr<KvStore>> shards_;
  Options options_;
  std::vector<RingPoint> ring_;  ///< sorted by hash; rebuilt only by reshard()
  obs::MetricsRegistry* shard_metrics_ = nullptr;  ///< rebound on reshard
  /// Per-shard instruments, parallel to shards_; empty when no metrics bound.
  std::vector<obs::Counter*> shard_gets_;
  std::vector<obs::Counter*> shard_puts_;
  std::vector<obs::Counter*> shard_erases_;
};

}  // namespace comt::store
