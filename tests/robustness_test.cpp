// Failure injection and hostile-input robustness: corrupt caches, tampered
// blobs, broken graphs, missing environments — every failure must surface as
// a typed error, never as silent wrong output. Plus scoped-LTO behavior.
#include <gtest/gtest.h>

#include "core/adapters.hpp"
#include "core/backend.hpp"
#include "core/cache.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

namespace comt {
namespace {

using workloads::AppSpec;
using workloads::Evaluation;
using workloads::PreparedApp;

/// Builds an extended image, hands the flattened rootfs to `tamper`, then
/// re-wraps it as a fresh single-layer image and tries the given operation.
class CacheTampering : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<Evaluation>(sysmodel::SystemProfile::x86_cluster());
    app_ = workloads::find_app("hpccg");
    ASSERT_NE(app_, nullptr);
    auto prepared = world_->prepare(*app_);
    ASSERT_TRUE(prepared.ok());
    prepared_ = prepared.value();
  }

  /// Applies `tamper` to the extended image's flattened tree and retags the
  /// result so the rebuild sees the damaged content.
  void retag_tampered(const std::function<void(vfs::Filesystem&)>& tamper) {
    auto extended = world_->layout().find_image(prepared_.extended_tag);
    ASSERT_TRUE(extended.ok());
    auto rootfs = world_->layout().flatten(extended.value());
    ASSERT_TRUE(rootfs.ok());
    vfs::Filesystem damaged = rootfs.value();
    tamper(damaged);
    oci::ImageConfig config = extended.value().config;
    config.diff_ids.clear();
    config.history.clear();
    auto image = world_->layout().create_image(config, {damaged}, prepared_.extended_tag);
    ASSERT_TRUE(image.ok());
  }

  Result<core::RebuildReport> rebuild() {
    owned_ = core::adapted_scheme();
    adapters_.clear();
    for (const auto& adapter : owned_) adapters_.push_back(adapter.get());
    core::RebuildOptions options;
    options.system = &world_->system();
    options.system_repo = &workloads::system_repo(world_->system());
    options.sysenv_tag = workloads::sysenv_tag(world_->system());
    options.adapters = adapters_;
    return core::comtainer_rebuild(world_->layout(), prepared_.extended_tag, options);
  }

  std::unique_ptr<Evaluation> world_;
  const AppSpec* app_ = nullptr;
  PreparedApp prepared_;
  std::vector<std::unique_ptr<core::SystemAdapter>> owned_;
  std::vector<const core::SystemAdapter*> adapters_;
};

TEST_F(CacheTampering, CorruptSourceBlobDetected) {
  retag_tampered([](vfs::Filesystem& fs) {
    auto names = fs.list_directory(std::string(core::kCacheDir) + "/sources");
    ASSERT_TRUE(names.ok());
    ASSERT_FALSE(names.value().empty());
    std::string victim =
        std::string(core::kCacheDir) + "/sources/" + names.value().front();
    ASSERT_TRUE(fs.write_file(victim, "tampered contents").ok());
  });
  auto result = rebuild();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::corrupt);
}

TEST_F(CacheTampering, MissingGraphDetected) {
  retag_tampered([](vfs::Filesystem& fs) {
    ASSERT_TRUE(fs.remove(std::string(core::kCacheDir) + "/build_graph.json").ok());
  });
  EXPECT_FALSE(rebuild().ok());
}

TEST_F(CacheTampering, MalformedGraphJsonDetected) {
  retag_tampered([](vfs::Filesystem& fs) {
    ASSERT_TRUE(fs.write_file(std::string(core::kCacheDir) + "/build_graph.json",
                              "{not json").ok());
  });
  auto result = rebuild();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::invalid_argument);
}

TEST_F(CacheTampering, ForwardEdgeGraphRejected) {
  retag_tampered([](vfs::Filesystem& fs) {
    // A graph whose node 0 depends on node 1 (a cycle once ids are honored).
    std::string doc =
        R"({"nodes":[{"id":0,"kind":"object","path":"/x.o","digest":"","deps":[1],)"
        R"("compile":{"program":"gcc","argv":["gcc","-c","x.cc"]}},)"
        R"({"id":1,"kind":"source","path":"/x.cc","digest":""}]})";
    ASSERT_TRUE(
        fs.write_file(std::string(core::kCacheDir) + "/build_graph.json", doc).ok());
  });
  EXPECT_FALSE(rebuild().ok());
}

TEST_F(CacheTampering, WholeCacheRemovedIsNotExtended) {
  retag_tampered([](vfs::Filesystem& fs) {
    ASSERT_TRUE(fs.remove("/.coMtainer").ok());
  });
  auto result = rebuild();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::not_found);
}

TEST_F(CacheTampering, MissingSysenvImageFails) {
  core::RebuildOptions options;
  auto owned = core::adapted_scheme();
  std::vector<const core::SystemAdapter*> adapters;
  for (const auto& adapter : owned) adapters.push_back(adapter.get());
  options.system = &world_->system();
  options.system_repo = &workloads::system_repo(world_->system());
  options.sysenv_tag = "no/such:image";
  options.adapters = adapters;
  auto result =
      core::comtainer_rebuild(world_->layout(), prepared_.extended_tag, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::not_found);
}

TEST_F(CacheTampering, RedirectOnPlainImageFails) {
  core::RedirectOptions options;
  options.system = &world_->system();
  options.system_repo = &workloads::system_repo(world_->system());
  options.rebase_tag = workloads::rebase_tag(world_->system());
  auto result = core::comtainer_redirect(world_->layout(), prepared_.dist_tag, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::not_found);
}

TEST(LayoutIntegrityTest, FsckCatchesTamperedBlob) {
  // fsck on a healthy store passes (exercised elsewhere); verify the digest
  // invariant directly: a blob keyed under the wrong digest is detectable.
  oci::Layout layout;
  oci::Descriptor good = layout.put_blob("payload", "text/plain");
  EXPECT_TRUE(layout.fsck().ok());
  EXPECT_EQ(oci::Digest::of_blob("payload"), good.digest);
  EXPECT_NE(oci::Digest::of_blob("other"), good.digest);
}

// ---- scoped LTO -----------------------------------------------------------------

TEST(ScopedLtoTest, OnlyScopedUnitsCarryIr) {
  Evaluation world(sysmodel::SystemProfile::x86_cluster());
  const AppSpec* app = workloads::find_app("lammps");
  ASSERT_NE(app, nullptr);
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok());

  core::LibraryAdapter libo;
  core::ToolchainAdapter cxxo;
  core::LtoAdapter scoped_lto({"lmp_pair_lj"});  // only the lj pair style
  auto tag = world.transform(prepared.value(), {&libo, &cxxo, &scoped_lto},
                             app->inputs.front(), 16);
  ASSERT_TRUE(tag.ok()) << tag.error().to_string();

  auto image = world.layout().find_image(tag.value());
  auto rootfs = world.layout().flatten(image.value());
  auto blob = rootfs.value().read_file(app->binary_path());
  ASSERT_TRUE(blob.ok());
  auto exe = toolchain::parse_image(blob.value());
  ASSERT_TRUE(exe.ok());
  int with_ir = 0, without_ir = 0;
  for (const toolchain::ObjectCode& object : exe.value().objects) {
    bool scoped = object.source_path.find("lmp_pair_lj") != std::string::npos;
    if (object.codegen.lto_ir) {
      EXPECT_TRUE(scoped) << object.source_path;
      ++with_ir;
    } else {
      EXPECT_FALSE(scoped) << object.source_path;
      ++without_ir;
    }
  }
  EXPECT_EQ(with_ir, 1);
  EXPECT_GT(without_ir, 0);
  // The link still applies LTO to the IR that arrived.
  EXPECT_TRUE(exe.value().codegen.lto_applied);
}

TEST(ScopedLtoTest, FullScopeCoversEverything) {
  Evaluation world(sysmodel::SystemProfile::x86_cluster());
  const AppSpec* app = workloads::find_app("comd");
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok());
  core::LibraryAdapter libo;
  core::ToolchainAdapter cxxo;
  core::LtoAdapter full_lto;
  auto tag = world.transform(prepared.value(), {&libo, &cxxo, &full_lto},
                             app->inputs.front(), 16);
  ASSERT_TRUE(tag.ok());
  auto image = world.layout().find_image(tag.value());
  auto rootfs = world.layout().flatten(image.value());
  auto exe = toolchain::parse_image(
      rootfs.value().read_file(app->binary_path()).value());
  ASSERT_TRUE(exe.ok());
  for (const toolchain::ObjectCode& object : exe.value().objects) {
    EXPECT_TRUE(object.codegen.lto_applied) << object.source_path;
  }
}

// ---- corpus-wide invariant sweep --------------------------------------------

class CorpusSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusSweep, PrepareAdaptRunOnX86) {
  Evaluation world(sysmodel::SystemProfile::x86_cluster());
  const AppSpec* app = workloads::find_app(GetParam());
  ASSERT_NE(app, nullptr);
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok()) << prepared.error().to_string();
  auto adapted = world.adapt(*app, prepared.value());
  ASSERT_TRUE(adapted.ok()) << adapted.error().to_string();
  for (const workloads::WorkloadInput& input : app->inputs) {
    auto original = world.run_image(prepared.value().dist_tag, input, 16);
    auto optimized = world.run_image(adapted.value(), input, 16);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(optimized.ok());
    EXPECT_GT(original.value(), 0);
    EXPECT_GT(optimized.value(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, CorpusSweep,
                         ::testing::Values("hpl", "hpcg", "lulesh", "comd", "hpccg",
                                           "miniaero", "miniamr", "minife", "minimd",
                                           "lammps", "openmx"));

}  // namespace
}  // namespace comt
