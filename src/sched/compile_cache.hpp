// Content-addressed compile cache for the rebuild engine.
//
// Works like ccache's "direct mode": the key digest is computed from
// everything that selects the computation — toolchain id, target ISA, working
// directory, and the exact argument vector — and each entry carries a
// manifest of the input files (path → content sha256) observed when the
// entry was stored. A lookup only hits when every manifest input still has
// the same digest, so a changed header or source transparently misses and
// recompiles. Entries store the produced output blobs, so a hit replays the
// outputs without running the toolchain at all.
//
// attach() bolts the cache onto a store::KvStore: every store() writes the
// entry through under "cache/<key digest>" and attach itself hydrates the
// entries the backing already holds, so a cache over a DiskStore directory
// starts warm in the next process. A persisted entry whose checksum fails
// deserialization is dropped (degrades to a miss, never to a wrong hit).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "store/store.hpp"

namespace comt::sched {

/// Key prefix an attached CompileCache persists entries under.
inline constexpr std::string_view kCacheKeyPrefix = "cache/";

/// Everything that identifies a compile computation, before inputs are read.
struct CacheKey {
  std::string toolchain_id;       ///< which simulated toolchain runs
  std::string target_arch;        ///< target ISA the driver lowers to
  std::string cwd;                ///< directory relative paths resolve in
  std::vector<std::string> argv;  ///< full rendered command line

  /// Stable sha256 over all four fields (length-prefixed so field
  /// boundaries can't collide).
  std::string digest() const;
};

/// One output blob a cached job produced.
struct CachedOutput {
  std::string path;     ///< absolute path inside the rebuild rootfs
  std::string content;  ///< full file content
  std::uint32_t mode = 0644;
};

/// A stored computation: the inputs it read (with their digests at store
/// time) and the outputs it wrote.
struct CacheEntry {
  /// Input path → sha256 at the time the entry was stored. Verified on
  /// lookup; any mismatch (or unreadable input) is a miss.
  std::map<std::string, std::string> input_digests;
  std::vector<CachedOutput> outputs;
};

/// Hit/miss/store counters for one cache over its lifetime.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t hydrated = 0;        ///< entries recovered from the backing store
  std::uint64_t corrupt_dropped = 0; ///< persisted entries rejected at hydration
};

/// Thread-safe in-memory compile cache shared by all jobs of a rebuild (and
/// across rebuilds, when the caller keeps it alive).
class CompileCache {
 public:
  /// Returns the current digest of `path` in the caller's filesystem, or an
  /// empty string when the file can't be read.
  using DigestFn = std::function<std::string(const std::string& path)>;

  /// Looks up `key_digest`. On a candidate entry, re-digests every manifest
  /// input through `digest_of`; the entry only hits when all match. Returns
  /// the entry on a hit, nullptr on a miss. Counts one hit or one miss.
  std::shared_ptr<const CacheEntry> lookup(const std::string& key_digest,
                                           const DigestFn& digest_of);

  /// Stores (or replaces) the entry for `key_digest`. Counts one store.
  /// When attached, the entry also writes through to the backing store.
  void store(const std::string& key_digest, CacheEntry entry);

  /// Backs the cache with `backing` under `prefix`: hydrates every intact
  /// persisted entry (counting CacheStats::hydrated), erases and counts
  /// corrupt ones, and writes every future store() through. Call before
  /// sharing the cache. Returns the number of entries hydrated.
  std::size_t attach(std::shared_ptr<store::KvStore> backing,
                     std::string prefix = std::string(kCacheKeyPrefix));

  /// Attaches counters ("compile_cache.hits", "compile_cache.misses",
  /// "compile_cache.inserts", "compile_cache.hydrated",
  /// "compile_cache.corrupt_dropped"). Pass nullptr to detach. Wire up
  /// before sharing the cache (and before attach(), to count hydration).
  void set_metrics(obs::MetricsRegistry* metrics);

  CacheStats stats() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const CacheEntry>> entries_;
  CacheStats stats_;
  std::shared_ptr<store::KvStore> backing_;
  std::string prefix_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* inserts_ = nullptr;
  obs::Counter* hydrated_ = nullptr;
  obs::Counter* corrupt_dropped_ = nullptr;
};

}  // namespace comt::sched
