#include "sysmodel/sysmodel.hpp"

#include <algorithm>
#include <cmath>

#include "support/strings.hpp"
#include "toolchain/driver.hpp"
#include "toolchain/toolchains.hpp"

namespace comt::sysmodel {
namespace {

/// ld.so search order inside container images.
const std::vector<std::string>& loader_search_dirs() {
  static const std::vector<std::string> dirs = {"/usr/local/lib", "/usr/lib", "/lib",
                                                "/opt/system/lib"};
  return dirs;
}

/// Libraries satisfied by the loader itself even when no file is present
/// (vDSO-ish runtime bits every image has implicitly).
bool loader_builtin(std::string_view name) {
  return name == "c" || name == "gcc" || name == "gcc_s" || name == "stdc++" ||
         name == "dl" || name == "rt" || name == "pthread";
}

}  // namespace

bool SystemProfile::march_is_tuned(std::string_view march) const {
  return std::find(tuned_marches.begin(), tuned_marches.end(), march) !=
         tuned_marches.end();
}

const SystemProfile& SystemProfile::x86_cluster() {
  static const SystemProfile profile = [] {
    SystemProfile p;
    p.name = "x86-64 cluster";
    p.arch = "amd64";
    p.cpu_model = "2 x Intel Xeon Platinum 8358P @ 2.60GHz";
    p.os_name = "Ubuntu 22.04";
    p.nodes = 16;
    p.cores_per_node = 64;
    p.ram_gib = 512;
    p.scalar_ips = 1.0;
    p.mem_bw = 1.0;
    p.max_lanes = 8;  // AVX-512
    p.call_cost = 1.0;
    p.branch_cost = 1.0;
    p.comm_cost = 1.0;
    // Generic MPI builds carry standard InfiniBand support, so on the x86
    // cluster they already reach a fast fabric; only the vendor MPI drives
    // the proprietary HSN. (On the AArch64 cluster below there is no such
    // middle ground — that asymmetry is the paper's lulesh story.)
    p.fabric_speed = {{"tcp", 1.0}, {"ib", 13.0}, {"hsn", 14.0}};
    // Xeon is what distro compilers are tuned on: generic x86-64 code still
    // runs well, so the untuned penalty is mild.
    p.tuned_marches = {"x86-64-v3", "x86-64-v4"};
    p.untuned_factor = 0.55;
    p.vector_untuned_factor = 0.55;
    p.native_toolchain = "vendor-x86";
    p.native_march = "native";
    return p;
  }();
  return profile;
}

const SystemProfile& SystemProfile::aarch64_cluster() {
  static const SystemProfile profile = [] {
    SystemProfile p;
    p.name = "AArch64 cluster";
    p.arch = "arm64";
    p.cpu_model = "1 x Phytium FT-2000+/64 @ 2.2GHz";
    p.os_name = "Kylin Linux Advanced Server V10";
    p.nodes = 16;
    p.cores_per_node = 64;
    p.ram_gib = 128;
    p.scalar_ips = 0.34;
    p.mem_bw = 0.31;
    p.max_lanes = 2;  // FT-2000+ has 128-bit NEON only — no wide-SIMD lever
    p.call_cost = 1.2;
    p.branch_cost = 1.3;
    p.comm_cost = 1.0;
    p.fabric_speed = {{"tcp", 1.85}, {"glex", 6.8}};
    // Distro GCC barely tunes for Phytium cores: generic armv8-a code pays a
    // heavy scheduling penalty, which is why the paper's AArch64 gains from
    // cxxo/libo are larger than x86's.
    p.tuned_marches = {"armv8.2-a+sve"};
    p.untuned_factor = 0.95;
    // Distro GCC's NEON scheduling on this core is where the real damage
    // is: vector loops crawl until the vendor compiler rebuilds them.
    p.vector_untuned_factor = 0.32;
    p.native_toolchain = "vendor-aarch64";
    p.native_march = "armv8.2-a+sve";
    return p;
  }();
  return profile;
}

const SystemProfile& SystemProfile::user_workstation() {
  static const SystemProfile profile = [] {
    SystemProfile p;
    p.name = "user workstation";
    p.arch = "amd64";
    p.cpu_model = "8-core desktop CPU";
    p.os_name = "Ubuntu 24.04";
    p.nodes = 1;
    p.cores_per_node = 8;
    p.ram_gib = 32;
    p.scalar_ips = 0.7;
    p.mem_bw = 0.6;
    p.max_lanes = 4;  // AVX2 desktop
    p.fabric_speed = {{"tcp", 1.0}};
    p.tuned_marches = {"x86-64", "x86-64-v2", "x86-64-v3"};
    p.untuned_factor = 0.95;
    p.vector_untuned_factor = 0.95;
    p.native_toolchain = "gnu-generic";
    p.native_march = "x86-64-v3";
    return p;
  }();
  return profile;
}

Result<toolchain::LinkedImage> ExecutionEngine::resolve_library(
    const vfs::Filesystem& rootfs, std::string_view name) const {
  for (const std::string& dir : loader_search_dirs()) {
    std::string path = path_join(dir, "lib" + std::string(name) + ".so");
    if (rootfs.exists(path)) {
      COMT_TRY(std::string blob, rootfs.read_file(path));
      if (!toolchain::is_image_blob(blob)) {
        return make_error(Errc::corrupt, path + ": not a shared library");
      }
      return toolchain::parse_image(blob);
    }
  }
  return make_error(Errc::not_found,
                    "error while loading shared libraries: lib" + std::string(name) +
                        ".so: cannot open shared object file");
}

Result<RunReport> ExecutionEngine::run(const vfs::Filesystem& rootfs,
                                       std::string_view exe_path,
                                       const RunRequest& request) const {
  COMT_TRY(std::string blob, rootfs.read_file(exe_path));
  if (!toolchain::is_image_blob(blob)) {
    return make_error(Errc::failed, std::string(exe_path) + ": cannot execute binary file");
  }
  COMT_TRY(toolchain::LinkedImage exe, toolchain::parse_image(blob));
  if (exe.is_shared) {
    return make_error(Errc::failed, std::string(exe_path) + ": is a shared library");
  }
  if (exe.target_arch != system_.arch) {
    return make_error(Errc::failed,
                      std::string(exe_path) + ": cannot execute binary file: Exec format error (binary is " +
                          exe.target_arch + ", system is " + system_.arch + ")");
  }

  RunReport report;

  // Dynamic loading: resolve every needed library out of the image.
  std::map<std::string, toolchain::LinkedImage> loaded;
  for (const std::string& needed : exe.needed) {
    auto resolved = resolve_library(rootfs, needed);
    if (resolved.ok()) {
      loaded.emplace(needed, std::move(resolved).value());
    } else if (loader_builtin(needed) || needed == "m") {
      // Runtime defaults: a plain libm/libc with no tuning.
      toolchain::LinkedImage builtin;
      builtin.is_shared = true;
      builtin.soname = "lib" + needed + ".so";
      builtin.attributes["libspeed"] = 1.0;
      loaded.emplace(needed, std::move(builtin));
      report.warnings.push_back("using loader-default lib" + needed + ".so");
    } else {
      return resolved.error();
    }
  }

  const toolchain::ToolchainRegistry& registry = toolchain::ToolchainRegistry::builtin();
  const int nodes = std::max(1, request.nodes);

  for (const toolchain::ObjectCode& object : exe.objects) {
    const toolchain::Toolchain* toolchain = registry.find(object.codegen.toolchain_id);
    double codegen_quality =
        toolchain != nullptr
            ? toolchain->codegen[std::clamp(object.codegen.opt_level, 0, 3)]
            : 1.0;
    double aggressiveness = toolchain != nullptr ? toolchain->aggressiveness : 0.0;
    bool is_tuned = system_.march_is_tuned(object.codegen.march);
    double tuned = is_tuned ? 1.0 : system_.untuned_factor;
    double tuned_vec = is_tuned ? 1.0 : system_.vector_untuned_factor;
    int lanes = std::clamp(object.codegen.vector_lanes, 1, system_.max_lanes);

    for (const toolchain::KernelTrait& kernel : object.kernels) {
      double weight = 1.0;
      if (auto it = request.kernel_weight.find(kernel.name);
          it != request.kernel_weight.end()) {
        weight = it->second;
      }
      double work = kernel.work * weight * request.input_scale / nodes;
      double aggr_mult = object.codegen.opt_level >= 2
                             ? std::max(0.1, 1.0 + aggressiveness * kernel.aggr_response)
                             : 1.0;
      double compute_speed = system_.scalar_ips * codegen_quality * tuned * aggr_mult;

      double frac_scalar = std::max(
          0.0, 1.0 - kernel.frac_vec - kernel.frac_mem - kernel.frac_call -
                   kernel.frac_branch - kernel.frac_lib);

      TimeBreakdown t;
      t.scalar = work * frac_scalar / compute_speed;
      t.vector = work * kernel.frac_vec * tuned /
                 (compute_speed * tuned_vec * lanes);
      t.memory = work * kernel.frac_mem / system_.mem_bw;

      // Library-bound time uses the installed library's speed, independent
      // of how the application was compiled.
      if (kernel.frac_lib > 0) {
        double lib_speed = 1.0;
        auto it = loaded.find(kernel.lib);
        if (it != loaded.end()) {
          lib_speed = it->second.attribute("libspeed", 1.0);
        }
        t.library = work * kernel.frac_lib / (system_.scalar_ips * lib_speed);
      }

      double lto_effect =
          object.codegen.lto_applied ? kernel.lto_response : 0.0;
      t.call = work * kernel.frac_call * system_.call_cost / compute_speed *
               std::max(0.0, 1.0 - lto_effect);

      double pgo_effect = object.codegen.pgo_quality * kernel.pgo_response;
      // BOLT-style post-link layout optimization: profile-driven basic-block
      // reordering shaves branch/frontend stalls on top of PGO, and only in
      // the positive direction (layout cannot "mis-speculate" the way a
      // stale training profile can).
      double layout_effect =
          object.codegen.layout_optimized
              ? 0.30 * std::max(0.0, std::min(1.0, kernel.pgo_response))
              : 0.0;
      t.branch = work * kernel.frac_branch * system_.branch_cost / compute_speed *
                 std::max(0.0, 1.0 - pgo_effect) * (1.0 - layout_effect);

      // Communication: absent on a single node; grows logarithmically with
      // the job size, divided by the fastest fabric the MPI library drives.
      if (kernel.frac_comm > 0 && nodes > 1) {
        double fabric = 1.0;
        auto it = loaded.find("mpi");
        if (it != loaded.end()) {
          for (const auto& [name, speed] : system_.fabric_speed) {
            if (it->second.attribute("fabric_" + name, 0.0) > 0) {
              fabric = std::max(fabric, speed);
            }
          }
          // An MPI with no plugin for any local fabric falls back to TCP.
          auto tcp = system_.fabric_speed.find("tcp");
          if (fabric == 1.0 && tcp != system_.fabric_speed.end()) fabric = tcp->second;
        }
        t.comm = kernel.work * weight * request.input_scale * kernel.frac_comm *
                 system_.comm_cost * std::log2(static_cast<double>(nodes)) / fabric;
      }

      // Instrumentation slows everything down a little.
      double instrumented = object.codegen.pgo_instrumented ? 1.18 : 1.0;
      double kernel_total = t.total() * instrumented;

      report.breakdown.scalar += t.scalar * instrumented;
      report.breakdown.vector += t.vector * instrumented;
      report.breakdown.memory += t.memory * instrumented;
      report.breakdown.library += t.library * instrumented;
      report.breakdown.call += t.call * instrumented;
      report.breakdown.branch += t.branch * instrumented;
      report.breakdown.comm += t.comm * instrumented;
      report.kernel_seconds[kernel.name] += kernel_total;
    }
  }

  report.seconds = report.breakdown.total();

  // Instrumented binaries emit profile data: per-kernel hotness shares.
  if (exe.codegen.pgo_instrumented && report.seconds > 0) {
    std::map<std::string, double> weights;
    for (const auto& [name, seconds] : report.kernel_seconds) {
      weights[name] = seconds / report.seconds;
    }
    report.profile_blob = toolchain::serialize_profile(weights);
  }
  return report;
}

}  // namespace comt::sysmodel
