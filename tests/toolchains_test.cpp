#include <gtest/gtest.h>

#include "toolchain/toolchains.hpp"

namespace comt::toolchain {
namespace {

TEST(RegistryTest, BuiltinsPresent) {
  const ToolchainRegistry& registry = ToolchainRegistry::builtin();
  for (const char* id : {"gnu-generic", "llvm", "vendor-x86", "vendor-aarch64"}) {
    EXPECT_NE(registry.find(id), nullptr) << id;
  }
  EXPECT_EQ(registry.find("tcc"), nullptr);
  EXPECT_EQ(registry.ids().size(), 4u);
}

TEST(RegistryTest, VendorCompilersAreArchBound) {
  const ToolchainRegistry& registry = ToolchainRegistry::builtin();
  EXPECT_EQ(registry.find("gnu-generic")->target_arch, "any");
  EXPECT_EQ(registry.find("vendor-x86")->target_arch, "amd64");
  EXPECT_EQ(registry.find("vendor-aarch64")->target_arch, "arm64");
}

TEST(RegistryTest, CodegenQualityOrdering) {
  const ToolchainRegistry& registry = ToolchainRegistry::builtin();
  const Toolchain* gnu = registry.find("gnu-generic");
  const Toolchain* llvm = registry.find("llvm");
  const Toolchain* vendor = registry.find("vendor-x86");
  // At -O3: distro < LLVM < vendor (the artifact's "diminished with LLVM").
  EXPECT_LT(gnu->codegen[3], llvm->codegen[3]);
  EXPECT_LT(llvm->codegen[3], vendor->codegen[3]);
  // Quality increases with -O level for every toolchain.
  for (const char* id : {"gnu-generic", "llvm", "vendor-x86", "vendor-aarch64"}) {
    const Toolchain* tc = registry.find(id);
    EXPECT_LT(tc->codegen[0], tc->codegen[1]) << id;
    EXPECT_LT(tc->codegen[1], tc->codegen[2]) << id;
    EXPECT_LE(tc->codegen[2], tc->codegen[3]) << id;
  }
}

TEST(ToolchainTest, LanesLookup) {
  const Toolchain* vendor = ToolchainRegistry::builtin().find("vendor-x86");
  EXPECT_EQ(vendor->lanes_for("x86-64"), 2);
  EXPECT_EQ(vendor->lanes_for("x86-64-v4"), 8);
  EXPECT_EQ(vendor->lanes_for("native"), 8);
  EXPECT_EQ(vendor->lanes_for(""), vendor->lanes_for(vendor->default_march));
  // Unknown march falls back to the default's width.
  EXPECT_EQ(vendor->lanes_for("riscv-rv64"), vendor->lanes_for(vendor->default_march));
}

TEST(ToolchainTest, MarchSupport) {
  const Toolchain* gnu = ToolchainRegistry::builtin().find("gnu-generic");
  EXPECT_TRUE(gnu->supports("x86-64-v3"));
  EXPECT_FALSE(gnu->supports("x86-64-v4"));  // distro compiler stops short
  EXPECT_TRUE(gnu->supports(""));
  EXPECT_TRUE(gnu->supports("native"));
  const Toolchain* vendor = ToolchainRegistry::builtin().find("vendor-x86");
  EXPECT_TRUE(vendor->supports("x86-64-v4"));
}

TEST(ToolchainTest, ResolveMarch) {
  const Toolchain* gnu = ToolchainRegistry::builtin().find("gnu-generic");
  EXPECT_EQ(gnu->resolve_march(""), "x86-64");
  EXPECT_EQ(gnu->resolve_march("native"), "x86-64-v3");
  EXPECT_EQ(gnu->resolve_march("x86-64-v2"), "x86-64-v2");
  const Toolchain* arm = ToolchainRegistry::builtin().find("vendor-aarch64");
  EXPECT_EQ(arm->resolve_march(""), "armv8.2-a+sve");
}

TEST(StubTest, RoundTrip) {
  std::string stub = make_toolchain_stub("vendor-x86");
  EXPECT_EQ(parse_toolchain_stub(stub), "vendor-x86");
  EXPECT_EQ(parse_toolchain_stub("#!/bin/sh\necho hi\n"), "");
  EXPECT_EQ(parse_toolchain_stub(""), "");
  // Trailing content after the first line is ignored.
  EXPECT_EQ(parse_toolchain_stub(stub + "extra lines\n"), "vendor-x86");
}

}  // namespace
}  // namespace comt::toolchain
