// Minimal POSIX-shell front end used for RUN instructions: tokenization with
// quoting, $VAR / ${VAR} expansion, and command lists joined by `&&` and `;`.
// There is no globbing, piping or redirection — the build scripts the
// workloads use (and the ones the paper's hijacker records) don't need them,
// and keeping the grammar small keeps the recorded build process exact.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace comt::shell {

/// Environment for expansion: name -> value.
using Environment = std::map<std::string, std::string>;

/// One simple command: argv[0] is the program.
struct Command {
  std::vector<std::string> argv;
  /// True when this command's success gates the next one (`a && b`), false
  /// for unconditional sequencing (`a ; b`).
  bool and_next = false;
};

/// Splits a line into words, honoring single quotes (literal), double quotes
/// (allow expansion) and backslash escapes. `$NAME`/`${NAME}` are expanded
/// from `env` outside single quotes; undefined variables expand to "".
Result<std::vector<std::string>> tokenize(std::string_view line, const Environment& env);

/// Parses a full command line into a `&&`/`;` list of simple commands.
Result<std::vector<Command>> parse_command_list(std::string_view line, const Environment& env);

/// Expands $VAR and ${VAR} in `text` (no quoting rules; used for Dockerfile
/// instruction arguments, which have their own quoting already applied).
std::string expand_variables(std::string_view text, const Environment& env);

}  // namespace comt::shell
