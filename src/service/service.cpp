#include "service/service.hpp"

#include <chrono>
#include <cmath>
#include <optional>
#include <thread>
#include <utility>

#include "json/json.hpp"
#include "obs/stopwatch.hpp"

namespace comt::service {
namespace {

/// Local tag a job pulls the extended image under inside its private
/// workspace; comtainer_rebuild derives "work+coMre" from it.
constexpr std::string_view kWorkTag = "work+coM";
constexpr std::string_view kWorkRebuiltTag = "work+coMre";

/// Deterministic jitter in [0, 1): splitmix64 finalizer over (ticket, attempt).
/// No global RNG — the same job retries with the same delays on every run.
double jitter01(std::uint64_t ticket, int attempt) {
  std::uint64_t x = ticket * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(attempt);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Transient failures are retried; everything else (not_found, corrupt,
/// unsupported, …) is a property of the request and permanent.
bool is_retryable(const Error& error) { return error.code == Errc::failed; }

/// Journal-store key of a request: one journal per (image reference, system).
std::string journal_key(const SubmitRequest& request) {
  return request.name + ":" + request.tag + "|" + request.system;
}

/// The submit request, serialized into the journal metadata so recover() on a
/// later service incarnation can rebuild and resubmit it.
std::string request_metadata(const SubmitRequest& request) {
  json::Object object;
  object.emplace_back("name", json::Value(request.name));
  object.emplace_back("tag", json::Value(request.tag));
  object.emplace_back("system", json::Value(request.system));
  object.emplace_back("priority",
                      json::Value(static_cast<double>(static_cast<int>(request.priority))));
  if (!request.tenant.empty()) object.emplace_back("tenant", json::Value(request.tenant));
  return json::serialize(json::Value(std::move(object)));
}

bool parse_request_metadata(const std::string& metadata, SubmitRequest& request) {
  auto parsed = json::parse(metadata);
  if (!parsed.ok() || !parsed.value().is_object()) return false;
  for (const auto& [field, value] : parsed.value().as_object()) {
    if (field == "name" && value.is_string()) request.name = value.as_string();
    if (field == "tag" && value.is_string()) request.tag = value.as_string();
    if (field == "system" && value.is_string()) request.system = value.as_string();
    if (field == "tenant" && value.is_string()) request.tenant = value.as_string();
    if (field == "priority" && value.is_number()) {
      request.priority = static_cast<Priority>(static_cast<int>(value.as_number()));
    }
  }
  return !request.name.empty() && !request.tag.empty() && !request.system.empty();
}

/// Metric-facing tenant name: the anonymous tenant reads as "default".
std::string tenant_display(const std::string& tenant) {
  return tenant.empty() ? "default" : tenant;
}

/// Pool-size gauge for one system, qualified by replica id when the service
/// runs in a fleet (replicas share one registry, so bare fingerprints would
/// overwrite each other).
std::string workers_gauge_name(const std::string& replica_id,
                               const std::string& fingerprint) {
  std::string name = "service.autoscale.workers.";
  if (!replica_id.empty()) name += replica_id + ".";
  return name + fingerprint;
}

/// Releases the hub pins a journaled attempt takes on its source image — on
/// every exit path, including an injected crash unwinding.
class HubPinGuard {
 public:
  HubPinGuard(registry::Registry& hub, const SubmitRequest& request)
      : hub_(&hub), name_(request.name), tag_(request.tag) {
    pinned_ = hub_->pin(name_, tag_).ok();
  }
  ~HubPinGuard() {
    if (pinned_) (void)hub_->unpin(name_, tag_);
  }
  HubPinGuard(const HubPinGuard&) = delete;
  HubPinGuard& operator=(const HubPinGuard&) = delete;

 private:
  registry::Registry* hub_;
  std::string name_, tag_;
  bool pinned_ = false;
};

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::queued: return "queued";
    case JobState::running: return "running";
    case JobState::succeeded: return "succeeded";
    case JobState::failed: return "failed";
    case JobState::rejected: return "rejected";
    case JobState::throttled: return "throttled";
    case JobState::expired: return "expired";
    case JobState::drained: return "drained";
  }
  return "unknown";
}

bool is_terminal(JobState state) {
  return state != JobState::queued && state != JobState::running;
}

std::string fingerprint(const sysmodel::SystemProfile& profile) {
  return profile.name + "/" + profile.arch + "/" + profile.native_toolchain + "/" +
         profile.native_march;
}

/// One distinct rebuild: possibly many tickets, exactly one execution.
struct RebuildService::Job {
  SubmitRequest request;
  std::string key;     ///< manifest digest + system — the coalescing key
  std::string tenant;  ///< SubmitRequest::tenant, fixed at submission
  std::vector<Ticket> tickets;
  JobState state = JobState::queued;
  Status result;
  std::string output;
  JobTrace trace;
  obs::Stopwatch enqueued;  ///< running since admission; read once at pickup
  obs::Span span;           ///< "service.job", ends when the job finalizes
  std::pair<int, std::uint64_t> queue_key;  ///< position while queued
};

/// One tenant's slice of a system's admission queue, ordered by
/// (priority desc, arrival order) — priority classes hold within a tenant.
struct RebuildService::TenantQueue {
  std::map<std::pair<int, std::uint64_t>, std::shared_ptr<Job>> queue;
  double weight = 1.0;   ///< DRR quantum, refreshed from the policy on enqueue
  double deficit = 0;    ///< accumulated service credit, spent one job at a time
  bool active = false;   ///< currently on the system's DRR ring
};

/// Per-target state: the target config, its worker pool, and its slice of
/// the admission queue — per-tenant queues drained by deficit-weighted
/// round-robin (pick_job_locked).
struct RebuildService::SystemState {
  TargetSystem target;
  std::string fingerprint;
  std::unique_ptr<sched::ThreadPool> pool;
  std::map<std::string, TenantQueue> tenants;
  std::deque<std::string> drr;  ///< round-robin ring of active tenants
  std::size_t queued = 0;       ///< jobs across all tenant queues
  /// Queue wait observed since the autoscaler's previous tick.
  double wait_window_ms = 0;
  std::size_t wait_window_jobs = 0;
  /// Autoscaler hysteresis: ticks to hold after a scale event, and how many
  /// consecutive quiet ticks the backlog has stayed below the down threshold.
  int cooldown_ticks = 0;
  int quiet_ticks = 0;
};

/// Per-tenant admission bookkeeping: the resolved policy plus the token
/// bucket (tokens are submissions; the bucket starts full).
struct RebuildService::TenantState {
  TenantPolicy policy;
  double tokens = 0;
  obs::Stopwatch last_refill;
};

RebuildService::RebuildService(registry::Registry& hub, ServiceOptions options)
    : hub_(hub), options_(std::move(options)) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.workers_per_system == 0) options_.workers_per_system = 1;
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  AutoscaleOptions& scale = options_.autoscale;
  if (scale.min_workers == 0) scale.min_workers = 1;
  if (scale.max_workers < scale.min_workers) scale.max_workers = scale.min_workers;
  if (scale.interval_ms <= 0) scale.interval_ms = 1;
  if (scale.cooldown_periods < 1) scale.cooldown_periods = 1;
  metrics_ = options_.metrics != nullptr ? options_.metrics : &own_metrics_;
  if (options_.journals != nullptr) options_.journals->set_metrics(metrics_);
  // Metrics before attach, so hydrated entries count in compile_cache.*.
  cache_.set_metrics(metrics_);
  if (options_.store != nullptr) cache_.attach(options_.store);
  if (scale.enabled) autoscaler_ = std::thread([this] { autoscale_loop(); });
}

RebuildService::~RebuildService() { drain(); }

Status RebuildService::add_system(std::string fingerprint, TargetSystem target) {
  if (target.profile == nullptr || target.repo == nullptr) {
    return make_error(Errc::invalid_argument,
                      "service: target system needs a profile and a repository");
  }
  COMT_TRY_STATUS(target.base_layout.find_image(target.sysenv_tag));
  std::lock_guard<std::mutex> lock(mutex_);
  if (systems_.count(fingerprint) != 0) {
    return make_error(Errc::already_exists, "service: system already registered: " + fingerprint);
  }
  auto state = std::make_unique<SystemState>();
  state->target = std::move(target);
  state->fingerprint = fingerprint;
  std::size_t workers = options_.workers_per_system;
  std::size_t max_workers = workers;
  if (options_.autoscale.enabled) {
    workers = std::max(options_.autoscale.min_workers,
                       std::min(workers, options_.autoscale.max_workers));
    max_workers = options_.autoscale.max_workers;
  }
  state->pool = std::make_unique<sched::ThreadPool>(workers, max_workers);
  state->pool->set_metrics(metrics_, "service.pool");
  metrics_->gauge(workers_gauge_name(options_.replica_id, fingerprint))
      .set(static_cast<double>(workers));
  systems_.emplace(std::move(fingerprint), std::move(state));
  return Status::success();
}

RebuildService::TenantState& RebuildService::tenant_state_locked(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    auto state = std::make_unique<TenantState>();
    auto policy = options_.tenants.find(tenant);
    state->policy = policy != options_.tenants.end() ? policy->second
                                                    : options_.default_tenant;
    if (state->policy.weight < 0.01) state->policy.weight = 0.01;
    state->tokens = state->policy.quota_burst;  // buckets start full
    it = tenants_.emplace(tenant, std::move(state)).first;
  }
  return *it->second;
}

bool RebuildService::take_quota_token_locked(const std::string& tenant) {
  TenantState& state = tenant_state_locked(tenant);
  if (state.policy.quota_burst <= 0) return true;  // quota disabled
  const double refill =
      state.policy.quota_rate * (state.last_refill.elapsed_ms() / 1000.0);
  state.last_refill.restart();
  state.tokens = std::min(state.policy.quota_burst, state.tokens + refill);
  if (state.tokens < 1.0) return false;
  state.tokens -= 1.0;
  return true;
}

obs::Counter& RebuildService::tenant_counter(const std::string& tenant,
                                             std::string_view which) {
  return metrics_->counter("service.tenant." + tenant_display(tenant) + "." +
                           std::string(which));
}

std::shared_ptr<RebuildService::Job> RebuildService::evict_for_locked(Priority arriving) {
  // Globally worst queued job: the highest queue_key (lowest priority class,
  // newest arrival) across every system's tenant queues.
  SystemState* worst_sys = nullptr;
  TenantQueue* worst_queue = nullptr;
  std::shared_ptr<Job> worst;
  for (auto& [name, sys] : systems_) {
    for (auto& [tenant, tq] : sys->tenants) {
      if (tq.queue.empty()) continue;
      auto last = std::prev(tq.queue.end());
      if (worst == nullptr || last->first > worst->queue_key) {
        worst = last->second;
        worst_queue = &tq;
        worst_sys = sys.get();
      }
    }
  }
  if (worst == nullptr ||
      static_cast<int>(worst->request.priority) >= static_cast<int>(arriving)) {
    return nullptr;
  }
  worst_queue->queue.erase(worst->queue_key);
  --worst_sys->queued;
  --queued_count_;
  return worst;
}

Result<Ticket> RebuildService::submit(const SubmitRequest& request) {
  // Resolve outside the service lock (the hub has its own).
  COMT_TRY(oci::Digest digest, hub_.resolve(request.name, request.tag));

  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) {
    return make_error(Errc::failed, "service: draining, not accepting submissions");
  }
  auto sys_it = systems_.find(request.system);
  if (sys_it == systems_.end()) {
    return make_error(Errc::not_found, "service: unknown target system " + request.system);
  }
  SystemState& sys = *sys_it->second;

  Ticket ticket = next_ticket_++;
  counter("service.submitted").add();
  tenant_counter(request.tenant, "submitted").add();

  // Rate quota first — an over-quota tenant is shed at the front door, before
  // its arrival can even coalesce onto (and thereby ride along with) existing
  // work.
  if (!take_quota_token_locked(request.tenant)) {
    auto job = std::make_shared<Job>();
    job->request = request;
    job->tenant = request.tenant;
    job->tickets = {ticket};
    tickets_[ticket] = TicketRecord{job, /*coalesced=*/false};
    counter("service.throttled").add();
    tenant_counter(request.tenant, "throttled").add();
    finalize_locked(*job, JobState::throttled,
                    make_error(Errc::failed, "service: tenant '" +
                                                 tenant_display(request.tenant) +
                                                 "' over rate quota"));
    return ticket;
  }

  // Coalesce: a queued or running job for the same (image digest, system)
  // serves this ticket too.
  std::string key = digest.value + "|" + request.system;
  if (auto active = active_.find(key); active != active_.end()) {
    active->second->tickets.push_back(ticket);
    tickets_[ticket] = TicketRecord{active->second, /*coalesced=*/true};
    counter("service.coalesced").add();
    return ticket;
  }

  auto job = std::make_shared<Job>();
  job->request = request;
  job->key = key;
  job->tenant = request.tenant;
  job->tickets = {ticket};
  job->span = obs::maybe_span(options_.tracer, "service.job", obs::kNoSpan, "service");
  job->span.annotate("image", request.name + ":" + request.tag);
  job->span.annotate("system", request.system);
  if (!job->tenant.empty()) job->span.annotate("tenant", job->tenant);
  if (!options_.replica_id.empty()) job->span.annotate("replica", options_.replica_id);
  tickets_[ticket] = TicketRecord{job, /*coalesced=*/false};

  // Bounded admission with priority-aware load shedding: a full queue sheds
  // the newest lowest-priority queued job when the arrival outranks it,
  // otherwise the arrival itself.
  if (queued_count_ >= options_.queue_capacity) {
    if (std::shared_ptr<Job> worst = evict_for_locked(request.priority)) {
      counter("service.shed").add();
      tenant_counter(worst->tenant, "shed").add();
      finalize_locked(*worst, JobState::rejected,
                      make_error(Errc::failed,
                                 "service: load shed by a higher-priority arrival"));
    } else {
      counter("service.shed").add();
      tenant_counter(request.tenant, "shed").add();
      finalize_locked(*job, JobState::rejected,
                      make_error(Errc::failed, "service: admission queue full"));
      return ticket;
    }
  }

  counter("service.admitted").add();
  tenant_counter(request.tenant, "admitted").add();
  job->queue_key = {-static_cast<int>(request.priority), next_seq_++};
  TenantQueue& tq = sys.tenants[request.tenant];
  tq.weight = tenant_state_locked(request.tenant).policy.weight;
  tq.queue.emplace(job->queue_key, job);
  if (!tq.active) {
    tq.active = true;
    sys.drr.push_back(request.tenant);
  }
  ++sys.queued;
  ++queued_count_;
  active_[key] = job;
  sys.pool->submit([this, &sys] { run_next(sys); });
  return ticket;
}

std::shared_ptr<RebuildService::Job> RebuildService::pick_job_locked(SystemState& sys) {
  // Deficit round-robin over the active-tenant ring. Each visit grants the
  // tenant its weight in credit; one job costs one credit. A tenant with an
  // empty queue leaves the ring (and forfeits leftover deficit, so an idle
  // tenant cannot bank credit for a later burst). With a single tenant this
  // degenerates to the old strict (priority, arrival) order.
  while (!sys.drr.empty()) {
    const std::string tenant = sys.drr.front();
    TenantQueue& tq = sys.tenants[tenant];
    if (tq.queue.empty()) {
      tq.active = false;
      tq.deficit = 0;
      sys.drr.pop_front();
      continue;
    }
    if (tq.deficit >= 1.0) {
      tq.deficit -= 1.0;
      auto it = tq.queue.begin();
      std::shared_ptr<Job> job = it->second;
      tq.queue.erase(it);
      --sys.queued;
      --queued_count_;
      return job;
    }
    tq.deficit += tq.weight;
    sys.drr.pop_front();
    sys.drr.push_back(tenant);
  }
  return nullptr;
}

void RebuildService::run_next(SystemState& sys) {
  std::shared_ptr<Job> job;
  JobTrace trace;
  Ticket seed = 0;
  obs::SpanId job_span = obs::kNoSpan;
  obs::Stopwatch admitted;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    start_cv_.wait(lock, [this] { return !paused_ || draining_; });
    // The queue may have shrunk under us (eviction, drain): one runner task
    // is submitted per admitted job, so a missing job just means this runner
    // has nothing to do.
    job = pick_job_locked(sys);
    if (job == nullptr) return;
    job->trace.queue_ms = job->enqueued.elapsed_ms();
    metrics_
        ->histogram("service.tenant." + tenant_display(job->tenant) + ".queue_wait_ms")
        .observe(job->trace.queue_ms);
    sys.wait_window_ms += job->trace.queue_ms;
    ++sys.wait_window_jobs;
    if (job->request.deadline_ms > 0 && job->trace.queue_ms > job->request.deadline_ms) {
      counter("service.expired").add();
      finalize_locked(*job, JobState::expired,
                      make_error(Errc::failed, "service: queue-wait deadline exceeded"));
      return;
    }
    job->state = JobState::running;
    ++running_count_;
    // Work on a private copy of the trace: status() snapshots job->trace
    // under the lock while this worker runs. The ticket seeding the backoff
    // jitter is captured here too — the tickets vector can grow concurrently
    // as requests coalesce onto this job.
    trace = job->trace;
    seed = job->tickets.front();
    job_span = job->span.id();
    admitted = job->enqueued;  // the deadline clock, shared with the retry loop
  }

  // The heavy part — no service lock held. job->request/key are immutable
  // after submit, so reading them unlocked is safe.
  Status result = Status::success();
  std::string output;
  bool skip_execute = false;
  bool hold_lease = false;
  std::uint64_t lease_epoch = 0;
  if (options_.coordinator != nullptr) {
    auto grant = options_.coordinator->acquire(job->key);
    if (grant.ok()) {
      trace.lease_wait_ms += grant.value().wait_ms;
      if (grant.value().reuse) {
        // Another replica already built this key; adopt its published image.
        trace.fleet_reuse = true;
        output = grant.value().output;
        skip_execute = true;
        counter("service.fleet_reused").add();
      } else {
        hold_lease = true;
        lease_epoch = grant.value().epoch;
        trace.lease_stolen = grant.value().stolen;
      }
    } else {
      // Coordination failing must never fail the build: degrade to an
      // uncoordinated rebuild. Worst case is a duplicate compile — wasted
      // work, but bit-identical output.
      counter("service.coordinator_errors").add();
    }
  }
  bool deadline_expired = false;
  if (!skip_execute) {
    execute(sys.target, job->request, seed, job_span, admitted, trace, result, output,
            deadline_expired);
  }
  if (hold_lease) {
    if (trace.crashed) {
      // The "process" died at an injected crash site still holding the
      // lease. A dead process releases nothing: the record stays in the
      // store until its TTL lapses and another replica steals it.
    } else {
      options_.coordinator->release(job->key,
                                    result.ok() ? FleetCoordinator::Outcome::succeeded
                                                : FleetCoordinator::Outcome::failed,
                                    output, lease_epoch);
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_count_;
    job->trace = std::move(trace);
    job->output = std::move(output);
    if (result.ok()) {
      counter("service.succeeded").add();
      finalize_locked(*job, JobState::succeeded, Status::success());
    } else if (deadline_expired) {
      counter("service.expired").add();
      finalize_locked(*job, JobState::expired, std::move(result));
    } else {
      counter("service.failed").add();
      if (job->trace.crashed) counter("service.crashed").add();
      finalize_locked(*job, JobState::failed, std::move(result));
    }
  }
}

void RebuildService::execute(const TargetSystem& target, const SubmitRequest& request,
                             Ticket seed, obs::SpanId job_span,
                             const obs::Stopwatch& admitted, JobTrace& trace,
                             Status& result, std::string& output,
                             bool& deadline_expired) {
  Status last = Status::success();
  double prev_delay_ms = 0;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    trace.attempts = attempt;
    obs::Span attempt_span = obs::maybe_span(
        options_.tracer, "attempt:" + std::to_string(attempt), job_span, "service");
    Status status = Status::success();
    try {
      status = attempt_once(target, request, attempt_span.id(), trace, output);
    } catch (const support::CrashInjected& crash) {
      // The in-process stand-in for the rebuild dying (SIGKILL, node loss).
      // No retry: the journal stays in the store, and recover() on the next
      // service incarnation resumes the work from it.
      trace.crashed = true;
      result = make_error(Errc::failed, "service: rebuild crashed at injected site '" +
                                            crash.site + "'; journal retained, " +
                                            "recover() resumes it");
      return;
    }
    if (status.ok()) {
      result = Status::success();
      return;
    }
    last = status;
    if (!is_retryable(status.error()) || attempt == options_.max_attempts) break;

    // Exponential backoff with deterministic jitter. The explicit clamp to
    // the previous delay keeps the sequence monotonically non-decreasing
    // even once the exponential curve saturates at backoff_max_ms.
    double delay = options_.backoff_base_ms * std::pow(2.0, attempt - 1);
    delay = std::min(delay, options_.backoff_max_ms);
    delay *= 1.0 + jitter01(seed, attempt);
    delay = std::max(delay, prev_delay_ms);

    // The deadline spans the whole retry loop, measured from admission: a
    // backoff that would land the next attempt past it expires the job now
    // instead of burning a retry that could never be waited for. The skipped
    // delay is deliberately not recorded in backoff_ms — it was never taken.
    if (request.deadline_ms > 0 && admitted.elapsed_ms() + delay > request.deadline_ms) {
      deadline_expired = true;
      result = make_error(
          Errc::failed,
          "service: retry backoff would overshoot the deadline; expired after " +
              std::to_string(trace.attempts) + " attempt(s): " + last.error().message);
      return;
    }

    prev_delay_ms = delay;
    trace.backoff_ms.push_back(delay);
    attempt_span.annotate("backoff_ms", static_cast<std::uint64_t>(delay * 1000));
    attempt_span.end();  // the backoff sleep is queueing, not attempt work
    if (options_.sleep_on_backoff) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
    }
  }
  result = make_error(
      last.error().code,
      "service: rebuild of " + request.name + ":" + request.tag + " for " +
          request.system + " failed after " + std::to_string(trace.attempts) +
          " attempt(s): " + last.error().message);
}

Status RebuildService::attempt_once(const TargetSystem& target, const SubmitRequest& request,
                                    obs::SpanId attempt_span, JobTrace& trace,
                                    std::string& output) {
  // Every attempt starts from a pristine private workspace, so a failed
  // attempt leaves no partial state behind — the hub only ever sees a
  // complete push. Journaled attempts are the exception by design: committed
  // compile jobs survive in the journal and replay into the next attempt's
  // fresh workspace.
  oci::Layout workspace = target.base_layout;

  std::shared_ptr<durable::Journal> journal;
  std::optional<HubPinGuard> hub_pins;
  if (options_.journals != nullptr) {
    // A metadata conflict (Errc::already_exists) means the key is owned by a
    // different request — not retryable, so it surfaces as a permanent
    // failure rather than stomping the other rebuild's journal.
    COMT_TRY(journal,
             options_.journals->open(journal_key(request), request_metadata(request)));
    // While the journal names this image, the hub must not sweep its blobs —
    // a resume still needs to pull them.
    hub_pins.emplace(hub_, request);
  }

  obs::Span pull_span =
      obs::maybe_span(options_.tracer, "service.pull", attempt_span, "pull");
  obs::Stopwatch pull_clock;
  Status pulled = hub_.pull(request.name, request.tag, workspace, kWorkTag);
  trace.pull_ms += pull_clock.elapsed_ms();
  pull_span.end();
  COMT_TRY_STATUS(pulled);

  core::RebuildOptions options;
  options.system = target.profile;
  options.system_repo = target.repo;
  options.sysenv_tag = target.sysenv_tag;
  options.adapters = target.adapters;
  options.threads = options_.rebuild_threads;
  options.compile_cache = &cache_;
  options.fault_injector = options_.faults;
  options.journal = journal.get();
  if (journal != nullptr) options.journal_metadata = request_metadata(request);
  options.tracer = options_.tracer;
  options.parent_span = attempt_span;
  options.metrics = metrics_;

  obs::Stopwatch rebuild_clock;
  auto report = core::comtainer_rebuild(workspace, kWorkTag, options);
  trace.rebuild_ms += rebuild_clock.elapsed_ms();
  if (!report.ok()) return report.error();
  trace.compile_jobs += report.value().jobs;
  trace.cache_hits += report.value().cache_hits;
  trace.cache_misses += report.value().cache_misses;
  trace.journal_replayed += report.value().journal_replayed;
  trace.journal_committed += report.value().journal_committed;

  std::string output_tag = request.tag + "+coMre." + request.system;
  obs::Span push_span =
      obs::maybe_span(options_.tracer, "service.push", attempt_span, "blob-push");
  obs::Stopwatch push_clock;
  Status pushed = hub_.push(workspace, kWorkRebuiltTag, request.name, output_tag);
  trace.push_ms += push_clock.elapsed_ms();
  push_span.end();
  COMT_TRY_STATUS(pushed);

  // The result is durable downstream; the journal has served its purpose.
  if (options_.journals != nullptr) options_.journals->remove(journal_key(request));

  output = request.name + ":" + output_tag;
  return Status::success();
}

Result<RecoveryReport> RebuildService::recover() {
  RecoveryReport report;
  // The cache hydrated at construction; report it here so one RecoveryReport
  // tells the whole restart story (journals resumed + cache warmth).
  report.cache_entries_recovered = cache_.stats().hydrated;
  // Heal the hub first: a crash mid-push can leave torn blobs behind, and a
  // resumed rebuild is about to pull from it.
  report.fsck = hub_.fsck(/*repair=*/true);
  if (options_.journals == nullptr) return report;
  for (const durable::JournalStore::Entry& entry : options_.journals->list()) {
    ++report.journals_found;
    SubmitRequest request;
    if (!parse_request_metadata(entry.metadata, request)) {
      options_.journals->remove(entry.key);
      ++report.skipped;
      continue;
    }
    auto ticket = submit(request);
    if (!ticket.ok()) {
      // The image or target system is gone — this journal can never be
      // served again.
      options_.journals->remove(entry.key);
      ++report.skipped;
      continue;
    }
    report.resubmitted.push_back(ticket.value());
  }
  return report;
}

void RebuildService::finalize_locked(Job& job, JobState state, Status result) {
  job.state = state;
  job.result = std::move(result);
  // Throttled jobs never entered active_ — their key may belong to a live
  // job other tickets coalesced onto, so only erase an entry this job owns.
  if (auto it = active_.find(job.key); it != active_.end() && it->second.get() == &job) {
    active_.erase(it);
  }
  counter("service.retries").add(job.trace.backoff_ms.size());
  counter("service.cache_hits").add(job.trace.cache_hits);
  counter("service.cache_misses").add(job.trace.cache_misses);
  metrics_->gauge("service.queue_ms").add(job.trace.queue_ms);
  metrics_->gauge("service.pull_ms").add(job.trace.pull_ms);
  metrics_->gauge("service.rebuild_ms").add(job.trace.rebuild_ms);
  metrics_->gauge("service.push_ms").add(job.trace.push_ms);
  job.span.annotate("state", to_string(state));
  job.span.end();
  done_cv_.notify_all();
}

Result<TicketStatus> RebuildService::status(Ticket ticket) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    return make_error(Errc::not_found, "service: unknown ticket " + std::to_string(ticket));
  }
  const Job& job = *it->second.job;
  TicketStatus out;
  out.state = job.state;
  out.result = job.result;
  out.output = job.output;
  out.trace = job.trace;
  out.trace.coalesced = it->second.coalesced;
  return out;
}

Result<TicketStatus> RebuildService::wait(Ticket ticket) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    return make_error(Errc::not_found, "service: unknown ticket " + std::to_string(ticket));
  }
  std::shared_ptr<Job> job = it->second.job;
  bool coalesced = it->second.coalesced;
  done_cv_.wait(lock, [&job] { return is_terminal(job->state); });
  TicketStatus out;
  out.state = job->state;
  out.result = job->result;
  out.output = job->output;
  out.trace = job->trace;
  out.trace.coalesced = coalesced;
  return out;
}

void RebuildService::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void RebuildService::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  start_cv_.notify_all();
}

void RebuildService::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    stop_autoscaler_ = true;
    for (auto& [name, sys] : systems_) {
      // Fail queued jobs in queue order; their runner tasks will pop nothing.
      for (auto& [tenant, tq] : sys->tenants) {
        while (!tq.queue.empty()) {
          std::shared_ptr<Job> job = tq.queue.begin()->second;
          tq.queue.erase(tq.queue.begin());
          --sys->queued;
          --queued_count_;
          counter("service.drained").add();
          finalize_locked(*job, JobState::drained,
                          make_error(Errc::failed, "service: drained while queued"));
        }
      }
    }
  }
  autoscale_cv_.notify_all();
  start_cv_.notify_all();  // wake runners held by pause()
  if (autoscaler_.joinable()) autoscaler_.join();
  for (auto& [name, sys] : systems_) sys->pool->wait_idle();
}

ServiceStats RebuildService::stats() const {
  // The lock orders this snapshot after any finalization that already
  // completed: counter updates happen while the mutex is held, so they are
  // visible to a reader that acquires it afterwards.
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats out;
  out.submitted = metrics_->counter_value("service.submitted");
  out.coalesced = metrics_->counter_value("service.coalesced");
  out.admitted = metrics_->counter_value("service.admitted");
  out.shed = metrics_->counter_value("service.shed");
  out.succeeded = metrics_->counter_value("service.succeeded");
  out.failed = metrics_->counter_value("service.failed");
  out.expired = metrics_->counter_value("service.expired");
  out.drained = metrics_->counter_value("service.drained");
  out.retries = metrics_->counter_value("service.retries");
  out.crashed = metrics_->counter_value("service.crashed");
  out.fleet_reused = metrics_->counter_value("service.fleet_reused");
  out.coordinator_errors = metrics_->counter_value("service.coordinator_errors");
  out.compile_cache_hits = metrics_->counter_value("service.cache_hits");
  out.compile_cache_misses = metrics_->counter_value("service.cache_misses");
  out.compile_cache_inserts = metrics_->counter_value("compile_cache.inserts");
  out.compile_cache_hydrated = metrics_->counter_value("compile_cache.hydrated");
  out.compile_cache_remote_hits = metrics_->counter_value("compile_cache.remote_hits");
  out.throttled = metrics_->counter_value("service.throttled");
  out.scale_ups = metrics_->counter_value("service.autoscale.scale_up");
  out.scale_downs = metrics_->counter_value("service.autoscale.scale_down");
  out.queue_ms = metrics_->gauge_value("service.queue_ms");
  out.pull_ms = metrics_->gauge_value("service.pull_ms");
  out.rebuild_ms = metrics_->gauge_value("service.rebuild_ms");
  out.push_ms = metrics_->gauge_value("service.push_ms");
  for (const auto& [tenant, state] : tenants_) {
    const std::string prefix = "service.tenant." + tenant_display(tenant) + ".";
    TenantStats slice;
    slice.submitted = metrics_->counter_value(prefix + "submitted");
    slice.admitted = metrics_->counter_value(prefix + "admitted");
    slice.shed = metrics_->counter_value(prefix + "shed");
    slice.throttled = metrics_->counter_value(prefix + "throttled");
    slice.p99_queue_wait_ms = metrics_->histogram_percentile(prefix + "queue_wait_ms", 99);
    out.tenants.emplace(tenant_display(tenant), slice);
  }
  return out;
}

void RebuildService::autoscale_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto interval =
      std::chrono::duration<double, std::milli>(options_.autoscale.interval_ms);
  while (!stop_autoscaler_) {
    autoscale_cv_.wait_for(lock, interval, [this] { return stop_autoscaler_; });
    if (stop_autoscaler_) return;
    if (paused_) continue;  // a paused service has a deliberately frozen queue
    lock.unlock();
    autoscale_tick();
    lock.lock();
  }
}

void RebuildService::autoscale_tick() {
  // Decide under the lock, resize outside it: ThreadPool::resize joins
  // retired workers, and a retiring worker may be blocked on mutex_ inside
  // run_next — resizing while holding the lock would deadlock on it.
  struct Decision {
    SystemState* sys;
    std::size_t workers;
    bool up;
  };
  std::vector<Decision> decisions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const AutoscaleOptions& scale = options_.autoscale;
    for (auto& [name, sys] : systems_) {
      const std::size_t workers = sys->pool->size();
      const double depth = static_cast<double>(sys->queued);
      const double mean_wait =
          sys->wait_window_jobs > 0 ? sys->wait_window_ms / sys->wait_window_jobs : 0;
      sys->wait_window_ms = 0;
      sys->wait_window_jobs = 0;
      if (sys->cooldown_ticks > 0) {
        --sys->cooldown_ticks;
        continue;
      }
      const bool pressure =
          depth >= scale.up_backlog_per_worker * static_cast<double>(workers) &&
          depth > 0;
      const bool slow = scale.up_queue_wait_ms > 0 && depth > 0 &&
                        mean_wait >= scale.up_queue_wait_ms;
      if ((pressure || slow) && workers < scale.max_workers) {
        sys->quiet_ticks = 0;
        sys->cooldown_ticks = scale.cooldown_periods;
        decisions.push_back({sys.get(), workers + 1, /*up=*/true});
        continue;
      }
      if (depth <= scale.down_backlog_per_worker * static_cast<double>(workers)) {
        if (++sys->quiet_ticks >= scale.cooldown_periods && workers > scale.min_workers) {
          sys->quiet_ticks = 0;
          sys->cooldown_ticks = scale.cooldown_periods;
          decisions.push_back({sys.get(), workers - 1, /*up=*/false});
        }
      } else {
        sys->quiet_ticks = 0;
      }
    }
  }
  for (const Decision& decision : decisions) {
    decision.sys->pool->resize(decision.workers);
    counter(decision.up ? "service.autoscale.scale_up" : "service.autoscale.scale_down")
        .add();
    metrics_->gauge(workers_gauge_name(options_.replica_id, decision.sys->fingerprint))
        .set(static_cast<double>(decision.workers));
  }
}

std::size_t RebuildService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_count_;
}

std::size_t RebuildService::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_count_;
}

}  // namespace comt::service
