// Crash-resume benchmark: what does durability cost, and what does it save?
//
//  1. Journal overhead on the no-crash path — a rebuild with a write-ahead
//     journal attached vs. the same rebuild without one (best-of-N each). The
//     acceptance bar is < 3% overhead.
//  2. Resume vs. restart — crash the rebuild at ~25/50/75% of its compile
//     jobs, then finish the image either by resuming from the journal or by
//     starting over, and compare wall times.
//
// Output is one JSON document on stdout (see bench/BENCH_crash_resume.json
// for a recorded run).
//
// Usage: crash_resume [--smoke] [--restart-smoke <dir>]
//   --smoke   fewer repetitions, and a nonzero exit when the no-crash journal
//             overhead exceeds the 3% bar (CI-friendly).
//   --restart-smoke <dir>
//             process-restart persistence check: crash a rebuild whose journal
//             and compile cache persist into a DiskStore at <dir>, then rebuild
//             with brand-new store/journal/cache objects over the same
//             directory and require a journal replay, at least one warm
//             compile-cache hit, and a bit-identical image. Nonzero exit on
//             any violation.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "durable/journal.hpp"
#include "sched/compile_cache.hpp"
#include "store/disk.hpp"
#include "support/fault.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

struct World {
  oci::Layout layout;
  std::string extended_tag;
};

int build_world(const sysmodel::SystemProfile& system, World& world) {
  if (!workloads::install_user_images(world.layout, system.arch).ok() ||
      !workloads::install_system_images(world.layout, system).ok()) {
    std::fprintf(stderr, "installing evaluation images failed\n");
    return 1;
  }
  const workloads::AppSpec* app = workloads::find_app("lammps");
  if (app == nullptr) {
    std::fprintf(stderr, "lammps workload missing from corpus\n");
    return 1;
  }
  auto file = dockerfile::parse(workloads::dockerfile_text(*app, system.arch, true));
  if (!file.ok()) {
    std::fprintf(stderr, "dockerfile: %s\n", file.error().to_string().c_str());
    return 1;
  }
  buildexec::ImageBuilder builder(world.layout);
  builder.set_apt_source(&workloads::ubuntu_repo(system.arch));
  buildexec::BuildRecord record;
  auto built = builder.build(file.value(), workloads::build_context(*app), "lammps.dist",
                             "", &record);
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.error().to_string().c_str());
    return 1;
  }
  auto stage = world.layout.find_image("lammps.dist.stage0");
  auto build_rootfs = world.layout.flatten(stage.value());
  auto extended =
      core::comtainer_build(world.layout, "lammps.dist", workloads::base_tag(system.arch),
                            record, build_rootfs.value());
  if (!extended.ok()) {
    std::fprintf(stderr, "comtainer_build: %s\n", extended.error().to_string().c_str());
    return 1;
  }
  world.extended_tag = "lammps.dist+coM";
  return 0;
}

core::RebuildOptions options_for(const sysmodel::SystemProfile& system,
                                 durable::Journal* journal,
                                 support::FaultInjector* faults) {
  core::RebuildOptions options;
  options.system = &system;
  options.system_repo = &workloads::system_repo(system);
  options.sysenv_tag = workloads::sysenv_tag(system);
  options.journal = journal;
  options.fault_injector = faults;
  return options;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

/// --restart-smoke: the storage layer's cross-process story, at the core
/// rebuild level. Everything durable (journal + compile cache) lives in one
/// DiskStore directory; the "process" boundary is the destruction of every
/// in-memory object between the crashed run and the resumed one.
int restart_smoke(const sysmodel::SystemProfile& system, World& world,
                  const std::string& dir) {
  namespace stdfs = std::filesystem;
  std::error_code ec;
  stdfs::remove_all(dir, ec);

  std::string want;
  {
    oci::Layout layout = world.layout;
    auto report = core::comtainer_rebuild(layout, world.extended_tag,
                                          options_for(system, nullptr, nullptr));
    if (!report.ok()) {
      std::fprintf(stderr, "reference rebuild: %s\n",
                   report.error().to_string().c_str());
      return 1;
    }
    want = report.value().image.manifest_digest.value;
  }

  // Incarnation one: crash inside job 2 after its cache entry persisted but
  // before its commit record landed.
  oci::Layout layout = world.layout;
  {
    auto disk = std::make_shared<store::DiskStore>(dir);
    durable::JournalStore journals(disk);
    auto journal = journals.open("restart-smoke", "");
    if (!journal.ok()) {
      std::fprintf(stderr, "journal open: %s\n", journal.error().to_string().c_str());
      return 1;
    }
    sched::CompileCache cache;
    cache.attach(disk);
    support::FaultInjector faults;
    faults.crash_at(core::kCrashJobCommitted, 2);
    core::RebuildOptions options = options_for(system, journal.value().get(), &faults);
    options.compile_cache = &cache;
    bool crashed = false;
    try {
      (void)core::comtainer_rebuild(layout, world.extended_tag, options);
    } catch (const support::CrashInjected&) {
      crashed = true;
    }
    if (!crashed) {
      std::fprintf(stderr, "restart smoke: injected crash did not fire\n");
      return 1;
    }
  }

  // Incarnation two: brand-new objects over the same directory.
  auto disk = std::make_shared<store::DiskStore>(dir);
  durable::JournalStore journals(disk);
  if (journals.hydrated() != 1) {
    std::fprintf(stderr, "restart smoke: expected 1 hydrated journal, got %zu\n",
                 journals.hydrated());
    return 1;
  }
  auto journal = journals.open("restart-smoke", "");
  if (!journal.ok()) {
    std::fprintf(stderr, "journal reopen: %s\n", journal.error().to_string().c_str());
    return 1;
  }
  sched::CompileCache cache;
  if (cache.attach(disk) == 0) {
    std::fprintf(stderr, "restart smoke: no compile-cache entries recovered\n");
    return 1;
  }
  core::RebuildOptions options = options_for(system, journal.value().get(), nullptr);
  options.compile_cache = &cache;
  auto report = core::comtainer_rebuild(layout, world.extended_tag, options);
  if (!report.ok()) {
    std::fprintf(stderr, "resumed rebuild: %s\n", report.error().to_string().c_str());
    return 1;
  }
  if (!report.value().resumed || report.value().journal_replayed == 0) {
    std::fprintf(stderr, "restart smoke: rebuild did not resume from the journal\n");
    return 1;
  }
  if (report.value().cache_hits < 1) {
    std::fprintf(stderr, "restart smoke: no warm compile-cache hit after restart\n");
    return 1;
  }
  if (report.value().image.manifest_digest.value != want) {
    std::fprintf(stderr, "restart smoke: resumed image differs from reference\n");
    return 1;
  }
  (void)journals.remove("restart-smoke");
  stdfs::remove_all(dir, ec);
  std::printf("restart smoke: %zu replayed, %zu warm hits, image bit-identical\n",
              report.value().journal_replayed, report.value().cache_hits);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string restart_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--restart-smoke") == 0 && i + 1 < argc) {
      restart_dir = argv[++i];
    }
  }
  const int repetitions = smoke ? 3 : 7;

  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  World world;
  if (int rc = build_world(system, world); rc != 0) return rc;

  if (!restart_dir.empty()) return restart_smoke(system, world, restart_dir);

  // --- 1. No-crash journal overhead (best-of-N, private layout copies). ---
  double plain_ms = 1e300;
  double journaled_ms = 1e300;
  std::size_t jobs = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    {
      oci::Layout layout = world.layout;
      auto start = std::chrono::steady_clock::now();
      auto report = core::comtainer_rebuild(layout, world.extended_tag,
                                            options_for(system, nullptr, nullptr));
      if (!report.ok()) {
        std::fprintf(stderr, "plain rebuild: %s\n", report.error().to_string().c_str());
        return 1;
      }
      plain_ms = std::min(plain_ms, ms_since(start));
      jobs = report.value().jobs;
    }
    {
      oci::Layout layout = world.layout;
      durable::Journal journal;
      auto start = std::chrono::steady_clock::now();
      auto report = core::comtainer_rebuild(layout, world.extended_tag,
                                            options_for(system, &journal, nullptr));
      if (!report.ok()) {
        std::fprintf(stderr, "journaled rebuild: %s\n",
                     report.error().to_string().c_str());
        return 1;
      }
      journaled_ms = std::min(journaled_ms, ms_since(start));
    }
  }
  const double overhead_pct = (journaled_ms - plain_ms) / plain_ms * 100.0;

  // --- 2. Resume vs. restart at 25/50/75% crash points. ---
  struct Point {
    int percent;
    std::uint64_t crash_call;
    double resume_ms;
    double restart_ms;
    std::size_t replayed;
  };
  std::vector<Point> points;
  for (int percent : {25, 50, 75}) {
    Point point{};
    point.percent = percent;
    point.crash_call = std::max<std::uint64_t>(1, jobs * percent / 100);
    double resume_best = 1e300;
    double restart_best = 1e300;
    for (int rep = 0; rep < repetitions; ++rep) {
      // Crash a journaled rebuild right after `crash_call` jobs committed.
      oci::Layout layout = world.layout;
      durable::Journal journal;
      support::FaultInjector faults;
      faults.crash_at(core::kCrashJournalCommitted, point.crash_call);
      bool crashed = false;
      try {
        (void)core::comtainer_rebuild(layout, world.extended_tag,
                                      options_for(system, &journal, &faults));
      } catch (const support::CrashInjected&) {
        crashed = true;
      }
      if (!crashed) {
        std::fprintf(stderr, "crash injection at %d%% did not fire\n", percent);
        return 1;
      }
      faults.clear_all();

      // Resume: same journal picks up where the crash left off.
      {
        auto start = std::chrono::steady_clock::now();
        auto report = core::comtainer_rebuild(layout, world.extended_tag,
                                              options_for(system, &journal, nullptr));
        if (!report.ok() || !report.value().resumed) {
          std::fprintf(stderr, "resume at %d%% failed\n", percent);
          return 1;
        }
        resume_best = std::min(resume_best, ms_since(start));
        point.replayed = report.value().journal_replayed;
      }
      // Restart: throw the journal away and redo everything.
      {
        oci::Layout fresh = world.layout;
        auto start = std::chrono::steady_clock::now();
        auto report = core::comtainer_rebuild(fresh, world.extended_tag,
                                              options_for(system, nullptr, nullptr));
        if (!report.ok()) {
          std::fprintf(stderr, "restart at %d%% failed\n", percent);
          return 1;
        }
        restart_best = std::min(restart_best, ms_since(start));
      }
    }
    point.resume_ms = resume_best;
    point.restart_ms = restart_best;
    points.push_back(point);
  }

  std::printf("{\n");
  std::printf("  \"workload\": \"%s\",\n", world.extended_tag.c_str());
  std::printf("  \"system\": \"%s\",\n", system.name.c_str());
  std::printf("  \"repetitions\": %d,\n", repetitions);
  std::printf("  \"compile_jobs\": %zu,\n", jobs);
  std::printf("  \"no_crash\": {\"plain_ms\": %.3f, \"journaled_ms\": %.3f, "
              "\"overhead_pct\": %.2f},\n",
              plain_ms, journaled_ms, overhead_pct);
  std::printf("  \"crash_points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::printf("    {\"percent\": %d, \"jobs_committed\": %llu, \"replayed\": %zu, "
                "\"resume_ms\": %.3f, \"restart_ms\": %.3f, \"saved_pct\": %.2f}%s\n",
                p.percent, static_cast<unsigned long long>(p.crash_call), p.replayed,
                p.resume_ms, p.restart_ms,
                (p.restart_ms - p.resume_ms) / p.restart_ms * 100.0,
                i + 1 == points.size() ? "" : ",");
  }
  std::printf("  ]\n}\n");

  if (smoke) {
    // The acceptance bar. Tiny absolute deltas on a fast simulated toolchain
    // can exceed 3% from scheduler noise alone, so allow a 2 ms floor.
    const double delta_ms = journaled_ms - plain_ms;
    if (overhead_pct >= 3.0 && delta_ms >= 2.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: journal overhead %.2f%% (%.3f ms) exceeds the 3%% bar\n",
                   overhead_pct, delta_ms);
      return 1;
    }
    std::printf("smoke: journal overhead %.2f%% — within the 3%% bar\n", overhead_pct);
  }
  return 0;
}
