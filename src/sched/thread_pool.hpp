// Work-stealing thread pool backing the parallel rebuild engine.
//
// Each worker owns a Chase–Lev deque: it pushes and pops its own work at the
// bottom without synchronization against itself, and idle workers steal from
// the top of sibling deques with a single compare-and-swap — the entire
// task-to-task hot path is lock-free. Submissions from pool threads go
// straight into the submitting worker's own deque; submissions from outside
// land in a small mutex-protected injection queue that workers drain in
// chunks into their deques (one lock acquisition amortized over the chunk).
// submit_batch() enqueues a whole wave of tasks under one lock — the
// DagScheduler's epoch mode dispatches each ready-set drain this way.
//
// Idle workers spin briefly over the deques, then park on a condition
// variable; submitters bump an epoch counter and only notify when a sleeper
// is registered, so a saturated pool never touches the parking lock.
// docs/PERFORMANCE.md documents the cost model and the lock hierarchy.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"

namespace comt::sched {

namespace detail {

/// Chase–Lev work-stealing deque of heap-allocated tasks. The owner thread
/// pushes/pops at the bottom; any number of thieves steal at the top. All
/// cross-thread ordering is expressed through seq_cst/acquire/release
/// operations on `top_`/`bottom_` (no standalone fences — ThreadSanitizer
/// models atomics precisely but not fences). The circular array grows on
/// demand; retired arrays are kept until destruction so a thief holding a
/// stale array pointer never reads freed memory.
class StealDeque {
 public:
  using Task = std::function<void()>;

  StealDeque();
  ~StealDeque();
  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only: enqueue at the bottom.
  void push(Task task);

  /// Owner only: dequeue at the bottom (LIFO against push; the last element
  /// races thieves and is resolved by CAS). Returns nullptr when empty.
  Task pop();

  /// Any thread: dequeue at the top (FIFO). Returns nullptr when empty or
  /// when it lost the race for the last element.
  Task steal();

  /// Approximate: may be stale the moment it returns.
  bool empty() const;

 private:
  struct Ring {
    explicit Ring(std::int64_t capacity);
    std::int64_t capacity;  // power of two
    std::unique_ptr<std::atomic<Task*>[]> slots;
    Task* get(std::int64_t index) const {
      return slots[index & (capacity - 1)].load(std::memory_order_relaxed);
    }
    void put(std::int64_t index, Task* task) {
      slots[index & (capacity - 1)].store(task, std::memory_order_relaxed);
    }
  };

  Ring* grow(Ring* ring, std::int64_t top, std::int64_t bottom);

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_;
  std::vector<std::unique_ptr<Ring>> retired_;  // owner-only; freed with *this
};

}  // namespace detail

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1). `max_threads` bounds how far
  /// resize() can ever grow the pool (0 = `threads`, i.e. a fixed pool).
  /// Worker slots — deques included — are allocated for the maximum up
  /// front, so growing never reallocates state a running worker is reading.
  explicit ThreadPool(std::size_t threads, std::size_t max_threads = 0);

  /// Equivalent to shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Current worker target (resize() moves it; retiring workers may still be
  /// finishing their last task when this returns the new value).
  std::size_t size() const { return active_target_.load(std::memory_order_acquire); }
  std::size_t max_size() const { return queues_.size(); }

  /// Retargets the pool to `threads` workers, clamped to [1, max_size()].
  /// Growing joins any previously retired slot and spawns a fresh worker
  /// into it; shrinking parks-and-retires the highest slots — each retiree
  /// finishes its current task and exits, and whatever is left in its deque
  /// stays visible to the survivors' steal scan, so no queued or stolen task
  /// is ever dropped. Safe to call from any non-pool thread; concurrent
  /// resizes serialize. No-op after shutdown().
  void resize(std::size_t threads);

  /// Enqueues a task. From a pool worker this is a lock-free push onto the
  /// worker's own deque; from any other thread the task goes through the
  /// injection queue (one brief lock). No-op after shutdown(); must not race
  /// a concurrent shutdown() call.
  void submit(std::function<void()> task);

  /// Enqueues a whole batch under a single injection-queue lock — the
  /// amortized entry point for wave/epoch dispatch. Empty batches are no-ops.
  void submit_batch(std::vector<std::function<void()>> tasks);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Stops the workers. Tasks already running finish; tasks still queued are
  /// discarded — shutting down under pending work must never hang.
  void shutdown();

  /// Number of tasks that have run to completion.
  std::uint64_t executed() const { return executed_.load(std::memory_order_relaxed); }

  /// Attaches pool instrumentation: every task records its submit-to-start
  /// queue wait in the "<prefix>.queue_wait_ms" histogram and bumps
  /// "<prefix>.tasks"; successful steals bump "<prefix>.steals" and each
  /// worker park (sleep after a fruitless spin) bumps "<prefix>.parks" —
  /// the two contention signals docs/PERFORMANCE.md explains how to read.
  /// Pass nullptr to detach. Safe to call while workers run (the instrument
  /// pointers are atomic); tasks already instrumented keep their snapshot.
  void set_metrics(obs::MetricsRegistry* metrics, std::string_view prefix = "sched.pool");

 private:
  struct Worker {
    detail::StealDeque deque;
  };

  void worker_loop(std::size_t self);
  /// One full scan: own deque, then the injection queue, then siblings.
  std::function<void()> take(std::size_t self);
  std::function<void()> take_injected(std::size_t self);
  void notify_work(std::size_t tasks);
  void finish_task();
  std::function<void()> instrument(std::function<void()> task);

  std::vector<std::unique_ptr<Worker>> queues_;  ///< max_size() slots, fixed
  std::vector<std::thread> workers_;             ///< one (re)spawnable per slot

  // Dynamic sizing: workers with index >= active_target_ retire after their
  // current task. resize() serializes against itself and shutdown().
  std::atomic<std::size_t> active_target_{0};
  std::mutex resize_mutex_;

  // External submissions; workers move chunks into their own deques.
  std::mutex inject_mutex_;
  std::deque<std::function<void()>> injected_;

  // Parking: work_epoch_ counts "work may have arrived" events; a worker
  // records the epoch, rescans, and only sleeps if the epoch is unchanged
  // under park_mutex_ — submitters bump the epoch first and lock only when
  // sleepers_ is nonzero, so the uncontended path never blocks.
  std::mutex park_mutex_;
  std::condition_variable work_available_;
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<std::size_t> sleepers_{0};

  // Idle tracking: outstanding_ counts queued + running tasks.
  std::mutex idle_mutex_;
  std::condition_variable all_done_;
  std::atomic<std::int64_t> outstanding_{0};

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> executed_{0};
  // Resolved in set_metrics; atomic because workers may already be running
  // (instruments themselves live in the registry and are never destroyed
  // while it exists).
  std::atomic<obs::Histogram*> queue_wait_ms_{nullptr};
  std::atomic<obs::Counter*> task_counter_{nullptr};
  std::atomic<obs::Counter*> steal_counter_{nullptr};
  std::atomic<obs::Counter*> park_counter_{nullptr};
};

}  // namespace comt::sched
