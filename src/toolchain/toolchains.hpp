// Toolchain descriptors and registry.
//
// A Toolchain models one compiler installation: its codegen quality per -O
// level, its aggressiveness (how hard its vendor tuned it, which interacts
// with per-kernel aggressiveness response — positively or negatively), and
// the -march values it understands with their SIMD widths. Compiler binaries
// installed into container filesystems are small stub files whose first line
// names the toolchain id; the build executor resolves the invoked program to
// such a stub and instantiates the driver with the named toolchain.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace comt::toolchain {

struct Toolchain {
  std::string id;               ///< "gnu-generic", "llvm", "vendor-x86", …
  std::string display_name;
  std::string target_arch;      ///< "amd64", "arm64", or "any"
  /// Scalar codegen throughput multiplier at -O0..-O3 (relative to the
  /// generic toolchain at -O2 == 1.0).
  double codegen[4] = {0.4, 0.8, 1.0, 1.05};
  /// Vendor tuning aggressiveness in [0, 1]; effective compute speed is
  /// multiplied by (1 + aggressiveness · kernel.aggr_response) at -O2+.
  double aggressiveness = 0;
  std::string default_march;    ///< used when -march is absent
  /// -march value -> SIMD lanes (in doubles) the generated code exploits.
  std::map<std::string, int> march_lanes;

  /// Lanes for a -march value; "native" resolves to the widest supported.
  /// Unknown values fall back to the default march's width.
  int lanes_for(std::string_view march) const;
  bool supports(std::string_view march) const;
  /// The -march this toolchain uses for `march_flag` ("" = default_march,
  /// "native" = widest).
  std::string resolve_march(std::string_view march_flag) const;
};

/// Magic prefix of compiler stub files installed in images.
inline constexpr std::string_view kToolchainStubMagic = "#!comt-toolchain ";

/// Renders the stub file content for a compiler binary of `toolchain_id`.
std::string make_toolchain_stub(std::string_view toolchain_id);

/// Extracts the toolchain id from a stub file ("" if not a stub).
std::string parse_toolchain_stub(std::string_view content);

/// Registry of known toolchains. The built-ins model the evaluation setup:
///  gnu-generic   — the base image's default GCC (paper: ubuntu toolchain)
///  llvm          — the artifact's freely redistributable LLVM alternative
///  vendor-x86    — the x86 system's proprietary tuned compiler (Intel-like)
///  vendor-aarch64— the AArch64 system's vendor compiler (Phytium-like)
class ToolchainRegistry {
 public:
  static const ToolchainRegistry& builtin();

  const Toolchain* find(std::string_view id) const;
  std::vector<std::string> ids() const;

 private:
  explicit ToolchainRegistry(std::vector<Toolchain> toolchains);
  std::vector<Toolchain> toolchains_;
};

}  // namespace comt::toolchain
