#include "oci/fsck.hpp"

#include <set>

#include "json/json.hpp"

namespace comt::oci {
namespace {

/// Scan result plus the blob digests some reference (index or manifest)
/// reaches — repair treats unreferenced damage as quarantinable orphans.
struct Scan {
  FsckReport report;
  std::set<Digest> referenced;
};

void count(FsckReport& report, const FsckFinding& finding) {
  switch (finding.issue) {
    case FsckIssue::corrupt_blob: ++report.corrupt; break;
    case FsckIssue::truncated_blob: ++report.truncated; break;
    case FsckIssue::missing_blob: ++report.missing; break;
    case FsckIssue::dangling_manifest: ++report.dangling; break;
  }
}

void add_finding(FsckReport& report, FsckFinding finding) {
  count(report, finding);
  report.findings.push_back(std::move(finding));
}

Scan scan_layout(const Layout& layout) {
  Scan scan;
  // Blob digests already reported as damaged, so a blob shared by several
  // manifests (or hit again by the orphan sweep) is found exactly once.
  std::set<Digest> reported;

  auto check_blob = [&](const Descriptor& descriptor, const std::string& context) {
    scan.referenced.insert(descriptor.digest);
    auto content = layout.get_blob(descriptor.digest);
    if (!content.ok()) {
      if (reported.insert(descriptor.digest).second) {
        add_finding(scan.report,
                    {FsckIssue::missing_blob, descriptor.digest, context, FsckAction::none});
      }
      return;
    }
    if (Digest::of_blob(content.value()) == descriptor.digest) return;
    if (!reported.insert(descriptor.digest).second) return;
    // Shorter than the descriptor says: a partially flushed write. Otherwise
    // the length is right (or unknowable) and the bytes are just wrong.
    FsckIssue issue = content.value().size() < descriptor.size
                          ? FsckIssue::truncated_blob
                          : FsckIssue::corrupt_blob;
    add_finding(scan.report, {issue, descriptor.digest, context, FsckAction::none});
  };

  for (const auto& [tag, manifest_digest] : layout.index_entries()) {
    scan.referenced.insert(manifest_digest);
    const std::string context = "tag '" + tag + "'";
    auto manifest_blob = layout.get_blob(manifest_digest);
    bool manifest_ok = manifest_blob.ok() &&
                       Digest::of_blob(manifest_blob.value()) == manifest_digest;
    Result<Manifest> manifest = manifest_ok
                                    ? [&]() -> Result<Manifest> {
                                        COMT_TRY(json::Value doc, json::parse(manifest_blob.value()));
                                        return Manifest::from_json(doc);
                                      }()
                                    : make_error(Errc::corrupt, "manifest blob damaged");
    if (!manifest.ok()) {
      // Missing, damaged or unparseable manifest: the tag dangles. Reported
      // per tag (each needs its own cut), so no blob-level dedup here.
      FsckFinding finding{FsckIssue::dangling_manifest, manifest_digest, context,
                          FsckAction::none};
      finding.tag = tag;
      add_finding(scan.report, std::move(finding));
      reported.insert(manifest_digest);
      continue;
    }
    check_blob(manifest.value().config, context + " config");
    for (std::size_t i = 0; i < manifest.value().layers.size(); ++i) {
      check_blob(manifest.value().layers[i], context + " layer " + std::to_string(i));
    }
  }

  // Orphan sweep: blobs no reference vouches for still must hash correctly.
  for (const Digest& digest : layout.blob_digests()) {
    if (scan.referenced.count(digest) != 0 || reported.count(digest) != 0) continue;
    auto content = layout.get_blob(digest);
    if (content.ok() && Digest::of_blob(content.value()) == digest) continue;
    add_finding(scan.report,
                {FsckIssue::corrupt_blob, digest, "unreferenced blob", FsckAction::none});
  }
  return scan;
}

/// Fetches `digest` from the origin and stores it iff the bytes verify.
bool refetch(Layout& layout, const BlobFetcher& origin, const Digest& digest) {
  if (!origin) return false;
  auto fetched = origin(digest);
  if (!fetched.ok()) return false;
  if (Digest::of_blob(fetched.value()) != digest) return false;  // origin lies
  layout.put_blob(std::move(fetched).value(), kMediaTypeLayer);
  return true;
}

}  // namespace

const char* to_string(FsckIssue issue) {
  switch (issue) {
    case FsckIssue::corrupt_blob: return "corrupt-blob";
    case FsckIssue::truncated_blob: return "truncated-blob";
    case FsckIssue::missing_blob: return "missing-blob";
    case FsckIssue::dangling_manifest: return "dangling-manifest";
  }
  return "unknown";
}

FsckReport fsck(const Layout& layout) {
  Scan scan = scan_layout(layout);
  scan.report.remaining = scan.report.findings.size();
  return scan.report;
}

FsckReport fsck_repair(Layout& layout, const BlobFetcher& origin) {
  Scan scan = scan_layout(layout);
  FsckReport& report = scan.report;

  for (FsckFinding& finding : report.findings) {
    switch (finding.issue) {
      case FsckIssue::missing_blob:
        if (refetch(layout, origin, finding.digest)) {
          finding.action = FsckAction::refetched;
          ++report.refetched;
        }
        break;
      case FsckIssue::corrupt_blob:
      case FsckIssue::truncated_blob: {
        const bool orphan = scan.referenced.count(finding.digest) == 0;
        // Referenced damage wants the true bytes back; orphaned damage is
        // quarantined. Healing in place is allowed even for pinned blobs
        // (the digest's true content is exactly what the pin protects), but
        // a pinned blob is never dropped.
        if (!orphan && refetch(layout, origin, finding.digest)) {
          finding.action = FsckAction::refetched;
          ++report.refetched;
        } else if (!layout.is_pinned(finding.digest) &&
                   layout.remove_blob(finding.digest) > 0) {
          finding.action = FsckAction::dropped;
          ++report.dropped;
        }
        break;
      }
      case FsckIssue::dangling_manifest:
        if (refetch(layout, origin, finding.digest)) {
          finding.action = FsckAction::refetched;
          ++report.refetched;
        } else if (layout.remove_tag(finding.tag)) {
          finding.action = FsckAction::dropped;
          ++report.dropped;
        }
        break;
    }
  }

  report.remaining = scan_layout(layout).report.findings.size();
  return report;
}

}  // namespace comt::oci
