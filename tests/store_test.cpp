#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "obs/metrics.hpp"
#include "store/cas.hpp"
#include "store/disk.hpp"
#include "store/remote.hpp"
#include "store/sharded.hpp"
#include "store/store.hpp"
#include "store/wire.hpp"
#include "support/fault.hpp"
#include "support/sha256.hpp"

namespace comt::store {
namespace {

namespace stdfs = std::filesystem;

/// Unique temp directory per test, removed on teardown.
class StoreDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = stdfs::temp_directory_path() /
           (std::string("comt-store-") + info->name());
    stdfs::remove_all(dir_);
  }
  void TearDown() override { stdfs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }
  stdfs::path dir_;
};

// ---------------------------------------------------------------------------
// Conformance: every backend honours the same KvStore contract.

void exercise_kv_contract(KvStore& kv) {
  // Empty store.
  EXPECT_FALSE(kv.contains("a"));
  EXPECT_EQ(kv.get("a").error().code, Errc::not_found);
  EXPECT_EQ(kv.size("a").error().code, Errc::not_found);
  EXPECT_TRUE(kv.list().empty());
  EXPECT_TRUE(kv.erase("a").ok());  // erase is idempotent

  // Put / get round-trip, including binary values with NUL bytes.
  const std::string binary("\x00\x01\xFFpayload\n", 11);
  ASSERT_TRUE(kv.put("a", "alpha").ok());
  ASSERT_TRUE(kv.put("dir/b", binary).ok());
  ASSERT_TRUE(kv.put("dir/sub/c", "").ok());
  EXPECT_EQ(kv.get("a").value(), "alpha");
  EXPECT_EQ(kv.get("dir/b").value(), binary);
  EXPECT_EQ(kv.get("dir/sub/c").value(), "");
  EXPECT_EQ(kv.size("dir/b").value(), binary.size());
  EXPECT_TRUE(kv.contains("dir/sub/c"));

  // Replace.
  ASSERT_TRUE(kv.put("a", "alpha2").ok());
  EXPECT_EQ(kv.get("a").value(), "alpha2");

  // list() is sorted and prefix-filtered.
  auto all = kv.list();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].key, "a");
  EXPECT_EQ(all[1].key, "dir/b");
  EXPECT_EQ(all[2].key, "dir/sub/c");
  EXPECT_EQ(all[1].size, binary.size());
  auto under_dir = kv.list("dir/");
  ASSERT_EQ(under_dir.size(), 2u);
  EXPECT_EQ(under_dir[0].key, "dir/b");

  // Invalid keys are rejected, not mangled.
  EXPECT_EQ(kv.put("", "x").error().code, Errc::invalid_argument);
  EXPECT_EQ(kv.get("").error().code, Errc::invalid_argument);

  // Erase really removes.
  ASSERT_TRUE(kv.erase("dir/b").ok());
  EXPECT_FALSE(kv.contains("dir/b"));
  EXPECT_EQ(kv.list("dir/").size(), 1u);

  EXPECT_TRUE(kv.sync().ok());
}

TEST(MemStoreTest, HonoursKvContract) {
  MemStore kv;
  exercise_kv_contract(kv);
}

TEST_F(StoreDirTest, DiskStoreHonoursKvContract) {
  DiskStore kv(dir());
  exercise_kv_contract(kv);
}

TEST_F(StoreDirTest, DiskStoreUnframedHonoursKvContract) {
  DiskStore kv(dir(), DiskStore::Options{/*framed=*/false});
  exercise_kv_contract(kv);
}

// ---------------------------------------------------------------------------
// DiskStore specifics.

TEST_F(StoreDirTest, ValuesSurviveReopen) {
  {
    DiskStore kv(dir());
    ASSERT_TRUE(kv.put("journal/org/app:1.0|x86", "state").ok());
    ASSERT_TRUE(kv.sync().ok());
  }
  DiskStore reopened(dir());
  EXPECT_EQ(reopened.get("journal/org/app:1.0|x86").value(), "state");
  auto listed = reopened.list("journal/");
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].key, "journal/org/app:1.0|x86");
}

TEST_F(StoreDirTest, HostileKeysRoundTripThroughTheFilesystem) {
  DiskStore kv(dir());
  // ':', '|', '+', '%', spaces, dot-only segments, UTF-8 — every byte a
  // journal key or tag can carry must survive encode → file → decode.
  const std::vector<std::string> keys = {
      "org/app:1.0+coM|x86",
      "with space/and%percent",
      "../../escape attempt",  // encoded, cannot traverse out of the root
      ".",
      "tricky/..",
      "caf\xC3\xA9/\xE2\x98\x83",
  };
  for (const std::string& key : keys) {
    ASSERT_TRUE(kv.put(key, "v:" + key).ok()) << key;
  }
  for (const std::string& key : keys) {
    EXPECT_EQ(kv.get(key).value(), "v:" + key) << key;
  }
  auto listed = kv.list();
  ASSERT_EQ(listed.size(), keys.size());
  // Every file stayed inside the root (the ".." segments were encoded).
  EXPECT_FALSE(stdfs::exists(dir_.parent_path() / "escape attempt"));
}

TEST_F(StoreDirTest, OpeningMissingDirectoryHasNoSideEffects) {
  DiskStore kv(dir());
  EXPECT_TRUE(kv.list().empty());
  EXPECT_FALSE(kv.contains("x"));
  EXPECT_FALSE(stdfs::exists(dir_));  // still nothing on disk
  ASSERT_TRUE(kv.put("x", "1").ok());
  EXPECT_TRUE(stdfs::exists(dir_));  // created lazily by the first put
}

TEST_F(StoreDirTest, TruncatedValueIsCorruptNotWrongBytes) {
  DiskStore kv(dir());
  ASSERT_TRUE(kv.put("victim", "payload-that-matters").ok());
  // Truncate the file mid-payload, like a torn flush.
  auto files = kv.list();
  ASSERT_EQ(files.size(), 1u);
  const stdfs::path file = dir_ / "victim";
  ASSERT_TRUE(stdfs::exists(file));
  stdfs::resize_file(file, stdfs::file_size(file) / 2);
  auto result = kv.get("victim");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::corrupt);

  // Truncating into the frame header is also corrupt, not a crash.
  stdfs::resize_file(file, 3);
  EXPECT_EQ(kv.get("victim").error().code, Errc::corrupt);
}

TEST_F(StoreDirTest, BitFlippedValueIsCorrupt) {
  DiskStore kv(dir());
  ASSERT_TRUE(kv.put("victim", "payload-that-matters").ok());
  const stdfs::path file = dir_ / "victim";
  std::string raw;
  {
    std::ifstream in(file, std::ios::binary);
    raw.assign((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  }
  raw[raw.size() - 1] ^= 0x01;  // flip one payload bit
  std::ofstream(file, std::ios::binary | std::ios::trunc) << raw;
  auto result = kv.get("victim");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::corrupt);
}

TEST_F(StoreDirTest, UnframedModeReturnsDamagedBytesVerbatim) {
  // Unframed stores carry externally verified formats (OCI blobs); the store
  // itself must hand back whatever is on disk.
  DiskStore kv(dir(), DiskStore::Options{/*framed=*/false});
  ASSERT_TRUE(kv.put("blob", "original").ok());
  std::ofstream(dir_ / "blob", std::ios::binary | std::ios::trunc) << "tampered";
  EXPECT_EQ(kv.get("blob").value(), "tampered");
}

TEST_F(StoreDirTest, TornPutCrashesAndLeavesDetectablePrefix) {
  DiskStore kv(dir());
  support::FaultInjector faults;
  kv.set_fault_injector(&faults);
  ASSERT_TRUE(kv.put("ok", "untouched").ok());
  faults.tear_next(std::string(kStorePutSite));
  EXPECT_THROW((void)kv.put("torn", "this write dies midway"), support::CrashInjected);
  // The next incarnation sees the torn key as corrupt — never as a complete
  // value — and every other key intact.
  DiskStore next(dir());
  EXPECT_EQ(next.get("torn").error().code, Errc::corrupt);
  EXPECT_EQ(next.get("ok").value(), "untouched");
}

TEST_F(StoreDirTest, MetricsCountOperations) {
  DiskStore kv(dir());
  obs::MetricsRegistry metrics;
  kv.set_observer(nullptr, &metrics);
  ASSERT_TRUE(kv.put("k", "12345").ok());
  ASSERT_TRUE(kv.get("k").ok());
  ASSERT_TRUE(kv.erase("k").ok());
  ASSERT_TRUE(kv.sync().ok());
  EXPECT_EQ(metrics.counter_value("store.puts"), 1u);
  EXPECT_EQ(metrics.counter_value("store.put_bytes"), 5u);
  EXPECT_EQ(metrics.counter_value("store.gets"), 1u);
  EXPECT_EQ(metrics.counter_value("store.get_bytes"), 5u);
  EXPECT_EQ(metrics.counter_value("store.erases"), 1u);
  EXPECT_EQ(metrics.counter_value("store.syncs"), 1u);
  EXPECT_EQ(metrics.counter_value("store.corrupt"), 0u);
}

// ---------------------------------------------------------------------------
// CasStore.

TEST(CasStoreTest, PutReturnsContentAddressAndGetVerifies) {
  CasStore cas(std::make_shared<MemStore>(), "blobs/");
  auto digest = cas.put("layer bytes");
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(digest.value(), "sha256:" + Sha256::hex_digest("layer bytes"));
  EXPECT_TRUE(cas.contains(digest.value()));
  EXPECT_EQ(cas.get(digest.value()).value(), "layer bytes");
  EXPECT_EQ(cas.count(), 1u);
  EXPECT_EQ(cas.total_bytes(), std::string("layer bytes").size());

  // The backend key is the OCI blobs/ layout.
  EXPECT_TRUE(cas.backend().contains(
      "blobs/sha256/" + Sha256::hex_digest("layer bytes")));
}

TEST(CasStoreTest, GetRefusesBytesThatNoLongerMatchTheirAddress) {
  CasStore cas(std::make_shared<MemStore>());
  auto digest = cas.put("good").value();
  ASSERT_TRUE(cas.put_at(digest, "evil").ok());  // bit-rot stand-in
  auto verified = cas.get(digest);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, Errc::corrupt);
  // fsck-style callers still read the damaged bytes explicitly.
  EXPECT_EQ(cas.get_unverified(digest).value(), "evil");
}

TEST(CasStoreTest, MalformedDigestsAreRejected) {
  CasStore cas(std::make_shared<MemStore>());
  EXPECT_EQ(cas.get("md5:abc").error().code, Errc::invalid_argument);
  EXPECT_EQ(cas.get("sha256").error().code, Errc::invalid_argument);
  EXPECT_EQ(cas.get("missing-prefix").error().code, Errc::invalid_argument);
}

TEST(CasStoreTest, EraseReportsFreedBytes) {
  CasStore cas(std::make_shared<MemStore>());
  auto digest = cas.put("12345678").value();
  EXPECT_EQ(cas.erase(digest), 8u);
  EXPECT_EQ(cas.erase(digest), 0u);  // already gone
  EXPECT_FALSE(cas.contains(digest));
  EXPECT_EQ(cas.get(digest).error().code, Errc::not_found);
}

TEST(CasStoreTest, DigestsAreSortedAndScopedToPrefix) {
  auto backend = std::make_shared<MemStore>();
  CasStore cas(backend, "blobs/");
  ASSERT_TRUE(backend->put("unrelated/key", "x").ok());  // other keyspace
  auto d1 = cas.put("aaa").value();
  auto d2 = cas.put("bbb").value();
  auto digests = cas.digests();
  ASSERT_EQ(digests.size(), 2u);
  EXPECT_TRUE(std::is_sorted(digests.begin(), digests.end()));
  EXPECT_TRUE(digests[0] == d1 || digests[0] == d2);
}

TEST_F(StoreDirTest, CasOverDiskSurvivesReopen) {
  std::string digest;
  {
    CasStore cas(std::make_shared<DiskStore>(dir()), "blobs/");
    digest = cas.put("persisted layer").value();
  }
  CasStore reopened(std::make_shared<DiskStore>(dir()), "blobs/");
  EXPECT_EQ(reopened.get(digest).value(), "persisted layer");
  EXPECT_EQ(reopened.count(), 1u);
}

// ---------------------------------------------------------------------------
// Wire codec (shared with the journal).

TEST(WireTest, RoundTripsAndBoundsChecks) {
  std::string buffer;
  wire::put_u32(buffer, 0xDEADBEEFu);
  wire::put_u64(buffer, 0x0123456789ABCDEFull);
  wire::put_str(buffer, "hello");
  wire::Reader reader{buffer};
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.str(), "hello");
  EXPECT_TRUE(reader.ok);
  EXPECT_TRUE(reader.at_end());
  // Reading past the end trips ok instead of walking off the buffer.
  EXPECT_EQ(reader.u32(), 0u);
  EXPECT_FALSE(reader.ok);
}

TEST(WireTest, ChecksumDetectsSingleBitFlips) {
  const std::string payload = "some journal record payload";
  const std::uint64_t checksum = wire::fnv1a64(payload);
  std::string flipped = payload;
  flipped[5] ^= 0x10;
  EXPECT_NE(wire::fnv1a64(flipped), checksum);
}

// ---------------------------------------------------------------------------
// compare_and_put — the lease protocol's primitive, on every backend.

void exercise_cas_contract(KvStore& kv) {
  // Claim an absent key.
  EXPECT_TRUE(kv.compare_and_put("lease", std::nullopt, "v1").value());
  EXPECT_EQ(kv.get("lease").value(), "v1");
  // A second absent-claim loses.
  EXPECT_FALSE(kv.compare_and_put("lease", std::nullopt, "v1b").value());
  EXPECT_EQ(kv.get("lease").value(), "v1");
  // Swap on the exact current value.
  EXPECT_TRUE(kv.compare_and_put("lease", std::optional<std::string>("v1"), "v2").value());
  EXPECT_EQ(kv.get("lease").value(), "v2");
  // Stale expectation loses without touching the value.
  EXPECT_FALSE(kv.compare_and_put("lease", std::optional<std::string>("v1"), "v3").value());
  EXPECT_EQ(kv.get("lease").value(), "v2");
  // Empty keys are rejected like everywhere else.
  EXPECT_EQ(kv.compare_and_put("", std::nullopt, "x").error().code,
            Errc::invalid_argument);
}

TEST(MemStoreTest, CompareAndPutContract) {
  MemStore kv;
  exercise_cas_contract(kv);
}

TEST_F(StoreDirTest, DiskStoreCompareAndPutContract) {
  DiskStore kv(dir());
  exercise_cas_contract(kv);
}

TEST_F(StoreDirTest, CompareAndPutTreatsCorruptValueAsAbsent) {
  DiskStore kv(dir());
  ASSERT_TRUE(kv.put("lease", "torn-lease-record").ok());
  const stdfs::path file = dir_ / "lease";
  stdfs::resize_file(file, stdfs::file_size(file) / 2);
  ASSERT_EQ(kv.get("lease").error().code, Errc::corrupt);
  // A torn lease record must stay claimable, never wedge the key.
  EXPECT_TRUE(kv.compare_and_put("lease", std::nullopt, "fresh").value());
  EXPECT_EQ(kv.get("lease").value(), "fresh");
}

// ---------------------------------------------------------------------------
// ShardedStore.

std::vector<std::shared_ptr<KvStore>> mem_shards(std::size_t n) {
  std::vector<std::shared_ptr<KvStore>> shards;
  for (std::size_t i = 0; i < n; ++i) shards.push_back(std::make_shared<MemStore>());
  return shards;
}

TEST(ShardedStoreTest, HonoursKvContract) {
  ShardedStore kv(mem_shards(3));
  exercise_kv_contract(kv);
}

TEST_F(StoreDirTest, ShardedOverDiskHonoursKvContract) {
  std::vector<std::shared_ptr<KvStore>> shards;
  for (int i = 0; i < 3; ++i) {
    shards.push_back(std::make_shared<DiskStore>(dir() + "/shard" + std::to_string(i)));
  }
  ShardedStore kv(std::move(shards));
  exercise_kv_contract(kv);
}

TEST(ShardedStoreTest, CompareAndPutContract) {
  ShardedStore kv(mem_shards(3));
  exercise_cas_contract(kv);
}

TEST(ShardedStoreTest, RoutingIsDeterministicAcrossInstances) {
  ShardedStore a(mem_shards(4));
  ShardedStore b(mem_shards(4));
  for (int i = 0; i < 64; ++i) {
    const std::string key = "journal/org/app:" + std::to_string(i) + "|x86";
    EXPECT_EQ(a.shard_of(key), b.shard_of(key)) << key;
  }
}

TEST_F(StoreDirTest, ShardedOverDiskSurvivesReopen) {
  auto open = [&] {
    std::vector<std::shared_ptr<KvStore>> shards;
    for (int i = 0; i < 3; ++i) {
      shards.push_back(
          std::make_shared<DiskStore>(dir() + "/shard" + std::to_string(i)));
    }
    return ShardedStore(std::move(shards));
  };
  {
    ShardedStore kv = open();
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(kv.put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(kv.sync().ok());
  }
  ShardedStore reopened = open();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(reopened.get("k" + std::to_string(i)).value(), "v" + std::to_string(i));
  }
  EXPECT_EQ(reopened.list().size(), 20u);
}

TEST(ShardedStoreTest, KeysSpreadOverShards) {
  auto shards = mem_shards(4);
  ShardedStore kv(shards);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(kv.put("key-" + std::to_string(i), "v").ok());
  }
  std::size_t nonempty = 0;
  for (const auto& shard : shards) nonempty += shard->list().empty() ? 0 : 1;
  // 200 keys over 4 consistent-hash shards: every shard should own some.
  EXPECT_EQ(nonempty, 4u);
}

TEST(ShardedStoreTest, ReshardMovesOnlyReownedKeys) {
  auto shards = mem_shards(2);
  ShardedStore kv(shards);
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(kv.put("key-" + std::to_string(i), std::string(10, 'v')).ok());
  }
  // Grow 2 → 3, reusing the two existing children.
  auto grown = shards;
  grown.push_back(std::make_shared<MemStore>());
  auto report = kv.reshard(grown);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().keys_total, static_cast<std::size_t>(n));
  EXPECT_EQ(report.value().shards_before, 2u);
  EXPECT_EQ(report.value().shards_after, 3u);
  // Consistent hashing: only the keys the new shard took over moved — far
  // fewer than a full reshuffle (which would move ~2/3 of them).
  EXPECT_GT(report.value().keys_moved, 0u);
  EXPECT_LT(report.value().keys_moved, static_cast<std::size_t>(n) / 2);
  EXPECT_EQ(report.value().bytes_moved, report.value().keys_moved * 10);
  // Every key still reads back, and the new shard really owns some.
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(kv.get("key-" + std::to_string(i)).value(), std::string(10, 'v'));
  }
  EXPECT_FALSE(grown[2]->list().empty());
  EXPECT_EQ(kv.list().size(), static_cast<std::size_t>(n));
}

TEST(ShardedStoreTest, PerShardMetricsSumToAggregate) {
  ShardedStore kv(mem_shards(3));
  obs::MetricsRegistry metrics;
  kv.set_observer(nullptr, &metrics);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(kv.put("key-" + std::to_string(i), "v").ok());
    ASSERT_TRUE(kv.get("key-" + std::to_string(i)).ok());
  }
  std::uint64_t shard_puts = 0, shard_gets = 0;
  for (int i = 0; i < 3; ++i) {
    shard_puts += metrics.counter_value("store.shard" + std::to_string(i) + ".puts");
    shard_gets += metrics.counter_value("store.shard" + std::to_string(i) + ".gets");
  }
  EXPECT_EQ(shard_puts, 30u);
  EXPECT_EQ(shard_gets, 30u);
  EXPECT_EQ(metrics.counter_value("store.puts"), 30u);
  EXPECT_EQ(metrics.counter_value("store.gets"), 30u);
}

// ---------------------------------------------------------------------------
// RemoteStore.

TEST(RemoteStoreTest, HonoursKvContract) {
  RemoteStore kv(std::make_shared<MemStore>());
  exercise_kv_contract(kv);
}

TEST_F(StoreDirTest, RemoteOverDiskHonoursKvContract) {
  RemoteStore kv(std::make_shared<DiskStore>(dir()));
  exercise_kv_contract(kv);
}

TEST(RemoteStoreTest, CompareAndPutContract) {
  RemoteStore kv(std::make_shared<MemStore>());
  exercise_cas_contract(kv);
}

TEST_F(StoreDirTest, RemoteOverDiskSurvivesReopen) {
  {
    RemoteStore kv(std::make_shared<DiskStore>(dir()));
    ASSERT_TRUE(kv.put("cache/entry", "compiled-bytes").ok());
    ASSERT_TRUE(kv.sync().ok());
  }
  RemoteStore reopened(std::make_shared<DiskStore>(dir()));
  EXPECT_EQ(reopened.get("cache/entry").value(), "compiled-bytes");
  EXPECT_EQ(reopened.size("cache/entry").value(), std::string("compiled-bytes").size());
}

TEST(RemoteStoreTest, TransientFaultsAreRetriedAway) {
  RemoteStore::Options options;
  options.max_attempts = 3;
  RemoteStore kv(std::make_shared<MemStore>(), options);
  support::FaultInjector faults;
  kv.set_fault_injector(&faults);
  obs::MetricsRegistry metrics;
  kv.set_observer(nullptr, &metrics);

  ASSERT_TRUE(kv.put("k", "v").ok());
  faults.fail_next(std::string(kRemoteGetSite), 2);
  EXPECT_EQ(kv.get("k").value(), "v");  // 2 injected failures absorbed
  EXPECT_EQ(kv.retries(), 2u);
  EXPECT_EQ(metrics.counter_value("store.remote.retries"), 2u);
  EXPECT_EQ(faults.injected(std::string(kRemoteGetSite)), 2u);
}

TEST(RemoteStoreTest, RetryBudgetExhaustionSurfacesTheFault) {
  RemoteStore::Options options;
  options.max_attempts = 3;
  RemoteStore kv(std::make_shared<MemStore>(), options);
  support::FaultInjector faults;
  kv.set_fault_injector(&faults);

  faults.fail_next(std::string(kRemotePutSite), 3);
  auto status = kv.put("k", "v");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::failed);
  EXPECT_FALSE(kv.contains("k"));
  EXPECT_EQ(kv.retries(), 2u);  // two retries, then the third failure surfaced
  EXPECT_EQ(faults.injected(std::string(kRemotePutSite)), 3u);
}

TEST(RemoteStoreTest, TornTransferIsDetectedOnDownload) {
  RemoteStore kv(std::make_shared<MemStore>());
  support::FaultInjector faults;
  kv.set_fault_injector(&faults);
  faults.tear_next(std::string(kRemotePutSite));
  EXPECT_THROW((void)kv.put("upload", "payload that dies mid-flight"),
               support::CrashInjected);
  // The endpoint kept a truncated object; the checksum frame catches it.
  EXPECT_EQ(kv.get("upload").error().code, Errc::corrupt);
  // The armed fault verifiably fired.
  EXPECT_GE(faults.injected(std::string(kRemotePutSite)), 1u);
}

TEST(RemoteStoreTest, LatencyInjectionDelaysOperations) {
  RemoteStore::Options options;
  options.get_latency = std::chrono::microseconds(2000);
  RemoteStore kv(std::make_shared<MemStore>(), options);
  ASSERT_TRUE(kv.put("k", "v").ok());
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(kv.get("k").ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::microseconds(2000));
}

TEST(RemoteStoreTest, ConformsOverShardedBacking) {
  // The deployment stack: remote endpoint in front of a sharded substrate.
  RemoteStore kv(std::make_shared<ShardedStore>(mem_shards(3)));
  exercise_kv_contract(kv);
}

TEST(RemoteStoreBreakerTest, ConsecutiveFailuresTripTheBreaker) {
  RemoteStore::Options options;
  options.max_attempts = 1;  // every injected fault is a failed operation
  options.breaker_threshold = 3;
  options.breaker_cooldown = std::chrono::hours(1);  // stays open for the test
  RemoteStore kv(std::make_shared<MemStore>(), options);
  support::FaultInjector faults;
  kv.set_fault_injector(&faults);
  obs::MetricsRegistry metrics;
  kv.set_observer(nullptr, &metrics);

  ASSERT_TRUE(kv.put("k", "v").ok());
  EXPECT_EQ(kv.breaker_state(), RemoteStore::BreakerState::closed);

  faults.fail_next(std::string(kRemoteGetSite), 3);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(kv.get("k").ok());
  EXPECT_EQ(kv.breaker_state(), RemoteStore::BreakerState::open);
  EXPECT_EQ(metrics.counter_value("store.remote.breaker.opens"), 1u);

  // Open breaker fails fast without consuming fault-injector events — the
  // endpoint is not even contacted.
  const std::uint64_t injected_before = faults.injected(std::string(kRemoteGetSite));
  EXPECT_FALSE(kv.get("k").ok());
  EXPECT_FALSE(kv.put("k2", "v2").ok());
  EXPECT_EQ(faults.injected(std::string(kRemoteGetSite)), injected_before);
  EXPECT_EQ(kv.breaker_fast_fails(), 2u);
  EXPECT_EQ(metrics.counter_value("store.remote.breaker.fast_fails"), 2u);
}

TEST(RemoteStoreBreakerTest, SuccessesResetTheConsecutiveCount) {
  RemoteStore::Options options;
  options.max_attempts = 1;
  options.breaker_threshold = 3;
  RemoteStore kv(std::make_shared<MemStore>(), options);
  support::FaultInjector faults;
  kv.set_fault_injector(&faults);
  ASSERT_TRUE(kv.put("k", "v").ok());

  // fail, fail, success, fail, fail, success … never three in a row.
  for (int round = 0; round < 3; ++round) {
    faults.fail_next(std::string(kRemoteGetSite), 2);
    EXPECT_FALSE(kv.get("k").ok());
    EXPECT_FALSE(kv.get("k").ok());
    EXPECT_TRUE(kv.get("k").ok());
  }
  EXPECT_EQ(kv.breaker_state(), RemoteStore::BreakerState::closed);
}

TEST(RemoteStoreBreakerTest, RecoversThroughHalfOpenProbe) {
  RemoteStore::Options options;
  options.max_attempts = 1;
  options.breaker_threshold = 2;
  options.breaker_cooldown = std::chrono::microseconds(1000);
  RemoteStore kv(std::make_shared<MemStore>(), options);
  support::FaultInjector faults;
  kv.set_fault_injector(&faults);
  obs::MetricsRegistry metrics;
  kv.set_observer(nullptr, &metrics);
  ASSERT_TRUE(kv.put("k", "v").ok());

  faults.fail_next(std::string(kRemoteGetSite), 2);
  EXPECT_FALSE(kv.get("k").ok());
  EXPECT_FALSE(kv.get("k").ok());
  ASSERT_EQ(kv.breaker_state(), RemoteStore::BreakerState::open);

  // The endpoint healed (no armed faults). After the cooldown one probe is
  // admitted and its success closes the breaker.
  std::this_thread::sleep_for(std::chrono::microseconds(2000));
  EXPECT_EQ(kv.get("k").value(), "v");
  EXPECT_EQ(kv.breaker_state(), RemoteStore::BreakerState::closed);
  EXPECT_EQ(metrics.counter_value("store.remote.breaker.closes"), 1u);

  // Closed again: normal service, failures start a fresh count.
  EXPECT_EQ(kv.get("k").value(), "v");
}

TEST(RemoteStoreBreakerTest, FailedProbeReopensForAnotherCooldown) {
  RemoteStore::Options options;
  options.max_attempts = 1;
  options.breaker_threshold = 2;
  options.breaker_cooldown = std::chrono::microseconds(500);
  RemoteStore kv(std::make_shared<MemStore>(), options);
  support::FaultInjector faults;
  kv.set_fault_injector(&faults);
  ASSERT_TRUE(kv.put("k", "v").ok());

  faults.fail_next(std::string(kRemoteGetSite), 2);
  EXPECT_FALSE(kv.get("k").ok());
  EXPECT_FALSE(kv.get("k").ok());
  ASSERT_EQ(kv.breaker_state(), RemoteStore::BreakerState::open);

  // Still broken when the probe goes out: back to open, then a later probe
  // against the healed endpoint closes it.
  std::this_thread::sleep_for(std::chrono::microseconds(1000));
  faults.fail_next(std::string(kRemoteGetSite), 1);
  EXPECT_FALSE(kv.get("k").ok());
  EXPECT_EQ(kv.breaker_state(), RemoteStore::BreakerState::open);

  std::this_thread::sleep_for(std::chrono::microseconds(1000));
  EXPECT_EQ(kv.get("k").value(), "v");
  EXPECT_EQ(kv.breaker_state(), RemoteStore::BreakerState::closed);
}

TEST(RemoteStoreBreakerTest, DataErrorsDoNotFeedTheBreaker) {
  RemoteStore::Options options;
  options.breaker_threshold = 1;  // hair trigger: any transport failure trips
  RemoteStore kv(std::make_shared<MemStore>(), options);
  // not_found and corrupt are answers from a healthy endpoint.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(kv.get("absent").ok());
  EXPECT_EQ(kv.breaker_state(), RemoteStore::BreakerState::closed);
}

}  // namespace
}  // namespace comt::store
