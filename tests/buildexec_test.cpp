#include <gtest/gtest.h>

#include "buildexec/builder.hpp"
#include "buildexec/container.hpp"
#include "dockerfile/dockerfile.hpp"
#include "toolchain/artifact.hpp"
#include "toolchain/toolchains.hpp"
#include "workloads/environment.hpp"

namespace comt::buildexec {
namespace {

/// A minimal container with a shell toolchain installed.
Container make_container(const pkg::Repository* repo = nullptr) {
  vfs::Filesystem rootfs;
  EXPECT_TRUE(rootfs.write_file("/usr/bin/gcc",
                                toolchain::make_toolchain_stub("gnu-generic"), 0755).ok());
  EXPECT_TRUE(rootfs.write_file("/usr/bin/ar", "#!binutils-ar\n", 0755).ok());
  oci::ImageConfig config;
  config.architecture = "amd64";
  return Container(std::move(rootfs), std::move(config), repo);
}

TEST(ContainerTest, BuiltinFileUtilities) {
  Container c = make_container();
  ASSERT_TRUE(c.run_shell("mkdir -p /a/b && touch /a/b/f && cp /a/b/f /a/copy").ok());
  EXPECT_TRUE(c.rootfs().is_regular("/a/b/f"));
  EXPECT_TRUE(c.rootfs().is_regular("/a/copy"));
  ASSERT_TRUE(c.run_shell("mv /a/copy /a/moved && rm /a/b/f").ok());
  EXPECT_TRUE(c.rootfs().is_regular("/a/moved"));
  EXPECT_FALSE(c.rootfs().exists("/a/b/f"));
}

TEST(ContainerTest, EchoRedirectWritesFile) {
  Container c = make_container();
  ASSERT_TRUE(c.run_shell("echo hello world > /greeting").ok());
  EXPECT_EQ(c.rootfs().read_file("/greeting").value(), "hello world\n");
}

TEST(ContainerTest, CatConcatenatesAndRedirects) {
  Container c = make_container();
  ASSERT_TRUE(c.run_shell("echo one > /1 && echo two > /2").ok());
  ASSERT_TRUE(c.run_shell("cat /1 /2 > /both").ok());
  EXPECT_EQ(c.rootfs().read_file("/both").value(), "one\ntwo\n");
}

TEST(ContainerTest, CdChangesCwdWithinRunLine) {
  Container c = make_container();
  ASSERT_TRUE(c.run_shell("mkdir -p /work && cd /work && touch here").ok());
  EXPECT_TRUE(c.rootfs().is_regular("/work/here"));
  EXPECT_FALSE(c.run_shell("cd /no/such/dir").ok());
}

TEST(ContainerTest, SymlinkBuiltin) {
  Container c = make_container();
  ASSERT_TRUE(c.run_shell("touch /target && ln -s /target /alias").ok());
  EXPECT_TRUE(c.rootfs().is_symlink("/alias"));
}

TEST(ContainerTest, AndChainStopsOnFailure) {
  Container c = make_container();
  EXPECT_FALSE(c.run_shell("cp /ghost /x && touch /never").ok());
  EXPECT_FALSE(c.rootfs().exists("/never"));
}

TEST(ContainerTest, UnknownCommandFails) {
  Container c = make_container();
  auto status = c.run_shell("frobnicate --all");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("command not found"), std::string::npos);
}

TEST(ContainerTest, CompilerDispatchThroughStub) {
  Container c = make_container();
  ASSERT_TRUE(c.rootfs().write_file(
      "/work/x.cc", "// @comt-kernel name=k work=5\nvoid k();\n").ok());
  c.set_cwd("/work");
  ASSERT_TRUE(c.run_shell("gcc -O2 -c x.cc -o x.o").ok());
  auto blob = c.rootfs().read_file("/work/x.o");
  ASSERT_TRUE(blob.ok());
  EXPECT_TRUE(toolchain::is_object_blob(blob.value()));
}

TEST(ContainerTest, CompilerAbsentIsError) {
  vfs::Filesystem rootfs;  // no gcc installed
  oci::ImageConfig config;
  Container c(std::move(rootfs), config, nullptr);
  EXPECT_FALSE(c.run_shell("gcc -c x.cc").ok());
}

TEST(ContainerTest, NonStubCompilerIsError) {
  Container c = make_container();
  ASSERT_TRUE(c.rootfs().write_file("/usr/bin/gcc", "garbage binary", 0755).ok());
  auto status = c.run_shell("gcc -c x.cc");
  ASSERT_FALSE(status.ok());
}

TEST(ContainerTest, AptInstallResolvesDependencies) {
  const pkg::Repository& repo = workloads::ubuntu_repo("amd64");
  Container c = make_container(&repo);
  ASSERT_TRUE(c.run_shell("apt-get update && apt-get install -y libblas").ok());
  EXPECT_TRUE(c.rootfs().is_regular("/usr/lib/libblas.so"));
  EXPECT_TRUE(c.rootfs().is_regular("/usr/lib/libm.so"));  // dependency
  auto db = pkg::Database::load(c.rootfs());
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db.value().installed("libblas"));
  EXPECT_TRUE(db.value().installed("libm"));
}

TEST(ContainerTest, AptInstallTwiceIsIdempotent) {
  const pkg::Repository& repo = workloads::ubuntu_repo("amd64");
  Container c = make_container(&repo);
  ASSERT_TRUE(c.run_shell("apt-get install -y libm").ok());
  EXPECT_TRUE(c.run_shell("apt-get install -y libm").ok());
}

TEST(ContainerTest, AptRemove) {
  const pkg::Repository& repo = workloads::ubuntu_repo("amd64");
  Container c = make_container(&repo);
  ASSERT_TRUE(c.run_shell("apt-get install -y libm").ok());
  ASSERT_TRUE(c.run_shell("apt-get remove -y libm").ok());
  EXPECT_FALSE(c.rootfs().exists("/usr/lib/libm.so"));
}

TEST(ContainerTest, AptWithoutSourcesFails) {
  Container c = make_container(nullptr);
  EXPECT_FALSE(c.run_shell("apt-get install -y libm").ok());
}

TEST(ContainerTest, RecorderCapturesInvocations) {
  Container c = make_container();
  BuildRecord record;
  c.attach_recorder(&record);
  ASSERT_TRUE(c.rootfs().write_file(
      "/work/x.cc", "// @comt-kernel name=k work=5\nvoid k();\n").ok());
  c.set_cwd("/work");
  ASSERT_TRUE(c.run_shell("gcc -O2 -c x.cc -o x.o && echo done").ok());
  ASSERT_EQ(record.invocations.size(), 2u);
  const ToolInvocation& compile = record.invocations[0];
  EXPECT_EQ(compile.argv[0], "gcc");
  EXPECT_EQ(compile.toolchain_id, "gnu-generic");
  EXPECT_EQ(compile.cwd, "/work");
  EXPECT_EQ(compile.outputs, std::vector<std::string>{"/work/x.o"});
  EXPECT_TRUE(compile.succeeded);
  // Point-in-time digests for inputs and outputs.
  EXPECT_EQ(compile.digests.count("/work/x.cc"), 1u);
  EXPECT_EQ(compile.digests.count("/work/x.o"), 1u);
}

TEST(ContainerTest, RecorderCapturesFailures) {
  Container c = make_container();
  BuildRecord record;
  c.attach_recorder(&record);
  EXPECT_FALSE(c.run_shell("gcc -c missing.cc").ok());
  ASSERT_EQ(record.invocations.size(), 1u);
  EXPECT_FALSE(record.invocations[0].succeeded);
  EXPECT_FALSE(record.invocations[0].message.empty());
}

TEST(RecordTest, SerializeParseRoundTrip) {
  BuildRecord record;
  ToolInvocation invocation;
  invocation.argv = {"gcc", "-c", "x.cc"};
  invocation.resolved_program = "/usr/bin/gcc";
  invocation.toolchain_id = "gnu-generic";
  invocation.cwd = "/work";
  invocation.env = {{"PATH", "/usr/bin"}, {"CFLAGS", "-O2"}};
  invocation.inputs_read = {"/work/x.cc"};
  invocation.outputs = {"/work/x.o"};
  invocation.digests = {{"/work/x.cc", "aa"}, {"/work/x.o", "bb"}};
  record.invocations.push_back(invocation);

  auto back = BuildRecord::parse(record.serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().invocations.size(), 1u);
  const ToolInvocation& t = back.value().invocations[0];
  EXPECT_EQ(t.argv, invocation.argv);
  EXPECT_EQ(t.toolchain_id, "gnu-generic");
  EXPECT_EQ(t.env.at("CFLAGS"), "-O2");
  EXPECT_EQ(t.digests.at("/work/x.o"), "bb");
}

TEST(RecordTest, RejectsMalformed) {
  EXPECT_FALSE(BuildRecord::parse("not json").ok());
  EXPECT_FALSE(BuildRecord::parse("{}").ok());
  EXPECT_FALSE(BuildRecord::parse(R"({"invocations":[{"argv":[]}]})").ok());
}

// ---- ImageBuilder -------------------------------------------------------------

TEST(BuilderTest, MultiStageBuildWithCopyFrom) {
  oci::Layout layout;
  ASSERT_TRUE(workloads::install_user_images(layout, "amd64").ok());
  ImageBuilder builder(layout);
  builder.set_apt_source(&workloads::ubuntu_repo("amd64"));

  const char* text = R"(FROM comt/env:amd64 AS build
ARG CFLAGS=-O2
WORKDIR /work
COPY src /work/src
RUN gcc $CFLAGS -c src/k.cc -o k.o
RUN gcc k.o -o app
FROM comt/base:amd64 AS dist
WORKDIR /app
COPY --from=build /work/app /app/tool
ENTRYPOINT ["/app/tool"]
)";
  auto file = dockerfile::parse(text);
  ASSERT_TRUE(file.ok());
  vfs::Filesystem context;
  ASSERT_TRUE(context.write_file(
      "/src/k.cc", "// @comt-kernel name=k work=5\nvoid k();\n").ok());

  BuildRecord record;
  auto image = builder.build(file.value(), context, "tool:latest", "", &record);
  ASSERT_TRUE(image.ok()) << image.error().to_string();
  EXPECT_EQ(image.value().config.config.entrypoint, std::vector<std::string>{"/app/tool"});
  EXPECT_EQ(image.value().config.config.working_dir, "/app");

  auto rootfs = layout.flatten(image.value());
  ASSERT_TRUE(rootfs.ok());
  EXPECT_TRUE(toolchain::is_image_blob(rootfs.value().read_file("/app/tool").value()));
  // The build stage's sources never reach the dist image (multi-stage point).
  EXPECT_FALSE(rootfs.value().exists("/work/src/k.cc"));

  // Recording happened (comt/env carries the hijack label), including the
  // dist stage's COPY movement.
  EXPECT_GE(record.invocations.size(), 3u);
  bool saw_copy = false;
  for (const ToolInvocation& invocation : record.invocations) {
    saw_copy |= invocation.argv[0] == std::string(kCopyPseudoTool);
  }
  EXPECT_TRUE(saw_copy);
}

TEST(BuilderTest, BuildArgsOverrideDefaults) {
  oci::Layout layout;
  ASSERT_TRUE(workloads::install_user_images(layout, "amd64").ok());
  ImageBuilder builder(layout);
  builder.set_apt_source(&workloads::ubuntu_repo("amd64"));
  builder.set_build_args({{"CFLAGS", "-O3"}});

  const char* text = R"(FROM comt/env:amd64 AS build
ARG CFLAGS=-O2
WORKDIR /w
COPY src /w/src
RUN gcc $CFLAGS -c src/k.cc -o k.o
)";
  auto file = dockerfile::parse(text);
  ASSERT_TRUE(file.ok());
  vfs::Filesystem context;
  ASSERT_TRUE(context.write_file(
      "/src/k.cc", "// @comt-kernel name=k work=5\nvoid k();\n").ok());
  auto image = builder.build(file.value(), context, "x");
  ASSERT_TRUE(image.ok()) << image.error().to_string();
  auto rootfs = layout.flatten(image.value());
  auto object = toolchain::parse_object(rootfs.value().read_file("/w/k.o").value());
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(object.value().codegen.opt_level, 3);
}

TEST(BuilderTest, TargetStageStopsEarly) {
  oci::Layout layout;
  ASSERT_TRUE(workloads::install_user_images(layout, "amd64").ok());
  ImageBuilder builder(layout);
  const char* text = "FROM comt/base:amd64 AS first\nRUN touch /first\n"
                     "FROM comt/base:amd64 AS second\nRUN touch /second\n";
  auto file = dockerfile::parse(text);
  ASSERT_TRUE(file.ok());
  auto image = builder.build(file.value(), vfs::Filesystem{}, "partial", "first");
  ASSERT_TRUE(image.ok());
  auto rootfs = layout.flatten(image.value());
  EXPECT_TRUE(rootfs.value().exists("/first"));
  EXPECT_FALSE(rootfs.value().exists("/second"));
  EXPECT_FALSE(builder.build(file.value(), vfs::Filesystem{}, "x", "nope").ok());
}

TEST(BuilderTest, FailingRunAbortsWithLineNumber) {
  oci::Layout layout;
  ASSERT_TRUE(workloads::install_user_images(layout, "amd64").ok());
  ImageBuilder builder(layout);
  auto file = dockerfile::parse("FROM comt/base:amd64\nRUN definitely-not-a-tool\n");
  ASSERT_TRUE(file.ok());
  auto image = builder.build(file.value(), vfs::Filesystem{}, "x");
  ASSERT_FALSE(image.ok());
  EXPECT_NE(image.error().message.find("line 2"), std::string::npos);
}

TEST(BuilderTest, CopyMissingSourceFails) {
  oci::Layout layout;
  ASSERT_TRUE(workloads::install_user_images(layout, "amd64").ok());
  ImageBuilder builder(layout);
  auto file = dockerfile::parse("FROM comt/base:amd64\nCOPY ghost /x\n");
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE(builder.build(file.value(), vfs::Filesystem{}, "x").ok());
}

TEST(BuilderTest, UnknownBaseImageFails) {
  oci::Layout layout;
  ImageBuilder builder(layout);
  auto file = dockerfile::parse("FROM nowhere:latest\nRUN true\n");
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE(builder.build(file.value(), vfs::Filesystem{}, "x").ok());
}

TEST(BuilderTest, CommitAddsExactlyOneLayer) {
  oci::Layout layout;
  ASSERT_TRUE(workloads::install_user_images(layout, "amd64").ok());
  ImageBuilder builder(layout);
  auto base = layout.find_image("comt/base:amd64");
  ASSERT_TRUE(base.ok());
  auto container = builder.container_from("comt/base:amd64");
  ASSERT_TRUE(container.ok());
  ASSERT_TRUE(container.value().run_shell("touch /new-file").ok());
  auto committed = builder.commit(container.value(), base.value(), "test step", "derived");
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed.value().manifest.layers.size(),
            base.value().manifest.layers.size() + 1);
  EXPECT_EQ(committed.value().config.history.back(), "test step");
}

}  // namespace
}  // namespace comt::buildexec
