#include <gtest/gtest.h>

#include "registry/registry.hpp"

namespace comt::registry {
namespace {

oci::ImageConfig config() {
  oci::ImageConfig c;
  c.config.entrypoint = {"/app"};
  return c;
}

vfs::Filesystem tree(std::string_view marker) {
  vfs::Filesystem fs;
  EXPECT_TRUE(fs.write_file("/data", std::string(marker)).ok());
  return fs;
}

TEST(RegistryTest, PushPullRoundTrip) {
  oci::Layout local;
  auto image = local.create_image(config(), {tree("payload")}, "app:dev");
  ASSERT_TRUE(image.ok());

  Registry hub;
  ASSERT_TRUE(hub.push(local, "app:dev", "org/app", "1.0").ok());
  EXPECT_TRUE(hub.has("org/app", "1.0"));
  EXPECT_FALSE(hub.has("org/app", "2.0"));

  oci::Layout remote;
  ASSERT_TRUE(hub.pull("org/app", "1.0", remote, "pulled").ok());
  auto pulled = remote.find_image("pulled");
  ASSERT_TRUE(pulled.ok());
  EXPECT_EQ(pulled.value().manifest_digest, image.value().manifest_digest);
  auto rootfs = remote.flatten(pulled.value());
  ASSERT_TRUE(rootfs.ok());
  EXPECT_EQ(rootfs.value().read_file("/data").value(), "payload");
}

TEST(RegistryTest, PullUnknownFails) {
  Registry hub;
  oci::Layout local;
  auto result = hub.pull("no/such", "tag", local, "x");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::not_found);
}

TEST(RegistryTest, PushUnknownLocalTagFails) {
  Registry hub;
  oci::Layout local;
  EXPECT_FALSE(hub.push(local, "ghost:tag", "org/x", "1").ok());
}

TEST(RegistryTest, SharedLayersDeduplicate) {
  oci::Layout local;
  vfs::Filesystem base_layer = tree("shared-base");
  auto a = local.create_image(config(), {base_layer, tree("a")}, "a:1");
  auto b = local.create_image(config(), {base_layer, tree("b")}, "b:1");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  Registry hub;
  ASSERT_TRUE(hub.push(local, "a:1", "org/a", "1").ok());
  std::uint64_t after_first = hub.stats().pushed_bytes;
  ASSERT_TRUE(hub.push(local, "b:1", "org/b", "1").ok());
  std::uint64_t second_push = hub.stats().pushed_bytes - after_first;
  // The shared base layer must not be re-transferred.
  EXPECT_LT(second_push, after_first);
  EXPECT_EQ(hub.stats().repositories, 2u);
}

TEST(RegistryTest, RepushSameImageTransfersAlmostNothing) {
  oci::Layout local;
  ASSERT_TRUE(local.create_image(config(), {tree("v")}, "app:v").ok());
  Registry hub;
  ASSERT_TRUE(hub.push(local, "app:v", "org/app", "1").ok());
  std::uint64_t first = hub.stats().pushed_bytes;
  ASSERT_TRUE(hub.push(local, "app:v", "org/app", "2").ok());
  EXPECT_EQ(hub.stats().pushed_bytes, first);  // everything deduplicated
  EXPECT_TRUE(hub.has("org/app", "2"));
}

TEST(RegistryTest, StatsTrackStore) {
  oci::Layout local;
  ASSERT_TRUE(local.create_image(config(), {tree("z")}, "z:1").ok());
  Registry hub;
  ASSERT_TRUE(hub.push(local, "z:1", "org/z", "1").ok());
  Stats stats = hub.stats();
  EXPECT_EQ(stats.repositories, 1u);
  EXPECT_GT(stats.blobs, 0u);
  EXPECT_GT(stats.stored_bytes, 0u);
  EXPECT_EQ(stats.pushed_bytes, stats.stored_bytes);
  EXPECT_EQ(stats.pulled_bytes, 0u);
}

}  // namespace
}  // namespace comt::registry
