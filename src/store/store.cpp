#include "store/store.hpp"

#include <optional>

namespace comt::store {

void KvStore::set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  if (metrics == nullptr) {
    gets_ = get_bytes_ = puts_ = put_bytes_ = erases_ = syncs_ = corrupt_ = nullptr;
    return;
  }
  gets_ = &metrics->counter("store.gets");
  get_bytes_ = &metrics->counter("store.get_bytes");
  puts_ = &metrics->counter("store.puts");
  put_bytes_ = &metrics->counter("store.put_bytes");
  erases_ = &metrics->counter("store.erases");
  syncs_ = &metrics->counter("store.syncs");
  corrupt_ = &metrics->counter("store.corrupt");
}

Result<bool> KvStore::compare_and_put(std::string_view key,
                                      const std::optional<std::string>& expected,
                                      std::string value) {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  // One mutex arbitrates every CAS on this object; get/put inside the
  // critical section make the read-compare-write indivisible relative to
  // rival compare_and_put callers — the only writers a lease keyspace has.
  std::lock_guard<std::mutex> lock(cas_mutex_);
  auto current = get(key);
  if (!current.ok() && current.error().code != Errc::not_found &&
      current.error().code != Errc::corrupt) {
    return current.error();
  }
  // A corrupt stored value (torn lease record) matches "absent": the damaged
  // bytes can never equal any expected value, and a claimer must be able to
  // overwrite them or the key would be wedged forever.
  if (expected.has_value()) {
    if (!current.ok() || current.value() != *expected) return false;
  } else {
    if (current.ok()) return false;
  }
  COMT_TRY_STATUS(put(key, std::move(value)));
  return true;
}

obs::Span KvStore::sync_span() const {
  return obs::maybe_span(tracer_, "store.sync", obs::kNoSpan, "store");
}

Result<std::string> MemStore::get(std::string_view key) const {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return make_error(Errc::not_found, "store: no such key: " + std::string(key));
  }
  note_get(it->second.size());
  return it->second;
}

Status MemStore::put(std::string_view key, std::string value) {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  std::optional<std::size_t> torn;
  if (faults() != nullptr) torn = faults()->check_torn(kStorePutSite, value.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (torn.has_value()) {
      // The medium persisted a prefix and the process dies here — the
      // in-memory analogue of a half-flushed file.
      entries_.insert_or_assign(std::string(key), value.substr(0, *torn));
    } else {
      note_put(value.size());
      entries_.insert_or_assign(std::string(key), std::move(value));
    }
  }
  if (torn.has_value()) throw support::CrashInjected{std::string(kStorePutSite)};
  return Status::success();
}

Status MemStore::erase(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) entries_.erase(it);
  note_erase();
  return Status::success();
}

bool MemStore::contains(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(key) != entries_.end();
}

Result<std::uint64_t> MemStore::size(std::string_view key) const {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return make_error(Errc::not_found, "store: no such key: " + std::string(key));
  }
  return static_cast<std::uint64_t>(it->second.size());
}

std::vector<KvEntry> MemStore::list(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<KvEntry> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(KvEntry{it->first, it->second.size()});
  }
  return out;
}

Status MemStore::sync() {
  note_sync();
  return Status::success();
}

}  // namespace comt::store
