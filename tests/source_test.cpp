#include <gtest/gtest.h>

#include "toolchain/source.hpp"

namespace comt::toolchain {
namespace {

TEST(AnalyzeTest, ParsesKernelAnnotation) {
  auto info = analyze_source(
      "// @comt-kernel name=stream work=2.5e2 vec=0.5 mem=0.2 call=0.05 branch=0.1 "
      "lib=blas:0.1 comm=0.3 aggr=-0.2 lto=0.6 pgo=0.4\n");
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info.value().kernels.size(), 1u);
  const KernelTrait& kernel = info.value().kernels[0];
  EXPECT_EQ(kernel.name, "stream");
  EXPECT_DOUBLE_EQ(kernel.work, 250);
  EXPECT_DOUBLE_EQ(kernel.frac_vec, 0.5);
  EXPECT_DOUBLE_EQ(kernel.frac_mem, 0.2);
  EXPECT_DOUBLE_EQ(kernel.frac_call, 0.05);
  EXPECT_DOUBLE_EQ(kernel.frac_branch, 0.1);
  EXPECT_EQ(kernel.lib, "blas");
  EXPECT_DOUBLE_EQ(kernel.frac_lib, 0.1);
  EXPECT_DOUBLE_EQ(kernel.frac_comm, 0.3);
  EXPECT_DOUBLE_EQ(kernel.aggr_response, -0.2);
  EXPECT_DOUBLE_EQ(kernel.lto_response, 0.6);
  EXPECT_DOUBLE_EQ(kernel.pgo_response, 0.4);
}

TEST(AnalyzeTest, UnannotatedFileIsValid) {
  auto info = analyze_source("int main() { return 0; }\n");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info.value().kernels.empty());
  EXPECT_EQ(info.value().line_count, 2);  // trailing newline counts a line
}

TEST(AnalyzeTest, MultipleKernels) {
  auto info = analyze_source(
      "// @comt-kernel name=a work=1\n"
      "void a() {}\n"
      "// @comt-kernel name=b work=2 vec=0.9\n"
      "void b() {}\n");
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info.value().kernels.size(), 2u);
  EXPECT_EQ(info.value().kernels[1].name, "b");
}

TEST(AnalyzeTest, IncludesAndMpi) {
  auto info = analyze_source(
      "#include <mpi.h>\n#include \"common.h\"\n#include \"sub/dir.h\"\n"
      "#include <vector>\n");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info.value().uses_mpi);
  EXPECT_EQ(info.value().includes,
            (std::vector<std::string>{"common.h", "sub/dir.h"}));
}

TEST(AnalyzeTest, IsaMarkers) {
  auto info = analyze_source("// @comt-isa x86_64\n// @comt-isa aarch64 riscv64\n");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().isa_specific,
            (std::vector<std::string>{"x86_64", "aarch64", "riscv64"}));
}

TEST(AnalyzeTest, RejectsBadAnnotations) {
  EXPECT_FALSE(analyze_source("// @comt-kernel work=1\n").ok());  // no name
  EXPECT_FALSE(analyze_source("// @comt-kernel name=x work=abc\n").ok());
  EXPECT_FALSE(analyze_source("// @comt-kernel name=x unknown=1\n").ok());
  EXPECT_FALSE(analyze_source("// @comt-kernel name=x lib=justname\n").ok());
  EXPECT_FALSE(analyze_source("// @comt-kernel name=x work=-5\n").ok());
  EXPECT_FALSE(analyze_source("// @comt-kernel name=x badfield\n").ok());
}

TEST(AnalyzeTest, RejectsOversubscribedFractions) {
  auto info = analyze_source("// @comt-kernel name=x work=1 vec=0.6 mem=0.6\n");
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.error().code, Errc::invalid_argument);
}

// Property: generate_source/analyze_source round trip, over kernel sweeps.
struct GenCase {
  const char* name;
  KernelTrait kernel;
};

KernelTrait make_kernel(std::string name, double vec, double mem, double lib_frac,
                        double pgo) {
  KernelTrait kernel;
  kernel.name = std::move(name);
  kernel.work = 120;
  kernel.frac_vec = vec;
  kernel.frac_mem = mem;
  if (lib_frac > 0) {
    kernel.lib = "blas";
    kernel.frac_lib = lib_frac;
  }
  kernel.pgo_response = pgo;
  return kernel;
}

class GenerateAnalyzeRoundTrip : public ::testing::TestWithParam<GenCase> {};

TEST_P(GenerateAnalyzeRoundTrip, KernelsSurvive) {
  SourceGenSpec spec;
  spec.unit_name = "unit";
  spec.kernels = {GetParam().kernel};
  spec.includes = {"common.h"};
  spec.uses_mpi = true;
  spec.filler_lines = 25;
  std::string text = generate_source(spec);

  auto info = analyze_source(text);
  ASSERT_TRUE(info.ok()) << info.error().to_string();
  ASSERT_EQ(info.value().kernels.size(), 1u);
  EXPECT_EQ(info.value().kernels[0], GetParam().kernel);
  EXPECT_TRUE(info.value().uses_mpi);
  EXPECT_EQ(info.value().includes, std::vector<std::string>{"common.h"});
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, GenerateAnalyzeRoundTrip,
    ::testing::Values(GenCase{"plain", make_kernel("plain", 0, 0, 0, 0)},
                      GenCase{"vec", make_kernel("vec_heavy", 0.75, 0.1, 0, 0)},
                      GenCase{"mem", make_kernel("mem_bound", 0.1, 0.8, 0, 0)},
                      GenCase{"lib", make_kernel("lib_bound", 0.1, 0.1, 0.6, 0)},
                      GenCase{"neg_pgo", make_kernel("regressor", 0.2, 0.2, 0, -0.5)},
                      GenCase{"pos_pgo", make_kernel("trainee", 0.2, 0.2, 0, 0.9)}),
    [](const auto& info) { return info.param.name; });

TEST(GenerateTest, IsaMarkersEmitted) {
  SourceGenSpec spec;
  spec.unit_name = "tuned";
  spec.isa_specific = {"x86_64"};
  spec.filler_lines = 5;
  auto info = analyze_source(generate_source(spec));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().isa_specific, std::vector<std::string>{"x86_64"});
}

TEST(GenerateTest, FillerScalesSize) {
  SourceGenSpec small;
  small.unit_name = "s";
  small.filler_lines = 10;
  SourceGenSpec large = small;
  large.filler_lines = 200;
  EXPECT_GT(generate_source(large).size(), generate_source(small).size() * 5);
}

}  // namespace
}  // namespace comt::toolchain
