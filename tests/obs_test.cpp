// The observability subsystem: metrics registry accuracy (histogram buckets
// and percentile interpolation), concurrent counter/gauge/span emission
// (exercised under -DCOMT_SANITIZE=thread in CI), Chrome trace export
// round-tripping through src/json, per-phase profile aggregation, and the
// end-to-end guarantee a traced rebuild emits one span per compile job
// nested under the rebuild root span.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

namespace comt {
namespace {

// ---- Stopwatch ----------------------------------------------------------------

TEST(ObsStopwatchTest, ElapsedGrowsAndRestartResets) {
  obs::Stopwatch clock;
  const double first = clock.elapsed_us();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(clock.elapsed_us(), first);
  clock.restart();
  EXPECT_GE(clock.elapsed_ms(), 0.0);
}

// ---- Metrics ------------------------------------------------------------------

TEST(ObsMetricsTest, CounterAndGaugeBasics) {
  obs::Counter counter;
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);

  obs::Gauge gauge;
  gauge.set(2.5);
  gauge.add(-0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
}

TEST(ObsMetricsTest, HistogramBucketsAreUpperBoundInclusive) {
  obs::Histogram histogram({10.0, 20.0, 40.0});
  histogram.observe(5.0);    // bucket 0 (<= 10)
  histogram.observe(10.0);   // bucket 0 (bound is inclusive)
  histogram.observe(15.0);   // bucket 1
  histogram.observe(100.0);  // overflow
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 130.0);
  EXPECT_EQ(histogram.bucket_counts(), (std::vector<std::uint64_t>{2, 1, 0, 1}));
  EXPECT_EQ(histogram.bounds(), (std::vector<double>{10.0, 20.0, 40.0}));
}

TEST(ObsMetricsTest, PercentileInterpolatesInsideBuckets) {
  // Ten equal-width buckets, one observation per millisecond 1..1000: the
  // interpolated percentiles are exact.
  std::vector<double> bounds;
  for (double bound = 100.0; bound <= 1000.0; bound += 100.0) bounds.push_back(bound);
  obs::Histogram histogram(bounds);
  EXPECT_DOUBLE_EQ(histogram.percentile(50), 0.0);  // empty
  for (int value = 1; value <= 1000; ++value) histogram.observe(value);
  EXPECT_DOUBLE_EQ(histogram.percentile(50), 500.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(95), 950.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(99), 990.0);
  // The overflow bucket clamps to the last bound.
  obs::Histogram clamped({10.0});
  clamped.observe(5000.0);
  EXPECT_DOUBLE_EQ(clamped.percentile(99), 10.0);
}

TEST(ObsMetricsTest, DefaultLatencyBucketsAreAscending) {
  const std::vector<double> bounds = obs::default_latency_buckets_ms();
  ASSERT_GT(bounds.size(), 10u);
  EXPECT_DOUBLE_EQ(bounds.front(), 0.01);
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
}

TEST(ObsMetricsTest, RegistryCreatesOnFirstUseWithStableReferences) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.counter_value("never.created"), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge_value("never.created.gauge"), 0.0);

  obs::Counter& counter = registry.counter("rebuild.cache.hits");
  counter.add(3);
  EXPECT_EQ(&registry.counter("rebuild.cache.hits"), &counter);
  EXPECT_EQ(registry.counter_value("rebuild.cache.hits"), 3u);
  registry.gauge("service.queue_ms").set(1.5);
  registry.histogram("sched.pool.queue_wait_ms").observe(0.2);

  json::Value snapshot = registry.to_json();
  const json::Value* counters = snapshot.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->get_int("rebuild.cache.hits"), 3);
  const json::Value* histograms = snapshot.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* queue_wait = histograms->find("sched.pool.queue_wait_ms");
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_EQ(queue_wait->get_int("count"), 1);
  // The snapshot itself is valid JSON.
  auto reparsed = json::parse(json::serialize(snapshot));
  ASSERT_TRUE(reparsed.ok());
}

TEST(ObsMetricsTest, ConcurrentUpdatesNeverLoseIncrements) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("test.ops");
  obs::Gauge& gauge = registry.gauge("test.level");
  obs::Histogram& histogram = registry.histogram("test.latency_ms", {1.0, 2.0, 4.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        gauge.add(1.0);
        histogram.observe(static_cast<double>(i % 5));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

// ---- Tracing ------------------------------------------------------------------

TEST(ObsTraceTest, SpansRecordHierarchyAndAnnotations) {
  obs::Tracer tracer;
  obs::Span root = tracer.span("rebuild", obs::kNoSpan, "rebuild");
  ASSERT_TRUE(root.active());
  ASSERT_NE(root.id(), obs::kNoSpan);
  obs::Span child = tracer.span("job:alpha", root.id(), "compile");
  child.annotate("object", "main.o");
  child.annotate("inputs", std::uint64_t{3});
  child.end();
  child.end();  // idempotent
  root.end();

  std::vector<obs::SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "rebuild");  // sorted by start time
  EXPECT_EQ(spans[0].parent, obs::kNoSpan);
  EXPECT_EQ(spans[1].name, "job:alpha");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
  EXPECT_GE(spans[0].dur_us, spans[1].dur_us);  // parent covers the child
  ASSERT_EQ(spans[1].args.size(), 2u);
  EXPECT_EQ(spans[1].args[0].first, "object");
  EXPECT_EQ(spans[1].args[0].second, "main.o");
  EXPECT_EQ(spans[1].args[1].second, "3");
}

TEST(ObsTraceTest, InertSpansAreNoOps) {
  obs::Span inert;
  EXPECT_FALSE(inert.active());
  EXPECT_EQ(inert.id(), obs::kNoSpan);
  inert.annotate("ignored", "value");
  inert.end();  // must not crash
  obs::Span from_null = obs::maybe_span(nullptr, "anything");
  EXPECT_FALSE(from_null.active());
}

TEST(ObsTraceTest, MovedFromSpanDoesNotDoubleRecord) {
  obs::Tracer tracer;
  {
    obs::Span a = tracer.span("moved");
    obs::Span b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): moved-from is inert
    EXPECT_TRUE(b.active());
  }  // both destruct; only one record lands
  EXPECT_EQ(tracer.span_count(), 1u);
}

TEST(ObsTraceTest, ConcurrentEmissionKeepsEverySpanWithUniqueIds) {
  obs::Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::Span span = tracer.span("worker:" + std::to_string(t));
        span.annotate("i", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(tracer.span_count(), static_cast<std::size_t>(kThreads * kPerThread));
  std::set<obs::SpanId> ids;
  for (const obs::SpanRecord& span : tracer.snapshot()) ids.insert(span.id);
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(ObsTraceTest, ChromeTraceJsonRoundTripsThroughParser) {
  obs::Tracer tracer;
  {
    obs::Span root = tracer.span("rebuild", obs::kNoSpan, "rebuild");
    obs::Span job = tracer.span("job:alpha", root.id(), "compile");
    job.annotate("object", "main.o");
  }
  const std::string exported = tracer.chrome_trace_json();
  auto parsed = json::parse(exported);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  // Serialization is deterministic: parse -> serialize reproduces the
  // exported document byte for byte (the golden round-trip).
  EXPECT_EQ(json::serialize(parsed.value()), exported);

  EXPECT_EQ(parsed.value().get_string("displayTimeUnit"), "ms");
  const json::Value* events = parsed.value().find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->as_array().size(), 2u);
  const json::Value& root_event = events->as_array()[0];
  EXPECT_EQ(root_event.get_string("name"), "rebuild");
  EXPECT_EQ(root_event.get_string("cat"), "rebuild");
  EXPECT_EQ(root_event.get_string("ph"), "X");
  EXPECT_EQ(root_event.get_int("pid"), 1);
  const json::Value& job_event = events->as_array()[1];
  const json::Value* args = job_event.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->get_string("parent"), root_event.find("args")->get_string("id"));
  EXPECT_EQ(args->get_string("object"), "main.o");
  // Durations are microseconds; the root covers the nested job.
  EXPECT_GE(root_event.find("dur")->as_number(), job_event.find("dur")->as_number());
}

// ---- Profile ------------------------------------------------------------------

TEST(ObsProfileTest, PhasesAggregateOnlyUnderTheRoot) {
  obs::Tracer tracer;
  obs::SpanId root_id = obs::kNoSpan;
  {
    obs::Span root = tracer.span("rebuild", obs::kNoSpan, "rebuild");
    root_id = root.id();
    { obs::Span span = tracer.span("resolve", root_id, "resolve"); }
    obs::Span pass = tracer.span("pass:p0", root_id, "sched");
    { obs::Span span = tracer.span("job:a", pass.id(), "compile"); }
    { obs::Span span = tracer.span("job:b", pass.id(), "compile"); }
    { obs::Span span = tracer.span("job:link", pass.id(), "link"); }
    pass.end();
    { obs::Span span = tracer.span("layer-commit", root_id, "layer-commit"); }
  }
  // A sibling outside the root must not pollute the report.
  { obs::Span span = tracer.span("unrelated", obs::kNoSpan, "compile"); }

  obs::ProfileReport report = obs::profile_phases(tracer, root_id);
  EXPECT_EQ(report.root, "rebuild");
  EXPECT_GE(report.total_ms, 0.0);
  auto spans_in = [&report](const std::string& phase) -> std::size_t {
    for (const obs::PhaseTime& entry : report.phases) {
      if (entry.phase == phase) return entry.spans;
    }
    return 0;
  };
  EXPECT_EQ(spans_in("resolve"), 1u);
  EXPECT_EQ(spans_in("compile"), 2u);  // "unrelated" is outside the root
  EXPECT_EQ(spans_in("link"), 1u);
  EXPECT_EQ(spans_in("layer-commit"), 1u);
  EXPECT_EQ(spans_in("sched"), 1u);
  // Known pipeline phases come first, in pipeline order.
  ASSERT_GE(report.phases.size(), 4u);
  EXPECT_EQ(report.phases[0].phase, "resolve");
  EXPECT_EQ(report.phases[1].phase, "compile");
  EXPECT_EQ(report.phases[2].phase, "link");
  EXPECT_EQ(report.phases[3].phase, "layer-commit");

  // Without a root every span counts, including the unrelated one.
  obs::ProfileReport all = obs::profile_phases(tracer);
  auto all_compile = [&all]() -> std::size_t {
    for (const obs::PhaseTime& entry : all.phases) {
      if (entry.phase == "compile") return entry.spans;
    }
    return 0;
  }();
  EXPECT_EQ(all_compile, 3u);

  // The report serializes and prints.
  auto reparsed = json::parse(json::serialize(report.to_json()));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_NE(report.to_string().find("compile"), std::string::npos);
}

// ---- End-to-end: a traced rebuild -------------------------------------------

oci::Layout build_extended_world(const sysmodel::SystemProfile& system) {
  oci::Layout layout;
  EXPECT_TRUE(workloads::install_user_images(layout, system.arch).ok());
  EXPECT_TRUE(workloads::install_system_images(layout, system).ok());
  const workloads::AppSpec* app = workloads::find_app("comd");
  EXPECT_NE(app, nullptr);
  auto file = dockerfile::parse(workloads::dockerfile_text(*app, system.arch, true));
  EXPECT_TRUE(file.ok());
  buildexec::ImageBuilder builder(layout);
  builder.set_apt_source(&workloads::ubuntu_repo(system.arch));
  buildexec::BuildRecord record;
  EXPECT_TRUE(builder
                  .build(file.value(), workloads::build_context(*app), "comd.dist", "",
                         &record)
                  .ok());
  auto stage = layout.find_image("comd.dist.stage0");
  EXPECT_TRUE(stage.ok());
  auto build_rootfs = layout.flatten(stage.value());
  EXPECT_TRUE(build_rootfs.ok());
  EXPECT_TRUE(core::comtainer_build(layout, "comd.dist", workloads::base_tag(system.arch),
                                    record, build_rootfs.value())
                  .ok());
  return layout;
}

TEST(ObsRebuildTest, TracedRebuildEmitsOneSpanPerCompileJob) {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  oci::Layout layout = build_extended_world(system);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  core::RebuildOptions options;
  options.system = &system;
  options.system_repo = &workloads::system_repo(system);
  options.sysenv_tag = workloads::sysenv_tag(system);
  options.threads = 2;
  options.tracer = &tracer;
  options.metrics = &metrics;
  auto report = core::comtainer_rebuild(layout, "comd.dist+coM", options);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  ASSERT_GT(report.value().jobs, 0u);
  ASSERT_NE(report.value().root_span, obs::kNoSpan);

  // Exactly one job span per scheduled compile job, every one reachable from
  // the rebuild root via parent links.
  std::vector<obs::SpanRecord> spans = tracer.snapshot();
  std::map<obs::SpanId, obs::SpanId> parent_of;
  std::size_t job_spans = 0;
  std::size_t rebuild_spans = 0;
  for (const obs::SpanRecord& span : spans) {
    parent_of[span.id] = span.parent;
    if (span.name.rfind("job:", 0) == 0) ++job_spans;
    if (span.name == "rebuild") ++rebuild_spans;
  }
  EXPECT_EQ(job_spans, report.value().jobs);
  EXPECT_EQ(rebuild_spans, 1u);
  for (const obs::SpanRecord& span : spans) {
    obs::SpanId cursor = span.id;
    std::size_t hops = 0;
    while (cursor != report.value().root_span && cursor != obs::kNoSpan &&
           hops++ < spans.size()) {
      cursor = parent_of.count(cursor) != 0 ? parent_of[cursor] : obs::kNoSpan;
    }
    EXPECT_EQ(cursor, report.value().root_span) << "span " << span.name
                                                << " is not under the rebuild root";
  }

  // The per-phase profile covers the whole pipeline.
  EXPECT_EQ(report.value().profile.root, "rebuild");
  std::size_t compile_and_link = 0;
  for (const obs::PhaseTime& phase : report.value().profile.phases) {
    if (phase.phase == "compile" || phase.phase == "link") compile_and_link += phase.spans;
  }
  EXPECT_EQ(compile_and_link, report.value().jobs);

  // Metrics landed in the caller's registry: scheduler job accounting matches
  // the report, and the pool observed queue waits for the submitted tasks.
  EXPECT_EQ(metrics.counter_value("sched.jobs.executed"), report.value().jobs);
  EXPECT_EQ(metrics.counter_value("rebuild.cache.misses"), report.value().cache_misses);
  EXPECT_GT(metrics.histogram("sched.pool.queue_wait_ms").count(), 0u);

  // And the export is a valid Chrome trace document.
  auto parsed = json::parse(tracer.chrome_trace_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().find("traceEvents")->as_array().size(), spans.size());
}

}  // namespace
}  // namespace comt
