// The unified storage substrate: one key→bytes interface under every
// persistence layer in the tree. OCI layouts keep their blobs in it, the
// write-ahead JournalStore persists journals through it, and the compile
// cache serializes entries into it — so "restart the service over the same
// store" is one concept, not three.
//
// Two backends ship:
//  - MemStore: a mutex-guarded map. The default everywhere; byte-for-byte
//    the behaviour the subsystems had before the refactor, zero overhead.
//  - DiskStore (disk.hpp): a real directory with atomic write-rename puts,
//    fsync-on-sync, and the journal's fnv1a64 framing for torn-write
//    detection.
//
// Backends are thread-safe. Observability (set_observer) and fault injection
// (set_fault_injector) are wired before a store is shared, like every other
// module in the tree.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace comt::store {

/// Torn-write injection site checked on every KvStore put.
inline constexpr std::string_view kStorePutSite = "store.put";

/// One listed key and its value size in bytes.
struct KvEntry {
  std::string key;
  std::uint64_t size = 0;

  bool operator==(const KvEntry&) const = default;
};

/// Abstract key→bytes store. Keys are arbitrary non-empty byte strings; '/'
/// separates hierarchy levels (DiskStore maps them to directories, list()
/// prefixes usually end in '/'). Values are opaque bytes.
class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Value stored under `key`, Errc::not_found when absent, Errc::corrupt
  /// when the backend detects the stored bytes were damaged (torn frame,
  /// checksum mismatch).
  virtual Result<std::string> get(std::string_view key) const = 0;

  /// Stores (or replaces) `key`. With an armed torn-write schedule at
  /// kStorePutSite the backend persists only a prefix and throws
  /// support::CrashInjected — the next get() of the key reports corruption.
  virtual Status put(std::string_view key, std::string value) = 0;

  /// Drops `key`. Removing an absent key succeeds (erase is idempotent —
  /// crash-retry loops re-erase freely).
  virtual Status erase(std::string_view key) = 0;

  virtual bool contains(std::string_view key) const = 0;

  /// Stored value size in bytes, Errc::not_found when absent.
  virtual Result<std::uint64_t> size(std::string_view key) const = 0;

  /// Every key starting with `prefix` (all keys when empty), sorted.
  virtual std::vector<KvEntry> list(std::string_view prefix = {}) const = 0;

  /// Flushes everything written so far to durable media. MemStore: no-op.
  /// DiskStore: fsync of every file written since the last sync.
  virtual Status sync() = 0;

  /// Atomic read-modify-write, the primitive the fleet's lease protocol is
  /// built on: replaces `key`'s value with `value` iff the current value
  /// equals `expected` — or the key is absent (or stored corrupt: a torn
  /// lease record must stay claimable) when `expected` is nullopt.
  /// Returns true when the swap happened, false when the current state did
  /// not match (the loser of a claim race). Atomicity is relative to other
  /// compare_and_put calls on the same store object (a lease keyspace has no
  /// other writers); a concurrent plain put() does not participate in the
  /// arbitration. ShardedStore routes to the owning shard's CAS, so the
  /// guarantee survives sharding.
  virtual Result<bool> compare_and_put(std::string_view key,
                                       const std::optional<std::string>& expected,
                                       std::string value);

  /// Attaches counters ("store.gets", "store.get_bytes", "store.puts",
  /// "store.put_bytes", "store.erases", "store.syncs", "store.corrupt") and
  /// a span per sync ("store.sync"). Pass nullptrs to detach. Wire up before
  /// sharing the store. Virtual so wrapping backends (ShardedStore,
  /// RemoteStore) can bind their own instruments alongside the base set.
  virtual void set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Attaches torn-write injection to put (site kStorePutSite). Pass nullptr
  /// to detach. Wire up before sharing the store.
  void set_fault_injector(support::FaultInjector* faults) { faults_ = faults; }

 protected:
  void note_get(std::uint64_t bytes) const {
    if (gets_ != nullptr) {
      gets_->add();
      get_bytes_->add(bytes);
    }
  }
  void note_put(std::uint64_t bytes) const {
    if (puts_ != nullptr) {
      puts_->add();
      put_bytes_->add(bytes);
    }
  }
  void note_erase() const {
    if (erases_ != nullptr) erases_->add();
  }
  void note_corrupt() const {
    if (corrupt_ != nullptr) corrupt_->add();
  }
  void note_sync() const {
    if (syncs_ != nullptr) syncs_->add();
  }
  /// "store.sync" span, or an inert one when no tracer is attached.
  obs::Span sync_span() const;
  support::FaultInjector* faults() const { return faults_; }

 private:
  support::FaultInjector* faults_ = nullptr;
  mutable std::mutex cas_mutex_;  ///< serializes compare_and_put arbitration
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* gets_ = nullptr;
  obs::Counter* get_bytes_ = nullptr;
  obs::Counter* puts_ = nullptr;
  obs::Counter* put_bytes_ = nullptr;
  obs::Counter* erases_ = nullptr;
  obs::Counter* syncs_ = nullptr;
  obs::Counter* corrupt_ = nullptr;
};

/// The in-memory backend: a mutex-guarded ordered map. Values survive exactly
/// as long as the object — the pre-refactor behaviour of every subsystem.
class MemStore final : public KvStore {
 public:
  Result<std::string> get(std::string_view key) const override;
  Status put(std::string_view key, std::string value) override;
  Status erase(std::string_view key) override;
  bool contains(std::string_view key) const override;
  Result<std::uint64_t> size(std::string_view key) const override;
  std::vector<KvEntry> list(std::string_view prefix = {}) const override;
  Status sync() override;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace comt::store
