// Simulated remote object store (S3-dialect / registry-backed): wraps any
// KvStore the way a site deployment fronts its shared substrate with an
// object-store endpoint. The wrapper models the three things a network hop
// adds that a local backend never shows:
//
//  - latency: every get/put sleeps a configurable per-op delay before
//    touching the inner store, so benches measure coordination under
//    realistic transfer times instead of memory-speed fantasy numbers;
//  - transient faults: get/put pass through FaultInjector sites
//    ("remote.get"/"remote.put") and retry injected failures up to
//    max_attempts with exponential backoff — the client-side retry loop
//    every S3 SDK ships. Retries are counted ("store.remote.retries");
//  - torn transfers: an upload can die mid-flight (tear_next at
//    "remote.put"), leaving a truncated object. Values are framed
//    [u32 size][u64 fnv1a64] on the wire, so a later get() of the torn key
//    reports Errc::corrupt instead of silently returning half an image —
//    the ETag/checksum verification a real object store performs.
//
// An optional circuit breaker (Options::breaker_threshold) guards the whole
// endpoint: once that many consecutive operations exhaust their retries, the
// breaker opens and further get/put calls fail fast without burning latency
// and backoff against a dead endpoint. After breaker_cooldown one probe is
// let through (half-open); its outcome closes the breaker or re-opens it for
// another cooldown. Transitions and fast-fails land in
// "store.remote.breaker.*" metrics and "remote.breaker" spans.
//
// compare_and_put is inherited from KvStore and therefore runs through this
// wrapper's latency/fault-instrumented get/put; arbitration holds across
// every replica sharing this object, which is how the fleet deploys it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "store/store.hpp"

namespace comt::store {

/// Transient-fault + torn-transfer injection sites for RemoteStore downloads
/// and uploads.
inline constexpr std::string_view kRemoteGetSite = "remote.get";
inline constexpr std::string_view kRemotePutSite = "remote.put";

class RemoteStore final : public KvStore {
 public:
  struct Options {
    /// Simulated one-way transfer latency, slept before each download/upload
    /// attempt. Zero skips the sleep entirely.
    std::chrono::microseconds get_latency{0};
    std::chrono::microseconds put_latency{0};
    /// Total tries per operation (first attempt + retries); clamped to >= 1.
    int max_attempts = 3;
    /// Backoff before retry k is `backoff << (k-1)` — the standard
    /// exponential client retry policy. Zero retries immediately.
    std::chrono::microseconds backoff{0};
    /// Circuit breaker: consecutive retry-exhausted operations that trip the
    /// breaker open. 0 disables the breaker (the default).
    int breaker_threshold = 0;
    /// How long an open breaker fails fast before admitting one half-open
    /// probe.
    std::chrono::microseconds breaker_cooldown{1000};
  };

  /// Breaker position. closed = normal service; open = failing fast;
  /// half_open = one probe in flight deciding between the two.
  enum class BreakerState { closed, open, half_open };

  RemoteStore(std::shared_ptr<KvStore> inner, Options options);
  explicit RemoteStore(std::shared_ptr<KvStore> inner)
      : RemoteStore(std::move(inner), Options{}) {}

  Result<std::string> get(std::string_view key) const override;
  Status put(std::string_view key, std::string value) override;
  Status erase(std::string_view key) override;
  bool contains(std::string_view key) const override;
  /// Logical (unframed) value size — what get() would return.
  Result<std::uint64_t> size(std::string_view key) const override;
  std::vector<KvEntry> list(std::string_view prefix = {}) const override;
  Status sync() override;

  /// Base observer plus "store.remote.retries" (transient faults absorbed by
  /// the retry loop).
  void set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics) override;

  /// Transient faults retried away over this store's lifetime.
  std::uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }

  // Wire-vs-logical byte accounting. Wire bytes are what actually crossed the
  // simulated network: the framed value once per attempt (a failed attempt
  // re-sends the whole object; a torn upload counts the prefix the endpoint
  // kept). Logical bytes count each successful operation's unframed value
  // exactly once — what a caller would naively assume "bytes" means. The
  // "store.get_bytes"/"store.put_bytes" metrics report wire traffic;
  // "store.remote.logical_get_bytes"/"store.remote.logical_put_bytes" report
  // the logical view.
  std::uint64_t wire_get_bytes() const {
    return wire_get_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t wire_put_bytes() const {
    return wire_put_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t logical_get_bytes() const {
    return logical_get_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t logical_put_bytes() const {
    return logical_put_bytes_.load(std::memory_order_relaxed);
  }

  /// Current breaker position (always closed when the breaker is disabled).
  BreakerState breaker_state() const;
  /// Operations rejected fast while the breaker was open.
  std::uint64_t breaker_fast_fails() const {
    return fast_fails_.load(std::memory_order_relaxed);
  }

 private:
  /// Wire frame: [u32 size][u64 fnv1a64(value)][value bytes].
  static constexpr std::size_t kFrameHeader = 12;
  static std::string frame(std::string_view value);
  Result<std::string> unframe(std::string_view key, std::string framed) const;

  /// Runs the site's fault check with bounded retry/backoff; returns the
  /// last injected error once attempts are exhausted. `attempts`, when
  /// non-null, receives the number of transfer attempts made (1 with no
  /// injector attached).
  Status checked_attempts(std::string_view site, int* attempts = nullptr) const;
  void note_retry() const;
  void note_wire_get(std::uint64_t bytes) const;
  void note_wire_put(std::uint64_t bytes) const;

  /// Breaker admission gate for one operation. Fails fast when the breaker
  /// is open (and the cooldown has not lapsed); otherwise admits and, in
  /// half-open, marks this caller as the probe.
  Status breaker_admit(std::string_view op) const;
  /// Reports the admitted operation's outcome back into the state machine.
  void breaker_record(bool ok) const;
  void breaker_transition_locked(BreakerState next, std::string_view why) const;

  std::shared_ptr<KvStore> inner_;
  Options options_;
  mutable std::atomic<std::uint64_t> retries_{0};  ///< bumped from const get()
  mutable std::atomic<std::uint64_t> wire_get_bytes_{0};
  mutable std::atomic<std::uint64_t> wire_put_bytes_{0};
  mutable std::atomic<std::uint64_t> logical_get_bytes_{0};
  mutable std::atomic<std::uint64_t> logical_put_bytes_{0};
  obs::Counter* retry_counter_ = nullptr;
  obs::Counter* logical_get_counter_ = nullptr;
  obs::Counter* logical_put_counter_ = nullptr;

  mutable std::mutex breaker_mutex_;
  mutable BreakerState state_ = BreakerState::closed;
  mutable int consecutive_failures_ = 0;
  mutable std::chrono::steady_clock::time_point opened_at_{};
  mutable bool probe_in_flight_ = false;
  mutable std::atomic<std::uint64_t> fast_fails_{0};
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* breaker_opens_ = nullptr;
  obs::Counter* breaker_closes_ = nullptr;
  obs::Counter* breaker_fast_fail_counter_ = nullptr;
};

}  // namespace comt::store
