// Reproduces Figure 9 (performance retention) and Table 1 (testbeds):
// execution time of every workload under the four schemes — original /
// native / adapted / optimized — on both the x86-64 and AArch64 systems at
// 16 nodes. Prints measured series plus the paper's headline aggregates for
// comparison (shape reproduction; absolute seconds are model units).
#include <cstdio>
#include <string>
#include <vector>

#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

struct Row {
  std::string name;
  workloads::SchemeTimes times;
};

double improvement(double base, double better) { return (base / better - 1.0) * 100.0; }

int run_system(const sysmodel::SystemProfile& system, const char* paper_claims) {
  std::printf("=== %s ===\n", system.name.c_str());
  std::printf("Testbed (Table 1): %s | %d nodes | %d GiB RAM | %s\n\n",
              system.cpu_model.c_str(), system.nodes, system.ram_gib,
              system.os_name.c_str());
  std::printf("%-16s %10s %10s %10s %10s   %s\n", "workload", "original", "native",
              "adapted", "optimized", "native-vs-original");

  workloads::Evaluation world(system);
  std::vector<Row> rows;
  for (const workloads::AppSpec& app : workloads::corpus()) {
    auto prepared = world.prepare(app);
    if (!prepared.ok()) {
      std::fprintf(stderr, "prepare(%s) failed: %s\n", app.name.c_str(),
                   prepared.error().to_string().c_str());
      return 1;
    }
    for (const workloads::WorkloadInput& input : app.inputs) {
      auto times = world.run_schemes(app, prepared.value(), input, system.nodes);
      if (!times.ok()) {
        std::fprintf(stderr, "run(%s) failed: %s\n",
                     input.display_name(app.name).c_str(),
                     times.error().to_string().c_str());
        return 1;
      }
      Row row{input.display_name(app.name), times.value()};
      std::printf("%-16s %9.2fs %9.2fs %9.2fs %9.2fs   %+7.1f%%\n", row.name.c_str(),
                  row.times.original, row.times.native, row.times.adapted,
                  row.times.optimized, improvement(row.times.original, row.times.native));
      rows.push_back(std::move(row));
    }
  }

  double sum_original = 0, sum_native = 0, sum_adapted = 0, sum_optimized = 0;
  double sum_improvement = 0;
  for (const Row& row : rows) {
    sum_original += row.times.original;
    sum_native += row.times.native;
    sum_adapted += row.times.adapted;
    sum_optimized += row.times.optimized;
    sum_improvement += improvement(row.times.original, row.times.native);
  }
  const double n = static_cast<double>(rows.size());
  std::printf("\n  averages: original %.2fs | native %.2fs | adapted %.2fs | optimized %.2fs\n",
              sum_original / n, sum_native / n, sum_adapted / n, sum_optimized / n);
  std::printf("  mean native-vs-original improvement: %.1f%%\n", sum_improvement / n);
  std::printf("  paper: %s\n\n", paper_claims);
  return 0;
}

}  // namespace

int main() {
  std::printf("Figure 9 — execution time per workload, 4 schemes, 16 nodes\n\n");
  if (run_system(sysmodel::SystemProfile::x86_cluster(),
                 "avg native-vs-original +96.3%; adapted 22.0s vs native 21.35s; "
                 "lammps up to +253%, openmx up to +99.7%; lulesh +15.6%; hpccg degrades") != 0) {
    return 1;
  }
  if (run_system(sysmodel::SystemProfile::aarch64_cluster(),
                 "avg native-vs-original +66.5%; adapted 69.7s vs native 67.0s; "
                 "lulesh +231% (generic MPI lacks the fabric plugin)") != 0) {
    return 1;
  }
  return 0;
}
