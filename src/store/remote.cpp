#include "store/remote.hpp"

#include <cassert>
#include <thread>
#include <utility>

#include "store/wire.hpp"

namespace comt::store {

RemoteStore::RemoteStore(std::shared_ptr<KvStore> inner, Options options)
    : inner_(std::move(inner)), options_(options) {
  assert(inner_ != nullptr && "RemoteStore needs a backing store");
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

std::string RemoteStore::frame(std::string_view value) {
  std::string out;
  out.reserve(kFrameHeader + value.size());
  wire::put_u32(out, static_cast<std::uint32_t>(value.size()));
  wire::put_u64(out, wire::fnv1a64(value));
  out.append(value);
  return out;
}

Result<std::string> RemoteStore::unframe(std::string_view key,
                                         std::string framed) const {
  wire::Reader reader{framed};
  const std::uint32_t size = reader.u32();
  const std::uint64_t hash = reader.u64();
  if (!reader.ok || framed.size() != kFrameHeader + size) {
    return make_error(Errc::corrupt,
                      "remote store: torn transfer for key: " + std::string(key));
  }
  std::string value = framed.substr(kFrameHeader);
  if (wire::fnv1a64(value) != hash) {
    return make_error(Errc::corrupt,
                      "remote store: checksum mismatch for key: " + std::string(key));
  }
  return value;
}

void RemoteStore::note_retry() const {
  retries_.fetch_add(1, std::memory_order_relaxed);
  if (retry_counter_ != nullptr) retry_counter_->add();
}

Status RemoteStore::checked_attempts(std::string_view site) const {
  if (faults() == nullptr) return Status::success();
  Status last = Status::success();
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    last = faults()->check(site);
    if (last.ok()) return last;
    if (attempt == options_.max_attempts) break;
    note_retry();
    if (options_.backoff.count() > 0) {
      // Exponential backoff: base, 2x, 4x, ... (shift capped well below
      // overflow — nobody configures 2^20 retries).
      const int shift = attempt - 1 < 20 ? attempt - 1 : 20;
      std::this_thread::sleep_for(options_.backoff * (std::int64_t{1} << shift));
    }
  }
  return last;
}

Result<std::string> RemoteStore::get(std::string_view key) const {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  COMT_TRY_STATUS(checked_attempts(kRemoteGetSite));
  if (options_.get_latency.count() > 0) {
    std::this_thread::sleep_for(options_.get_latency);
  }
  auto framed = inner_->get(key);
  if (!framed.ok()) {
    if (framed.error().code == Errc::corrupt) note_corrupt();
    return framed.error();
  }
  auto value = unframe(key, std::move(framed.value()));
  if (value.ok()) {
    note_get(value.value().size());
  } else {
    note_corrupt();
  }
  return value;
}

Status RemoteStore::put(std::string_view key, std::string value) {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  COMT_TRY_STATUS(checked_attempts(kRemotePutSite));
  if (options_.put_latency.count() > 0) {
    std::this_thread::sleep_for(options_.put_latency);
  }
  const std::uint64_t bytes = value.size();
  std::string framed = frame(value);
  std::optional<std::size_t> torn;
  if (faults() != nullptr) torn = faults()->check_torn(kRemotePutSite, framed.size());
  if (torn.has_value()) {
    // The upload died mid-flight: the endpoint keeps the bytes that arrived
    // and the client never completes the transfer. The truncated frame fails
    // checksum verification on the next download.
    (void)inner_->put(key, framed.substr(0, *torn));
    throw support::CrashInjected{std::string(kRemotePutSite)};
  }
  COMT_TRY_STATUS(inner_->put(key, std::move(framed)));
  note_put(bytes);
  return Status::success();
}

Status RemoteStore::erase(std::string_view key) {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  COMT_TRY_STATUS(inner_->erase(key));
  note_erase();
  return Status::success();
}

bool RemoteStore::contains(std::string_view key) const {
  return inner_->contains(key);
}

Result<std::uint64_t> RemoteStore::size(std::string_view key) const {
  if (key.empty()) return make_error(Errc::invalid_argument, "store: empty key");
  COMT_TRY(std::uint64_t framed, inner_->size(key));
  if (framed < kFrameHeader) {
    return make_error(Errc::corrupt,
                      "remote store: torn transfer for key: " + std::string(key));
  }
  return framed - kFrameHeader;
}

std::vector<KvEntry> RemoteStore::list(std::string_view prefix) const {
  std::vector<KvEntry> out = inner_->list(prefix);
  for (KvEntry& entry : out) {
    entry.size = entry.size >= kFrameHeader ? entry.size - kFrameHeader : 0;
  }
  return out;
}

Status RemoteStore::sync() {
  obs::Span span = sync_span();
  COMT_TRY_STATUS(inner_->sync());
  note_sync();
  return Status::success();
}

void RemoteStore::set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  KvStore::set_observer(tracer, metrics);
  retry_counter_ = metrics == nullptr ? nullptr : &metrics->counter("store.remote.retries");
}

}  // namespace comt::store
