// Extensions beyond the paper's evaluated prototype: source obfuscation
// (§4.6), the BOLT-style layout adapter (§5.3 future work), and the strict
// package-substitution semantics of redirect.
#include <gtest/gtest.h>

#include "core/backend.hpp"
#include "core/cache.hpp"
#include "sysmodel/sysmodel.hpp"
#include "toolchain/source.hpp"
#include "workloads/harness.hpp"

namespace comt {
namespace {

// ---- obfuscate_source ---------------------------------------------------------

TEST(ObfuscateTest, PreservesSemanticLines) {
  toolchain::SourceGenSpec spec;
  spec.unit_name = "secret";
  toolchain::KernelTrait kernel;
  kernel.name = "proprietary_solver";
  kernel.work = 50;
  kernel.frac_vec = 0.4;
  spec.kernels = {kernel};
  spec.includes = {"common.h"};
  spec.uses_mpi = true;
  spec.filler_lines = 30;
  std::string original = toolchain::generate_source(spec);
  std::string obfuscated = toolchain::obfuscate_source(original);

  auto before = toolchain::analyze_source(original);
  auto after = toolchain::analyze_source(obfuscated);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value().kernels, after.value().kernels);
  EXPECT_EQ(before.value().includes, after.value().includes);
  EXPECT_EQ(before.value().uses_mpi, after.value().uses_mpi);
}

TEST(ObfuscateTest, HidesIdentifiers) {
  std::string source =
      "double proprietary_trade_secret(double* x) {\n"
      "  return x[0] * kSecretConstant;\n"
      "}\n";
  std::string obfuscated = toolchain::obfuscate_source(source);
  EXPECT_EQ(obfuscated.find("proprietary_trade_secret"), std::string::npos);
  EXPECT_EQ(obfuscated.find("kSecretConstant"), std::string::npos);
}

TEST(ObfuscateTest, KeepsIsaMarkers) {
  std::string obfuscated =
      toolchain::obfuscate_source("// @comt-isa x86_64\nint secret;\n");
  auto info = toolchain::analyze_source(obfuscated);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().isa_specific, std::vector<std::string>{"x86_64"});
}

TEST(ObfuscateTest, SizeRoughlyPreserved) {
  std::string source(40, 'x');
  source = "void f() { " + source + " }\n" + source + "\n";
  std::string obfuscated = toolchain::obfuscate_source(source);
  EXPECT_NEAR(static_cast<double>(obfuscated.size()),
              static_cast<double>(source.size()), 30.0);
}

// ---- obfuscated cache end-to-end ---------------------------------------------

TEST(ObfuscatedCacheTest, RebuildWorksFromObfuscatedSources) {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  const workloads::AppSpec* app = workloads::find_app("comd");
  ASSERT_NE(app, nullptr);

  // Manual user-side flow with obfuscation on.
  oci::Layout layout;
  ASSERT_TRUE(workloads::install_user_images(layout, system.arch).ok());
  ASSERT_TRUE(workloads::install_system_images(layout, system).ok());
  auto file = dockerfile::parse(workloads::dockerfile_text(*app, system.arch, true));
  ASSERT_TRUE(file.ok());
  buildexec::ImageBuilder builder(layout);
  builder.set_apt_source(&workloads::ubuntu_repo(system.arch));
  buildexec::BuildRecord record;
  ASSERT_TRUE(builder.build(file.value(), workloads::build_context(*app), "comd.dist",
                            "", &record).ok());
  auto stage = layout.find_image("comd.dist.stage0");
  auto build_rootfs = layout.flatten(stage.value());
  core::CacheOptions cache_options;
  cache_options.obfuscate_sources = true;
  ASSERT_TRUE(core::comtainer_build(layout, "comd.dist",
                                    workloads::base_tag(system.arch), record,
                                    build_rootfs.value(), cache_options).ok());

  // The cached sources contain no original identifiers...
  auto extended = layout.find_image("comd.dist+coM");
  ASSERT_TRUE(extended.ok());
  auto extended_rootfs = layout.flatten(extended.value());
  auto bundle = core::load_cache(extended_rootfs.value());
  ASSERT_TRUE(bundle.ok()) << bundle.error().to_string();
  bool saw_source = false;
  for (const auto& [digest, content] : bundle.value().sources) {
    if (content.find("@comt-kernel") != std::string::npos) {
      saw_source = true;
      EXPECT_EQ(content.find("static const int k_"), std::string::npos)
          << "filler identifiers leaked";
    }
  }
  EXPECT_TRUE(saw_source);

  // ...and the system-side rebuild still works end-to-end.
  auto owned = core::adapted_scheme();
  std::vector<const core::SystemAdapter*> adapters;
  for (const auto& adapter : owned) adapters.push_back(adapter.get());
  core::RebuildOptions rebuild;
  rebuild.system = &system;
  rebuild.system_repo = &workloads::system_repo(system);
  rebuild.sysenv_tag = workloads::sysenv_tag(system);
  rebuild.adapters = adapters;
  auto rebuilt = core::comtainer_rebuild(layout, "comd.dist+coM", rebuild);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error().to_string();
  core::RedirectOptions redirect;
  redirect.system = &system;
  redirect.system_repo = &workloads::system_repo(system);
  redirect.rebase_tag = workloads::rebase_tag(system);
  auto redirected = core::comtainer_redirect(layout, "comd.dist+coMre", redirect);
  ASSERT_TRUE(redirected.ok()) << redirected.error().to_string();
  auto rootfs = layout.flatten(redirected.value().image);
  sysmodel::ExecutionEngine engine(system);
  auto report = engine.run(rootfs.value(), app->binary_path(),
                           app->inputs.front().run_request(16));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
}

// ---- layout adapter -------------------------------------------------------------

TEST(LayoutAdapterTest, RequiresProfile) {
  toolchain::LinkedImage artifact;
  artifact.codegen.pgo_quality = 0;
  core::LayoutAdapter adapter;
  core::AdapterContext context;
  ASSERT_TRUE(adapter.adapt_artifact(artifact, context).ok());
  EXPECT_FALSE(artifact.codegen.layout_optimized);

  artifact.codegen.pgo_quality = 0.9;
  toolchain::ObjectCode object;
  object.codegen.pgo_quality = 0.9;
  artifact.objects.push_back(object);
  ASSERT_TRUE(adapter.adapt_artifact(artifact, context).ok());
  EXPECT_TRUE(artifact.codegen.layout_optimized);
  EXPECT_TRUE(artifact.objects[0].codegen.layout_optimized);
}

TEST(LayoutAdapterTest, ImprovesBranchyKernelsOnlyPositively) {
  toolchain::KernelTrait kernel;
  kernel.name = "k";
  kernel.work = 100;
  kernel.frac_branch = 1.0;
  kernel.pgo_response = -0.4;  // a profile-hostile kernel

  toolchain::LinkedImage exe;
  exe.target_arch = "amd64";
  toolchain::ObjectCode object;
  object.codegen.opt_level = 2;
  object.codegen.march = "x86-64-v3";
  object.kernels = {kernel};
  exe.objects = {object};

  vfs::Filesystem fs;
  ASSERT_TRUE(fs.write_file("/app", toolchain::serialize_image(exe), 0755).ok());
  sysmodel::ExecutionEngine engine(sysmodel::SystemProfile::x86_cluster());
  double baseline = engine.run(fs, "/app").value().seconds;

  exe.objects[0].codegen.layout_optimized = true;
  ASSERT_TRUE(fs.write_file("/app", toolchain::serialize_image(exe), 0755).ok());
  // Negative pgo_response: layout clamps to zero benefit — never a penalty.
  EXPECT_NEAR(engine.run(fs, "/app").value().seconds, baseline, 1e-9);

  exe.objects[0].kernels[0].pgo_response = 0.5;
  ASSERT_TRUE(fs.write_file("/app", toolchain::serialize_image(exe), 0755).ok());
  double positive = engine.run(fs, "/app").value().seconds;
  exe.objects[0].codegen.layout_optimized = false;
  ASSERT_TRUE(fs.write_file("/app", toolchain::serialize_image(exe), 0755).ok());
  double without = engine.run(fs, "/app").value().seconds;
  EXPECT_LT(positive, without);
}

TEST(LayoutAdapterTest, EndToEndOnTopOfPgo) {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  const workloads::AppSpec* app = workloads::find_app("miniamr");
  workloads::Evaluation world(system);
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok());

  auto owned = core::optimized_scheme();
  std::vector<const core::SystemAdapter*> adapters;
  for (const auto& adapter : owned) adapters.push_back(adapter.get());
  auto pgo_tag =
      world.transform(prepared.value(), adapters, app->inputs.front(), 16);
  ASSERT_TRUE(pgo_tag.ok());
  auto pgo_seconds = world.run_image(pgo_tag.value(), app->inputs.front(), 16);
  ASSERT_TRUE(pgo_seconds.ok());

  core::LayoutAdapter layout;
  adapters.push_back(&layout);
  auto layout_tag =
      world.transform(prepared.value(), adapters, app->inputs.front(), 16);
  ASSERT_TRUE(layout_tag.ok()) << layout_tag.error().to_string();
  auto layout_seconds = world.run_image(layout_tag.value(), app->inputs.front(), 16);
  ASSERT_TRUE(layout_seconds.ok());
  EXPECT_LT(layout_seconds.value(), pgo_seconds.value());
}

// ---- redirect substitution semantics ------------------------------------------

TEST(RedirectSemanticsTest, UnproposedPackagesKeepGenericFiles) {
  // cxxo-only transform: binaries are native, libraries stay generic.
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  const workloads::AppSpec* app = workloads::find_app("minife");
  workloads::Evaluation world(system);
  auto prepared = world.prepare(*app);
  ASSERT_TRUE(prepared.ok());
  core::ToolchainAdapter cxxo;
  auto tag = world.transform(prepared.value(), {&cxxo}, app->inputs.front(), 16);
  ASSERT_TRUE(tag.ok()) << tag.error().to_string();
  auto image = world.layout().find_image(tag.value());
  auto rootfs = world.layout().flatten(image.value());
  ASSERT_TRUE(rootfs.ok());
  auto blob = rootfs.value().read_file("/usr/lib/libblas.so");
  ASSERT_TRUE(blob.ok());
  auto lib = toolchain::parse_image(blob.value());
  ASSERT_TRUE(lib.ok());
  EXPECT_DOUBLE_EQ(lib.value().attribute("libspeed", 0), 1.0);  // still generic
  auto binary = toolchain::parse_image(
      rootfs.value().read_file(app->binary_path()).value());
  ASSERT_TRUE(binary.ok());
  EXPECT_EQ(binary.value().codegen.toolchain_id, "vendor-x86");  // but rebuilt
}

}  // namespace
}  // namespace comt
