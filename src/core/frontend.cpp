#include "core/frontend.hpp"

#include <map>
#include <set>

#include "pkg/pkg.hpp"
#include "support/sha256.hpp"
#include "support/strings.hpp"

namespace comt::core {
namespace {

bool is_compiler_basename(std::string_view name) {
  return name == "gcc" || name == "g++" || name == "cc" || name == "c++" ||
         name == "clang" || name == "clang++" || name == "gfortran" ||
         name == "mpicc" || name == "mpicxx" || name == "mpic++" || name == "icx" ||
         name == "ftcc" || name == "vcc" || name == "vcxx";
}

NodeKind kind_for_path(std::string_view path) {
  std::string ext = path_extension(path);
  if (ext == ".o") return NodeKind::object;
  if (ext == ".a") return NodeKind::archive;
  if (ext == ".so") return NodeKind::shared_lib;
  if (ext == ".c" || ext == ".cc" || ext == ".cpp" || ext == ".cxx" || ext == ".h" ||
      ext == ".hpp" || ext == ".f90" || ext == ".F90") {
    return NodeKind::source;
  }
  return NodeKind::data;
}

bool looks_like_data(std::string_view path) {
  std::string ext = path_extension(path);
  return ext == ".dat" || ext == ".txt" || ext == ".json" || ext == ".csv" ||
         ext == ".in" || ext == ".cfg" || ext == ".conf" || ext == ".md" ||
         ext == ".yaml" || ext == ".toml" || contains(path, "/data/") ||
         contains(path, "/share/");
}

}  // namespace

Result<BuildGraph> build_graph_from_record(const buildexec::BuildRecord& record) {
  BuildGraph graph;
  // digest -> node id, most recent wins.
  std::map<std::string, int> by_digest;

  auto leaf_for = [&](const std::string& path, const std::string& digest) -> int {
    if (!digest.empty()) {
      auto it = by_digest.find(digest);
      if (it != by_digest.end()) return it->second;
    }
    GraphNode node;
    node.kind = kind_for_path(path);
    // Derived extensions appearing as unseen inputs (e.g. an .o checked into
    // the context) are still leaves of this build.
    node.path = path;
    node.content_digest = digest;
    int id = graph.add_node(std::move(node));
    if (!digest.empty()) by_digest[digest] = id;
    return id;
  };

  for (const buildexec::ToolInvocation& invocation : record.invocations) {
    if (!invocation.succeeded || invocation.argv.empty()) continue;
    const std::string tool = path_basename(invocation.argv[0]);
    const bool is_compiler = is_compiler_basename(tool);
    const bool is_ar = tool == "ar";
    if (!is_compiler && !is_ar) continue;  // COPY & file utils don't create nodes

    std::vector<int> deps;
    for (const std::string& input : invocation.inputs_read) {
      auto digest_it = invocation.digests.find(input);
      std::string digest = digest_it == invocation.digests.end() ? "" : digest_it->second;
      deps.push_back(leaf_for(input, digest));
    }

    std::optional<toolchain::CompileCommand> compile;
    if (is_compiler) {
      COMT_TRY(toolchain::CompileCommand command,
               toolchain::parse_command(invocation.argv));
      compile = std::move(command);
    }

    for (const std::string& output : invocation.outputs) {
      GraphNode node;
      node.kind = kind_for_path(output);
      if (node.kind == NodeKind::data || node.kind == NodeKind::source) {
        // A compiler/linker output without a derived extension is a program.
        node.kind = NodeKind::executable;
      }
      if (is_ar) node.kind = NodeKind::archive;
      node.path = output;
      auto digest_it = invocation.digests.find(output);
      node.content_digest =
          digest_it == invocation.digests.end() ? "" : digest_it->second;
      node.deps = deps;
      node.compile = compile;
      if (is_ar) node.archive_argv = invocation.argv;
      node.toolchain_id = invocation.toolchain_id;
      node.cwd = invocation.cwd;
      int id = graph.add_node(std::move(node));
      if (!graph.node(id).content_digest.empty()) {
        by_digest[graph.node(id).content_digest] = id;
      }
    }
  }
  return graph;
}

Result<ImageModel> classify_image(const oci::Layout& layout, const oci::Image& dist,
                                  const oci::Image& base, const BuildGraph& graph) {
  COMT_TRY(vfs::Filesystem dist_fs, layout.flatten(dist));
  COMT_TRY(vfs::Filesystem base_fs, layout.flatten(base));
  COMT_TRY(pkg::Database database, pkg::Database::load(dist_fs));

  ImageModel model;
  model.architecture = dist.config.architecture;
  model.entrypoint = dist.config.config.entrypoint;

  dist_fs.walk([&](const std::string& path, const vfs::Node& node) {
    if (node.type == vfs::NodeType::directory) return true;
    if (starts_with(path, "/.coMtainer")) return true;  // our own plumbing

    ImageFileEntry entry;
    entry.path = path;
    entry.size = node.content.size();
    entry.digest = node.type == vfs::NodeType::regular
                       ? Sha256::hex_digest(node.content)
                       : "";

    const vfs::Node* base_node = base_fs.lookup(path);
    std::string owner = database.owner_of(path);
    if (base_node != nullptr && base_node->type == node.type &&
        base_node->content == node.content) {
      entry.origin = FileOrigin::base_image;
    } else if (!owner.empty() || starts_with(path, "/var/lib/dpkg")) {
      entry.origin = FileOrigin::package_manager;
      entry.owner_package = owner;
    } else if (int id = graph.find_by_digest(entry.digest); id >= 0) {
      entry.origin = FileOrigin::build_process;
      entry.build_node = id;
    } else if (looks_like_data(path)) {
      entry.origin = FileOrigin::data;
    } else {
      entry.origin = FileOrigin::unknown;
    }
    model.files.push_back(std::move(entry));
    return true;
  });

  for (const std::string& name : database.installed_names()) {
    const pkg::InstalledPackage* package = database.find(name);
    RuntimePackage runtime;
    runtime.name = package->name;
    runtime.version = package->version;
    runtime.variant = pkg::variant_name(package->variant);
    model.runtime_packages.push_back(std::move(runtime));
  }
  return model;
}

Result<ProcessModels> analyze(const AnalysisInput& input) {
  if (input.record == nullptr || input.layout == nullptr || input.dist_image == nullptr ||
      input.dist_base == nullptr) {
    return make_error(Errc::invalid_argument, "analyze: missing input");
  }
  ProcessModels models;
  COMT_TRY(models.graph, build_graph_from_record(*input.record));
  COMT_TRY(models.image,
           classify_image(*input.layout, *input.dist_image, *input.dist_base, models.graph));
  return models;
}

}  // namespace comt::core
