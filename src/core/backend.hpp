// The coMtainer back-end (§4.1/§4.2), system side:
//
//  comtainer_build    — user side: analyze the recorded build + images, add
//                       the cache layer, tag "<tag>+coM" (extended image).
//  comtainer_rebuild  — system side: in a Sysenv container, re-execute the
//                       (adapter-transformed) build graph with the system's
//                       toolchain and software stack; collect the results in
//                       a rebuild layer, tag "<tag>+coMre" (rebuilt image).
//                       When a PGO adapter is active, runs the automated
//                       instrument -> execute -> recompile feedback loop.
//  comtainer_redirect — system side: in a fresh Rebase container, install
//                       (optimized) runtime packages, place the rebuilt or
//                       original application files at their original paths,
//                       and commit the final optimized image, "<tag>+opt".
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "buildexec/record.hpp"
#include "core/adapters.hpp"
#include "core/cache.hpp"
#include "core/models.hpp"
#include "oci/oci.hpp"
#include "support/error.hpp"
#include "sysmodel/sysmodel.hpp"

namespace comt::core {

/// User-side coMtainer-build. `dist_tag` is the application image built by
/// the two-stage Dockerfile, `base_tag` the dist stage's base image; the
/// build record and the build stage's final root filesystem come from the
/// hijacking build container. Returns the extended image ("<dist_tag>+coM").
Result<oci::Image> comtainer_build(oci::Layout& layout, std::string_view dist_tag,
                                   std::string_view base_tag,
                                   const buildexec::BuildRecord& record,
                                   const vfs::Filesystem& build_rootfs,
                                   const CacheOptions& cache_options = {});

struct RebuildOptions {
  const sysmodel::SystemProfile* system = nullptr;
  const pkg::Repository* system_repo = nullptr;
  std::string sysenv_tag;  ///< Sysenv image tag in the layout
  std::vector<const SystemAdapter*> adapters;
  /// Input for the PGO feedback run (should mirror the deployment input).
  sysmodel::RunRequest profile_run;
};

/// Diagnostics from a rebuild (how many nodes re-ran, profile feedback, …).
struct RebuildReport {
  oci::Image image;               ///< the rebuilt image ("…+coMre")
  std::size_t nodes_executed = 0;
  std::size_t files_rebuilt = 0;
  bool profile_feedback = false;
  std::map<std::string, std::string> package_replacements;
};

Result<RebuildReport> comtainer_rebuild(oci::Layout& layout, std::string_view extended_tag,
                                        const RebuildOptions& options);

struct RedirectOptions {
  const sysmodel::SystemProfile* system = nullptr;
  const pkg::Repository* system_repo = nullptr;
  std::string rebase_tag;  ///< Rebase image tag in the layout
  /// Extra package replacements applied even without a rebuild layer
  /// (redirect-only flows, e.g. the motivation figure's libo step).
  std::map<std::string, std::string> package_replacements;
};

struct RedirectReport {
  oci::Image image;  ///< the optimized image ("…+opt")
  std::size_t packages_installed = 0;
  std::size_t files_from_rebuild = 0;
  std::size_t files_from_original = 0;
};

Result<RedirectReport> comtainer_redirect(oci::Layout& layout, std::string_view source_tag,
                                          const RedirectOptions& options);

/// Strips the "+coM"/"+coMre"/"+opt" suffix from a tag.
std::string base_tag_of(std::string_view tag);

}  // namespace comt::core
