// Load generator for the multi-tenant rebuild service: N client threads
// submit rebuild requests for a mix of images across M simulated target
// systems and the run reports throughput, p50/p99 service latency, the
// request-coalescing rate, retry counts under injected transient faults,
// and a drain-under-load pass.
//
// Usage: service_throughput [--smoke] [--clients N] [--systems M] [--requests R]
//                           [--trace PATH] [--json PATH]
//   --smoke   small deterministic run with hard assertions (CI-friendly):
//             duplicate submissions must coalesce, injected transient faults
//             must recover via retry with zero failed tickets, and a drain
//             during load must leave every ticket in a terminal state.
//   --trace PATH   write the load run's Chrome trace JSON (service.job spans
//                  with per-attempt pull/rebuild/push children) to PATH.
//   --json PATH    write machine-readable results to PATH.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "registry/registry.hpp"
#include "service/service.hpp"
#include "store/store.hpp"
#include "support/fault.hpp"
#include "transfer/chunkstore.hpp"
#include "sysmodel/sysmodel.hpp"
#include "workloads/harness.hpp"

using namespace comt;

namespace {

int publish(registry::Registry& hub, const char* app_name, const std::string& name) {
  const workloads::AppSpec* app = workloads::find_app(app_name);
  if (app == nullptr) {
    std::fprintf(stderr, "%s missing from corpus\n", app_name);
    return 1;
  }
  workloads::Evaluation world(sysmodel::SystemProfile::x86_cluster());
  auto prepared = world.prepare(*app);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare %s: %s\n", app_name, prepared.error().to_string().c_str());
    return 1;
  }
  auto pushed = hub.push(world.layout(), prepared.value().extended_tag, name, "1.0");
  if (!pushed.ok()) {
    std::fprintf(stderr, "push %s: %s\n", app_name, pushed.error().to_string().c_str());
    return 1;
  }
  return 0;
}

int add_systems(service::RebuildService& svc, int count, std::vector<std::string>& names) {
  const sysmodel::SystemProfile& system = sysmodel::SystemProfile::x86_cluster();
  for (int i = 0; i < count; ++i) {
    service::TargetSystem target;
    target.profile = &system;
    target.repo = &workloads::system_repo(system);
    if (!workloads::install_system_images(target.base_layout, system).ok()) {
      std::fprintf(stderr, "installing sysenv for site%d failed\n", i);
      return 1;
    }
    target.sysenv_tag = workloads::sysenv_tag(system);
    std::string fp = "site" + std::to_string(i);
    if (!svc.add_system(fp, target).ok()) {
      std::fprintf(stderr, "add_system(%s) failed\n", fp.c_str());
      return 1;
    }
    names.push_back(std::move(fp));
  }
  return 0;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double service_ms(const service::JobTrace& trace) {
  return trace.queue_ms + trace.pull_ms + trace.rebuild_ms + trace.push_ms;
}

double round3(double value) { return std::round(value * 1000.0) / 1000.0; }

int write_file(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(content.data(), 1, content.size(), out);
  std::fclose(out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int clients = 8;
  int systems = 4;
  int requests = 8;  // per client
  std::string trace_path;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--systems") == 0 && i + 1 < argc) {
      systems = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (smoke) {
    clients = 4;
    systems = 2;
    requests = 4;
  }
  const std::vector<const char*> apps =
      smoke ? std::vector<const char*>{"minimd", "comd"}
            : std::vector<const char*>{"minimd", "comd", "hpccg"};

  registry::Registry hub;
  support::FaultInjector hub_faults;
  support::FaultInjector compile_faults;
  hub.set_fault_injector(&hub_faults);
  // Chunk-level dedup on the hub: every rebuilt image a worker pushes shares
  // its unchanged layers' chunks with the generic image already there, so
  // the wire cost of a rebuild is the recompiled delta, not the whole image.
  hub.enable_chunk_dedup(
      std::make_shared<transfer::ChunkStore>(std::make_shared<store::MemStore>()));
  std::vector<std::string> images;
  for (const char* app : apps) {
    std::string name = std::string("hub/") + app;
    if (publish(hub, app, name) != 0) return 1;
    images.push_back(std::move(name));
  }
  // Baseline the chunk counters after the seed publishes so the load run's
  // numbers cover only the rebuild pushes.
  const transfer::ChunkStore& chunks = *hub.chunk_store();
  const registry::Stats seed_stats = hub.stats();

  service::ServiceOptions options;
  options.workers_per_system = 2;
  options.queue_capacity =
      static_cast<std::size_t>(systems) * images.size() * 2 +
      static_cast<std::size_t>(clients) * static_cast<std::size_t>(requests);
  options.faults = &compile_faults;
  // The load run is fully observed: every service.job span carries its
  // per-attempt pull/rebuild/push children and the hub's transfers land in
  // the same registry as the service counters.
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  options.tracer = &tracer;
  options.metrics = &metrics;
  hub.set_observer(&tracer, &metrics);
  service::RebuildService svc(hub, options);
  std::vector<std::string> sites;
  if (add_systems(svc, systems, sites) != 0) return 1;

  // Transient faults: the first two registry pulls and the first compile job
  // fail; the affected jobs must recover through retry with backoff.
  hub_faults.fail_next(registry::kPullFaultSite, 2);
  compile_faults.fail_next(core::kCompileFaultSite, 1);

  // Hold starts while the clients race submissions so duplicate (image,
  // system) requests deterministically coalesce onto queued jobs.
  svc.pause();
  std::vector<std::vector<service::Ticket>> per_client(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < requests; ++r) {
        int pick = c * requests + r;
        service::SubmitRequest request;
        request.name = images[static_cast<std::size_t>(pick) % images.size()];
        request.tag = "1.0";
        request.system = sites[static_cast<std::size_t>(pick / 2) % sites.size()];
        request.priority = (pick % 3 == 0) ? service::Priority::interactive
                                           : service::Priority::normal;
        request.tenant = "team" + std::to_string(c % 3);  // a small tenant mix
        auto ticket = svc.submit(request);
        if (ticket.ok()) per_client[static_cast<std::size_t>(c)].push_back(ticket.value());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  auto start = std::chrono::steady_clock::now();
  svc.resume();

  std::vector<double> latencies;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  std::size_t other = 0;
  std::size_t coalesced_tickets = 0;
  for (const auto& tickets : per_client) {
    for (service::Ticket ticket : tickets) {
      auto done = svc.wait(ticket);
      if (!done.ok()) return 1;
      switch (done.value().state) {
        case service::JobState::succeeded: ++succeeded; break;
        case service::JobState::failed: ++failed; break;
        default: ++other; break;
      }
      if (done.value().trace.coalesced) ++coalesced_tickets;
      latencies.push_back(service_ms(done.value().trace));
    }
  }
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  service::ServiceStats stats = svc.stats();
  double coalesce_rate =
      stats.submitted == 0
          ? 0.0
          : static_cast<double>(stats.coalesced) / static_cast<double>(stats.submitted);
  std::printf("rebuild service: %d clients x %d requests over %zu images x %d systems\n",
              clients, requests, images.size(), systems);
  std::printf("%-24s %10zu\n", "tickets", stats.submitted);
  std::printf("%-24s %10zu\n", "distinct jobs", stats.admitted);
  std::printf("%-24s %9.0f%%\n", "coalescing rate", 100.0 * coalesce_rate);
  std::printf("%-24s %10.2f\n", "wall ms", wall_ms);
  std::printf("%-24s %10.1f\n", "jobs/s",
              wall_ms == 0 ? 0.0 : 1000.0 * static_cast<double>(stats.admitted) / wall_ms);
  std::printf("%-24s %10.2f\n", "p50 service ms", percentile(latencies, 50));
  std::printf("%-24s %10.2f\n", "p99 service ms", percentile(latencies, 99));
  std::printf("%-24s %10zu\n", "retries", stats.retries);
  std::printf("%-24s %10zu / %zu\n", "compile cache hits", stats.compile_cache_hits,
              stats.compile_cache_hits + stats.compile_cache_misses);
  std::printf("%-24s %10zu succeeded, %zu failed, %zu other\n", "final states",
              succeeded, failed, other);
  // Chunk-transfer economics of the load run: what the rebuild pushes moved
  // over the wire vs what dedup against the generic images saved. Hit rate
  // counts chunks reused either way — whole-blob dedup or chunk-level dedup.
  registry::Stats hub_stats = hub.stats();
  std::uint64_t run_moved = hub_stats.chunk_bytes_moved - seed_stats.chunk_bytes_moved;
  std::uint64_t run_hits = hub_stats.chunks_reused - seed_stats.chunks_reused;
  std::uint64_t run_misses = hub_stats.chunks_moved - seed_stats.chunks_moved;
  double chunk_hit_rate = run_hits + run_misses == 0
                              ? 0.0
                              : static_cast<double>(run_hits) /
                                    static_cast<double>(run_hits + run_misses);
  double moved_per_rebuild =
      stats.admitted == 0 ? 0.0
                          : static_cast<double>(run_moved) /
                                static_cast<double>(stats.admitted);
  std::printf("%-24s %9.1f%%\n", "chunk hit rate", 100.0 * chunk_hit_rate);
  std::printf("%-24s %10.2f MiB (%.2f MiB/rebuild)\n", "chunk bytes moved",
              workloads::to_sim_mib(run_moved),
              workloads::to_sim_mib(static_cast<std::uint64_t>(moved_per_rebuild)));
  std::printf("%-24s %9.2fx\n", "dedup ratio", chunks.dedup_ratio());
  for (const auto& [tenant, slice] : stats.tenants) {
    std::printf("  tenant %-14s %6zu submitted, %zu admitted, %zu shed, %zu "
                "throttled, p99 queue-wait %.2f ms\n",
                tenant.c_str(), slice.submitted, slice.admitted, slice.shed,
                slice.throttled, slice.p99_queue_wait_ms);
  }

  // The exported trace must re-parse through src/json and hold one
  // service.job span per distinct admitted job.
  const std::string trace_json = tracer.chrome_trace_json();
  auto parsed_trace = json::parse(trace_json);
  if (!parsed_trace.ok()) {
    std::fprintf(stderr, "TRACE: chrome trace does not re-parse: %s\n",
                 parsed_trace.error().to_string().c_str());
    return 1;
  }
  std::size_t job_spans = 0;
  const json::Value* events = parsed_trace.value().find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "TRACE: missing traceEvents array\n");
    return 1;
  }
  for (const json::Value& event : events->as_array()) {
    if (event.get_string("name") == "service.job") ++job_spans;
  }
  std::printf("%-24s %10zu (of %zu trace events)\n", "service.job spans", job_spans,
              events->as_array().size());
  if (!trace_path.empty()) {
    if (write_file(trace_path, trace_json) != 0) return 1;
    std::printf("trace written to %s\n", trace_path.c_str());
  }

  if (smoke) {
    if (job_spans != stats.admitted) {
      std::fprintf(stderr, "SMOKE: %zu service.job spans but %zu admitted jobs\n",
                   job_spans, stats.admitted);
      return 1;
    }
    if (stats.coalesced == 0) {
      std::fprintf(stderr, "SMOKE: expected duplicate submissions to coalesce\n");
      return 1;
    }
    if (failed != 0 || other != 0) {
      std::fprintf(stderr, "SMOKE: %zu failed / %zu non-succeeded tickets despite "
                           "retryable faults\n", failed, other);
      return 1;
    }
    if (stats.retries == 0) {
      std::fprintf(stderr, "SMOKE: injected transient faults never triggered a retry\n");
      return 1;
    }
    if (run_hits == 0) {
      std::fprintf(stderr, "SMOKE: rebuild pushes never dedup-hit the generic "
                           "images' chunks\n");
      return 1;
    }
    std::uint64_t tenant_submitted = 0;
    for (const auto& [tenant, slice] : stats.tenants) tenant_submitted += slice.submitted;
    if (tenant_submitted != stats.submitted) {
      std::fprintf(stderr, "SMOKE: per-tenant submitted (%llu) != total (%zu)\n",
                   static_cast<unsigned long long>(tenant_submitted), stats.submitted);
      return 1;
    }
  }

  // ---- drain under load ----------------------------------------------------
  // A fresh service takes the same request mix, then drains mid-flight: every
  // in-flight job must complete, every still-queued job must fail as drained,
  // and no ticket may be left in a non-terminal state.
  service::ServiceOptions drain_options;
  drain_options.workers_per_system = 1;
  drain_options.queue_capacity = options.queue_capacity;
  service::RebuildService drain_svc(hub, drain_options);
  std::vector<std::string> drain_sites;
  if (add_systems(drain_svc, systems, drain_sites) != 0) return 1;
  std::vector<service::Ticket> drain_tickets;
  for (std::size_t i = 0; i < images.size() * drain_sites.size(); ++i) {
    service::SubmitRequest request;
    request.name = images[i % images.size()];
    request.tag = "1.0";
    request.system = drain_sites[i / images.size()];
    auto ticket = drain_svc.submit(request);
    if (ticket.ok()) drain_tickets.push_back(ticket.value());
  }
  while (drain_svc.running() == 0 && drain_svc.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  drain_svc.drain();

  std::size_t drain_succeeded = 0;
  std::size_t drain_drained = 0;
  for (service::Ticket ticket : drain_tickets) {
    auto done = drain_svc.status(ticket);
    if (!done.ok() || !service::is_terminal(done.value().state)) {
      std::fprintf(stderr, "drain left ticket %llu non-terminal\n",
                   static_cast<unsigned long long>(ticket));
      return 1;
    }
    if (done.value().state == service::JobState::succeeded) {
      ++drain_succeeded;
      // A completed job's output must actually be pullable from the hub.
      oci::Layout out;
      if (!hub.pull(done.value().output.substr(0, done.value().output.find(':')),
                    done.value().output.substr(done.value().output.find(':') + 1), out,
                    "check")
               .ok()) {
        std::fprintf(stderr, "drained service pushed an unpullable output: %s\n",
                     done.value().output.c_str());
        return 1;
      }
    } else if (done.value().state == service::JobState::drained) {
      ++drain_drained;
    } else {
      std::fprintf(stderr, "unexpected terminal state under drain: %s\n",
                   service::to_string(done.value().state));
      return 1;
    }
  }
  std::printf("\ndrain under load: %zu jobs -> %zu completed in flight, %zu drained\n",
              drain_tickets.size(), drain_succeeded, drain_drained);
  if (smoke && drain_succeeded + drain_drained != drain_tickets.size()) {
    std::fprintf(stderr, "SMOKE: drain accounting mismatch\n");
    return 1;
  }

  if (!json_path.empty()) {
    json::Object doc;
    doc.emplace_back("clients", json::Value(clients));
    doc.emplace_back("systems", json::Value(systems));
    doc.emplace_back("requests_per_client", json::Value(requests));
    doc.emplace_back("images", json::Value(static_cast<std::uint64_t>(images.size())));
    doc.emplace_back("tickets", json::Value(static_cast<std::uint64_t>(stats.submitted)));
    doc.emplace_back("distinct_jobs",
                     json::Value(static_cast<std::uint64_t>(stats.admitted)));
    doc.emplace_back("coalesce_rate_pct", json::Value(round3(100.0 * coalesce_rate)));
    doc.emplace_back("wall_ms", json::Value(round3(wall_ms)));
    doc.emplace_back("jobs_per_s",
                     json::Value(round3(wall_ms == 0 ? 0.0
                                                     : 1000.0 *
                                                           static_cast<double>(stats.admitted) /
                                                           wall_ms)));
    doc.emplace_back("p50_service_ms", json::Value(round3(percentile(latencies, 50))));
    doc.emplace_back("p99_service_ms", json::Value(round3(percentile(latencies, 99))));
    doc.emplace_back("retries", json::Value(static_cast<std::uint64_t>(stats.retries)));
    json::Object transfer_obj;
    transfer_obj.emplace_back("chunk_hit_rate_pct",
                              json::Value(round3(100.0 * chunk_hit_rate)));
    transfer_obj.emplace_back("bytes_moved", json::Value(run_moved));
    transfer_obj.emplace_back(
        "mib_moved_per_rebuild",
        json::Value(round3(workloads::to_sim_mib(
            static_cast<std::uint64_t>(moved_per_rebuild)))));
    transfer_obj.emplace_back("dedup_ratio", json::Value(round3(chunks.dedup_ratio())));
    doc.emplace_back("transfer", json::Value(std::move(transfer_obj)));
    json::Object tenants_obj;
    for (const auto& [tenant, slice] : stats.tenants) {
      json::Object entry;
      entry.emplace_back("submitted", json::Value(slice.submitted));
      entry.emplace_back("admitted", json::Value(slice.admitted));
      entry.emplace_back("shed", json::Value(slice.shed));
      entry.emplace_back("throttled", json::Value(slice.throttled));
      entry.emplace_back("p99_queue_wait_ms", json::Value(round3(slice.p99_queue_wait_ms)));
      tenants_obj.emplace_back(tenant, json::Value(std::move(entry)));
    }
    doc.emplace_back("tenants", json::Value(std::move(tenants_obj)));
    doc.emplace_back("trace_events",
                     json::Value(static_cast<std::uint64_t>(events->as_array().size())));
    doc.emplace_back("service_job_spans", json::Value(static_cast<std::uint64_t>(job_spans)));
    json::Object drain_obj;
    drain_obj.emplace_back("jobs", json::Value(static_cast<std::uint64_t>(drain_tickets.size())));
    drain_obj.emplace_back("completed_in_flight",
                           json::Value(static_cast<std::uint64_t>(drain_succeeded)));
    drain_obj.emplace_back("drained", json::Value(static_cast<std::uint64_t>(drain_drained)));
    doc.emplace_back("drain", json::Value(std::move(drain_obj)));
    if (write_file(json_path, json::serialize_pretty(json::Value(std::move(doc)))) != 0) {
      return 1;
    }
    std::printf("results written to %s\n", json_path.c_str());
  }
  return 0;
}
